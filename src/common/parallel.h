#ifndef CATMARK_COMMON_PARALLEL_H_
#define CATMARK_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace catmark {

/// Worker count used when a caller passes 0 ("auto"): the CATMARK_THREADS
/// environment variable when it parses as a positive integer, otherwise
/// std::thread::hardware_concurrency(), floored at 1.
std::size_t DefaultThreadCount();

/// Ceiling applied to CATMARK_THREADS values, derived from the hardware
/// thread count: max(8, 4 * hardware), capped at an absolute 256. Modest
/// oversubscription is deliberately allowed — the sanitizer sweeps run 8
/// workers on small machines to exercise cross-thread interleavings — but a
/// fat-fingered value (e.g. "999999999") clamps here instead of exhausting
/// process resources.
std::size_t MaxEnvThreadCount(std::size_t hardware);

/// Parses a CATMARK_THREADS-style string against a hardware thread count
/// (exposed separately from DefaultThreadCount so validation is unit-
/// testable without mutating the environment):
///
///   - nullptr / empty / any non-digit character (signs, spaces, "8x") /
///     zero: invalid — falls back to max(hardware, 1). strtoul would have
///     silently wrapped "-4" to a huge positive count; only plain digit
///     strings are accepted.
///   - a positive integer: clamped to MaxEnvThreadCount(hardware).
std::size_t ResolveThreadCountEnv(const char* text, std::size_t hardware);

/// Resolves a requested worker count (0 = DefaultThreadCount) against an
/// input of `n` items: never more threads than items, never fewer than 1.
std::size_t EffectiveThreadCount(std::size_t requested, std::size_t n);

/// Shard boundaries ParallelFor uses for (n, num_threads): `num_threads + 1`
/// offsets where shard s covers [bounds[s], bounds[s + 1]) and the first
/// n % num_threads shards take one extra item. Deterministic in (n,
/// num_threads) only — the sharded embed apply pass relies on classify and
/// apply phases seeing identical shard extents.
std::vector<std::size_t> ShardBounds(std::size_t n, std::size_t num_threads);

/// In-place exclusive prefix sum: counts[s] becomes the sum of counts[0..s);
/// returns the total. This is how per-shard commit counts turn into each
/// shard's first global map index.
std::size_t ExclusivePrefixSum(std::vector<std::size_t>& counts);

/// Sharded parallel-for: splits [0, n) into `num_threads` near-equal
/// contiguous shards (exactly ShardBounds) and runs fn(shard, begin, end)
/// once per shard — shard 0 on the calling thread, the rest on freshly
/// spawned threads, all joined before returning. Shard boundaries depend
/// only on (n, num_threads), and callers that only write shard-local state
/// (or per-row slots) get results independent of the thread count. `fn`
/// must not throw.
void ParallelFor(std::size_t n, std::size_t num_threads,
                 const std::function<void(std::size_t shard, std::size_t begin,
                                          std::size_t end)>& fn);

}  // namespace catmark

#endif  // CATMARK_COMMON_PARALLEL_H_
