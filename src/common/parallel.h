#ifndef CATMARK_COMMON_PARALLEL_H_
#define CATMARK_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace catmark {

/// Worker count used when a caller passes 0 ("auto"): the CATMARK_THREADS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency(), floored at 1.
std::size_t DefaultThreadCount();

/// Resolves a requested worker count (0 = DefaultThreadCount) against an
/// input of `n` items: never more threads than items, never fewer than 1.
std::size_t EffectiveThreadCount(std::size_t requested, std::size_t n);

/// Sharded parallel-for: splits [0, n) into `num_threads` near-equal
/// contiguous shards and runs fn(shard, begin, end) once per shard — shard 0
/// on the calling thread, the rest on freshly spawned threads, all joined
/// before returning. Shard boundaries depend only on (n, num_threads), and
/// callers that only write shard-local state (or per-row slots) get results
/// independent of the thread count. `fn` must not throw.
void ParallelFor(std::size_t n, std::size_t num_threads,
                 const std::function<void(std::size_t shard, std::size_t begin,
                                          std::size_t end)>& fn);

}  // namespace catmark

#endif  // CATMARK_COMMON_PARALLEL_H_
