#include "common/hex.h"

namespace catmark {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(const std::uint8_t* data, std::size_t len) {
  std::string out(len * 2, '0');
  for (std::size_t i = 0; i < len; ++i) {
    out[2 * i] = kHexDigits[data[i] >> 4];
    out[2 * i + 1] = kHexDigits[data[i] & 0xf];
  }
  return out;
}

std::string HexEncode(const std::vector<std::uint8_t>& bytes) {
  return HexEncode(bytes.data(), bytes.size());
}

Result<std::vector<std::uint8_t>> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("HexDecode: odd-length input");
  }
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = HexValue(hex[2 * i]);
    const int lo = HexValue(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("HexDecode: non-hex character");
    }
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

}  // namespace catmark
