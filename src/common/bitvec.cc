#include "common/bitvec.h"

#include <bit>

#include "common/check.h"

namespace catmark {

BitVector::BitVector(std::size_t size, int fill) : size_(size) {
  CATMARK_CHECK(fill == 0 || fill == 1);
  words_.assign((size + kWordBits - 1) / kWordBits,
                fill ? ~std::uint64_t{0} : 0);
  // Keep unused high bits of the last word zero so PopCount/== stay exact.
  if (fill && size_ % kWordBits != 0) {
    words_.back() &= (std::uint64_t{1} << (size_ % kWordBits)) - 1;
  }
}

Result<BitVector> BitVector::FromString(std::string_view bits) {
  BitVector out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      out.Set(i, 1);
    } else if (bits[i] != '0') {
      return Status::InvalidArgument("BitVector::FromString: bad character '" +
                                     std::string(1, bits[i]) + "'");
    }
  }
  return out;
}

int BitVector::Get(std::size_t i) const {
  CATMARK_CHECK_LT(i, size_);
  return static_cast<int>((words_[i / kWordBits] >> (i % kWordBits)) & 1u);
}

void BitVector::Set(std::size_t i, int bit) {
  CATMARK_CHECK_LT(i, size_);
  CATMARK_CHECK(bit == 0 || bit == 1);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (bit) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::Flip(std::size_t i) { Set(i, 1 - Get(i)); }

void BitVector::PushBack(int bit) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  ++size_;
  Set(size_ - 1, bit);
}

std::size_t BitVector::PopCount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVector::HammingDistance(const BitVector& other) const {
  CATMARK_CHECK_EQ(size_, other.size_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return n;
}

double BitVector::NormalizedHammingDistance(const BitVector& other) const {
  if (size_ == 0 && other.size_ == 0) return 0.0;
  return static_cast<double>(HammingDistance(other)) /
         static_cast<double>(size_);
}

std::string BitVector::ToString() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (Get(i)) s[i] = '1';
  }
  return s;
}

bool operator==(const BitVector& a, const BitVector& b) {
  return a.size_ == b.size_ && a.words_ == b.words_;
}

}  // namespace catmark
