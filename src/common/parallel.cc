#include "common/parallel.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <thread>

namespace catmark {

namespace {

// Hard ceiling on workers, whatever CATMARK_THREADS says: these loops are
// memory-bound well before 256 shards, and an unbounded count would try to
// spawn one thread per row and abort the process on resource exhaustion.
constexpr std::size_t kMaxThreads = 256;

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<std::size_t>(hw) : 1;
}

}  // namespace

std::size_t MaxEnvThreadCount(std::size_t hardware) {
  const std::size_t floor8 = hardware * 4 > 8 ? hardware * 4 : 8;
  return floor8 < kMaxThreads ? floor8 : kMaxThreads;
}

std::size_t ResolveThreadCountEnv(const char* text, std::size_t hardware) {
  const std::size_t fallback = hardware >= 1 ? hardware : 1;
  if (text == nullptr || *text == '\0') return fallback;
  for (const char* p = text; *p != '\0'; ++p) {
    // Digits only: no signs, spaces, hex prefixes or trailing junk. strtoul
    // would have accepted "-4" by wrapping it to a huge positive count.
    if (!std::isdigit(static_cast<unsigned char>(*p))) return fallback;
  }
  std::size_t v = 0;
  const char* end = text;
  while (*end != '\0') ++end;
  const auto [ptr, ec] = std::from_chars(text, end, v);
  if (ptr != end) return fallback;  // defensive; digits already checked
  if (ec == std::errc::result_out_of_range) return MaxEnvThreadCount(hardware);
  if (v == 0) return fallback;
  const std::size_t ceiling = MaxEnvThreadCount(hardware);
  return v < ceiling ? v : ceiling;
}

std::size_t DefaultThreadCount() {
  return ResolveThreadCountEnv(std::getenv("CATMARK_THREADS"),
                               HardwareThreads());
}

std::size_t EffectiveThreadCount(std::size_t requested, std::size_t n) {
  std::size_t threads = requested == 0 ? DefaultThreadCount() : requested;
  if (threads > kMaxThreads) threads = kMaxThreads;
  if (n >= 1 && threads > n) threads = n;
  return threads >= 1 ? threads : 1;
}

std::vector<std::size_t> ShardBounds(std::size_t n, std::size_t num_threads) {
  const std::size_t threads = num_threads >= 1 ? num_threads : 1;
  // Shard s covers [bounds[s], bounds[s + 1]); the first n % threads shards
  // take one extra item.
  std::vector<std::size_t> bounds(threads + 1, 0);
  const std::size_t chunk = n / threads;
  const std::size_t extra = n % threads;
  for (std::size_t s = 0; s < threads; ++s) {
    bounds[s + 1] = bounds[s] + chunk + (s < extra ? 1 : 0);
  }
  return bounds;
}

std::size_t ExclusivePrefixSum(std::vector<std::size_t>& counts) {
  std::size_t running = 0;
  for (std::size_t& c : counts) {
    const std::size_t count = c;
    c = running;
    running += count;
  }
  return running;
}

void ParallelFor(std::size_t n, std::size_t num_threads,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = EffectiveThreadCount(num_threads, n);
  if (threads == 1) {
    fn(0, 0, n);
    return;
  }

  const std::vector<std::size_t> bounds = ShardBounds(n, threads);

  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  std::size_t unspawned = threads;
  for (std::size_t s = 1; s < threads; ++s) {
    try {
      workers.emplace_back([&fn, s, begin = bounds[s], end = bounds[s + 1]] {
        fn(s, begin, end);
      });
    } catch (const std::system_error&) {
      // Thread spawn failed (resource pressure): the remaining shards run
      // inline below rather than terminating with joinable threads alive.
      unspawned = s;
      break;
    }
  }
  fn(0, bounds[0], bounds[1]);
  for (std::size_t s = unspawned; s < threads; ++s) {
    fn(s, bounds[s], bounds[s + 1]);
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace catmark
