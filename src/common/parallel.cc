#include "common/parallel.h"

#include <cctype>
#include <cstdlib>
#include <thread>
#include <vector>

namespace catmark {

namespace {

// Hard ceiling on workers, whatever CATMARK_THREADS says: these loops are
// memory-bound well before 256 shards, and an unbounded count (e.g. a
// negative value wrapped by strtoul) would otherwise try to spawn one
// thread per row and abort the process on resource exhaustion.
constexpr std::size_t kMaxThreads = 256;

}  // namespace

std::size_t DefaultThreadCount() {
  if (const char* env = std::getenv("CATMARK_THREADS")) {
    // strtoul silently wraps negative input; reject anything but digits.
    bool numeric = *env != '\0';
    for (const char* p = env; *p != '\0'; ++p) {
      if (!std::isdigit(static_cast<unsigned char>(*p))) {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      const unsigned long v = std::strtoul(env, nullptr, 10);
      if (v >= 1) {
        return v < kMaxThreads ? static_cast<std::size_t>(v) : kMaxThreads;
      }
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<std::size_t>(hw) : 1;
}

std::size_t EffectiveThreadCount(std::size_t requested, std::size_t n) {
  std::size_t threads = requested == 0 ? DefaultThreadCount() : requested;
  if (threads > kMaxThreads) threads = kMaxThreads;
  if (n >= 1 && threads > n) threads = n;
  return threads >= 1 ? threads : 1;
}

void ParallelFor(std::size_t n, std::size_t num_threads,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = EffectiveThreadCount(num_threads, n);
  if (threads == 1) {
    fn(0, 0, n);
    return;
  }

  // Shard s covers [bounds[s], bounds[s + 1]); the first n % threads shards
  // take one extra item.
  std::vector<std::size_t> bounds(threads + 1, 0);
  const std::size_t chunk = n / threads;
  const std::size_t extra = n % threads;
  for (std::size_t s = 0; s < threads; ++s) {
    bounds[s + 1] = bounds[s] + chunk + (s < extra ? 1 : 0);
  }

  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  std::size_t unspawned = threads;
  for (std::size_t s = 1; s < threads; ++s) {
    try {
      workers.emplace_back([&fn, s, begin = bounds[s], end = bounds[s + 1]] {
        fn(s, begin, end);
      });
    } catch (const std::system_error&) {
      // Thread spawn failed (resource pressure): the remaining shards run
      // inline below rather than terminating with joinable threads alive.
      unspawned = s;
      break;
    }
  }
  fn(0, bounds[0], bounds[1]);
  for (std::size_t s = unspawned; s < threads; ++s) {
    fn(s, bounds[s], bounds[s + 1]);
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace catmark
