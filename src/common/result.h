#ifndef CATMARK_COMMON_RESULT_H_
#define CATMARK_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace catmark {

/// Result<T> carries either a value of type T or a non-OK Status
/// (absl::StatusOr / arrow::Result idiom).
///
///   Result<Relation> r = ReadCsv(path);
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value. Intentionally implicit so
  /// `return value;` works in functions returning Result<T>.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed Result from a non-OK status. Intentionally implicit
  /// so `return Status::InvalidArgument(...);` works.
  Result(Status status) : status_(std::move(status)) {
    CATMARK_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; the Result must be ok() (checked).
  const T& value() const& {
    CATMARK_CHECK(ok()) << "value() on failed Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CATMARK_CHECK(ok()) << "value() on failed Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CATMARK_CHECK(ok()) << "value() on failed Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when failed.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or early-returns its
/// Status on failure.
#define CATMARK_CONCAT_INNER_(a, b) a##b
#define CATMARK_CONCAT_(a, b) CATMARK_CONCAT_INNER_(a, b)
#define CATMARK_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                   \
  if (!var.ok()) return var.status();                   \
  lhs = std::move(var).value()
#define CATMARK_ASSIGN_OR_RETURN(lhs, rexpr) \
  CATMARK_ASSIGN_OR_RETURN_IMPL_(            \
      CATMARK_CONCAT_(catmark_result_, __LINE__), lhs, rexpr)

}  // namespace catmark

#endif  // CATMARK_COMMON_RESULT_H_
