#ifndef CATMARK_COMMON_STATUS_H_
#define CATMARK_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace catmark {

/// Canonical error space for the library. The library never throws; all
/// fallible operations return Status (or Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,      ///< Caller passed an argument outside the contract.
  kNotFound,             ///< A named entity (column, value, key) is missing.
  kAlreadyExists,        ///< An entity that must be unique already exists.
  kOutOfRange,           ///< Index or parameter outside its valid range.
  kFailedPrecondition,   ///< Object state does not permit the operation.
  kConstraintViolation,  ///< A data-quality (usability) constraint was hit.
  kIoError,              ///< Filesystem / parsing failure.
  kDataLoss,             ///< Stored data is corrupt (checksum/truncation).
  kInternal,             ///< Invariant breakage inside the library.
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-type status carrying a code and an optional message.
///
/// Idiom (RocksDB/Arrow style):
///   Status s = relation.AppendRow(row);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Default-constructed status is OK.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<CodeName>: <message>" or "OK".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsConstraintViolation() const {
    return code_ == StatusCode::kConstraintViolation;
  }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Early-return helper: propagates a non-OK Status out of the enclosing
/// function.
#define CATMARK_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::catmark::Status _catmark_status = (expr);       \
    if (!_catmark_status.ok()) return _catmark_status; \
  } while (false)

}  // namespace catmark

#endif  // CATMARK_COMMON_STATUS_H_
