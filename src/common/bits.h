#ifndef CATMARK_COMMON_BITS_H_
#define CATMARK_COMMON_BITS_H_

#include <cstdint>

#include "common/check.h"

namespace catmark {

/// Bit-twiddling helpers mirroring the paper's notation (Section 2.1):
/// b(X) is the number of bits required to represent X, msb(X, b) the most
/// significant b bits (left-padding with zeroes when X is narrower), and
/// set_bit(d, a, b) returns d with bit position a set to value b.

/// b(X): number of bits required to represent `x`. By convention b(0) == 1
/// (a value domain of size 1 still needs one bit position to name it).
constexpr int BitWidth(std::uint64_t x) {
  int w = 1;
  while (x > 1) {
    x >>= 1;
    ++w;
  }
  return w;
}

/// msb(X, b): the most significant `b` bits of the `width`-bit representation
/// of `x`. When b(x) < width the value is conceptually left-padded with
/// zeroes, exactly as the paper specifies.
constexpr std::uint64_t Msb(std::uint64_t x, int b, int width = 64) {
  CATMARK_CHECK(b >= 0 && b <= width && width >= 1 && width <= 64);
  if (b == 0) return 0;
  return x >> (width - b);
}

/// set_bit(d, a, bit): `d` with bit position `a` (0 = least significant)
/// forced to `bit` (0 or 1).
constexpr std::uint64_t SetBit(std::uint64_t d, int a, int bit) {
  CATMARK_CHECK(a >= 0 && a < 64 && (bit == 0 || bit == 1));
  const std::uint64_t mask = std::uint64_t{1} << a;
  return bit ? (d | mask) : (d & ~mask);
}

/// Bit at position `a` of `d` (0 = least significant).
constexpr int GetBit(std::uint64_t d, int a) {
  CATMARK_CHECK(a >= 0 && a < 64);
  return static_cast<int>((d >> a) & 1u);
}

/// Smallest power of two >= x (x must be >= 1 and representable).
constexpr std::uint64_t NextPowerOfTwo(std::uint64_t x) {
  std::uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// True when x is a power of two (x >= 1).
constexpr bool IsPowerOfTwo(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Precomputed divisibility test `h % d == 0` for a loop-invariant divisor:
/// the detect hot loop evaluates the fitness criterion H mod e == 0 once per
/// prepared message per candidate key, and a hardware 64-bit divide there
/// costs more than the SipHash itself on short keys. Splits d into
/// 2^k * odd and combines a mask test with the Granlund–Montgomery/Lemire
/// exact-divisibility multiply: for odd m, `h * inv(m) <= UINT64_MAX / m`
/// iff m divides h, where inv(m) is the modular inverse of m mod 2^64.
class DivisibilityCheck {
 public:
  explicit constexpr DivisibilityCheck(std::uint64_t d) {
    CATMARK_CHECK(d >= 1u);
    std::uint64_t odd = d;
    while ((odd & 1u) == 0) {
      odd >>= 1;
      pow2_mask_ = (pow2_mask_ << 1) | 1u;
    }
    // Newton iteration doubles the valid low bits each round; five rounds
    // from a 5-bit-correct seed (m * m ≡ m mod 16 for odd m... the standard
    // seed inv = m is correct mod 2^3) reach all 64 bits.
    std::uint64_t inv = odd;
    for (int i = 0; i < 5; ++i) inv *= 2u - odd * inv;
    odd_inv_ = inv;
    odd_limit_ = ~std::uint64_t{0} / odd;
  }

  constexpr bool operator()(std::uint64_t h) const {
    return (h & pow2_mask_) == 0 && h * odd_inv_ <= odd_limit_;
  }

  /// The precomputed constants, exposed so batch kernels can vectorize the
  /// same test (see DivisibilityMask64 in crypto/siphash_simd.h): h is
  /// divisible iff (h & pow2_mask()) == 0 and h * odd_inv() <= odd_limit(),
  /// with the multiply taken mod 2^64 and the compare unsigned.
  constexpr std::uint64_t odd_inv() const { return odd_inv_; }
  constexpr std::uint64_t odd_limit() const { return odd_limit_; }
  constexpr std::uint64_t pow2_mask() const { return pow2_mask_; }

 private:
  std::uint64_t pow2_mask_ = 0;
  std::uint64_t odd_inv_ = 1;
  std::uint64_t odd_limit_ = ~std::uint64_t{0};
};

}  // namespace catmark

#endif  // CATMARK_COMMON_BITS_H_
