#ifndef CATMARK_COMMON_HEX_H_
#define CATMARK_COMMON_HEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace catmark {

/// Lower-case hex encoding of arbitrary bytes ("deadbeef").
std::string HexEncode(const std::uint8_t* data, std::size_t len);
std::string HexEncode(const std::vector<std::uint8_t>& bytes);

/// Inverse of HexEncode; fails on odd length or non-hex characters.
Result<std::vector<std::uint8_t>> HexDecode(std::string_view hex);

}  // namespace catmark

#endif  // CATMARK_COMMON_HEX_H_
