#ifndef CATMARK_COMMON_STR_UTIL_H_
#define CATMARK_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace catmark {

/// Splits `s` on `sep`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// True when `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace catmark

#endif  // CATMARK_COMMON_STR_UTIL_H_
