#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace catmark {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace catmark
