#ifndef CATMARK_COMMON_BITVEC_H_
#define CATMARK_COMMON_BITVEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace catmark {

/// Dynamically sized bit vector. Watermarks (`wm`) and error-corrected
/// watermark payloads (`wm_data`) are BitVectors throughout the library.
///
/// Bit order: index 0 is the first (leftmost in ToString()) bit.
class BitVector {
 public:
  BitVector() = default;

  /// `size` bits, all initialized to `fill`.
  explicit BitVector(std::size_t size, int fill = 0);

  /// Parses a string of '0'/'1' characters ("101101").
  static Result<BitVector> FromString(std::string_view bits);

  /// Derives a `size`-bit vector from the low bits of the 64-bit words
  /// produced by repeatedly calling `next()` (used for key-derived marks).
  template <typename NextWord>
  static BitVector FromGenerator(std::size_t size, NextWord next) {
    BitVector out(size);
    std::size_t i = 0;
    while (i < size) {
      std::uint64_t w = next();
      for (int j = 0; j < 64 && i < size; ++j, ++i) {
        out.Set(i, static_cast<int>((w >> j) & 1u));
      }
    }
    return out;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bit accessors; index must be < size() (checked).
  int Get(std::size_t i) const;
  void Set(std::size_t i, int bit);
  void Flip(std::size_t i);

  /// Appends one bit at the end.
  void PushBack(int bit);

  /// Number of one-bits.
  std::size_t PopCount() const;

  /// Number of positions where this and `other` differ. Sizes must match.
  std::size_t HammingDistance(const BitVector& other) const;

  /// Fraction of positions that differ, in [0,1]. Sizes must match;
  /// empty vectors have distance 0.
  double NormalizedHammingDistance(const BitVector& other) const;

  /// "0"/"1" characters, index 0 first.
  std::string ToString() const;

  friend bool operator==(const BitVector& a, const BitVector& b);
  friend bool operator!=(const BitVector& a, const BitVector& b) {
    return !(a == b);
  }

 private:
  static constexpr std::size_t kWordBits = 64;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace catmark

#endif  // CATMARK_COMMON_BITVEC_H_
