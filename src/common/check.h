#ifndef CATMARK_COMMON_CHECK_H_
#define CATMARK_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace catmark {
namespace internal {

/// Stream-capable fatal logger backing CATMARK_CHECK. Aborting on programmer
/// error (never on data error — data errors use Status). The destructor
/// fires at the end of the full expression, after any streamed message.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << " CHECK failed: " << expr << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator so `CATMARK_CHECK(x) << msg` compiles to
  // nothing when the check passes (glog idiom).
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace catmark

/// Aborts with a message when `condition` is false. For invariants and
/// programmer errors only; recoverable conditions must return Status.
#define CATMARK_CHECK(condition)                                          \
  (condition)                                                             \
      ? (void)0                                                           \
      : ::catmark::internal::Voidify() &                                  \
            ::catmark::internal::CheckFailure(__FILE__, __LINE__, #condition) \
                .stream()

#define CATMARK_CHECK_EQ(a, b) CATMARK_CHECK((a) == (b))
#define CATMARK_CHECK_NE(a, b) CATMARK_CHECK((a) != (b))
#define CATMARK_CHECK_LT(a, b) CATMARK_CHECK((a) < (b))
#define CATMARK_CHECK_LE(a, b) CATMARK_CHECK((a) <= (b))
#define CATMARK_CHECK_GT(a, b) CATMARK_CHECK((a) > (b))
#define CATMARK_CHECK_GE(a, b) CATMARK_CHECK((a) >= (b))

#endif  // CATMARK_COMMON_CHECK_H_
