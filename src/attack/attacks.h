#ifndef CATMARK_ATTACK_ATTACKS_H_
#define CATMARK_ATTACK_ATTACKS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "random/rng.h"
#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// The adversary model of Section 2.3. Every attack takes the (Mallory-held)
/// relation and returns the attacked copy; all randomness is seeded so
/// experiments are reproducible. Attacks never use the watermark keys — the
/// adversary does not have them.

/// A1 — Horizontal data partitioning: Mallory keeps a random subset holding
/// `keep_fraction` of the tuples ("data loss" in Figure 7).
Result<Relation> HorizontalPartitionAttack(const Relation& rel,
                                           double keep_fraction,
                                           std::uint64_t seed);

/// A2 — Subset addition: adds `add_fraction * N` fresh tuples drawn from the
/// empirical distribution of the existing data (each new tuple clones a
/// random existing one and replaces the primary key with a fresh value), so
/// the useful properties of the set are not significantly altered.
Result<Relation> SubsetAdditionAttack(const Relation& rel, double add_fraction,
                                      std::uint64_t seed);

/// How A3 picks replacement values.
enum class AlterationMode {
  kUniformRandom,   ///< uniform draw from the domain (may pick the old value)
  kForceDifferent,  ///< uniform draw excluding the old value
};

/// A3 — Subset alteration: re-assigns the categorical attribute `column` of
/// `alter_fraction * N` randomly chosen tuples to random domain values.
/// This is the "random attack ... the only alternative available" analyzed
/// in Section 4.4 and swept in Figures 4-6 ("attack size").
Result<Relation> SubsetAlterationAttack(
    const Relation& rel, const std::string& column, double alter_fraction,
    std::uint64_t seed, AlterationMode mode = AlterationMode::kUniformRandom);

/// A4 — Subset re-sorting: random permutation of the tuples. Detection must
/// be invariant to this (and is, since every decision is per-tuple).
Relation ResortAttack(const Relation& rel, std::uint64_t seed);

/// A5 — Vertical data partitioning: Mallory keeps only `columns`. The
/// primary key survives only if listed.
Result<Relation> VerticalPartitionAttack(const Relation& rel,
                                         const std::vector<std::string>& columns);

/// Ground truth of an A6 attack: forward value mapping a_i -> a'_i.
/// Returned for experiment scoring only — a real Mallory keeps it secret.
struct RemapGroundTruth {
  std::unordered_map<std::string, std::string> forward;  // old str -> new str
};

/// A6 — Bijective attribute re-mapping: maps every domain value of `column`
/// to a fresh synthetic label ("R000017"-style), applied consistently to all
/// tuples. Section 4.5's frequency-based recovery inverts it.
struct RemapAttackResult {
  Relation relation;
  RemapGroundTruth ground_truth;
};
Result<RemapAttackResult> BijectiveRemapAttack(const Relation& rel,
                                               const std::string& column,
                                               std::uint64_t seed);

/// Mix-and-match attack: Mallory blends random subsets of two relations
/// (e.g. data bought from two collectors) hoping to dilute both marks —
/// `fraction_from_a` of `a`'s tuples plus (1 - fraction_from_a) of `b`'s.
/// Schemas must match. Each owner's mark keeps its votes from its own
/// tuples, so detection degrades only like subset selection (Figure 7).
Result<Relation> MixAndMatchAttack(const Relation& a, const Relation& b,
                                   double fraction_from_a,
                                   std::uint64_t seed);

}  // namespace catmark

#endif  // CATMARK_ATTACK_ATTACKS_H_
