#include "attack/attacks.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "random/distributions.h"
#include "relation/ops.h"

namespace catmark {

Result<Relation> HorizontalPartitionAttack(const Relation& rel,
                                           double keep_fraction,
                                           std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return SampleRows(rel, keep_fraction, rng);
}

Result<Relation> SubsetAdditionAttack(const Relation& rel, double add_fraction,
                                      std::uint64_t seed) {
  if (add_fraction < 0.0) {
    return Status::InvalidArgument("add_fraction must be >= 0");
  }
  if (rel.empty()) return Status::FailedPrecondition("empty relation");
  Xoshiro256ss rng(seed);
  Relation out = rel;
  const std::size_t to_add = static_cast<std::size_t>(
      std::llround(add_fraction * static_cast<double>(rel.NumRows())));
  const int pk = rel.schema().primary_key_index();

  // Existing PK values (to keep the attacked set key-consistent).
  std::unordered_set<std::int64_t> used_keys;
  if (pk >= 0 && rel.schema().column(static_cast<std::size_t>(pk)).type ==
                     ColumnType::kInt64) {
    for (std::size_t i = 0; i < rel.NumRows(); ++i) {
      const Value& v = rel.Get(i, static_cast<std::size_t>(pk));
      if (v.is_int64()) used_keys.insert(v.AsInt64());
    }
  }

  for (std::size_t n = 0; n < to_add; ++n) {
    // Clone a random tuple: preserves the joint empirical distribution of
    // every non-key attribute, which is the stealthiest addition Mallory
    // can make without understanding the data.
    Row row = rel.row(rng.NextBounded(rel.NumRows()));
    if (pk >= 0) {
      const Column& pk_col = rel.schema().column(static_cast<std::size_t>(pk));
      if (pk_col.type == ColumnType::kInt64) {
        std::int64_t fresh;
        do {
          fresh = static_cast<std::int64_t>(rng.NextBounded(1ULL << 62));
        } while (!used_keys.insert(fresh).second);
        row[static_cast<std::size_t>(pk)] = Value(fresh);
      } else if (pk_col.type == ColumnType::kString) {
        row[static_cast<std::size_t>(pk)] =
            Value("ADD" + std::to_string(rng.Next()));
      }
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<Relation> SubsetAlterationAttack(const Relation& rel,
                                        const std::string& column,
                                        double alter_fraction,
                                        std::uint64_t seed,
                                        AlterationMode mode) {
  if (alter_fraction < 0.0 || alter_fraction > 1.0) {
    return Status::InvalidArgument("alter_fraction must be in [0,1]");
  }
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col,
                           rel.schema().ColumnIndexOrError(column));
  CATMARK_ASSIGN_OR_RETURN(CategoricalDomain domain,
                           CategoricalDomain::FromRelationColumn(rel, col));
  if (domain.size() < 2 && mode == AlterationMode::kForceDifferent) {
    return Status::FailedPrecondition(
        "cannot force a different value on a 1-value domain");
  }

  Xoshiro256ss rng(seed);
  Relation out = rel;
  const std::size_t n_alter = static_cast<std::size_t>(
      std::llround(alter_fraction * static_cast<double>(rel.NumRows())));
  for (std::size_t i :
       SampleWithoutReplacement(rel.NumRows(), n_alter, rng)) {
    std::size_t t = rng.NextBounded(domain.size());
    if (mode == AlterationMode::kForceDifferent) {
      const auto cur = domain.IndexOf(out.Get(i, col));
      while (cur.has_value() && t == *cur) {
        t = rng.NextBounded(domain.size());
      }
    }
    CATMARK_RETURN_IF_ERROR(out.Set(i, col, domain.value(t)));
  }
  return out;
}

Relation ResortAttack(const Relation& rel, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return ShuffleRows(rel, rng);
}

Result<Relation> VerticalPartitionAttack(
    const Relation& rel, const std::vector<std::string>& columns) {
  return Project(rel, columns);
}

Result<Relation> MixAndMatchAttack(const Relation& a, const Relation& b,
                                   double fraction_from_a,
                                   std::uint64_t seed) {
  if (fraction_from_a < 0.0 || fraction_from_a > 1.0) {
    return Status::InvalidArgument("fraction_from_a must be in [0,1]");
  }
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("mix-and-match needs matching schemas");
  }
  Xoshiro256ss rng(seed);
  CATMARK_ASSIGN_OR_RETURN(Relation mixed,
                           SampleRows(a, fraction_from_a, rng));
  CATMARK_ASSIGN_OR_RETURN(const Relation from_b,
                           SampleRows(b, 1.0 - fraction_from_a, rng));
  CATMARK_RETURN_IF_ERROR(AppendAll(mixed, from_b));
  return ShuffleRows(mixed, rng);
}

Result<RemapAttackResult> BijectiveRemapAttack(const Relation& rel,
                                               const std::string& column,
                                               std::uint64_t seed) {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col,
                           rel.schema().ColumnIndexOrError(column));
  CATMARK_ASSIGN_OR_RETURN(CategoricalDomain domain,
                           CategoricalDomain::FromRelationColumn(rel, col));
  Xoshiro256ss rng(seed);

  // Fresh synthetic labels, randomly drawn so neither order nor format leaks
  // the original values.
  std::unordered_set<std::string> used;
  std::vector<std::string> new_labels;
  new_labels.reserve(domain.size());
  while (new_labels.size() < domain.size()) {
    std::string label = "R" + std::to_string(rng.NextBounded(100000000));
    if (used.insert(label).second) new_labels.push_back(std::move(label));
  }

  RemapAttackResult result;
  for (std::size_t t = 0; t < domain.size(); ++t) {
    result.ground_truth.forward[domain.value(t).ToString()] = new_labels[t];
  }

  // The remapped attribute becomes a STRING column regardless of its
  // original type (a new data domain, as Section 4.5 describes).
  std::vector<Column> cols = rel.schema().columns();
  cols[col].type = ColumnType::kString;
  std::string pk;
  if (rel.schema().has_primary_key()) {
    pk = cols[static_cast<std::size_t>(rel.schema().primary_key_index())].name;
  }
  CATMARK_ASSIGN_OR_RETURN(Schema schema, Schema::Create(cols, pk));
  Relation out(std::move(schema));
  out.Reserve(rel.NumRows());
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    Row row = rel.row(i);
    const Value& v = row[col];
    if (!v.is_null()) {
      const auto t = domain.IndexOf(v);
      CATMARK_CHECK(t.has_value());
      row[col] = Value(new_labels[*t]);
    }
    out.AppendRowUnchecked(std::move(row));
  }
  result.relation = std::move(out);
  return result;
}

}  // namespace catmark
