#include "ecc/interleaver.h"

#include <utility>

#include "common/check.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace catmark {

InterleavedCode::InterleavedCode(std::unique_ptr<ErrorCorrectingCode> inner,
                                 SecretKey key)
    : inner_(std::move(inner)), key_(std::move(key)) {
  CATMARK_CHECK(inner_ != nullptr);
}

std::vector<std::size_t> InterleavedCode::Permutation(std::size_t n) const {
  const KeyedHasher hasher(key_);
  Xoshiro256ss rng(hasher.Hash64(std::string_view("interleave")));
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm, rng);
  return perm;
}

Result<BitVector> InterleavedCode::Encode(const BitVector& wm,
                                          std::size_t payload_len) const {
  Result<BitVector> inner = inner_->Encode(wm, payload_len);
  if (!inner.ok()) return inner.status();
  const std::vector<std::size_t> perm = Permutation(payload_len);
  BitVector out(payload_len);
  // Position i of the inner payload lands at perm[i].
  for (std::size_t i = 0; i < payload_len; ++i) {
    out.Set(perm[i], inner.value().Get(i));
  }
  return out;
}

Result<BitVector> InterleavedCode::Decode(const ExtractedPayload& payload,
                                          std::size_t wm_len) const {
  const std::size_t n = payload.bits.size();
  if (payload.present.size() != n) {
    return Status::InvalidArgument("bits/present size mismatch");
  }
  const std::vector<std::size_t> perm = Permutation(n);
  ExtractedPayload inner(n);
  for (std::size_t i = 0; i < n; ++i) {
    inner.bits.Set(i, payload.bits.Get(perm[i]));
    inner.present.Set(i, payload.present.Get(perm[i]));
  }
  return inner_->Decode(inner, wm_len);
}

}  // namespace catmark
