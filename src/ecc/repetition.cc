#include "ecc/repetition.h"

namespace catmark {

// Block j covers payload positions [j * L / m, (j+1) * L / m).
static std::size_t BlockOf(std::size_t i, std::size_t len, std::size_t m) {
  std::size_t j = i * m / len;
  if (j >= m) j = m - 1;
  return j;
}

Result<BitVector> BlockRepetitionCode::Encode(const BitVector& wm,
                                              std::size_t payload_len) const {
  if (wm.empty()) return Status::InvalidArgument("empty watermark");
  if (payload_len < wm.size()) {
    return Status::InvalidArgument("payload shorter than watermark");
  }
  BitVector out(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    out.Set(i, wm.Get(BlockOf(i, payload_len, wm.size())));
  }
  return out;
}

Result<BitVector> BlockRepetitionCode::Decode(const ExtractedPayload& payload,
                                              std::size_t wm_len) const {
  if (wm_len == 0) return Status::InvalidArgument("wm_len must be > 0");
  if (payload.bits.size() < wm_len) {
    return Status::InvalidArgument("payload shorter than watermark");
  }
  std::vector<long> votes(wm_len, 0);
  for (std::size_t i = 0; i < payload.bits.size(); ++i) {
    if (!payload.present.Get(i)) continue;
    votes[BlockOf(i, payload.bits.size(), wm_len)] +=
        payload.bits.Get(i) ? 1 : -1;
  }
  BitVector wm(wm_len);
  for (std::size_t j = 0; j < wm_len; ++j) wm.Set(j, votes[j] > 0 ? 1 : 0);
  return wm;
}

}  // namespace catmark
