#ifndef CATMARK_ECC_HAMMING_H_
#define CATMARK_ECC_HAMMING_H_

#include "ecc/code.h"

namespace catmark {

/// Hamming(7,4) + repetition hybrid (an "alternative encoding method" in the
/// spirit of Section 3, for the ECC ablation). The watermark is chunked into
/// 4-bit nibbles, each encoded as a 7-bit Hamming codeword (corrects one bit
/// per codeword); the full codeword sequence is then repeated cyclically to
/// fill the payload, and decode first majority-votes each codeword position
/// across repetitions, then Hamming-corrects.
class Hamming74Code final : public ErrorCorrectingCode {
 public:
  std::string_view Name() const override { return "hamming74"; }
  std::size_t MinPayloadLength(std::size_t wm_len) const override {
    return 7 * ((wm_len + 3) / 4);
  }
  Result<BitVector> Encode(const BitVector& wm,
                           std::size_t payload_len) const override;
  Result<BitVector> Decode(const ExtractedPayload& payload,
                           std::size_t wm_len) const override;
};

}  // namespace catmark

#endif  // CATMARK_ECC_HAMMING_H_
