#ifndef CATMARK_ECC_IDENTITY_H_
#define CATMARK_ECC_IDENTITY_H_

#include "ecc/code.h"

namespace catmark {

/// No-redundancy code: the payload carries the watermark exactly once
/// (positions beyond |wm| are zero-filled and ignored at decode). Baseline
/// for the ECC ablation — shows what majority voting buys.
class IdentityCode final : public ErrorCorrectingCode {
 public:
  std::string_view Name() const override { return "identity"; }
  std::size_t MinPayloadLength(std::size_t wm_len) const override {
    return wm_len;
  }
  Result<BitVector> Encode(const BitVector& wm,
                           std::size_t payload_len) const override;
  Result<BitVector> Decode(const ExtractedPayload& payload,
                           std::size_t wm_len) const override;
};

}  // namespace catmark

#endif  // CATMARK_ECC_IDENTITY_H_
