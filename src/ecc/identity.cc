#include "ecc/identity.h"

namespace catmark {

Result<BitVector> IdentityCode::Encode(const BitVector& wm,
                                       std::size_t payload_len) const {
  if (wm.empty()) return Status::InvalidArgument("empty watermark");
  if (payload_len < wm.size()) {
    return Status::InvalidArgument("payload shorter than watermark");
  }
  BitVector out(payload_len);
  for (std::size_t i = 0; i < wm.size(); ++i) out.Set(i, wm.Get(i));
  return out;
}

Result<BitVector> IdentityCode::Decode(const ExtractedPayload& payload,
                                       std::size_t wm_len) const {
  if (wm_len == 0) return Status::InvalidArgument("wm_len must be > 0");
  if (payload.bits.size() < wm_len) {
    return Status::InvalidArgument("payload shorter than watermark");
  }
  BitVector wm(wm_len);
  for (std::size_t i = 0; i < wm_len; ++i) {
    wm.Set(i, payload.present.Get(i) ? payload.bits.Get(i) : 0);
  }
  return wm;
}

}  // namespace catmark
