#ifndef CATMARK_ECC_INTERLEAVER_H_
#define CATMARK_ECC_INTERLEAVER_H_

#include <memory>
#include <vector>

#include "crypto/keyed_hash.h"
#include "ecc/code.h"

namespace catmark {

/// Keyed interleaver: wraps an inner code and applies a secret permutation
/// (derived from `key`) to the payload. Converts position-local damage into
/// position-uniform damage, repairing BlockRepetitionCode's weakness; the
/// permutation is key-dependent so an adversary cannot target a block.
class InterleavedCode final : public ErrorCorrectingCode {
 public:
  InterleavedCode(std::unique_ptr<ErrorCorrectingCode> inner, SecretKey key);

  std::string_view Name() const override { return "interleaved"; }
  std::size_t MinPayloadLength(std::size_t wm_len) const override {
    return inner_->MinPayloadLength(wm_len);
  }
  Result<BitVector> Encode(const BitVector& wm,
                           std::size_t payload_len) const override;
  Result<BitVector> Decode(const ExtractedPayload& payload,
                           std::size_t wm_len) const override;

 private:
  /// Deterministic permutation of [0, n) derived from the key.
  std::vector<std::size_t> Permutation(std::size_t n) const;

  std::unique_ptr<ErrorCorrectingCode> inner_;
  SecretKey key_;
};

}  // namespace catmark

#endif  // CATMARK_ECC_INTERLEAVER_H_
