#include "ecc/majority.h"

#include <vector>

namespace catmark {

Result<BitVector> MajorityVotingCode::Encode(const BitVector& wm,
                                             std::size_t payload_len) const {
  if (wm.empty()) return Status::InvalidArgument("empty watermark");
  if (payload_len < MinPayloadLength(wm.size())) {
    return Status::InvalidArgument(
        "payload length " + std::to_string(payload_len) +
        " below watermark length " + std::to_string(wm.size()) +
        " (insufficient bandwidth)");
  }
  BitVector out(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    out.Set(i, wm.Get(i % wm.size()));
  }
  return out;
}

std::vector<double> MajorityVotingCode::DecodeConfidence(
    const ExtractedPayload& payload, std::size_t wm_len) const {
  if (wm_len == 0 || payload.bits.size() != payload.present.size()) {
    return {};
  }
  std::vector<long> margin(wm_len, 0);
  std::vector<long> total(wm_len, 0);
  for (std::size_t i = 0; i < payload.bits.size(); ++i) {
    if (!payload.present.Get(i)) continue;
    margin[i % wm_len] += payload.bits.Get(i) ? 1 : -1;
    ++total[i % wm_len];
  }
  std::vector<double> out(wm_len, 0.0);
  for (std::size_t j = 0; j < wm_len; ++j) {
    if (total[j] > 0) {
      out[j] = static_cast<double>(std::abs(margin[j])) /
               static_cast<double>(total[j]);
    }
  }
  return out;
}

Result<BitVector> MajorityVotingCode::Decode(const ExtractedPayload& payload,
                                             std::size_t wm_len) const {
  if (wm_len == 0) return Status::InvalidArgument("wm_len must be > 0");
  if (payload.bits.size() != payload.present.size()) {
    return Status::InvalidArgument("bits/present size mismatch");
  }
  std::vector<long> votes(wm_len, 0);  // +1 per one-bit, -1 per zero-bit
  for (std::size_t i = 0; i < payload.bits.size(); ++i) {
    if (!payload.present.Get(i)) continue;
    votes[i % wm_len] += payload.bits.Get(i) ? 1 : -1;
  }
  BitVector wm(wm_len);
  for (std::size_t j = 0; j < wm_len; ++j) {
    wm.Set(j, votes[j] > 0 ? 1 : 0);
  }
  return wm;
}

}  // namespace catmark
