#ifndef CATMARK_ECC_MAJORITY_H_
#define CATMARK_ECC_MAJORITY_H_

#include "ecc/code.h"

namespace catmark {

/// Majority voting code — the ECC the paper deploys ("in our implementation
/// we deploy majority voting codes", Section 3.2.1).
///
/// Encode: wm_data[i] = wm[i mod |wm|], spreading each watermark bit across
/// every |wm|-th payload position (positions are themselves scattered over
/// tuples by H(K, k2), so no attack can target one watermark bit).
/// Decode: per watermark bit, majority over the *present* positions of its
/// residue class; ties and fully-erased classes decode to 0.
class MajorityVotingCode final : public ErrorCorrectingCode {
 public:
  std::string_view Name() const override { return "majority-voting"; }
  std::size_t MinPayloadLength(std::size_t wm_len) const override {
    return wm_len;
  }
  Result<BitVector> Encode(const BitVector& wm,
                           std::size_t payload_len) const override;
  Result<BitVector> Decode(const ExtractedPayload& payload,
                           std::size_t wm_len) const override;

  /// |#ones - #zeros| / (#ones + #zeros) per residue class (0 when the
  /// class is fully erased): how decisively each bit was decoded.
  std::vector<double> DecodeConfidence(const ExtractedPayload& payload,
                                       std::size_t wm_len) const override;
};

}  // namespace catmark

#endif  // CATMARK_ECC_MAJORITY_H_
