#ifndef CATMARK_ECC_CODE_H_
#define CATMARK_ECC_CODE_H_

#include <memory>
#include <string_view>

#include "common/bitvec.h"
#include "common/result.h"

namespace catmark {

/// Payload recovered by the detector: the raw wm_data bits plus a presence
/// mask marking which positions at least one surviving fit tuple voted for.
/// Positions never voted for (data loss, A1) are *erasures*, not zeros; the
/// decoders below exclude them, which is what makes Figure 7's graceful
/// degradation under 80% data loss possible.
struct ExtractedPayload {
  BitVector bits;
  BitVector present;

  ExtractedPayload() = default;
  explicit ExtractedPayload(std::size_t len) : bits(len), present(len) {}
};

/// Error correcting code interface (Section 3.2.1): Encode expands a
/// |wm|-bit watermark into a redundant payload wm_data of a chosen length
/// (the available bandwidth N/e); Decode maps a potentially damaged payload
/// back to the most likely watermark.
class ErrorCorrectingCode {
 public:
  virtual ~ErrorCorrectingCode() = default;

  virtual std::string_view Name() const = 0;

  /// Smallest payload length able to carry a `wm_len`-bit watermark.
  virtual std::size_t MinPayloadLength(std::size_t wm_len) const = 0;

  /// wm_data = ECC.encode(wm, payload_len). Fails when payload_len <
  /// MinPayloadLength(wm.size()) — "lack of bandwidth" (Section 2.4).
  virtual Result<BitVector> Encode(const BitVector& wm,
                                   std::size_t payload_len) const = 0;

  /// wm = ECC.decode(wm_data, |wm|); `payload.present` marks erasures.
  virtual Result<BitVector> Decode(const ExtractedPayload& payload,
                                   std::size_t wm_len) const = 0;

  /// Optional per-bit decode confidence in [0,1] (majority margin /
  /// total votes for that bit; 0 for fully erased bits). Codes without a
  /// natural confidence notion return an empty vector.
  virtual std::vector<double> DecodeConfidence(
      const ExtractedPayload& /*payload*/, std::size_t /*wm_len*/) const {
    return {};
  }
};

/// Available code families; kMajorityVoting is the paper's implementation
/// choice, the others exist for the ECC ablation bench.
enum class EccKind {
  kMajorityVoting,    ///< wm_data[i] = wm[i mod |wm|]; positionwise majority.
  kIdentity,          ///< no redundancy; payload carries wm once.
  kBlockRepetition,   ///< contiguous blocks of repeated bits.
  kHamming74,         ///< Hamming(7,4) codewords, repeated to fill bandwidth.
};

std::string_view EccKindName(EccKind kind);

/// Factory for a code instance.
std::unique_ptr<ErrorCorrectingCode> CreateEcc(EccKind kind);

}  // namespace catmark

#endif  // CATMARK_ECC_CODE_H_
