#ifndef CATMARK_ECC_REPETITION_H_
#define CATMARK_ECC_REPETITION_H_

#include "ecc/code.h"

namespace catmark {

/// Contiguous block repetition: the payload is split into |wm| equal blocks,
/// block j filled with wm[j]; decode takes the majority inside each block.
/// Statistically equivalent to MajorityVotingCode under position-uniform
/// damage, but weaker against position-local damage — the ablation bench
/// demonstrates the difference (use with the keyed interleaver to repair it).
class BlockRepetitionCode final : public ErrorCorrectingCode {
 public:
  std::string_view Name() const override { return "block-repetition"; }
  std::size_t MinPayloadLength(std::size_t wm_len) const override {
    return wm_len;
  }
  Result<BitVector> Encode(const BitVector& wm,
                           std::size_t payload_len) const override;
  Result<BitVector> Decode(const ExtractedPayload& payload,
                           std::size_t wm_len) const override;
};

}  // namespace catmark

#endif  // CATMARK_ECC_REPETITION_H_
