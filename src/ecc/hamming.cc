#include "ecc/hamming.h"

#include <vector>

namespace catmark {

namespace {

// Codeword layout [p1 p2 d1 p3 d2 d3 d4] (standard Hamming(7,4) with parity
// bits at positions 1, 2 and 4, 1-indexed).
void EncodeNibble(int d1, int d2, int d3, int d4, int out[7]) {
  const int p1 = d1 ^ d2 ^ d4;
  const int p2 = d1 ^ d3 ^ d4;
  const int p3 = d2 ^ d3 ^ d4;
  out[0] = p1;
  out[1] = p2;
  out[2] = d1;
  out[3] = p3;
  out[4] = d2;
  out[5] = d3;
  out[6] = d4;
}

// Corrects up to one flipped bit in place, then extracts the data bits.
void DecodeNibble(int cw[7], int data[4]) {
  const int s1 = cw[0] ^ cw[2] ^ cw[4] ^ cw[6];
  const int s2 = cw[1] ^ cw[2] ^ cw[5] ^ cw[6];
  const int s3 = cw[3] ^ cw[4] ^ cw[5] ^ cw[6];
  const int syndrome = s1 | (s2 << 1) | (s3 << 2);
  if (syndrome != 0) cw[syndrome - 1] ^= 1;
  data[0] = cw[2];
  data[1] = cw[4];
  data[2] = cw[5];
  data[3] = cw[6];
}

}  // namespace

Result<BitVector> Hamming74Code::Encode(const BitVector& wm,
                                        std::size_t payload_len) const {
  if (wm.empty()) return Status::InvalidArgument("empty watermark");
  const std::size_t min_len = MinPayloadLength(wm.size());
  if (payload_len < min_len) {
    return Status::InvalidArgument(
        "payload length " + std::to_string(payload_len) +
        " below Hamming(7,4) minimum " + std::to_string(min_len));
  }
  // Base codeword string: one 7-bit codeword per 4-bit nibble (zero-padded).
  const std::size_t nibbles = (wm.size() + 3) / 4;
  BitVector base(7 * nibbles);
  for (std::size_t n = 0; n < nibbles; ++n) {
    int d[4] = {0, 0, 0, 0};
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t bit = 4 * n + j;
      if (bit < wm.size()) d[j] = wm.Get(bit);
    }
    int cw[7];
    EncodeNibble(d[0], d[1], d[2], d[3], cw);
    for (int j = 0; j < 7; ++j) {
      base.Set(7 * n + static_cast<std::size_t>(j), cw[j]);
    }
  }
  // Cyclic repetition fills the remaining bandwidth.
  BitVector out(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    out.Set(i, base.Get(i % base.size()));
  }
  return out;
}

Result<BitVector> Hamming74Code::Decode(const ExtractedPayload& payload,
                                        std::size_t wm_len) const {
  if (wm_len == 0) return Status::InvalidArgument("wm_len must be > 0");
  const std::size_t base_len = MinPayloadLength(wm_len);
  if (payload.bits.size() < base_len) {
    return Status::InvalidArgument("payload below Hamming(7,4) minimum");
  }
  // Stage 1: majority per base codeword position across repetitions.
  std::vector<long> votes(base_len, 0);
  for (std::size_t i = 0; i < payload.bits.size(); ++i) {
    if (!payload.present.Get(i)) continue;
    votes[i % base_len] += payload.bits.Get(i) ? 1 : -1;
  }
  // Stage 2: Hamming-correct each codeword.
  BitVector wm(wm_len);
  const std::size_t nibbles = (wm_len + 3) / 4;
  for (std::size_t n = 0; n < nibbles; ++n) {
    int cw[7];
    for (int j = 0; j < 7; ++j) {
      cw[j] = votes[7 * n + static_cast<std::size_t>(j)] > 0 ? 1 : 0;
    }
    int d[4];
    DecodeNibble(cw, d);
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t bit = 4 * n + j;
      if (bit < wm_len) wm.Set(bit, d[j]);
    }
  }
  return wm;
}

}  // namespace catmark
