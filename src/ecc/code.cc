#include "ecc/code.h"

#include "ecc/hamming.h"
#include "ecc/identity.h"
#include "ecc/majority.h"
#include "ecc/repetition.h"

namespace catmark {

std::string_view EccKindName(EccKind kind) {
  switch (kind) {
    case EccKind::kMajorityVoting:
      return "majority-voting";
    case EccKind::kIdentity:
      return "identity";
    case EccKind::kBlockRepetition:
      return "block-repetition";
    case EccKind::kHamming74:
      return "hamming74";
  }
  return "unknown";
}

std::unique_ptr<ErrorCorrectingCode> CreateEcc(EccKind kind) {
  switch (kind) {
    case EccKind::kMajorityVoting:
      return std::make_unique<MajorityVotingCode>();
    case EccKind::kIdentity:
      return std::make_unique<IdentityCode>();
    case EccKind::kBlockRepetition:
      return std::make_unique<BlockRepetitionCode>();
    case EccKind::kHamming74:
      return std::make_unique<Hamming74Code>();
  }
  return nullptr;
}

}  // namespace catmark
