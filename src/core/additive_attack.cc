#include "core/additive_attack.h"

#include "random/rng.h"

namespace catmark {

Result<AdditiveAttackResult> AdditiveWatermarkAttack(
    const Relation& marked, const std::string& key_attr,
    const std::string& target_attr, const WatermarkParams& params,
    std::size_t mallory_wm_bits, std::uint64_t seed) {
  if (mallory_wm_bits == 0) {
    return Status::InvalidArgument("mallory_wm_bits must be > 0");
  }
  AdditiveAttackResult result;
  result.relation = marked;
  result.mallory_keys = WatermarkKeySet::FromSeed(seed);
  Xoshiro256ss rng(seed ^ 0xADD17E);
  result.mallory_wm = BitVector::FromGenerator(
      mallory_wm_bits, [&rng] { return rng.Next(); });

  EmbedOptions options;
  options.key_attr = key_attr;
  options.target_attr = target_attr;
  const Embedder embedder(result.mallory_keys, params);
  CATMARK_ASSIGN_OR_RETURN(
      result.mallory_report,
      embedder.Embed(result.relation, options, result.mallory_wm));
  return result;
}

}  // namespace catmark
