#ifndef CATMARK_CORE_REMAP_RECOVERY_H_
#define CATMARK_CORE_REMAP_RECOVERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// Recovered inverse of a bijective attribute re-mapping (Section 4.5).
struct RemapRecovery {
  /// Sorted domain of the *suspect* (remapped) attribute values.
  CategoricalDomain suspect_domain;

  /// suspect_to_original[i] = original domain index matched to suspect
  /// domain index i, or npos when unmatched (suspect has more values than
  /// the original domain).
  std::vector<std::size_t> suspect_to_original;

  /// Mean |estimated - known| frequency over matched pairs — a confidence
  /// diagnostic (large values mean the matching is probably wrong).
  double mean_frequency_error = 0.0;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Recovers the mapping by the paper's method: estimate the occurrence
/// frequencies of the remapped values, sort both frequency sets, and
/// associate items rank-by-rank ("sample this frequency in the suspected
/// dataset and compare the resulting estimates with the known occurrence
/// frequencies"). Requires the frequency distribution to be non-uniform —
/// the paper's stated precondition.
///
/// `original_frequencies` is the owner-side f_A table, index-aligned with
/// `original_domain` (nA doubles of metadata).
Result<RemapRecovery> RecoverBijectiveMapping(
    const Relation& suspect, const std::string& attr,
    const CategoricalDomain& original_domain,
    const std::vector<double>& original_frequencies);

/// Applies the recovered inverse mapping: returns `suspect` with `attr`
/// translated back into the original domain (unmatched values become NULL,
/// and the column's type reverts to the original domain's type). Watermark
/// detection then proceeds normally on the result.
Result<Relation> ApplyRecoveredMapping(const Relation& suspect,
                                       const std::string& attr,
                                       const RemapRecovery& recovery,
                                       const CategoricalDomain& original_domain);

}  // namespace catmark

#endif  // CATMARK_CORE_REMAP_RECOVERY_H_
