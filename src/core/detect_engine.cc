#include "core/detect_engine.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/bits.h"
#include "common/check.h"
#include "common/parallel.h"
#include "core/codec.h"
#include "core/embedder.h"
#include "core/tuple_plan.h"
#include "crypto/prf.h"
#include "relation/column_store.h"

namespace catmark {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

constexpr std::uint32_t kNoMessage = std::numeric_limits<std::uint32_t>::max();

}  // namespace

/// Per-worker reusable buffers of the PerKeyPass: one k1 chunk, the fit
/// subset's k2 probes, and the vote tally. A sweep touches these thousands
/// of times per worker — none of them may allocate per key.
struct DetectEngine::Scratch {
  std::vector<long> votes;
  std::vector<std::uint64_t> h1;
  std::vector<std::uint64_t> h2;
  std::vector<std::string_view> fit_views;
  std::vector<std::uint32_t> fit_msg;
};

Result<DetectEngine> DetectEngine::Create(const Relation& rel,
                                          const DetectEngineOptions& options) {
  const SteadyClock::time_point start = SteadyClock::now();
  DetectEngine engine;
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t key_col,
      rel.schema().ColumnIndexOrError(options.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t target_col,
      rel.schema().ColumnIndexOrError(options.target_attr));
  if (rel.empty()) {
    return Status::FailedPrecondition("cannot detect in an empty relation");
  }

  if (options.domain_view != nullptr) {
    engine.domain_ = options.domain_view;
  } else if (options.domain.has_value()) {
    engine.owned_domain_ =
        std::make_unique<CategoricalDomain>(*options.domain);
    engine.domain_ = engine.owned_domain_.get();
  } else {
    CATMARK_ASSIGN_OR_RETURN(
        CategoricalDomain recovered,
        CategoricalDomain::FromRelationColumn(rel, target_col));
    engine.owned_domain_ =
        std::make_unique<CategoricalDomain>(std::move(recovered));
    engine.domain_ = engine.owned_domain_.get();
  }
  if (engine.domain_->size() < 2) {
    return Status::FailedPrecondition("domain has fewer than 2 values");
  }

  const std::size_t n = rel.NumRows();
  engine.num_rows_ = n;
  engine.num_threads_ = options.num_threads;
  engine.default_payload_length_ = options.payload_length;
  const std::size_t threads = EffectiveThreadCount(options.num_threads, n);

  const ValueIndexColumn* target_index = options.target_index;
  if (target_index != nullptr && target_index->size() != n) {
    return Status::InvalidArgument(
        "target_index has a different row count than the suspect relation");
  }
  ValueIndexColumn local_index;
  if (target_index == nullptr) {
    local_index =
        ValueIndexColumn::Build(rel, target_col, *engine.domain_, threads);
    target_index = &local_index;
  }

  const ColumnStore& store = rel.store();
  engine.dict_keys_ = store.IsDictColumn(key_col);

  if (engine.dict_keys_) {
    // Dict-code gather: one message per *live* distinct dictionary entry,
    // serialized once — every row holding that entry shares its fitness
    // and position hashes, so the pass never revisits the row dimension.
    const std::vector<Value>& dict = store.Dict(key_col);
    const std::vector<std::int32_t>& codes = store.Codes(key_col);
    const std::vector<std::int64_t>& live = store.DictLiveCounts(key_col);
    const std::size_t dict_threads =
        EffectiveThreadCount(options.num_threads, dict.size());
    engine.arena_.resize(dict_threads);
    // Seed each shard's leading bound *before* the fan-out: ParallelFor
    // never invokes the body for zero items (a dictionary with no live
    // entry — e.g. an all-NULL key column), and TallyShard reads
    // bounds.size() - 1 as the message count.
    engine.bounds_.assign(dict_threads, std::vector<std::size_t>{0});
    std::vector<std::vector<std::uint32_t>> shard_codes(dict_threads);
    ParallelFor(dict.size(), dict_threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  std::vector<std::uint8_t>& arena = engine.arena_[shard];
                  std::vector<std::size_t>& bounds = engine.bounds_[shard];
                  for (std::size_t code = begin; code < end; ++code) {
                    if (live[code] == 0) continue;  // no referencing row
                    dict[code].SerializeForHash(arena);
                    bounds.push_back(arena.size());
                    shard_codes[shard].push_back(
                        static_cast<std::uint32_t>(code));
                  }
                });

    engine.msg_base_.resize(dict_threads);
    std::size_t total = 0;
    std::vector<std::uint32_t> msg_of_code(dict.size(), kNoMessage);
    for (std::size_t s = 0; s < dict_threads; ++s) {
      engine.msg_base_[s] = total;
      for (const std::uint32_t code : shard_codes[s]) {
        msg_of_code[code] = static_cast<std::uint32_t>(total++);
      }
    }
    engine.num_messages_ = total;
    engine.vote_.assign(total, 0);
    engine.usable_.assign(total, 0);
    engine.rows_.assign(total, 0);

    // Fold every row into its message's key-independent aggregates. The
    // per-worker accumulators are |messages| wide, so cap the worker count
    // when a near-unique key column would make the transient copies large
    // (the fold is a cheap streaming pass; extra workers buy little there).
    std::size_t agg_threads = EffectiveThreadCount(options.num_threads, n);
    const std::size_t per_worker_bytes = total * 12;
    while (agg_threads > 1 &&
           (agg_threads - 1) * per_worker_bytes > (std::size_t{64} << 20)) {
      --agg_threads;
    }
    std::vector<std::vector<std::int32_t>> shard_vote(
        agg_threads, std::vector<std::int32_t>(total, 0));
    std::vector<std::vector<std::uint32_t>> shard_usable(
        agg_threads, std::vector<std::uint32_t>(total, 0));
    std::vector<std::vector<std::uint32_t>> shard_rows(
        agg_threads, std::vector<std::uint32_t>(total, 0));
    ParallelFor(n, agg_threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  std::vector<std::int32_t>& vote = shard_vote[shard];
                  std::vector<std::uint32_t>& usable = shard_usable[shard];
                  std::vector<std::uint32_t>& rows = shard_rows[shard];
                  for (std::size_t j = begin; j < end; ++j) {
                    const std::int32_t code = codes[j];
                    if (code < 0) continue;  // NULL key: unfit, no message
                    const std::uint32_t m =
                        msg_of_code[static_cast<std::size_t>(code)];
                    ++rows[m];
                    const std::int32_t t = target_index->index(j);
                    if (t < 0) continue;  // NULL / out-of-domain target
                    ++usable[m];
                    vote[m] += ExtractBitFromValueIndex(
                                   static_cast<std::size_t>(t))
                                   ? 1
                                   : -1;
                  }
                });
    for (std::size_t s = 0; s < agg_threads; ++s) {
      for (std::size_t m = 0; m < total; ++m) {
        engine.vote_[m] += shard_vote[s][m];
        engine.usable_[m] += shard_usable[s][m];
        engine.rows_[m] += shard_rows[s][m];
      }
    }
  } else {
    // Plain key column: one message per non-NULL key row, fused with the
    // vote computation in a single sharded pass (vote 0 = unusable row, so
    // the tally can add it unconditionally).
    const ColumnReader key_reader(store, key_col);
    engine.arena_.resize(threads);
    engine.bounds_.assign(threads, std::vector<std::size_t>{0});
    std::vector<std::vector<std::int32_t>> shard_vote(threads);
    ParallelFor(n, threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  std::vector<std::uint8_t>& arena = engine.arena_[shard];
                  std::vector<std::size_t>& bounds = engine.bounds_[shard];
                  std::vector<std::int32_t>& vote = shard_vote[shard];
                  for (std::size_t j = begin; j < end; ++j) {
                    const Value& key_value = key_reader[j];
                    if (key_value.is_null()) continue;
                    key_value.SerializeForHash(arena);
                    bounds.push_back(arena.size());
                    const std::int32_t t = target_index->index(j);
                    vote.push_back(
                        t < 0 ? 0
                              : (ExtractBitFromValueIndex(
                                     static_cast<std::size_t>(t))
                                     ? 1
                                     : -1));
                  }
                });
    engine.msg_base_.resize(threads);
    std::size_t total = 0;
    for (std::size_t s = 0; s < threads; ++s) {
      engine.msg_base_[s] = total;
      total += shard_vote[s].size();
    }
    engine.num_messages_ = total;
    engine.vote_.reserve(total);
    for (std::size_t s = 0; s < threads; ++s) {
      engine.vote_.insert(engine.vote_.end(), shard_vote[s].begin(),
                          shard_vote[s].end());
    }
  }

  engine.plan_build_seconds_ = SecondsSince(start);
  return engine;
}

void DetectEngine::TallyShard(std::size_t shard, const KeyedPrf& prf_k1,
                              const KeyedPrf& prf_k2,
                              const WatermarkParams& params,
                              std::size_t payload_len,
                              std::vector<long>& votes,
                              std::size_t& usable_votes,
                              std::size_t& fit_tuples,
                              Scratch& scratch) const {
  const std::vector<std::uint8_t>& arena = arena_[shard];
  const std::vector<std::size_t>& bounds = bounds_[shard];
  const std::size_t num_msgs = bounds.size() - 1;
  const std::size_t base = msg_base_[shard];
  const DivisibilityCheck fit_by_e(params.e);
  const std::span<const std::size_t> bounds_span(bounds);

  std::size_t usable = 0;
  std::size_t fit_rows = 0;
  for (std::size_t k = 0; k < num_msgs; k += kKeyHashBatch) {
    const std::size_t len = std::min(kKeyHashBatch, num_msgs - k);
    scratch.h1.resize(len);
    prf_k1.Hash64Arena(arena.data(), bounds_span.subspan(k, len + 1),
                       std::span<std::uint64_t>(scratch.h1));

    // Gather the ~1/e fit messages of the chunk, then position-hash them
    // in one batched k2 call over the bytes still resident in the arena.
    scratch.fit_views.clear();
    scratch.fit_msg.clear();
    for (std::size_t i = 0; i < len; ++i) {
      if (!fit_by_e(scratch.h1[i])) continue;
      const std::size_t m = k + i;
      scratch.fit_views.push_back(std::string_view(
          reinterpret_cast<const char*>(arena.data()) + bounds[m],
          bounds[m + 1] - bounds[m]));
      scratch.fit_msg.push_back(static_cast<std::uint32_t>(base + m));
    }
    scratch.h2.resize(scratch.fit_views.size());
    prf_k2.Hash64Column(scratch.fit_views,
                        std::span<std::uint64_t>(scratch.h2));

    if (dict_keys_) {
      for (std::size_t f = 0; f < scratch.fit_msg.size(); ++f) {
        const std::size_t m = scratch.fit_msg[f];
        const std::size_t idx = PayloadIndexFromHash(
            scratch.h2[f], payload_len, params.bit_index_mode);
        fit_rows += rows_[m];
        usable += usable_[m];
        votes[idx] += vote_[m];
      }
    } else {
      for (std::size_t f = 0; f < scratch.fit_msg.size(); ++f) {
        const std::size_t m = scratch.fit_msg[f];
        const std::size_t idx = PayloadIndexFromHash(
            scratch.h2[f], payload_len, params.bit_index_mode);
        const std::int32_t v = vote_[m];
        ++fit_rows;
        usable += (v != 0);
        votes[idx] += v;
      }
    }
  }
  usable_votes += usable;
  fit_tuples += fit_rows;
}

Result<DetectionResult> DetectEngine::RunPass(const KeyCandidate& candidate,
                                              std::size_t num_threads,
                                              Scratch& scratch) const {
  const SteadyClock::time_point start = SteadyClock::now();
  if (candidate.wm_len == 0) {
    return Status::InvalidArgument("watermark length must be > 0");
  }
  if (!candidate.keys.valid()) {
    return Status::InvalidArgument("invalid watermark key set (k1 == k2?)");
  }
  if (candidate.params.e == 0) {
    return Status::InvalidArgument("encoding parameter e must be >= 1");
  }

  DetectionResult result;
  result.num_tuples = num_rows_;
  std::size_t payload_len;
  if (default_payload_length_ != 0) {
    payload_len = default_payload_length_;
  } else if (candidate.params.payload_length != 0) {
    payload_len = candidate.params.payload_length;
  } else {
    if (num_rows_ / candidate.params.e == 0) {
      return Status::FailedPrecondition(
          "cannot derive the payload length: e exceeds the suspect relation "
          "size (N/e == 0); pass the owner-side payload_length instead");
    }
    payload_len =
        DerivePayloadLength(num_rows_, candidate.params.e, candidate.wm_len);
  }
  result.payload_length = payload_len;
  CATMARK_ASSIGN_OR_RETURN(const PrfKind prf_kind,
                           ResolvePrfKind(candidate.params.prf));
  result.prf = prf_kind;

  const std::unique_ptr<KeyedPrf> prf_k1 =
      CreateKeyedPrf(prf_kind, candidate.keys.k1, candidate.params.hash_algo);
  const std::unique_ptr<KeyedPrf> prf_k2 =
      CreateKeyedPrf(prf_kind, candidate.keys.k2, candidate.params.hash_algo);

  const std::size_t num_shards = arena_.size();
  const std::size_t threads =
      std::max<std::size_t>(1, std::min(num_threads, num_shards));
  std::size_t usable_votes = 0;
  std::size_t fit_tuples = 0;
  if (threads <= 1) {
    scratch.votes.assign(payload_len, 0);
    for (std::size_t s = 0; s < num_shards; ++s) {
      TallyShard(s, *prf_k1, *prf_k2, candidate.params, payload_len,
                 scratch.votes, usable_votes, fit_tuples, scratch);
    }
  } else {
    // Message shards tally into per-worker arrays merged by commutative
    // integer sums — bit-identical at every thread count, like the
    // detector always has been.
    std::vector<std::vector<long>> worker_votes(
        threads, std::vector<long>(payload_len, 0));
    std::vector<std::size_t> worker_usable(threads, 0);
    std::vector<std::size_t> worker_fit(threads, 0);
    ParallelFor(num_shards, threads,
                [&](std::size_t worker, std::size_t begin, std::size_t end) {
                  Scratch local;
                  for (std::size_t s = begin; s < end; ++s) {
                    TallyShard(s, *prf_k1, *prf_k2, candidate.params,
                               payload_len, worker_votes[worker],
                               worker_usable[worker], worker_fit[worker],
                               local);
                  }
                });
    scratch.votes.assign(payload_len, 0);
    for (std::size_t w = 0; w < threads; ++w) {
      usable_votes += worker_usable[w];
      fit_tuples += worker_fit[w];
      for (std::size_t i = 0; i < payload_len; ++i) {
        scratch.votes[i] += worker_votes[w][i];
      }
    }
  }
  result.usable_votes = usable_votes;
  result.fit_tuples = fit_tuples;

  const Status finish =
      FinishVoteTally(std::span<const long>(scratch.votes), candidate.wm_len,
                      candidate.params.ecc, result);
  if (!finish.ok()) return finish;
  result.rows_scanned = num_messages_;
  result.wall_seconds = SecondsSince(start);
  return result;
}

Result<DetectionResult> DetectEngine::Detect(
    const KeyCandidate& candidate) const {
  Scratch scratch;
  return RunPass(candidate,
                 EffectiveThreadCount(num_threads_, num_messages_), scratch);
}

std::vector<Result<DetectionResult>> DetectEngine::DetectMany(
    std::span<const KeyCandidate> candidates) const {
  std::vector<Result<DetectionResult>> results(
      candidates.size(),
      Result<DetectionResult>(Status::Internal("pass not run")));
  if (candidates.empty()) return results;

  // Split the worker budget keys × shards: candidates fan out first (their
  // passes are fully independent), and leftover workers parallelize each
  // pass's message shards.
  const std::size_t budget = EffectiveThreadCount(num_threads_, num_rows_);
  const std::size_t outer = std::min(budget, candidates.size());
  const std::size_t inner = std::max<std::size_t>(1, budget / outer);
  ParallelFor(candidates.size(), outer,
              [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
                Scratch scratch;
                for (std::size_t i = begin; i < end; ++i) {
                  results[i] = RunPass(candidates[i], inner, scratch);
                }
              });
  return results;
}

}  // namespace catmark
