#include "core/detect_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <limits>

#include "common/bits.h"
#include "common/check.h"
#include "common/parallel.h"
#include "core/codec.h"
#include "core/embedder.h"
#include "core/tuple_plan.h"
#include "crypto/prf.h"
#include "crypto/siphash_simd.h"
#include "relation/column_store.h"

namespace catmark {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

constexpr std::uint32_t kNoMessage = std::numeric_limits<std::uint32_t>::max();

}  // namespace

/// Per-worker reusable buffers of the PerKeyPass: one k1 chunk, the fit
/// subset's k2 probes, and the vote tally. A sweep touches these thousands
/// of times per worker — none of them may allocate per key.
struct DetectEngine::Scratch {
  std::vector<long> votes;
  std::vector<std::uint64_t> h1;
  std::vector<std::uint64_t> h2;
  std::vector<std::uint64_t> fit_mask;
  std::vector<std::string_view> fit_views;
  std::vector<std::uint32_t> fit_msg;
};

namespace {

/// Scans a built plan's shard bounds for the equal-length layout: returns
/// the common message length when every message in every shard serialized
/// to the same byte count (and there is at least one message), -1 otherwise.
/// Candidate sanity shared by RunPass and DetectOneShot — one source, so
/// the fused and planned paths cannot drift on what they reject.
Status ValidateCandidate(const KeyCandidate& candidate) {
  if (candidate.wm_len == 0) {
    return Status::InvalidArgument("watermark length must be > 0");
  }
  if (!candidate.keys.valid()) {
    return Status::InvalidArgument("invalid watermark key set (k1 == k2?)");
  }
  if (candidate.params.e == 0) {
    return Status::InvalidArgument("encoding parameter e must be >= 1");
  }
  return Status::OK();
}

/// The payload-length precedence ladder shared by RunPass and
/// DetectOneShot: engine/options override, then the candidate's claimed
/// params, then re-derivation from the suspect size.
Result<std::size_t> ResolveDetectPayloadLength(std::size_t override_len,
                                               const KeyCandidate& candidate,
                                               std::size_t num_rows) {
  if (override_len != 0) return override_len;
  if (candidate.params.payload_length != 0) {
    return candidate.params.payload_length;
  }
  if (num_rows / candidate.params.e == 0) {
    return Status::FailedPrecondition(
        "cannot derive the payload length: e exceeds the suspect relation "
        "size (N/e == 0); pass the owner-side payload_length instead");
  }
  return DerivePayloadLength(num_rows, candidate.params.e, candidate.wm_len);
}

/// Chunk size of the fused one-shot worker. Larger than the sweep's
/// kKeyHashBatch: the one-shot pass touches each chunk exactly once, so
/// per-chunk fixed costs (kernel ramp-up, resizes, two virtual calls)
/// amortize better, and the working set (8-byte vals + 8-byte hashes per
/// row) stays comfortably L2-resident even at this size.
constexpr std::size_t kOneShotBatch = 4096;

std::ptrdiff_t DetectFixedLength(
    const std::vector<std::vector<std::size_t>>& bounds) {
  std::ptrdiff_t len = -1;
  for (const std::vector<std::size_t>& shard : bounds) {
    for (std::size_t i = 0; i + 1 < shard.size(); ++i) {
      const std::ptrdiff_t msg_len =
          static_cast<std::ptrdiff_t>(shard[i + 1] - shard[i]);
      if (len < 0) {
        len = msg_len;
      } else if (msg_len != len) {
        return -1;
      }
    }
  }
  return len;
}

}  // namespace

Result<DetectEngine> DetectEngine::Create(const Relation& rel,
                                          const DetectEngineOptions& options) {
  const SteadyClock::time_point start = SteadyClock::now();
  DetectEngine engine;
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t key_col,
      rel.schema().ColumnIndexOrError(options.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t target_col,
      rel.schema().ColumnIndexOrError(options.target_attr));
  if (rel.empty()) {
    return Status::FailedPrecondition("cannot detect in an empty relation");
  }

  if (options.domain_view != nullptr) {
    engine.domain_ = options.domain_view;
  } else if (options.domain.has_value()) {
    engine.owned_domain_ =
        std::make_unique<CategoricalDomain>(*options.domain);
    engine.domain_ = engine.owned_domain_.get();
  } else {
    CATMARK_ASSIGN_OR_RETURN(
        CategoricalDomain recovered,
        CategoricalDomain::FromRelationColumn(rel, target_col));
    engine.owned_domain_ =
        std::make_unique<CategoricalDomain>(std::move(recovered));
    engine.domain_ = engine.owned_domain_.get();
  }
  if (engine.domain_->size() < 2) {
    return Status::FailedPrecondition("domain has fewer than 2 values");
  }

  const std::size_t n = rel.NumRows();
  engine.num_rows_ = n;
  engine.num_threads_ = options.num_threads;
  engine.default_payload_length_ = options.payload_length;
  const std::size_t threads = EffectiveThreadCount(options.num_threads, n);

  const ValueIndexColumn* target_index = options.target_index;
  if (target_index != nullptr && target_index->size() != n) {
    return Status::InvalidArgument(
        "target_index has a different row count than the suspect relation");
  }
  ValueIndexColumn local_index;
  if (target_index == nullptr) {
    local_index =
        ValueIndexColumn::Build(rel, target_col, *engine.domain_, threads);
    target_index = &local_index;
  }

  const ColumnStore& store = rel.store();
  engine.dict_keys_ = store.IsDictColumn(key_col);

  if (engine.dict_keys_) {
    // Dict-code gather: one message per *live* distinct dictionary entry,
    // serialized once — every row holding that entry shares its fitness
    // and position hashes, so the pass never revisits the row dimension.
    const std::vector<Value>& dict = store.Dict(key_col);
    const std::vector<std::int32_t>& codes = store.Codes(key_col);
    const std::vector<std::int64_t>& live = store.DictLiveCounts(key_col);
    const std::size_t dict_threads =
        EffectiveThreadCount(options.num_threads, dict.size());
    engine.arena_.resize(dict_threads);
    // Seed each shard's leading bound *before* the fan-out: ParallelFor
    // never invokes the body for zero items (a dictionary with no live
    // entry — e.g. an all-NULL key column), and TallyShard reads
    // bounds.size() - 1 as the message count.
    engine.bounds_.assign(dict_threads, std::vector<std::size_t>{0});
    std::vector<std::vector<std::uint32_t>> shard_codes(dict_threads);
    ParallelFor(dict.size(), dict_threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  std::vector<std::uint8_t>& arena = engine.arena_[shard];
                  std::vector<std::size_t>& bounds = engine.bounds_[shard];
                  for (std::size_t code = begin; code < end; ++code) {
                    if (live[code] == 0) continue;  // no referencing row
                    dict[code].SerializeForHash(arena);
                    bounds.push_back(arena.size());
                    shard_codes[shard].push_back(
                        static_cast<std::uint32_t>(code));
                  }
                });

    engine.msg_base_.resize(dict_threads);
    std::size_t total = 0;
    std::vector<std::uint32_t> msg_of_code(dict.size(), kNoMessage);
    for (std::size_t s = 0; s < dict_threads; ++s) {
      engine.msg_base_[s] = total;
      for (const std::uint32_t code : shard_codes[s]) {
        msg_of_code[code] = static_cast<std::uint32_t>(total++);
      }
    }
    engine.num_messages_ = total;
    engine.vote_.assign(total, 0);
    engine.usable_.assign(total, 0);
    engine.rows_.assign(total, 0);

    // Fold every row into its message's key-independent aggregates. The
    // per-worker accumulators are |messages| wide, so cap the worker count
    // when a near-unique key column would make the transient copies large
    // (the fold is a cheap streaming pass; extra workers buy little there).
    std::size_t agg_threads = EffectiveThreadCount(options.num_threads, n);
    const std::size_t per_worker_bytes = total * 12;
    while (agg_threads > 1 &&
           (agg_threads - 1) * per_worker_bytes > (std::size_t{64} << 20)) {
      --agg_threads;
    }
    std::vector<std::vector<std::int32_t>> shard_vote(
        agg_threads, std::vector<std::int32_t>(total, 0));
    std::vector<std::vector<std::uint32_t>> shard_usable(
        agg_threads, std::vector<std::uint32_t>(total, 0));
    std::vector<std::vector<std::uint32_t>> shard_rows(
        agg_threads, std::vector<std::uint32_t>(total, 0));
    ParallelFor(n, agg_threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  std::vector<std::int32_t>& vote = shard_vote[shard];
                  std::vector<std::uint32_t>& usable = shard_usable[shard];
                  std::vector<std::uint32_t>& rows = shard_rows[shard];
                  for (std::size_t j = begin; j < end; ++j) {
                    const std::int32_t code = codes[j];
                    if (code < 0) continue;  // NULL key: unfit, no message
                    const std::uint32_t m =
                        msg_of_code[static_cast<std::size_t>(code)];
                    ++rows[m];
                    const std::int32_t t = target_index->index(j);
                    if (t < 0) continue;  // NULL / out-of-domain target
                    ++usable[m];
                    vote[m] += ExtractBitFromValueIndex(
                                   static_cast<std::size_t>(t))
                                   ? 1
                                   : -1;
                  }
                });
    for (std::size_t s = 0; s < agg_threads; ++s) {
      for (std::size_t m = 0; m < total; ++m) {
        engine.vote_[m] += shard_vote[s][m];
        engine.usable_[m] += shard_usable[s][m];
        engine.rows_[m] += shard_rows[s][m];
      }
    }
  } else {
    // Plain key column: one message per non-NULL key row, fused with the
    // vote computation in a single sharded pass (vote 0 = unusable row, so
    // the tally can add it unconditionally).
    const ColumnReader key_reader(store, key_col);
    engine.arena_.resize(threads);
    engine.bounds_.assign(threads, std::vector<std::size_t>{0});
    std::vector<std::vector<std::int32_t>> shard_vote(threads);
    ParallelFor(n, threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  std::vector<std::uint8_t>& arena = engine.arena_[shard];
                  std::vector<std::size_t>& bounds = engine.bounds_[shard];
                  std::vector<std::int32_t>& vote = shard_vote[shard];
                  for (std::size_t j = begin; j < end; ++j) {
                    const Value& key_value = key_reader[j];
                    if (key_value.is_null()) continue;
                    key_value.SerializeForHash(arena);
                    bounds.push_back(arena.size());
                    const std::int32_t t = target_index->index(j);
                    vote.push_back(
                        t < 0 ? 0
                              : (ExtractBitFromValueIndex(
                                     static_cast<std::size_t>(t))
                                     ? 1
                                     : -1));
                  }
                });
    engine.msg_base_.resize(threads);
    std::size_t total = 0;
    for (std::size_t s = 0; s < threads; ++s) {
      engine.msg_base_[s] = total;
      total += shard_vote[s].size();
    }
    engine.num_messages_ = total;
    engine.vote_.reserve(total);
    for (std::size_t s = 0; s < threads; ++s) {
      engine.vote_.insert(engine.vote_.end(), shard_vote[s].begin(),
                          shard_vote[s].end());
    }
  }

  engine.fixed_len_ = DetectFixedLength(engine.bounds_);
  engine.plan_build_seconds_ = SecondsSince(start);
  return engine;
}

void DetectEngine::TallyShard(std::size_t shard, const KeyedPrf& prf_k1,
                              const KeyedPrf& prf_k2,
                              const WatermarkParams& params,
                              std::size_t payload_len,
                              std::vector<long>& votes,
                              std::size_t& usable_votes,
                              std::size_t& fit_tuples,
                              Scratch& scratch) const {
  const std::vector<std::uint8_t>& arena = arena_[shard];
  const std::vector<std::size_t>& bounds = bounds_[shard];
  const std::size_t num_msgs = bounds.size() - 1;
  const std::size_t base = msg_base_[shard];
  const DivisibilityCheck fit_by_e(params.e);
  const std::span<const std::size_t> bounds_span(bounds);
  const bool fixed = fixed_len_ >= 0;
  const std::size_t fixed_len = fixed ? static_cast<std::size_t>(fixed_len_)
                                      : 0;

  std::size_t usable = 0;
  std::size_t fit_rows = 0;
  for (std::size_t k = 0; k < num_msgs; k += kKeyHashBatch) {
    const std::size_t len = std::min(kKeyHashBatch, num_msgs - k);
    scratch.h1.resize(len);
    if (fixed) {
      // Equal-length layout: message k + i sits at (k + i) * fixed_len, so
      // the SIMD lanes stream at a constant stride, no bounds reads at all.
      prf_k1.Hash64Fixed(arena.data() + k * fixed_len, fixed_len, fixed_len,
                         std::span<std::uint64_t>(scratch.h1));
    } else {
      prf_k1.Hash64Arena(arena.data(), bounds_span.subspan(k, len + 1),
                         std::span<std::uint64_t>(scratch.h1));
    }

    // Compact the ~1/e fit messages of the chunk via a packed fitness
    // bitset (the divisibility test runs AVX2-vectorized, 64 verdicts per
    // word) and set-bit iteration — the selection loop touches only fit
    // messages plus one word per 64 hashes — then position-hash them in
    // one batched k2 call over the bytes still resident in the arena.
    scratch.fit_mask.resize((len + 63) / 64);
    DivisibilityMask64(fit_by_e, scratch.h1.data(), len,
                       scratch.fit_mask.data());
    scratch.fit_msg.clear();
    for (std::size_t w = 0; w < scratch.fit_mask.size(); ++w) {
      std::uint64_t word = scratch.fit_mask[w];
      while (word != 0) {
        scratch.fit_msg.push_back(static_cast<std::uint32_t>(
            k + 64 * w + static_cast<std::size_t>(std::countr_zero(word))));
        word &= word - 1;
      }
    }
    const std::size_t nfit = scratch.fit_msg.size();
    scratch.fit_views.clear();
    for (std::size_t f = 0; f < nfit; ++f) {
      const std::size_t m = scratch.fit_msg[f];
      const std::size_t at = fixed ? m * fixed_len : bounds[m];
      const std::size_t msg_len =
          fixed ? fixed_len : bounds[m + 1] - bounds[m];
      scratch.fit_views.push_back(std::string_view(
          reinterpret_cast<const char*>(arena.data()) + at, msg_len));
    }
    scratch.h2.resize(nfit);
    prf_k2.Hash64Column(scratch.fit_views,
                        std::span<std::uint64_t>(scratch.h2));

    if (dict_keys_) {
      for (std::size_t f = 0; f < nfit; ++f) {
        const std::size_t m = base + scratch.fit_msg[f];
        const std::size_t idx = PayloadIndexFromHash(
            scratch.h2[f], payload_len, params.bit_index_mode);
        fit_rows += rows_[m];
        usable += usable_[m];
        votes[idx] += vote_[m];
      }
    } else {
      for (std::size_t f = 0; f < nfit; ++f) {
        const std::size_t m = base + scratch.fit_msg[f];
        const std::size_t idx = PayloadIndexFromHash(
            scratch.h2[f], payload_len, params.bit_index_mode);
        const std::int32_t v = vote_[m];
        ++fit_rows;
        usable += (v != 0);
        votes[idx] += v;
      }
    }
  }
  usable_votes += usable;
  fit_tuples += fit_rows;
}

Result<DetectionResult> DetectEngine::RunPass(const KeyCandidate& candidate,
                                              std::size_t num_threads,
                                              Scratch& scratch) const {
  const SteadyClock::time_point start = SteadyClock::now();
  const Status valid = ValidateCandidate(candidate);
  if (!valid.ok()) return valid;

  DetectionResult result;
  result.num_tuples = num_rows_;
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t payload_len,
      ResolveDetectPayloadLength(default_payload_length_, candidate,
                                 num_rows_));
  result.payload_length = payload_len;
  CATMARK_ASSIGN_OR_RETURN(const PrfKind prf_kind,
                           ResolvePrfKind(candidate.params.prf));
  result.prf = prf_kind;

  const std::unique_ptr<KeyedPrf> prf_k1 =
      CreateKeyedPrf(prf_kind, candidate.keys.k1, candidate.params.hash_algo);
  const std::unique_ptr<KeyedPrf> prf_k2 =
      CreateKeyedPrf(prf_kind, candidate.keys.k2, candidate.params.hash_algo);

  const std::size_t num_shards = arena_.size();
  const std::size_t threads =
      std::max<std::size_t>(1, std::min(num_threads, num_shards));
  std::size_t usable_votes = 0;
  std::size_t fit_tuples = 0;
  if (threads <= 1) {
    scratch.votes.assign(payload_len, 0);
    for (std::size_t s = 0; s < num_shards; ++s) {
      TallyShard(s, *prf_k1, *prf_k2, candidate.params, payload_len,
                 scratch.votes, usable_votes, fit_tuples, scratch);
    }
  } else {
    // Message shards tally into per-worker arrays merged by commutative
    // integer sums — bit-identical at every thread count, like the
    // detector always has been.
    std::vector<std::vector<long>> worker_votes(
        threads, std::vector<long>(payload_len, 0));
    std::vector<std::size_t> worker_usable(threads, 0);
    std::vector<std::size_t> worker_fit(threads, 0);
    ParallelFor(num_shards, threads,
                [&](std::size_t worker, std::size_t begin, std::size_t end) {
                  Scratch local;
                  for (std::size_t s = begin; s < end; ++s) {
                    TallyShard(s, *prf_k1, *prf_k2, candidate.params,
                               payload_len, worker_votes[worker],
                               worker_usable[worker], worker_fit[worker],
                               local);
                  }
                });
    scratch.votes.assign(payload_len, 0);
    for (std::size_t w = 0; w < threads; ++w) {
      usable_votes += worker_usable[w];
      fit_tuples += worker_fit[w];
      for (std::size_t i = 0; i < payload_len; ++i) {
        scratch.votes[i] += worker_votes[w][i];
      }
    }
  }
  result.usable_votes = usable_votes;
  result.fit_tuples = fit_tuples;

  const Status finish =
      FinishVoteTally(std::span<const long>(scratch.votes), candidate.wm_len,
                      candidate.params.ecc, result);
  if (!finish.ok()) return finish;
  result.rows_scanned = num_rows_;
  result.messages_hashed = num_messages_;
  result.wall_seconds = SecondsSince(start);
  return result;
}

Result<DetectionResult> DetectEngine::Detect(
    const KeyCandidate& candidate) const {
  Scratch scratch;
  return RunPass(candidate,
                 EffectiveThreadCount(num_threads_, num_messages_), scratch);
}

Result<DetectionResult> DetectEngine::DetectOneShot(
    const Relation& rel, const DetectEngineOptions& options,
    const KeyCandidate& candidate) {
  const SteadyClock::time_point start = SteadyClock::now();
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t key_col,
      rel.schema().ColumnIndexOrError(options.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t target_col,
      rel.schema().ColumnIndexOrError(options.target_attr));
  if (rel.empty()) {
    return Status::FailedPrecondition("cannot detect in an empty relation");
  }
  const ColumnStore& store = rel.store();

  if (store.IsDictColumn(key_col)) {
    // Dict-code gather: the plan arena is O(live dict entries) and folding
    // the rows into it is the whole win — Create IS the fused pass here.
    CATMARK_ASSIGN_OR_RETURN(DetectEngine engine, Create(rel, options));
    CATMARK_ASSIGN_OR_RETURN(DetectionResult result,
                             engine.Detect(candidate));
    result.wall_seconds = SecondsSince(start);
    return result;
  }

  // Plain key column: one message per non-NULL key row, so the plan would
  // materialize an O(N) arena + bounds + votes only to stream them back
  // exactly once. Fuse instead: serialize a cache-resident chunk, hash it
  // while hot, fitness-test, and tally — target-domain indices resolved
  // only for the ~1/e fit rows.
  const Status valid = ValidateCandidate(candidate);
  if (!valid.ok()) return valid;

  CategoricalDomain recovered_domain;
  const CategoricalDomain* domain;
  if (options.domain_view != nullptr) {
    domain = options.domain_view;
  } else if (options.domain.has_value()) {
    domain = &*options.domain;
  } else {
    CATMARK_ASSIGN_OR_RETURN(
        recovered_domain,
        CategoricalDomain::FromRelationColumn(rel, target_col));
    domain = &recovered_domain;
  }
  if (domain->size() < 2) {
    return Status::FailedPrecondition("domain has fewer than 2 values");
  }

  const std::size_t n = rel.NumRows();
  const std::size_t threads = EffectiveThreadCount(options.num_threads, n);

  // Domain-index view of the target column: a caller-provided cache wins;
  // a dict-encoded target builds its zero-copy O(dict) view; a plain
  // target resolves lazily per fit row below — never an O(N) index build.
  const ValueIndexColumn* cached_index = options.target_index;
  if (cached_index != nullptr && cached_index->size() != n) {
    return Status::InvalidArgument(
        "target_index has a different row count than the suspect relation");
  }
  ValueIndexColumn local_index;
  if (cached_index == nullptr && store.IsDictColumn(target_col)) {
    local_index = ValueIndexColumn::Build(rel, target_col, *domain, threads);
    cached_index = &local_index;
  }

  DetectionResult result;
  result.num_tuples = n;
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t payload_len,
      ResolveDetectPayloadLength(options.payload_length, candidate, n));
  result.payload_length = payload_len;
  CATMARK_ASSIGN_OR_RETURN(const PrfKind prf_kind,
                           ResolvePrfKind(candidate.params.prf));
  result.prf = prf_kind;
  const std::unique_ptr<KeyedPrf> prf_k1 =
      CreateKeyedPrf(prf_kind, candidate.keys.k1, candidate.params.hash_algo);
  const std::unique_ptr<KeyedPrf> prf_k2 =
      CreateKeyedPrf(prf_kind, candidate.keys.k2, candidate.params.hash_algo);

  const DivisibilityCheck fit_by_e(candidate.params.e);
  const ColumnReader key_reader(store, key_col);
  std::vector<std::vector<long>> worker_votes(
      threads, std::vector<long>(payload_len, 0));
  std::vector<std::size_t> worker_usable(threads, 0);
  std::vector<std::size_t> worker_fit(threads, 0);
  std::vector<std::size_t> worker_hashed(threads, 0);
  ParallelFor(n, threads, [&](std::size_t shard, std::size_t begin,
                              std::size_t end) {
    std::vector<long>& votes = worker_votes[shard];
    std::vector<std::uint8_t> arena;
    std::vector<std::int64_t> vals;      // raw int64 keys, fast path
    std::vector<std::int64_t> fit_vals;  // fit subset of vals, for k2
    std::vector<std::size_t> bounds;
    std::vector<std::uint32_t> rows;
    std::vector<std::uint64_t> h1;
    std::vector<std::uint64_t> h2;
    std::vector<std::uint64_t> fit_mask;
    std::vector<std::uint32_t> fit_sel;
    std::vector<std::string_view> fit_views;
    arena.reserve(kOneShotBatch * 16);
    vals.resize(kOneShotBatch);
    fit_vals.resize(kOneShotBatch);
    bounds.reserve(kOneShotBatch + 1);
    rows.reserve(kOneShotBatch);
    // The plain key column's row storage, iterated directly: the reader's
    // dict branch costs on every row, and the one-shot plain path already
    // established there is no dict.
    const Value* key_col_values = key_reader.values().data();
    std::size_t usable = 0;
    std::size_t fit = 0;
    std::size_t hashed = 0;
    for (std::size_t chunk = begin; chunk < end; chunk += kOneShotBatch) {
      const std::size_t chunk_end = std::min(end, chunk + kOneShotBatch);
      // Int64 fast path — the dominant plain-key shape: gather the raw
      // int64s (one inline variant probe, one store per row — no per-row
      // SerializeForHash, no bounds vector, no byte records at all) and
      // hash them through the typed kernel, which assembles both SipHash
      // input blocks of each canonical 9-byte record in vector registers.
      // While no NULL has appeared the chunk is dense — message i is row
      // chunk + i — so the rows indirection isn't even written. Any
      // non-int64, non-NULL key falls the whole chunk back to the general
      // arena path below.
      bool fast = true;
      bool dense = true;
      std::size_t count = 0;
      {
        std::int64_t* vp = vals.data();
        for (std::size_t j = chunk; j < chunk_end; ++j) {
          const std::int64_t* kv = key_col_values[j].TryInt64();
          if (kv == nullptr) {
            if (key_col_values[j].is_null()) {
              if (dense) {
                dense = false;
                rows.clear();
                for (std::size_t t = 0; t < count; ++t) {
                  rows.push_back(static_cast<std::uint32_t>(chunk + t));
                }
              }
              continue;
            }
            fast = false;
            break;
          }
          vp[count++] = *kv;
          if (!dense) rows.push_back(static_cast<std::uint32_t>(j));
        }
      }
      if (fast) {
        h1.resize(count);
        prf_k1->Hash64Int64Keys(vals.data(), count,
                                std::span<std::uint64_t>(h1));
      } else {
        dense = false;
        rows.clear();
        arena.clear();
        bounds.clear();
        bounds.push_back(0);
        for (std::size_t j = chunk; j < chunk_end; ++j) {
          const Value& key_value = key_col_values[j];
          if (key_value.is_null()) continue;
          key_value.SerializeForHash(arena);
          bounds.push_back(arena.size());
          rows.push_back(static_cast<std::uint32_t>(j));
        }
        count = rows.size();
        h1.resize(count);
        prf_k1->Hash64Arena(arena.data(),
                            std::span<const std::size_t>(bounds),
                            std::span<std::uint64_t>(h1));
      }
      hashed += count;
      // Fitness as a packed bitset (AVX2-vectorized divisibility test),
      // then set-bit iteration: the compaction loop touches only the ~1/e
      // fit rows plus one word per 64 hashes, instead of running the
      // scalar multiply/compare chain once per row.
      fit_mask.resize((count + 63) / 64);
      DivisibilityMask64(fit_by_e, h1.data(), count, fit_mask.data());
      fit_sel.clear();
      for (std::size_t w = 0; w < fit_mask.size(); ++w) {
        std::uint64_t word = fit_mask[w];
        while (word != 0) {
          fit_sel.push_back(static_cast<std::uint32_t>(
              64 * w + static_cast<std::size_t>(std::countr_zero(word))));
          word &= word - 1;
        }
      }
      const std::size_t nfit = fit_sel.size();
      fit += nfit;
      h2.resize(nfit);
      if (fast) {
        for (std::size_t f = 0; f < nfit; ++f) {
          fit_vals[f] = vals[fit_sel[f]];
        }
        prf_k2->Hash64Int64Keys(fit_vals.data(), nfit,
                                std::span<std::uint64_t>(h2));
      } else {
        fit_views.clear();
        for (std::size_t f = 0; f < nfit; ++f) {
          const std::size_t i = fit_sel[f];
          fit_views.push_back(std::string_view(
              reinterpret_cast<const char*>(arena.data()) + bounds[i],
              bounds[i + 1] - bounds[i]));
        }
        prf_k2->Hash64Column(fit_views, std::span<std::uint64_t>(h2));
      }
      for (std::size_t f = 0; f < nfit; ++f) {
        const std::size_t j = dense ? chunk + fit_sel[f] : rows[fit_sel[f]];
        const std::size_t idx = PayloadIndexFromHash(
            h2[f], payload_len, candidate.params.bit_index_mode);
        std::int32_t t;
        if (cached_index != nullptr) {
          t = cached_index->index(j);
        } else {
          const Value& attr_value = rel.Get(j, target_col);
          if (attr_value.is_null()) continue;
          const auto domain_index = domain->IndexOf(attr_value);
          t = domain_index.has_value()
                  ? static_cast<std::int32_t>(*domain_index)
                  : ValueIndexColumn::kNoIndex;
        }
        if (t < 0) continue;  // NULL / out-of-domain target
        ++usable;
        votes[idx] +=
            ExtractBitFromValueIndex(static_cast<std::size_t>(t)) ? 1 : -1;
      }
    }
    worker_usable[shard] = usable;
    worker_fit[shard] = fit;
    worker_hashed[shard] = hashed;
  });

  std::vector<long> votes(payload_len, 0);
  for (std::size_t w = 0; w < threads; ++w) {
    result.usable_votes += worker_usable[w];
    result.fit_tuples += worker_fit[w];
    result.messages_hashed += worker_hashed[w];
    for (std::size_t i = 0; i < payload_len; ++i) {
      votes[i] += worker_votes[w][i];
    }
  }

  const Status finish =
      FinishVoteTally(std::span<const long>(votes), candidate.wm_len,
                      candidate.params.ecc, result);
  if (!finish.ok()) return finish;
  result.rows_scanned = n;
  result.wall_seconds = SecondsSince(start);
  return result;
}

std::vector<Result<DetectionResult>> DetectEngine::DetectMany(
    std::span<const KeyCandidate> candidates) const {
  std::vector<Result<DetectionResult>> results(
      candidates.size(),
      Result<DetectionResult>(Status::Internal("pass not run")));
  if (candidates.empty()) return results;

  // Split the worker budget keys × shards: candidates fan out first (their
  // passes are fully independent), and leftover workers parallelize each
  // pass's message shards.
  const std::size_t budget = EffectiveThreadCount(num_threads_, num_rows_);
  const std::size_t outer = std::min(budget, candidates.size());
  const std::size_t inner = std::max<std::size_t>(1, budget / outer);
  ParallelFor(candidates.size(), outer,
              [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
                Scratch scratch;
                for (std::size_t i = begin; i < end; ++i) {
                  results[i] = RunPass(candidates[i], inner, scratch);
                }
              });
  return results;
}

}  // namespace catmark
