#include "core/remap_recovery.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "relation/histogram.h"

namespace catmark {

Result<RemapRecovery> RecoverBijectiveMapping(
    const Relation& suspect, const std::string& attr,
    const CategoricalDomain& original_domain,
    const std::vector<double>& original_frequencies) {
  if (original_frequencies.size() != original_domain.size()) {
    return Status::InvalidArgument(
        "original_frequencies must align with original_domain");
  }
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col,
                           suspect.schema().ColumnIndexOrError(attr));

  RemapRecovery recovery;
  CATMARK_ASSIGN_OR_RETURN(
      recovery.suspect_domain,
      CategoricalDomain::FromRelationColumn(suspect, col));
  CATMARK_ASSIGN_OR_RETURN(
      FrequencyHistogram hist,
      FrequencyHistogram::Compute(suspect, col, recovery.suspect_domain));

  // Rank both sides by frequency (descending) and pair rank-by-rank: over a
  // large sample, E[f(a'_i)] concentrates around f(a_j) of the true
  // pre-image, so frequency rank is preserved.
  std::vector<std::size_t> suspect_order(recovery.suspect_domain.size());
  std::iota(suspect_order.begin(), suspect_order.end(), 0);
  std::sort(suspect_order.begin(), suspect_order.end(),
            [&](std::size_t a, std::size_t b) {
              return hist.frequency(a) > hist.frequency(b);
            });

  std::vector<std::size_t> original_order(original_domain.size());
  std::iota(original_order.begin(), original_order.end(), 0);
  std::sort(original_order.begin(), original_order.end(),
            [&](std::size_t a, std::size_t b) {
              return original_frequencies[a] > original_frequencies[b];
            });

  recovery.suspect_to_original.assign(recovery.suspect_domain.size(),
                                      RemapRecovery::npos);
  const std::size_t matched =
      std::min(suspect_order.size(), original_order.size());
  double err = 0.0;
  for (std::size_t rank = 0; rank < matched; ++rank) {
    recovery.suspect_to_original[suspect_order[rank]] = original_order[rank];
    err += std::abs(hist.frequency(suspect_order[rank]) -
                    original_frequencies[original_order[rank]]);
  }
  recovery.mean_frequency_error =
      matched == 0 ? 0.0 : err / static_cast<double>(matched);
  return recovery;
}

Result<Relation> ApplyRecoveredMapping(
    const Relation& suspect, const std::string& attr,
    const RemapRecovery& recovery, const CategoricalDomain& original_domain) {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col,
                           suspect.schema().ColumnIndexOrError(attr));

  // Restore the column's type to the original domain's value type.
  std::vector<Column> cols = suspect.schema().columns();
  const Value& probe = original_domain.value(0);
  cols[col].type = probe.is_int64()
                       ? ColumnType::kInt64
                       : (probe.is_double() ? ColumnType::kDouble
                                            : ColumnType::kString);
  std::string pk;
  if (suspect.schema().has_primary_key()) {
    pk = cols[static_cast<std::size_t>(suspect.schema().primary_key_index())]
             .name;
  }
  CATMARK_ASSIGN_OR_RETURN(Schema schema, Schema::Create(cols, pk));

  Relation out(std::move(schema));
  out.Reserve(suspect.NumRows());
  for (std::size_t r = 0; r < suspect.NumRows(); ++r) {
    Row row = suspect.row(r);
    Value& v = row[col];
    if (!v.is_null()) {
      const auto s_idx = recovery.suspect_domain.IndexOf(v);
      if (s_idx.has_value() &&
          recovery.suspect_to_original[*s_idx] != RemapRecovery::npos) {
        v = original_domain.value(recovery.suspect_to_original[*s_idx]);
      } else {
        v = Value();  // unmatched: erase rather than mislead the detector
      }
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace catmark
