#ifndef CATMARK_CORE_MULTI_ATTRIBUTE_H_
#define CATMARK_CORE_MULTI_ATTRIBUTE_H_

#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "core/keys.h"
#include "core/params.h"
#include "quality/assessor.h"
#include "relation/relation.h"

namespace catmark {

/// One marking pass: `key_attr` plays K, `target_attr` is modulated.
struct AttributePair {
  std::string key_attr;
  std::string target_attr;
};

/// Builds the pair closure of Section 3.3: primary-key-anchored passes
/// first (mark(K, A), mark(K, B), ...), then one pass per unordered
/// categorical pair, directed so that the attribute modified is the one
/// carrying fewer prior modifications ("by modifying A (assumed un-modified
/// yet ...) we effectively spread the watermark throughout the entire
/// data"). Attributes with single-value domains are excluded as targets.
Result<std::vector<AttributePair>> PlanPairClosure(const Relation& rel);

/// Per-pass outcome of a multi-attribute embedding.
struct PassReport {
  AttributePair pair;
  EmbedReport report;
};

struct MultiEmbedReport {
  std::vector<PassReport> passes;
  std::size_t total_altered = 0;
  std::size_t total_skipped_by_ledger = 0;
};

/// Per-pass detection outcome ("more rights witnesses to testify").
struct PairDetection {
  AttributePair pair;
  DetectionResult detection;
};

/// Multiple attribute embeddings (Section 3.3): applies the base scheme once
/// per attribute pair, sharing one interference ledger, which both defeats
/// A5 vertical partitioning (any surviving pair still carries the mark) and
/// breaks the primary-key dependency of the base algorithm.
class MultiAttributeEmbedder {
 public:
  MultiAttributeEmbedder(WatermarkKeySet keys, WatermarkParams params);

  /// Runs every pass in order over `rel`. If `assessor` is given, the caller
  /// must have called assessor->Begin(rel).
  Result<MultiEmbedReport> EmbedAll(Relation& rel,
                                    const std::vector<AttributePair>& pairs,
                                    const BitVector& wm,
                                    QualityAssessor* assessor = nullptr) const;

  /// Detects through every pair whose two attributes survive in `rel`
  /// (pairs with missing attributes are silently skipped — that is the A5
  /// scenario). `payload_length` is the embed-time |wm_data| (same for all
  /// passes: it depends only on N and e).
  Result<std::vector<PairDetection>> DetectAll(
      const Relation& rel, const std::vector<AttributePair>& pairs,
      std::size_t wm_len, std::size_t payload_length) const;

  /// Combines the per-pair decoded marks by positionwise majority — the
  /// aggregate testimony of all witnesses.
  static BitVector CombineDetections(
      const std::vector<PairDetection>& detections, std::size_t wm_len);

 private:
  WatermarkKeySet keys_;
  WatermarkParams params_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_MULTI_ATTRIBUTE_H_
