#include "core/keys.h"

#include <string>

namespace catmark {

WatermarkKeySet WatermarkKeySet::FromPassphrase(std::string_view passphrase) {
  WatermarkKeySet ks;
  ks.k1 = SecretKey::FromPassphrase(std::string(passphrase) + "/k1");
  ks.k2 = SecretKey::FromPassphrase(std::string(passphrase) + "/k2");
  return ks;
}

WatermarkKeySet WatermarkKeySet::FromSeed(std::uint64_t seed) {
  WatermarkKeySet ks;
  ks.k1 = SecretKey::FromSeed(seed * 2 + 0);
  ks.k2 = SecretKey::FromSeed(seed * 2 + 1);
  return ks;
}

}  // namespace catmark
