#include "core/numeric_set_mark.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace catmark {

NumericSetMarker::NumericSetMarker(SecretKey key, NumericSetMarkParams params)
    : key_(std::move(key)), params_(params) {
  CATMARK_CHECK(params_.quantization_step > 0.0);
}

std::vector<std::size_t> NumericSetMarker::ChunkBounds(
    std::size_t n, std::size_t chunks) const {
  // Base boundaries at the i/chunks quantiles, each jittered by up to 1/8
  // chunk width using the keyed hash. The jitter is computed as a *relative*
  // offset so boundaries sit at the same quantiles whatever n is — that is
  // what makes detection agree with embedding after subset selection.
  const KeyedHasher hasher(key_);
  std::vector<std::size_t> bounds(chunks + 1);
  bounds[0] = 0;
  bounds[chunks] = n;
  const double width = static_cast<double>(n) / static_cast<double>(chunks);
  for (std::size_t i = 1; i < chunks; ++i) {
    const std::uint64_t h = hasher.Hash64(static_cast<std::uint64_t>(i));
    const double jitter_fraction =
        static_cast<double>(h % 1024) / 1024.0 - 0.5;  // [-0.5, 0.5)
    long b = std::lround(static_cast<double>(i) * width +
                         jitter_fraction * width / 4.0);
    if (b < static_cast<long>(bounds[i - 1] + 1)) {
      b = static_cast<long>(bounds[i - 1] + 1);
    }
    if (b > static_cast<long>(n - (chunks - i))) {
      b = static_cast<long>(n - (chunks - i));
    }
    bounds[i] = static_cast<std::size_t>(b);
  }
  return bounds;
}

namespace {

double StdDev(const std::vector<double>& values) {
  const double mean =
      std::accumulate(values.begin(), values.end(), 0.0) /
      static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size()));
}

}  // namespace

Result<NumericSetEmbedReport> NumericSetMarker::Embed(
    std::vector<double>& values, const BitVector& wm) const {
  if (wm.empty()) return Status::InvalidArgument("empty watermark");
  if (values.size() < 4 * wm.size()) {
    return Status::FailedPrecondition(
        "numeric set needs at least 4 items per watermark bit");
  }
  const double sd = StdDev(values);
  if (sd <= 0.0) {
    return Status::FailedPrecondition(
        "constant numeric set has no embedding bandwidth (zero entropy)");
  }
  const double q = params_.quantization_step;

  // Work on sort order; remember original positions so the set keeps its
  // (semantically meaningless) storage order.
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });

  const std::vector<std::size_t> bounds =
      ChunkBounds(values.size(), wm.size());

  NumericSetEmbedReport report;
  report.chunk_means.resize(wm.size());
  for (std::size_t c = 0; c < wm.size(); ++c) {
    const std::size_t lo = bounds[c], hi = bounds[c + 1];
    double mean = 0.0;
    for (std::size_t i = lo; i < hi; ++i) mean += values[order[i]];
    mean /= static_cast<double>(hi - lo);

    // Nearest correct-parity quantization cell centre.
    long k = std::lround(mean / q);
    if ((std::abs(k) & 1L) != wm.Get(c)) {
      const long down = k - 1, up = k + 1;
      k = std::abs(mean / q - static_cast<double>(down)) <=
                  std::abs(mean / q - static_cast<double>(up))
              ? down
              : up;
    }
    const double delta = static_cast<double>(k) * q - mean;
    for (std::size_t i = lo; i < hi; ++i) values[order[i]] += delta;
    report.max_item_change = std::max(report.max_item_change,
                                      std::abs(delta));
    report.total_change +=
        std::abs(delta) * static_cast<double>(hi - lo);
    report.chunk_means[c] = static_cast<double>(k) * q;
  }
  return report;
}

Result<BitVector> NumericSetMarker::Detect(const std::vector<double>& values,
                                           std::size_t wm_len) const {
  if (wm_len == 0) return Status::InvalidArgument("wm_len must be > 0");
  if (values.size() < wm_len) {
    return Status::FailedPrecondition("set smaller than the mark");
  }
  const double q = params_.quantization_step;

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<std::size_t> bounds = ChunkBounds(sorted.size(), wm_len);

  BitVector wm(wm_len);
  for (std::size_t c = 0; c < wm_len; ++c) {
    const std::size_t lo = bounds[c], hi = bounds[c + 1];
    double mean = 0.0;
    for (std::size_t i = lo; i < hi; ++i) mean += sorted[i];
    mean /= static_cast<double>(hi - lo);
    const long k = std::lround(mean / q);
    wm.Set(c, static_cast<int>(std::abs(k) & 1L));
  }
  return wm;
}

}  // namespace catmark
