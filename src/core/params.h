#ifndef CATMARK_CORE_PARAMS_H_
#define CATMARK_CORE_PARAMS_H_

#include <cstdint>
#include <optional>

#include "crypto/hash.h"
#include "crypto/prf.h"
#include "ecc/code.h"

namespace catmark {

/// How a 64-bit keyed hash is reduced to a wm_data position in [0, L).
enum class BitIndexMode {
  /// H mod L — always in range, uniform; the library default.
  kModulo,
  /// Paper-literal msb(H, b(L)) followed by a final % L guard (the paper's
  /// expression can exceed L-1 whenever L is not a power of two; see
  /// DESIGN.md "Faithfulness notes").
  kMsbModL,
};

/// Tunable parameters of the watermarking scheme (Section 3.2).
struct WatermarkParams {
  /// Encoding parameter e: a tuple is "fit" iff H(T(K), k1) mod e == 0, so
  /// roughly N/e tuples carry the mark. Controls the trade-off between data
  /// alteration (fewer fit tuples) and resilience (more fit tuples) —
  /// analyzed in Section 4.4 and swept in Figures 5-6.
  std::uint64_t e = 60;

  /// crypto_hash() choice (MD5/SHA per Section 2.2; SHA-256 default). Only
  /// consulted by the keyed-hash PRF backend below.
  HashAlgorithm hash_algo = HashAlgorithm::kSha256;

  /// Keyed-PRF backend for tuple fitness / value / position selection.
  /// nullopt = auto: the CATMARK_PRF environment variable when set (unknown
  /// names are InvalidArgument at embed/detect time), otherwise the legacy
  /// keyed hash. Embedder and detector must use the same backend — the
  /// certificate records which one embedding used, and streaming sessions
  /// (SessionSpec::Validate) refuse to run until the backend is pinned from
  /// the embed report or certificate: a later process must never re-resolve
  /// CATMARK_PRF for inserts into an already-marked relation.
  std::optional<PrfKind> prf;

  /// Error correcting code for wm -> wm_data (majority voting in the paper).
  EccKind ecc = EccKind::kMajorityVoting;

  BitIndexMode bit_index_mode = BitIndexMode::kModulo;

  /// Payload (|wm_data|) length. 0 = derive as max(|wm|, N/e) at embed time.
  /// The detector must be given the same value (the embed report carries
  /// it): after a subset-selection attack the surviving tuple count N' no
  /// longer determines the original N/e.
  std::size_t payload_length = 0;

  /// Worker threads for the embed/detect pipeline's parallel stages (plan
  /// precompute, domain-index view, vote tally). 0 = auto: the
  /// CATMARK_THREADS environment variable when set, otherwise the hardware
  /// thread count. Results are bit-identical for every value — embedding
  /// applies its plan sequentially and detection merges per-thread integer
  /// tallies — so this knob only trades wall-clock for cores.
  std::size_t num_threads = 0;

  /// Embedding skips alterations that would drop a category of the target
  /// attribute below this many occurrences. Draining a category would (a)
  /// remove it from a blindly re-derived domain, shifting every higher
  /// value index and scrambling detection, and (b) be a conspicuous
  /// semantic change (a product vanishing from the catalogue). The skipped
  /// bits are absorbed by the ECC. 0 disables the guard.
  long min_category_keep = 1;
};

}  // namespace catmark

#endif  // CATMARK_CORE_PARAMS_H_
