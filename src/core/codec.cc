#include "core/codec.h"

#include <vector>

#include "common/bits.h"
#include "common/check.h"

namespace catmark {

FitnessSelector::FitnessSelector(const SecretKey& k1, std::uint64_t e,
                                 HashAlgorithm algo)
    : hasher_(k1, algo), e_(e) {
  CATMARK_CHECK_GE(e, 1u) << "encoding parameter e must be >= 1";
}

std::uint64_t FitnessSelector::KeyHash(const Value& key_value) const {
  return HashValue(hasher_, key_value);
}

std::uint64_t FitnessSelector::KeyHash(const Value& key_value,
                                       HashScratch& scratch) const {
  return HashValue(hasher_, key_value, scratch);
}

std::uint64_t HashValue(const KeyedHasher& hasher, const Value& v) {
  HashScratch bytes;
  bytes.reserve(24);
  v.SerializeForHash(bytes);
  return hasher.Hash64(bytes.data(), bytes.size());
}

std::uint64_t HashValue(const KeyedHasher& hasher, const Value& v,
                        HashScratch& scratch) {
  scratch.clear();
  v.SerializeForHash(scratch);
  return hasher.Hash64(scratch.data(), scratch.size());
}

std::uint64_t HashValue(const KeyedPrf& prf, const Value& v,
                        HashScratch& scratch) {
  scratch.clear();
  v.SerializeForHash(scratch);
  return prf.Hash64(scratch.data(), scratch.size());
}

std::size_t PayloadIndexFromHash(std::uint64_t h, std::size_t payload_len,
                                 BitIndexMode mode) {
  CATMARK_CHECK_GE(payload_len, 1u);
  switch (mode) {
    case BitIndexMode::kModulo:
      return static_cast<std::size_t>(h % payload_len);
    case BitIndexMode::kMsbModL: {
      // Paper-literal msb(H, b(L)); the % L guard only fires when L is not
      // a power of two.
      const int b = BitWidth(payload_len);
      return static_cast<std::size_t>(Msb(h, b) % payload_len);
    }
  }
  return 0;
}

std::size_t SelectValueIndex(std::uint64_t h1, std::size_t domain_size,
                             int bit) {
  CATMARK_CHECK_GE(domain_size, 2u)
      << "a 1-value categorical attribute has no embedding channel";
  CATMARK_CHECK(bit == 0 || bit == 1);
  std::uint64_t t = h1 % domain_size;
  t = SetBit(t, 0, bit);
  if (t >= domain_size) {
    // Only reachable when t was domain_size - 1 (odd nA) and bit forced it
    // to domain_size; stepping back 2 keeps the LSB intact.
    t -= 2;
  }
  return static_cast<std::size_t>(t);
}

}  // namespace catmark
