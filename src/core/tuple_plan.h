#ifndef CATMARK_CORE_TUPLE_PLAN_H_
#define CATMARK_CORE_TUPLE_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/keys.h"
#include "core/params.h"
#include "relation/relation.h"

namespace catmark {

/// Per-tuple precompute shared by the embed and detect hot paths, built in
/// one thread-parallel pass over the key column (structure-of-arrays so the
/// later per-row loops stream through flat memory):
///
///   - fit[j]: the Section 3.2.1 fitness verdict H(T_j(K), k1) mod e == 0;
///     NULL keys are unfit.
///   - h1[j]: the fitness hash itself (valid iff fit[j]) — it also drives
///     value selection, so it is computed once, not once per use.
///   - payload_index[j]: the k2-derived wm_data position (valid iff fit[j];
///     only populated when the k2 position path is in use — the Figure 1(b)
///     embedding-map path assigns indices sequentially at apply time).
///
/// Every worker reuses one HashScratch, so plan construction performs no
/// per-row allocations.
struct TuplePlan {
  std::vector<std::uint8_t> fit;
  std::vector<std::uint64_t> h1;
  std::vector<std::uint32_t> payload_index;
  std::size_t fit_count = 0;

  /// Per-shard fit counts over the ShardBounds(size(), shard_fit.size())
  /// row partition — the sharded embed apply pass prefix-sums these to
  /// assign each committing tuple its global map index without a serial
  /// counting pass (valid whenever no ledger filters fit tuples further).
  std::vector<std::size_t> shard_fit;

  std::size_t size() const { return fit.size(); }
};

/// Builds the plan with `num_threads` workers (0 = auto). `payload_len` is
/// only consulted when `with_payload_index` is set; it must then be >= 1 and
/// fit in 32 bits.
TuplePlan BuildTuplePlan(const Relation& rel, std::size_t key_col,
                         const WatermarkKeySet& keys,
                         const WatermarkParams& params,
                         std::size_t payload_len, bool with_payload_index,
                         std::size_t num_threads = 0);

}  // namespace catmark

#endif  // CATMARK_CORE_TUPLE_PLAN_H_
