#ifndef CATMARK_CORE_TUPLE_PLAN_H_
#define CATMARK_CORE_TUPLE_PLAN_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/keys.h"
#include "core/params.h"
#include "crypto/prf.h"
#include "relation/relation.h"

namespace catmark {

/// Number of values batched into one KeyedPrf::Hash64Column call by the
/// plan build and the streaming insert path: large enough to amortize the
/// virtual dispatch and key-schedule reads, small enough that the serialized
/// arena and hash outputs stay cache-resident per worker.
inline constexpr std::size_t kKeyHashBatch = 1024;

/// Reusable chunk builder for batched keyed hashing: values serialize
/// back-to-back into one grown-once arena, and the whole chunk goes through
/// a single Hash64Column call. The string_view probes are materialized only
/// once the chunk is complete (the arena may reallocate while it grows).
/// Shared by the tuple-plan precompute and the streaming insert path so the
/// two batch channels cannot drift apart.
struct KeyHashBatch {
  std::vector<std::uint8_t> arena;
  std::vector<std::size_t> ends;  // arena offset after each value
  std::vector<std::size_t> ids;   // row index / dict code per value
  std::vector<std::string_view> views;
  std::vector<std::uint64_t> h1;

  KeyHashBatch() {
    arena.reserve(kKeyHashBatch * 24);
    ends.reserve(kKeyHashBatch);
    ids.reserve(kKeyHashBatch);
    views.reserve(kKeyHashBatch);
    h1.reserve(kKeyHashBatch);
  }

  void Clear() {
    arena.clear();
    ends.clear();
    ids.clear();
  }

  std::size_t size() const { return ends.size(); }
  bool full() const { return ends.size() >= kKeyHashBatch; }

  void Add(const Value& v, std::size_t id) {
    v.SerializeForHash(arena);
    ends.push_back(arena.size());
    ids.push_back(id);
  }

  /// Adds an already-serialized value (the streaming path probes its verdict
  /// cache with the serialized bytes first, so they are already at hand).
  void AddSerialized(std::span<const std::uint8_t> bytes, std::size_t id) {
    arena.insert(arena.end(), bytes.begin(), bytes.end());
    ends.push_back(arena.size());
    ids.push_back(id);
  }

  /// One batched PRF call over the whole chunk; results land in h1[i] /
  /// views[i] parallel to ids[i].
  void Hash(const KeyedPrf& prf);
};

/// Per-tuple precompute shared by the embed and detect hot paths, built in
/// one thread-parallel pass over the key column (structure-of-arrays so the
/// later per-row loops stream through flat memory):
///
///   - fit[j]: the Section 3.2.1 fitness verdict H(T_j(K), k1) mod e == 0;
///     NULL keys are unfit.
///   - h1[j]: the fitness hash itself (valid iff fit[j]) — it also drives
///     value selection, so it is computed once, not once per use.
///   - payload_index[j]: the k2-derived wm_data position (valid iff fit[j];
///     only populated when the k2 position path is in use — the Figure 1(b)
///     embedding-map path assigns indices sequentially at apply time).
///
/// All keyed hashing goes through the configured KeyedPrf backend
/// (TuplePlanOptions::prf). Dictionary-encoded key columns hash each live
/// distinct dictionary entry once into a per-dict-code h1/fit cache and
/// gather per-row results through the code vector; plain columns serialize
/// rows into per-worker arenas and hash them through the batch
/// Hash64Column API, so neither path allocates or virtual-dispatches
/// per row.
struct TuplePlan {
  std::vector<std::uint8_t> fit;
  std::vector<std::uint64_t> h1;
  std::vector<std::uint32_t> payload_index;
  std::size_t fit_count = 0;

  /// Messages the build pushed through the k1 PRF: live distinct dictionary
  /// entries on the cached path, non-NULL key rows otherwise. Feeds
  /// DetectionResult::messages_hashed so map-path detections report the
  /// same work accounting as the engine.
  std::size_t messages_hashed = 0;

  /// Per-shard fit counts over the ShardBounds(size(), shard_fit.size())
  /// row partition — the sharded embed apply pass prefix-sums these to
  /// assign each committing tuple its global map index without a serial
  /// counting pass (valid whenever no ledger filters fit tuples further).
  std::vector<std::size_t> shard_fit;

  std::size_t size() const { return fit.size(); }
};

/// Knobs of the plan build, separated from WatermarkParams because the PRF
/// choice arrives *resolved*: BuildTuplePlan cannot fail, so its callers
/// (which can) resolve WatermarkParams::prf / CATMARK_PRF first.
struct TuplePlanOptions {
  /// Payload (|wm_data|) length; only consulted when `with_payload_index`
  /// is set, and must then be >= 1 and fit in 32 bits.
  std::size_t payload_len = 0;
  /// Populate payload_index[] (the k2 position path). The Figure 1(b)
  /// embedding-map path leaves it off.
  bool with_payload_index = false;
  /// Worker threads (0 = auto).
  std::size_t num_threads = 0;
  /// Keyed-PRF backend for every hash in the plan.
  PrfKind prf = PrfKind::kKeyedHash;
  /// Test-only escape hatch: force the per-row batch path even on a
  /// dictionary-encoded key column, so the property suite can assert the
  /// per-dict-code cache is bit-identical to the uncached build.
  bool use_dict_cache = true;
};

TuplePlan BuildTuplePlan(const Relation& rel, std::size_t key_col,
                         const WatermarkKeySet& keys,
                         const WatermarkParams& params,
                         const TuplePlanOptions& options);

}  // namespace catmark

#endif  // CATMARK_CORE_TUPLE_PLAN_H_
