#ifndef CATMARK_CORE_TUPLE_PLAN_H_
#define CATMARK_CORE_TUPLE_PLAN_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/keys.h"
#include "core/params.h"
#include "crypto/prf.h"
#include "relation/relation.h"

namespace catmark {

/// Number of values batched into one KeyedPrf::Hash64Column call by the
/// plan build and the streaming insert path: large enough to amortize the
/// virtual dispatch and key-schedule reads, small enough that the serialized
/// arena and hash outputs stay cache-resident per worker.
inline constexpr std::size_t kKeyHashBatch = 1024;

/// Reusable chunk builder for batched keyed hashing: values serialize
/// back-to-back into one grown-once arena, and the whole chunk goes through
/// a single batched PRF call. The string_view probes are materialized only
/// once the chunk is complete (the arena may reallocate while it grows).
/// Shared by the tuple-plan precompute and the streaming insert path so the
/// two batch channels cannot drift apart.
///
/// Chunks made up entirely of int64 values additionally fill a typed lane
/// (`i64`, parallel to `ids`), and Hash() routes such chunks through
/// KeyedPrf::Hash64Int64Keys — the SIMD kernel that assembles the canonical
/// 9-byte records in vector registers — instead of materializing views.
/// The first non-int64 value demotes the chunk: the typed lane goes stale
/// and Hash() falls back to the arena/view path. Consumers that hash a
/// subset again (the ~1/e fit entries through k2) must branch on
/// int64_lane(): views are only populated when it is false.
struct KeyHashBatch {
  std::vector<std::uint8_t> arena;
  std::vector<std::size_t> ends;  // arena offset after each value
  std::vector<std::size_t> ids;   // row index / dict code per value
  std::vector<std::int64_t> i64;  // typed lane, valid iff int64_lane()
  std::vector<std::string_view> views;
  std::vector<std::uint64_t> h1;

  KeyHashBatch() {
    arena.reserve(kKeyHashBatch * 24);
    ends.reserve(kKeyHashBatch);
    ids.reserve(kKeyHashBatch);
    i64.reserve(kKeyHashBatch);
    views.reserve(kKeyHashBatch);
    h1.reserve(kKeyHashBatch);
  }

  void Clear() {
    arena.clear();
    ends.clear();
    ids.clear();
    i64.clear();
    all_int64_ = true;
  }

  std::size_t size() const { return ends.size(); }
  bool full() const { return ends.size() >= kKeyHashBatch; }

  /// True when every value added so far is an int64 — the typed lane holds
  /// them all and Hash() used (or will use) the typed kernel.
  bool int64_lane() const { return all_int64_; }

  void Add(const Value& v, std::size_t id) {
    v.SerializeForHash(arena);
    ends.push_back(arena.size());
    ids.push_back(id);
    if (all_int64_) {
      if (const std::int64_t* p = v.TryInt64()) {
        i64.push_back(*p);
      } else {
        all_int64_ = false;
      }
    }
  }

  /// Adds an already-serialized value (the streaming path probes its verdict
  /// cache with the serialized bytes first, so they are already at hand).
  /// Canonical int64 records (tag 0x01 + big-endian payload, 9 bytes) are
  /// decoded back into the typed lane — Hash64Int64Keys is pinned
  /// bit-identical to hashing the serialized record.
  void AddSerialized(std::span<const std::uint8_t> bytes, std::size_t id) {
    arena.insert(arena.end(), bytes.begin(), bytes.end());
    ends.push_back(arena.size());
    ids.push_back(id);
    if (all_int64_) {
      if (bytes.size() == 9 && bytes[0] == 0x01) {
        std::uint64_t v = 0;
        for (std::size_t b = 1; b < 9; ++b) v = (v << 8) | bytes[b];
        i64.push_back(static_cast<std::int64_t>(v));
      } else {
        all_int64_ = false;
      }
    }
  }

  /// One batched PRF call over the whole chunk; results land in h1[i]
  /// parallel to ids[i]. All-int64 chunks hash through the typed kernel and
  /// leave `views` empty; mixed chunks materialize views[i] as before.
  void Hash(const KeyedPrf& prf);

 private:
  bool all_int64_ = true;
};

/// Per-tuple precompute shared by the embed and detect hot paths, built in
/// one thread-parallel pass over the key column (structure-of-arrays so the
/// later per-row loops stream through flat memory):
///
///   - fit[j]: the Section 3.2.1 fitness verdict H(T_j(K), k1) mod e == 0;
///     NULL keys are unfit.
///   - h1[j]: the fitness hash itself (valid iff fit[j]) — it also drives
///     value selection, so it is computed once, not once per use.
///   - payload_index[j]: the k2-derived wm_data position (valid iff fit[j];
///     only populated when the k2 position path is in use — the Figure 1(b)
///     embedding-map path assigns indices sequentially at apply time).
///
/// All keyed hashing goes through the configured KeyedPrf backend
/// (TuplePlanOptions::prf). Dictionary-encoded key columns hash each live
/// distinct dictionary entry once into a per-dict-code h1/fit cache and
/// gather per-row results through the code vector. Plain columns run the
/// same fused chunk pipeline as DetectEngine::DetectOneShot: int64 key
/// chunks gather raw values straight off the column storage (dense while
/// NULL-free, lazy row backfill on the first NULL) into the typed
/// Hash64Int64Keys kernel, anything else serializes chunk-wise into a
/// per-worker arena hashed via Hash64Arena; fitness verdicts come from the
/// vectorized DivisibilityMask64 bitset and only the ~1/e fit entries reach
/// the batched k2 position hash. Neither path allocates or
/// virtual-dispatches per row.
struct TuplePlan {
  std::vector<std::uint8_t> fit;
  std::vector<std::uint64_t> h1;
  std::vector<std::uint32_t> payload_index;
  std::size_t fit_count = 0;

  /// fit[], packed: bit (j % 64) of fit_words[j / 64] mirrors fit[j]. The
  /// fused embed apply iterates fit tuples by set-bit scanning — one word
  /// test skips 64 unfit rows — instead of branching on every fit byte.
  /// Sized (size() + 63) / 64; always populated alongside fit.
  std::vector<std::uint64_t> fit_words;

  /// Messages the build pushed through the k1 PRF: live distinct dictionary
  /// entries on the cached path, non-NULL key rows otherwise. Feeds
  /// DetectionResult::messages_hashed so map-path detections report the
  /// same work accounting as the engine.
  std::size_t messages_hashed = 0;

  /// Per-shard fit counts over the ShardBounds(size(), shard_fit.size())
  /// row partition — the sharded embed apply pass prefix-sums these to
  /// assign each committing tuple its global map index without a serial
  /// counting pass (valid whenever no ledger filters fit tuples further).
  std::vector<std::size_t> shard_fit;

  std::size_t size() const { return fit.size(); }
};

/// Knobs of the plan build, separated from WatermarkParams because the PRF
/// choice arrives *resolved*: BuildTuplePlan cannot fail, so its callers
/// (which can) resolve WatermarkParams::prf / CATMARK_PRF first.
struct TuplePlanOptions {
  /// Payload (|wm_data|) length; only consulted when `with_payload_index`
  /// is set, and must then be >= 1 and fit in 32 bits.
  std::size_t payload_len = 0;
  /// Populate payload_index[] (the k2 position path). The Figure 1(b)
  /// embedding-map path leaves it off.
  bool with_payload_index = false;
  /// Worker threads (0 = auto).
  std::size_t num_threads = 0;
  /// Keyed-PRF backend for every hash in the plan.
  PrfKind prf = PrfKind::kKeyedHash;
  /// Test-only escape hatch: force the per-row batch path even on a
  /// dictionary-encoded key column, so the property suite can assert the
  /// per-dict-code cache is bit-identical to the uncached build.
  bool use_dict_cache = true;
};

TuplePlan BuildTuplePlan(const Relation& rel, std::size_t key_col,
                         const WatermarkKeySet& keys,
                         const WatermarkParams& params,
                         const TuplePlanOptions& options);

}  // namespace catmark

#endif  // CATMARK_CORE_TUPLE_PLAN_H_
