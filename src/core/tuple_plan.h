#ifndef CATMARK_CORE_TUPLE_PLAN_H_
#define CATMARK_CORE_TUPLE_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/keys.h"
#include "core/params.h"
#include "crypto/prf.h"
#include "relation/relation.h"

namespace catmark {

/// Per-tuple precompute shared by the embed and detect hot paths, built in
/// one thread-parallel pass over the key column (structure-of-arrays so the
/// later per-row loops stream through flat memory):
///
///   - fit[j]: the Section 3.2.1 fitness verdict H(T_j(K), k1) mod e == 0;
///     NULL keys are unfit.
///   - h1[j]: the fitness hash itself (valid iff fit[j]) — it also drives
///     value selection, so it is computed once, not once per use.
///   - payload_index[j]: the k2-derived wm_data position (valid iff fit[j];
///     only populated when the k2 position path is in use — the Figure 1(b)
///     embedding-map path assigns indices sequentially at apply time).
///
/// All keyed hashing goes through the configured KeyedPrf backend
/// (TuplePlanOptions::prf). Dictionary-encoded key columns hash each live
/// distinct dictionary entry once into a per-dict-code h1/fit cache and
/// gather per-row results through the code vector; plain columns serialize
/// rows into per-worker arenas and hash them through the batch
/// Hash64Column API, so neither path allocates or virtual-dispatches
/// per row.
struct TuplePlan {
  std::vector<std::uint8_t> fit;
  std::vector<std::uint64_t> h1;
  std::vector<std::uint32_t> payload_index;
  std::size_t fit_count = 0;

  /// Per-shard fit counts over the ShardBounds(size(), shard_fit.size())
  /// row partition — the sharded embed apply pass prefix-sums these to
  /// assign each committing tuple its global map index without a serial
  /// counting pass (valid whenever no ledger filters fit tuples further).
  std::vector<std::size_t> shard_fit;

  std::size_t size() const { return fit.size(); }
};

/// Knobs of the plan build, separated from WatermarkParams because the PRF
/// choice arrives *resolved*: BuildTuplePlan cannot fail, so its callers
/// (which can) resolve WatermarkParams::prf / CATMARK_PRF first.
struct TuplePlanOptions {
  /// Payload (|wm_data|) length; only consulted when `with_payload_index`
  /// is set, and must then be >= 1 and fit in 32 bits.
  std::size_t payload_len = 0;
  /// Populate payload_index[] (the k2 position path). The Figure 1(b)
  /// embedding-map path leaves it off.
  bool with_payload_index = false;
  /// Worker threads (0 = auto).
  std::size_t num_threads = 0;
  /// Keyed-PRF backend for every hash in the plan.
  PrfKind prf = PrfKind::kKeyedHash;
  /// Test-only escape hatch: force the per-row batch path even on a
  /// dictionary-encoded key column, so the property suite can assert the
  /// per-dict-code cache is bit-identical to the uncached build.
  bool use_dict_cache = true;
};

TuplePlan BuildTuplePlan(const Relation& rel, std::size_t key_col,
                         const WatermarkKeySet& keys,
                         const WatermarkParams& params,
                         const TuplePlanOptions& options);

}  // namespace catmark

#endif  // CATMARK_CORE_TUPLE_PLAN_H_
