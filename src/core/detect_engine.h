#ifndef CATMARK_CORE_DETECT_ENGINE_H_
#define CATMARK_CORE_DETECT_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/detector.h"
#include "core/keys.h"
#include "core/params.h"
#include "relation/domain.h"
#include "relation/relation.h"
#include "relation/value_index_column.h"

namespace catmark {

/// One candidate of a multi-key detection sweep: the keys to test plus the
/// scheme parameters that candidate claims were used at embed time (e, PRF
/// backend, ECC, payload length — in a registry dispute each certificate
/// brings its own) and the claimed mark length.
struct KeyCandidate {
  WatermarkKeySet keys;
  WatermarkParams params;
  std::size_t wm_len = 0;
};

/// Inputs of the key-independent half of detection. Mirrors DetectOptions
/// minus everything per-key; the embedding-map variant stays on Detector
/// (a map lookup is inherently per-embedding, not per-relation).
struct DetectEngineOptions {
  std::string key_attr;
  std::string target_attr;

  /// Domain the embedder used; copied into the engine. When neither this
  /// nor `domain_view` is set it is recovered from the suspect data.
  std::optional<CategoricalDomain> domain;

  /// Non-owning alternative to `domain` (takes precedence). The pointee
  /// must outlive the engine — the only external state an engine keeps.
  const CategoricalDomain* domain_view = nullptr;

  /// Optional caller-built domain-index view of the target column (one
  /// entry per suspect row, built against the same domain as above). Only
  /// read during Create; the engine is self-contained afterwards.
  const ValueIndexColumn* target_index = nullptr;

  /// Engine-wide payload length override. Per candidate the precedence is
  /// this, then KeyCandidate::params.payload_length, then re-derivation
  /// from the suspect size (which fails when N / e == 0) — the same ladder
  /// as DetectOptions::payload_length over WatermarkParams.
  std::size_t payload_length = 0;

  /// Worker threads (0 = auto). DetectMany splits them keys × shards.
  std::size_t num_threads = 0;
};

/// The key-agnostic detect engine: builds the per-relation half of blind
/// detection once (the *RelationPlan*) and runs the per-key half (the
/// *PerKeyPass*) against it for any number of candidate keys.
///
/// RelationPlan — everything the fitness/position hashes consume that does
/// not depend on the key, built once at Create:
///   - canonical key-value serialization into per-shard arenas: one
///     prepared *message* per live distinct dictionary entry on a
///     dictionary-encoded key column (the dict-code gather), or one per
///     non-NULL key row on a plain column;
///   - key-independent per-message vote aggregates from the target column's
///     domain-index view: vote[i] = Σ over that message's rows of ±1 (the
///     embedded bit t & 1, 0 when NULL/out-of-domain), plus usable/row
///     counts. Integer addition commutes, so folding rows into their
///     message *before* knowing which messages are fit is bit-identical to
///     the row-at-a-time tally.
///
/// PerKeyPass — the only work repeated per candidate: chunked batched
/// Hash64Arena over the prepared messages under k1, a divide-free
/// H mod e == 0 fitness test, batched k2 position hashes for the ~1/e fit
/// messages, and a branchless votes[idx] += vote[i] tally. On a
/// repeat-heavy key column this is O(distinct keys) per candidate instead
/// of O(N) — the entire row dimension was folded into the plan.
///
/// Every result is bit-identical to a standalone Detector::Detect with the
/// same inputs, at every thread count and under every PRF backend
/// (detect_engine_test pins the parity); Detector::Detect itself runs on
/// this engine, so the two cannot drift. The multi-lane SIMD PRF planned
/// next slots into the PerKeyPass via KeyedPrf::Hash64Arena without
/// touching the plan.
class DetectEngine {
 public:
  /// Builds the RelationPlan. Fails like Detector::Detect's per-relation
  /// half: unknown attributes, empty relation, domain with < 2 values, or
  /// a target_index whose row count does not match.
  static Result<DetectEngine> Create(const Relation& rel,
                                     const DetectEngineOptions& options);

  /// The one-shot single-candidate entry point Detector::Detect runs on:
  /// the plan-then-pass split exists to amortize the plan across *many*
  /// candidates, so with exactly one there is nothing to amortize — on a
  /// plain key column this fuses serialize -> hash -> fitness -> tally into
  /// a single chunked streaming pass that never materializes the
  /// whole-relation arena (and resolves target-domain indices only for the
  /// ~1/e fit rows). On a dict-encoded key column the plan arena is O(live
  /// dict) and building it IS the fast path, so this delegates to
  /// Create + Detect. Bit-identical to that pair on every input.
  static Result<DetectionResult> DetectOneShot(
      const Relation& rel, const DetectEngineOptions& options,
      const KeyCandidate& candidate);

  DetectEngine(DetectEngine&&) = default;
  DetectEngine& operator=(DetectEngine&&) = default;

  /// One candidate through the PerKeyPass. The plan is amortized, not
  /// rebuilt: messages_hashed counts its prepared messages while
  /// rows_scanned stays the relation's row count; wall_seconds covers just
  /// this pass.
  Result<DetectionResult> Detect(const KeyCandidate& candidate) const;

  /// Runs every candidate through the PerKeyPass, amortizing the plan
  /// across the block and splitting the worker budget keys × shards:
  /// candidates fan out over ParallelFor, and any leftover workers
  /// parallelize each pass's message shards. results[i] corresponds to
  /// candidates[i]; a bad candidate (zero wm_len, invalid keys, e == 0,
  /// unresolvable PRF or payload length) fails that entry only.
  std::vector<Result<DetectionResult>> DetectMany(
      std::span<const KeyCandidate> candidates) const;

  const CategoricalDomain& domain() const { return *domain_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_messages() const { return num_messages_; }
  bool dict_keys() const { return dict_keys_; }
  double plan_build_seconds() const { return plan_build_seconds_; }

 private:
  struct Scratch;

  DetectEngine() = default;

  Result<DetectionResult> RunPass(const KeyCandidate& candidate,
                                  std::size_t num_threads,
                                  Scratch& scratch) const;
  void TallyShard(std::size_t shard, const KeyedPrf& prf_k1,
                  const KeyedPrf& prf_k2, const WatermarkParams& params,
                  std::size_t payload_len, std::vector<long>& votes,
                  std::size_t& usable_votes, std::size_t& fit_tuples,
                  Scratch& scratch) const;

  // Resolved domain: an external view or the engine-owned copy (unique_ptr
  // keeps the address stable across moves).
  std::unique_ptr<CategoricalDomain> owned_domain_;
  const CategoricalDomain* domain_ = nullptr;

  std::size_t num_rows_ = 0;
  std::size_t num_messages_ = 0;
  std::size_t num_threads_ = 0;
  std::size_t default_payload_length_ = 0;
  bool dict_keys_ = false;
  double plan_build_seconds_ = 0.0;

  // RelationPlan storage, per build shard: serialized messages back to
  // back in arena_[s], with bounds_[s] holding a leading 0 plus one
  // end-offset per message (so any chunk hashes via a bounds subspan).
  std::vector<std::vector<std::uint8_t>> arena_;
  std::vector<std::vector<std::size_t>> bounds_;
  std::vector<std::size_t> msg_base_;  ///< first global message id per shard

  // Equal-length arena layout: when every prepared message serializes to
  // the same byte count (always true for int64/double keys — 9 bytes — and
  // for equal-width strings), message m sits at offset m * fixed_len_ in
  // its shard arena and the PerKeyPass hashes via Hash64Fixed with no
  // per-message bounds lookups. -1 = mixed lengths, use bounds_.
  std::ptrdiff_t fixed_len_ = -1;

  // Per-message aggregates, global message order (shards concatenated).
  // On a plain key column each message is a single row: rows == 1 and
  // usable == (vote != 0), so only vote_ is materialized.
  std::vector<std::int32_t> vote_;
  std::vector<std::uint32_t> usable_;
  std::vector<std::uint32_t> rows_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_DETECT_ENGINE_H_
