#include "core/certificate.h"

#include <charconv>
#include <cstring>

#include "common/hex.h"
#include "common/str_util.h"
#include "crypto/sha256.h"

namespace catmark {

namespace {

/// Type-tagged hex encoding of a Value ("i:<hex>", "d:<hex>", "s:<hex>").
std::string EncodeValue(const Value& v) {
  std::vector<std::uint8_t> bytes;
  v.SerializeForHash(bytes);
  // bytes[0] is the type tag from SerializeForHash; reuse it.
  const char tag = v.is_int64() ? 'i' : (v.is_double() ? 'd' : 's');
  return std::string(1, tag) + ":" +
         HexEncode(bytes.data() + 1, bytes.size() - 1);
}

Result<Value> DecodeValue(std::string_view text) {
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("bad value encoding '" +
                                   std::string(text) + "'");
  }
  CATMARK_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> bytes,
                           HexDecode(text.substr(2)));
  const char tag = text[0];
  if (tag == 'i' || tag == 'd') {
    if (bytes.size() != 8) {
      return Status::InvalidArgument("numeric value needs 8 bytes");
    }
    std::uint64_t raw = 0;
    for (std::uint8_t b : bytes) raw = (raw << 8) | b;
    if (tag == 'i') return Value(static_cast<std::int64_t>(raw));
    double d;
    static_assert(sizeof(d) == sizeof(raw));
    std::memcpy(&d, &raw, sizeof(d));
    return Value(d);
  }
  if (tag == 's') {
    if (bytes.size() < 8) {
      return Status::InvalidArgument("string value needs length prefix");
    }
    // Skip the 8-byte length prefix SerializeForHash added.
    return Value(std::string(bytes.begin() + 8, bytes.end()));
  }
  return Status::InvalidArgument("unknown value tag");
}

std::string_view EccName(EccKind kind) { return EccKindName(kind); }

Result<EccKind> EccFromName(std::string_view name) {
  for (const EccKind kind :
       {EccKind::kMajorityVoting, EccKind::kIdentity,
        EccKind::kBlockRepetition, EccKind::kHamming74}) {
    if (EccKindName(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown ecc '" + std::string(name) + "'");
}

Result<HashAlgorithm> HashFromName(std::string_view name) {
  for (const HashAlgorithm algo :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    if (HashAlgorithmName(algo) == name) return algo;
  }
  return Status::InvalidArgument("unknown hash '" + std::string(name) + "'");
}

}  // namespace

std::string ComputeKeyCommitment(const WatermarkKeySet& keys) {
  Sha256 sha;
  sha.Reset();
  sha.Update(keys.k1.bytes().data(), keys.k1.bytes().size());
  sha.Update(keys.k2.bytes().data(), keys.k2.bytes().size());
  return sha.Finish().ToHex();
}

WatermarkCertificate WatermarkCertificate::Create(
    const WatermarkKeySet& keys, const WatermarkParams& params,
    const EmbedOptions& options, const EmbedReport& report,
    const BitVector& wm, std::vector<double> frequencies,
    std::string description) {
  WatermarkCertificate cert;
  cert.description = std::move(description);
  cert.key_attr = options.key_attr;
  cert.target_attr = options.target_attr;
  cert.params = params;
  // Record the backend the embedding *actually* ran with (params.prf may
  // have been nullopt/auto): dispute-time detection must re-verify with the
  // same primitive, whatever the environment says by then.
  cert.params.prf = report.prf;
  cert.payload_length = report.payload_length;
  cert.wm = wm;
  cert.domain = report.domain;
  cert.frequencies = std::move(frequencies);
  cert.key_commitment_hex = ComputeKeyCommitment(keys);
  return cert;
}

bool WatermarkCertificate::VerifyKeys(const WatermarkKeySet& keys) const {
  return ComputeKeyCommitment(keys) == key_commitment_hex;
}

std::string WatermarkCertificate::Serialize() const {
  std::string out;
  out += "catmark-certificate-v1\n";
  out += "description=" + description + "\n";
  out += "key_attr=" + key_attr + "\n";
  out += "target_attr=" + target_attr + "\n";
  out += "e=" + std::to_string(params.e) + "\n";
  out += "ecc=" + std::string(EccName(params.ecc)) + "\n";
  out += "hash=" + std::string(HashAlgorithmName(params.hash_algo)) + "\n";
  out += "prf=" +
         std::string(PrfKindName(params.prf.value_or(PrfKind::kKeyedHash))) +
         "\n";
  out += "bit_index_mode=" +
         std::string(params.bit_index_mode == BitIndexMode::kModulo
                         ? "modulo"
                         : "msb") +
         "\n";
  out += "min_category_keep=" + std::to_string(params.min_category_keep) +
         "\n";
  out += "payload_length=" + std::to_string(payload_length) + "\n";
  out += "wm=" + wm.ToString() + "\n";
  std::string domain_line = "domain=";
  for (std::size_t i = 0; i < domain.size(); ++i) {
    if (i > 0) domain_line += ',';
    domain_line += EncodeValue(domain.value(i));
  }
  out += domain_line + "\n";
  std::string freq_line = "frequencies=";
  for (std::size_t i = 0; i < frequencies.size(); ++i) {
    if (i > 0) freq_line += ',';
    freq_line += StrFormat("%.17g", frequencies[i]);
  }
  out += freq_line + "\n";
  out += "key_commitment=" + key_commitment_hex + "\n";
  return out;
}

Result<WatermarkCertificate> WatermarkCertificate::Deserialize(
    std::string_view text) {
  const std::vector<std::string> lines = StrSplit(std::string(text), '\n');
  if (lines.empty() || StrTrim(lines[0]) != "catmark-certificate-v1") {
    return Status::InvalidArgument("not a catmark certificate");
  }
  WatermarkCertificate cert;
  // Certificates that predate the PRF subsystem carry no `prf=` field;
  // they were embedded with the legacy keyed hash. Pinning the resolved
  // kind here (instead of leaving auto) keeps dispute-time detection
  // independent of whatever CATMARK_PRF says by then.
  cert.params.prf = PrfKind::kKeyedHash;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = StrTrim(lines[i]);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("certificate line missing '='");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "description") {
      cert.description = std::string(value);
    } else if (key == "key_attr") {
      cert.key_attr = std::string(value);
    } else if (key == "target_attr") {
      cert.target_attr = std::string(value);
    } else if (key == "e") {
      cert.params.e = std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else if (key == "ecc") {
      CATMARK_ASSIGN_OR_RETURN(cert.params.ecc, EccFromName(value));
    } else if (key == "hash") {
      CATMARK_ASSIGN_OR_RETURN(cert.params.hash_algo, HashFromName(value));
    } else if (key == "prf") {
      CATMARK_ASSIGN_OR_RETURN(const PrfKind prf, PrfKindFromName(value));
      cert.params.prf = prf;
    } else if (key == "bit_index_mode") {
      cert.params.bit_index_mode = value == "msb" ? BitIndexMode::kMsbModL
                                                  : BitIndexMode::kModulo;
    } else if (key == "min_category_keep") {
      cert.params.min_category_keep =
          std::strtol(std::string(value).c_str(), nullptr, 10);
    } else if (key == "payload_length") {
      cert.payload_length =
          std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else if (key == "wm") {
      CATMARK_ASSIGN_OR_RETURN(cert.wm, BitVector::FromString(value));
    } else if (key == "domain") {
      std::vector<Value> values;
      if (!value.empty()) {
        for (const std::string& field : StrSplit(value, ',')) {
          CATMARK_ASSIGN_OR_RETURN(Value v, DecodeValue(field));
          values.push_back(std::move(v));
        }
      }
      if (!values.empty()) {
        CATMARK_ASSIGN_OR_RETURN(cert.domain,
                                 CategoricalDomain::FromValues(values));
      }
    } else if (key == "frequencies") {
      if (!value.empty()) {
        for (const std::string& field : StrSplit(value, ',')) {
          cert.frequencies.push_back(std::strtod(field.c_str(), nullptr));
        }
      }
    } else if (key == "key_commitment") {
      cert.key_commitment_hex = std::string(value);
    } else {
      return Status::InvalidArgument("unknown certificate field '" +
                                     std::string(key) + "'");
    }
  }
  if (cert.wm.empty() || cert.payload_length == 0) {
    return Status::InvalidArgument("certificate missing wm/payload_length");
  }
  return cert;
}

Result<CertifiedDetection> DetectWithCertificate(
    const Relation& suspect, const WatermarkCertificate& certificate,
    const WatermarkKeySet& keys, double alpha) {
  if (!certificate.VerifyKeys(keys)) {
    return Status::FailedPrecondition(
        "supplied keys do not match the certificate's key commitment");
  }
  const Detector detector(keys, certificate.params);
  DetectOptions options;
  options.key_attr = certificate.key_attr;
  options.target_attr = certificate.target_attr;
  options.payload_length = certificate.payload_length;
  if (!certificate.domain.empty()) options.domain = certificate.domain;
  CertifiedDetection out;
  CATMARK_ASSIGN_OR_RETURN(
      out.detection,
      detector.Detect(suspect, options, certificate.wm.size()));
  out.decision = DecideOwnership(certificate.wm, out.detection.wm, alpha);
  return out;
}

bool operator==(const WatermarkCertificate& a, const WatermarkCertificate& b) {
  return a.description == b.description && a.key_attr == b.key_attr &&
         a.target_attr == b.target_attr && a.params.e == b.params.e &&
         a.params.ecc == b.params.ecc &&
         a.params.hash_algo == b.params.hash_algo &&
         a.params.prf.value_or(PrfKind::kKeyedHash) ==
             b.params.prf.value_or(PrfKind::kKeyedHash) &&
         a.params.bit_index_mode == b.params.bit_index_mode &&
         a.params.min_category_keep == b.params.min_category_keep &&
         a.payload_length == b.payload_length && a.wm == b.wm &&
         a.domain == b.domain && a.frequencies == b.frequencies &&
         a.key_commitment_hex == b.key_commitment_hex;
}

}  // namespace catmark
