#ifndef CATMARK_CORE_FREQ_MARK_H_
#define CATMARK_CORE_FREQ_MARK_H_

#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/result.h"
#include "crypto/keyed_hash.h"
#include "quality/assessor.h"
#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// Parameters of the frequency-domain channel (Section 4.2).
struct FreqMarkParams {
  /// Quantization step q of normalized frequency mass per watermark-bit
  /// group. Robustness radius is q/2 of group mass; embedding cost grows
  /// with q (up to ~q/2 of the tuples per group move category).
  double quantization_step = 0.01;

  /// Embedding never drains a category below min(current count, this)
  /// occurrences: emptied categories would disappear from a blindly
  /// re-derived domain (scrambling the keyed grouping) and be a conspicuous
  /// quality change. 0 disables the floor.
  long min_category_keep = 8;

  HashAlgorithm hash_algo = HashAlgorithm::kSha256;
};

struct FreqEmbedReport {
  std::size_t tuples_moved = 0;    ///< categorical items whose value changed
  std::size_t num_groups = 0;      ///< |wm|
  std::vector<double> group_mass;  ///< post-embedding mass per group
  double min_cell_margin = 0.0;    ///< smallest distance to a cell edge (robustness)
};

struct FreqDetectReport {
  BitVector wm;
  std::vector<double> group_mass;
  double min_cell_margin = 0.0;
};

/// Frequency-domain watermark: survives the extreme vertical-partitioning
/// attack in which Mallory keeps a *single* categorical attribute and no
/// key (Section 4.2). The paper proposes applying its numeric-set marking
/// technique [10] to the occurrence-frequency transform [f_A(a_i)]; we
/// realize it as a quantization-index scheme (DESIGN.md "Faithfulness
/// notes"):
///
///  * categories are secretly grouped by H(label, key) mod |wm|;
///  * group j's total *normalized* frequency mass is quantized with step q;
///  * bit j is the parity of the quantization cell; embedding re-centres the
///    mass inside the nearest cell of correct parity by moving a minimal
///    number of tuples between categories.
///
/// Minimizing absolute change in the frequency domain minimizes the number
/// of categorical items altered — the observation Section 4.2 calls
/// "surprising and fortunate". Normalized mass makes detection invariant
/// under A1 subset selection and A4 re-sorting; no primary key is used.
class FrequencyMarker {
 public:
  FrequencyMarker(SecretKey key, FreqMarkParams params);

  /// Embeds `wm` into the frequency histogram of `attr`. If `assessor` is
  /// given the caller must have called assessor->Begin(rel); vetoed moves
  /// are skipped (weakening, not aborting, the mark).
  Result<FreqEmbedReport> Embed(
      Relation& rel, const std::string& attr, const BitVector& wm,
      const std::optional<CategoricalDomain>& domain = std::nullopt,
      QualityAssessor* assessor = nullptr) const;

  /// Blind detection: recomputes group masses and reads cell parities.
  Result<FreqDetectReport> Detect(
      const Relation& rel, const std::string& attr, std::size_t wm_len,
      const std::optional<CategoricalDomain>& domain = std::nullopt) const;

  /// Group index of a domain value under salt `salt` (exposed for
  /// tests/diagnostics).
  std::size_t GroupOf(const Value& v, std::size_t num_groups,
                      std::uint8_t salt = 0) const;

  /// Smallest salt (0..63) whose keyed-hash grouping leaves no watermark-bit
  /// group without categories, or an error when none exists. Embedder and
  /// detector derive the same salt from the same domain, keeping detection
  /// blind.
  Result<std::uint8_t> FindGroupingSalt(const CategoricalDomain& domain,
                                        std::size_t num_groups) const;

 private:
  SecretKey key_;
  FreqMarkParams params_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_FREQ_MARK_H_
