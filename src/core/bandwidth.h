#ifndef CATMARK_CORE_BANDWIDTH_H_
#define CATMARK_CORE_BANDWIDTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"

namespace catmark {

/// Embedding-bandwidth analysis of one categorical attribute (Sections 2.4
/// and 3.1): how many watermark bits each channel can carry, and at what
/// alteration cost. "Often we can express the available bandwidth as an
/// increasing function of allowed alterations."
struct AttributeBandwidth {
  std::string attribute;
  std::size_t domain_size = 0;     ///< nA
  double entropy_bits = 0.0;       ///< Shannon entropy of the value frequencies

  /// Direct-domain capacity log2(nA) — the paper's 16000-city example
  /// yields only 14 bits, which is why the association channel exists.
  double direct_domain_bits = 0.0;

  /// Association-channel capacity N/e for the given e (one payload bit per
  /// fit tuple), and its price: the expected fraction of tuples altered.
  std::size_t association_bits = 0;
  double association_alteration_fraction = 0.0;

  /// Frequency-transform channel capacity: the largest |wm| with at least
  /// two categories per hash group in expectation (nA / 2), and the
  /// expected fraction of tuples moved per embedded bit (~q/2 mass).
  std::size_t frequency_bits = 0;
  double frequency_alteration_per_bit = 0.0;
};

/// Analyzes one attribute under encoding parameter `e` and frequency
/// quantization step `q`.
Result<AttributeBandwidth> AnalyzeAttributeBandwidth(const Relation& rel,
                                                     const std::string& attr,
                                                     std::uint64_t e,
                                                     double q);

/// Analyzes every categorical attribute of the relation.
Result<std::vector<AttributeBandwidth>> AnalyzeRelationBandwidth(
    const Relation& rel, std::uint64_t e, double q);

}  // namespace catmark

#endif  // CATMARK_CORE_BANDWIDTH_H_
