#include "core/analysis.h"

#include <cmath>

#include "common/check.h"
#include "random/stats.h"

namespace catmark {

double FalsePositiveProbability(std::size_t wm_bits) {
  return std::pow(0.5, static_cast<double>(wm_bits));
}

double AttackSuccessProbability(const RandomAttackModel& model,
                                std::uint64_t r, bool exact) {
  CATMARK_CHECK_GE(model.e, 1u);
  CATMARK_CHECK(model.flip_probability >= 0.0 &&
                model.flip_probability <= 1.0);
  // Only every e-th tuple (on average) is watermarked: n = a/e trials.
  const std::uint64_t n = model.attacked_tuples / model.e;
  if (r > n) return 0.0;  // "If r > a/e then P(r,a) = 0"
  if (exact) {
    return BinomialTailAtLeast(n, r, model.flip_probability);
  }
  if (model.flip_probability <= 0.0 || model.flip_probability >= 1.0) {
    return model.flip_probability >= 1.0 ? 1.0 : 0.0;
  }
  return BinomialTailNormalApprox(n, r, model.flip_probability);
}

double MaxHitTuplesForVulnerabilityBound(std::uint64_t r, double p,
                                         double delta) {
  CATMARK_CHECK(p > 0.0 && p < 1.0);
  CATMARK_CHECK(delta > 0.0 && delta < 1.0);
  CATMARK_CHECK_GE(r, 1u);
  // Solve (r - n p) / sqrt(n p (1 - p)) = z  for n, with z = Phi^-1(1-delta).
  // Substituting x = sqrt(n):  p x^2 + z sqrt(p(1-p)) x - r = 0.
  const double z = NormalQuantile(1.0 - delta);
  const double s = std::sqrt(p * (1.0 - p));
  const double disc = z * z * p * (1.0 - p) +
                      4.0 * p * static_cast<double>(r);
  const double x = (-z * s + std::sqrt(disc)) / (2.0 * p);
  return x * x;
}

std::uint64_t MinimumEForVulnerability(std::uint64_t a, std::uint64_t r,
                                       double p, double delta) {
  const double n_star = MaxHitTuplesForVulnerabilityBound(r, p, delta);
  if (n_star <= 0.0) return a;  // degenerate: every e works only at a/e = 0
  const double e_min = static_cast<double>(a) / n_star;
  return static_cast<std::uint64_t>(std::ceil(e_min));
}

double ExpectedMarkAlterationFraction(std::uint64_t r,
                                      std::size_t payload_len, double tecc,
                                      std::size_t wm_len) {
  CATMARK_CHECK_GE(payload_len, 1u);
  const double damage =
      static_cast<double>(r) / static_cast<double>(payload_len) - tecc;
  if (damage <= 0.0) return 0.0;
  const double frac = damage * static_cast<double>(wm_len) /
                      static_cast<double>(payload_len);
  return frac > 1.0 ? 1.0 : frac;
}

}  // namespace catmark
