#ifndef CATMARK_CORE_ANALYSIS_H_
#define CATMARK_CORE_ANALYSIS_H_

#include <cstdint>

namespace catmark {

/// Closed-form attack-vulnerability analysis of Section 4.4.

/// Court-time false positive: probability that a random data set of
/// sufficient size yields a given |wm|-bit watermark — (1/2)^|wm|.
double FalsePositiveProbability(std::size_t wm_bits);

/// The random alteration attack model: Mallory alters `attacked_tuples` (a)
/// random tuples; only ~a/e of them are actually watermarked, and each
/// altered watermarked tuple flips its embedded bit with probability
/// `flip_probability` (p).
struct RandomAttackModel {
  std::uint64_t attacked_tuples = 0;  ///< a
  std::uint64_t e = 60;
  double flip_probability = 0.7;      ///< p
};

/// P(r, a) — probability the attack flips at least r embedded wm_data bits
/// (equation 1 with n = a/e Bernoulli(p) trials). `exact` sums the binomial
/// tail; otherwise the paper's CLT approximation (equation 2) is used.
double AttackSuccessProbability(const RandomAttackModel& model,
                                std::uint64_t r, bool exact = true);

/// Inverse question of Section 4.4: the largest number n* of
/// attacked-and-watermarked tuples for which P[Bin(n, p) >= r] <= delta,
/// via the paper's normal-approximation method
/// ((r - n p) / sqrt(n p (1-p)) >= z_delta solved for n).
double MaxHitTuplesForVulnerabilityBound(std::uint64_t r, double p,
                                         double delta);

/// Minimum e guaranteeing vulnerability <= delta when Mallory can afford to
/// alter at most `a` tuples: the smallest e with a/e <= n*. The embedding
/// then alters only ~N/e tuples (the "we have to alter only 4.3% of the
/// data" computation).
std::uint64_t MinimumEForVulnerability(std::uint64_t a, std::uint64_t r,
                                       double p, double delta);

/// Expected fraction of final watermark bits altered when r payload bits
/// were flipped, the ECC absorbs a tecc fraction, and alteration propagation
/// is uniform and stable:   (r/L - tecc) * |wm| / L  (Section 4.4).
double ExpectedMarkAlterationFraction(std::uint64_t r,
                                      std::size_t payload_len, double tecc,
                                      std::size_t wm_len);

}  // namespace catmark

#endif  // CATMARK_CORE_ANALYSIS_H_
