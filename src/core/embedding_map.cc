#include "core/embedding_map.h"

#include <charconv>
#include <vector>

#include "common/hex.h"
#include "common/str_util.h"

namespace catmark {

std::string EmbeddingMap::KeyOf(const Value& pk) {
  std::vector<std::uint8_t> bytes;
  pk.SerializeForHash(bytes);
  return std::string(bytes.begin(), bytes.end());
}

void EmbeddingMap::Insert(const Value& pk, std::size_t idx) {
  map_[KeyOf(pk)] = idx;
}

std::optional<std::size_t> EmbeddingMap::Lookup(const Value& pk) const {
  const auto it = map_.find(KeyOf(pk));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::string EmbeddingMap::Serialize() const {
  std::string out;
  for (const auto& [key, idx] : map_) {
    out += HexEncode(reinterpret_cast<const std::uint8_t*>(key.data()),
                     key.size());
    out += ',';
    out += std::to_string(idx);
    out += '\n';
  }
  return out;
}

Result<EmbeddingMap> EmbeddingMap::Deserialize(std::string_view text) {
  EmbeddingMap map;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string_view::npos) {
      return Status::InvalidArgument("embedding map line missing comma");
    }
    Result<std::vector<std::uint8_t>> key_bytes =
        HexDecode(line.substr(0, comma));
    if (!key_bytes.ok()) return key_bytes.status();
    const std::string_view idx_text = line.substr(comma + 1);
    std::size_t idx = 0;
    const auto [ptr, ec] = std::from_chars(
        idx_text.data(), idx_text.data() + idx_text.size(), idx);
    if (ec != std::errc() || ptr != idx_text.data() + idx_text.size()) {
      return Status::InvalidArgument("embedding map line has bad index");
    }
    map.map_[std::string(key_bytes.value().begin(),
                         key_bytes.value().end())] = idx;
  }
  return map;
}

}  // namespace catmark
