#include "core/embedding_map.h"

#include <charconv>

#include "common/hex.h"
#include "common/str_util.h"

namespace catmark {

std::string_view EmbeddingMap::SerializeKey(
    const Value& pk, std::vector<std::uint8_t>& scratch) {
  return pk.SerializeKeyInto(scratch);
}

void EmbeddingMap::Insert(const Value& pk, std::size_t idx) {
  // The embed apply pass calls this once per fit tuple: probe with a view
  // over the reused scratch buffer and only materialize an owned key string
  // for first-time inserts.
  const std::string_view key = pk.SerializeKeyInto(insert_scratch_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second = idx;
    return;
  }
  map_.emplace(std::string(key), idx);
}

void EmbeddingMap::AppendSegment(Segment&& segment) {
  for (auto& [key, idx] : segment) {
    // Mirror Insert exactly (find, then overwrite or emplace): the map's
    // internal state after splicing shard segments in order must match a
    // serial Insert sequence bucket-for-bucket, or Serialize() would order
    // entries differently between the serial and sharded apply paths.
    const auto it = map_.find(std::string_view(key));
    if (it != map_.end()) {
      it->second = idx;
      continue;
    }
    map_.emplace(std::move(key), idx);
  }
}

std::optional<std::size_t> EmbeddingMap::Lookup(const Value& pk) const {
  std::vector<std::uint8_t> scratch;
  return Lookup(SerializeKey(pk, scratch));
}

std::optional<std::size_t> EmbeddingMap::Lookup(
    std::string_view serialized_pk) const {
  const auto it = map_.find(serialized_pk);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint64_t> EmbeddingMap::LookupColumn(
    const Relation& rel, std::size_t col,
    const std::vector<std::uint8_t>* mask) const {
  const std::size_t n = rel.NumRows();
  std::vector<std::uint64_t> out(n, kNotFound);
  std::vector<std::uint8_t> scratch;
  scratch.reserve(64);

  if (rel.store().IsDictColumn(col)) {
    // Probe each distinct key once, then fan the result out by code.
    const std::vector<Value>& dict = rel.store().Dict(col);
    const std::vector<std::int32_t>& codes = rel.store().Codes(col);
    const std::vector<std::int64_t>& live = rel.store().DictLiveCounts(col);
    std::vector<std::uint64_t> by_code(dict.size(), kNotFound);
    for (std::size_t code = 0; code < dict.size(); ++code) {
      if (live[code] == 0) continue;  // dead entry: no row references it
      const auto found = Lookup(SerializeKey(dict[code], scratch));
      if (found.has_value()) by_code[code] = *found;
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (mask != nullptr && !(*mask)[j]) continue;
      if (codes[j] >= 0) out[j] = by_code[static_cast<std::size_t>(codes[j])];
    }
    return out;
  }

  const std::vector<Value>& values = rel.store().PlainValues(col);
  for (std::size_t j = 0; j < n; ++j) {
    if (mask != nullptr && !(*mask)[j]) continue;
    if (values[j].is_null()) continue;
    const auto found = Lookup(SerializeKey(values[j], scratch));
    if (found.has_value()) out[j] = *found;
  }
  return out;
}

std::string EmbeddingMap::Serialize() const {
  std::string out;
  for (const auto& [key, idx] : map_) {
    out += HexEncode(reinterpret_cast<const std::uint8_t*>(key.data()),
                     key.size());
    out += ',';
    out += std::to_string(idx);
    out += '\n';
  }
  return out;
}

Result<EmbeddingMap> EmbeddingMap::Deserialize(std::string_view text) {
  EmbeddingMap map;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    if (comma == std::string_view::npos) {
      return Status::InvalidArgument("embedding map line missing comma");
    }
    Result<std::vector<std::uint8_t>> key_bytes =
        HexDecode(line.substr(0, comma));
    if (!key_bytes.ok()) return key_bytes.status();
    const std::string_view idx_text = line.substr(comma + 1);
    std::size_t idx = 0;
    const auto [ptr, ec] = std::from_chars(
        idx_text.data(), idx_text.data() + idx_text.size(), idx);
    if (ec != std::errc() || ptr != idx_text.data() + idx_text.size()) {
      return Status::InvalidArgument("embedding map line has bad index");
    }
    std::string key(key_bytes.value().begin(), key_bytes.value().end());
    if (!map.map_.emplace(std::move(key), idx).second) {
      return Status::InvalidArgument(
          "embedding map has a duplicate key: " +
          std::string(line.substr(0, comma)));
    }
  }
  return map;
}

}  // namespace catmark
