#ifndef CATMARK_CORE_ADDITIVE_ATTACK_H_
#define CATMARK_CORE_ADDITIVE_ATTACK_H_

#include <cstdint>
#include <string>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/embedder.h"
#include "core/keys.h"
#include "core/params.h"
#include "relation/relation.h"

namespace catmark {

/// The additive watermark attack the paper's conclusions flag for analysis
/// ("Additive watermark attacks need to be analyzed and handled"): Mallory
/// runs the very same embedding algorithm over the owner's (already marked)
/// data with his *own* keys and mark, then claims the data as his.
///
/// Properties this library lets you demonstrate (see
/// tests/additive_attack_test.cc and bench/abl_additive_attack):
///  * Mallory's pass only alters ~N/e tuples, so the owner's mark survives
///    nearly intact — additive marking cannot *remove* a mark.
///  * Both parties detect their marks, so detection alone cannot arbitrate;
///    the dispute resolves procedurally via key commitment (whoever can
///    produce a mark embedded in the *other* party's "original" wins, since
///    the owner's original predates Mallory's copy).
struct AdditiveAttackResult {
  Relation relation;          ///< double-marked data Mallory redistributes
  WatermarkKeySet mallory_keys;
  BitVector mallory_wm;
  EmbedReport mallory_report;
};

Result<AdditiveAttackResult> AdditiveWatermarkAttack(
    const Relation& marked, const std::string& key_attr,
    const std::string& target_attr, const WatermarkParams& params,
    std::size_t mallory_wm_bits, std::uint64_t seed);

}  // namespace catmark

#endif  // CATMARK_CORE_ADDITIVE_ATTACK_H_
