#include "core/embedder.h"

#include <bit>
#include <chrono>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "core/codec.h"
#include "core/tuple_plan.h"
#include "ecc/code.h"
#include "relation/column_store.h"
#include "relation/value_index_column.h"

namespace catmark {

std::size_t DerivePayloadLength(std::size_t num_tuples, std::uint64_t e,
                                std::size_t wm_len) {
  const std::size_t bandwidth = num_tuples / static_cast<std::size_t>(e);
  return bandwidth > wm_len ? bandwidth : wm_len;
}

Embedder::Embedder(WatermarkKeySet keys, WatermarkParams params)
    : keys_(std::move(keys)), params_(params) {
  CATMARK_CHECK(keys_.valid()) << "invalid watermark key set (k1 == k2?)";
  CATMARK_CHECK_GE(params_.e, 1u);
}

namespace {

// Inputs shared by every apply-pass flavour. The serial pass is the
// reference semantics; both sharded passes are proven bit-identical to it
// by the randomized parity suite.
struct ApplyInputs {
  Relation* rel = nullptr;
  const WatermarkParams* params = nullptr;
  const EmbedOptions* options = nullptr;
  const TuplePlan* plan = nullptr;
  const BitVector* wm_data = nullptr;
  std::size_t payload_len = 0;
  std::size_t domain_size = 0;
  std::size_t key_col = 0;
  std::size_t target_col = 0;
  const ValueIndexColumn* target_index = nullptr;
  const std::vector<std::int32_t>* code_of_t = nullptr;  // iff write_codes
  bool write_codes = false;
  std::vector<long>* category_count = nullptr;  // iff guard enabled
  QualityAssessor* assessor = nullptr;
  EmbeddingLedger* ledger = nullptr;
};

// Per-row verdict of the sharded classify phase.
enum RowVerdict : std::uint8_t {
  kUnfit = 0,
  kLedgerSkip,
  kUnchanged,  // fit, value already selects the right bit — commit, no write
  kAlter,      // fit, needs the code write (may still be guard-skipped)
  kGuardSkip,  // alteration vetoed by the category-draining guard
};

// Calls fn(j) for every fit row j in [begin, end), by set-bit scanning the
// plan's packed fitness bitset: one word test skips 64 unfit rows, and the
// body runs only for the ~1/e fit tuples — the branchless replacement for
// the per-row `if (!plan.fit[j]) continue;` scan of every apply flavour.
template <typename Fn>
inline void ForEachFitRow(const std::uint64_t* fit_words, std::size_t begin,
                          std::size_t end, Fn&& fn) {
  if (begin >= end) return;
  std::size_t w = begin >> 6;
  const std::size_t wend = (end + 63) >> 6;
  std::uint64_t word =
      fit_words[w] & (~std::uint64_t{0} << (begin & 63));
  for (;;) {
    while (word != 0) {
      const std::size_t j =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      if (j >= end) return;
      fn(j);
      word &= word - 1;
    }
    if (++w >= wend) return;
    word = fit_words[w];
  }
}

// Distinct wm_data positions hit across all shards (the serial pass's
// position_seen counter, reassembled from per-shard bitmaps by OR — set
// union commutes, so the count is thread-count independent).
std::size_t CountDistinctPositions(
    const std::vector<std::vector<std::uint8_t>>& shard_seen,
    std::size_t payload_len) {
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < payload_len; ++i) {
    for (const std::vector<std::uint8_t>& seen : shard_seen) {
      if (seen[i]) {
        ++distinct;
        break;
      }
    }
  }
  return distinct;
}

// The reference apply pass: preserves the Figure 1(b) map insertion order
// and the draining guard's running counts. An embedding-map entry is
// recorded only once the tuple's alteration (or unchanged hit) is committed
// — skipped tuples must not occupy map slots, or the map-based detector
// would vote on positions that were never written.
Status SerialApply(const ApplyInputs& in, EmbedReport& report) {
  Relation& rel = *in.rel;
  const WatermarkParams& params = *in.params;
  const bool map_mode = in.options->build_embedding_map;
  const TuplePlan& plan = *in.plan;
  const ValueIndexColumn& target_index = *in.target_index;

  std::vector<std::uint8_t> position_seen(in.payload_len, 0);
  std::size_t next_map_index = 0;

  for (std::size_t j = 0; j < rel.NumRows(); ++j) {
    if (!plan.fit[j]) continue;

    if (in.ledger != nullptr && in.ledger->IsMarked(j, in.target_col)) {
      ++report.skipped_by_ledger;
      continue;
    }

    // wm_data bit position: keyed hash (Fig. 1a) or running map (Fig. 1b).
    const std::size_t idx = map_mode ? next_map_index % in.payload_len
                                     : plan.payload_index[j];

    const int bit = in.wm_data->Get(idx);
    const std::size_t t = SelectValueIndex(plan.h1[j], in.domain_size, bit);
    const std::int32_t old_t = target_index.index(j);

    const auto commit = [&] {
      if (!position_seen[idx]) {
        position_seen[idx] = 1;
        ++report.positions_written;
      }
      if (map_mode) {
        report.embedding_map.Insert(rel.Get(j, in.key_col), idx);
        ++next_map_index;
      }
      if (in.ledger != nullptr) in.ledger->Mark(j, in.target_col);
    };

    if (old_t >= 0 && static_cast<std::size_t>(old_t) == t) {
      ++report.unchanged_tuples;
      commit();
      continue;
    }

    if (params.min_category_keep > 0 && old_t >= 0 &&
        (*in.category_count)[old_t] <= params.min_category_keep) {
      ++report.skipped_by_domain_guard;
      continue;
    }

    const Value& new_value = report.domain.value(t);
    if (in.assessor != nullptr) {
      const Status s =
          in.assessor->ProposeAlteration(rel, j, in.target_col, new_value);
      if (!s.ok()) {
        if (!s.IsConstraintViolation()) return s;  // real failure
        ++report.skipped_by_quality;
        continue;
      }
    } else if (in.write_codes) {
      rel.mutable_store().SetCode(j, in.target_col, (*in.code_of_t)[t]);
    } else {
      CATMARK_RETURN_IF_ERROR(rel.Set(j, in.target_col, new_value));
    }
    if (params.min_category_keep > 0) {
      if (old_t >= 0) --(*in.category_count)[old_t];
      ++(*in.category_count)[t];
    }
    ++report.altered_tuples;
    commit();
  }
  return Status::OK();
}

// Report counters and side effects one shard accumulates during the
// parallel apply phase, merged serially (in shard order) afterwards.
struct ShardTally {
  std::size_t unchanged = 0;
  std::size_t altered = 0;
  std::size_t ledger_skips = 0;
  std::vector<std::size_t> marks;  // committed rows, ascending
  EmbeddingMap::Segment segment;   // map path only
};

// Sharded apply for the k2 position path (no embedding map): the bit
// position of every fit tuple is already in the plan, so per-tuple
// decisions are stateless and the pass runs fused — one set-bit scan over
// the plan's fitness bitset per shard, classifying and applying in the same
// touch (raw code writes to disjoint row slots via the bulk writer,
// everything else shard-local and merged in shard order below).
//
// The category-draining guard breaks the fusion: whether tuple j's
// alteration drains a category depends on every earlier alteration's net
// count effect. With the guard on, the pass splits into the classic three
// phases — parallel classify into per-row verdicts, a serial O(fit) guard
// scan (pure array arithmetic — the keyed hashing all happened in the plan
// build), parallel apply — with every phase iterating fit rows via the
// bitset.
void ShardedHashApply(const ApplyInputs& in, std::size_t threads,
                      EmbedReport& report) {
  Relation& rel = *in.rel;
  const WatermarkParams& params = *in.params;
  const TuplePlan& plan = *in.plan;
  const ValueIndexColumn& target_index = *in.target_index;
  const std::size_t n = rel.NumRows();
  const std::uint64_t* fit_words = plan.fit_words.data();

  BulkCodeWriter writer(rel.mutable_store(), in.target_col, threads);
  std::vector<std::vector<std::uint8_t>> shard_seen(
      threads, std::vector<std::uint8_t>(in.payload_len, 0));
  std::vector<ShardTally> tally(threads);

  if (params.min_category_keep == 0) {
    // Fused classify/apply: fitness bitset AND ledger skip AND value
    // comparison resolve in one pass, no verdict materialization at all.
    ParallelFor(n, threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  ShardTally& t = tally[shard];
                  std::vector<std::uint8_t>& seen = shard_seen[shard];
                  ForEachFitRow(fit_words, begin, end, [&](std::size_t j) {
                    if (in.ledger != nullptr &&
                        in.ledger->IsMarked(j, in.target_col)) {
                      ++t.ledger_skips;
                      return;
                    }
                    const std::size_t idx = plan.payload_index[j];
                    const int bit = in.wm_data->Get(idx);
                    const std::size_t tv =
                        SelectValueIndex(plan.h1[j], in.domain_size, bit);
                    const std::int32_t old_t = target_index.index(j);
                    if (old_t >= 0 && static_cast<std::size_t>(old_t) == tv) {
                      ++t.unchanged;
                    } else {
                      writer.Write(shard, j, (*in.code_of_t)[tv]);
                      ++t.altered;
                    }
                    seen[idx] = 1;
                    if (in.ledger != nullptr) t.marks.push_back(j);
                  });
                });
  } else {
    std::vector<std::uint8_t> verdict(n, kUnfit);
    std::vector<std::uint32_t> tsel(n, 0);

    // Phase 1: classify. Reads the plan, the domain-index view and (const)
    // ledger; writes only per-row slots.
    ParallelFor(n, threads,
                [&](std::size_t, std::size_t begin, std::size_t end) {
                  ForEachFitRow(fit_words, begin, end, [&](std::size_t j) {
                    if (in.ledger != nullptr &&
                        in.ledger->IsMarked(j, in.target_col)) {
                      verdict[j] = kLedgerSkip;
                      return;
                    }
                    const std::size_t idx = plan.payload_index[j];
                    const int bit = in.wm_data->Get(idx);
                    const std::size_t t =
                        SelectValueIndex(plan.h1[j], in.domain_size, bit);
                    tsel[j] = static_cast<std::uint32_t>(t);
                    const std::int32_t old_t = target_index.index(j);
                    verdict[j] =
                        (old_t >= 0 && static_cast<std::size_t>(old_t) == t)
                            ? kUnchanged
                            : kAlter;
                  });
                });

    // Guard resolution, inherently ordered (see above).
    std::vector<long>& category_count = *in.category_count;
    ForEachFitRow(fit_words, 0, n, [&](std::size_t j) {
      if (verdict[j] != kAlter) return;
      const std::int32_t old_t = target_index.index(j);
      if (old_t >= 0 && category_count[old_t] <= params.min_category_keep) {
        verdict[j] = kGuardSkip;
        ++report.skipped_by_domain_guard;
        return;
      }
      if (old_t >= 0) --category_count[old_t];
      ++category_count[tsel[j]];
    });

    // Phase 2: apply.
    ParallelFor(n, threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  ShardTally& t = tally[shard];
                  std::vector<std::uint8_t>& seen = shard_seen[shard];
                  ForEachFitRow(fit_words, begin, end, [&](std::size_t j) {
                    switch (verdict[j]) {
                      case kUnchanged:
                        ++t.unchanged;
                        break;
                      case kAlter:
                        writer.Write(shard, j, (*in.code_of_t)[tsel[j]]);
                        ++t.altered;
                        break;
                      case kLedgerSkip:
                        ++t.ledger_skips;
                        return;
                      default:
                        return;
                    }
                    seen[plan.payload_index[j]] = 1;
                    if (in.ledger != nullptr) t.marks.push_back(j);
                  });
                });
  }
  writer.Finish();

  for (const ShardTally& t : tally) {
    report.unchanged_tuples += t.unchanged;
    report.altered_tuples += t.altered;
    report.skipped_by_ledger += t.ledger_skips;
    if (in.ledger != nullptr) in.ledger->MarkRows(t.marks, in.target_col);
  }
  report.positions_written =
      CountDistinctPositions(shard_seen, in.payload_len);
  report.apply_shards = threads;
}

// Two-phase sharded apply for the Figure 1(b) embedding-map path. Without
// the draining guard or a quality assessor, *every* fit, non-ledger-marked
// tuple commits, so the running map index the serial pass hands out is an
// exact prefix-sum over per-shard commit counts: shard s starts at the
// total commits of shards 0..s-1 and counts up. Phase 2 then selects
// values, applies code writes and serializes per-shard map segments fully
// in parallel; the segments splice in shard order, reproducing the serial
// insertion sequence byte-for-byte.
void ShardedMapApply(const ApplyInputs& in, std::size_t threads,
                     EmbedReport& report) {
  Relation& rel = *in.rel;
  const TuplePlan& plan = *in.plan;
  const ValueIndexColumn& target_index = *in.target_index;
  const std::size_t n = rel.NumRows();

  const std::uint64_t* fit_words = plan.fit_words.data();

  // Per-shard commit counts. With no ledger these are the plan's per-shard
  // fit counts (same (n, threads) partition); with a ledger, one cheap
  // counting pass filters out already-marked cells.
  std::vector<std::size_t> base;
  if (in.ledger == nullptr) {
    CATMARK_CHECK_EQ(plan.shard_fit.size(), threads);
    base = plan.shard_fit;
  } else {
    base.assign(threads, 0);
    ParallelFor(n, threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  std::size_t commits = 0;
                  ForEachFitRow(fit_words, begin, end, [&](std::size_t j) {
                    if (!in.ledger->IsMarked(j, in.target_col)) ++commits;
                  });
                  base[shard] = commits;
                });
  }
  const std::vector<std::size_t> shard_commits = base;
  ExclusivePrefixSum(base);  // base[s] = first global map index of shard s

  // The map key is the serialized key value, which on a dict-encoded key
  // column is the same bytes for every row sharing a dict code — serialize
  // each live dictionary entry once up front and splice by code, instead of
  // re-serializing (and re-allocating) per committing tuple.
  const ColumnReader key_probe(rel.store(), in.key_col);
  std::vector<std::string> key_of_code;
  if (key_probe.is_dict()) {
    const std::vector<Value>& dict = key_probe.dict();
    key_of_code.resize(dict.size());
    std::vector<std::uint8_t> scratch;
    scratch.reserve(64);
    for (std::size_t c = 0; c < dict.size(); ++c) {
      key_of_code[c] = std::string(dict[c].SerializeKeyInto(scratch));
    }
  }

  BulkCodeWriter writer(rel.mutable_store(), in.target_col, threads);
  std::vector<std::vector<std::uint8_t>> shard_seen(
      threads, std::vector<std::uint8_t>(in.payload_len, 0));
  std::vector<ShardTally> tally(threads);

  ParallelFor(
      n, threads, [&](std::size_t shard, std::size_t begin, std::size_t end) {
        ShardTally& t = tally[shard];
        t.segment.reserve(shard_commits[shard]);
        std::vector<std::uint8_t>& seen = shard_seen[shard];
        const ColumnReader key_reader(rel.store(), in.key_col);
        const std::int32_t* key_codes =
            key_reader.is_dict() ? key_reader.codes().data() : nullptr;
        std::vector<std::uint8_t> scratch;
        scratch.reserve(64);
        std::size_t map_index = base[shard];
        ForEachFitRow(fit_words, begin, end, [&](std::size_t j) {
          if (in.ledger != nullptr && in.ledger->IsMarked(j, in.target_col)) {
            ++t.ledger_skips;
            return;
          }
          // Global map indices wrap around the payload exactly like the
          // serial pass's next_map_index % payload_len — including across
          // shard boundaries, where base[shard] may land mid-cycle.
          const std::size_t idx = map_index % in.payload_len;
          const int bit = in.wm_data->Get(idx);
          const std::size_t tval =
              SelectValueIndex(plan.h1[j], in.domain_size, bit);
          const std::int32_t old_t = target_index.index(j);
          if (old_t >= 0 && static_cast<std::size_t>(old_t) == tval) {
            ++t.unchanged;
          } else {
            writer.Write(shard, j, (*in.code_of_t)[tval]);
            ++t.altered;
          }
          seen[idx] = 1;
          if (key_codes != nullptr) {
            // Fit rows have non-NULL keys, so the dict code is valid.
            t.segment.emplace_back(key_of_code[key_codes[j]], idx);
          } else {
            t.segment.emplace_back(
                std::string(key_reader[j].SerializeKeyInto(scratch)), idx);
          }
          if (in.ledger != nullptr) t.marks.push_back(j);
          ++map_index;
        });
      });
  writer.Finish();

  for (ShardTally& t : tally) {
    report.unchanged_tuples += t.unchanged;
    report.altered_tuples += t.altered;
    report.skipped_by_ledger += t.ledger_skips;
    report.embedding_map.AppendSegment(std::move(t.segment));
    if (in.ledger != nullptr) in.ledger->MarkRows(t.marks, in.target_col);
  }
  report.positions_written =
      CountDistinctPositions(shard_seen, in.payload_len);
  report.apply_shards = threads;
}

}  // namespace

Result<EmbedReport> Embedder::Embed(Relation& rel,
                                    const EmbedOptions& options,
                                    const BitVector& wm,
                                    QualityAssessor* assessor,
                                    EmbeddingLedger* ledger) const {
  const auto wall_start = std::chrono::steady_clock::now();
  if (wm.empty()) {
    return Status::InvalidArgument("watermark must be non-empty");
  }
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t key_col,
      rel.schema().ColumnIndexOrError(options.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t target_col,
      rel.schema().ColumnIndexOrError(options.target_attr));
  if (key_col == target_col) {
    return Status::InvalidArgument(
        "key and target attribute must differ (the channel is their "
        "association)");
  }
  if (!rel.schema().column(target_col).categorical) {
    return Status::FailedPrecondition(
        "target attribute '" + options.target_attr +
        "' is not categorical; this scheme embeds into categorical channels");
  }

  EmbedReport report;
  report.num_tuples = rel.NumRows();
  if (rel.empty()) {
    return Status::FailedPrecondition("cannot watermark an empty relation");
  }
  if (rel.NumRows() / params_.e == 0) {
    return Status::FailedPrecondition(
        "encoding parameter e exceeds the relation size (N/e == 0): fewer "
        "than one tuple is expected to be fit, so the channel has no "
        "bandwidth");
  }

  if (options.domain.has_value()) {
    report.domain = *options.domain;
  } else {
    CATMARK_ASSIGN_OR_RETURN(
        report.domain,
        CategoricalDomain::FromRelationColumn(rel, target_col));
  }
  const std::size_t domain_size = report.domain.size();
  if (domain_size < 2) {
    return Status::FailedPrecondition(
        "target attribute domain has fewer than 2 values — zero channel "
        "capacity (Section 3.3 note)");
  }

  const std::size_t payload_len =
      params_.payload_length != 0
          ? params_.payload_length
          : DerivePayloadLength(rel.NumRows(), params_.e, wm.size());
  report.payload_length = payload_len;

  const std::unique_ptr<ErrorCorrectingCode> ecc = CreateEcc(params_.ecc);
  CATMARK_ASSIGN_OR_RETURN(const BitVector wm_data,
                           ecc->Encode(wm, payload_len));

  // Parallel precompute: fitness hashes and (on the k2 path) payload
  // indices in one pass, plus the domain-index view of the target column so
  // IndexOf runs once per dictionary entry instead of up to twice per fit
  // tuple. The keyed-PRF backend resolves here (explicit params choice,
  // else CATMARK_PRF, else the legacy keyed hash) so a typo'd backend name
  // surfaces as InvalidArgument instead of embedding an undetectable mark.
  const std::size_t threads =
      EffectiveThreadCount(params_.num_threads, rel.NumRows());
  TuplePlanOptions plan_options;
  plan_options.payload_len = payload_len;
  plan_options.with_payload_index = !options.build_embedding_map;
  plan_options.num_threads = threads;
  CATMARK_ASSIGN_OR_RETURN(plan_options.prf, ResolvePrfKind(params_.prf));
  report.prf = plan_options.prf;
  const TuplePlan plan =
      BuildTuplePlan(rel, key_col, keys_, params_, plan_options);
  report.rows_scanned = plan.size();
  report.messages_hashed = plan.messages_hashed;

  // Dictionary-encoded targets apply alterations as raw code writes: intern
  // every domain value up front — before the index view is built, so its
  // remap table covers the codes — and map domain index t to its code. When
  // a caller-supplied domain carries values that do not match the column
  // type, fall back to the validating Set path so the type error surfaces
  // exactly as it used to.
  std::vector<std::int32_t> code_of_t;
  bool write_codes = rel.store().IsDictColumn(target_col);
  if (write_codes) {
    const ColumnType target_type = rel.schema().column(target_col).type;
    for (std::size_t t = 0; t < domain_size && write_codes; ++t) {
      write_codes = report.domain.value(t).MatchesType(target_type);
    }
  }
  if (write_codes) {
    code_of_t.resize(domain_size);
    for (std::size_t t = 0; t < domain_size; ++t) {
      code_of_t[t] =
          rel.mutable_store().InternValue(target_col, report.domain.value(t));
    }
  }

  const ValueIndexColumn target_index =
      ValueIndexColumn::Build(rel, target_col, report.domain, threads);

  // Occurrence counts per domain value, for the category-draining guard.
  std::vector<long> category_count;
  if (params_.min_category_keep > 0) {
    category_count = target_index.CountPerCategory(domain_size);
  }

  report.fit_tuples = plan.fit_count;

  ApplyInputs inputs;
  inputs.rel = &rel;
  inputs.params = &params_;
  inputs.options = &options;
  inputs.plan = &plan;
  inputs.wm_data = &wm_data;
  inputs.payload_len = payload_len;
  inputs.domain_size = domain_size;
  inputs.key_col = key_col;
  inputs.target_col = target_col;
  inputs.target_index = &target_index;
  inputs.code_of_t = &code_of_t;
  inputs.write_codes = write_codes;
  inputs.category_count = &category_count;
  inputs.assessor = assessor;
  inputs.ledger = ledger;

  // Sharded apply needs raw code writes and stateless per-tuple decisions:
  // a quality assessor interleaves relation mutation with its verdicts, and
  // the map + draining-guard combination makes each tuple's bit position
  // depend on every earlier guard outcome. Those run the reference serial
  // pass (apply_shards stays 1). At threads == 1 the sharded passes run
  // inline on the calling thread — the fused bitset pipeline is the
  // single-thread fast path too, not just the parallel one.
  const bool serial_only =
      options.force_serial_apply || assessor != nullptr || !write_codes ||
      (options.build_embedding_map && params_.min_category_keep > 0);
  if (serial_only) {
    CATMARK_RETURN_IF_ERROR(SerialApply(inputs, report));
  } else if (options.build_embedding_map) {
    ShardedMapApply(inputs, threads, report);
  } else {
    ShardedHashApply(inputs, threads, report);
  }

  report.alteration_fraction =
      static_cast<double>(report.altered_tuples) /
      static_cast<double>(report.num_tuples);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

}  // namespace catmark
