#include "core/embedder.h"

#include <unordered_set>

#include "core/codec.h"
#include "ecc/code.h"

namespace catmark {

std::size_t DerivePayloadLength(std::size_t num_tuples, std::uint64_t e,
                                std::size_t wm_len) {
  const std::size_t bandwidth = num_tuples / static_cast<std::size_t>(e);
  return bandwidth > wm_len ? bandwidth : wm_len;
}

Embedder::Embedder(WatermarkKeySet keys, WatermarkParams params)
    : keys_(std::move(keys)), params_(params) {
  CATMARK_CHECK(keys_.valid()) << "invalid watermark key set (k1 == k2?)";
  CATMARK_CHECK_GE(params_.e, 1u);
}

Result<EmbedReport> Embedder::Embed(Relation& rel,
                                    const EmbedOptions& options,
                                    const BitVector& wm,
                                    QualityAssessor* assessor,
                                    EmbeddingLedger* ledger) const {
  if (wm.empty()) {
    return Status::InvalidArgument("watermark must be non-empty");
  }
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t key_col,
      rel.schema().ColumnIndexOrError(options.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t target_col,
      rel.schema().ColumnIndexOrError(options.target_attr));
  if (key_col == target_col) {
    return Status::InvalidArgument(
        "key and target attribute must differ (the channel is their "
        "association)");
  }
  if (!rel.schema().column(target_col).categorical) {
    return Status::FailedPrecondition(
        "target attribute '" + options.target_attr +
        "' is not categorical; this scheme embeds into categorical channels");
  }

  EmbedReport report;
  report.num_tuples = rel.NumRows();
  if (rel.empty()) {
    return Status::FailedPrecondition("cannot watermark an empty relation");
  }

  if (options.domain.has_value()) {
    report.domain = *options.domain;
  } else {
    CATMARK_ASSIGN_OR_RETURN(
        report.domain,
        CategoricalDomain::FromRelationColumn(rel, target_col));
  }
  const std::size_t domain_size = report.domain.size();
  if (domain_size < 2) {
    return Status::FailedPrecondition(
        "target attribute domain has fewer than 2 values — zero channel "
        "capacity (Section 3.3 note)");
  }

  const std::size_t payload_len =
      params_.payload_length != 0
          ? params_.payload_length
          : DerivePayloadLength(rel.NumRows(), params_.e, wm.size());
  report.payload_length = payload_len;

  const std::unique_ptr<ErrorCorrectingCode> ecc = CreateEcc(params_.ecc);
  CATMARK_ASSIGN_OR_RETURN(const BitVector wm_data,
                           ecc->Encode(wm, payload_len));

  const FitnessSelector fitness(keys_.k1, params_.e, params_.hash_algo);
  const KeyedHasher position_hasher(keys_.k2, params_.hash_algo);

  // Occurrence counts per domain value, for the category-draining guard.
  std::vector<long> category_count(domain_size, 0);
  if (params_.min_category_keep > 0) {
    for (std::size_t j = 0; j < rel.NumRows(); ++j) {
      const auto t = report.domain.IndexOf(rel.Get(j, target_col));
      if (t.has_value()) ++category_count[*t];
    }
  }

  std::unordered_set<std::size_t> positions;
  std::size_t next_map_index = 0;

  for (std::size_t j = 0; j < rel.NumRows(); ++j) {
    const Value& key_value = rel.Get(j, key_col);
    if (key_value.is_null()) continue;
    const std::uint64_t h1 = fitness.KeyHash(key_value);
    if (h1 % params_.e != 0) continue;
    ++report.fit_tuples;

    // wm_data bit position: keyed hash (Fig. 1a) or running map (Fig. 1b).
    std::size_t idx;
    if (options.build_embedding_map) {
      idx = next_map_index % payload_len;
      report.embedding_map.Insert(key_value, idx);
      ++next_map_index;
    } else {
      idx = PayloadIndexFromHash(HashValue(position_hasher, key_value),
                                 payload_len, params_.bit_index_mode);
    }

    if (ledger != nullptr && ledger->IsMarked(j, target_col)) {
      ++report.skipped_by_ledger;
      continue;
    }

    const int bit = wm_data.Get(idx);
    const std::size_t t = SelectValueIndex(h1, domain_size, bit);
    const Value& new_value = report.domain.value(t);
    // Copy: rel.Set below overwrites the cell this would reference.
    const Value old_value = rel.Get(j, target_col);

    if (old_value == new_value) {
      ++report.unchanged_tuples;
      positions.insert(idx);
      if (ledger != nullptr) ledger->Mark(j, target_col);
      continue;
    }

    const std::optional<std::size_t> old_t =
        params_.min_category_keep > 0
            ? report.domain.IndexOf(old_value)
            : std::optional<std::size_t>{};
    if (old_t.has_value() &&
        category_count[*old_t] <= params_.min_category_keep) {
      ++report.skipped_by_domain_guard;
      continue;
    }

    if (assessor != nullptr) {
      const Status s =
          assessor->ProposeAlteration(rel, j, target_col, new_value);
      if (!s.ok()) {
        if (!s.IsConstraintViolation()) return s;  // real failure
        ++report.skipped_by_quality;
        continue;
      }
    } else {
      CATMARK_RETURN_IF_ERROR(rel.Set(j, target_col, new_value));
    }
    if (params_.min_category_keep > 0) {
      if (old_t.has_value()) --category_count[*old_t];
      ++category_count[t];
    }
    ++report.altered_tuples;
    positions.insert(idx);
    if (ledger != nullptr) ledger->Mark(j, target_col);
  }

  report.positions_written = positions.size();
  report.alteration_fraction =
      static_cast<double>(report.altered_tuples) /
      static_cast<double>(report.num_tuples);
  return report;
}

}  // namespace catmark
