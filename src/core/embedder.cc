#include "core/embedder.h"

#include "common/parallel.h"
#include "core/codec.h"
#include "core/tuple_plan.h"
#include "ecc/code.h"
#include "relation/value_index_column.h"

namespace catmark {

std::size_t DerivePayloadLength(std::size_t num_tuples, std::uint64_t e,
                                std::size_t wm_len) {
  const std::size_t bandwidth = num_tuples / static_cast<std::size_t>(e);
  return bandwidth > wm_len ? bandwidth : wm_len;
}

Embedder::Embedder(WatermarkKeySet keys, WatermarkParams params)
    : keys_(std::move(keys)), params_(params) {
  CATMARK_CHECK(keys_.valid()) << "invalid watermark key set (k1 == k2?)";
  CATMARK_CHECK_GE(params_.e, 1u);
}

Result<EmbedReport> Embedder::Embed(Relation& rel,
                                    const EmbedOptions& options,
                                    const BitVector& wm,
                                    QualityAssessor* assessor,
                                    EmbeddingLedger* ledger) const {
  if (wm.empty()) {
    return Status::InvalidArgument("watermark must be non-empty");
  }
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t key_col,
      rel.schema().ColumnIndexOrError(options.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t target_col,
      rel.schema().ColumnIndexOrError(options.target_attr));
  if (key_col == target_col) {
    return Status::InvalidArgument(
        "key and target attribute must differ (the channel is their "
        "association)");
  }
  if (!rel.schema().column(target_col).categorical) {
    return Status::FailedPrecondition(
        "target attribute '" + options.target_attr +
        "' is not categorical; this scheme embeds into categorical channels");
  }

  EmbedReport report;
  report.num_tuples = rel.NumRows();
  if (rel.empty()) {
    return Status::FailedPrecondition("cannot watermark an empty relation");
  }
  if (rel.NumRows() / params_.e == 0) {
    return Status::FailedPrecondition(
        "encoding parameter e exceeds the relation size (N/e == 0): fewer "
        "than one tuple is expected to be fit, so the channel has no "
        "bandwidth");
  }

  if (options.domain.has_value()) {
    report.domain = *options.domain;
  } else {
    CATMARK_ASSIGN_OR_RETURN(
        report.domain,
        CategoricalDomain::FromRelationColumn(rel, target_col));
  }
  const std::size_t domain_size = report.domain.size();
  if (domain_size < 2) {
    return Status::FailedPrecondition(
        "target attribute domain has fewer than 2 values — zero channel "
        "capacity (Section 3.3 note)");
  }

  const std::size_t payload_len =
      params_.payload_length != 0
          ? params_.payload_length
          : DerivePayloadLength(rel.NumRows(), params_.e, wm.size());
  report.payload_length = payload_len;

  const std::unique_ptr<ErrorCorrectingCode> ecc = CreateEcc(params_.ecc);
  CATMARK_ASSIGN_OR_RETURN(const BitVector wm_data,
                           ecc->Encode(wm, payload_len));

  // Parallel precompute: fitness hashes and (on the k2 path) payload
  // indices in one pass, plus the domain-index view of the target column so
  // IndexOf runs once per dictionary entry instead of up to twice per fit
  // tuple.
  const std::size_t threads =
      EffectiveThreadCount(params_.num_threads, rel.NumRows());
  const TuplePlan plan =
      BuildTuplePlan(rel, key_col, keys_, params_, payload_len,
                     !options.build_embedding_map, threads);

  // Dictionary-encoded targets apply alterations as raw code writes: intern
  // every domain value up front — before the index view is built, so its
  // remap table covers the codes — and map domain index t to its code. When
  // a caller-supplied domain carries values that do not match the column
  // type, fall back to the validating Set path so the type error surfaces
  // exactly as it used to.
  std::vector<std::int32_t> code_of_t;
  bool write_codes = rel.store().IsDictColumn(target_col);
  if (write_codes) {
    const ColumnType target_type = rel.schema().column(target_col).type;
    for (std::size_t t = 0; t < domain_size && write_codes; ++t) {
      write_codes = report.domain.value(t).MatchesType(target_type);
    }
  }
  if (write_codes) {
    code_of_t.resize(domain_size);
    for (std::size_t t = 0; t < domain_size; ++t) {
      code_of_t[t] =
          rel.mutable_store().InternValue(target_col, report.domain.value(t));
    }
  }

  const ValueIndexColumn target_index =
      ValueIndexColumn::Build(rel, target_col, report.domain, threads);

  // Occurrence counts per domain value, for the category-draining guard.
  std::vector<long> category_count;
  if (params_.min_category_keep > 0) {
    category_count = target_index.CountPerCategory(domain_size);
  }

  // Sequential apply pass: preserves the Figure 1(b) map insertion order and
  // the draining guard's running counts. An embedding-map entry is recorded
  // only once the tuple's alteration (or unchanged hit) is committed —
  // skipped tuples must not occupy map slots, or the map-based detector
  // would vote on positions that were never written.
  std::vector<std::uint8_t> position_seen(payload_len, 0);
  std::size_t next_map_index = 0;

  for (std::size_t j = 0; j < rel.NumRows(); ++j) {
    if (!plan.fit[j]) continue;
    ++report.fit_tuples;

    if (ledger != nullptr && ledger->IsMarked(j, target_col)) {
      ++report.skipped_by_ledger;
      continue;
    }

    // wm_data bit position: keyed hash (Fig. 1a) or running map (Fig. 1b).
    const std::size_t idx = options.build_embedding_map
                                ? next_map_index % payload_len
                                : plan.payload_index[j];

    const int bit = wm_data.Get(idx);
    const std::size_t t = SelectValueIndex(plan.h1[j], domain_size, bit);
    const std::int32_t old_t = target_index.index(j);

    const auto commit = [&] {
      if (!position_seen[idx]) {
        position_seen[idx] = 1;
        ++report.positions_written;
      }
      if (options.build_embedding_map) {
        report.embedding_map.Insert(rel.Get(j, key_col), idx);
        ++next_map_index;
      }
      if (ledger != nullptr) ledger->Mark(j, target_col);
    };

    if (old_t >= 0 && static_cast<std::size_t>(old_t) == t) {
      ++report.unchanged_tuples;
      commit();
      continue;
    }

    if (params_.min_category_keep > 0 && old_t >= 0 &&
        category_count[old_t] <= params_.min_category_keep) {
      ++report.skipped_by_domain_guard;
      continue;
    }

    const Value& new_value = report.domain.value(t);
    if (assessor != nullptr) {
      const Status s =
          assessor->ProposeAlteration(rel, j, target_col, new_value);
      if (!s.ok()) {
        if (!s.IsConstraintViolation()) return s;  // real failure
        ++report.skipped_by_quality;
        continue;
      }
    } else if (write_codes) {
      rel.mutable_store().SetCode(j, target_col, code_of_t[t]);
    } else {
      CATMARK_RETURN_IF_ERROR(rel.Set(j, target_col, new_value));
    }
    if (params_.min_category_keep > 0) {
      if (old_t >= 0) --category_count[old_t];
      ++category_count[t];
    }
    ++report.altered_tuples;
    commit();
  }

  report.alteration_fraction =
      static_cast<double>(report.altered_tuples) /
      static_cast<double>(report.num_tuples);
  return report;
}

}  // namespace catmark
