#ifndef CATMARK_CORE_INCREMENTAL_H_
#define CATMARK_CORE_INCREMENTAL_H_

#include <string>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/embedder.h"
#include "core/keys.h"
#include "core/params.h"
#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// Incremental updates (Section 4.3): "As updates occur to the data, the
/// resulting tuples can be evaluated on the fly for 'fitness' and
/// watermarked accordingly." This wraps the per-tuple embedding rule so a
/// live feed can keep a marked relation consistent without re-running the
/// full embedding pass.
///
/// The payload length is pinned at construction (it must match the original
/// embedding; see WatermarkParams::payload_length), so detection over the
/// grown relation keeps working.
class IncrementalWatermarker {
 public:
  /// `report` is the original embedding's report — it carries the payload
  /// length and the attribute domain the updates must agree on.
  IncrementalWatermarker(WatermarkKeySet keys, WatermarkParams params,
                         const EmbedOptions& options, const EmbedReport& report,
                         BitVector wm);

  /// Watermarks `row` (if fit) and appends it to `rel`. Returns true when
  /// the tuple was fit (and therefore carries a mark bit).
  Result<bool> Insert(Relation& rel, Row row) const;

  /// Re-evaluates an updated tuple in place: when the key attribute of row
  /// `row_index` is fit, re-applies the embedding rule to the target
  /// attribute (an UPDATE that touched either attribute may have destroyed
  /// the bit). Returns true when the tuple is fit.
  Result<bool> Refresh(Relation& rel, std::size_t row_index) const;

  const CategoricalDomain& domain() const { return domain_; }
  std::size_t payload_length() const { return payload_length_; }

 private:
  /// Computes the watermarked value for `key_value`, or nullopt when unfit.
  Result<Value> MarkedValueFor(const Value& key_value, bool& fit) const;

  WatermarkKeySet keys_;
  WatermarkParams params_;
  std::string key_attr_;
  std::string target_attr_;
  CategoricalDomain domain_;
  std::size_t payload_length_;
  BitVector wm_data_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_INCREMENTAL_H_
