#ifndef CATMARK_CORE_INCREMENTAL_H_
#define CATMARK_CORE_INCREMENTAL_H_

/// Compatibility shim: the incremental-update API (Section 4.3) was
/// redesigned into the batched streaming subsystem under src/service/.
/// IncrementalWatermarker lives there now as a thin wrapper over a
/// StreamSession batch of one; include service/session.h (or
/// service/service.h for the multi-session WatermarkService) directly in
/// new code.

#include "service/session.h"  // IWYU pragma: export

#endif  // CATMARK_CORE_INCREMENTAL_H_
