#ifndef CATMARK_CORE_INCREMENTAL_H_
#define CATMARK_CORE_INCREMENTAL_H_

#include <memory>
#include <string>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/embedder.h"
#include "core/keys.h"
#include "core/params.h"
#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// Incremental updates (Section 4.3): "As updates occur to the data, the
/// resulting tuples can be evaluated on the fly for 'fitness' and
/// watermarked accordingly." This wraps the per-tuple embedding rule so a
/// live feed can keep a marked relation consistent without re-running the
/// full embedding pass.
///
/// The payload length and the keyed-PRF backend are pinned at construction
/// (they must match the original embedding; see WatermarkParams::
/// payload_length and EmbedReport::prf), so detection over the grown
/// relation keeps working whatever the environment says later.
class IncrementalWatermarker {
 public:
  /// `report` is the original embedding's report — it carries the payload
  /// length, the attribute domain and the PRF backend the updates must
  /// agree on. An explicit `params.prf` wins; on auto (nullopt) the
  /// backend is taken from the report, *not* re-resolved from CATMARK_PRF
  /// at insert time.
  IncrementalWatermarker(WatermarkKeySet keys, WatermarkParams params,
                         const EmbedOptions& options, const EmbedReport& report,
                         BitVector wm);

  /// Watermarks `row` (if fit) and appends it to `rel`. Returns true when
  /// the tuple was fit (and therefore carries a mark bit).
  Result<bool> Insert(Relation& rel, Row row) const;

  /// Re-evaluates an updated tuple in place: when the key attribute of row
  /// `row_index` is fit, re-applies the embedding rule to the target
  /// attribute (an UPDATE that touched either attribute may have destroyed
  /// the bit). Returns true when the tuple is fit.
  Result<bool> Refresh(Relation& rel, std::size_t row_index) const;

  const CategoricalDomain& domain() const { return domain_; }
  std::size_t payload_length() const { return payload_length_; }

 private:
  /// Computes the watermarked value for `key_value`, or nullopt when unfit.
  Result<Value> MarkedValueFor(const Value& key_value, bool& fit) const;

  WatermarkKeySet keys_;
  WatermarkParams params_;
  std::string key_attr_;
  std::string target_attr_;
  CategoricalDomain domain_;
  std::size_t payload_length_;
  BitVector wm_data_;
  // Built once here: inserts must not pay the backend's key schedule (for
  // siphash24, a SHA-256 key derivation) per tuple.
  std::unique_ptr<KeyedPrf> prf_k1_;
  std::unique_ptr<KeyedPrf> prf_k2_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_INCREMENTAL_H_
