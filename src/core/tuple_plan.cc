#include "core/tuple_plan.h"

#include <limits>
#include <string_view>

#include "common/check.h"
#include "common/parallel.h"
#include "core/codec.h"
#include "relation/column_store.h"

namespace catmark {

void KeyHashBatch::Hash(const KeyedPrf& prf) {
  views.resize(ends.size());
  h1.resize(ends.size());
  std::size_t begin = 0;
  for (std::size_t i = 0; i < ends.size(); ++i) {
    views[i] = std::string_view(
        reinterpret_cast<const char*>(arena.data()) + begin,
        ends[i] - begin);
    begin = ends[i];
  }
  prf.Hash64Column(views, std::span<std::uint64_t>(h1.data(), h1.size()));
}

TuplePlan BuildTuplePlan(const Relation& rel, std::size_t key_col,
                         const WatermarkKeySet& keys,
                         const WatermarkParams& params,
                         const TuplePlanOptions& options) {
  const std::size_t n = rel.NumRows();
  TuplePlan plan;
  plan.fit.assign(n, 0);
  plan.h1.assign(n, 0);
  if (options.with_payload_index) {
    CATMARK_CHECK_GE(options.payload_len, 1u);
    CATMARK_CHECK_LE(options.payload_len,
                     static_cast<std::size_t>(
                         std::numeric_limits<std::uint32_t>::max()));
    plan.payload_index.assign(n, 0);
  }

  // One immutable PRF instance per key, shared by every worker: the key
  // schedule is set up here, once, not per shard or per row.
  const std::unique_ptr<KeyedPrf> prf_k1 =
      CreateKeyedPrf(options.prf, keys.k1, params.hash_algo);
  const std::unique_ptr<KeyedPrf> prf_k2 =
      CreateKeyedPrf(options.prf, keys.k2, params.hash_algo);

  const std::size_t threads = EffectiveThreadCount(options.num_threads, n);
  const ColumnStore& store = rel.store();

  if (store.IsDictColumn(key_col) && options.use_dict_cache) {
    // Dictionary-encoded key column: every row with the same key value
    // hashes identically, so hash each live distinct dictionary entry once
    // into a per-dict-code h1/fit cache and fan the verdicts out through
    // the code vector — |dict| keyed hashes instead of N.
    const std::vector<Value>& dict = store.Dict(key_col);
    const std::vector<std::int32_t>& codes = store.Codes(key_col);
    const std::vector<std::int64_t>& live = store.DictLiveCounts(key_col);
    std::vector<std::uint64_t> h1_of(dict.size(), 0);
    std::vector<std::uint8_t> fit_of(dict.size(), 0);
    std::vector<std::uint32_t> index_of(
        options.with_payload_index ? dict.size() : 0, 0);
    // The keyed hashing dominates, and a near-unique categorical key means
    // |dict| ~ N — shard it like the plain path so plan build keeps its
    // multi-core scaling.
    ParallelFor(
        dict.size(), EffectiveThreadCount(options.num_threads, dict.size()),
        [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
          KeyHashBatch batch;
          for (std::size_t code = begin; code < end;) {
            batch.Clear();
            for (; code < end && batch.size() < kKeyHashBatch; ++code) {
              // Dead entries (live count 0) have no referencing row.
              if (live[code] == 0) continue;
              batch.Add(dict[code], code);
            }
            batch.Hash(*prf_k1);
            for (std::size_t i = 0; i < batch.size(); ++i) {
              const std::uint64_t h1 = batch.h1[i];
              if (h1 % params.e != 0) continue;
              const std::size_t c = batch.ids[i];
              fit_of[c] = 1;
              h1_of[c] = h1;
              if (options.with_payload_index) {
                // The fitness rate is 1/e, so the k2 position hash runs on
                // a small minority of entries — single-shot is fine here.
                index_of[c] = static_cast<std::uint32_t>(PayloadIndexFromHash(
                    prf_k2->Hash64(batch.views[i]), options.payload_len,
                    params.bit_index_mode));
              }
            }
          }
        });
    // Each live distinct entry went through the PRF exactly once above.
    for (const std::int64_t l : live) plan.messages_hashed += (l != 0);
    plan.shard_fit.assign(threads, 0);
    std::vector<std::size_t>& shard_fit = plan.shard_fit;
    ParallelFor(n, threads, [&](std::size_t shard, std::size_t begin,
                                std::size_t end) {
      std::size_t local_fit = 0;
      for (std::size_t j = begin; j < end; ++j) {
        const std::int32_t code = codes[j];
        if (code < 0 || !fit_of[static_cast<std::size_t>(code)]) continue;
        plan.fit[j] = 1;
        plan.h1[j] = h1_of[static_cast<std::size_t>(code)];
        ++local_fit;
        if (options.with_payload_index) {
          plan.payload_index[j] = index_of[static_cast<std::size_t>(code)];
        }
      }
      shard_fit[shard] = local_fit;
    });
    for (const std::size_t f : shard_fit) plan.fit_count += f;
    return plan;
  }

  // Per-row batch path (plain key columns, or the dict cache disabled for
  // the parity tests): serialize each shard's keys chunk-wise into one
  // arena and hash the chunk with a single batched PRF call.
  const ColumnReader key_reader(store, key_col);
  plan.shard_fit.assign(threads, 0);
  std::vector<std::size_t>& shard_fit = plan.shard_fit;
  std::vector<std::size_t> shard_hashed(threads, 0);
  ParallelFor(n, threads, [&](std::size_t shard, std::size_t begin,
                              std::size_t end) {
    KeyHashBatch batch;
    std::size_t local_fit = 0;
    std::size_t local_hashed = 0;
    for (std::size_t j = begin; j < end;) {
      batch.Clear();
      for (; j < end && batch.size() < kKeyHashBatch; ++j) {
        const Value& key_value = key_reader[j];
        if (key_value.is_null()) continue;
        batch.Add(key_value, j);
      }
      local_hashed += batch.size();
      batch.Hash(*prf_k1);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::uint64_t h1 = batch.h1[i];
        if (h1 % params.e != 0) continue;
        const std::size_t row = batch.ids[i];
        plan.fit[row] = 1;
        plan.h1[row] = h1;
        ++local_fit;
        if (options.with_payload_index) {
          // Reuses the serialized bytes still alive in the arena; only the
          // ~1/e fit rows ever reach the k2 hash.
          plan.payload_index[row] =
              static_cast<std::uint32_t>(PayloadIndexFromHash(
                  prf_k2->Hash64(batch.views[i]), options.payload_len,
                  params.bit_index_mode));
        }
      }
    }
    shard_fit[shard] = local_fit;
    shard_hashed[shard] = local_hashed;
  });
  for (const std::size_t f : shard_fit) plan.fit_count += f;
  for (const std::size_t h : shard_hashed) plan.messages_hashed += h;
  return plan;
}

}  // namespace catmark
