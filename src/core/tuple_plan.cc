#include "core/tuple_plan.h"

#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "core/codec.h"

namespace catmark {

TuplePlan BuildTuplePlan(const Relation& rel, std::size_t key_col,
                         const WatermarkKeySet& keys,
                         const WatermarkParams& params,
                         std::size_t payload_len, bool with_payload_index,
                         std::size_t num_threads) {
  const std::size_t n = rel.NumRows();
  TuplePlan plan;
  plan.fit.assign(n, 0);
  plan.h1.assign(n, 0);
  if (with_payload_index) {
    CATMARK_CHECK_GE(payload_len, 1u);
    CATMARK_CHECK_LE(payload_len,
                     static_cast<std::size_t>(
                         std::numeric_limits<std::uint32_t>::max()));
    plan.payload_index.assign(n, 0);
  }

  const std::size_t threads = EffectiveThreadCount(num_threads, n);
  std::vector<std::size_t> shard_fit(threads, 0);
  ParallelFor(n, threads, [&](std::size_t shard, std::size_t begin,
                              std::size_t end) {
    // Per-worker hasher state and scratch buffer: keyed hashing allocates
    // nothing inside the row loop.
    const FitnessSelector fitness(keys.k1, params.e, params.hash_algo);
    const KeyedHasher position_hasher(keys.k2, params.hash_algo);
    HashScratch scratch;
    scratch.reserve(64);
    std::size_t local_fit = 0;
    for (std::size_t j = begin; j < end; ++j) {
      const Value& key_value = rel.Get(j, key_col);
      if (key_value.is_null()) continue;
      const std::uint64_t h1 = fitness.KeyHash(key_value, scratch);
      if (h1 % params.e != 0) continue;
      plan.fit[j] = 1;
      plan.h1[j] = h1;
      ++local_fit;
      if (with_payload_index) {
        plan.payload_index[j] = static_cast<std::uint32_t>(
            PayloadIndexFromHash(HashValue(position_hasher, key_value, scratch),
                                 payload_len, params.bit_index_mode));
      }
    }
    shard_fit[shard] = local_fit;
  });
  for (const std::size_t f : shard_fit) plan.fit_count += f;
  return plan;
}

}  // namespace catmark
