#include "core/tuple_plan.h"

#include <bit>
#include <limits>
#include <string_view>

#include "common/bits.h"
#include "common/check.h"
#include "common/parallel.h"
#include "core/codec.h"
#include "crypto/siphash_simd.h"
#include "relation/column_store.h"

namespace catmark {

void KeyHashBatch::Hash(const KeyedPrf& prf) {
  h1.resize(ends.size());
  if (all_int64_) {
    views.clear();
    prf.Hash64Int64Keys(i64.data(), i64.size(),
                        std::span<std::uint64_t>(h1.data(), h1.size()));
    return;
  }
  views.resize(ends.size());
  std::size_t begin = 0;
  for (std::size_t i = 0; i < ends.size(); ++i) {
    views[i] = std::string_view(
        reinterpret_cast<const char*>(arena.data()) + begin,
        ends[i] - begin);
    begin = ends[i];
  }
  prf.Hash64Column(views, std::span<std::uint64_t>(h1.data(), h1.size()));
}

namespace {

/// Chunk size of the fused plain-column plan build — matches the one-shot
/// detect worker: each chunk is touched exactly once, so per-chunk fixed
/// costs amortize, and the per-row working set (8-byte vals + 8-byte
/// hashes) stays L2-resident.
constexpr std::size_t kPlanChunk = 4096;

/// Extracts the set-bit positions of `mask` (the first `count` bits) into
/// `out` — the ~1/e fit entries of a hashed chunk, compacted so the
/// selection work downstream touches only them plus one word per 64 hashes.
void CollectSetBits(const std::vector<std::uint64_t>& mask, std::size_t count,
                    std::vector<std::uint32_t>& out) {
  out.clear();
  const std::size_t words = (count + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word = mask[w];
    while (word != 0) {
      out.push_back(static_cast<std::uint32_t>(
          64 * w + static_cast<std::size_t>(std::countr_zero(word))));
      word &= word - 1;
    }
  }
}

/// Packs plan.fit into plan.fit_words, word-parallel so shards never share
/// a word. A separate pass (not fused into the sharded builds) because the
/// row partition of ShardBounds is not 64-aligned at shard boundaries.
void PackFitWords(TuplePlan& plan, std::size_t num_threads) {
  const std::size_t n = plan.fit.size();
  const std::size_t words = (n + 63) / 64;
  plan.fit_words.assign(words, 0);
  const std::uint8_t* fit = plan.fit.data();
  std::uint64_t* out = plan.fit_words.data();
  ParallelFor(words, EffectiveThreadCount(num_threads, words),
              [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
                for (std::size_t w = begin; w < end; ++w) {
                  const std::size_t base = w * 64;
                  const std::size_t len = std::min<std::size_t>(64, n - base);
                  std::uint64_t word = 0;
                  for (std::size_t b = 0; b < len; ++b) {
                    word |= static_cast<std::uint64_t>(fit[base + b] != 0)
                            << b;
                  }
                  out[w] = word;
                }
              });
}

}  // namespace

TuplePlan BuildTuplePlan(const Relation& rel, std::size_t key_col,
                         const WatermarkKeySet& keys,
                         const WatermarkParams& params,
                         const TuplePlanOptions& options) {
  const std::size_t n = rel.NumRows();
  TuplePlan plan;
  plan.fit.assign(n, 0);
  plan.h1.assign(n, 0);
  if (options.with_payload_index) {
    CATMARK_CHECK_GE(options.payload_len, 1u);
    CATMARK_CHECK_LE(options.payload_len,
                     static_cast<std::size_t>(
                         std::numeric_limits<std::uint32_t>::max()));
    plan.payload_index.assign(n, 0);
  }

  // One immutable PRF instance per key, shared by every worker: the key
  // schedule is set up here, once, not per shard or per row.
  const std::unique_ptr<KeyedPrf> prf_k1 =
      CreateKeyedPrf(options.prf, keys.k1, params.hash_algo);
  const std::unique_ptr<KeyedPrf> prf_k2 =
      CreateKeyedPrf(options.prf, keys.k2, params.hash_algo);

  const std::size_t threads = EffectiveThreadCount(options.num_threads, n);
  const ColumnStore& store = rel.store();
  const DivisibilityCheck fit_by_e(params.e);

  if (store.IsDictColumn(key_col) && options.use_dict_cache) {
    // Dictionary-encoded key column: every row with the same key value
    // hashes identically, so hash each live distinct dictionary entry once
    // into a per-dict-code h1/fit cache and fan the verdicts out through
    // the code vector — |dict| keyed hashes instead of N.
    const std::vector<Value>& dict = store.Dict(key_col);
    const std::vector<std::int32_t>& codes = store.Codes(key_col);
    const std::vector<std::int64_t>& live = store.DictLiveCounts(key_col);
    std::vector<std::uint64_t> h1_of(dict.size(), 0);
    std::vector<std::uint8_t> fit_of(dict.size(), 0);
    std::vector<std::uint32_t> index_of(
        options.with_payload_index ? dict.size() : 0, 0);
    // The keyed hashing dominates, and a near-unique categorical key means
    // |dict| ~ N — shard it like the plain path so plan build keeps its
    // multi-core scaling.
    ParallelFor(
        dict.size(), EffectiveThreadCount(options.num_threads, dict.size()),
        [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
          KeyHashBatch batch;
          std::vector<std::uint64_t> fit_mask((kKeyHashBatch + 63) / 64);
          std::vector<std::uint32_t> fit_sel;
          std::vector<std::int64_t> fit_i64;
          std::vector<std::string_view> fit_views;
          std::vector<std::uint64_t> h2;
          for (std::size_t code = begin; code < end;) {
            batch.Clear();
            for (; code < end && batch.size() < kKeyHashBatch; ++code) {
              // Dead entries (live count 0) have no referencing row.
              if (live[code] == 0) continue;
              batch.Add(dict[code], code);
            }
            batch.Hash(*prf_k1);
            // Fitness as a packed bitset (AVX2-vectorized divisibility
            // test), then set-bit compaction of the ~1/e fit entries.
            DivisibilityMask64(fit_by_e, batch.h1.data(), batch.size(),
                               fit_mask.data());
            CollectSetBits(fit_mask, batch.size(), fit_sel);
            const std::size_t nfit = fit_sel.size();
            if (options.with_payload_index && nfit > 0) {
              // Position-hash the fit subset in one batched k2 call —
              // through the typed kernel when the dict entries are int64.
              h2.resize(nfit);
              if (batch.int64_lane()) {
                fit_i64.resize(nfit);
                for (std::size_t f = 0; f < nfit; ++f) {
                  fit_i64[f] = batch.i64[fit_sel[f]];
                }
                prf_k2->Hash64Int64Keys(fit_i64.data(), nfit,
                                        std::span<std::uint64_t>(h2));
              } else {
                fit_views.clear();
                for (std::size_t f = 0; f < nfit; ++f) {
                  fit_views.push_back(batch.views[fit_sel[f]]);
                }
                prf_k2->Hash64Column(fit_views,
                                     std::span<std::uint64_t>(h2));
              }
            }
            for (std::size_t f = 0; f < nfit; ++f) {
              const std::size_t i = fit_sel[f];
              const std::size_t c = batch.ids[i];
              fit_of[c] = 1;
              h1_of[c] = batch.h1[i];
              if (options.with_payload_index) {
                index_of[c] = static_cast<std::uint32_t>(PayloadIndexFromHash(
                    h2[f], options.payload_len, params.bit_index_mode));
              }
            }
          }
        });
    // Each live distinct entry went through the PRF exactly once above.
    for (const std::int64_t l : live) plan.messages_hashed += (l != 0);
    plan.shard_fit.assign(threads, 0);
    std::vector<std::size_t>& shard_fit = plan.shard_fit;
    ParallelFor(n, threads, [&](std::size_t shard, std::size_t begin,
                                std::size_t end) {
      std::size_t local_fit = 0;
      for (std::size_t j = begin; j < end; ++j) {
        const std::int32_t code = codes[j];
        if (code < 0 || !fit_of[static_cast<std::size_t>(code)]) continue;
        plan.fit[j] = 1;
        plan.h1[j] = h1_of[static_cast<std::size_t>(code)];
        ++local_fit;
        if (options.with_payload_index) {
          plan.payload_index[j] = index_of[static_cast<std::size_t>(code)];
        }
      }
      shard_fit[shard] = local_fit;
    });
    for (const std::size_t f : shard_fit) plan.fit_count += f;
    PackFitWords(plan, threads);
    return plan;
  }

  // Plain key columns (or the dict cache disabled for the parity tests):
  // the fused chunk pipeline of DetectOneShot, producing plan rows instead
  // of vote tallies. Int64 chunks gather raw values straight off the column
  // storage into the typed kernel; anything else serializes chunk-wise into
  // a per-worker arena.
  const ColumnReader key_reader(store, key_col);
  // Raw row storage exists only for plain columns; the dict-with-cache-
  // disabled parity configuration reads through the (dict-aware) reader.
  const bool plain = !store.IsDictColumn(key_col);
  const Value* key_col_values = plain ? key_reader.values().data() : nullptr;
  plan.shard_fit.assign(threads, 0);
  std::vector<std::size_t>& shard_fit = plan.shard_fit;
  std::vector<std::size_t> shard_hashed(threads, 0);
  ParallelFor(n, threads, [&](std::size_t shard, std::size_t begin,
                              std::size_t end) {
    std::vector<std::uint8_t> arena;
    std::vector<std::int64_t> vals;      // raw int64 keys, fast path
    std::vector<std::int64_t> fit_vals;  // fit subset of vals, for k2
    std::vector<std::size_t> bounds;
    std::vector<std::uint32_t> rows;
    std::vector<std::uint64_t> h1;
    std::vector<std::uint64_t> h2;
    std::vector<std::uint64_t> fit_mask((kPlanChunk + 63) / 64);
    std::vector<std::uint32_t> fit_sel;
    std::vector<std::string_view> fit_views;
    arena.reserve(kPlanChunk * 16);
    vals.resize(kPlanChunk);
    fit_vals.resize(kPlanChunk);
    bounds.reserve(kPlanChunk + 1);
    rows.reserve(kPlanChunk);
    std::size_t local_fit = 0;
    std::size_t local_hashed = 0;
    const auto key_at = [&](std::size_t j) -> const Value& {
      return plain ? key_col_values[j] : key_reader[j];
    };
    for (std::size_t chunk = begin; chunk < end; chunk += kPlanChunk) {
      const std::size_t chunk_end = std::min(end, chunk + kPlanChunk);
      // Int64 fast path — the dominant plain-key shape: gather the raw
      // int64s (one inline variant probe, one store per row) and hash them
      // through the typed kernel. While no NULL has appeared the chunk is
      // dense — entry i is row chunk + i — so the rows indirection isn't
      // even written. Any non-int64, non-NULL key falls the whole chunk
      // back to the general arena path below.
      bool fast = true;
      bool dense = true;
      std::size_t count = 0;
      {
        std::int64_t* vp = vals.data();
        for (std::size_t j = chunk; j < chunk_end; ++j) {
          const std::int64_t* kv = key_at(j).TryInt64();
          if (kv == nullptr) {
            if (key_at(j).is_null()) {
              if (dense) {
                dense = false;
                rows.clear();
                for (std::size_t t = 0; t < count; ++t) {
                  rows.push_back(static_cast<std::uint32_t>(chunk + t));
                }
              }
              continue;
            }
            fast = false;
            break;
          }
          vp[count++] = *kv;
          if (!dense) rows.push_back(static_cast<std::uint32_t>(j));
        }
      }
      if (fast) {
        h1.resize(count);
        prf_k1->Hash64Int64Keys(vals.data(), count,
                                std::span<std::uint64_t>(h1));
      } else {
        dense = false;
        rows.clear();
        arena.clear();
        bounds.clear();
        bounds.push_back(0);
        for (std::size_t j = chunk; j < chunk_end; ++j) {
          const Value& key_value = key_at(j);
          if (key_value.is_null()) continue;
          key_value.SerializeForHash(arena);
          bounds.push_back(arena.size());
          rows.push_back(static_cast<std::uint32_t>(j));
        }
        count = rows.size();
        h1.resize(count);
        prf_k1->Hash64Arena(arena.data(),
                            std::span<const std::size_t>(bounds),
                            std::span<std::uint64_t>(h1));
      }
      local_hashed += count;
      DivisibilityMask64(fit_by_e, h1.data(), count, fit_mask.data());
      CollectSetBits(fit_mask, count, fit_sel);
      const std::size_t nfit = fit_sel.size();
      local_fit += nfit;
      if (options.with_payload_index) {
        h2.resize(nfit);
        if (fast) {
          for (std::size_t f = 0; f < nfit; ++f) {
            fit_vals[f] = vals[fit_sel[f]];
          }
          prf_k2->Hash64Int64Keys(fit_vals.data(), nfit,
                                  std::span<std::uint64_t>(h2));
        } else {
          fit_views.clear();
          for (std::size_t f = 0; f < nfit; ++f) {
            const std::size_t i = fit_sel[f];
            fit_views.push_back(std::string_view(
                reinterpret_cast<const char*>(arena.data()) + bounds[i],
                bounds[i + 1] - bounds[i]));
          }
          prf_k2->Hash64Column(fit_views, std::span<std::uint64_t>(h2));
        }
      }
      for (std::size_t f = 0; f < nfit; ++f) {
        const std::size_t i = fit_sel[f];
        const std::size_t row = dense ? chunk + i : rows[i];
        plan.fit[row] = 1;
        plan.h1[row] = h1[i];
        if (options.with_payload_index) {
          plan.payload_index[row] =
              static_cast<std::uint32_t>(PayloadIndexFromHash(
                  h2[f], options.payload_len, params.bit_index_mode));
        }
      }
    }
    shard_fit[shard] = local_fit;
    shard_hashed[shard] = local_hashed;
  });
  for (const std::size_t f : shard_fit) plan.fit_count += f;
  for (const std::size_t h : shard_hashed) plan.messages_hashed += h;
  PackFitWords(plan, threads);
  return plan;
}

}  // namespace catmark
