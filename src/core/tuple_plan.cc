#include "core/tuple_plan.h"

#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "core/codec.h"

namespace catmark {

TuplePlan BuildTuplePlan(const Relation& rel, std::size_t key_col,
                         const WatermarkKeySet& keys,
                         const WatermarkParams& params,
                         std::size_t payload_len, bool with_payload_index,
                         std::size_t num_threads) {
  const std::size_t n = rel.NumRows();
  TuplePlan plan;
  plan.fit.assign(n, 0);
  plan.h1.assign(n, 0);
  if (with_payload_index) {
    CATMARK_CHECK_GE(payload_len, 1u);
    CATMARK_CHECK_LE(payload_len,
                     static_cast<std::size_t>(
                         std::numeric_limits<std::uint32_t>::max()));
    plan.payload_index.assign(n, 0);
  }

  const std::size_t threads = EffectiveThreadCount(num_threads, n);
  const ColumnStore& store = rel.store();

  if (store.IsDictColumn(key_col)) {
    // Dictionary-encoded key column (the cross-categorical passes of the
    // multi-attribute closure): every row with the same key value hashes
    // identically, so hash each distinct dictionary entry once and fan the
    // verdicts out through the code vector — |dict| keyed hashes instead
    // of N.
    const std::vector<Value>& dict = store.Dict(key_col);
    const std::vector<std::int32_t>& codes = store.Codes(key_col);
    const std::vector<std::int64_t>& live = store.DictLiveCounts(key_col);
    std::vector<std::uint64_t> h1_of(dict.size(), 0);
    std::vector<std::uint8_t> fit_of(dict.size(), 0);
    std::vector<std::uint32_t> index_of(with_payload_index ? dict.size() : 0,
                                        0);
    // The keyed hashing dominates, and a near-unique categorical key means
    // |dict| ~ N — shard it like the plain path so plan build keeps its
    // multi-core scaling.
    ParallelFor(dict.size(),
                EffectiveThreadCount(num_threads, dict.size()),
                [&](std::size_t /*shard*/, std::size_t begin,
                    std::size_t end) {
                  const FitnessSelector fitness(keys.k1, params.e,
                                                params.hash_algo);
                  const KeyedHasher position_hasher(keys.k2,
                                                    params.hash_algo);
                  HashScratch scratch;
                  scratch.reserve(64);
                  for (std::size_t code = begin; code < end; ++code) {
                    // Dead entries (live count 0) have no referencing row.
                    if (live[code] == 0) continue;
                    const std::uint64_t h1 =
                        fitness.KeyHash(dict[code], scratch);
                    if (h1 % params.e != 0) continue;
                    fit_of[code] = 1;
                    h1_of[code] = h1;
                    if (with_payload_index) {
                      index_of[code] =
                          static_cast<std::uint32_t>(PayloadIndexFromHash(
                              HashValue(position_hasher, dict[code], scratch),
                              payload_len, params.bit_index_mode));
                    }
                  }
                });
    plan.shard_fit.assign(threads, 0);
    std::vector<std::size_t>& shard_fit = plan.shard_fit;
    ParallelFor(n, threads, [&](std::size_t shard, std::size_t begin,
                                std::size_t end) {
      std::size_t local_fit = 0;
      for (std::size_t j = begin; j < end; ++j) {
        const std::int32_t code = codes[j];
        if (code < 0 || !fit_of[static_cast<std::size_t>(code)]) continue;
        plan.fit[j] = 1;
        plan.h1[j] = h1_of[static_cast<std::size_t>(code)];
        ++local_fit;
        if (with_payload_index) {
          plan.payload_index[j] = index_of[static_cast<std::size_t>(code)];
        }
      }
      shard_fit[shard] = local_fit;
    });
    for (const std::size_t f : shard_fit) plan.fit_count += f;
    return plan;
  }

  const std::vector<Value>& key_values = store.PlainValues(key_col);
  plan.shard_fit.assign(threads, 0);
  std::vector<std::size_t>& shard_fit = plan.shard_fit;
  ParallelFor(n, threads, [&](std::size_t shard, std::size_t begin,
                              std::size_t end) {
    // Per-worker hasher state and scratch buffer: keyed hashing allocates
    // nothing inside the row loop.
    const FitnessSelector fitness(keys.k1, params.e, params.hash_algo);
    const KeyedHasher position_hasher(keys.k2, params.hash_algo);
    HashScratch scratch;
    scratch.reserve(64);
    std::size_t local_fit = 0;
    for (std::size_t j = begin; j < end; ++j) {
      const Value& key_value = key_values[j];
      if (key_value.is_null()) continue;
      const std::uint64_t h1 = fitness.KeyHash(key_value, scratch);
      if (h1 % params.e != 0) continue;
      plan.fit[j] = 1;
      plan.h1[j] = h1;
      ++local_fit;
      if (with_payload_index) {
        plan.payload_index[j] = static_cast<std::uint32_t>(
            PayloadIndexFromHash(HashValue(position_hasher, key_value, scratch),
                                 payload_len, params.bit_index_mode));
      }
    }
    shard_fit[shard] = local_fit;
  });
  for (const std::size_t f : shard_fit) plan.fit_count += f;
  return plan;
}

}  // namespace catmark
