#ifndef CATMARK_CORE_KEYS_H_
#define CATMARK_CORE_KEYS_H_

#include <cstdint>
#include <string_view>

#include "crypto/keyed_hash.h"

namespace catmark {

/// The two secret keys of the scheme. k1 drives tuple fitness and new-value
/// selection; k2 drives wm_data bit-position selection. Using distinct keys
/// "ensures that there is no correlation between the selected tuples ... and
/// the corresponding bit value positions" (Section 3.2.1).
struct WatermarkKeySet {
  SecretKey k1;
  SecretKey k2;

  /// Derives both keys from one passphrase with domain separation.
  static WatermarkKeySet FromPassphrase(std::string_view passphrase);

  /// Derives both keys from a 64-bit seed (experiment harness: "15 passes,
  /// each seeded with a different key").
  static WatermarkKeySet FromSeed(std::uint64_t seed);

  bool valid() const { return !k1.empty() && !k2.empty() && !(k1 == k2); }
};

}  // namespace catmark

#endif  // CATMARK_CORE_KEYS_H_
