#include "core/incremental.h"

#include "core/codec.h"
#include "ecc/code.h"

namespace catmark {

IncrementalWatermarker::IncrementalWatermarker(WatermarkKeySet keys,
                                               WatermarkParams params,
                                               const EmbedOptions& options,
                                               const EmbedReport& report,
                                               BitVector wm)
    : keys_(std::move(keys)),
      params_(params),
      key_attr_(options.key_attr),
      target_attr_(options.target_attr),
      domain_(report.domain),
      payload_length_(report.payload_length) {
  CATMARK_CHECK(keys_.valid());
  CATMARK_CHECK_GE(payload_length_, wm.size());
  // Pin the PRF backend the original embedding ran with: inserts hashed
  // under a CATMARK_PRF re-resolved in some later process would be
  // invisible to dispute-time detection (which follows the certificate).
  params_.prf = params_.prf.value_or(report.prf);
  prf_k1_ = CreateKeyedPrf(*params_.prf, keys_.k1, params_.hash_algo);
  prf_k2_ = CreateKeyedPrf(*params_.prf, keys_.k2, params_.hash_algo);
  const auto ecc = CreateEcc(params_.ecc);
  Result<BitVector> encoded = ecc->Encode(wm, payload_length_);
  CATMARK_CHECK(encoded.ok()) << encoded.status().ToString();
  wm_data_ = std::move(encoded).value();
}

Result<Value> IncrementalWatermarker::MarkedValueFor(const Value& key_value,
                                                     bool& fit) const {
  fit = false;
  if (key_value.is_null()) return Value();
  HashScratch scratch;
  scratch.reserve(64);
  const std::uint64_t h1 = HashValue(*prf_k1_, key_value, scratch);
  if (h1 % params_.e != 0) return Value();
  fit = true;
  const std::size_t idx =
      PayloadIndexFromHash(HashValue(*prf_k2_, key_value, scratch),
                           payload_length_, params_.bit_index_mode);
  const std::size_t t =
      SelectValueIndex(h1, domain_.size(), wm_data_.Get(idx));
  return domain_.value(t);
}

Result<bool> IncrementalWatermarker::Insert(Relation& rel, Row row) const {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t key_col,
                           rel.schema().ColumnIndexOrError(key_attr_));
  CATMARK_ASSIGN_OR_RETURN(const std::size_t target_col,
                           rel.schema().ColumnIndexOrError(target_attr_));
  if (row.size() != rel.schema().num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  bool fit = false;
  CATMARK_ASSIGN_OR_RETURN(const Value marked, MarkedValueFor(row[key_col], fit));
  if (fit) row[target_col] = marked;
  CATMARK_RETURN_IF_ERROR(rel.AppendRow(std::move(row)));
  return fit;
}

Result<bool> IncrementalWatermarker::Refresh(Relation& rel,
                                             std::size_t row_index) const {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t key_col,
                           rel.schema().ColumnIndexOrError(key_attr_));
  CATMARK_ASSIGN_OR_RETURN(const std::size_t target_col,
                           rel.schema().ColumnIndexOrError(target_attr_));
  if (row_index >= rel.NumRows()) return Status::OutOfRange("row index");
  bool fit = false;
  CATMARK_ASSIGN_OR_RETURN(
      const Value marked, MarkedValueFor(rel.Get(row_index, key_col), fit));
  // Skip the store write when the cell already carries the marked value —
  // the common case when refreshing an already-watermarked relation.
  if (fit && !(rel.Get(row_index, target_col) == marked)) {
    CATMARK_RETURN_IF_ERROR(rel.Set(row_index, target_col, marked));
  }
  return fit;
}

}  // namespace catmark
