#include "core/detector.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/parallel.h"
#include "core/codec.h"
#include "core/detect_engine.h"
#include "core/embedder.h"
#include "core/tuple_plan.h"
#include "ecc/code.h"
#include "random/stats.h"
#include "relation/value_index_column.h"

namespace catmark {

MatchStats MatchWatermark(const BitVector& expected, const BitVector& decoded) {
  MatchStats stats;
  stats.length_mismatch = expected.size() != decoded.size();
  stats.total_bits = std::max(expected.size(), decoded.size());
  const std::size_t common = std::min(expected.size(), decoded.size());
  if (stats.length_mismatch) {
    // Size-tolerant: bits present on only one side count as mismatches, so a
    // detector run with the wrong payload length degrades the score instead
    // of crashing the process.
    for (std::size_t i = 0; i < common; ++i) {
      if (expected.Get(i) == decoded.Get(i)) ++stats.matched_bits;
    }
  } else {
    stats.matched_bits = common - expected.HammingDistance(decoded);
  }
  if (stats.total_bits > 0) {
    stats.match_fraction = static_cast<double>(stats.matched_bits) /
                           static_cast<double>(stats.total_bits);
    stats.mark_alteration = 1.0 - stats.match_fraction;
    stats.false_match_probability =
        BinomialTailAtLeast(stats.total_bits, stats.matched_bits, 0.5);
  }
  return stats;
}

Status FinishVoteTally(std::span<const long> votes, std::size_t wm_len,
                       EccKind ecc_kind, DetectionResult& result) {
  const std::size_t payload_len = votes.size();
  ExtractedPayload payload(payload_len);
  result.positions_present = 0;
  for (std::size_t i = 0; i < payload_len; ++i) {
    if (votes[i] == 0) continue;  // erased or tied — leave absent
    payload.present.Set(i, 1);
    payload.bits.Set(i, votes[i] > 0 ? 1 : 0);
    ++result.positions_present;
  }
  result.payload_fill = payload_len == 0
                            ? 0.0
                            : static_cast<double>(result.positions_present) /
                                  static_cast<double>(payload_len);
  const std::unique_ptr<ErrorCorrectingCode> ecc = CreateEcc(ecc_kind);
  CATMARK_ASSIGN_OR_RETURN(result.wm, ecc->Decode(payload, wm_len));
  result.bit_confidence = ecc->DecodeConfidence(payload, wm_len);
  return Status::OK();
}

Detector::Detector(WatermarkKeySet keys, WatermarkParams params)
    : keys_(std::move(keys)), params_(params) {
  CATMARK_CHECK(keys_.valid()) << "invalid watermark key set (k1 == k2?)";
  CATMARK_CHECK_GE(params_.e, 1u);
}

Result<DetectionResult> Detector::Detect(const Relation& rel,
                                         const DetectOptions& options,
                                         std::size_t wm_len) const {
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  if (wm_len == 0) {
    return Status::InvalidArgument("watermark length must be > 0");
  }

  const bool use_map = options.embedding_map != nullptr;
  if (!use_map) {
    // The k2 position path runs on the key-agnostic engine's one-shot
    // entry point: with exactly one candidate there is no plan to
    // amortize, so DetectOneShot fuses serialize -> hash -> tally on plain
    // key columns instead of materializing the whole-relation arena it
    // would immediately re-read (the PR 8 one-shot tax), and delegates to
    // the plan + pass pair on dict key columns where the plan is O(dict).
    // Either way the result is bit-identical to a sweep's per-candidate
    // pass — detect_engine_test pins it.
    DetectEngineOptions engine_options;
    engine_options.key_attr = options.key_attr;
    engine_options.target_attr = options.target_attr;
    engine_options.domain_view = options.domain_view != nullptr
                                     ? options.domain_view
                                     : (options.domain.has_value()
                                            ? &*options.domain
                                            : nullptr);
    engine_options.target_index = options.target_index;
    engine_options.payload_length = options.payload_length;
    engine_options.num_threads = params_.num_threads;
    const KeyCandidate candidate{keys_, params_, wm_len};
    CATMARK_ASSIGN_OR_RETURN(
        DetectionResult result,
        DetectEngine::DetectOneShot(rel, engine_options, candidate));
    result.wall_seconds = elapsed();
    return result;
  }

  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t key_col,
      rel.schema().ColumnIndexOrError(options.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t target_col,
      rel.schema().ColumnIndexOrError(options.target_attr));
  if (rel.empty()) {
    return Status::FailedPrecondition("cannot detect in an empty relation");
  }

  // Resolve the domain without copying it: a caller-shared view, the
  // caller-owned optional, or one recovered from the suspect data.
  CategoricalDomain recovered_domain;
  const CategoricalDomain* domain_ptr;
  if (options.domain_view != nullptr) {
    domain_ptr = options.domain_view;
  } else if (options.domain.has_value()) {
    domain_ptr = &*options.domain;
  } else {
    CATMARK_ASSIGN_OR_RETURN(
        recovered_domain,
        CategoricalDomain::FromRelationColumn(rel, target_col));
    domain_ptr = &recovered_domain;
  }
  const CategoricalDomain& domain = *domain_ptr;
  if (domain.size() < 2) {
    return Status::FailedPrecondition("domain has fewer than 2 values");
  }

  DetectionResult result;
  result.num_tuples = rel.NumRows();
  std::size_t payload_len;
  if (options.payload_length != 0) {
    payload_len = options.payload_length;
  } else if (params_.payload_length != 0) {
    payload_len = params_.payload_length;
  } else {
    if (rel.NumRows() / params_.e == 0) {
      return Status::FailedPrecondition(
          "cannot derive the payload length: e exceeds the suspect relation "
          "size (N/e == 0); pass the owner-side payload_length instead");
    }
    payload_len = DerivePayloadLength(rel.NumRows(), params_.e, wm_len);
  }
  result.payload_length = payload_len;

  // Embedding-map (Figure 2(b)) detection: the per-row fitness precompute
  // still runs through the shared tuple plan, but positions come from the
  // map, not k2 — inherently per-embedding state, so this path stays off
  // the key-agnostic engine.
  const std::size_t threads =
      EffectiveThreadCount(params_.num_threads, rel.NumRows());
  TuplePlanOptions plan_options;
  plan_options.payload_len = payload_len;
  plan_options.with_payload_index = false;
  plan_options.num_threads = threads;
  CATMARK_ASSIGN_OR_RETURN(plan_options.prf, ResolvePrfKind(params_.prf));
  result.prf = plan_options.prf;
  const TuplePlan plan =
      BuildTuplePlan(rel, key_col, keys_, params_, plan_options);
  result.fit_tuples = plan.fit_count;
  result.messages_hashed = plan.messages_hashed;

  // Domain-index view of the target column: a sweep-provided cache skips
  // IndexOf entirely. On a dictionary-encoded column the view is zero-copy
  // (O(dict) remap, no row pass), so build it unconditionally; on a plain
  // column indices are resolved lazily below — only the ~N/e fit tuples
  // ever need one.
  const ValueIndexColumn* cached_index = options.target_index;
  if (cached_index != nullptr && cached_index->size() != rel.NumRows()) {
    return Status::InvalidArgument(
        "DetectOptions::target_index has a different row count than the "
        "suspect relation");
  }
  ValueIndexColumn local_index;
  if (cached_index == nullptr && rel.store().IsDictColumn(target_col)) {
    local_index = ValueIndexColumn::Build(rel, target_col, domain, threads);
    cached_index = &local_index;
  }

  // Map-based detection resolves every fit tuple's key in one batch pass up
  // front: one reused scratch buffer, heterogeneous string_view probes — no
  // per-tuple key allocation inside the tally loop.
  const std::vector<std::uint64_t> map_index =
      options.embedding_map->LookupColumn(rel, key_col, &plan.fit);

  // Per-position vote tallies: multiple fit tuples can map to the same
  // wm_data position; they all embedded the same bit, so majority-per-
  // position cleans up attack damage before the ECC even runs. Each shard
  // tallies into its own votes[] array; the arrays are summed afterwards —
  // integer addition commutes, so the merged tally (and with it the whole
  // DetectionResult) is bit-identical for every thread count.
  std::vector<std::vector<long>> shard_votes(
      threads, std::vector<long>(payload_len, 0));
  std::vector<std::size_t> shard_usable(threads, 0);
  ParallelFor(rel.NumRows(), threads, [&](std::size_t shard, std::size_t begin,
                                          std::size_t end) {
    std::vector<long>& votes = shard_votes[shard];
    std::size_t usable = 0;
    for (std::size_t j = begin; j < end; ++j) {
      if (!plan.fit[j]) continue;
      const std::uint64_t found = map_index[j];
      if (found == EmbeddingMap::kNotFound) {
        continue;  // e.g. tuple added by Mallory
      }
      const std::size_t idx = static_cast<std::size_t>(found) % payload_len;
      // Determine t such that T_j(A) = a_t, then read the embedded bit
      // t & 1; NULL and out-of-domain values (A6 remap, noise) are unusable.
      std::int32_t t;
      if (cached_index != nullptr) {
        t = cached_index->index(j);
      } else {
        const Value& attr_value = rel.Get(j, target_col);
        if (attr_value.is_null()) continue;
        const auto domain_index = domain.IndexOf(attr_value);
        t = domain_index.has_value() ? static_cast<std::int32_t>(*domain_index)
                                     : ValueIndexColumn::kNoIndex;
      }
      if (t < 0) continue;
      ++usable;
      votes[idx] +=
          ExtractBitFromValueIndex(static_cast<std::size_t>(t)) ? 1 : -1;
    }
    shard_usable[shard] = usable;
  });

  std::vector<long> votes(payload_len, 0);
  for (std::size_t s = 0; s < threads; ++s) {
    result.usable_votes += shard_usable[s];
    for (std::size_t i = 0; i < payload_len; ++i) {
      votes[i] += shard_votes[s][i];
    }
  }

  const Status finish = FinishVoteTally(std::span<const long>(votes), wm_len,
                                        params_.ecc, result);
  if (!finish.ok()) return finish;
  result.rows_scanned = rel.NumRows();
  result.wall_seconds = elapsed();
  return result;
}

}  // namespace catmark
