#include "core/detector.h"

#include <vector>

#include "core/codec.h"
#include "core/embedder.h"
#include "ecc/code.h"
#include "random/stats.h"

namespace catmark {

MatchStats MatchWatermark(const BitVector& expected, const BitVector& decoded) {
  MatchStats stats;
  CATMARK_CHECK_EQ(expected.size(), decoded.size());
  stats.total_bits = expected.size();
  stats.matched_bits = expected.size() - expected.HammingDistance(decoded);
  if (stats.total_bits > 0) {
    stats.match_fraction = static_cast<double>(stats.matched_bits) /
                           static_cast<double>(stats.total_bits);
    stats.mark_alteration = 1.0 - stats.match_fraction;
    stats.false_match_probability =
        BinomialTailAtLeast(stats.total_bits, stats.matched_bits, 0.5);
  }
  return stats;
}

Detector::Detector(WatermarkKeySet keys, WatermarkParams params)
    : keys_(std::move(keys)), params_(params) {
  CATMARK_CHECK(keys_.valid()) << "invalid watermark key set (k1 == k2?)";
  CATMARK_CHECK_GE(params_.e, 1u);
}

Result<DetectionResult> Detector::Detect(const Relation& rel,
                                         const DetectOptions& options,
                                         std::size_t wm_len) const {
  if (wm_len == 0) {
    return Status::InvalidArgument("watermark length must be > 0");
  }
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t key_col,
      rel.schema().ColumnIndexOrError(options.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t target_col,
      rel.schema().ColumnIndexOrError(options.target_attr));
  if (rel.empty()) {
    return Status::FailedPrecondition("cannot detect in an empty relation");
  }

  CategoricalDomain domain;
  if (options.domain.has_value()) {
    domain = *options.domain;
  } else {
    CATMARK_ASSIGN_OR_RETURN(
        domain, CategoricalDomain::FromRelationColumn(rel, target_col));
  }
  if (domain.size() < 2) {
    return Status::FailedPrecondition("domain has fewer than 2 values");
  }

  DetectionResult result;
  result.num_tuples = rel.NumRows();
  const std::size_t payload_len =
      options.payload_length != 0
          ? options.payload_length
          : (params_.payload_length != 0
                 ? params_.payload_length
                 : DerivePayloadLength(rel.NumRows(), params_.e, wm_len));
  result.payload_length = payload_len;

  const FitnessSelector fitness(keys_.k1, params_.e, params_.hash_algo);
  const KeyedHasher position_hasher(keys_.k2, params_.hash_algo);

  // Per-position vote tallies: multiple fit tuples can map to the same
  // wm_data position; they all embedded the same bit, so majority-per-
  // position cleans up attack damage before the ECC even runs.
  std::vector<long> votes(payload_len, 0);

  for (std::size_t j = 0; j < rel.NumRows(); ++j) {
    const Value& key_value = rel.Get(j, key_col);
    if (key_value.is_null()) continue;
    const std::uint64_t h1 = fitness.KeyHash(key_value);
    if (h1 % params_.e != 0) continue;
    ++result.fit_tuples;

    std::size_t idx;
    if (options.embedding_map != nullptr) {
      const auto found = options.embedding_map->Lookup(key_value);
      if (!found.has_value()) continue;  // e.g. tuple added by Mallory
      idx = *found % payload_len;
    } else {
      idx = PayloadIndexFromHash(HashValue(position_hasher, key_value),
                                 payload_len, params_.bit_index_mode);
    }

    // Determine t such that T_j(A) = a_t, then read the embedded bit t & 1.
    const Value& attr_value = rel.Get(j, target_col);
    if (attr_value.is_null()) continue;
    const auto t = domain.IndexOf(attr_value);
    if (!t.has_value()) continue;  // value outside domain (A6 remap, noise)
    ++result.usable_votes;
    votes[idx] += ExtractBitFromValueIndex(*t) ? 1 : -1;
  }

  ExtractedPayload payload(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    if (votes[i] == 0) continue;  // erased or tied — leave absent
    payload.present.Set(i, 1);
    payload.bits.Set(i, votes[i] > 0 ? 1 : 0);
    ++result.positions_present;
  }
  result.payload_fill = payload_len == 0
                            ? 0.0
                            : static_cast<double>(result.positions_present) /
                                  static_cast<double>(payload_len);

  const std::unique_ptr<ErrorCorrectingCode> ecc = CreateEcc(params_.ecc);
  CATMARK_ASSIGN_OR_RETURN(result.wm, ecc->Decode(payload, wm_len));
  result.bit_confidence = ecc->DecodeConfidence(payload, wm_len);
  return result;
}

}  // namespace catmark
