#ifndef CATMARK_CORE_CATMARK_H_
#define CATMARK_CORE_CATMARK_H_

/// Umbrella header: the full public API of the categorical-data
/// watermarking library (Sion, "Proving Ownership over Categorical Data",
/// ICDE 2004). Examples and most applications only need this include.

#include "attack/attacks.h"          // IWYU pragma: export
#include "common/bitvec.h"           // IWYU pragma: export
#include "common/result.h"           // IWYU pragma: export
#include "common/status.h"           // IWYU pragma: export
#include "core/additive_attack.h"    // IWYU pragma: export
#include "core/analysis.h"           // IWYU pragma: export
#include "core/bandwidth.h"          // IWYU pragma: export
#include "core/certificate.h"        // IWYU pragma: export
#include "core/codec.h"              // IWYU pragma: export
#include "core/decision.h"           // IWYU pragma: export
#include "core/detect_engine.h"      // IWYU pragma: export
#include "core/detector.h"           // IWYU pragma: export
#include "core/embedder.h"           // IWYU pragma: export
#include "core/embedding_map.h"      // IWYU pragma: export
#include "core/freq_mark.h"          // IWYU pragma: export
#include "core/incremental.h"        // IWYU pragma: export
#include "core/injection.h"          // IWYU pragma: export
#include "core/keys.h"               // IWYU pragma: export
#include "core/multi_attribute.h"    // IWYU pragma: export
#include "core/numeric_set_mark.h"   // IWYU pragma: export
#include "core/params.h"             // IWYU pragma: export
#include "core/remap_recovery.h"     // IWYU pragma: export
#include "crypto/hmac.h"             // IWYU pragma: export
#include "crypto/keyed_hash.h"       // IWYU pragma: export
#include "ecc/code.h"                // IWYU pragma: export
#include "gen/sales_gen.h"           // IWYU pragma: export
#include "quality/assessor.h"        // IWYU pragma: export
#include "quality/constraint_lang.h" // IWYU pragma: export
#include "quality/plugins.h"         // IWYU pragma: export
#include "quality/query_plugins.h"   // IWYU pragma: export
#include "relation/catm_io.h"        // IWYU pragma: export
#include "relation/csv.h"            // IWYU pragma: export
#include "relation/index.h"          // IWYU pragma: export
#include "relation/ops.h"            // IWYU pragma: export
#include "relation/query.h"          // IWYU pragma: export
#include "relation/relation.h"       // IWYU pragma: export
#include "service/service.h"         // IWYU pragma: export
#include "service/session.h"         // IWYU pragma: export

#endif  // CATMARK_CORE_CATMARK_H_
