#ifndef CATMARK_CORE_EMBEDDER_H_
#define CATMARK_CORE_EMBEDDER_H_

#include <optional>
#include <string>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/embedding_map.h"
#include "core/keys.h"
#include "core/ledger.h"
#include "core/params.h"
#include "quality/assessor.h"
#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// What to embed where. `key_attr` plays the role of the primary key K
/// (Section 3.3 deliberately re-uses the machinery with *any* attribute as
/// the key placeholder); `target_attr` is the categorical attribute A whose
/// values are re-selected to carry mark bits.
struct EmbedOptions {
  std::string key_attr;
  std::string target_attr;

  /// Explicit value domain of the target attribute. When unset it is
  /// recovered from the data (sorted distinct values). Embedder and
  /// detector must agree on the domain.
  std::optional<CategoricalDomain> domain;

  /// Build the Figure 1(b) embedding map instead of the k2 hash for bit
  /// positions.
  bool build_embedding_map = false;

  /// Test-only escape hatch: force the reference serial apply pass even
  /// where the sharded pipeline would engage, so the parity suite can pin
  /// the fused bitset pipeline byte-identical to the serial semantics (the
  /// sharded pipeline otherwise runs even at num_threads == 1).
  bool force_serial_apply = false;
};

/// Everything the embedding pass did — including the parameters the
/// detector must be given (payload_length, domain).
struct EmbedReport {
  std::size_t num_tuples = 0;         ///< N at embed time
  std::size_t fit_tuples = 0;         ///< tuples satisfying the fitness test
  std::size_t altered_tuples = 0;     ///< cells actually changed
  std::size_t unchanged_tuples = 0;   ///< fit, but value already correct
  std::size_t skipped_by_quality = 0; ///< vetoed by the QualityAssessor
  std::size_t skipped_by_ledger = 0;  ///< cell already carries another mark
  std::size_t skipped_by_domain_guard = 0;  ///< would have drained a category
  std::size_t payload_length = 0;     ///< |wm_data| — detector input
  std::size_t positions_written = 0;  ///< distinct wm_data positions hit
  double alteration_fraction = 0.0;   ///< altered_tuples / N

  /// Work accounting, mirroring DetectionResult: rows the plan build
  /// scanned (== N), messages it pushed through the k1 PRF (live distinct
  /// dictionary entries on the cached path, non-NULL key rows otherwise),
  /// and end-to-end wall time of the Embed call.
  std::size_t rows_scanned = 0;
  std::size_t messages_hashed = 0;
  double wall_seconds = 0.0;

  /// Shards the apply pass ran with. The sharded pipeline also runs at
  /// num_threads == 1 (fused over the plan's fitness bitset, inline on the
  /// calling thread); 1 here therefore means one shard, not necessarily the
  /// reference serial pass — that fallback engages for a QualityAssessor,
  /// map mode with the category-draining guard active, or a target that
  /// cannot take raw code writes. Purely diagnostic — every other report
  /// field, the relation, the map and the ledger are bit-identical either
  /// way.
  std::size_t apply_shards = 1;

  /// Keyed-PRF backend the embedding actually ran with (WatermarkParams::
  /// prf resolved against CATMARK_PRF) — detector input, recorded in the
  /// certificate so disputes re-verify with the right primitive.
  PrfKind prf = PrfKind::kKeyedHash;
  CategoricalDomain domain;           ///< domain used — detector input
  EmbeddingMap embedding_map;         ///< populated iff build_embedding_map
};

/// wm_embed (Figure 1): blind watermark embedding over the association
/// between a key attribute and a categorical attribute.
class Embedder {
 public:
  Embedder(WatermarkKeySet keys, WatermarkParams params);

  /// Embeds `wm` into `rel` in place.
  ///
  /// Fully pipelined: the plan build batches fitness hashes through the
  /// SIMD PRF kernels and packs verdicts into a bitset (see TuplePlan), and
  /// the apply pass set-bit-scans that bitset — on the k2 path classify and
  /// apply fuse into a single touch per fit tuple; on the map path an exact
  /// prefix-sum over per-shard commit counts assigns each committing tuple
  /// the global map index the serial pass would have given it, and
  /// per-shard embedding-map segments splice in shard order. The sharded
  /// pipeline runs even at num_threads == 1 (inline on the calling thread).
  /// The resulting relation, report, map and ledger are bit-identical to
  /// the reference serial pass at any thread count and SIMD level.
  /// Inherently stateful interactions fall back to that serial pass: a
  /// QualityAssessor (its veto/rollback protocol mutates the relation
  /// mid-decision), map mode combined with the category-draining guard
  /// (there the bit position of tuple j depends on every earlier verdict,
  /// which depends on the guard's running counts), and targets that cannot
  /// take raw dictionary-code writes. An embedding-map entry is recorded
  /// only for committed tuples (altered or unchanged-hit) — never for
  /// tuples skipped by the ledger, the domain guard or a quality veto.
  ///
  /// Fails with FailedPrecondition when N / e == 0 (e exceeds the relation
  /// size): fewer than one tuple is expected to be fit, so "success" would
  /// embed nothing.
  ///
  /// `assessor` (optional) enforces data-quality constraints; the caller
  /// must have called assessor->Begin(rel) beforehand (so one assessor can
  /// span multiple passes). `ledger` (optional) makes multi-attribute
  /// passes interference-free (Section 3.3).
  Result<EmbedReport> Embed(Relation& rel, const EmbedOptions& options,
                            const BitVector& wm,
                            QualityAssessor* assessor = nullptr,
                            EmbeddingLedger* ledger = nullptr) const;

  const WatermarkParams& params() const { return params_; }
  const WatermarkKeySet& keys() const { return keys_; }

 private:
  WatermarkKeySet keys_;
  WatermarkParams params_;
};

/// Payload length the scheme derives when WatermarkParams::payload_length
/// is 0: the available bandwidth N/e, floored at the watermark length.
std::size_t DerivePayloadLength(std::size_t num_tuples, std::uint64_t e,
                                std::size_t wm_len);

}  // namespace catmark

#endif  // CATMARK_CORE_EMBEDDER_H_
