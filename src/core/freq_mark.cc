#include "core/freq_mark.h"

#include <algorithm>
#include <cmath>

#include "core/codec.h"
#include "relation/histogram.h"

namespace catmark {

FrequencyMarker::FrequencyMarker(SecretKey key, FreqMarkParams params)
    : key_(std::move(key)), params_(params) {
  CATMARK_CHECK(params_.quantization_step > 0.0 &&
                params_.quantization_step < 0.5);
}

std::size_t FrequencyMarker::GroupOf(const Value& v, std::size_t num_groups,
                                     std::uint8_t salt) const {
  const KeyedHasher hasher(key_, params_.hash_algo);
  std::vector<std::uint8_t> bytes;
  v.SerializeForHash(bytes);
  bytes.push_back(salt);
  return static_cast<std::size_t>(hasher.Hash64(bytes.data(), bytes.size()) %
                                  num_groups);
}

Result<std::uint8_t> FrequencyMarker::FindGroupingSalt(
    const CategoricalDomain& domain, std::size_t num_groups) const {
  for (int salt = 0; salt < 64; ++salt) {
    std::vector<bool> hit(num_groups, false);
    for (std::size_t t = 0; t < domain.size(); ++t) {
      hit[GroupOf(domain.value(t), num_groups,
                  static_cast<std::uint8_t>(salt))] = true;
    }
    bool all = true;
    for (bool h : hit) all = all && h;
    if (all) return static_cast<std::uint8_t>(salt);
  }
  return Status::FailedPrecondition(
      "no keyed grouping covers all watermark bits; enlarge the domain or "
      "shorten the mark");
}

namespace {

/// Distance from `mass` to the nearest edge of its quantization cell.
/// Cells are centred on integer multiples of q (decode rounds mass/q), so
/// the edges sit at half-integers; a freshly re-centred mass has margin
/// ~q/2.
double CellMargin(double mass, double q) {
  const double pos = mass / q;
  const double frac = pos - std::floor(pos);
  return q * std::abs(frac - 0.5);
}

}  // namespace

Result<FreqEmbedReport> FrequencyMarker::Embed(
    Relation& rel, const std::string& attr, const BitVector& wm,
    const std::optional<CategoricalDomain>& domain_opt,
    QualityAssessor* assessor) const {
  if (wm.empty()) return Status::InvalidArgument("empty watermark");
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col,
                           rel.schema().ColumnIndexOrError(attr));
  CategoricalDomain domain;
  if (domain_opt.has_value()) {
    domain = *domain_opt;
  } else {
    CATMARK_ASSIGN_OR_RETURN(domain,
                             CategoricalDomain::FromRelationColumn(rel, col));
  }
  const std::size_t groups = wm.size();
  if (domain.size() < 2 * groups) {
    return Status::FailedPrecondition(
        "frequency-domain channel needs nA >= 2*|wm| categories (have " +
        std::to_string(domain.size()) + ", need " +
        std::to_string(2 * groups) + ")");
  }

  CATMARK_ASSIGN_OR_RETURN(FrequencyHistogram hist,
                           FrequencyHistogram::Compute(rel, col, domain));
  const std::size_t total = hist.total();
  const double q = params_.quantization_step;
  // Quantization step in tuple counts; must be resolvable.
  const auto q_count = static_cast<long>(
      std::llround(q * static_cast<double>(total)));
  if (q_count < 2) {
    return Status::FailedPrecondition(
        "quantization step too small for this data size (q*N < 2)");
  }

  // Group assignment and per-group counts. The salt guarantees every group
  // owns at least one category; the detector re-derives it from the domain.
  CATMARK_ASSIGN_OR_RETURN(const std::uint8_t salt,
                           FindGroupingSalt(domain, groups));
  std::vector<std::size_t> group_of(domain.size());
  std::vector<long> group_count(groups, 0);
  std::vector<std::vector<std::size_t>> group_categories(groups);
  for (std::size_t t = 0; t < domain.size(); ++t) {
    const std::size_t g = GroupOf(domain.value(t), groups, salt);
    group_of[t] = g;
    group_count[g] += static_cast<long>(hist.count(t));
    group_categories[g].push_back(t);
  }

  // Per-category floors: embedding never drains a category below
  // min(current count, min_category_keep) occurrences — emptied categories
  // would vanish from a blindly re-derived domain and scramble the keyed
  // grouping (besides being a conspicuous data-quality change).
  std::vector<long> cat_floor(domain.size());
  std::vector<long> group_floor(groups, 0);
  for (std::size_t t = 0; t < domain.size(); ++t) {
    cat_floor[t] = std::min<long>(static_cast<long>(hist.count(t)),
                                  params_.min_category_keep);
    group_floor[group_of[t]] += cat_floor[t];
  }

  // Integer count targets in cell units: k_g is the quantization cell index
  // whose parity carries wm bit g. Start from the cell nearest the current
  // mass, subject to a feasibility minimum — the group's final count can
  // never go below its floor, and max(k*q_count, floor) must still round to
  // k (floor < k*q_count + q_count/2).
  const auto min_cell_for = [&](std::size_t g, int bit) {
    long k = (group_floor[g] - q_count / 2 + q_count) / q_count;  // ceil-ish
    if (k < 0) k = 0;
    while (k * q_count + q_count / 2 <= group_floor[g]) ++k;
    if ((k & 1L) != bit) ++k;
    return k;
  };
  const auto target_of = [&](std::size_t g, long k) {
    return std::max(k * q_count, group_floor[g]);
  };
  std::vector<long> cell(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    const double cells =
        static_cast<double>(group_count[g]) / static_cast<double>(q_count);
    long k = std::lround(cells);
    if ((k & 1L) != wm.Get(g)) {
      const long down = k - 1;
      const long up = k + 1;
      k = (down >= 0 &&
           std::abs(cells - static_cast<double>(down)) <=
               std::abs(cells - static_cast<double>(up)))
              ? down
              : up;
    }
    cell[g] = std::max(k, min_cell_for(g, wm.Get(g)));
  }
  std::vector<long> target(groups);
  for (std::size_t g = 0; g < groups; ++g) target[g] = target_of(g, cell[g]);

  // Moves conserve the total count, so targets must sum to the current
  // total. First shrink the imbalance with parity-preserving +-2 cell
  // shifts on the cheapest groups, then absorb the residual (< 2*q_count)
  // by nudging groups off-centre while staying inside their cells.
  long imbalance = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    imbalance += target[g] - group_count[g];
  }
  while (std::abs(imbalance) >= 2 * q_count) {
    const long direction = imbalance > 0 ? -2 : 2;  // cells, applied to one k
    std::size_t best = groups;
    long best_cost = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      const long k_cand = cell[g] + direction;
      if (k_cand < min_cell_for(g, wm.Get(g))) continue;
      const long cand = target_of(g, k_cand);
      const long cost = std::abs(cand - group_count[g]) -
                        std::abs(target[g] - group_count[g]);
      if (best == groups || cost < best_cost) {
        best = g;
        best_cost = cost;
      }
    }
    if (best == groups) break;  // no group can shift further
    cell[best] += direction;
    const long new_target = target_of(best, cell[best]);
    imbalance += new_target - target[best];
    target[best] = new_target;
  }
  // Distribute the residual evenly: each group can absorb up to
  // q_count/2 - 1 off-centre without leaving its cell (and never below its
  // floor); spreading the nudges keeps every group's cell margin large.
  const long max_nudge = q_count / 2 - 1;
  for (std::size_t g = 0; g < groups && imbalance != 0; ++g) {
    const long remaining_groups = static_cast<long>(groups - g);
    long share = -imbalance / remaining_groups;
    if (share == 0) share = imbalance > 0 ? -1 : 1;
    long nudge = std::max(-max_nudge, std::min(max_nudge, share));
    nudge = std::max(nudge, group_floor[g] - target[g]);
    target[g] += nudge;
    imbalance += nudge;
  }
  if (imbalance != 0) {
    return Status::Internal(
        "could not balance frequency targets; increase quantization_step");
  }

  // Per-category row lists (rows holding each in-domain value).
  std::vector<std::vector<std::size_t>> rows_of(domain.size());
  for (std::size_t r = 0; r < rel.NumRows(); ++r) {
    const Value& v = rel.Get(r, col);
    if (v.is_null()) continue;
    const auto t = domain.IndexOf(v);
    if (t.has_value()) rows_of[*t].push_back(r);
  }

  // Execute moves: repeatedly move one tuple from the most-surplus group's
  // largest category to the most-deficit group's largest category.
  std::vector<long> delta(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    delta[g] = target[g] - group_count[g];
  }
  std::vector<long> cat_count(domain.size());
  for (std::size_t t = 0; t < domain.size(); ++t) {
    cat_count[t] = static_cast<long>(hist.count(t));
  }

  FreqEmbedReport report;
  report.num_groups = groups;
  while (true) {
    std::size_t donor = groups, receiver = groups;
    for (std::size_t g = 0; g < groups; ++g) {
      if (delta[g] < 0 && (donor == groups || delta[g] < delta[donor])) {
        donor = g;
      }
      if (delta[g] > 0 &&
          (receiver == groups || delta[g] > delta[receiver])) {
        receiver = g;
      }
    }
    if (donor == groups || receiver == groups) break;

    // Donor category: largest count with a movable row, never taking a
    // category below its floor.
    std::size_t cat_from = domain.size();
    for (std::size_t t : group_categories[donor]) {
      if (!rows_of[t].empty() && cat_count[t] > cat_floor[t] &&
          (cat_from == domain.size() || cat_count[t] > cat_count[cat_from])) {
        cat_from = t;
      }
    }
    if (cat_from == domain.size()) break;  // donor exhausted
    std::size_t cat_to = group_categories[receiver][0];
    for (std::size_t t : group_categories[receiver]) {
      if (cat_count[t] > cat_count[cat_to]) cat_to = t;
    }

    const std::size_t row = rows_of[cat_from].back();
    rows_of[cat_from].pop_back();
    const Value& new_value = domain.value(cat_to);
    bool applied = true;
    if (assessor != nullptr) {
      const Status s = assessor->ProposeAlteration(rel, row, col, new_value);
      if (!s.ok()) {
        if (!s.IsConstraintViolation()) return s;
        applied = false;
      }
    } else {
      CATMARK_RETURN_IF_ERROR(rel.Set(row, col, new_value));
    }
    if (applied) {
      rows_of[cat_to].push_back(row);
      --cat_count[cat_from];
      ++cat_count[cat_to];
      ++delta[donor];
      --delta[receiver];
      ++report.tuples_moved;
    } else if (rows_of[cat_from].empty() && delta[donor] < 0) {
      // Vetoed and the donor category ran dry: the donor group keeps its
      // deficit; bail out if nothing can move any more.
      bool movable = false;
      for (std::size_t t : group_categories[donor]) {
        if (!rows_of[t].empty() && cat_count[t] > cat_floor[t]) {
          movable = true;
        }
      }
      if (!movable) break;
    }
  }

  // Final masses for the report.
  CATMARK_ASSIGN_OR_RETURN(FrequencyHistogram after,
                           FrequencyHistogram::Compute(rel, col, domain));
  report.group_mass.assign(groups, 0.0);
  for (std::size_t t = 0; t < domain.size(); ++t) {
    report.group_mass[group_of[t]] += after.frequency(t);
  }
  report.min_cell_margin = q;
  for (double m : report.group_mass) {
    report.min_cell_margin = std::min(report.min_cell_margin,
                                      CellMargin(m, q));
  }
  return report;
}

Result<FreqDetectReport> FrequencyMarker::Detect(
    const Relation& rel, const std::string& attr, std::size_t wm_len,
    const std::optional<CategoricalDomain>& domain_opt) const {
  if (wm_len == 0) return Status::InvalidArgument("wm_len must be > 0");
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col,
                           rel.schema().ColumnIndexOrError(attr));
  CategoricalDomain domain;
  if (domain_opt.has_value()) {
    domain = *domain_opt;
  } else {
    CATMARK_ASSIGN_OR_RETURN(domain,
                             CategoricalDomain::FromRelationColumn(rel, col));
  }
  CATMARK_ASSIGN_OR_RETURN(FrequencyHistogram hist,
                           FrequencyHistogram::Compute(rel, col, domain));

  CATMARK_ASSIGN_OR_RETURN(const std::uint8_t salt,
                           FindGroupingSalt(domain, wm_len));
  FreqDetectReport report;
  report.group_mass.assign(wm_len, 0.0);
  for (std::size_t t = 0; t < domain.size(); ++t) {
    report.group_mass[GroupOf(domain.value(t), wm_len, salt)] +=
        hist.frequency(t);
  }
  const double q = params_.quantization_step;
  report.wm = BitVector(wm_len);
  report.min_cell_margin = q;
  for (std::size_t g = 0; g < wm_len; ++g) {
    const long cell = std::lround(report.group_mass[g] / q);
    report.wm.Set(g, static_cast<int>(cell & 1L));
    report.min_cell_margin =
        std::min(report.min_cell_margin, CellMargin(report.group_mass[g], q));
  }
  return report;
}

}  // namespace catmark
