#ifndef CATMARK_CORE_LEDGER_H_
#define CATMARK_CORE_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace catmark {

/// Embedding interference ledger (Section 3.3): a hash-set "remembering
/// modified tuples in each marking pass" so that multi-attribute embedding
/// passes skip cells that already carry a previous pass's mark instead of
/// destroying it. Cells are identified by (row, column); a cell counts as
/// carrying a mark even when the embedding left its value unchanged (the
/// value is still load-bearing for detection).
///
/// Within one embedding pass every (row, col) cell is visited at most once,
/// so the sharded apply pass reads IsMarked concurrently (const reads of the
/// hash set are safe while nothing mutates it) and defers all Mark calls to
/// the serial splice step via MarkRows.
class EmbeddingLedger {
 public:
  bool IsMarked(std::size_t row, std::size_t col) const {
    return cells_.count(KeyOf(row, col)) > 0;
  }

  void Mark(std::size_t row, std::size_t col) {
    cells_.insert(KeyOf(row, col));
  }

  /// Bulk variant for the sharded embed apply pass: marks every row in
  /// `rows` for `col`. Not thread-safe — called once per shard segment,
  /// serially, after the parallel phase.
  void MarkRows(const std::vector<std::size_t>& rows, std::size_t col) {
    for (const std::size_t row : rows) Mark(row, col);
  }

  std::size_t size() const { return cells_.size(); }
  void Clear() { cells_.clear(); }

 private:
  static std::uint64_t KeyOf(std::size_t row, std::size_t col) {
    CATMARK_CHECK_LT(col, 1u << 16);
    return (static_cast<std::uint64_t>(row) << 16) |
           static_cast<std::uint64_t>(col);
  }

  std::unordered_set<std::uint64_t> cells_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_LEDGER_H_
