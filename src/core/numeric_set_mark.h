#ifndef CATMARK_CORE_NUMERIC_SET_MARK_H_
#define CATMARK_CORE_NUMERIC_SET_MARK_H_

#include <vector>

#include "common/bitvec.h"
#include "common/result.h"
#include "crypto/keyed_hash.h"

namespace catmark {

/// Standalone numeric-set watermarking primitive in the spirit of the
/// paper's reference [10] (Sion, Atallah, Prabhakar, "On Watermarking
/// Numeric Sets", IWDW 2002): hide bits in an *unordered set of numbers*
/// while minimizing the absolute data change. The frequency-domain channel
/// (core/freq_mark) is the categorical application of this idea; this
/// module exposes the primitive itself for numeric columns.
///
/// Scheme (simplified variant, documented in DESIGN.md): the sorted set is
/// cut into |wm| equal-size chunks of adjacent items; bit i is carried by
/// the parity of chunk i's quantized mean (step = `quantization_fraction`
/// of the full set's standard deviation). Embedding shifts every chunk item
/// by the same minimal delta that re-centres the chunk mean in the nearest
/// correct-parity cell. Chunk membership depends only on value *order*, so
/// the mark survives re-shuffling trivially and uniform subset selection
/// statistically (order statistics are stable).
struct NumericSetMarkParams {
  /// Absolute quantization step of the chunk means, in data units (pick
  /// ~5% of the set's standard deviation). Robustness radius is half of
  /// it; so is the worst-case per-item shift. An absolute step (rather
  /// than one derived from the data) keeps embed and detect aligned even
  /// though embedding itself moves the statistics slightly.
  double quantization_step = 1.0;
};

struct NumericSetEmbedReport {
  double max_item_change = 0.0;   ///< largest absolute per-item shift
  double total_change = 0.0;      ///< sum of absolute shifts
  std::vector<double> chunk_means;
};

class NumericSetMarker {
 public:
  NumericSetMarker(SecretKey key, NumericSetMarkParams params);

  /// Embeds `wm` into `values` in place. Needs at least 4 items per bit.
  Result<NumericSetEmbedReport> Embed(std::vector<double>& values,
                                      const BitVector& wm) const;

  /// Blind detection.
  Result<BitVector> Detect(const std::vector<double>& values,
                           std::size_t wm_len) const;

 private:
  /// Keyed, order-based chunk boundaries (the key perturbs boundary
  /// placement so an adversary cannot target chunk edges).
  std::vector<std::size_t> ChunkBounds(std::size_t n,
                                       std::size_t chunks) const;

  SecretKey key_;
  NumericSetMarkParams params_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_NUMERIC_SET_MARK_H_
