#ifndef CATMARK_CORE_DETECTOR_H_
#define CATMARK_CORE_DETECTOR_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/embedding_map.h"
#include "core/keys.h"
#include "core/params.h"
#include "relation/domain.h"
#include "relation/relation.h"
#include "relation/value_index_column.h"

namespace catmark {

/// Detection inputs. Detection is *blind*: no original data — only the keys
/// (inside the Detector), e (inside WatermarkParams), the payload length,
/// the watermark length and the attribute domain.
struct DetectOptions {
  std::string key_attr;
  std::string target_attr;

  /// Domain the embedder used. When unset it is recovered from the suspect
  /// data itself — correct as long as the attack did not remove entire
  /// categories (after heavy data loss prefer passing the owner-side copy
  /// from EmbedReport::domain).
  std::optional<CategoricalDomain> domain;

  /// Non-owning alternative to `domain` for sweeps that re-detect against
  /// one shared domain many times (e.g. the multi-attribute closure):
  /// takes precedence over `domain` and avoids copying the value vector
  /// per call. The pointee must outlive the Detect call.
  const CategoricalDomain* domain_view = nullptr;

  /// |wm_data| used at embed time (EmbedReport::payload_length). When 0 it
  /// is re-derived from the *suspect* relation's size — fine when no tuples
  /// were added/removed, wrong after A1/A2; real deployments keep this one
  /// integer as owner-side metadata. Deriving fails with FailedPrecondition
  /// when N / e == 0 (the suspect relation is smaller than e).
  std::size_t payload_length = 0;

  /// Detect via the Figure 2(b) embedding-map variant instead of k2.
  const EmbeddingMap* embedding_map = nullptr;

  /// Optional reusable domain-index view of the target column, for
  /// detection sweeps that run many keys/attacks over the same suspect
  /// data: build it once with ValueIndexColumn::Build (against the same
  /// domain passed above) and every Detect call skips its per-tuple
  /// IndexOf lookups. When null, indices are resolved lazily for fit
  /// tuples only. Must have one entry per suspect row.
  const ValueIndexColumn* target_index = nullptr;
};

/// Detection outcome plus channel diagnostics.
struct DetectionResult {
  BitVector wm;                        ///< decoded watermark
  std::size_t num_tuples = 0;          ///< suspect relation size
  std::size_t fit_tuples = 0;          ///< tuples passing the fitness test
  std::size_t usable_votes = 0;        ///< fit tuples with in-domain values
  std::size_t payload_length = 0;      ///< |wm_data| used
  std::size_t positions_present = 0;   ///< payload positions with >=1 vote
  double payload_fill = 0.0;           ///< positions_present / payload_length

  /// Keyed-PRF backend detection ran with (must match the embed-time one;
  /// certificates carry it).
  PrfKind prf = PrfKind::kKeyedHash;

  /// Per-bit decode confidence in [0,1] (majority margin; empty when the
  /// configured ECC has no confidence notion). Court-facing evidence
  /// quality: 1.0 = unanimous votes, 0.0 = fully erased / tied.
  std::vector<double> bit_confidence;

  /// Wall-clock seconds this detection call took.
  double wall_seconds = 0.0;

  /// Suspect rows this detection speaks for — always the relation's row
  /// count, on every path (one-shot, embedding-map, engine per-key pass).
  /// Throughput rates divide by this.
  std::size_t rows_scanned = 0;

  /// Prepared messages actually pushed through the keyed PRF: equal to the
  /// non-NULL key rows on a plain key column, to the *live distinct*
  /// dictionary entries on a dict-encoded one (the dict-code gather), and
  /// to the plan's prepared messages on an engine per-key pass. The
  /// amortization a sweep ranks and benches by — kept separate from
  /// rows_scanned so the two are never conflated again.
  std::size_t messages_hashed = 0;
};

/// Agreement between an expected and a decoded watermark, with the
/// court-time statistics of Section 4.4.
struct MatchStats {
  std::size_t matched_bits = 0;
  /// max(|expected|, |decoded|). On a length mismatch the bits present on
  /// only one side count as mismatched, so the score degrades instead of
  /// the comparison being undefined.
  std::size_t total_bits = 0;
  /// True when |expected| != |decoded| — usually a payload-length mix-up
  /// between embed and detect; callers should surface it.
  bool length_mismatch = false;
  double match_fraction = 0.0;    ///< matched / total
  double mark_alteration = 0.0;   ///< 1 - match_fraction (the figures' y-axis)
  /// P[>= matched_bits of total match by pure chance] — the false-claim
  /// probability a court would weigh; (1/2)^|wm| when all bits match.
  double false_match_probability = 1.0;
};

/// Size-tolerant comparison: never aborts on a length mismatch (it is
/// reported via MatchStats::length_mismatch and scored against the longer
/// vector instead).
MatchStats MatchWatermark(const BitVector& expected, const BitVector& decoded);

/// Turns a merged per-position vote tally (votes.size() == payload length)
/// into the decoded-payload fields of `result`: positions_present,
/// payload_fill, wm and bit_confidence. Shared by the Detector's
/// embedding-map path and the DetectEngine per-key pass so the two tally
/// consumers cannot drift apart.
Status FinishVoteTally(std::span<const long> votes, std::size_t wm_len,
                       EccKind ecc, DetectionResult& result);

/// wm_decode (Figure 2): blind watermark detection.
class Detector {
 public:
  Detector(WatermarkKeySet keys, WatermarkParams params);

  Result<DetectionResult> Detect(const Relation& rel,
                                 const DetectOptions& options,
                                 std::size_t wm_len) const;

 private:
  WatermarkKeySet keys_;
  WatermarkParams params_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_DETECTOR_H_
