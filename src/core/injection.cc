#include "core/injection.h"

#include <cmath>
#include <unordered_set>

#include "core/codec.h"
#include "ecc/code.h"
#include "random/rng.h"

namespace catmark {

FitTupleInjector::FitTupleInjector(WatermarkKeySet keys,
                                   WatermarkParams params)
    : keys_(std::move(keys)), params_(params) {
  CATMARK_CHECK(keys_.valid());
}

Result<InjectionReport> FitTupleInjector::Inject(
    Relation& rel, const EmbedOptions& options, const BitVector& wm,
    const InjectionConfig& config) const {
  if (wm.empty()) return Status::InvalidArgument("empty watermark");
  if (config.padd < 0.0 || config.padd > 1.0) {
    return Status::InvalidArgument("padd must be in [0,1]");
  }
  if (rel.empty()) return Status::FailedPrecondition("empty relation");
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t key_col,
      rel.schema().ColumnIndexOrError(options.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      const std::size_t target_col,
      rel.schema().ColumnIndexOrError(options.target_attr));
  const ColumnType key_type = rel.schema().column(key_col).type;
  if (key_type == ColumnType::kDouble) {
    return Status::FailedPrecondition(
        "injection needs an INT64 or STRING key attribute");
  }

  CategoricalDomain domain;
  if (options.domain.has_value()) {
    domain = *options.domain;
  } else {
    CATMARK_ASSIGN_OR_RETURN(
        domain, CategoricalDomain::FromRelationColumn(rel, target_col));
  }
  if (domain.size() < 2) {
    return Status::FailedPrecondition("domain has fewer than 2 values");
  }

  const std::size_t base_n = rel.NumRows();
  const std::size_t to_add = static_cast<std::size_t>(
      std::llround(config.padd * static_cast<double>(base_n)));

  InjectionReport report;
  report.payload_length =
      params_.payload_length != 0
          ? params_.payload_length
          : DerivePayloadLength(base_n, params_.e, wm.size());

  const std::unique_ptr<ErrorCorrectingCode> ecc = CreateEcc(params_.ecc);
  CATMARK_ASSIGN_OR_RETURN(const BitVector wm_data,
                           ecc->Encode(wm, report.payload_length));

  // The injected tuples must be fit under the same PRF backend the victim
  // detection run will use.
  CATMARK_ASSIGN_OR_RETURN(const PrfKind prf, ResolvePrfKind(params_.prf));
  const std::unique_ptr<KeyedPrf> prf_k1 =
      CreateKeyedPrf(prf, keys_.k1, params_.hash_algo);
  const std::unique_ptr<KeyedPrf> prf_k2 =
      CreateKeyedPrf(prf, keys_.k2, params_.hash_algo);
  HashScratch scratch;
  scratch.reserve(64);
  Xoshiro256ss rng(config.seed);

  // Existing key values — injected keys must stay unique.
  std::unordered_set<std::string> used_keys;
  for (std::size_t i = 0; i < base_n; ++i) {
    used_keys.insert(rel.Get(i, key_col).ToString());
  }

  const std::size_t max_attempts =
      to_add * static_cast<std::size_t>(params_.e) * config.attempt_factor +
      1;
  while (report.tuples_added < to_add &&
         report.candidates_tried < max_attempts) {
    ++report.candidates_tried;
    // Massively produce random key values and test for fitness.
    Value key_value;
    if (key_type == ColumnType::kInt64) {
      key_value =
          Value(static_cast<std::int64_t>(rng.NextBounded(1ULL << 62)));
    } else {
      key_value = Value("K" + std::to_string(rng.Next()));
    }
    const std::uint64_t h1 = HashValue(*prf_k1, key_value, scratch);
    if (h1 % params_.e != 0) continue;
    if (!used_keys.insert(key_value.ToString()).second) continue;

    // Clone a random tuple so every other attribute conforms to the overall
    // distribution, then stamp key + watermarked target value.
    Row row = rel.row(rng.NextBounded(base_n));
    row[key_col] = key_value;
    const std::size_t idx = PayloadIndexFromHash(
        HashValue(*prf_k2, key_value, scratch), report.payload_length,
        params_.bit_index_mode);
    const std::size_t t =
        SelectValueIndex(h1, domain.size(), wm_data.Get(idx));
    row[target_col] = domain.value(t);
    rel.AppendRowUnchecked(std::move(row));
    ++report.tuples_added;
  }
  return report;
}

}  // namespace catmark
