#include "core/bandwidth.h"

#include <cmath>

#include "relation/domain.h"
#include "relation/histogram.h"

namespace catmark {

Result<AttributeBandwidth> AnalyzeAttributeBandwidth(const Relation& rel,
                                                     const std::string& attr,
                                                     std::uint64_t e,
                                                     double q) {
  if (e == 0) return Status::InvalidArgument("e must be >= 1");
  if (q <= 0.0 || q >= 0.5) {
    return Status::InvalidArgument("q must be in (0, 0.5)");
  }
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col,
                           rel.schema().ColumnIndexOrError(attr));
  CATMARK_ASSIGN_OR_RETURN(const CategoricalDomain domain,
                           CategoricalDomain::FromRelationColumn(rel, col));
  CATMARK_ASSIGN_OR_RETURN(const FrequencyHistogram hist,
                           FrequencyHistogram::Compute(rel, col, domain));

  AttributeBandwidth out;
  out.attribute = attr;
  out.domain_size = domain.size();
  out.direct_domain_bits = std::log2(static_cast<double>(domain.size()));

  for (std::size_t t = 0; t < domain.size(); ++t) {
    const double f = hist.frequency(t);
    if (f > 0.0) out.entropy_bits -= f * std::log2(f);
  }

  // Association channel: one wm_data bit per fit tuple; embedding alters a
  // fit tuple unless its value already matches (probability ~1/2 of
  // matching LSB times the base-value hit rate; upper bound 1/e is the
  // honest price tag).
  out.association_bits = rel.NumRows() / static_cast<std::size_t>(e);
  out.association_alteration_fraction =
      1.0 / static_cast<double>(e);

  // Frequency channel: every bit needs its own hash group with >= 2
  // categories in expectation; re-centring a group's mass moves up to q/2
  // of the group's tuples (~q/2 * N / |wm| per bit on average, expressed
  // here as fraction of N per bit).
  out.frequency_bits = domain.size() / 2;
  out.frequency_alteration_per_bit = q / 2.0;
  return out;
}

Result<std::vector<AttributeBandwidth>> AnalyzeRelationBandwidth(
    const Relation& rel, std::uint64_t e, double q) {
  std::vector<AttributeBandwidth> out;
  for (const std::size_t col : rel.schema().CategoricalColumns()) {
    CATMARK_ASSIGN_OR_RETURN(
        AttributeBandwidth bw,
        AnalyzeAttributeBandwidth(rel, rel.schema().column(col).name, e, q));
    out.push_back(std::move(bw));
  }
  return out;
}

}  // namespace catmark
