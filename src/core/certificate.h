#ifndef CATMARK_CORE_CERTIFICATE_H_
#define CATMARK_CORE_CERTIFICATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/decision.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "core/keys.h"
#include "core/params.h"
#include "relation/domain.h"

namespace catmark {

/// The owner-side watermark certificate: every piece of metadata detection
/// and dispute resolution need, in one serializable record.
///
///  * Detection inputs: e / ECC / hash / keyed-PRF backend / payload length
///    / wm length, the attribute pair, and the categorical domain. The PRF
///    id pins the primitive disputes re-verify with; certificates from
///    before the PRF subsystem lack the field and mean the legacy keyed
///    hash.
///  * Remap recovery input (Section 4.5): the published frequency table.
///  * Dispute resolution (additive attacks, Section 6): a SHA-256
///    *commitment* to the secret keys. Publishing or timestamping the
///    certificate at embedding time proves key possession *before* any
///    adversarial re-marking, without revealing the keys; at court time
///    VerifyKeys shows the produced keys match the committed ones.
struct WatermarkCertificate {
  std::string description;
  std::string key_attr;
  std::string target_attr;
  WatermarkParams params;
  std::size_t payload_length = 0;
  BitVector wm;
  CategoricalDomain domain;
  std::vector<double> frequencies;   ///< optional (empty = not recorded)
  std::string key_commitment_hex;    ///< SHA-256(k1 || k2)

  /// Assembles a certificate from an embedding run. `frequencies` may be
  /// empty if remap recovery support is not wanted.
  static WatermarkCertificate Create(const WatermarkKeySet& keys,
                                     const WatermarkParams& params,
                                     const EmbedOptions& options,
                                     const EmbedReport& report,
                                     const BitVector& wm,
                                     std::vector<double> frequencies = {},
                                     std::string description = "");

  /// True iff `keys` hash to the stored commitment.
  bool VerifyKeys(const WatermarkKeySet& keys) const;

  /// Line-oriented `key=value` text form (domain values are type-tagged and
  /// hex-encoded so any byte content round-trips).
  std::string Serialize() const;
  static Result<WatermarkCertificate> Deserialize(std::string_view text);

  friend bool operator==(const WatermarkCertificate& a,
                         const WatermarkCertificate& b);
};

/// SHA-256(k1 || k2) in hex — the commitment published at embed time.
std::string ComputeKeyCommitment(const WatermarkKeySet& keys);

/// Certificate-driven detection: verifies the keys against the commitment,
/// then runs blind detection with every parameter taken from the
/// certificate and returns the ownership decision against its mark. This is
/// the one-call workflow a detection service wants.
struct CertifiedDetection {
  DetectionResult detection;
  OwnershipDecision decision;
};
Result<CertifiedDetection> DetectWithCertificate(
    const Relation& suspect, const WatermarkCertificate& certificate,
    const WatermarkKeySet& keys, double alpha = 1e-3);

}  // namespace catmark

#endif  // CATMARK_CORE_CERTIFICATE_H_
