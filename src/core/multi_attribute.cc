#include "core/multi_attribute.h"

#include <map>

#include "relation/domain.h"
#include "relation/value_index_column.h"

namespace catmark {

Result<std::vector<AttributePair>> PlanPairClosure(const Relation& rel) {
  const Schema& schema = rel.schema();

  // Categorical attributes usable as embedding targets (domain size >= 2).
  std::vector<std::string> targets;
  for (std::size_t c : schema.CategoricalColumns()) {
    Result<CategoricalDomain> domain =
        CategoricalDomain::FromRelationColumn(rel, c);
    if (domain.ok() && domain.value().size() >= 2) {
      targets.push_back(schema.column(c).name);
    }
  }
  if (targets.empty()) {
    return Status::FailedPrecondition(
        "no categorical attribute with >= 2 values to watermark");
  }

  std::vector<AttributePair> pairs;
  std::map<std::string, int> modifications;

  // Primary-key-anchored passes.
  if (schema.has_primary_key()) {
    const std::string pk =
        schema.column(static_cast<std::size_t>(schema.primary_key_index()))
            .name;
    for (const std::string& t : targets) {
      if (t == pk) continue;
      pairs.push_back({pk, t});
      ++modifications[t];
    }
  }

  // Cross-categorical passes: one per unordered pair, directed at the
  // less-modified attribute.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (std::size_t j = i + 1; j < targets.size(); ++j) {
      const std::string& x = targets[i];
      const std::string& y = targets[j];
      if (modifications[y] <= modifications[x]) {
        pairs.push_back({x, y});
        ++modifications[y];
      } else {
        pairs.push_back({y, x});
        ++modifications[x];
      }
    }
  }
  return pairs;
}

MultiAttributeEmbedder::MultiAttributeEmbedder(WatermarkKeySet keys,
                                               WatermarkParams params)
    : keys_(std::move(keys)), params_(params) {}

Result<MultiEmbedReport> MultiAttributeEmbedder::EmbedAll(
    Relation& rel, const std::vector<AttributePair>& pairs,
    const BitVector& wm, QualityAssessor* assessor) const {
  if (pairs.empty()) {
    return Status::InvalidArgument("no attribute pairs to embed");
  }
  const Embedder embedder(keys_, params_);
  EmbeddingLedger ledger;
  MultiEmbedReport out;
  for (const AttributePair& pair : pairs) {
    EmbedOptions options;
    options.key_attr = pair.key_attr;
    options.target_attr = pair.target_attr;
    CATMARK_ASSIGN_OR_RETURN(
        EmbedReport report,
        embedder.Embed(rel, options, wm, assessor, &ledger));
    out.total_altered += report.altered_tuples;
    out.total_skipped_by_ledger += report.skipped_by_ledger;
    out.passes.push_back({pair, std::move(report)});
  }
  return out;
}

Result<std::vector<PairDetection>> MultiAttributeEmbedder::DetectAll(
    const Relation& rel, const std::vector<AttributePair>& pairs,
    std::size_t wm_len, std::size_t payload_length) const {
  const Detector detector(keys_, params_);

  // The pair closure reuses each target attribute under several key
  // attributes; recover its domain and build the domain-index view (zero-
  // copy on dictionary columns) once and share them across those passes.
  struct TargetCache {
    CategoricalDomain domain;
    ValueIndexColumn index;
  };
  std::map<std::string, TargetCache> targets;

  std::vector<PairDetection> out;
  for (const AttributePair& pair : pairs) {
    if (rel.schema().ColumnIndex(pair.key_attr) < 0 ||
        rel.schema().ColumnIndex(pair.target_attr) < 0) {
      continue;  // attribute lost to vertical partitioning
    }
    auto it = targets.find(pair.target_attr);
    if (it == targets.end()) {
      const std::size_t target_col = static_cast<std::size_t>(
          rel.schema().ColumnIndex(pair.target_attr));
      Result<CategoricalDomain> domain =
          CategoricalDomain::FromRelationColumn(rel, target_col);
      if (!domain.ok()) continue;  // e.g. all-NULL column after attack
      TargetCache cache;
      cache.domain = std::move(domain).value();
      cache.index = ValueIndexColumn::Build(rel, target_col, cache.domain,
                                            params_.num_threads);
      it = targets.emplace(pair.target_attr, std::move(cache)).first;
    }
    DetectOptions options;
    options.key_attr = pair.key_attr;
    options.target_attr = pair.target_attr;
    options.payload_length = payload_length;
    options.domain_view = &it->second.domain;
    options.target_index = &it->second.index;
    Result<DetectionResult> detection = detector.Detect(rel, options, wm_len);
    if (!detection.ok()) continue;  // e.g. degenerate domain after attack
    out.push_back({pair, std::move(detection).value()});
  }
  return out;
}

BitVector MultiAttributeEmbedder::CombineDetections(
    const std::vector<PairDetection>& detections, std::size_t wm_len) {
  std::vector<long> votes(wm_len, 0);
  for (const PairDetection& d : detections) {
    // Weight each witness by the number of payload positions it actually
    // saw: a pass keyed by a low-cardinality categorical attribute only
    // covers a handful of positions (the Section 3.3 note about categorical
    // key placeholders) and must not outvote a fully-covered PK-keyed pass.
    const long weight =
        static_cast<long>(d.detection.positions_present) + 1;
    for (std::size_t i = 0; i < wm_len && i < d.detection.wm.size(); ++i) {
      votes[i] += d.detection.wm.Get(i) ? weight : -weight;
    }
  }
  BitVector wm(wm_len);
  for (std::size_t i = 0; i < wm_len; ++i) wm.Set(i, votes[i] > 0 ? 1 : 0);
  return wm;
}

}  // namespace catmark
