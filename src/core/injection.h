#ifndef CATMARK_CORE_INJECTION_H_
#define CATMARK_CORE_INJECTION_H_

#include <cstdint>
#include <string>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/embedder.h"
#include "core/keys.h"
#include "core/params.h"
#include "relation/relation.h"

namespace catmark {

/// Data-addition embedding (Section 4.6): instead of (or in addition to)
/// altering existing tuples, artificially inject watermark-carrying tuples
/// that (a) satisfy the fitness criteria and (b) conform to the overall
/// data distribution for stealthiness.
struct InjectionConfig {
  /// padd: upper bound on the fraction of tuples added (relative to N).
  double padd = 0.05;

  /// Candidate generation gives up after padd*N*e*attempt_factor draws
  /// (fitness hits one candidate in e on average).
  std::size_t attempt_factor = 50;

  std::uint64_t seed = 7;
};

struct InjectionReport {
  std::size_t tuples_added = 0;
  std::size_t candidates_tried = 0;
  std::size_t payload_length = 0;
};

/// Injects fit tuples carrying bits of `wm` into `rel`. Non-key attributes
/// are cloned from random existing tuples (stealth: empirical distribution);
/// the key attribute gets fresh random values that pass the fitness test —
/// "because e effectively reduces the fitness criteria testing space ... one
/// in every e [candidates] should conform" (Section 4.6). The target
/// attribute is then set exactly as in the alteration embedder.
class FitTupleInjector {
 public:
  FitTupleInjector(WatermarkKeySet keys, WatermarkParams params);

  Result<InjectionReport> Inject(Relation& rel, const EmbedOptions& options,
                                 const BitVector& wm,
                                 const InjectionConfig& config) const;

 private:
  WatermarkKeySet keys_;
  WatermarkParams params_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_INJECTION_H_
