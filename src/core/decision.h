#ifndef CATMARK_CORE_DECISION_H_
#define CATMARK_CORE_DECISION_H_

#include <cstddef>

#include "common/bitvec.h"
#include "core/detector.h"

namespace catmark {

/// Ownership decision support: turns a decoded mark into a yes/no claim at
/// a chosen significance level — the court-facing face of Section 4.4's
/// false-positive analysis.
struct OwnershipDecision {
  bool owned = false;            ///< claim "this is my data"?
  std::size_t matched_bits = 0;
  std::size_t threshold = 0;     ///< bits required at this significance
  double p_value = 1.0;          ///< P[>= matched bits matching by chance]
  double significance = 0.0;     ///< alpha the threshold was derived for
};

/// Smallest match count m such that P[Binomial(wm_len, 1/2) >= m] <= alpha:
/// the evidence bar a court should apply to a |wm|-bit mark. Returns
/// wm_len + 1 when even a perfect match cannot reach alpha (mark too short
/// for that significance — pick a longer mark).
std::size_t RequiredMatchThreshold(std::size_t wm_len, double alpha);

/// Decides ownership of `decoded` against the owner's `expected` mark at
/// significance `alpha` (default 0.1%).
OwnershipDecision DecideOwnership(const BitVector& expected,
                                  const BitVector& decoded,
                                  double alpha = 1e-3);

}  // namespace catmark

#endif  // CATMARK_CORE_DECISION_H_
