#ifndef CATMARK_CORE_EMBEDDING_MAP_H_
#define CATMARK_CORE_EMBEDDING_MAP_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"
#include "relation/value.h"

namespace catmark {

/// The embedding map of the alternative algorithm (Figures 1(b)/2(b)): an
/// owner-side table from primary-key value to the exact wm_data bit index
/// embedded in that tuple (~N/e entries). Using it at detection recovers
/// every bit exactly and removes the need for the second key k2, at the cost
/// of keeping owner-side state.
///
/// Keys are the canonical hash serialization of the PK value (so INT64 7 and
/// STRING "7" stay distinct), held in a transparent-hash map: lookups probe
/// with a std::string_view over a caller-owned scratch buffer, so the detect
/// hot loop performs no per-tuple heap allocation.
class EmbeddingMap {
 public:
  /// Sentinel returned by LookupColumn for rows whose key is absent.
  static constexpr std::uint64_t kNotFound =
      std::numeric_limits<std::uint64_t>::max();

  EmbeddingMap() = default;

  /// Associates the tuple whose key attribute equals `pk` with wm_data
  /// index `idx`. Re-inserting the same key overwrites.
  void Insert(const Value& pk, std::size_t idx);

  /// One shard's worth of entries from the sharded embed apply pass:
  /// (serialized key, wm_data index) pairs in commit (row) order. Keys are
  /// the exact bytes SerializeKey produces — serialization happens inside
  /// the parallel phase, so the serial splice below touches no Value.
  using Segment = std::vector<std::pair<std::string, std::size_t>>;

  /// Splices a shard segment: performs exactly the insert (or overwrite)
  /// sequence Insert would for the same entries in the same order, so
  /// appending shard segments in shard order leaves the map — including its
  /// Serialize() output — byte-identical to a serial embed pass. Not
  /// thread-safe; call from one thread, in shard order.
  void AppendSegment(Segment&& segment);

  /// Index for `pk`, or nullopt when the tuple was not embedded.
  std::optional<std::size_t> Lookup(const Value& pk) const;

  /// Heterogeneous variant: looks up an already-serialized key (the bytes
  /// SerializeKey produces) without building a std::string.
  std::optional<std::size_t> Lookup(std::string_view serialized_pk) const;

  /// Serializes `pk` into `scratch` (cleared first) and returns a view of
  /// the bytes — the allocation-free feeder for Lookup(string_view).
  static std::string_view SerializeKey(const Value& pk,
                                       std::vector<std::uint8_t>& scratch);

  /// Batch path for the detect loop: resolves every row of `rel`'s column
  /// `col` in one pass, writing the found index (or kNotFound) per row.
  /// Rows where `mask` (when non-null, sized NumRows) is 0 are skipped and
  /// reported kNotFound — the detector passes the fitness bitmap so only
  /// the ~N/e fit tuples are probed. One scratch buffer is reused across
  /// rows; dictionary-encoded key columns are probed once per distinct
  /// dictionary code instead of once per row.
  std::vector<std::uint64_t> LookupColumn(
      const Relation& rel, std::size_t col,
      const std::vector<std::uint8_t>* mask = nullptr) const;

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Owner-side persistence: one "hex(pk-bytes),index" line per entry.
  std::string Serialize() const;

  /// Parses Serialize output. Duplicate keys are rejected with
  /// InvalidArgument: two entries for one PK mean the file is corrupt or
  /// hand-edited, and silently keeping the later one would make the
  /// detector vote on a position the embedder never wrote for that tuple.
  static Result<EmbeddingMap> Deserialize(std::string_view text);

 private:
  std::unordered_map<std::string, std::size_t, TransparentStringHash,
                     std::equal_to<>>
      map_;
  // Reused serialization buffer for Insert (single-threaded embed apply
  // pass; never read by const lookups).
  std::vector<std::uint8_t> insert_scratch_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_EMBEDDING_MAP_H_
