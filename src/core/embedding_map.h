#ifndef CATMARK_CORE_EMBEDDING_MAP_H_
#define CATMARK_CORE_EMBEDDING_MAP_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "relation/value.h"

namespace catmark {

/// The embedding map of the alternative algorithm (Figures 1(b)/2(b)): an
/// owner-side table from primary-key value to the exact wm_data bit index
/// embedded in that tuple (~N/e entries). Using it at detection recovers
/// every bit exactly and removes the need for the second key k2, at the cost
/// of keeping owner-side state.
class EmbeddingMap {
 public:
  EmbeddingMap() = default;

  /// Associates the tuple whose key attribute equals `pk` with wm_data
  /// index `idx`. Re-inserting the same key overwrites.
  void Insert(const Value& pk, std::size_t idx);

  /// Index for `pk`, or nullopt when the tuple was not embedded.
  std::optional<std::size_t> Lookup(const Value& pk) const;

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Owner-side persistence: one "hex(pk-bytes),index" line per entry.
  std::string Serialize() const;
  static Result<EmbeddingMap> Deserialize(std::string_view text);

 private:
  static std::string KeyOf(const Value& pk);

  // Keyed by the canonical hash serialization of the PK value, so INT64 7
  // and STRING "7" stay distinct.
  std::unordered_map<std::string, std::size_t> map_;
};

}  // namespace catmark

#endif  // CATMARK_CORE_EMBEDDING_MAP_H_
