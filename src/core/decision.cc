#include "core/decision.h"

#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "random/stats.h"

namespace catmark {

namespace {

std::size_t ComputeRequiredMatchThreshold(std::size_t wm_len, double alpha) {
  // P[Binomial(len, 1/2) >= m] grows monotonically as m decreases, so the
  // acceptable match counts form a suffix {m*, ..., len}. Walk m downwards,
  // accumulating the tail one pmf term at a time (terms are added smallest
  // first, which also keeps the sum accurate): O(len) log-gamma evaluations
  // total instead of one full O(len) tail per candidate m.
  const double log_half = std::log(0.5);
  long double tail = 0.0L;
  std::size_t threshold = wm_len + 1;  // unreachable bar: mark too short
  for (std::size_t m = wm_len;; --m) {
    tail += std::exp(LogBinomialCoefficient(wm_len, m) +
                     static_cast<double>(wm_len) * log_half);
    if (static_cast<double>(tail) > alpha) break;
    threshold = m;
    if (m == 0) break;
  }
  return threshold;
}

}  // namespace

std::size_t RequiredMatchThreshold(std::size_t wm_len, double alpha) {
  CATMARK_CHECK(alpha > 0.0 && alpha < 1.0);
  // A 1k-key sweep decides every candidate at the same (wm_len, alpha), and
  // each decision would otherwise redo the identical binomial-tail walk —
  // memoize it. Keyed on alpha's bit pattern (exact doubles in, exact
  // thresholds out; no epsilon comparisons), guarded by a mutex because
  // DetectMany consumers decide from parallel workers. The walk runs
  // outside the lock: a racing first call computes twice and inserts the
  // same value, which is cheaper than holding the lock through log-gamma.
  std::uint64_t alpha_bits;
  static_assert(sizeof(alpha_bits) == sizeof(alpha));
  std::memcpy(&alpha_bits, &alpha, sizeof(alpha_bits));
  const std::pair<std::size_t, std::uint64_t> key(wm_len, alpha_bits);
  static std::mutex mutex;
  static std::map<std::pair<std::size_t, std::uint64_t>, std::size_t>* cache =
      new std::map<std::pair<std::size_t, std::uint64_t>, std::size_t>();
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  const std::size_t threshold = ComputeRequiredMatchThreshold(wm_len, alpha);
  std::lock_guard<std::mutex> lock(mutex);
  cache->emplace(key, threshold);
  return threshold;
}

OwnershipDecision DecideOwnership(const BitVector& expected,
                                  const BitVector& decoded, double alpha) {
  const MatchStats stats = MatchWatermark(expected, decoded);
  OwnershipDecision decision;
  decision.matched_bits = stats.matched_bits;
  decision.p_value = stats.false_match_probability;
  decision.significance = alpha;
  decision.threshold = RequiredMatchThreshold(expected.size(), alpha);
  decision.owned = stats.matched_bits >= decision.threshold;
  return decision;
}

}  // namespace catmark
