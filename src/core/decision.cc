#include "core/decision.h"

#include "common/check.h"
#include "random/stats.h"

namespace catmark {

std::size_t RequiredMatchThreshold(std::size_t wm_len, double alpha) {
  CATMARK_CHECK(alpha > 0.0 && alpha < 1.0);
  for (std::size_t m = 0; m <= wm_len; ++m) {
    if (BinomialTailAtLeast(wm_len, m, 0.5) <= alpha) return m;
  }
  return wm_len + 1;  // unreachable bar: the mark is too short for alpha
}

OwnershipDecision DecideOwnership(const BitVector& expected,
                                  const BitVector& decoded, double alpha) {
  const MatchStats stats = MatchWatermark(expected, decoded);
  OwnershipDecision decision;
  decision.matched_bits = stats.matched_bits;
  decision.p_value = stats.false_match_probability;
  decision.significance = alpha;
  decision.threshold = RequiredMatchThreshold(expected.size(), alpha);
  decision.owned = stats.matched_bits >= decision.threshold;
  return decision;
}

}  // namespace catmark
