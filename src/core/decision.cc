#include "core/decision.h"

#include <cmath>

#include "common/check.h"
#include "random/stats.h"

namespace catmark {

std::size_t RequiredMatchThreshold(std::size_t wm_len, double alpha) {
  CATMARK_CHECK(alpha > 0.0 && alpha < 1.0);
  // P[Binomial(len, 1/2) >= m] grows monotonically as m decreases, so the
  // acceptable match counts form a suffix {m*, ..., len}. Walk m downwards,
  // accumulating the tail one pmf term at a time (terms are added smallest
  // first, which also keeps the sum accurate): O(len) log-gamma evaluations
  // total instead of one full O(len) tail per candidate m.
  const double log_half = std::log(0.5);
  long double tail = 0.0L;
  std::size_t threshold = wm_len + 1;  // unreachable bar: mark too short
  for (std::size_t m = wm_len;; --m) {
    tail += std::exp(LogBinomialCoefficient(wm_len, m) +
                     static_cast<double>(wm_len) * log_half);
    if (static_cast<double>(tail) > alpha) break;
    threshold = m;
    if (m == 0) break;
  }
  return threshold;
}

OwnershipDecision DecideOwnership(const BitVector& expected,
                                  const BitVector& decoded, double alpha) {
  const MatchStats stats = MatchWatermark(expected, decoded);
  OwnershipDecision decision;
  decision.matched_bits = stats.matched_bits;
  decision.p_value = stats.false_match_probability;
  decision.significance = alpha;
  decision.threshold = RequiredMatchThreshold(expected.size(), alpha);
  decision.owned = stats.matched_bits >= decision.threshold;
  return decision;
}

}  // namespace catmark
