#ifndef CATMARK_CORE_CODEC_H_
#define CATMARK_CORE_CODEC_H_

#include <cstdint>

#include "core/params.h"
#include "crypto/keyed_hash.h"
#include "crypto/prf.h"
#include "relation/value.h"

namespace catmark {

/// The tuple "fitness" criterion (Section 3.2.1): a tuple T is fit for
/// encoding iff H(T(K), k1) mod e == 0. Wraps a KeyedHasher so the Value
/// serialization is done in one place.
class FitnessSelector {
 public:
  FitnessSelector(const SecretKey& k1, std::uint64_t e,
                  HashAlgorithm algo = HashAlgorithm::kSha256);

  /// H(key_value, k1).
  std::uint64_t KeyHash(const Value& key_value) const;

  /// H(key_value, k1), serializing into the caller's reusable buffer — the
  /// allocation-free variant the per-thread pipeline loops use.
  std::uint64_t KeyHash(const Value& key_value, HashScratch& scratch) const;

  /// H(key_value, k1) mod e == 0.
  bool IsFit(const Value& key_value) const {
    return KeyHash(key_value) % e_ == 0;
  }

  std::uint64_t e() const { return e_; }

 private:
  KeyedHasher hasher_;
  std::uint64_t e_;
};

/// Keyed hash of an arbitrary Value (used with k2 for bit positions and by
/// the frequency-domain channel for category grouping).
std::uint64_t HashValue(const KeyedHasher& hasher, const Value& v);

/// As above, but serializes into `scratch` (cleared first) so tight loops
/// reuse one buffer per thread instead of allocating per call.
std::uint64_t HashValue(const KeyedHasher& hasher, const Value& v,
                        HashScratch& scratch);

/// PRF-backend variant: the same canonical Value serialization fed through
/// a KeyedPrf, so a "keyed-hash" PRF produces bit-identical results to the
/// KeyedHasher overloads above. The row-at-a-time channels (incremental
/// inserts, additive-attack injection) use this; the bulk pipelines batch
/// through KeyedPrf::Hash64Column instead.
std::uint64_t HashValue(const KeyedPrf& prf, const Value& v,
                        HashScratch& scratch);

/// Maps a 64-bit hash to a wm_data index in [0, L).
std::size_t PayloadIndexFromHash(std::uint64_t h, std::size_t payload_len,
                                 BitIndexMode mode);

/// Selects the new attribute value index t in [0, nA) (Section 3.2.1):
/// a keyed-hash-derived base index with its least significant bit forced to
/// `bit`. When forcing the LSB would leave the domain (t == nA), t is pulled
/// back by 2, which preserves the LSB. Requires nA >= 2.
std::size_t SelectValueIndex(std::uint64_t h1, std::size_t domain_size,
                             int bit);

/// Reads the embedded bit back: t & 1 (Section 3.2.2).
inline int ExtractBitFromValueIndex(std::size_t t) {
  return static_cast<int>(t & 1u);
}

}  // namespace catmark

#endif  // CATMARK_CORE_CODEC_H_
