#ifndef CATMARK_EXP_HARNESS_H_
#define CATMARK_EXP_HARNESS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/embedder.h"
#include "core/params.h"
#include "crypto/prf.h"
#include "relation/relation.h"

namespace catmark {

/// Shared configuration of the paper-figure experiments (Section 5). The
/// paper: 10-bit watermark, all data points averaged over 15 passes each
/// seeded with a different key; samples of the Wal-Mart ItemScan relation.
/// Section 4.4's worked example uses N = 6000, which matches the figures'
/// dynamic ranges (see EXPERIMENTS.md), so N defaults to 6000.
///
/// Environment overrides: CATMARK_N, CATMARK_PASSES, CATMARK_DOMAIN, and
/// CATMARK_FULL=1 (N=141000 — the paper's maximum sample size).
struct ExperimentConfig {
  std::size_t num_tuples = 6000;
  std::size_t domain_size = 1000;
  double zipf_s = 1.0;
  std::size_t wm_bits = 10;
  std::size_t passes = 15;
  std::uint64_t base_seed = 20040301;  // ICDE 2004, March

  /// Keyed-PRF backend override for every embed/detect the experiment runs.
  /// nullopt = auto (CATMARK_PRF when set, else the legacy keyed hash) —
  /// same resolution as WatermarkParams::prf, which RunAveragedTrial feeds
  /// it into.
  std::optional<PrfKind> prf;

  /// When non-empty, benches that materialize a marked relation save it
  /// here via SaveRelation (`.catm` = binary columnar, else CSV) — a
  /// one-flag way to produce format fixtures from any experiment setup.
  std::string dump_relation;

  static ExperimentConfig FromEnv();

  /// FromEnv() plus command-line overrides: --n=<tuples>, --passes=<k>,
  /// --domain=<size>, --wm-bits=<b>, --zipf=<s>, --seed=<s>,
  /// --prf=<backend>, --dump-relation=<path>. Flags win over the
  /// environment, so CI can smoke-run
  /// every bench with a tiny `--n ... --passes 1` regardless of the ambient
  /// configuration. Unknown flags (and unregistered --prf backends) abort
  /// with a usage message; --help prints it and exits.
  static ExperimentConfig FromArgs(int argc, char** argv);
};

/// An attack to run between embed and detect: (marked relation, seed) ->
/// attacked relation.
using AttackFn =
    std::function<Result<Relation>(const Relation&, std::uint64_t)>;

/// Mean/stddev over passes of the watermark alteration (in %), plus channel
/// diagnostics.
struct TrialOutcome {
  double mean_alteration_pct = 0.0;   ///< the figures' y-axis
  double stddev_alteration_pct = 0.0;
  double mean_payload_fill = 0.0;     ///< fraction of wm_data positions seen
  double mean_embed_alteration_pct = 0.0;  ///< data altered by embedding (%)
  std::size_t passes = 0;
};

/// Runs `passes` embed -> attack -> detect cycles on the standard keyed
/// categorical relation, a fresh key set and watermark per pass, and
/// averages the mark alteration — the protocol behind Figures 4-7.
TrialOutcome RunAveragedTrial(const ExperimentConfig& config,
                              const WatermarkParams& params,
                              const AttackFn& attack);

/// Deterministic pseudo-random watermark for pass `pass`.
BitVector MakeWatermark(std::size_t bits, std::uint64_t seed);

/// Plain-text table helpers so every bench prints uniform, diffable output.
void PrintTableTitle(const std::string& title);
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
std::string FormatDouble(double v, int precision = 2);

}  // namespace catmark

#endif  // CATMARK_EXP_HARNESS_H_
