#include "exp/harness.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "core/detector.h"
#include "core/keys.h"
#include "gen/sales_gen.h"
#include "random/rng.h"
#include "random/stats.h"

namespace catmark {

namespace {

std::size_t EnvSizeT(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

[[noreturn]] void PrintUsageAndExit(const char* argv0, int exit_code) {
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "Usage: %s [--n=<tuples>] [--passes=<k>] [--domain=<size>]\n"
      "          [--wm-bits=<b>] [--zipf=<s>] [--seed=<s>]\n"
      "          [--prf=<%s>]\n"
      "          [--dump-relation=<path.csv|path.catm>] [--help]\n"
      "Flags override the CATMARK_N / CATMARK_PASSES / CATMARK_DOMAIN /\n"
      "CATMARK_FULL / CATMARK_PRF environment variables.\n",
      argv0, RegisteredPrfNameList().c_str());
  std::exit(exit_code);
}

std::size_t ParseSizeTOrDie(const char* flag, const char* value,
                            const char* argv0) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  // Leading digit required: strtoull itself would skip whitespace and
  // wrap negative input through 2^64.
  if (!std::isdigit(static_cast<unsigned char>(*value)) || end == nullptr ||
      *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "Invalid value for %s: '%s'\n", flag, value);
    PrintUsageAndExit(argv0, 2);
  }
  return static_cast<std::size_t>(parsed);
}

double ParseDoubleOrDie(const char* flag, const char* value,
                        const char* argv0) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (*value == '\0' || end == nullptr || *end != '\0') {
    std::fprintf(stderr, "Invalid value for %s: '%s'\n", flag, value);
    PrintUsageAndExit(argv0, 2);
  }
  return parsed;
}

/// Matches `--name=value` or `--name value` (consuming the next argv slot);
/// returns nullptr when `arg` is not `name`.
const char* FlagValue(const char* name, int argc, char** argv, int* i) {
  const char* arg = argv[*i];
  const std::size_t name_len = std::strlen(name);
  if (std::strncmp(arg, name, name_len) != 0) return nullptr;
  if (arg[name_len] == '=') return arg + name_len + 1;
  if (arg[name_len] == '\0') {
    if (*i + 1 >= argc) PrintUsageAndExit(argv[0], 2);
    return argv[++*i];
  }
  return nullptr;
}

}  // namespace

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig config;
  const char* full = std::getenv("CATMARK_FULL");
  if (full != nullptr && full[0] == '1') {
    config.num_tuples = 141000;  // the paper's maximum ItemScan sample
  }
  config.num_tuples = EnvSizeT("CATMARK_N", config.num_tuples);
  config.passes = EnvSizeT("CATMARK_PASSES", config.passes);
  config.domain_size = EnvSizeT("CATMARK_DOMAIN", config.domain_size);
  return config;
}

ExperimentConfig ExperimentConfig::FromArgs(int argc, char** argv) {
  ExperimentConfig config = FromEnv();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintUsageAndExit(argv[0], 0);
    }
    const char* value = nullptr;
    if ((value = FlagValue("--n", argc, argv, &i)) != nullptr) {
      config.num_tuples = ParseSizeTOrDie("--n", value, argv[0]);
    } else if ((value = FlagValue("--passes", argc, argv, &i)) != nullptr) {
      config.passes = ParseSizeTOrDie("--passes", value, argv[0]);
    } else if ((value = FlagValue("--domain", argc, argv, &i)) != nullptr) {
      config.domain_size = ParseSizeTOrDie("--domain", value, argv[0]);
    } else if ((value = FlagValue("--wm-bits", argc, argv, &i)) != nullptr) {
      config.wm_bits = ParseSizeTOrDie("--wm-bits", value, argv[0]);
    } else if ((value = FlagValue("--zipf", argc, argv, &i)) != nullptr) {
      config.zipf_s = ParseDoubleOrDie("--zipf", value, argv[0]);
    } else if ((value = FlagValue("--seed", argc, argv, &i)) != nullptr) {
      config.base_seed = ParseSizeTOrDie("--seed", value, argv[0]);
    } else if ((value = FlagValue("--prf", argc, argv, &i)) != nullptr) {
      const Result<PrfKind> prf = PrfKindFromName(value);
      if (!prf.ok()) {
        std::fprintf(stderr, "%s\n", prf.status().ToString().c_str());
        PrintUsageAndExit(argv[0], 2);
      }
      config.prf = prf.value();
    } else if ((value = FlagValue("--dump-relation", argc, argv, &i)) !=
               nullptr) {
      config.dump_relation = value;
    } else {
      std::fprintf(stderr, "Unknown flag: %s\n", argv[i]);
      PrintUsageAndExit(argv[0], 2);
    }
  }
  if (config.num_tuples == 0 || config.passes == 0 || config.domain_size < 2 ||
      config.wm_bits == 0 || !(config.zipf_s >= 0.0)) {
    std::fprintf(stderr, "Invalid configuration: need n > 0, passes > 0, "
                         "domain >= 2, wm-bits > 0, zipf >= 0\n");
    std::exit(2);
  }
  return config;
}

BitVector MakeWatermark(std::size_t bits, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return BitVector::FromGenerator(bits, [&] { return rng.Next(); });
}

TrialOutcome RunAveragedTrial(const ExperimentConfig& config,
                              const WatermarkParams& params,
                              const AttackFn& attack) {
  // One data set per configuration (the paper watermarks the same sample
  // with 15 different keys to smooth data-dependent biases).
  KeyedCategoricalConfig gen;
  gen.num_tuples = config.num_tuples;
  gen.domain_size = config.domain_size;
  gen.zipf_s = config.zipf_s;
  gen.seed = config.base_seed;
  const Relation original = GenerateKeyedCategorical(gen);

  // The config-level PRF override wins over whatever the caller's params
  // say; otherwise params flow through untouched (auto resolution included).
  WatermarkParams effective_params = params;
  if (config.prf.has_value()) effective_params.prf = config.prf;

  std::vector<double> alterations;
  double fill_sum = 0.0;
  double embed_alteration_sum = 0.0;

  for (std::size_t pass = 0; pass < config.passes; ++pass) {
    const std::uint64_t pass_seed = config.base_seed + 7919 * (pass + 1);
    const WatermarkKeySet keys = WatermarkKeySet::FromSeed(pass_seed);
    const BitVector wm = MakeWatermark(config.wm_bits, pass_seed ^ 0xabcdef);

    Relation marked = original;
    const Embedder embedder(keys, effective_params);
    EmbedOptions embed_options;
    embed_options.key_attr = "K";
    embed_options.target_attr = "A";
    Result<EmbedReport> embed_report =
        embedder.Embed(marked, embed_options, wm);
    CATMARK_CHECK(embed_report.ok()) << embed_report.status().ToString();

    Result<Relation> attacked = attack(marked, pass_seed ^ 0x5eed);
    CATMARK_CHECK(attacked.ok()) << attacked.status().ToString();

    const Detector detector(keys, effective_params);
    DetectOptions detect_options;
    detect_options.key_attr = "K";
    detect_options.target_attr = "A";
    detect_options.payload_length = embed_report.value().payload_length;
    detect_options.domain = embed_report.value().domain;
    Result<DetectionResult> detection =
        detector.Detect(attacked.value(), detect_options, config.wm_bits);
    CATMARK_CHECK(detection.ok()) << detection.status().ToString();

    const MatchStats match = MatchWatermark(wm, detection.value().wm);
    alterations.push_back(match.mark_alteration * 100.0);
    fill_sum += detection.value().payload_fill;
    embed_alteration_sum += embed_report.value().alteration_fraction * 100.0;
  }

  const MeanStd ms = ComputeMeanStd(alterations);
  TrialOutcome outcome;
  outcome.mean_alteration_pct = ms.mean;
  outcome.stddev_alteration_pct = ms.stddev;
  outcome.mean_payload_fill =
      fill_sum / static_cast<double>(config.passes);
  outcome.mean_embed_alteration_pct =
      embed_alteration_sum / static_cast<double>(config.passes);
  outcome.passes = config.passes;
  return outcome;
}

void PrintTableTitle(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%-18s", i == 0 ? "" : " ", columns[i].c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%-18s", i == 0 ? "" : " ", "------------------");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%-18s", i == 0 ? "" : " ", cells[i].c_str());
  }
  std::printf("\n");
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace catmark
