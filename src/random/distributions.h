#ifndef CATMARK_RANDOM_DISTRIBUTIONS_H_
#define CATMARK_RANDOM_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "random/rng.h"

namespace catmark {

/// Zipf(s) distribution over {0, ..., n-1}: P(k) ∝ 1/(k+1)^s.
/// Models the skewed popularity of product codes / departure cities that the
/// paper's frequency-domain arguments rely on ("often unlikely [uniform],
/// imagine airport or product codes", Section 4.2). Sampling is O(log n) via
/// binary search over the precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

  /// Draws one sample in [0, n).
  std::size_t Sample(Xoshiro256ss& rng) const;

  /// Probability mass of rank k.
  double Pmf(std::size_t k) const;

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[k] = P(X <= k)
};

/// Arbitrary discrete distribution given (unnormalized) non-negative
/// weights; O(1) sampling via Walker's alias method. Used to draw values
/// that "conform to the overall data distribution" for stealthy tuple
/// injection (Section 4.6) and for the A2 subset-addition attack.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(const std::vector<double>& weights);

  std::size_t n() const { return prob_.size(); }
  std::size_t Sample(Xoshiro256ss& rng) const;

  /// Normalized probability of outcome k.
  double Probability(std::size_t k) const { return normalized_[k]; }

 private:
  std::vector<double> prob_;        // alias-method cell probability
  std::vector<std::uint32_t> alias_;
  std::vector<double> normalized_;
};

/// Standard normal variate via Marsaglia polar method.
double SampleStandardNormal(Xoshiro256ss& rng);

/// In-place Fisher–Yates shuffle.
template <typename T>
void Shuffle(std::vector<T>& v, Xoshiro256ss& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.NextBounded(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// Uniform sample of `k` distinct indices out of [0, n) (k <= n), in
/// selection order. Floyd's algorithm + shuffle; O(k) expected.
std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k,
                                                  Xoshiro256ss& rng);

}  // namespace catmark

#endif  // CATMARK_RANDOM_DISTRIBUTIONS_H_
