#include "random/rng.h"

#include "common/check.h"

namespace catmark {

std::uint64_t Xoshiro256ss::NextBounded(std::uint64_t bound) {
  CATMARK_CHECK_GE(bound, 1u);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` below 2^64, then reduce.
  const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
  while (true) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace catmark
