#include "random/distributions.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace catmark {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  CATMARK_CHECK_GE(n, 1u);
  CATMARK_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::Sample(Xoshiro256ss& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(std::size_t k) const {
  CATMARK_CHECK_LT(k, cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

DiscreteDistribution::DiscreteDistribution(
    const std::vector<double>& weights) {
  CATMARK_CHECK(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    CATMARK_CHECK_GE(w, 0.0);
    total += w;
  }
  CATMARK_CHECK_GT(total, 0.0) << "all weights zero";

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Walker's alias method setup.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t DiscreteDistribution::Sample(Xoshiro256ss& rng) const {
  const std::size_t cell = rng.NextBounded(prob_.size());
  return rng.NextDouble() < prob_[cell] ? cell : alias_[cell];
}

double SampleStandardNormal(Xoshiro256ss& rng) {
  // Marsaglia polar method (one of the pair is discarded for simplicity).
  while (true) {
    const double u = 2.0 * rng.NextDouble() - 1.0;
    const double v = 2.0 * rng.NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k,
                                                  Xoshiro256ss& rng) {
  CATMARK_CHECK_LE(k, n);
  // Floyd's algorithm yields a uniform k-subset; final shuffle uniformizes
  // the order as well.
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = rng.NextBounded(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  Shuffle(out, rng);
  return out;
}

}  // namespace catmark
