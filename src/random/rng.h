#ifndef CATMARK_RANDOM_RNG_H_
#define CATMARK_RANDOM_RNG_H_

#include <cstdint>

namespace catmark {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to expand a single
/// user seed into independent stream seeds (and as the seeding stage for
/// Xoshiro256ss). Reference: Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators".
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the library's workhorse deterministic PRNG. All
/// experiment randomness (data generation, attacks, pass keys) flows through
/// explicitly seeded instances of this class, making every run reproducible.
class Xoshiro256ss {
 public:
  /// Seeds the four state words via SplitMix64(seed).
  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next 64 uniformly distributed bits.
  std::uint64_t Next() {
    const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = RotL(state_[3], 45);
    return result;
  }

  /// std::uniform_random_bit_generator interface.
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound), bound >= 1. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t RotL(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace catmark

#endif  // CATMARK_RANDOM_RNG_H_
