#include "random/stats.h"

#include <cmath>

#include "common/check.h"

namespace catmark {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  CATMARK_CHECK(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Newton refinement step.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  return x - u / (1.0 + x * u / 2.0);
}

double LogBinomialCoefficient(std::uint64_t n, std::uint64_t k) {
  CATMARK_CHECK_LE(k, n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double BinomialTailAtLeast(std::uint64_t n, std::uint64_t r, double p) {
  CATMARK_CHECK(p >= 0.0 && p <= 1.0);
  if (r == 0) return 1.0;
  if (r > n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  const double logp = std::log(p);
  const double log1mp = std::log1p(-p);
  double sum = 0.0;
  for (std::uint64_t i = r; i <= n; ++i) {
    const double logterm = LogBinomialCoefficient(n, i) +
                           static_cast<double>(i) * logp +
                           static_cast<double>(n - i) * log1mp;
    sum += std::exp(logterm);
  }
  return sum > 1.0 ? 1.0 : sum;
}

double BinomialTailNormalApprox(std::uint64_t n, std::uint64_t r, double p) {
  CATMARK_CHECK(p > 0.0 && p < 1.0);
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(static_cast<double>(n) * p * (1.0 - p));
  if (sd == 0.0) return static_cast<double>(r) <= mean ? 1.0 : 0.0;
  // f(ΣXi) = (ΣXi − n·p) / sqrt(n·p·(1−p)) ~ N(0,1)  (paper eq. 2);
  // P[ΣXi >= r] = 1 − Φ(f(r)).
  const double z = (static_cast<double>(r) - mean) / sd;
  return 1.0 - NormalCdf(z);
}

MeanStd ComputeMeanStd(const std::vector<double>& xs) {
  MeanStd out;
  if (xs.empty()) return out;
  double sum = 0.0;
  for (double x : xs) sum += x;
  out.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - out.mean) * (x - out.mean);
  out.stddev = std::sqrt(ss / static_cast<double>(xs.size()));
  return out;
}

}  // namespace catmark
