#ifndef CATMARK_RANDOM_STATS_H_
#define CATMARK_RANDOM_STATS_H_

#include <cstdint>
#include <vector>

namespace catmark {

/// Standard normal CDF Φ(x).
double NormalCdf(double x);

/// Standard normal quantile Φ⁻¹(p), p in (0,1). Acklam's rational
/// approximation refined by one Newton step; |error| < 1e-9.
double NormalQuantile(double p);

/// log(n choose k) via lgamma; exact enough for tail sums up to n ~ 1e6.
double LogBinomialCoefficient(std::uint64_t n, std::uint64_t k);

/// Exact upper tail P[X >= r] for X ~ Binomial(n, p), summed in log space.
double BinomialTailAtLeast(std::uint64_t n, std::uint64_t r, double p);

/// Normal (CLT) approximation to P[X >= r], X ~ Binomial(n, p) — the
/// approximation the paper applies in Section 4.4 (equation 2).
double BinomialTailNormalApprox(std::uint64_t n, std::uint64_t r, double p);

/// Sample mean and (population) standard deviation.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& xs);

}  // namespace catmark

#endif  // CATMARK_RANDOM_STATS_H_
