#ifndef CATMARK_GEN_SALES_GEN_H_
#define CATMARK_GEN_SALES_GEN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "relation/relation.h"

namespace catmark {

/// Configuration for the synthetic Wal-Mart-style sales relation. The paper
/// evaluated on `UnivClassTables.ItemScan` samples of up to 141 000 tuples
/// with schema (Visit_Nbr INTEGER PRIMARY KEY, Item_Nbr INTEGER NOT NULL);
/// we reproduce that shape synthetically (see DESIGN.md §4 for why this
/// substitution preserves the evaluated behaviour) and add auxiliary
/// attributes for the multi-attribute experiments.
struct SalesGenConfig {
  std::size_t num_tuples = 6000;

  /// Distinct Item_Nbr codes (the categorical domain size nA).
  std::size_t num_items = 1000;

  /// Zipf skew of item popularity; 0 = uniform. Real product-code
  /// frequencies are heavily skewed, which the frequency-domain channel
  /// depends on (Section 4.2).
  double item_zipf_s = 1.0;

  std::size_t num_stores = 50;
  std::size_t num_departments = 18;

  std::uint64_t seed = 42;

  /// When true, Visit_Nbr values are sparse random integers (realistic);
  /// when false, sequential 1..N.
  bool sparse_visit_numbers = true;
};

/// Generates the ItemScan-like relation:
///   Visit_Nbr   INT64  PRIMARY KEY
///   Item_Nbr    INT64  CATEGORICAL   (watermark target, Zipf popularity)
///   Store_Nbr   INT64  CATEGORICAL
///   Dept_Desc   STRING CATEGORICAL
///   Unit_Qty    INT64
///   Sale_Amount DOUBLE
Relation GenerateItemScan(const SalesGenConfig& config);

/// Minimal two-column configuration used by most figure benches.
struct KeyedCategoricalConfig {
  std::size_t num_tuples = 6000;
  std::size_t domain_size = 1000;  ///< nA
  double zipf_s = 1.0;
  std::uint64_t seed = 42;
};

/// Generates a (K INT64 PRIMARY KEY, A STRING CATEGORICAL) relation; A's
/// values are "V0000".."Vnnnn" with Zipf-distributed popularity assigned in
/// a shuffled order (so popularity rank does not correlate with the sorted
/// domain index).
Relation GenerateKeyedCategorical(const KeyedCategoricalConfig& config);

/// Generate-and-save conveniences: write the relation straight to `path`,
/// format chosen by extension (`.catm` = binary columnar, else CSV).
/// Returns the number of tuples written.
Result<std::size_t> GenerateItemScanFile(const SalesGenConfig& config,
                                         const std::string& path);
Result<std::size_t> GenerateKeyedCategoricalFile(
    const KeyedCategoricalConfig& config, const std::string& path);

}  // namespace catmark

#endif  // CATMARK_GEN_SALES_GEN_H_
