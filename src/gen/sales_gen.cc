#include "gen/sales_gen.h"

#include <string>
#include <unordered_set>

#include "common/check.h"
#include "common/str_util.h"
#include "random/distributions.h"
#include "random/rng.h"
#include "relation/catm_io.h"

namespace catmark {

namespace {

constexpr const char* kDepartmentNames[] = {
    "GROCERY",   "DAIRY",       "PRODUCE",    "MEAT",       "BAKERY",
    "FROZEN",    "PHARMACY",    "ELECTRONICS", "TOYS",      "APPAREL",
    "HARDWARE",  "AUTOMOTIVE",  "GARDEN",     "SPORTING",   "STATIONERY",
    "JEWELRY",   "FURNITURE",   "COSMETICS",  "PETS",       "SEASONAL"};

/// `count` distinct random integers in [low, high); sorted output.
std::vector<std::int64_t> DistinctInts(std::size_t count, std::int64_t low,
                                       std::int64_t high, Xoshiro256ss& rng) {
  CATMARK_CHECK_GT(high, low);
  CATMARK_CHECK_GE(static_cast<std::uint64_t>(high - low), count);
  std::unordered_set<std::int64_t> seen;
  std::vector<std::int64_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const std::int64_t v =
        low + static_cast<std::int64_t>(
                  rng.NextBounded(static_cast<std::uint64_t>(high - low)));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

/// Zipf weights assigned to domain positions in shuffled order, so that the
/// popularity rank does not correlate with the sorted index.
DiscreteDistribution ShuffledZipf(std::size_t n, double s,
                                  Xoshiro256ss& rng) {
  const ZipfDistribution zipf(n, s);
  std::vector<double> weights(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  Shuffle(order, rng);
  for (std::size_t rank = 0; rank < n; ++rank) {
    weights[order[rank]] = zipf.Pmf(rank);
  }
  return DiscreteDistribution(weights);
}

}  // namespace

Relation GenerateItemScan(const SalesGenConfig& config) {
  CATMARK_CHECK_GE(config.num_items, 2u);
  CATMARK_CHECK_GE(config.num_stores, 1u);
  CATMARK_CHECK_GE(config.num_departments, 1u);
  Xoshiro256ss rng(config.seed);

  Result<Schema> schema = Schema::Create(
      {{"Visit_Nbr", ColumnType::kInt64, false},
       {"Item_Nbr", ColumnType::kInt64, true},
       {"Store_Nbr", ColumnType::kInt64, true},
       {"Dept_Desc", ColumnType::kString, true},
       {"Unit_Qty", ColumnType::kInt64, false},
       {"Sale_Amount", ColumnType::kDouble, false}},
      "Visit_Nbr");
  CATMARK_CHECK(schema.ok());

  // Product codes: 6-7 digit distinct integers, realistic Item_Nbr shapes.
  const std::vector<std::int64_t> item_codes =
      DistinctInts(config.num_items, 100000, 10000000, rng);
  const DiscreteDistribution item_dist =
      ShuffledZipf(config.num_items, config.item_zipf_s, rng);

  // Store popularity mildly skewed.
  const DiscreteDistribution store_dist =
      ShuffledZipf(config.num_stores, 0.5, rng);

  const std::size_t dept_count =
      std::min(config.num_departments,
               sizeof(kDepartmentNames) / sizeof(kDepartmentNames[0]));
  const DiscreteDistribution dept_dist = ShuffledZipf(dept_count, 0.8, rng);

  std::vector<std::int64_t> visit_numbers;
  if (config.sparse_visit_numbers) {
    visit_numbers = DistinctInts(config.num_tuples, 1, 1LL << 40, rng);
    Shuffle(visit_numbers, rng);
  } else {
    visit_numbers.resize(config.num_tuples);
    for (std::size_t i = 0; i < config.num_tuples; ++i) {
      visit_numbers[i] = static_cast<std::int64_t>(i + 1);
    }
  }

  Relation rel(std::move(schema).value());
  rel.Reserve(config.num_tuples);
  for (std::size_t i = 0; i < config.num_tuples; ++i) {
    const std::size_t item = item_dist.Sample(rng);
    const std::size_t store = store_dist.Sample(rng);
    const std::size_t dept = dept_dist.Sample(rng);
    const std::int64_t qty = 1 + static_cast<std::int64_t>(rng.NextBounded(9));
    const double amount =
        static_cast<double>(rng.NextBounded(10000)) / 100.0 + 0.99;
    rel.AppendRowUnchecked(
        {Value(visit_numbers[i]), Value(item_codes[item]),
         Value(static_cast<std::int64_t>(store + 1)),
         Value(std::string(kDepartmentNames[dept])), Value(qty),
         Value(amount)});
  }
  return rel;
}

Relation GenerateKeyedCategorical(const KeyedCategoricalConfig& config) {
  CATMARK_CHECK_GE(config.domain_size, 2u);
  Xoshiro256ss rng(config.seed);

  Result<Schema> schema = Schema::Create(
      {{"K", ColumnType::kInt64, false}, {"A", ColumnType::kString, true}},
      "K");
  CATMARK_CHECK(schema.ok());

  // Domain labels "V0000".."Vnnnn" (zero-padded so byte order == rank order).
  int digits = 1;
  for (std::size_t v = config.domain_size; v >= 10; v /= 10) ++digits;
  std::vector<std::string> labels(config.domain_size);
  for (std::size_t i = 0; i < config.domain_size; ++i) {
    std::string num = std::to_string(i);
    labels[i] =
        "V" + std::string(static_cast<std::size_t>(digits) - num.size(), '0') +
        num;
  }

  const DiscreteDistribution dist =
      ShuffledZipf(config.domain_size, config.zipf_s, rng);

  std::vector<std::int64_t> keys =
      DistinctInts(config.num_tuples, 1, 1LL << 40, rng);

  Relation rel(std::move(schema).value());
  rel.Reserve(config.num_tuples);
  for (std::size_t i = 0; i < config.num_tuples; ++i) {
    rel.AppendRowUnchecked(
        {Value(keys[i]), Value(labels[dist.Sample(rng)])});
  }
  return rel;
}

Result<std::size_t> GenerateItemScanFile(const SalesGenConfig& config,
                                         const std::string& path) {
  const Relation rel = GenerateItemScan(config);
  CATMARK_RETURN_IF_ERROR(SaveRelation(rel, path));
  return rel.NumRows();
}

Result<std::size_t> GenerateKeyedCategoricalFile(
    const KeyedCategoricalConfig& config, const std::string& path) {
  const Relation rel = GenerateKeyedCategorical(config);
  CATMARK_RETURN_IF_ERROR(SaveRelation(rel, path));
  return rel.NumRows();
}

}  // namespace catmark
