#ifndef CATMARK_QUALITY_ROLLBACK_H_
#define CATMARK_QUALITY_ROLLBACK_H_

#include <vector>

#include "common/status.h"
#include "quality/constraint.h"
#include "relation/relation.h"

namespace catmark {

/// Alteration rollback log (Figure 3): records every applied cell change so
/// that alterations violating quality constraints — or an entire embedding
/// pass — can be undone.
class RollbackLog {
 public:
  /// Records an applied alteration.
  void Record(AlterationEvent event) { entries_.push_back(std::move(event)); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const AlterationEvent& entry(std::size_t i) const { return entries_[i]; }

  /// Undoes the most recent alteration on `relation` and drops it from the
  /// log. Fails when empty.
  Status UndoLast(Relation& relation);

  /// Undoes everything, most recent first, leaving the log empty.
  Status UndoAll(Relation& relation);

  void Clear() { entries_.clear(); }

 private:
  std::vector<AlterationEvent> entries_;
};

}  // namespace catmark

#endif  // CATMARK_QUALITY_ROLLBACK_H_
