#ifndef CATMARK_QUALITY_CONSTRAINT_LANG_H_
#define CATMARK_QUALITY_CONSTRAINT_LANG_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "quality/assessor.h"

namespace catmark {

/// A small declarative language for data-quality constraints — the "generic
/// language (possibly subset of SQL) able to naturally express such
/// constraints and their propagation at embedding time" that the paper's
/// conclusions propose. Each statement compiles to one usability-metric
/// plugin registered on a QualityAssessor.
///
/// Grammar (case-insensitive keywords; statements end with ';'; `--`
/// comments run to end of line):
///
///   MAX ALTERATIONS <number>[%] ;
///   MAX DRIFT ON <column> <number>[%] ;
///   MIN COUNT ON <column> <integer> ;
///   FORBID ON <column> ( <literal> [, <literal>]* ) ;
///   PRESERVE COUNT WHERE <column> = <literal> TOLERANCE <number>[%] ;
///   PRESERVE CONFIDENCE OF <column> = <literal>
///       GIVEN <column> = <literal> TOLERANCE <number>[%] ;
///
/// Literals are single-quoted strings ('GROCERY'), integers (42) or
/// decimals (3.5). `<number>%` divides by 100.
///
/// Example:
///   -- marking budget and catalogue invariants for the sales feed
///   MAX ALTERATIONS 2%;
///   MAX DRIFT ON Item_Nbr 0.05;
///   MIN COUNT ON Item_Nbr 1;
///   PRESERVE COUNT WHERE Dept_Desc = 'GROCERY' TOLERANCE 5%;
///   PRESERVE CONFIDENCE OF Dept_Desc = 'DAIRY'
///       GIVEN Store_Nbr = 7 TOLERANCE 10%;
///
/// Column types are resolved against `schema`: a bare integer literal
/// compared against a STRING column parses as the string, etc.
Result<std::size_t> CompileConstraints(std::string_view source,
                                       const Schema& schema,
                                       QualityAssessor& assessor);

}  // namespace catmark

#endif  // CATMARK_QUALITY_CONSTRAINT_LANG_H_
