#ifndef CATMARK_QUALITY_PLUGINS_H_
#define CATMARK_QUALITY_PLUGINS_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "quality/constraint.h"
#include "relation/domain.h"
#include "relation/histogram.h"

namespace catmark {

/// Caps the total number of accepted alterations. The paper recommends this
/// as the baseline constraint every deployment should start from: "a
/// practical approach would be to begin by specifying an upper bound on the
/// percentage of allowable data alterations" (Section 4.1, footnote).
class MaxAlterationsPlugin final : public UsabilityMetricPlugin {
 public:
  /// `max_fraction` of the relation's tuples may be altered (0..1).
  explicit MaxAlterationsPlugin(double max_fraction)
      : max_fraction_(max_fraction) {}

  std::string_view Name() const override { return "max-alterations"; }
  Status Begin(const Relation& relation) override;
  Status OnAlteration(const Relation& relation,
                      const AlterationEvent& event) override;
  void OnRollback(const Relation& relation,
                  const AlterationEvent& event) override;

  std::size_t accepted() const { return accepted_; }
  std::size_t budget() const { return budget_; }

 private:
  double max_fraction_;
  std::size_t budget_ = 0;
  std::size_t accepted_ = 0;
};

/// Bounds the L1 drift of a categorical attribute's occurrence-frequency
/// histogram (mining models trained on value distributions survive).
class HistogramDriftPlugin final : public UsabilityMetricPlugin {
 public:
  HistogramDriftPlugin(std::string column, double max_l1_drift)
      : column_(std::move(column)), max_l1_drift_(max_l1_drift) {}

  std::string_view Name() const override { return "histogram-drift"; }
  Status Begin(const Relation& relation) override;
  Status OnAlteration(const Relation& relation,
                      const AlterationEvent& event) override;
  void OnRollback(const Relation& relation,
                  const AlterationEvent& event) override;

  double current_drift() const;

 private:
  std::string column_;
  double max_l1_drift_;
  std::size_t col_index_ = 0;
  CategoricalDomain domain_;
  std::vector<std::size_t> baseline_counts_;
  std::vector<std::size_t> current_counts_;
  std::size_t total_ = 0;
};

/// Refuses to empty out (or nearly empty out) any category: each domain
/// value of the column must keep at least `min_count` occurrences.
/// Protects GROUP BY / classification semantics.
class MinCategoryCountPlugin final : public UsabilityMetricPlugin {
 public:
  MinCategoryCountPlugin(std::string column, std::size_t min_count)
      : column_(std::move(column)), min_count_(min_count) {}

  std::string_view Name() const override { return "min-category-count"; }
  Status Begin(const Relation& relation) override;
  Status OnAlteration(const Relation& relation,
                      const AlterationEvent& event) override;
  void OnRollback(const Relation& relation,
                  const AlterationEvent& event) override;

 private:
  std::string column_;
  std::size_t min_count_;
  std::size_t col_index_ = 0;
  CategoricalDomain domain_;
  std::vector<std::size_t> counts_;
};

/// Vetoes alterations that would introduce semantically forbidden values
/// into a column (e.g. a discontinued product code). Models the "semantic
/// consistency issues" of Section 2.3/A3.
class ForbiddenValuePlugin final : public UsabilityMetricPlugin {
 public:
  ForbiddenValuePlugin(std::string column, std::vector<Value> forbidden);

  std::string_view Name() const override { return "forbidden-value"; }
  Status Begin(const Relation& relation) override;
  Status OnAlteration(const Relation& relation,
                      const AlterationEvent& event) override;
  void OnRollback(const Relation& /*relation*/,
                  const AlterationEvent& /*event*/) override {}

 private:
  std::string column_;
  std::set<Value> forbidden_;
  std::size_t col_index_ = 0;
};

}  // namespace catmark

#endif  // CATMARK_QUALITY_PLUGINS_H_
