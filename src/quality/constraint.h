#ifndef CATMARK_QUALITY_CONSTRAINT_H_
#define CATMARK_QUALITY_CONSTRAINT_H_

#include <cstddef>
#include <string_view>

#include "common/status.h"
#include "relation/relation.h"
#include "relation/value.h"

namespace catmark {

/// One cell alteration, as offered to usability-metric plugins and recorded
/// in the rollback log.
struct AlterationEvent {
  std::size_t row = 0;
  std::size_t col = 0;
  Value old_value;
  Value new_value;
};

/// A "usability metric plugin" (Figure 3): expresses one property of the
/// database that must be preserved as a constraint on allowable change.
/// The embedding loop re-evaluates the constraint for *every* alteration;
/// a veto (non-OK status, conventionally ConstraintViolation) rolls the
/// alteration back.
class UsabilityMetricPlugin {
 public:
  virtual ~UsabilityMetricPlugin() = default;

  virtual std::string_view Name() const = 0;

  /// Called once with the pristine relation before embedding starts;
  /// captures baselines.
  virtual Status Begin(const Relation& relation) = 0;

  /// Called after `event` has been applied to `relation`. Non-OK return
  /// vetoes the alteration; OnRollback will follow.
  virtual Status OnAlteration(const Relation& relation,
                              const AlterationEvent& event) = 0;

  /// Called when a previously accepted (by this plugin) alteration is being
  /// undone — revert any internal accounting.
  virtual void OnRollback(const Relation& relation,
                          const AlterationEvent& event) = 0;
};

}  // namespace catmark

#endif  // CATMARK_QUALITY_CONSTRAINT_H_
