#include "quality/assessor.h"

#include "common/check.h"

namespace catmark {

void QualityAssessor::AddPlugin(std::unique_ptr<UsabilityMetricPlugin> plugin) {
  CATMARK_CHECK(plugin != nullptr);
  plugins_.push_back(std::move(plugin));
}

Status QualityAssessor::Begin(const Relation& relation) {
  log_.Clear();
  vetoed_ = 0;
  for (auto& p : plugins_) {
    CATMARK_RETURN_IF_ERROR(p->Begin(relation));
  }
  return Status::OK();
}

Status QualityAssessor::ProposeAlteration(Relation& relation, std::size_t row,
                                          std::size_t col, Value new_value) {
  AlterationEvent event;
  event.row = row;
  event.col = col;
  event.old_value = relation.Get(row, col);
  event.new_value = std::move(new_value);

  CATMARK_RETURN_IF_ERROR(relation.Set(row, col, event.new_value));

  for (std::size_t i = 0; i < plugins_.size(); ++i) {
    const Status s = plugins_[i]->OnAlteration(relation, event);
    if (!s.ok()) {
      // Veto: unwind the plugins that already accounted for the change,
      // then restore the cell.
      for (std::size_t j = i; j-- > 0;) {
        plugins_[j]->OnRollback(relation, event);
      }
      const Status undo = relation.Set(row, col, event.old_value);
      CATMARK_CHECK(undo.ok()) << "rollback Set failed: " << undo.ToString();
      ++vetoed_;
      return s;
    }
  }
  log_.Record(std::move(event));
  return Status::OK();
}

Status QualityAssessor::RollbackAll(Relation& relation) {
  // Plugins see rollbacks most recent first, mirroring application order.
  for (std::size_t i = log_.size(); i-- > 0;) {
    const AlterationEvent event = log_.entry(i);
    CATMARK_RETURN_IF_ERROR(log_.UndoLast(relation));
    for (auto& p : plugins_) p->OnRollback(relation, event);
  }
  return Status::OK();
}

}  // namespace catmark
