#include "quality/query_plugins.h"

#include <cmath>

namespace catmark {

// ------------------------------------------------------ QueryPreservation

Status QueryPreservationPlugin::Begin(const Relation& relation) {
  CATMARK_ASSIGN_OR_RETURN(
      col_index_, relation.schema().ColumnIndexOrError(predicate_.column));
  CATMARK_ASSIGN_OR_RETURN(baseline_, CountWhere(relation, predicate_));
  current_ = static_cast<long>(baseline_);
  return Status::OK();
}

bool QueryPreservationPlugin::Violated() const {
  const double base =
      baseline_ > 0 ? static_cast<double>(baseline_) : 1.0;
  return std::abs(static_cast<double>(current_) -
                  static_cast<double>(baseline_)) /
             base >
         tolerance_;
}

Status QueryPreservationPlugin::OnAlteration(const Relation&,
                                             const AlterationEvent& event) {
  if (event.col != col_index_) return Status::OK();
  long delta = 0;
  if (event.old_value == predicate_.value) --delta;
  if (event.new_value == predicate_.value) ++delta;
  if (delta == 0) return Status::OK();
  current_ += delta;
  if (Violated()) {
    current_ -= delta;  // veto path: OnRollback is not called on the vetoer
    return Status::ConstraintViolation(
        "COUNT WHERE " + predicate_.column + " = " +
        predicate_.value.ToString() + " would drift beyond tolerance");
  }
  return Status::OK();
}

void QueryPreservationPlugin::OnRollback(const Relation&,
                                         const AlterationEvent& event) {
  if (event.col != col_index_) return;
  if (event.old_value == predicate_.value) ++current_;
  if (event.new_value == predicate_.value) --current_;
}

// ------------------------------------------------------- AssociationRule

Status AssociationRulePlugin::Begin(const Relation& relation) {
  CATMARK_ASSIGN_OR_RETURN(
      target_col_, relation.schema().ColumnIndexOrError(target_.column));
  CATMARK_ASSIGN_OR_RETURN(
      given_col_, relation.schema().ColumnIndexOrError(given_.column));
  if (target_col_ == given_col_) {
    return Status::InvalidArgument(
        "association rule needs two distinct columns");
  }
  CATMARK_ASSIGN_OR_RETURN(const std::size_t n_given,
                           CountWhere(relation, given_));
  CATMARK_ASSIGN_OR_RETURN(const std::size_t n_both,
                           CountWhereBoth(relation, target_, given_));
  n_given_ = static_cast<long>(n_given);
  n_both_ = static_cast<long>(n_both);
  baseline_confidence_ =
      n_given_ == 0 ? 0.0
                    : static_cast<double>(n_both_) /
                          static_cast<double>(n_given_);
  return Status::OK();
}

double AssociationRulePlugin::current_confidence() const {
  return n_given_ == 0 ? 0.0
                       : static_cast<double>(n_both_) /
                             static_cast<double>(n_given_);
}

void AssociationRulePlugin::Apply(const Relation& relation,
                                  const AlterationEvent& event,
                                  int direction) {
  // `event` has already been applied to `relation`, so the *other* column
  // of the row reads its live value in both apply and revert directions.
  if (event.col == target_col_) {
    const bool given_holds =
        relation.Get(event.row, given_col_) == given_.value;
    if (!given_holds) return;
    const bool was = event.old_value == target_.value;
    const bool is = event.new_value == target_.value;
    n_both_ += direction * ((is ? 1 : 0) - (was ? 1 : 0));
  } else if (event.col == given_col_) {
    const bool target_holds =
        relation.Get(event.row, target_col_) == target_.value;
    const bool was = event.old_value == given_.value;
    const bool is = event.new_value == given_.value;
    const int d = (is ? 1 : 0) - (was ? 1 : 0);
    n_given_ += direction * d;
    if (target_holds) n_both_ += direction * d;
  }
}

Status AssociationRulePlugin::OnAlteration(const Relation& relation,
                                           const AlterationEvent& event) {
  if (event.col != target_col_ && event.col != given_col_) {
    return Status::OK();
  }
  Apply(relation, event, +1);
  if (std::abs(current_confidence() - baseline_confidence_) > tolerance_) {
    Apply(relation, event, -1);  // veto: restore the tally ourselves
    return Status::ConstraintViolation(
        "rule " + given_.column + "=" + given_.value.ToString() + " -> " +
        target_.column + "=" + target_.value.ToString() +
        " confidence would drift beyond tolerance");
  }
  return Status::OK();
}

void AssociationRulePlugin::OnRollback(const Relation& relation,
                                       const AlterationEvent& event) {
  if (event.col != target_col_ && event.col != given_col_) return;
  Apply(relation, event, -1);
}

}  // namespace catmark
