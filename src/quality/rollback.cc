#include "quality/rollback.h"

namespace catmark {

Status RollbackLog::UndoLast(Relation& relation) {
  if (entries_.empty()) {
    return Status::FailedPrecondition("rollback log is empty");
  }
  const AlterationEvent& e = entries_.back();
  CATMARK_RETURN_IF_ERROR(relation.Set(e.row, e.col, e.old_value));
  entries_.pop_back();
  return Status::OK();
}

Status RollbackLog::UndoAll(Relation& relation) {
  while (!entries_.empty()) {
    CATMARK_RETURN_IF_ERROR(UndoLast(relation));
  }
  return Status::OK();
}

}  // namespace catmark
