#include "quality/constraint_lang.h"

#include <cctype>
#include <memory>
#include <vector>

#include "quality/plugins.h"
#include "quality/query_plugins.h"

namespace catmark {

namespace {

enum class TokenKind { kWord, kString, kNumber, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // word (upper-cased) / string body / symbol
  std::string raw;      // original spelling (for identifiers)
  double number = 0.0;
  bool percent = false; // number followed by '%'
  std::size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '-' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '-') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '\'') {
        CATMARK_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        out.push_back(LexNumber());
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexWord());
        continue;
      }
      if (c == ';' || c == '(' || c == ')' || c == ',' || c == '=') {
        Token t;
        t.kind = TokenKind::kSymbol;
        t.text = std::string(1, c);
        t.line = line_;
        out.push_back(std::move(t));
        ++pos_;
        continue;
      }
      return Status::InvalidArgument("constraint language: unexpected '" +
                                     std::string(1, c) + "' on line " +
                                     std::to_string(line_));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.line = line_;
    out.push_back(std::move(end));
    return out;
  }

 private:
  Result<Token> LexString() {
    Token t;
    t.kind = TokenKind::kString;
    t.line = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      t.text.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ >= src_.size()) {
      return Status::InvalidArgument(
          "constraint language: unterminated string on line " +
          std::to_string(line_));
    }
    ++pos_;  // closing quote
    return t;
  }

  Token LexNumber() {
    Token t;
    t.kind = TokenKind::kNumber;
    t.line = line_;
    std::string num;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '.')) {
      num.push_back(src_[pos_]);
      ++pos_;
    }
    t.number = std::strtod(num.c_str(), nullptr);
    t.text = num;
    if (pos_ < src_.size() && src_[pos_] == '%') {
      t.percent = true;
      ++pos_;
    }
    return t;
  }

  Token LexWord() {
    Token t;
    t.kind = TokenKind::kWord;
    t.line = line_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      t.raw.push_back(src_[pos_]);
      ++pos_;
    }
    for (char c : t.raw) {
      t.text.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Schema& schema,
         QualityAssessor& assessor)
      : tokens_(std::move(tokens)), schema_(schema), assessor_(assessor) {}

  Result<std::size_t> Parse() {
    std::size_t compiled = 0;
    while (Peek().kind != TokenKind::kEnd) {
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ";") {
        ++pos_;  // stray separator
        continue;
      }
      CATMARK_RETURN_IF_ERROR(ParseStatement());
      ++compiled;
    }
    return compiled;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("constraint language: " + what +
                                   " on line " + std::to_string(Peek().line));
  }

  Status ExpectWord(std::string_view word) {
    if (Peek().kind != TokenKind::kWord || Peek().text != word) {
      return Error("expected '" + std::string(word) + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectSymbol(char c) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text[0] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<double> ParseNumber() {
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected a number");
    }
    const Token& t = Next();
    return t.percent ? t.number / 100.0 : t.number;
  }

  Result<std::string> ParseColumn() {
    if (Peek().kind != TokenKind::kWord) {
      return Error("expected a column name");
    }
    const Token& t = Next();
    if (schema_.ColumnIndex(t.raw) < 0) {
      return Status::InvalidArgument("constraint language: unknown column '" +
                                     t.raw + "' on line " +
                                     std::to_string(t.line));
    }
    return t.raw;
  }

  /// A literal, parsed into the named column's type.
  Result<Value> ParseLiteral(const std::string& column) {
    const std::size_t col =
        static_cast<std::size_t>(schema_.ColumnIndex(column));
    const ColumnType type = schema_.column(col).type;
    if (Peek().kind == TokenKind::kString) {
      const Token& t = Next();
      return Value::Parse(t.text, type);
    }
    if (Peek().kind == TokenKind::kNumber) {
      const Token& t = Next();
      return Value::Parse(t.text, type);
    }
    return Error("expected a literal ('string' or number)");
  }

  /// `<column> = <literal>`
  Result<EqPredicate> ParsePredicate() {
    EqPredicate pred;
    CATMARK_ASSIGN_OR_RETURN(pred.column, ParseColumn());
    CATMARK_RETURN_IF_ERROR(ExpectSymbol('='));
    CATMARK_ASSIGN_OR_RETURN(pred.value, ParseLiteral(pred.column));
    return pred;
  }

  Status ParseStatement() {
    if (Peek().kind != TokenKind::kWord) {
      return Error("expected a statement keyword");
    }
    const std::string keyword = Next().text;
    if (keyword == "MAX") return ParseMax();
    if (keyword == "MIN") return ParseMin();
    if (keyword == "FORBID") return ParseForbid();
    if (keyword == "PRESERVE") return ParsePreserve();
    return Error("unknown statement '" + keyword + "'");
  }

  Status ParseMax() {
    if (Peek().kind != TokenKind::kWord) return Error("expected a keyword");
    const std::string what = Next().text;
    if (what == "ALTERATIONS") {
      CATMARK_ASSIGN_OR_RETURN(const double fraction, ParseNumber());
      CATMARK_RETURN_IF_ERROR(ExpectSymbol(';'));
      assessor_.AddPlugin(std::make_unique<MaxAlterationsPlugin>(fraction));
      return Status::OK();
    }
    if (what == "DRIFT") {
      CATMARK_RETURN_IF_ERROR(ExpectWord("ON"));
      CATMARK_ASSIGN_OR_RETURN(const std::string column, ParseColumn());
      CATMARK_ASSIGN_OR_RETURN(const double drift, ParseNumber());
      CATMARK_RETURN_IF_ERROR(ExpectSymbol(';'));
      assessor_.AddPlugin(
          std::make_unique<HistogramDriftPlugin>(column, drift));
      return Status::OK();
    }
    return Error("expected ALTERATIONS or DRIFT after MAX");
  }

  Status ParseMin() {
    CATMARK_RETURN_IF_ERROR(ExpectWord("COUNT"));
    CATMARK_RETURN_IF_ERROR(ExpectWord("ON"));
    CATMARK_ASSIGN_OR_RETURN(const std::string column, ParseColumn());
    CATMARK_ASSIGN_OR_RETURN(const double count, ParseNumber());
    CATMARK_RETURN_IF_ERROR(ExpectSymbol(';'));
    assessor_.AddPlugin(std::make_unique<MinCategoryCountPlugin>(
        column, static_cast<std::size_t>(count)));
    return Status::OK();
  }

  Status ParseForbid() {
    CATMARK_RETURN_IF_ERROR(ExpectWord("ON"));
    CATMARK_ASSIGN_OR_RETURN(const std::string column, ParseColumn());
    CATMARK_RETURN_IF_ERROR(ExpectSymbol('('));
    std::vector<Value> forbidden;
    while (true) {
      CATMARK_ASSIGN_OR_RETURN(Value v, ParseLiteral(column));
      forbidden.push_back(std::move(v));
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        ++pos_;
        continue;
      }
      break;
    }
    CATMARK_RETURN_IF_ERROR(ExpectSymbol(')'));
    CATMARK_RETURN_IF_ERROR(ExpectSymbol(';'));
    assessor_.AddPlugin(
        std::make_unique<ForbiddenValuePlugin>(column, std::move(forbidden)));
    return Status::OK();
  }

  Status ParsePreserve() {
    if (Peek().kind != TokenKind::kWord) return Error("expected a keyword");
    const std::string what = Next().text;
    if (what == "COUNT") {
      CATMARK_RETURN_IF_ERROR(ExpectWord("WHERE"));
      CATMARK_ASSIGN_OR_RETURN(EqPredicate pred, ParsePredicate());
      CATMARK_RETURN_IF_ERROR(ExpectWord("TOLERANCE"));
      CATMARK_ASSIGN_OR_RETURN(const double tolerance, ParseNumber());
      CATMARK_RETURN_IF_ERROR(ExpectSymbol(';'));
      assessor_.AddPlugin(std::make_unique<QueryPreservationPlugin>(
          std::move(pred), tolerance));
      return Status::OK();
    }
    if (what == "CONFIDENCE") {
      CATMARK_RETURN_IF_ERROR(ExpectWord("OF"));
      CATMARK_ASSIGN_OR_RETURN(EqPredicate target, ParsePredicate());
      CATMARK_RETURN_IF_ERROR(ExpectWord("GIVEN"));
      CATMARK_ASSIGN_OR_RETURN(EqPredicate given, ParsePredicate());
      CATMARK_RETURN_IF_ERROR(ExpectWord("TOLERANCE"));
      CATMARK_ASSIGN_OR_RETURN(const double tolerance, ParseNumber());
      CATMARK_RETURN_IF_ERROR(ExpectSymbol(';'));
      assessor_.AddPlugin(std::make_unique<AssociationRulePlugin>(
          std::move(target), std::move(given), tolerance));
      return Status::OK();
    }
    return Error("expected COUNT or CONFIDENCE after PRESERVE");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  const Schema& schema_;
  QualityAssessor& assessor_;
};

}  // namespace

Result<std::size_t> CompileConstraints(std::string_view source,
                                       const Schema& schema,
                                       QualityAssessor& assessor) {
  Lexer lexer(source);
  CATMARK_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), schema, assessor);
  return parser.Parse();
}

}  // namespace catmark
