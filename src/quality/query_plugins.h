#ifndef CATMARK_QUALITY_QUERY_PLUGINS_H_
#define CATMARK_QUALITY_QUERY_PLUGINS_H_

#include <cstddef>
#include <string>

#include "quality/constraint.h"
#include "relation/query.h"

namespace catmark {

/// Preserves the answer of COUNT(*) WHERE column = value within a relative
/// tolerance. This realizes the query-preservation view of allowable
/// alteration the paper cites from Gross-Amblard [5]: the data's utility is
/// the answers to a known workload, and the watermark must not move them.
class QueryPreservationPlugin final : public UsabilityMetricPlugin {
 public:
  /// |count_now - count_baseline| / max(count_baseline, 1) must stay
  /// <= relative_tolerance.
  QueryPreservationPlugin(EqPredicate predicate, double relative_tolerance)
      : predicate_(std::move(predicate)), tolerance_(relative_tolerance) {}

  std::string_view Name() const override { return "query-preservation"; }
  Status Begin(const Relation& relation) override;
  Status OnAlteration(const Relation& relation,
                      const AlterationEvent& event) override;
  void OnRollback(const Relation& relation,
                  const AlterationEvent& event) override;

  std::size_t baseline_count() const { return baseline_; }
  long current_count() const { return current_; }

 private:
  bool Violated() const;

  EqPredicate predicate_;
  double tolerance_;
  std::size_t col_index_ = 0;
  std::size_t baseline_ = 0;
  long current_ = 0;
};

/// Preserves the confidence of an association rule  given -> target
/// (P(target.column = target.value | given.column = given.value)) within an
/// absolute tolerance — the "direct awareness of semantic consistency (e.g.
/// classification and association rules)" the paper's conclusions call for.
class AssociationRulePlugin final : public UsabilityMetricPlugin {
 public:
  AssociationRulePlugin(EqPredicate target, EqPredicate given,
                        double confidence_tolerance)
      : target_(std::move(target)),
        given_(std::move(given)),
        tolerance_(confidence_tolerance) {}

  std::string_view Name() const override { return "association-rule"; }
  Status Begin(const Relation& relation) override;
  Status OnAlteration(const Relation& relation,
                      const AlterationEvent& event) override;
  void OnRollback(const Relation& relation,
                  const AlterationEvent& event) override;

  double baseline_confidence() const { return baseline_confidence_; }
  double current_confidence() const;

 private:
  /// Applies the tally deltas of `event` with sign `direction` (+1 apply,
  /// -1 revert). Needs the relation to read the *other* column of the
  /// affected row.
  void Apply(const Relation& relation, const AlterationEvent& event,
             int direction);

  EqPredicate target_;
  EqPredicate given_;
  double tolerance_;
  std::size_t target_col_ = 0;
  std::size_t given_col_ = 0;
  double baseline_confidence_ = 0.0;
  long n_given_ = 0;
  long n_both_ = 0;
};

}  // namespace catmark

#endif  // CATMARK_QUALITY_QUERY_PLUGINS_H_
