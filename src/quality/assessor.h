#ifndef CATMARK_QUALITY_ASSESSOR_H_
#define CATMARK_QUALITY_ASSESSOR_H_

#include <memory>
#include <vector>

#include "quality/constraint.h"
#include "quality/rollback.h"
#include "relation/relation.h"

namespace catmark {

/// On-the-fly data quality assessment (Section 4.1 / Figure 3): the
/// "usability metrics plugin handler". The embedder offers every intended
/// alteration through ProposeAlteration; plugins evaluate it against their
/// constraints and any veto rolls the single alteration back via the
/// rollback log. Accepted alterations stay in the log so a whole pass can
/// still be undone.
class QualityAssessor {
 public:
  QualityAssessor() = default;

  QualityAssessor(const QualityAssessor&) = delete;
  QualityAssessor& operator=(const QualityAssessor&) = delete;

  /// Registers a plugin (before Begin).
  void AddPlugin(std::unique_ptr<UsabilityMetricPlugin> plugin);

  std::size_t num_plugins() const { return plugins_.size(); }

  /// Captures baselines on the pristine relation; resets the log.
  Status Begin(const Relation& relation);

  /// Applies row/col := new_value, then evaluates all plugins. On any veto
  /// the cell is restored, earlier plugins are notified via OnRollback, and
  /// the veto status is returned (the caller skips this bit — the ECC
  /// absorbs the loss). On success the alteration is recorded in the log.
  Status ProposeAlteration(Relation& relation, std::size_t row,
                           std::size_t col, Value new_value);

  /// Undoes every accepted alteration of this pass (most recent first).
  Status RollbackAll(Relation& relation);

  const RollbackLog& log() const { return log_; }

  /// Alterations vetoed since Begin().
  std::size_t vetoed_count() const { return vetoed_; }

  /// Alterations accepted since Begin().
  std::size_t accepted_count() const { return log_.size(); }

 private:
  std::vector<std::unique_ptr<UsabilityMetricPlugin>> plugins_;
  RollbackLog log_;
  std::size_t vetoed_ = 0;
};

}  // namespace catmark

#endif  // CATMARK_QUALITY_ASSESSOR_H_
