#include "quality/plugins.h"

#include <cmath>

#include "common/check.h"

namespace catmark {

namespace {

/// Resolves a column by name and returns its index, or a Status.
Result<std::size_t> ResolveColumn(const Relation& relation,
                                  const std::string& name) {
  return relation.schema().ColumnIndexOrError(name);
}

}  // namespace

// ---------------------------------------------------------------- MaxAlter

Status MaxAlterationsPlugin::Begin(const Relation& relation) {
  if (max_fraction_ < 0.0 || max_fraction_ > 1.0) {
    return Status::InvalidArgument("max_fraction must be in [0,1]");
  }
  budget_ = static_cast<std::size_t>(
      std::floor(max_fraction_ * static_cast<double>(relation.NumRows())));
  accepted_ = 0;
  return Status::OK();
}

Status MaxAlterationsPlugin::OnAlteration(const Relation&,
                                          const AlterationEvent&) {
  if (accepted_ + 1 > budget_) {
    return Status::ConstraintViolation(
        "alteration budget of " + std::to_string(budget_) + " exhausted");
  }
  ++accepted_;
  return Status::OK();
}

void MaxAlterationsPlugin::OnRollback(const Relation&,
                                      const AlterationEvent&) {
  if (accepted_ > 0) --accepted_;
}

// ---------------------------------------------------------- HistogramDrift

Status HistogramDriftPlugin::Begin(const Relation& relation) {
  CATMARK_ASSIGN_OR_RETURN(col_index_, ResolveColumn(relation, column_));
  CATMARK_ASSIGN_OR_RETURN(
      domain_, CategoricalDomain::FromRelationColumn(relation, col_index_));
  CATMARK_ASSIGN_OR_RETURN(
      FrequencyHistogram hist,
      FrequencyHistogram::Compute(relation, col_index_, domain_));
  baseline_counts_.assign(domain_.size(), 0);
  for (std::size_t t = 0; t < domain_.size(); ++t) {
    baseline_counts_[t] = hist.count(t);
  }
  current_counts_ = baseline_counts_;
  total_ = hist.total();
  return Status::OK();
}

double HistogramDriftPlugin::current_drift() const {
  if (total_ == 0) return 0.0;
  double d = 0.0;
  for (std::size_t t = 0; t < baseline_counts_.size(); ++t) {
    d += std::abs(static_cast<double>(current_counts_[t]) -
                  static_cast<double>(baseline_counts_[t]));
  }
  return d / static_cast<double>(total_);
}

Status HistogramDriftPlugin::OnAlteration(const Relation&,
                                          const AlterationEvent& event) {
  if (event.col != col_index_) return Status::OK();
  const auto from = domain_.IndexOf(event.old_value);
  const auto to = domain_.IndexOf(event.new_value);
  if (from.has_value()) --current_counts_[*from];
  if (to.has_value()) ++current_counts_[*to];
  if (current_drift() > max_l1_drift_) {
    // Restore the tally before vetoing (OnRollback is only called on
    // plugins that *accepted*).
    if (from.has_value()) ++current_counts_[*from];
    if (to.has_value()) --current_counts_[*to];
    return Status::ConstraintViolation("histogram L1 drift would exceed " +
                                       std::to_string(max_l1_drift_));
  }
  return Status::OK();
}

void HistogramDriftPlugin::OnRollback(const Relation&,
                                      const AlterationEvent& event) {
  if (event.col != col_index_) return;
  const auto from = domain_.IndexOf(event.old_value);
  const auto to = domain_.IndexOf(event.new_value);
  if (from.has_value()) ++current_counts_[*from];
  if (to.has_value()) --current_counts_[*to];
}

// ------------------------------------------------------- MinCategoryCount

Status MinCategoryCountPlugin::Begin(const Relation& relation) {
  CATMARK_ASSIGN_OR_RETURN(col_index_, ResolveColumn(relation, column_));
  CATMARK_ASSIGN_OR_RETURN(
      domain_, CategoricalDomain::FromRelationColumn(relation, col_index_));
  CATMARK_ASSIGN_OR_RETURN(
      FrequencyHistogram hist,
      FrequencyHistogram::Compute(relation, col_index_, domain_));
  counts_.assign(domain_.size(), 0);
  for (std::size_t t = 0; t < domain_.size(); ++t) counts_[t] = hist.count(t);
  return Status::OK();
}

Status MinCategoryCountPlugin::OnAlteration(const Relation&,
                                            const AlterationEvent& event) {
  if (event.col != col_index_) return Status::OK();
  const auto from = domain_.IndexOf(event.old_value);
  const auto to = domain_.IndexOf(event.new_value);
  if (from.has_value() && counts_[*from] <= min_count_) {
    return Status::ConstraintViolation(
        "category '" + event.old_value.ToString() + "' would drop below " +
        std::to_string(min_count_) + " occurrences");
  }
  if (from.has_value()) --counts_[*from];
  if (to.has_value()) ++counts_[*to];
  return Status::OK();
}

void MinCategoryCountPlugin::OnRollback(const Relation&,
                                        const AlterationEvent& event) {
  if (event.col != col_index_) return;
  const auto from = domain_.IndexOf(event.old_value);
  const auto to = domain_.IndexOf(event.new_value);
  if (from.has_value()) ++counts_[*from];
  if (to.has_value()) --counts_[*to];
}

// --------------------------------------------------------- ForbiddenValue

ForbiddenValuePlugin::ForbiddenValuePlugin(std::string column,
                                           std::vector<Value> forbidden)
    : column_(std::move(column)),
      forbidden_(forbidden.begin(), forbidden.end()) {}

Status ForbiddenValuePlugin::Begin(const Relation& relation) {
  CATMARK_ASSIGN_OR_RETURN(col_index_, ResolveColumn(relation, column_));
  return Status::OK();
}

Status ForbiddenValuePlugin::OnAlteration(const Relation&,
                                          const AlterationEvent& event) {
  if (event.col != col_index_) return Status::OK();
  if (forbidden_.count(event.new_value) > 0) {
    return Status::ConstraintViolation("value '" +
                                       event.new_value.ToString() +
                                       "' is forbidden in " + column_);
  }
  return Status::OK();
}

}  // namespace catmark
