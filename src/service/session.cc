#include "service/session.h"

#include <array>
#include <bit>
#include <utility>

#include "common/bits.h"
#include "common/check.h"
#include "core/codec.h"
#include "crypto/siphash_simd.h"
#include "ecc/code.h"

namespace catmark {

SessionSpec SessionSpec::FromEmbedReport(WatermarkKeySet keys,
                                         WatermarkParams params,
                                         const EmbedOptions& options,
                                         const EmbedReport& report,
                                         BitVector wm) {
  SessionSpec spec;
  spec.keys = std::move(keys);
  spec.params = params;
  // Pin the PRF backend the original embedding ran with: inserts hashed
  // under a CATMARK_PRF re-resolved in some later process would be
  // invisible to dispute-time detection (which follows the certificate).
  spec.params.prf = params.prf.value_or(report.prf);
  spec.key_attr = options.key_attr;
  spec.target_attr = options.target_attr;
  spec.domain = report.domain;
  spec.payload_length = report.payload_length;
  spec.wm = std::move(wm);
  return spec;
}

Result<SessionSpec> SessionSpec::FromCertificate(
    const WatermarkCertificate& certificate, const WatermarkKeySet& keys) {
  if (!certificate.VerifyKeys(keys)) {
    return Status::FailedPrecondition(
        "supplied keys do not match the certificate's key commitment");
  }
  SessionSpec spec;
  spec.keys = keys;
  spec.params = certificate.params;
  spec.params.prf = certificate.params.prf.value_or(PrfKind::kKeyedHash);
  spec.key_attr = certificate.key_attr;
  spec.target_attr = certificate.target_attr;
  spec.domain = certificate.domain;
  spec.payload_length = certificate.payload_length;
  spec.wm = certificate.wm;
  return spec;
}

Status SessionSpec::Validate() const {
  if (!keys.valid()) {
    return Status::InvalidArgument(
        "invalid key set (keys must be non-empty and distinct)");
  }
  if (key_attr.empty()) return Status::InvalidArgument("key_attr not set");
  if (target_attr.empty()) {
    return Status::InvalidArgument("target_attr not set");
  }
  if (domain.size() < 2) {
    return Status::InvalidArgument(
        "domain must hold at least 2 values to carry a bit");
  }
  if (params.e == 0) return Status::InvalidArgument("e must be >= 1");
  if (!params.prf.has_value()) {
    return Status::InvalidArgument(
        "params.prf not pinned — build the spec via FromEmbedReport / "
        "FromCertificate so inserts hash under the embed-time backend");
  }
  if (wm.empty()) return Status::InvalidArgument("watermark is empty");
  if (payload_length < wm.size()) {
    return Status::InvalidArgument(
        "payload_length is shorter than the watermark");
  }
  return Status::OK();
}

StreamSession::StreamSession(SessionSpec spec) : spec_(std::move(spec)) {
  prf_k1_ = CreateKeyedPrf(*spec_.params.prf, spec_.keys.k1,
                           spec_.params.hash_algo);
  prf_k2_ = CreateKeyedPrf(*spec_.params.prf, spec_.keys.k2,
                           spec_.params.hash_algo);
  scratch_.reserve(64);
}

Result<StreamSession> StreamSession::Create(SessionSpec spec) {
  CATMARK_RETURN_IF_ERROR(spec.Validate());
  StreamSession session(std::move(spec));
  const auto ecc = CreateEcc(session.spec_.params.ecc);
  CATMARK_ASSIGN_OR_RETURN(
      session.wm_data_,
      ecc->Encode(session.spec_.wm, session.spec_.payload_length));
  return session;
}

Status StreamSession::BindColumns(const Relation& rel) {
  // Memoized on the schema's identity; the bound and name re-checks make a
  // stale pointer (a new relation allocated where an old one lived)
  // harmless, even when the new schema has fewer columns.
  if (bound_schema_ == &rel.schema() &&
      key_col_ < rel.schema().num_columns() &&
      target_col_ < rel.schema().num_columns() &&
      rel.schema().column(key_col_).name == spec_.key_attr &&
      rel.schema().column(target_col_).name == spec_.target_attr) {
    return Status::OK();
  }
  CATMARK_ASSIGN_OR_RETURN(key_col_,
                           rel.schema().ColumnIndexOrError(spec_.key_attr));
  CATMARK_ASSIGN_OR_RETURN(
      target_col_, rel.schema().ColumnIndexOrError(spec_.target_attr));
  bound_schema_ = &rel.schema();
  return Status::OK();
}

void StreamSession::FinishChunk(std::vector<Verdict*>& pending) {
  if (pending.empty()) return;
  batch_.Hash(*prf_k1_);
  const std::size_t count = batch_.size();

  // Vectorized fitness: pack h1 % e == 0 into a bitset and walk only the
  // set bits — the same DivisibilityMask64 kernel the plan build and the
  // detect engine use, so streaming verdicts are pinned to the same
  // arithmetic.
  const DivisibilityCheck fit_by_e(spec_.params.e);
  fit_mask_.assign((count + 63) / 64, 0);
  DivisibilityMask64(fit_by_e, batch_.h1.data(), count, fit_mask_.data());
  fit_idx_.clear();
  for (std::size_t w = 0; w < fit_mask_.size(); ++w) {
    std::uint64_t word = fit_mask_[w];
    while (word != 0) {
      const std::size_t i =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      fit_idx_.push_back(i);
    }
  }

  // The fitness rate is 1/e, so the k2 position hash runs on a small
  // minority of keys — one batched call over the fit subset, through the
  // typed int64 kernel when the whole chunk is int64 keys (the common
  // streaming shape), else gathered views over the still-live arena bytes.
  h2_.resize(fit_idx_.size());
  if (!fit_idx_.empty()) {
    if (batch_.int64_lane()) {
      fit_i64_.clear();
      for (const std::size_t i : fit_idx_) fit_i64_.push_back(batch_.i64[i]);
      prf_k2_->Hash64Int64Keys(fit_i64_.data(), fit_i64_.size(),
                               std::span<std::uint64_t>(h2_));
    } else {
      fit_views_.clear();
      for (const std::size_t i : fit_idx_) {
        fit_views_.push_back(batch_.views[i]);
      }
      prf_k2_->Hash64Column(fit_views_, std::span<std::uint64_t>(h2_));
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    Verdict& v = *pending[batch_.ids[i]];
    v.h1 = batch_.h1[i];
    v.pending = false;
  }
  for (std::size_t f = 0; f < fit_idx_.size(); ++f) {
    Verdict& v = *pending[batch_.ids[fit_idx_[f]]];
    v.fit = true;
    v.payload_index = static_cast<std::uint32_t>(PayloadIndexFromHash(
        h2_[f], spec_.payload_length, spec_.params.bit_index_mode));
  }
  pending.clear();
  batch_.Clear();
}

std::size_t StreamSession::ResolveVerdicts(std::span<const Row> rows) {
  verdict_of_row_.assign(rows.size(), Verdict{});
  pending_rows_.clear();
  overflow_.clear();
  pending_.clear();
  batch_.Clear();
  std::size_t hashed = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Value& key_value = rows[i][key_col_];
    if (key_value.is_null()) continue;  // NULL keys keep the unfit default
    const std::string_view key = key_value.SerializeKeyInto(scratch_);
    const Verdict* found = nullptr;
    if (const auto it = cache_.find(key); it != cache_.end()) {
      found = &it->second;
    } else if (const auto it = overflow_.find(key); it != overflow_.end()) {
      found = &it->second;
    }
    if (found != nullptr) {
      // Copy the verdict out by value while the map node is hot — the apply
      // pass then scans a flat array instead of re-chasing a node per row.
      // A still-pending node (its chunk not hashed yet) is deferred.
      if (found->pending) {
        pending_rows_.emplace_back(i, found);
      } else {
        verdict_of_row_[i] = *found;
      }
      continue;
    }
    // A fresh key: queue it once; later rows repeating it share the same
    // map node via pending_rows_. Node-based maps keep the Verdict
    // addresses stable while either map grows.
    VerdictCache& target =
        cache_.size() < spec_.key_cache_capacity ? cache_ : overflow_;
    Verdict placeholder;
    placeholder.pending = true;
    Verdict& v = target.emplace(std::string(key), placeholder).first->second;
    pending_rows_.emplace_back(i, &v);
    batch_.AddSerialized(std::span<const std::uint8_t>(scratch_.data(),
                                                       scratch_.size()),
                         pending_.size());
    pending_.push_back(&v);
    ++hashed;
    if (batch_.full()) FinishChunk(pending_);
  }
  FinishChunk(pending_);
  for (const auto& [row, v] : pending_rows_) verdict_of_row_[row] = *v;
  return hashed;
}

Result<BatchReport> StreamSession::InsertBatch(Relation& rel,
                                               std::span<Row> rows) {
  CATMARK_RETURN_IF_ERROR(BindColumns(rel));
  // Validate the whole batch before touching anything: batches are atomic,
  // so an arity or type error anywhere leaves the relation unchanged.
  const Schema& schema = rel.schema();
  for (const Row& row : rows) {
    if (row.size() != schema.num_columns()) {
      return Status::InvalidArgument("row arity mismatch");
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (!row[c].is_null() && !row[c].MatchesType(schema.column(c).type)) {
        return Status::InvalidArgument("value for column '" +
                                       schema.column(c).name +
                                       "' has wrong type");
      }
    }
  }

  BatchReport report;
  report.rows = rows.size();
  report.hashed_keys = ResolveVerdicts(rows);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Verdict& v = verdict_of_row_[i];
    if (!v.fit) continue;
    ++report.fit_rows;
    const std::size_t t = SelectValueIndex(
        v.h1, spec_.domain.size(), wm_data_.Get(v.payload_index));
    const Value& marked = spec_.domain.value(t);
    Value& cell = rows[i][target_col_];
    if (!(cell == marked)) {
      cell = marked;
      ++report.altered_rows;
    }
  }
  // The batch was validated above and marked values come from the domain,
  // so the unchecked columnar bulk append is safe.
  rel.AppendRowsUnchecked(rows);
  total_rows_ += report.rows;
  total_fit_ += report.fit_rows;
  return report;
}

Result<bool> StreamSession::Insert(Relation& rel, Row row) {
  std::array<Row, 1> rows = {std::move(row)};
  CATMARK_ASSIGN_OR_RETURN(const BatchReport report,
                           InsertBatch(rel, std::span<Row>(rows)));
  return report.fit_rows > 0;
}

const StreamSession::Verdict& StreamSession::VerdictFor(
    const Value& key_value) {
  const std::string_view key = key_value.SerializeKeyInto(scratch_);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }
  Verdict v;
  const std::uint64_t h1 = prf_k1_->Hash64(key);
  if (h1 % spec_.params.e == 0) {
    v.fit = true;
    v.h1 = h1;
    v.payload_index = static_cast<std::uint32_t>(
        PayloadIndexFromHash(prf_k2_->Hash64(key), spec_.payload_length,
                             spec_.params.bit_index_mode));
  }
  VerdictCache& target =
      cache_.size() < spec_.key_cache_capacity ? cache_ : overflow_;
  return target.insert_or_assign(std::string(key), v).first->second;
}

Result<bool> StreamSession::Refresh(Relation& rel, std::size_t row_index) {
  CATMARK_RETURN_IF_ERROR(BindColumns(rel));
  if (row_index >= rel.NumRows()) return Status::OutOfRange("row index");
  const Value& key_value = rel.Get(row_index, key_col_);
  if (key_value.is_null()) return false;
  const Verdict& v = VerdictFor(key_value);
  if (!v.fit) return false;
  const std::size_t t = SelectValueIndex(v.h1, spec_.domain.size(),
                                         wm_data_.Get(v.payload_index));
  const Value& marked = spec_.domain.value(t);
  // Skip the store write when the cell already carries the marked value —
  // the common case when refreshing an already-watermarked relation.
  if (!(rel.Get(row_index, target_col_) == marked)) {
    CATMARK_RETURN_IF_ERROR(rel.Set(row_index, target_col_, marked));
  }
  return true;
}

namespace {

StreamSession MakeSessionOrDie(SessionSpec spec) {
  Result<StreamSession> session = StreamSession::Create(std::move(spec));
  CATMARK_CHECK(session.ok()) << session.status().ToString();
  return std::move(session).value();
}

}  // namespace

IncrementalWatermarker::IncrementalWatermarker(WatermarkKeySet keys,
                                               WatermarkParams params,
                                               const EmbedOptions& options,
                                               const EmbedReport& report,
                                               BitVector wm)
    : session_(MakeSessionOrDie(SessionSpec::FromEmbedReport(
          std::move(keys), params, options, report, std::move(wm)))) {}

IncrementalWatermarker::IncrementalWatermarker(SessionSpec spec)
    : session_(MakeSessionOrDie(std::move(spec))) {}

}  // namespace catmark
