#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "core/detect_engine.h"

namespace catmark {

WatermarkService::WatermarkService(ServiceOptions options)
    : options_(options) {}

Result<std::size_t> WatermarkService::Open(SessionSpec spec,
                                           Relation relation) {
  CATMARK_ASSIGN_OR_RETURN(StreamSession session,
                           StreamSession::Create(std::move(spec)));
  // A relation passed by value usually arrives copied, with column capacity
  // == size: the very first insert batch would then pay an O(N) relocation
  // of every column (plus the page faults of the fresh allocations) inside
  // the timed insert path. Reserve append headroom now, at open time.
  relation.Reserve(relation.NumRows() + relation.NumRows() / 4 + 1024);
  const std::size_t id = entries_.size();
  entries_.push_back(std::make_unique<Entry>(
      Entry{std::move(session), std::move(relation)}));
  ++open_count_;
  return id;
}

WatermarkService::Entry* WatermarkService::Find(std::size_t id) {
  if (id >= entries_.size()) return nullptr;
  return entries_[id].get();
}

StreamSession& WatermarkService::session(std::size_t id) {
  Entry* entry = Find(id);
  CATMARK_CHECK(entry != nullptr) << "session " << id << " is not open";
  return entry->session;
}

const Relation& WatermarkService::relation(std::size_t id) const {
  CATMARK_CHECK(id < entries_.size() && entries_[id] != nullptr)
      << "session " << id << " is not open";
  return entries_[id]->relation;
}

Result<BatchReport> WatermarkService::InsertBatch(std::size_t id,
                                                  std::span<Row> rows) {
  Entry* entry = Find(id);
  if (entry == nullptr) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  return entry->session.InsertBatch(entry->relation, rows);
}

Result<bool> WatermarkService::Refresh(std::size_t id, std::size_t row_index) {
  Entry* entry = Find(id);
  if (entry == nullptr) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  return entry->session.Refresh(entry->relation, row_index);
}

std::vector<Result<BatchReport>> WatermarkService::ExecuteBatches(
    std::span<SessionBatch> batches) {
  std::vector<Result<BatchReport>> results;
  results.reserve(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    results.emplace_back(Status::Internal("not executed"));
  }

  // Group batch indices by session, first-appearance order. Each group is
  // one unit of parallel work: a session is single-writer, so its batches
  // run in submission order on whichever worker owns the group.
  constexpr std::size_t kUngrouped = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> group_of(entries_.size(), kUngrouped);
  std::vector<std::size_t> bad;  // batches naming a closed / unknown session
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const std::size_t id = batches[i].session_id;
    if (id >= entries_.size() || entries_[id] == nullptr) {
      bad.push_back(i);
      continue;
    }
    if (group_of[id] == kUngrouped) {
      group_of[id] = groups.size();
      groups.emplace_back();
    }
    groups[group_of[id]].push_back(i);
  }
  for (const std::size_t i : bad) {
    results[i] = Status::InvalidArgument(
        "session " + std::to_string(batches[i].session_id) + " is not open");
  }

  // Distinct sessions share no mutable state and every result slot is
  // written by exactly one worker, so the fan-out is race-free and the
  // outcome is independent of the thread count.
  ParallelFor(groups.size(),
              EffectiveThreadCount(options_.num_threads, groups.size()),
              [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
                for (std::size_t g = begin; g < end; ++g) {
                  for (const std::size_t i : groups[g]) {
                    SessionBatch& b = batches[i];
                    Entry& entry = *entries_[b.session_id];
                    results[i] = entry.session.InsertBatch(
                        entry.relation, std::span<Row>(b.rows));
                  }
                }
              });
  return results;
}

Result<SweepReport> WatermarkService::SweepOwnership(
    const Relation& suspect, std::span<const OwnershipCandidate> candidates,
    double alpha) const {
  const auto start = std::chrono::steady_clock::now();
  if (candidates.empty()) {
    return Status::InvalidArgument("ownership sweep needs >= 1 candidate");
  }
  SweepReport report;

  // Group candidates sharing (key attribute, target attribute, domain):
  // one RelationPlan serves the whole group. An empty certificate domain
  // means "recover from the suspect data", which is also per-group state.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const WatermarkCertificate& cert = candidates[i].certificate;
    std::size_t g = groups.size();
    for (std::size_t k = 0; k < groups.size(); ++k) {
      const WatermarkCertificate& rep =
          candidates[groups[k].front()].certificate;
      if (rep.key_attr == cert.key_attr &&
          rep.target_attr == cert.target_attr && rep.domain == cert.domain) {
        g = k;
        break;
      }
    }
    if (g == groups.size()) groups.emplace_back();
    groups[g].push_back(i);
  }

  for (const std::vector<std::size_t>& group : groups) {
    const WatermarkCertificate& rep = candidates[group.front()].certificate;
    DetectEngineOptions options;
    options.key_attr = rep.key_attr;
    options.target_attr = rep.target_attr;
    if (!rep.domain.empty()) options.domain_view = &rep.domain;
    options.num_threads = options_.num_threads;
    Result<DetectEngine> engine = DetectEngine::Create(suspect, options);
    if (!engine.ok()) {
      for (const std::size_t i : group) {
        report.failed.emplace_back(candidates[i].id, engine.status());
      }
      continue;
    }
    ++report.plans_built;

    std::vector<KeyCandidate> keys;
    keys.reserve(group.size());
    for (const std::size_t i : group) {
      const OwnershipCandidate& candidate = candidates[i];
      KeyCandidate kc;
      kc.keys = candidate.keys;
      kc.params = candidate.certificate.params;
      kc.params.payload_length = candidate.certificate.payload_length;
      kc.wm_len = candidate.certificate.wm.size();
      keys.push_back(std::move(kc));
    }
    const std::vector<Result<DetectionResult>> results =
        engine->DetectMany(std::span<const KeyCandidate>(keys));
    for (std::size_t k = 0; k < group.size(); ++k) {
      const OwnershipCandidate& candidate = candidates[group[k]];
      if (!results[k].ok()) {
        report.failed.emplace_back(candidate.id, results[k].status());
        continue;
      }
      SweepMatch match;
      match.id = candidate.id;
      match.commitment_verified =
          candidate.certificate.VerifyKeys(candidate.keys);
      match.detection = results[k].value();
      match.decision = DecideOwnership(candidate.certificate.wm,
                                       match.detection.wm, alpha);
      report.messages_hashed += match.detection.messages_hashed;
      report.ranked.push_back(std::move(match));
    }
  }

  // Most convincing claim first; the tail tiebreak on id makes the order
  // total, so reports are reproducible run to run.
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const SweepMatch& a, const SweepMatch& b) {
              if (a.decision.owned != b.decision.owned) {
                return a.decision.owned;
              }
              if (a.decision.p_value != b.decision.p_value) {
                return a.decision.p_value < b.decision.p_value;
              }
              if (a.decision.matched_bits != b.decision.matched_bits) {
                return a.decision.matched_bits > b.decision.matched_bits;
              }
              return a.id < b.id;
            });
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

Result<Relation> WatermarkService::Close(std::size_t id) {
  Entry* entry = Find(id);
  if (entry == nullptr) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  Relation relation = std::move(entry->relation);
  entries_[id].reset();
  --open_count_;
  return relation;
}

}  // namespace catmark
