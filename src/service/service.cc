#include "service/service.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"

namespace catmark {

WatermarkService::WatermarkService(ServiceOptions options)
    : options_(options) {}

Result<std::size_t> WatermarkService::Open(SessionSpec spec,
                                           Relation relation) {
  CATMARK_ASSIGN_OR_RETURN(StreamSession session,
                           StreamSession::Create(std::move(spec)));
  const std::size_t id = entries_.size();
  entries_.push_back(std::make_unique<Entry>(
      Entry{std::move(session), std::move(relation)}));
  ++open_count_;
  return id;
}

WatermarkService::Entry* WatermarkService::Find(std::size_t id) {
  if (id >= entries_.size()) return nullptr;
  return entries_[id].get();
}

StreamSession& WatermarkService::session(std::size_t id) {
  Entry* entry = Find(id);
  CATMARK_CHECK(entry != nullptr) << "session " << id << " is not open";
  return entry->session;
}

const Relation& WatermarkService::relation(std::size_t id) const {
  CATMARK_CHECK(id < entries_.size() && entries_[id] != nullptr)
      << "session " << id << " is not open";
  return entries_[id]->relation;
}

Result<BatchReport> WatermarkService::InsertBatch(std::size_t id,
                                                  std::span<Row> rows) {
  Entry* entry = Find(id);
  if (entry == nullptr) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  return entry->session.InsertBatch(entry->relation, rows);
}

Result<bool> WatermarkService::Refresh(std::size_t id, std::size_t row_index) {
  Entry* entry = Find(id);
  if (entry == nullptr) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  return entry->session.Refresh(entry->relation, row_index);
}

std::vector<Result<BatchReport>> WatermarkService::ExecuteBatches(
    std::span<SessionBatch> batches) {
  std::vector<Result<BatchReport>> results;
  results.reserve(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    results.emplace_back(Status::Internal("not executed"));
  }

  // Group batch indices by session, first-appearance order. Each group is
  // one unit of parallel work: a session is single-writer, so its batches
  // run in submission order on whichever worker owns the group.
  constexpr std::size_t kUngrouped = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> group_of(entries_.size(), kUngrouped);
  std::vector<std::size_t> bad;  // batches naming a closed / unknown session
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const std::size_t id = batches[i].session_id;
    if (id >= entries_.size() || entries_[id] == nullptr) {
      bad.push_back(i);
      continue;
    }
    if (group_of[id] == kUngrouped) {
      group_of[id] = groups.size();
      groups.emplace_back();
    }
    groups[group_of[id]].push_back(i);
  }
  for (const std::size_t i : bad) {
    results[i] = Status::InvalidArgument(
        "session " + std::to_string(batches[i].session_id) + " is not open");
  }

  // Distinct sessions share no mutable state and every result slot is
  // written by exactly one worker, so the fan-out is race-free and the
  // outcome is independent of the thread count.
  ParallelFor(groups.size(),
              EffectiveThreadCount(options_.num_threads, groups.size()),
              [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
                for (std::size_t g = begin; g < end; ++g) {
                  for (const std::size_t i : groups[g]) {
                    SessionBatch& b = batches[i];
                    Entry& entry = *entries_[b.session_id];
                    results[i] = entry.session.InsertBatch(
                        entry.relation, std::span<Row>(b.rows));
                  }
                }
              });
  return results;
}

Result<Relation> WatermarkService::Close(std::size_t id) {
  Entry* entry = Find(id);
  if (entry == nullptr) {
    return Status::InvalidArgument("session " + std::to_string(id) +
                                   " is not open");
  }
  Relation relation = std::move(entry->relation);
  entries_[id].reset();
  --open_count_;
  return relation;
}

}  // namespace catmark
