#ifndef CATMARK_SERVICE_SESSION_H_
#define CATMARK_SERVICE_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "common/result.h"
#include "core/certificate.h"
#include "core/embedder.h"
#include "core/keys.h"
#include "core/params.h"
#include "core/tuple_plan.h"
#include "crypto/prf.h"
#include "relation/column_store.h"
#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// Everything a streaming watermark session needs, in one value: the secret
/// keys, the scheme parameters with the keyed-PRF backend *pinned*
/// (params.prf must be set — a session that re-resolved CATMARK_PRF in some
/// later process would embed marks invisible to dispute-time detection), the
/// attribute pair, the categorical domain, the payload length and the mark
/// itself. This replaces the seed-era 5-argument IncrementalWatermarker
/// constructor: build one from the embedding that created the relation
/// (FromEmbedReport) or from a published certificate (FromCertificate), then
/// open a StreamSession over it.
struct SessionSpec {
  WatermarkKeySet keys;
  /// params.prf must hold a value (Validate enforces it) — the factories
  /// below pin it from the report / certificate.
  WatermarkParams params;
  std::string key_attr;
  std::string target_attr;
  /// The embed-time domain. Inserts select marked values from it, so it must
  /// be the one detection will use.
  CategoricalDomain domain;
  /// |wm_data| — must match the original embedding (>= wm.size()).
  std::size_t payload_length = 0;
  BitVector wm;
  /// Ceiling on the session's resident key->verdict cache (distinct keys).
  /// Keys past the cap still batch-hash correctly; they just are not
  /// memoized across batches. 0 disables the resident cache entirely.
  std::size_t key_cache_capacity = std::size_t{1} << 20;

  /// Builds a spec from the original embedding run — the streaming successor
  /// of the 5-arg IncrementalWatermarker constructor. An explicit
  /// `params.prf` wins; on auto (nullopt) the backend is pinned from the
  /// report, *not* re-resolved from CATMARK_PRF at insert time.
  static SessionSpec FromEmbedReport(WatermarkKeySet keys,
                                     WatermarkParams params,
                                     const EmbedOptions& options,
                                     const EmbedReport& report, BitVector wm);

  /// Builds a spec from a published certificate: verifies `keys` against the
  /// certificate's key commitment (FailedPrecondition on mismatch), then
  /// takes every parameter from the certificate. Certificates without a PRF
  /// field predate the PRF subsystem and mean the legacy keyed hash.
  static Result<SessionSpec> FromCertificate(
      const WatermarkCertificate& certificate, const WatermarkKeySet& keys);

  /// Structural validation: keys valid, attributes named, domain of size
  /// >= 2, e >= 1, a pinned PRF backend, a non-empty mark that fits the
  /// payload length.
  Status Validate() const;
};

/// What one insert batch did.
struct BatchReport {
  std::size_t rows = 0;          ///< rows appended
  std::size_t fit_rows = 0;      ///< rows satisfying the fitness test
  std::size_t altered_rows = 0;  ///< fit rows whose target cell changed
  /// Distinct keys that actually went through the keyed PRF this batch —
  /// cache hits (repeat keys) cost no hashing at all.
  std::size_t hashed_keys = 0;
};

/// A live streaming embedding session (Section 4.3, "as updates occur to
/// the data, the resulting tuples can be evaluated on the fly for 'fitness'
/// and watermarked accordingly") — the batched redesign of the seed-era
/// one-row-at-a-time IncrementalWatermarker.
///
/// InsertBatch runs the same per-tuple rule as the offline embedder and is
/// bit-compatible with it, but amortizes everything the row-at-a-time path
/// paid per insert:
///
///   - keys serialize chunk-wise into one arena and hash through a single
///     batched KeyedPrf call per chunk (kKeyHashBatch rows) — the typed
///     Hash64Int64Keys SIMD kernel when the whole chunk is int64 keys, the
///     Hash64Column view path otherwise — the same KeyHashBatch channel the
///     tuple_plan precompute uses;
///   - fitness/position verdicts for repeated keys come from a resident
///     key->verdict cache that survives across batches (a streaming feed
///     re-inserts the same customers all day);
///   - rows append through the columnar bulk path (one arity sweep, then
///     column-major interning) instead of per-row AppendRow.
///
/// Batches are atomic: the batch is validated against the relation's schema
/// up front, and on any error nothing is appended. A session is not
/// internally synchronized — it is single-writer (the WatermarkService runs
/// *distinct* sessions in parallel, never one session from two threads).
///
/// The session does not own the relation; Insert/InsertBatch/Refresh take it
/// explicitly, and a session may serve several relations of the same schema
/// shape (the column bindings re-resolve when the relation changes, the
/// key->verdict cache is relation-independent).
class StreamSession {
 public:
  /// Validates `spec` and builds the session: PRF key schedules, the
  /// ECC-expanded payload, the verdict cache.
  static Result<StreamSession> Create(SessionSpec spec);

  StreamSession(StreamSession&&) = default;
  StreamSession& operator=(StreamSession&&) = default;
  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Watermarks every fit row of `rows` in place and appends the whole batch
  /// to `rel`. On error (arity/type mismatch anywhere in the batch, unknown
  /// attribute) nothing is appended. `rows` is consumed.
  Result<BatchReport> InsertBatch(Relation& rel, std::span<Row> rows);

  /// Single-row convenience — a batch of one. Returns true when the tuple
  /// was fit (and therefore carries a mark bit).
  Result<bool> Insert(Relation& rel, Row row);

  /// Re-evaluates an updated tuple in place: when the key attribute of row
  /// `row_index` is fit, re-applies the embedding rule to the target
  /// attribute (an UPDATE that touched either attribute may have destroyed
  /// the bit). Returns true when the tuple is fit. Reuses the session's
  /// resident column bindings and verdict cache — a refresh of a key seen
  /// before performs no keyed hashing.
  Result<bool> Refresh(Relation& rel, std::size_t row_index);

  const SessionSpec& spec() const { return spec_; }
  const CategoricalDomain& domain() const { return spec_.domain; }
  std::size_t payload_length() const { return spec_.payload_length; }

  /// Lifetime totals across every batch.
  std::size_t total_rows() const { return total_rows_; }
  std::size_t total_fit() const { return total_fit_; }
  /// Distinct keys resident in the verdict cache.
  std::size_t cached_keys() const { return cache_.size(); }

 private:
  /// The memoized per-key outcome of the Section 3.2.1 hashes: fitness,
  /// the fitness hash itself (drives value selection) and the k2-derived
  /// payload position. Everything downstream (bit lookup, SelectValueIndex)
  /// is cheap integer work recomputed per row.
  struct Verdict {
    std::uint64_t h1 = 0;
    std::uint32_t payload_index = 0;
    bool fit = false;
    /// True while the key sits in the current chunk awaiting its batched
    /// hash; rows repeating a pending key defer their copy to after
    /// FinishChunk instead of reading the unfilled placeholder.
    bool pending = false;
  };
  using VerdictCache =
      std::unordered_map<std::string, Verdict, TransparentStringHash,
                         std::equal_to<>>;

  explicit StreamSession(SessionSpec spec);

  /// Binds key/target column indices for `rel`, memoized on the relation's
  /// schema identity so consecutive batches against the same relation skip
  /// the name lookups.
  Status BindColumns(const Relation& rel);

  /// Resolves the per-row verdicts for `rows[i][key_col_]` into
  /// `verdict_of_row_` (NULL keys keep the default unfit verdict), batching
  /// every cache miss through one Hash64Column call per chunk. Verdicts are
  /// copied out of the cache by value so the apply pass scans a flat array
  /// instead of chasing a map node per row. Returns the number of keys
  /// hashed.
  std::size_t ResolveVerdicts(std::span<const Row> rows);

  /// Finishes a chunk of misses: one batched k1 call (typed int64 kernel
  /// for all-int64 chunks), vectorized DivisibilityMask64 fitness, then one
  /// batched k2 call over the ~1/e fit entries.
  void FinishChunk(std::vector<Verdict*>& pending);

  /// Cache-or-compute for one key (the Refresh path): serialized key bytes
  /// in scratch_. Single-shot hashing on a miss.
  const Verdict& VerdictFor(const Value& key_value);

  SessionSpec spec_;
  BitVector wm_data_;  // ECC-expanded payload
  // Built once: inserts must not pay the backend's key schedule (for
  // siphash24, a SHA-256 key derivation) per tuple, let alone per batch.
  std::unique_ptr<KeyedPrf> prf_k1_;
  std::unique_ptr<KeyedPrf> prf_k2_;

  // Resident key->verdict cache (bounded by spec_.key_cache_capacity).
  // overflow_ catches the keys of one batch past the cap so in-batch
  // duplicates still dedupe; it is cleared per batch.
  VerdictCache cache_;
  VerdictCache overflow_;

  // Column bindings for the relation last served, keyed on its schema's
  // identity.
  const Schema* bound_schema_ = nullptr;
  std::size_t key_col_ = 0;
  std::size_t target_col_ = 0;

  // Per-batch scratch, reused across batches.
  KeyHashBatch batch_;
  std::vector<Verdict*> pending_;
  // Per-chunk scratch of FinishChunk: the packed fitness mask, the fit
  // subset's indices, its gathered keys (typed or views) and k2 outputs.
  std::vector<std::uint64_t> fit_mask_;
  std::vector<std::size_t> fit_idx_;
  std::vector<std::int64_t> fit_i64_;
  std::vector<std::string_view> fit_views_;
  std::vector<std::uint64_t> h2_;
  // Rows whose key was still pending when scanned; their verdicts are
  // copied into verdict_of_row_ once the owning chunk has been hashed.
  std::vector<std::pair<std::size_t, const Verdict*>> pending_rows_;
  std::vector<Verdict> verdict_of_row_;
  std::vector<std::uint8_t> scratch_;

  std::size_t total_rows_ = 0;
  std::size_t total_fit_ = 0;
};

/// Compatibility wrapper over a StreamSession batch of one — the seed-era
/// incremental API, kept so no call site breaks. New code should use
/// SessionSpec + StreamSession (or WatermarkService) directly.
class IncrementalWatermarker {
 public:
  /// Deprecated 5-argument form — delegates to SessionSpec::FromEmbedReport.
  IncrementalWatermarker(WatermarkKeySet keys, WatermarkParams params,
                         const EmbedOptions& options, const EmbedReport& report,
                         BitVector wm);

  /// Spec form; CHECK-fails on an invalid spec (the Result-returning
  /// equivalent is StreamSession::Create).
  explicit IncrementalWatermarker(SessionSpec spec);

  /// Watermarks `row` (if fit) and appends it to `rel`. Returns true when
  /// the tuple was fit (and therefore carries a mark bit).
  Result<bool> Insert(Relation& rel, Row row) const {
    return session_.Insert(rel, std::move(row));
  }

  /// Re-evaluates an updated tuple in place; see StreamSession::Refresh.
  Result<bool> Refresh(Relation& rel, std::size_t row_index) const {
    return session_.Refresh(rel, row_index);
  }

  const CategoricalDomain& domain() const { return session_.domain(); }
  std::size_t payload_length() const { return session_.payload_length(); }

 private:
  // The historical API is const; the session's resident caches are an
  // implementation detail behind it. Like the seed implementation, the
  // wrapper is safe for concurrent *reads* of its metadata but Insert /
  // Refresh are single-writer.
  mutable StreamSession session_;
};

}  // namespace catmark

#endif  // CATMARK_SERVICE_SESSION_H_
