#ifndef CATMARK_SERVICE_SERVICE_H_
#define CATMARK_SERVICE_SERVICE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/certificate.h"
#include "core/decision.h"
#include "core/detector.h"
#include "core/keys.h"
#include "relation/relation.h"
#include "service/session.h"

namespace catmark {

/// One entry of a blind multi-key ownership sweep: a claimed certificate
/// (detection parameters + expected mark + key commitment) and the keys
/// the claimant produced for it. `id` labels the candidate in the report
/// (registry row, certificate filename, claimant name — opaque here).
struct OwnershipCandidate {
  std::string id;
  WatermarkCertificate certificate;
  WatermarkKeySet keys;
};

/// One ranked sweep outcome. Unlike DetectWithCertificate, a failed key
/// commitment does *not* veto detection — in a blind "whose mark is this?"
/// sweep most candidates are wrong by construction, and a strong detection
/// under uncommitted keys is itself evidence (of a forged certificate) the
/// operator must see, not an error.
struct SweepMatch {
  std::string id;
  bool commitment_verified = false;
  DetectionResult detection;
  OwnershipDecision decision;
};

/// Result of WatermarkService::SweepOwnership.
struct SweepReport {
  /// Every candidate whose detection ran, most confident first: owners
  /// before non-owners, then ascending p-value, then descending matched
  /// bits, then id (a total, deterministic order).
  std::vector<SweepMatch> ranked;
  /// Candidates whose detection could not run (bad attributes, empty
  /// domain, unresolvable PRF, ...), with the reason.
  std::vector<std::pair<std::string, Status>> failed;
  std::size_t plans_built = 0;      ///< distinct RelationPlans (attr groups)
  std::size_t messages_hashed = 0;  ///< prepared messages hashed, summed
  double wall_seconds = 0.0;      ///< whole sweep, plan builds included
};

struct ServiceOptions {
  /// Worker threads for ExecuteBatches (0 = auto: CATMARK_THREADS when set,
  /// otherwise the hardware thread count). Parallelism is across *sessions*;
  /// one session's batches always run in order on one worker.
  std::size_t num_threads = 0;
};

/// A multi-session streaming watermark service: many concurrent
/// StreamSessions (distinct keys, marks and relations — think one per
/// customer dataset) behind small integer handles, with a batch executor
/// that fans independent sessions out over the common/parallel pool.
///
/// The service owns each session's relation; Close hands it back. Results
/// are bit-identical at every thread count: batches for the same session
/// run in submission order on a single worker, and distinct sessions share
/// no mutable state.
///
/// Open/Close and ExecuteBatches are *not* internally synchronized against
/// each other — drive the service from one thread (it parallelizes inside
/// ExecuteBatches), like every other mutation API in this library.
class WatermarkService {
 public:
  explicit WatermarkService(ServiceOptions options = {});

  /// Opens a session over `spec`, seeded with `relation` (may be empty —
  /// a fresh feed). Returns the session id.
  Result<std::size_t> Open(SessionSpec spec, Relation relation);

  /// Live accessors; the id must name an open session (checked).
  StreamSession& session(std::size_t id);
  const Relation& relation(std::size_t id) const;

  /// Inserts one batch into session `id`'s relation.
  Result<BatchReport> InsertBatch(std::size_t id, std::span<Row> rows);

  /// Re-evaluates one updated tuple of session `id`'s relation.
  Result<bool> Refresh(std::size_t id, std::size_t row_index);

  /// One unit of work for the batch executor. `rows` is consumed.
  struct SessionBatch {
    std::size_t session_id = 0;
    std::vector<Row> rows;
  };

  /// Executes a mixed stream of batches, parallelizing across sessions:
  /// batches are grouped by session id (submission order preserved within a
  /// session) and distinct sessions run concurrently. results[i] corresponds
  /// to batches[i]; a bad session id fails that batch only.
  std::vector<Result<BatchReport>> ExecuteBatches(
      std::span<SessionBatch> batches);

  /// Blind multi-key ownership sweep over a suspect relation: "whose mark
  /// is this data carrying?". Candidates are grouped by (key attribute,
  /// target attribute, domain) so each group shares one DetectEngine
  /// RelationPlan, then every candidate runs through the amortized
  /// per-key pass (DetectEngine::DetectMany, parallel keys × shards over
  /// the service's thread budget) and is decided against its certificate's
  /// mark at significance `alpha`. Stateless with respect to sessions —
  /// the suspect is whatever relation the dispute brought in. Fails only
  /// when `candidates` is empty; per-candidate problems land in
  /// SweepReport::failed.
  Result<SweepReport> SweepOwnership(const Relation& suspect,
                                     std::span<const OwnershipCandidate> candidates,
                                     double alpha = 1e-3) const;

  /// Closes session `id` and returns its relation.
  Result<Relation> Close(std::size_t id);

  /// Number of currently open sessions.
  std::size_t num_sessions() const { return open_count_; }

 private:
  struct Entry {
    StreamSession session;
    Relation relation;
  };

  Entry* Find(std::size_t id);

  ServiceOptions options_;
  // Slot per ever-opened session; Close nulls the slot (ids are not reused,
  // so a stale handle fails loudly instead of hitting a stranger's session).
  std::vector<std::unique_ptr<Entry>> entries_;
  std::size_t open_count_ = 0;
};

}  // namespace catmark

#endif  // CATMARK_SERVICE_SERVICE_H_
