#ifndef CATMARK_CRYPTO_PRF_H_
#define CATMARK_CRYPTO_PRF_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/result.h"
#include "crypto/hash.h"
#include "crypto/keyed_hash.h"

namespace catmark {

/// The registered keyed-PRF backends of the watermarking channel. The paper
/// only requires a keyed one-way hash for tuple fitness / value / position
/// selection (Section 2.2) — the concrete primitive is an implementation
/// choice, so it is a first-class parameter:
///
///   - kKeyedHash ("keyed-hash"): the paper-literal H(k;V;k) sandwich over
///     the configured crypto hash (SHA-256 by default). Bit-compatible with
///     the pre-PRF-subsystem KeyedHasher — the compatibility default every
///     deployed watermark and certificate was embedded with.
///   - kHmacSha256 ("hmac-sha256"): RFC 2104 HMAC-SHA256, the provably-PRF
///     modern construction (RFC 4231 vectors pin it).
///   - kSipHash24 ("siphash24"): SipHash-2-4, a short-input PRF roughly an
///     order of magnitude cheaper than a SHA-256 sandwich — the throughput
///     backend for large-scale detection sweeps.
///
/// Embedder and detector must agree on the backend: a mark embedded under
/// one PRF is invisible under another (certificates record the id for
/// exactly this reason; a certificate without the field predates the
/// subsystem and means kKeyedHash).
enum class PrfKind { kKeyedHash, kHmacSha256, kSipHash24 };

/// Registered name of a backend ("keyed-hash", "hmac-sha256", "siphash24").
std::string_view PrfKindName(PrfKind kind);

/// Comma-separated list of every registered backend name, for error
/// messages and --help text.
std::string RegisteredPrfNameList();

/// Name -> backend. Unknown names are InvalidArgument and the message lists
/// the registered backends (this is the validation behind --prf,
/// CATMARK_PRF and certificate deserialization).
Result<PrfKind> PrfKindFromName(std::string_view name);

/// Resolves a CATMARK_PRF-style environment value: nullptr/empty means
/// "not configured" and yields `fallback`; anything else must be a
/// registered backend name or the result is InvalidArgument (a silently
/// ignored typo here would detect with the wrong primitive and read as a
/// destroyed watermark).
Result<PrfKind> ResolvePrfKindEnv(const char* text, PrfKind fallback);

/// Resolves WatermarkParams::prf: an explicit choice wins; nullopt consults
/// the CATMARK_PRF environment variable and defaults to kKeyedHash.
Result<PrfKind> ResolvePrfKind(const std::optional<PrfKind>& choice);

/// A keyed pseudo-random function with 64-bit output — the primitive behind
/// tuple fitness, value selection and bit-position selection. Implementations
/// are immutable after construction and safe to share across threads; the
/// key schedule is set up once in the constructor, so batch callers pay it
/// neither per call nor per row.
class KeyedPrf {
 public:
  virtual ~KeyedPrf() = default;

  /// Registered backend name (matches PrfKindName(kind())).
  virtual std::string_view Name() const = 0;
  virtual PrfKind kind() const = 0;

  /// PRF_k(data), truncated to 64 bits.
  virtual std::uint64_t Hash64(const std::uint8_t* data,
                               std::size_t len) const = 0;
  std::uint64_t Hash64(std::string_view data) const {
    return Hash64(reinterpret_cast<const std::uint8_t*>(data.data()),
                  data.size());
  }

  /// Batch form: out[i] = Hash64(inputs[i]) for every i (sizes must match).
  /// One virtual dispatch per column chunk instead of per row — backends
  /// override it with a tight monomorphic loop; the base implementation is
  /// the reference the override must stay bit-identical to.
  virtual void Hash64Column(std::span<const std::string_view> inputs,
                            std::span<std::uint64_t> out) const;

  /// Arena batch form: message i occupies arena bytes [bounds[i],
  /// bounds[i + 1]), so `bounds.size()` must be `out.size() + 1`.
  /// Bit-identical to Hash64Column over the equivalent views, but takes the
  /// (arena, offsets) layout batch producers already hold — any subrange of
  /// a prepared message block hashes via a bounds subspan with no per-chunk
  /// string_view materialization. This contiguous layout is also where the
  /// multi-lane SIMD backend slots in: siphash24 routes it through 4/8-lane
  /// SSE2/AVX2 kernels (see crypto/siphash_simd.h), several messages per
  /// call with no pointer chasing.
  virtual void Hash64Arena(const std::uint8_t* arena,
                           std::span<const std::size_t> bounds,
                           std::span<std::uint64_t> out) const;

  /// Fixed-shape batch form: out[i] = Hash64 of the `len` bytes at
  /// base + i * stride (stride >= len; equal is the packed equal-length
  /// arena). The shape every fixed-width key column serializes to — no
  /// per-message bounds lookups at all, so the SIMD lanes stream at a
  /// constant stride. Bit-identical to the equivalent Hash64Arena call.
  virtual void Hash64Fixed(const std::uint8_t* base, std::size_t len,
                           std::size_t stride,
                           std::span<std::uint64_t> out) const;

  /// Typed batch form for the dominant plain-key shape: out[i] = Hash64 of
  /// Value(vals[i])'s canonical serialization (tag 0x01 + big-endian
  /// payload, 9 bytes). The base implementation materializes each record
  /// and calls Hash64; siphash24 overrides it with a kernel that assembles
  /// both SipHash input blocks of the record in vector registers straight
  /// from the int64s — no serialization buffer exists at all. Bit-identical
  /// to SerializeForHash + Hash64 for every backend.
  virtual void Hash64Int64Keys(const std::int64_t* vals, std::size_t count,
                               std::span<std::uint64_t> out) const;
};

/// Builds a backend instance over `key`. `algo` is only consulted by
/// kKeyedHash (the sandwich runs over MD5/SHA-1/SHA-256 per
/// WatermarkParams::hash_algo, like KeyedHasher always has); the other
/// backends fix their primitive.
std::unique_ptr<KeyedPrf> CreateKeyedPrf(
    PrfKind kind, const SecretKey& key,
    HashAlgorithm algo = HashAlgorithm::kSha256);

}  // namespace catmark

#endif  // CATMARK_CRYPTO_PRF_H_
