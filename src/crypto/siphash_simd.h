#ifndef CATMARK_CRYPTO_SIPHASH_SIMD_H_
#define CATMARK_CRYPTO_SIPHASH_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "common/bits.h"

namespace catmark {

/// Vector widths the multi-lane SipHash-2-4 backend can run at. Ordered so
/// that a numeric comparison is a capability comparison: every level can be
/// clamped down to what the hardware (or the operator) allows.
///
///   - kScalar: the reference loop in siphash.cc, one message at a time.
///   - kSse2:   4 independent messages per call (two 2-lane state sets).
///   - kAvx2:   8 independent messages per call (two 4-lane state sets).
///
/// Every level is bit-identical to kScalar for every message — the lanes
/// run the exact SipRound sequence on independent state, so the choice is
/// purely a throughput knob, never a compatibility one.
enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Registered name of a level ("off", "sse2", "avx2").
std::string_view SimdLevelName(SimdLevel level);

/// Name -> level: "avx2", "sse2", and "off" (alias "scalar"); anything else
/// is nullopt. Case-sensitive, like CATMARK_PRF.
std::optional<SimdLevel> SimdLevelFromName(std::string_view name);

/// The widest level this binary can run on this machine: compile-time
/// kernel availability AND the runtime CPUID check. Always kScalar off
/// x86-64.
SimdLevel HardwareSimdLevel();

/// The level batch hashing actually dispatches to: HardwareSimdLevel()
/// clamped by the CATMARK_SIMD environment variable ("avx2", "sse2", "off";
/// an unknown value is ignored with a one-line stderr warning — unlike
/// CATMARK_PRF a typo here cannot change any result, only the speed) and by
/// ForceSimdLevel. A request above the hardware level clamps down, so
/// CATMARK_SIMD=avx2 on an SSE2-only box runs SSE2, not illegal
/// instructions.
SimdLevel ActiveSimdLevel();

/// Process-wide dispatch override, clamped to HardwareSimdLevel():
/// parity tests and benches sweep levels in-process with it. nullopt
/// restores the environment/hardware default. Not intended for production
/// configuration — that is what CATMARK_SIMD is for.
void ForceSimdLevel(std::optional<SimdLevel> level);

/// Batch SipHash-2-4 over an (arena, bounds) message block: out[i] covers
/// arena bytes [bounds[i], bounds[i + 1]), so bounds.size() must be
/// out.size() + 1 (an empty batch is the single bound {0}). Equal-length
/// runs — including the fixed-width serialized-key layout detection
/// produces — go through the multi-lane kernels directly; mixed lengths
/// are bucketed by length and flushed lane-group by lane-group, with a
/// scalar tail for partial groups and messages longer than the bucket cap.
/// Bit-identical to the scalar loop at every level.
void SipHash24Batch(std::uint64_t k0, std::uint64_t k1,
                    const std::uint8_t* arena,
                    std::span<const std::size_t> bounds,
                    std::span<std::uint64_t> out);

/// Fixed-shape batch: out[i] = SipHash24 of the `len` bytes at
/// base + i * stride (stride >= len; stride == len is the packed
/// equal-length arena). No per-message bounds lookups — this is the layout
/// the detect engine's RelationPlan emits for fixed-width keys.
void SipHash24Fixed(std::uint64_t k0, std::uint64_t k1,
                    const std::uint8_t* base, std::size_t len,
                    std::size_t stride, std::span<std::uint64_t> out);

/// Batch over scattered string_view messages (sizes must match): the
/// Hash64Column shape. Same bucketing and bit-identity as SipHash24Batch.
void SipHash24Views(std::uint64_t k0, std::uint64_t k1,
                    std::span<const std::string_view> inputs,
                    std::span<std::uint64_t> out);

/// Batch over canonical int64-key messages: out[i] = SipHash24 of the
/// 9-byte serialization tag 0x01 + big-endian vals[i] — without ever
/// materializing those bytes. A 9-byte message is exactly two SipHash input
/// blocks, and both are pure ALU functions of the value
/// (block0 = 0x01 | byteswap64(v) << 8, tail = 9 << 56 | byteswap64(v) >> 56),
/// so the AVX2 path assembles them in vector registers from two contiguous
/// loads of `vals` — no byte stores, no lane gathers, no per-lane tail
/// switch. Bit-identical to SerializeForHash + the scalar loop at every
/// dispatch level.
void SipHash24Int64Keys(std::uint64_t k0, std::uint64_t k1,
                        const std::int64_t* vals, std::size_t count,
                        std::span<std::uint64_t> out);

/// Packs `check(h[i])` into a bitset: bit (i mod 64) of words[i / 64] is 1
/// iff the divisor exactly divides h[i]; trailing bits of the last word are
/// zero. `words` must hold ceil(count / 64) entries. The scalar multiply in
/// DivisibilityCheck cannot auto-vectorize (no 64-bit vector multiply before
/// AVX-512), so the AVX2 kernel decomposes h * odd_inv into vpmuludq
/// cross-products and does the unsigned compare sign-biased — this is the
/// detect hot loop's fitness test, which is why it lives with the SIMD
/// dispatch rather than in common/. Identical output at every level.
void DivisibilityMask64(const DivisibilityCheck& check, const std::uint64_t* h,
                        std::size_t count, std::uint64_t* words);

}  // namespace catmark

#endif  // CATMARK_CRYPTO_SIPHASH_SIMD_H_
