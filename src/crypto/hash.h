#ifndef CATMARK_CRYPTO_HASH_H_
#define CATMARK_CRYPTO_HASH_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace catmark {

/// Output of a cryptographic hash. Fixed storage for up to 32 bytes
/// (SHA-256); `size` is the algorithm's true digest length.
struct Digest {
  std::array<std::uint8_t, 32> bytes{};
  std::size_t size = 0;

  /// Lower-case hex string of the digest.
  std::string ToHex() const;

  /// First 8 digest bytes interpreted big-endian. This is the 64-bit value
  /// the watermarking layer works with; one-wayness of the full digest
  /// carries over to any fixed truncation.
  std::uint64_t ToUint64() const;

  friend bool operator==(const Digest& a, const Digest& b) {
    return a.size == b.size && a.bytes == b.bytes;
  }
};

/// Streaming one-way hash interface (Section 2.2 of the paper relies on the
/// existence of such a construct; MD5 and SHA are its named candidates).
class HashFunction {
 public:
  virtual ~HashFunction() = default;

  virtual std::string_view Name() const = 0;
  virtual std::size_t DigestSize() const = 0;

  /// Re-initializes the state; the object can be reused for a new message.
  virtual void Reset() = 0;
  virtual void Update(const std::uint8_t* data, std::size_t len) = 0;
  virtual Digest Finish() = 0;

  /// One-shot convenience: Reset + Update + Finish.
  Digest Hash(const std::uint8_t* data, std::size_t len);
  Digest Hash(std::string_view data);
};

/// Supported algorithms; kSha256 is the library default.
enum class HashAlgorithm { kMd5, kSha1, kSha256 };

std::string_view HashAlgorithmName(HashAlgorithm algo);

/// Factory for a fresh hash object of the given algorithm.
std::unique_ptr<HashFunction> CreateHash(HashAlgorithm algo);

}  // namespace catmark

#endif  // CATMARK_CRYPTO_HASH_H_
