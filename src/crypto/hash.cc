#include "crypto/hash.h"

#include "common/hex.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace catmark {

std::string Digest::ToHex() const { return HexEncode(bytes.data(), size); }

std::uint64_t Digest::ToUint64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  }
  return v;
}

Digest HashFunction::Hash(const std::uint8_t* data, std::size_t len) {
  Reset();
  Update(data, len);
  return Finish();
}

Digest HashFunction::Hash(std::string_view data) {
  return Hash(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

std::string_view HashAlgorithmName(HashAlgorithm algo) {
  switch (algo) {
    case HashAlgorithm::kMd5:
      return "MD5";
    case HashAlgorithm::kSha1:
      return "SHA-1";
    case HashAlgorithm::kSha256:
      return "SHA-256";
  }
  return "Unknown";
}

std::unique_ptr<HashFunction> CreateHash(HashAlgorithm algo) {
  switch (algo) {
    case HashAlgorithm::kMd5:
      return std::make_unique<Md5>();
    case HashAlgorithm::kSha1:
      return std::make_unique<Sha1>();
    case HashAlgorithm::kSha256:
      return std::make_unique<Sha256>();
  }
  return nullptr;
}

}  // namespace catmark
