#include "crypto/hmac.h"

#include <algorithm>

#include "common/check.h"

namespace catmark {

namespace {
constexpr std::size_t kBlockSize = 64;  // MD5/SHA-1/SHA-256 block size
}  // namespace

Hmac::Hmac(HashAlgorithm algo, const std::vector<std::uint8_t>& key)
    : algo_(algo) {
  // Keys longer than the block size are hashed first (RFC 2104).
  std::vector<std::uint8_t> k = key;
  if (k.size() > kBlockSize) {
    const auto hash = CreateHash(algo_);
    const Digest d = hash->Hash(k.data(), k.size());
    const std::size_t n = std::min(d.size, d.bytes.size());
    k.assign(d.bytes.data(), d.bytes.data() + n);
  }
  k.resize(kBlockSize, 0);
  ipad_key_.resize(kBlockSize);
  opad_key_.resize(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
}

Digest Hmac::Compute(const std::uint8_t* data, std::size_t len) const {
  const auto inner = CreateHash(algo_);
  inner->Reset();
  inner->Update(ipad_key_.data(), ipad_key_.size());
  inner->Update(data, len);
  const Digest inner_digest = inner->Finish();

  const auto outer = CreateHash(algo_);
  outer->Reset();
  outer->Update(opad_key_.data(), opad_key_.size());
  outer->Update(inner_digest.bytes.data(), inner_digest.size);
  return outer->Finish();
}

Digest Hmac::Compute(std::string_view data) const {
  return Compute(reinterpret_cast<const std::uint8_t*>(data.data()),
                 data.size());
}

std::uint64_t Hmac::Compute64(std::string_view data) const {
  return Compute(data).ToUint64();
}

}  // namespace catmark
