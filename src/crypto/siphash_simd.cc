#include "crypto/siphash_simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "crypto/siphash.h"
#include "crypto/siphash_simd_internal.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#endif

namespace catmark {

namespace {

using siphash_internal::LaneKernel;

#if defined(__x86_64__) || defined(_M_X64)

SimdLevel DetectHardwareLevel() {
#if defined(__GNUC__) || defined(__clang__)
  if (siphash_internal::Avx2KernelsCompiled() &&
      __builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kSse2;  // baseline on x86-64
}

#else

SimdLevel DetectHardwareLevel() { return SimdLevel::kScalar; }

#endif

SimdLevel EnvSimdLevel() {
  const SimdLevel hw = HardwareSimdLevel();
  const char* text = std::getenv("CATMARK_SIMD");
  if (text == nullptr || *text == '\0') return hw;
  const std::optional<SimdLevel> parsed = SimdLevelFromName(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "catmark: ignoring unknown CATMARK_SIMD value '%s' "
                 "(expected avx2, sse2 or off)\n",
                 text);
    return hw;
  }
  return *parsed < hw ? *parsed : hw;
}

// ForceSimdLevel state: -1 = no override. Relaxed atomics suffice — the
// override only ever changes which (bit-identical) kernel runs.
std::atomic<int> g_forced_level{-1};

// Messages longer than this skip the length buckets and hash scalar; the
// watermarking channel's serialized keys are tens of bytes, so in practice
// everything vectorizes. Bounds the per-call bucket table at
// (kMaxBucketedLen + 1) * kMaxLanes u32 slots of stack.
constexpr std::size_t kMaxBucketedLen = 256;
constexpr std::size_t kMaxLanes = 8;

struct Dispatch {
  LaneKernel kernel = nullptr;  // nullptr = scalar
  std::size_t lanes = 1;
};

Dispatch CurrentDispatch() {
#if defined(__x86_64__) || defined(_M_X64)
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return {siphash_internal::SipHash24x8Avx2, 8};
    case SimdLevel::kSse2:
      return {siphash_internal::SipHash24x4Sse2, 4};
    case SimdLevel::kScalar:
      break;
  }
#endif
  return {};
}

/// The shared mixed-length driver: messages are bucketed by length, each
/// bucket flushing through the lane kernel whenever it fills, and every
/// leftover (partial buckets, overlong messages) hashes scalar. ptr_at(i) /
/// len_at(i) describe message i; results land in out[i] regardless of the
/// order buckets flush in, so the output is identical to the scalar loop.
template <typename PtrAt, typename LenAt>
void BucketedBatch(const Dispatch& d, std::uint64_t k0, std::uint64_t k1,
                   std::size_t count, std::uint64_t* out, PtrAt ptr_at,
                   LenAt len_at) {
  std::uint32_t pending[kMaxBucketedLen + 1][kMaxLanes];
  std::uint8_t fill[kMaxBucketedLen + 1] = {};
  const std::uint8_t* lane_ptrs[kMaxLanes];
  std::uint64_t lane_out[kMaxLanes];
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = len_at(i);
    if (len > kMaxBucketedLen) {
      out[i] = SipHash24(k0, k1, ptr_at(i), len);
      continue;
    }
    pending[len][fill[len]++] = static_cast<std::uint32_t>(i);
    if (fill[len] == d.lanes) {
      for (std::size_t l = 0; l < d.lanes; ++l) {
        lane_ptrs[l] = ptr_at(pending[len][l]);
      }
      d.kernel(k0, k1, lane_ptrs, len, lane_out);
      for (std::size_t l = 0; l < d.lanes; ++l) {
        out[pending[len][l]] = lane_out[l];
      }
      fill[len] = 0;
    }
  }
  for (std::size_t len = 0; len <= kMaxBucketedLen; ++len) {
    for (std::size_t j = 0; j < fill[len]; ++j) {
      const std::uint32_t i = pending[len][j];
      out[i] = SipHash24(k0, k1, ptr_at(i), len);
    }
  }
}

void FixedBatch(const Dispatch& d, std::uint64_t k0, std::uint64_t k1,
                const std::uint8_t* base, std::size_t len, std::size_t stride,
                std::span<std::uint64_t> out) {
  const std::size_t count = out.size();
  const std::uint8_t* lane_ptrs[kMaxLanes];
  std::size_t i = 0;
  if (d.kernel != nullptr) {
    for (; i + d.lanes <= count; i += d.lanes) {
      for (std::size_t l = 0; l < d.lanes; ++l) {
        lane_ptrs[l] = base + (i + l) * stride;
      }
      d.kernel(k0, k1, lane_ptrs, len, out.data() + i);
    }
  }
  for (; i < count; ++i) {
    out[i] = SipHash24(k0, k1, base + i * stride, len);
  }
}

}  // namespace

std::string_view SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "off";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<SimdLevel> SimdLevelFromName(std::string_view name) {
  if (name == "off" || name == "scalar") return SimdLevel::kScalar;
  if (name == "sse2") return SimdLevel::kSse2;
  if (name == "avx2") return SimdLevel::kAvx2;
  return std::nullopt;
}

SimdLevel HardwareSimdLevel() {
  static const SimdLevel level = DetectHardwareLevel();
  return level;
}

SimdLevel ActiveSimdLevel() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  static const SimdLevel level = EnvSimdLevel();
  return level;
}

void ForceSimdLevel(std::optional<SimdLevel> level) {
  if (!level.has_value()) {
    g_forced_level.store(-1, std::memory_order_relaxed);
    return;
  }
  const SimdLevel hw = HardwareSimdLevel();
  const SimdLevel clamped = *level < hw ? *level : hw;
  g_forced_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

void SipHash24Batch(std::uint64_t k0, std::uint64_t k1,
                    const std::uint8_t* arena,
                    std::span<const std::size_t> bounds,
                    std::span<std::uint64_t> out) {
  CATMARK_CHECK_EQ(bounds.size(), out.size() + 1);
  const std::size_t count = out.size();
  const Dispatch d = CurrentDispatch();
  if (d.kernel == nullptr || count < d.lanes) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = SipHash24(k0, k1, arena + bounds[i], bounds[i + 1] - bounds[i]);
    }
    return;
  }
  // Equal-length batches — the dominant shape: fixed-width serialized keys
  // produce messages of one size, back to back in the arena — skip the
  // bucket table entirely and stream lane groups at a constant stride.
  const std::size_t len0 = bounds[1] - bounds[0];
  bool uniform = true;
  for (std::size_t i = 1; i < count; ++i) {
    if (bounds[i + 1] - bounds[i] != len0) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    FixedBatch(d, k0, k1, arena + bounds[0], len0, len0, out);
    return;
  }
  BucketedBatch(
      d, k0, k1, count, out.data(),
      [&](std::size_t i) { return arena + bounds[i]; },
      [&](std::size_t i) { return bounds[i + 1] - bounds[i]; });
}

void SipHash24Fixed(std::uint64_t k0, std::uint64_t k1,
                    const std::uint8_t* base, std::size_t len,
                    std::size_t stride, std::span<std::uint64_t> out) {
  CATMARK_CHECK_GE(stride, len);
  FixedBatch(CurrentDispatch(), k0, k1, base, len, stride, out);
}

void SipHash24Int64Keys(std::uint64_t k0, std::uint64_t k1,
                        const std::int64_t* vals, std::size_t count,
                        std::span<std::uint64_t> out) {
  CATMARK_CHECK_EQ(count, out.size());
  std::size_t i = 0;
#if defined(__x86_64__) || defined(_M_X64)
  const SimdLevel level = ActiveSimdLevel();
  if (level == SimdLevel::kAvx2) {
    const std::size_t n8 = count & ~std::size_t{7};
    siphash_internal::SipHash24Int64BatchAvx2(k0, k1, vals, n8, out.data());
    i = n8;
  }
  if (level >= SimdLevel::kSse2) {
    const std::size_t n4 = (count - i) & ~std::size_t{3};
    siphash_internal::SipHash24Int64BatchSse2(k0, k1, vals + i, n4,
                                              out.data() + i);
    i += n4;
  }
#endif
  // Scalar tail (and the whole batch at the off level): materialize the
  // canonical record and run the reference — the bit-identity anchor the
  // vector paths are pinned against.
  std::uint8_t buf[9];
  buf[0] = 1;
  for (; i < count; ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(vals[i]);
    for (int b = 0; b < 8; ++b) {
      buf[1 + b] = static_cast<std::uint8_t>(v >> (8 * (7 - b)));
    }
    out[i] = SipHash24(k0, k1, buf, sizeof(buf));
  }
}

void DivisibilityMask64(const DivisibilityCheck& check, const std::uint64_t* h,
                        std::size_t count, std::uint64_t* words) {
  std::size_t i = 0;
  std::uint64_t* w = words;
#if defined(__x86_64__) || defined(_M_X64)
  // Only AVX2 has a 64-bit vector compare; SSE2 runs the scalar loop.
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    for (; i + 64 <= count; i += 64) {
      *w++ = siphash_internal::DivisibilityMaskWordAvx2(
          check.odd_inv(), check.odd_limit(), check.pow2_mask(), h + i);
    }
  }
#endif
  std::uint64_t word = 0;
  int bit = 0;
  for (; i < count; ++i) {
    word |= static_cast<std::uint64_t>(check(h[i])) << bit;
    if (++bit == 64) {
      *w++ = word;
      word = 0;
      bit = 0;
    }
  }
  if (bit != 0) *w = word;
}

void SipHash24Views(std::uint64_t k0, std::uint64_t k1,
                    std::span<const std::string_view> inputs,
                    std::span<std::uint64_t> out) {
  CATMARK_CHECK_EQ(inputs.size(), out.size());
  const std::size_t count = out.size();
  const Dispatch d = CurrentDispatch();
  if (d.kernel == nullptr || count < d.lanes) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = SipHash24(
          k0, k1, reinterpret_cast<const std::uint8_t*>(inputs[i].data()),
          inputs[i].size());
    }
    return;
  }
  BucketedBatch(
      d, k0, k1, count, out.data(),
      [&](std::size_t i) {
        return reinterpret_cast<const std::uint8_t*>(inputs[i].data());
      },
      [&](std::size_t i) { return inputs[i].size(); });
}

#if defined(__x86_64__) || defined(_M_X64)

namespace siphash_internal {

namespace {

inline __m128i VAdd(__m128i a, __m128i b) { return _mm_add_epi64(a, b); }
inline __m128i VXor(__m128i a, __m128i b) { return _mm_xor_si128(a, b); }
inline __m128i VRotl(__m128i x, int b) {
  return _mm_or_si128(_mm_slli_epi64(x, b), _mm_srli_epi64(x, 64 - b));
}
// rotl64 by 32 == swap the 32-bit halves of each 64-bit lane.
inline __m128i VRotl32(__m128i x) {
  return _mm_shuffle_epi32(x, _MM_SHUFFLE(2, 3, 0, 1));
}

}  // namespace

void SipHash24x4Sse2(std::uint64_t k0, std::uint64_t k1,
                     const std::uint8_t* const* ptrs, std::size_t len,
                     std::uint64_t* out) {
  const __m128i i0 =
      _mm_set1_epi64x(static_cast<long long>(0x736f6d6570736575ULL ^ k0));
  const __m128i i1 =
      _mm_set1_epi64x(static_cast<long long>(0x646f72616e646f6dULL ^ k1));
  const __m128i i2 =
      _mm_set1_epi64x(static_cast<long long>(0x6c7967656e657261ULL ^ k0));
  const __m128i i3 =
      _mm_set1_epi64x(static_cast<long long>(0x7465646279746573ULL ^ k1));
  // Two 2-lane state sets: lanes {0,1} in a*, lanes {2,3} in b*. Both
  // advance in lockstep so the four dependency chains interleave.
  __m128i a0 = i0, a1 = i1, a2 = i2, a3 = i3;
  __m128i b0 = i0, b1 = i1, b2 = i2, b3 = i3;
  const std::uint8_t* p0 = ptrs[0];
  const std::uint8_t* p1 = ptrs[1];
  const std::uint8_t* p2 = ptrs[2];
  const std::uint8_t* p3 = ptrs[3];

  const std::size_t tail_at = len - (len % 8);
  for (std::size_t off = 0; off != tail_at; off += 8) {
    const __m128i ma =
        _mm_set_epi64x(static_cast<long long>(LoadLe64(p1 + off)),
                       static_cast<long long>(LoadLe64(p0 + off)));
    const __m128i mb =
        _mm_set_epi64x(static_cast<long long>(LoadLe64(p3 + off)),
                       static_cast<long long>(LoadLe64(p2 + off)));
    a3 = VXor(a3, ma);
    b3 = VXor(b3, mb);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    a0 = VXor(a0, ma);
    b0 = VXor(b0, mb);
  }

  const __m128i fa =
      _mm_set_epi64x(static_cast<long long>(SipTailBlock(p1 + tail_at, len)),
                     static_cast<long long>(SipTailBlock(p0 + tail_at, len)));
  const __m128i fb =
      _mm_set_epi64x(static_cast<long long>(SipTailBlock(p3 + tail_at, len)),
                     static_cast<long long>(SipTailBlock(p2 + tail_at, len)));
  a3 = VXor(a3, fa);
  b3 = VXor(b3, fb);
  CATMARK_SIP_VROUND(a0, a1, a2, a3);
  CATMARK_SIP_VROUND(b0, b1, b2, b3);
  CATMARK_SIP_VROUND(a0, a1, a2, a3);
  CATMARK_SIP_VROUND(b0, b1, b2, b3);
  a0 = VXor(a0, fa);
  b0 = VXor(b0, fb);

  const __m128i ff = _mm_set1_epi64x(0xff);
  a2 = VXor(a2, ff);
  b2 = VXor(b2, ff);
  for (int r = 0; r < 4; ++r) {
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
  }

  const __m128i ra = VXor(VXor(a0, a1), VXor(a2, a3));
  const __m128i rb = VXor(VXor(b0, b1), VXor(b2, b3));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), ra);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2), rb);
}

namespace {

inline std::uint64_t BswapU64(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap64(v);
#else
  std::uint64_t r = 0;
  for (int b = 0; b < 8; ++b) {
    r = (r << 8) | ((v >> (8 * b)) & 0xff);
  }
  return r;
#endif
}

}  // namespace

void SipHash24Int64BatchSse2(std::uint64_t k0, std::uint64_t k1,
                             const std::int64_t* vals, std::size_t count,
                             std::uint64_t* out) {
  const __m128i i0 =
      _mm_set1_epi64x(static_cast<long long>(0x736f6d6570736575ULL ^ k0));
  const __m128i i1 =
      _mm_set1_epi64x(static_cast<long long>(0x646f72616e646f6dULL ^ k1));
  const __m128i i2 =
      _mm_set1_epi64x(static_cast<long long>(0x6c7967656e657261ULL ^ k0));
  const __m128i i3 =
      _mm_set1_epi64x(static_cast<long long>(0x7465646279746573ULL ^ k1));
  const __m128i ff = _mm_set1_epi64x(0xff);

  for (std::size_t i = 0; i < count; i += 4) {
    // The 9-byte record [0x01][BE payload] as two little-endian SipHash
    // blocks, computed scalar per lane: block0 = 0x01 | bswap(v) << 8,
    // tail = 9 << 56 | bswap(v) >> 56.
    std::uint64_t m0[4];
    std::uint64_t m1[4];
    for (int l = 0; l < 4; ++l) {
      const std::uint64_t b =
          BswapU64(static_cast<std::uint64_t>(vals[i + l]));
      m0[l] = 1ULL | (b << 8);
      m1[l] = (9ULL << 56) | (b >> 56);
    }
    const __m128i m0a = _mm_set_epi64x(static_cast<long long>(m0[1]),
                                       static_cast<long long>(m0[0]));
    const __m128i m0b = _mm_set_epi64x(static_cast<long long>(m0[3]),
                                       static_cast<long long>(m0[2]));
    const __m128i m1a = _mm_set_epi64x(static_cast<long long>(m1[1]),
                                       static_cast<long long>(m1[0]));
    const __m128i m1b = _mm_set_epi64x(static_cast<long long>(m1[3]),
                                       static_cast<long long>(m1[2]));

    __m128i a0 = i0, a1 = i1, a2 = i2, a3 = i3;
    __m128i b0 = i0, b1 = i1, b2 = i2, b3 = i3;

    a3 = VXor(a3, m0a);
    b3 = VXor(b3, m0b);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    a0 = VXor(a0, m0a);
    b0 = VXor(b0, m0b);

    a3 = VXor(a3, m1a);
    b3 = VXor(b3, m1b);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    a0 = VXor(a0, m1a);
    b0 = VXor(b0, m1b);

    a2 = VXor(a2, ff);
    b2 = VXor(b2, ff);
    for (int r = 0; r < 4; ++r) {
      CATMARK_SIP_VROUND(a0, a1, a2, a3);
      CATMARK_SIP_VROUND(b0, b1, b2, b3);
    }

    const __m128i ra = VXor(VXor(a0, a1), VXor(a2, a3));
    const __m128i rb = VXor(VXor(b0, b1), VXor(b2, b3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), ra);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 2), rb);
  }
}

}  // namespace siphash_internal

#endif  // x86_64

}  // namespace catmark
