// The only translation unit compiled with -mavx2 (see crypto/CMakeLists):
// nothing here runs unless the runtime dispatch in siphash_simd.cc saw both
// Avx2KernelsCompiled() and the AVX2 CPUID bit.

#include "crypto/siphash_simd_internal.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace catmark::siphash_internal {

bool Avx2KernelsCompiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

#if defined(__AVX2__)

namespace {

inline __m256i VAdd(__m256i a, __m256i b) { return _mm256_add_epi64(a, b); }
inline __m256i VXor(__m256i a, __m256i b) { return _mm256_xor_si256(a, b); }
inline __m256i VRotl(__m256i x, int b) {
  // rotl by 16 is a byte permutation, so it runs as one shuffle micro-op
  // instead of shift+shift+or — the rounds are port-throughput-bound, and
  // SipRound has one rotl16 per call, so this trims them measurably. `b`
  // is always a literal; the branch folds at compile time.
  if (b == 16) {
    const __m256i k16 =
        _mm256_setr_epi8(6, 7, 0, 1, 2, 3, 4, 5, 14, 15, 8, 9, 10, 11, 12, 13,
                         6, 7, 0, 1, 2, 3, 4, 5, 14, 15, 8, 9, 10, 11, 12, 13);
    return _mm256_shuffle_epi8(x, k16);
  }
  return _mm256_or_si256(_mm256_slli_epi64(x, b), _mm256_srli_epi64(x, 64 - b));
}
// rotl64 by 32 == swap the 32-bit halves of each 64-bit lane.
inline __m256i VRotl32(__m256i x) {
  return _mm256_shuffle_epi32(x, _MM_SHUFFLE(2, 3, 0, 1));
}

inline __m256i Gather4(const std::uint8_t* const* p, std::size_t first,
                       std::size_t off) {
  return _mm256_set_epi64x(
      static_cast<long long>(LoadLe64(p[first + 3] + off)),
      static_cast<long long>(LoadLe64(p[first + 2] + off)),
      static_cast<long long>(LoadLe64(p[first + 1] + off)),
      static_cast<long long>(LoadLe64(p[first + 0] + off)));
}

}  // namespace

void SipHash24x8Avx2(std::uint64_t k0, std::uint64_t k1,
                     const std::uint8_t* const* ptrs, std::size_t len,
                     std::uint64_t* out) {
  const __m256i i0 =
      _mm256_set1_epi64x(static_cast<long long>(0x736f6d6570736575ULL ^ k0));
  const __m256i i1 =
      _mm256_set1_epi64x(static_cast<long long>(0x646f72616e646f6dULL ^ k1));
  const __m256i i2 =
      _mm256_set1_epi64x(static_cast<long long>(0x6c7967656e657261ULL ^ k0));
  const __m256i i3 =
      _mm256_set1_epi64x(static_cast<long long>(0x7465646279746573ULL ^ k1));
  // Two 4-lane state sets: lanes {0..3} in a*, lanes {4..7} in b*, advanced
  // in lockstep so eight dependency chains interleave.
  __m256i a0 = i0, a1 = i1, a2 = i2, a3 = i3;
  __m256i b0 = i0, b1 = i1, b2 = i2, b3 = i3;

  const std::size_t tail_at = len - (len % 8);
  for (std::size_t off = 0; off != tail_at; off += 8) {
    const __m256i ma = Gather4(ptrs, 0, off);
    const __m256i mb = Gather4(ptrs, 4, off);
    a3 = VXor(a3, ma);
    b3 = VXor(b3, mb);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    a0 = VXor(a0, ma);
    b0 = VXor(b0, mb);
  }

  const __m256i fa = _mm256_set_epi64x(
      static_cast<long long>(SipTailBlock(ptrs[3] + tail_at, len)),
      static_cast<long long>(SipTailBlock(ptrs[2] + tail_at, len)),
      static_cast<long long>(SipTailBlock(ptrs[1] + tail_at, len)),
      static_cast<long long>(SipTailBlock(ptrs[0] + tail_at, len)));
  const __m256i fb = _mm256_set_epi64x(
      static_cast<long long>(SipTailBlock(ptrs[7] + tail_at, len)),
      static_cast<long long>(SipTailBlock(ptrs[6] + tail_at, len)),
      static_cast<long long>(SipTailBlock(ptrs[5] + tail_at, len)),
      static_cast<long long>(SipTailBlock(ptrs[4] + tail_at, len)));
  a3 = VXor(a3, fa);
  b3 = VXor(b3, fb);
  CATMARK_SIP_VROUND(a0, a1, a2, a3);
  CATMARK_SIP_VROUND(b0, b1, b2, b3);
  CATMARK_SIP_VROUND(a0, a1, a2, a3);
  CATMARK_SIP_VROUND(b0, b1, b2, b3);
  a0 = VXor(a0, fa);
  b0 = VXor(b0, fb);

  const __m256i ff = _mm256_set1_epi64x(0xff);
  a2 = VXor(a2, ff);
  b2 = VXor(b2, ff);
  for (int r = 0; r < 4; ++r) {
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
  }

  const __m256i ra = VXor(VXor(a0, a1), VXor(a2, a3));
  const __m256i rb = VXor(VXor(b0, b1), VXor(b2, b3));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), ra);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), rb);
}

void SipHash24Int64BatchAvx2(std::uint64_t k0, std::uint64_t k1,
                             const std::int64_t* vals, std::size_t count,
                             std::uint64_t* out) {
  // Per-64-bit-lane byteswap: shuffle_epi8 works within each 128-bit half,
  // so one control vector reverses the bytes of every qword.
  const __m256i kBswap64 =
      _mm256_setr_epi8(7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
                       7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8);
  const __m256i kTag = _mm256_set1_epi64x(1);  // serialization tag 0x01
  const __m256i kLen =
      _mm256_set1_epi64x(static_cast<long long>(9ULL << 56));  // len mod 256
  const __m256i ff = _mm256_set1_epi64x(0xff);
  const __m256i i0 =
      _mm256_set1_epi64x(static_cast<long long>(0x736f6d6570736575ULL ^ k0));
  const __m256i i1 =
      _mm256_set1_epi64x(static_cast<long long>(0x646f72616e646f6dULL ^ k1));
  const __m256i i2 =
      _mm256_set1_epi64x(static_cast<long long>(0x6c7967656e657261ULL ^ k0));
  const __m256i i3 =
      _mm256_set1_epi64x(static_cast<long long>(0x7465646279746573ULL ^ k1));

  for (std::size_t i = 0; i < count; i += 8) {
    // The 9-byte record [0x01][BE payload] read as two little-endian
    // SipHash blocks: block0 = 0x01 | bswap(v) << 8,
    // tail = 9 << 56 | bswap(v) >> 56.
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i + 4));
    const __m256i sa = _mm256_shuffle_epi8(va, kBswap64);
    const __m256i sb = _mm256_shuffle_epi8(vb, kBswap64);
    const __m256i m0a = _mm256_or_si256(_mm256_slli_epi64(sa, 8), kTag);
    const __m256i m0b = _mm256_or_si256(_mm256_slli_epi64(sb, 8), kTag);
    const __m256i m1a = _mm256_or_si256(_mm256_srli_epi64(sa, 56), kLen);
    const __m256i m1b = _mm256_or_si256(_mm256_srli_epi64(sb, 56), kLen);

    __m256i a0 = i0, a1 = i1, a2 = i2, a3 = i3;
    __m256i b0 = i0, b1 = i1, b2 = i2, b3 = i3;

    a3 = VXor(a3, m0a);
    b3 = VXor(b3, m0b);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    a0 = VXor(a0, m0a);
    b0 = VXor(b0, m0b);

    a3 = VXor(a3, m1a);
    b3 = VXor(b3, m1b);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    CATMARK_SIP_VROUND(a0, a1, a2, a3);
    CATMARK_SIP_VROUND(b0, b1, b2, b3);
    a0 = VXor(a0, m1a);
    b0 = VXor(b0, m1b);

    a2 = VXor(a2, ff);
    b2 = VXor(b2, ff);
    for (int r = 0; r < 4; ++r) {
      CATMARK_SIP_VROUND(a0, a1, a2, a3);
      CATMARK_SIP_VROUND(b0, b1, b2, b3);
    }

    const __m256i ra = VXor(VXor(a0, a1), VXor(a2, a3));
    const __m256i rb = VXor(VXor(b0, b1), VXor(b2, b3));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), ra);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), rb);
  }
}

std::uint64_t DivisibilityMaskWordAvx2(std::uint64_t odd_inv,
                                       std::uint64_t odd_limit,
                                       std::uint64_t pow2_mask,
                                       const std::uint64_t* h) {
  // h * odd_inv mod 2^64 with only 32x32->64 multiplies: split odd_inv into
  // halves; the low product is full width, the two cross products land in
  // the top half (their own overflow falls out of the modulus).
  const __m256i inv_lo =
      _mm256_set1_epi64x(static_cast<long long>(odd_inv & 0xffffffffULL));
  const __m256i inv_hi = _mm256_set1_epi64x(static_cast<long long>(odd_inv >> 32));
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(pow2_mask));
  // cmpgt_epi64 is signed; xor both sides with the sign bit to compare
  // unsigned.
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i limit_b =
      _mm256_set1_epi64x(static_cast<long long>(odd_limit ^
                                                0x8000000000000000ULL));
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t word = 0;
  for (int g = 0; g < 16; ++g) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + 4 * g));
    const __m256i lo = _mm256_mul_epu32(a, inv_lo);
    const __m256i cross = _mm256_add_epi64(
        _mm256_mul_epu32(a, inv_hi),
        _mm256_mul_epu32(_mm256_srli_epi64(a, 32), inv_lo));
    const __m256i prod = _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
    const __m256i over =
        _mm256_cmpgt_epi64(_mm256_xor_si256(prod, bias), limit_b);
    const __m256i mask_ok =
        _mm256_cmpeq_epi64(_mm256_and_si256(a, vmask), zero);
    const __m256i fit = _mm256_andnot_si256(over, mask_ok);
    const unsigned bits = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(fit)));
    word |= static_cast<std::uint64_t>(bits) << (4 * g);
  }
  return word;
}

#elif defined(__x86_64__) || defined(_M_X64)

// Built without -mavx2 (non-GNU toolchain or an explicit opt-out):
// Avx2KernelsCompiled() returns false above, so dispatch never lands here.
void SipHash24x8Avx2(std::uint64_t, std::uint64_t, const std::uint8_t* const*,
                     std::size_t, std::uint64_t*) {}
void SipHash24Int64BatchAvx2(std::uint64_t, std::uint64_t, const std::int64_t*,
                             std::size_t, std::uint64_t*) {}
std::uint64_t DivisibilityMaskWordAvx2(std::uint64_t, std::uint64_t,
                                       std::uint64_t, const std::uint64_t*) {
  return 0;
}

#endif  // __AVX2__

}  // namespace catmark::siphash_internal
