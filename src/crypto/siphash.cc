#include "crypto/siphash.h"

namespace catmark {

namespace {

inline std::uint64_t Rotl64(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline std::uint64_t LoadLe64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(p[0]) |
         (static_cast<std::uint64_t>(p[1]) << 8) |
         (static_cast<std::uint64_t>(p[2]) << 16) |
         (static_cast<std::uint64_t>(p[3]) << 24) |
         (static_cast<std::uint64_t>(p[4]) << 32) |
         (static_cast<std::uint64_t>(p[5]) << 40) |
         (static_cast<std::uint64_t>(p[6]) << 48) |
         (static_cast<std::uint64_t>(p[7]) << 56);
}

inline void SipRound(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = Rotl64(v1, 13);
  v1 ^= v0;
  v0 = Rotl64(v0, 32);
  v2 += v3;
  v3 = Rotl64(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl64(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl64(v1, 17);
  v1 ^= v2;
  v2 = Rotl64(v2, 32);
}

}  // namespace

std::uint64_t SipHash24(std::uint64_t k0, std::uint64_t k1,
                        const std::uint8_t* data, std::size_t len) {
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::uint8_t* end = data + (len - (len % 8));
  for (; data != end; data += 8) {
    const std::uint64_t m = LoadLe64(data);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  // Final block: the remaining 0..7 bytes plus the message length mod 256 in
  // the top byte.
  std::uint64_t b = static_cast<std::uint64_t>(len & 0xff) << 56;
  switch (len % 8) {
    case 7: b |= static_cast<std::uint64_t>(data[6]) << 48; [[fallthrough]];
    case 6: b |= static_cast<std::uint64_t>(data[5]) << 40; [[fallthrough]];
    case 5: b |= static_cast<std::uint64_t>(data[4]) << 32; [[fallthrough]];
    case 4: b |= static_cast<std::uint64_t>(data[3]) << 24; [[fallthrough]];
    case 3: b |= static_cast<std::uint64_t>(data[2]) << 16; [[fallthrough]];
    case 2: b |= static_cast<std::uint64_t>(data[1]) << 8; [[fallthrough]];
    case 1: b |= static_cast<std::uint64_t>(data[0]); break;
    case 0: break;
  }
  v3 ^= b;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xff;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t SipHash24(const std::uint8_t key[16], const std::uint8_t* data,
                        std::size_t len) {
  return SipHash24(LoadLe64(key), LoadLe64(key + 8), data, len);
}

}  // namespace catmark
