#ifndef CATMARK_CRYPTO_SHA1_H_
#define CATMARK_CRYPTO_SHA1_H_

#include <cstdint>

#include "crypto/hash.h"

namespace catmark {

/// SHA-1 (FIPS 180-1). 160-bit output. Provided because the paper names SHA
/// as a crypto_hash() candidate; prefer SHA-256 for new uses.
class Sha1 final : public HashFunction {
 public:
  Sha1() { Reset(); }

  std::string_view Name() const override { return "SHA-1"; }
  std::size_t DigestSize() const override { return 20; }

  void Reset() override;
  void Update(const std::uint8_t* data, std::size_t len) override;
  Digest Finish() override;

 private:
  void Transform(const std::uint8_t block[64]);

  std::uint32_t state_[5];
  std::uint64_t bit_count_;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
};

}  // namespace catmark

#endif  // CATMARK_CRYPTO_SHA1_H_
