#ifndef CATMARK_CRYPTO_SIPHASH_H_
#define CATMARK_CRYPTO_SIPHASH_H_

#include <cstdint>
#include <cstddef>

namespace catmark {

/// SipHash-2-4 (Aumasson & Bernstein, 2012): a fast keyed PRF with a
/// 128-bit key and 64-bit output, designed exactly for the "short-input
/// authentication" shape of the watermarking fitness test. This is the raw
/// primitive pinned by the reference test vectors; the KeyedPrf registry
/// wraps it behind key derivation from a SecretKey.
std::uint64_t SipHash24(std::uint64_t k0, std::uint64_t k1,
                        const std::uint8_t* data, std::size_t len);

/// As above with the key given as 16 bytes, split little-endian into
/// (k0, k1) — the layout of the published reference vectors.
std::uint64_t SipHash24(const std::uint8_t key[16], const std::uint8_t* data,
                        std::size_t len);

}  // namespace catmark

#endif  // CATMARK_CRYPTO_SIPHASH_H_
