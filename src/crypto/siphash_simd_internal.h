#ifndef CATMARK_CRYPTO_SIPHASH_SIMD_INTERNAL_H_
#define CATMARK_CRYPTO_SIPHASH_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

// Shared between the SSE2 and AVX2 translation units (the latter is the
// only file compiled with -mavx2, so everything common lives here, not in
// siphash_simd.cc). Nothing in this header is part of the public API.

namespace catmark::siphash_internal {

/// A multi-lane equal-length kernel: out[l] = SipHash24(k0, k1, ptrs[l],
/// len) for every lane. The lane count is fixed per kernel (4 for SSE2,
/// 8 for AVX2) and every lane must point at `len` readable bytes.
using LaneKernel = void (*)(std::uint64_t k0, std::uint64_t k1,
                            const std::uint8_t* const* ptrs, std::size_t len,
                            std::uint64_t* out);

/// True when the translation unit holding the AVX2 kernels was compiled
/// with AVX2 codegen enabled (dispatch still checks the CPU at runtime).
bool Avx2KernelsCompiled();

#if defined(__x86_64__) || defined(_M_X64)

/// 4 messages per call: two 2-lane SSE2 state sets advanced in lockstep.
void SipHash24x4Sse2(std::uint64_t k0, std::uint64_t k1,
                     const std::uint8_t* const* ptrs, std::size_t len,
                     std::uint64_t* out);

/// Canonical int64-key messages, 4 per iteration (count must be a multiple
/// of 4): blocks computed scalar (the per-qword byte shuffle needs SSSE3,
/// above this level), the round sequence vectorized as in SipHash24x4Sse2.
void SipHash24Int64BatchSse2(std::uint64_t k0, std::uint64_t k1,
                             const std::int64_t* vals, std::size_t count,
                             std::uint64_t* out);

/// 8 messages per call: two 4-lane AVX2 state sets advanced in lockstep.
/// Only callable when Avx2KernelsCompiled() and the CPU supports AVX2.
void SipHash24x8Avx2(std::uint64_t k0, std::uint64_t k1,
                     const std::uint8_t* const* ptrs, std::size_t len,
                     std::uint64_t* out);

/// Canonical int64-key messages, 8 per iteration (count must be a multiple
/// of 8): both input blocks of each 9-byte record assembled in vector
/// registers from two contiguous loads of `vals` (vector byteswap +
/// shifts), then the same round sequence as SipHash24x8Avx2. The group
/// loop lives inside so the key schedule and shuffle controls stay in
/// registers across groups. Same callability condition.
void SipHash24Int64BatchAvx2(std::uint64_t k0, std::uint64_t k1,
                             const std::int64_t* vals, std::size_t count,
                             std::uint64_t* out);

/// Exactly 64 hashes -> one divisibility-mask word (bit i covers h[i]):
/// the DivisibilityCheck test with the mod-2^64 multiply decomposed into
/// vpmuludq cross-products and the unsigned compare done sign-biased.
/// Same callability condition.
std::uint64_t DivisibilityMaskWordAvx2(std::uint64_t odd_inv,
                                       std::uint64_t odd_limit,
                                       std::uint64_t pow2_mask,
                                       const std::uint64_t* h);

/// Little-endian unaligned 8-byte load (x86 only, hence the plain memcpy).
inline std::uint64_t LoadLe64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// The scalar final-block assembly, shared verbatim by every lane: the
/// 0..7 tail bytes at `tail` (== data + 8 * (len / 8)) plus len mod 256 in
/// the top byte. Must stay bit-identical to the switch in siphash.cc.
inline std::uint64_t SipTailBlock(const std::uint8_t* tail, std::size_t len) {
  std::uint64_t b = static_cast<std::uint64_t>(len & 0xff) << 56;
  switch (len % 8) {
    case 7: b |= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: b |= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: b |= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: b |= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: b |= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: b |= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1: b |= static_cast<std::uint64_t>(tail[0]); break;
    case 0: break;
  }
  return b;
}

// One SipRound over a vector of independent 64-bit lanes. The callers
// define VAdd/VXor/VRotl/VRotl32 for their vector width; the statement
// order mirrors SipRound in siphash.cc exactly, so each lane is
// bit-identical to the scalar reference by construction.
#define CATMARK_SIP_VROUND(v0, v1, v2, v3) \
  do {                                     \
    v0 = VAdd(v0, v1);                     \
    v1 = VRotl(v1, 13);                    \
    v1 = VXor(v1, v0);                     \
    v0 = VRotl32(v0);                      \
    v2 = VAdd(v2, v3);                     \
    v3 = VRotl(v3, 16);                    \
    v3 = VXor(v3, v2);                     \
    v0 = VAdd(v0, v3);                     \
    v3 = VRotl(v3, 21);                    \
    v3 = VXor(v3, v0);                     \
    v2 = VAdd(v2, v1);                     \
    v1 = VRotl(v1, 17);                    \
    v1 = VXor(v1, v2);                     \
    v2 = VRotl32(v2);                      \
  } while (0)

#endif  // x86_64

}  // namespace catmark::siphash_internal

#endif  // CATMARK_CRYPTO_SIPHASH_SIMD_INTERNAL_H_
