#include "crypto/sha1.h"

#include <cstring>

namespace catmark {

namespace {
std::uint32_t RotL(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

void Sha1::Reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  state_[4] = 0xc3d2e1f0;
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha1::Transform(const std::uint8_t block[64]) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = RotL(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const std::uint32_t tmp = RotL(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = RotL(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::Update(const std::uint8_t* data, std::size_t len) {
  bit_count_ += static_cast<std::uint64_t>(len) * 8;
  while (len > 0) {
    const std::size_t take =
        len < (64 - buffer_len_) ? len : (64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == 64) {
      Transform(buffer_);
      buffer_len_ = 0;
    }
  }
}

Digest Sha1::Finish() {
  const std::uint64_t bit_count = bit_count_;
  const std::uint8_t pad = 0x80;
  Update(&pad, 1);
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) Update(&zero, 1);

  // Length in bits, big-endian.
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_count >> (8 * (7 - i)));
  }
  Transform(buffer_);

  Digest out;
  out.size = 20;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      out.bytes[static_cast<std::size_t>(4 * i + j)] =
          static_cast<std::uint8_t>(state_[i] >> (8 * (3 - j)));
    }
  }
  Reset();
  return out;
}

}  // namespace catmark
