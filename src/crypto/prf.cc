#include "crypto/prf.h"

#include <cstdlib>
#include <utility>
#include <vector>

#include "common/check.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/siphash.h"
#include "crypto/siphash_simd.h"

namespace catmark {

namespace {

constexpr PrfKind kRegisteredPrfs[] = {
    PrfKind::kKeyedHash, PrfKind::kHmacSha256, PrfKind::kSipHash24};

/// The paper-literal H(k;V;k) sandwich, delegating to KeyedHasher so this
/// backend can never drift from the construction every deployed watermark
/// was embedded with (golden tests pin the equivalence).
class KeyedHashPrf final : public KeyedPrf {
 public:
  KeyedHashPrf(const SecretKey& key, HashAlgorithm algo)
      : hasher_(key, algo) {}

  std::string_view Name() const override { return PrfKindName(kind()); }
  PrfKind kind() const override { return PrfKind::kKeyedHash; }

  std::uint64_t Hash64(const std::uint8_t* data,
                       std::size_t len) const override {
    return hasher_.Hash64(data, len);
  }

  void Hash64Column(std::span<const std::string_view> inputs,
                    std::span<std::uint64_t> out) const override {
    CATMARK_CHECK_EQ(inputs.size(), out.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      out[i] = hasher_.Hash64(
          reinterpret_cast<const std::uint8_t*>(inputs[i].data()),
          inputs[i].size());
    }
  }

 private:
  KeyedHasher hasher_;
};

/// RFC 2104 HMAC-SHA256; the ipad/opad key schedule lives in the Hmac
/// member, so it is derived once per PRF instance rather than per message.
class HmacSha256Prf final : public KeyedPrf {
 public:
  explicit HmacSha256Prf(const SecretKey& key)
      : hmac_(HashAlgorithm::kSha256, key.bytes()) {}

  std::string_view Name() const override { return PrfKindName(kind()); }
  PrfKind kind() const override { return PrfKind::kHmacSha256; }

  std::uint64_t Hash64(const std::uint8_t* data,
                       std::size_t len) const override {
    return hmac_.Compute(data, len).ToUint64();
  }

  void Hash64Column(std::span<const std::string_view> inputs,
                    std::span<std::uint64_t> out) const override {
    CATMARK_CHECK_EQ(inputs.size(), out.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      out[i] = hmac_
                   .Compute(reinterpret_cast<const std::uint8_t*>(
                                inputs[i].data()),
                            inputs[i].size())
                   .ToUint64();
    }
  }

 private:
  Hmac hmac_;
};

/// SipHash-2-4 over a 128-bit key derived as SHA-256(key bytes)[0..16):
/// SecretKey material is arbitrary-length, and hashing it first both
/// compresses long keys and whitens short ones, mirroring HMAC's treatment
/// of oversized keys.
class SipHash24Prf final : public KeyedPrf {
 public:
  explicit SipHash24Prf(const SecretKey& key) {
    Sha256 sha;
    const Digest d =
        sha.Hash(key.bytes().data(), key.bytes().size());
    std::uint8_t k[16];
    for (int i = 0; i < 16; ++i) k[i] = d.bytes[i];
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    for (int i = 7; i >= 0; --i) lo = (lo << 8) | k[i];
    for (int i = 15; i >= 8; --i) hi = (hi << 8) | k[i];
    k0_ = lo;
    k1_ = hi;
  }

  std::string_view Name() const override { return PrfKindName(kind()); }
  PrfKind kind() const override { return PrfKind::kSipHash24; }

  std::uint64_t Hash64(const std::uint8_t* data,
                       std::size_t len) const override {
    return SipHash24(k0_, k1_, data, len);
  }

  // The batch forms all route through the multi-lane dispatcher
  // (crypto/siphash_simd.h): 8 messages per call under AVX2, 4 under SSE2,
  // the scalar reference loop otherwise — bit-identical at every level, so
  // the dispatch decision can never change a detection result.
  void Hash64Column(std::span<const std::string_view> inputs,
                    std::span<std::uint64_t> out) const override {
    SipHash24Views(k0_, k1_, inputs, out);
  }

  void Hash64Arena(const std::uint8_t* arena,
                   std::span<const std::size_t> bounds,
                   std::span<std::uint64_t> out) const override {
    SipHash24Batch(k0_, k1_, arena, bounds, out);
  }

  void Hash64Fixed(const std::uint8_t* base, std::size_t len,
                   std::size_t stride,
                   std::span<std::uint64_t> out) const override {
    SipHash24Fixed(k0_, k1_, base, len, stride, out);
  }

  void Hash64Int64Keys(const std::int64_t* vals, std::size_t count,
                       std::span<std::uint64_t> out) const override {
    SipHash24Int64Keys(k0_, k1_, vals, count, out);
  }

 private:
  std::uint64_t k0_ = 0;
  std::uint64_t k1_ = 0;
};

}  // namespace

std::string_view PrfKindName(PrfKind kind) {
  switch (kind) {
    case PrfKind::kKeyedHash:
      return "keyed-hash";
    case PrfKind::kHmacSha256:
      return "hmac-sha256";
    case PrfKind::kSipHash24:
      return "siphash24";
  }
  return "unknown";
}

std::string RegisteredPrfNameList() {
  std::string out;
  for (const PrfKind kind : kRegisteredPrfs) {
    if (!out.empty()) out += ", ";
    out += PrfKindName(kind);
  }
  return out;
}

Result<PrfKind> PrfKindFromName(std::string_view name) {
  for (const PrfKind kind : kRegisteredPrfs) {
    if (PrfKindName(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown PRF backend '" + std::string(name) +
                                 "' (registered: " + RegisteredPrfNameList() +
                                 ")");
}

Result<PrfKind> ResolvePrfKindEnv(const char* text, PrfKind fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  return PrfKindFromName(text);
}

Result<PrfKind> ResolvePrfKind(const std::optional<PrfKind>& choice) {
  if (choice.has_value()) return *choice;
  return ResolvePrfKindEnv(std::getenv("CATMARK_PRF"), PrfKind::kKeyedHash);
}

void KeyedPrf::Hash64Column(std::span<const std::string_view> inputs,
                            std::span<std::uint64_t> out) const {
  CATMARK_CHECK_EQ(inputs.size(), out.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out[i] = Hash64(inputs[i]);
  }
}

void KeyedPrf::Hash64Arena(const std::uint8_t* arena,
                           std::span<const std::size_t> bounds,
                           std::span<std::uint64_t> out) const {
  CATMARK_CHECK_EQ(bounds.size(), out.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Hash64(arena + bounds[i], bounds[i + 1] - bounds[i]);
  }
}

void KeyedPrf::Hash64Fixed(const std::uint8_t* base, std::size_t len,
                           std::size_t stride,
                           std::span<std::uint64_t> out) const {
  CATMARK_CHECK_GE(stride, len);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = Hash64(base + i * stride, len);
  }
}

void KeyedPrf::Hash64Int64Keys(const std::int64_t* vals, std::size_t count,
                               std::span<std::uint64_t> out) const {
  CATMARK_CHECK_EQ(count, out.size());
  // The canonical int64 record from Value::SerializeForHash: tag 0x01, then
  // the payload big-endian. Kept in sync by the parity tests in prf_test.
  std::uint8_t buf[9];
  buf[0] = 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(vals[i]);
    for (int b = 0; b < 8; ++b) {
      buf[1 + b] = static_cast<std::uint8_t>(v >> (8 * (7 - b)));
    }
    out[i] = Hash64(buf, sizeof(buf));
  }
}

std::unique_ptr<KeyedPrf> CreateKeyedPrf(PrfKind kind, const SecretKey& key,
                                         HashAlgorithm algo) {
  switch (kind) {
    case PrfKind::kKeyedHash:
      return std::make_unique<KeyedHashPrf>(key, algo);
    case PrfKind::kHmacSha256:
      return std::make_unique<HmacSha256Prf>(key);
    case PrfKind::kSipHash24:
      return std::make_unique<SipHash24Prf>(key);
  }
  CATMARK_CHECK(false) << "unreachable PrfKind";
  return nullptr;
}

}  // namespace catmark
