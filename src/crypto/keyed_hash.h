#ifndef CATMARK_CRYPTO_KEYED_HASH_H_
#define CATMARK_CRYPTO_KEYED_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/hash.h"

namespace catmark {

/// Secret watermarking key material. The paper's algorithms use two distinct
/// keys k1 (tuple fitness + value selection) and k2 (wm_data bit selection).
class SecretKey {
 public:
  SecretKey() = default;

  /// Key = SHA-256(passphrase); the usual way humans provision keys.
  static SecretKey FromPassphrase(std::string_view passphrase);

  /// Key from raw bytes (at least 1 byte).
  static SecretKey FromBytes(std::vector<std::uint8_t> bytes);

  /// Deterministic 32-byte key expanded from a 64-bit seed; used by the
  /// experiment harness to generate the paper's "15 passes, each seeded with
  /// a different key".
  static SecretKey FromSeed(std::uint64_t seed);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  bool empty() const { return bytes_.empty(); }
  std::string ToHex() const;

  friend bool operator==(const SecretKey& a, const SecretKey& b) {
    return a.bytes_ == b.bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reusable input-serialization buffer for hot keyed-hash loops. Hashing a
/// relational value requires serializing it to bytes first; the embed/detect
/// pipelines keep one HashScratch per worker thread so that serialization
/// reuses one grown-once buffer instead of allocating per call.
using HashScratch = std::vector<std::uint8_t>;

/// Computes the paper's H(V, k) = crypto_hash(k ; V ; k) ("; " denotes
/// concatenation, Section 2.2), truncated to the first 64 digest bits.
/// Wrapping the message with the key on both sides defeats length-extension
/// style manipulation and matches the paper exactly.
class KeyedHasher {
 public:
  explicit KeyedHasher(SecretKey key,
                       HashAlgorithm algo = HashAlgorithm::kSha256);

  /// H over raw message bytes.
  std::uint64_t Hash64(const std::uint8_t* data, std::size_t len) const;
  std::uint64_t Hash64(std::string_view data) const;

  /// H over a 64-bit integer (canonical big-endian serialization).
  std::uint64_t Hash64(std::uint64_t value) const;

  /// Full digest variant (tests / diagnostics).
  Digest HashDigest(const std::uint8_t* data, std::size_t len) const;

  const SecretKey& key() const { return key_; }
  HashAlgorithm algorithm() const { return algo_; }

 private:
  SecretKey key_;
  HashAlgorithm algo_;
};

}  // namespace catmark

#endif  // CATMARK_CRYPTO_KEYED_HASH_H_
