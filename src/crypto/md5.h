#ifndef CATMARK_CRYPTO_MD5_H_
#define CATMARK_CRYPTO_MD5_H_

#include <cstdint>

#include "crypto/hash.h"

namespace catmark {

/// MD5 message digest (RFC 1321). 128-bit output. Provided because the paper
/// names it as a crypto_hash() candidate; prefer SHA-256 for new uses.
class Md5 final : public HashFunction {
 public:
  Md5() { Reset(); }

  std::string_view Name() const override { return "MD5"; }
  std::size_t DigestSize() const override { return 16; }

  void Reset() override;
  void Update(const std::uint8_t* data, std::size_t len) override;
  Digest Finish() override;

 private:
  void Transform(const std::uint8_t block[64]);

  std::uint32_t state_[4];
  std::uint64_t bit_count_;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
};

}  // namespace catmark

#endif  // CATMARK_CRYPTO_MD5_H_
