#ifndef CATMARK_CRYPTO_HMAC_H_
#define CATMARK_CRYPTO_HMAC_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "crypto/hash.h"

namespace catmark {

/// HMAC (RFC 2104) over any of the library's hash functions. The paper's
/// H(V,k) = hash(k;V;k) construction predates widespread HMAC adoption;
/// HMAC-SHA256 is offered as the modern, provably-PRF keyed alternative
/// (drop-in for KeyedHasher when both embedder and detector agree).
class Hmac {
 public:
  Hmac(HashAlgorithm algo, const std::vector<std::uint8_t>& key);

  /// HMAC(key, data) full digest.
  Digest Compute(const std::uint8_t* data, std::size_t len) const;
  Digest Compute(std::string_view data) const;

  /// First 8 digest bytes, big-endian (matches Digest::ToUint64).
  std::uint64_t Compute64(std::string_view data) const;

 private:
  HashAlgorithm algo_;
  std::vector<std::uint8_t> ipad_key_;
  std::vector<std::uint8_t> opad_key_;
};

}  // namespace catmark

#endif  // CATMARK_CRYPTO_HMAC_H_
