#ifndef CATMARK_CRYPTO_SHA256_H_
#define CATMARK_CRYPTO_SHA256_H_

#include <cstdint>

#include "crypto/hash.h"

namespace catmark {

/// SHA-256 (FIPS 180-2). 256-bit output; the library's default crypto_hash().
class Sha256 final : public HashFunction {
 public:
  Sha256() { Reset(); }

  std::string_view Name() const override { return "SHA-256"; }
  std::size_t DigestSize() const override { return 32; }

  void Reset() override;
  void Update(const std::uint8_t* data, std::size_t len) override;
  Digest Finish() override;

 private:
  void Transform(const std::uint8_t block[64]);

  std::uint32_t state_[8];
  std::uint64_t bit_count_;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
};

}  // namespace catmark

#endif  // CATMARK_CRYPTO_SHA256_H_
