#include "crypto/keyed_hash.h"

#include "common/check.h"
#include "common/hex.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace catmark {

SecretKey SecretKey::FromPassphrase(std::string_view passphrase) {
  Sha256 sha;
  const Digest d = sha.Hash(passphrase);
  return FromBytes(
      std::vector<std::uint8_t>(d.bytes.begin(), d.bytes.begin() + 32));
}

SecretKey SecretKey::FromBytes(std::vector<std::uint8_t> bytes) {
  CATMARK_CHECK(!bytes.empty()) << "SecretKey needs at least one byte";
  SecretKey k;
  k.bytes_ = std::move(bytes);
  return k;
}

SecretKey SecretKey::FromSeed(std::uint64_t seed) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(seed >> (8 * (7 - i)));
  }
  Sha256 sha;
  const Digest d = sha.Hash(buf, 8);
  return FromBytes(
      std::vector<std::uint8_t>(d.bytes.begin(), d.bytes.begin() + 32));
}

std::string SecretKey::ToHex() const { return HexEncode(bytes_); }

KeyedHasher::KeyedHasher(SecretKey key, HashAlgorithm algo)
    : key_(std::move(key)), algo_(algo) {
  CATMARK_CHECK(!key_.empty()) << "KeyedHasher requires a non-empty key";
}

namespace {

// Runs hash(k ; data ; k) on a stack-allocated hash object of the right type.
template <typename H>
Digest RunKeyed(const SecretKey& key, const std::uint8_t* data,
                std::size_t len) {
  H h;
  h.Update(key.bytes().data(), key.bytes().size());
  h.Update(data, len);
  h.Update(key.bytes().data(), key.bytes().size());
  return h.Finish();
}

}  // namespace

Digest KeyedHasher::HashDigest(const std::uint8_t* data,
                               std::size_t len) const {
  switch (algo_) {
    case HashAlgorithm::kMd5:
      return RunKeyed<Md5>(key_, data, len);
    case HashAlgorithm::kSha1:
      return RunKeyed<Sha1>(key_, data, len);
    case HashAlgorithm::kSha256:
      return RunKeyed<Sha256>(key_, data, len);
  }
  return Digest{};
}

std::uint64_t KeyedHasher::Hash64(const std::uint8_t* data,
                                  std::size_t len) const {
  return HashDigest(data, len).ToUint64();
}

std::uint64_t KeyedHasher::Hash64(std::string_view data) const {
  return Hash64(reinterpret_cast<const std::uint8_t*>(data.data()),
                data.size());
}

std::uint64_t KeyedHasher::Hash64(std::uint64_t value) const {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(value >> (8 * (7 - i)));
  }
  return Hash64(buf, 8);
}

}  // namespace catmark
