#ifndef CATMARK_RELATION_VALUE_H_
#define CATMARK_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"

namespace catmark {

/// Column data types. Categorical attributes are typically kString (city
/// names, airline codes) or kInt64 (product numbers such as Item_Nbr);
/// kDouble exists for non-categorical payload columns.
enum class ColumnType { kInt64, kDouble, kString };

std::string_view ColumnTypeName(ColumnType type);

/// A single relational value: NULL, 64-bit integer, double, or string.
/// Values are ordered (strings byte-wise — "sorted e.g. by ASCII value" per
/// Section 2.1) and canonically serializable so keyed hashes are stable.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int64() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  /// Typed accessors; the value must hold that type (checked).
  std::int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Branch-only typed probe for per-row hot loops: the held int64, or
  /// nullptr for every other alternative (including NULL). Unlike AsInt64
  /// this is inline and unchecked — one variant-tag test, no call.
  const std::int64_t* TryInt64() const {
    return std::get_if<std::int64_t>(&data_);
  }

  /// True when a non-null value matches the given column type.
  bool MatchesType(ColumnType type) const;

  /// Renders for CSV / display; NULL renders as the empty string.
  std::string ToString() const;

  /// Parses `text` according to `type`. Empty text parses as NULL.
  static Result<Value> Parse(std::string_view text, ColumnType type);

  /// Appends a canonical, type-tagged byte serialization used as keyed-hash
  /// input: tag byte, then big-endian payload (strings appended raw with a
  /// length prefix). Identical values always serialize identically.
  void SerializeForHash(std::vector<std::uint8_t>& out) const;

  /// Serializes into `scratch` (cleared first) and returns a view of the
  /// bytes: the canonical key form shared by dictionary interning and the
  /// embedding map, kept in one place so they can never disagree.
  std::string_view SerializeKeyInto(std::vector<std::uint8_t>& scratch) const;

  /// Three-way ordering: NULL < int64 < double < string across types;
  /// natural ordering within a type (byte-wise for strings).
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

/// A tuple (row) of the relation.
using Row = std::vector<Value>;

}  // namespace catmark

#endif  // CATMARK_RELATION_VALUE_H_
