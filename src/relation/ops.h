#ifndef CATMARK_RELATION_OPS_H_
#define CATMARK_RELATION_OPS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "random/rng.h"
#include "relation/relation.h"

namespace catmark {

/// Vertical partition: keeps only the named columns (in the given order).
/// The result's primary key is preserved iff it is among the kept columns.
Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& columns);

/// Horizontal partition: uniform sample keeping ceil(fraction * N) rows.
Result<Relation> SampleRows(const Relation& rel, double fraction,
                            Xoshiro256ss& rng);

/// Random re-ordering of the tuples (the A4 attack surface).
Relation ShuffleRows(const Relation& rel, Xoshiro256ss& rng);

/// Sorts rows ascending by the given column.
Result<Relation> SortByColumn(const Relation& rel, std::size_t col);

/// Appends all rows of `extra` to `base`. Schemas must match.
Status AppendAll(Relation& base, const Relation& extra);

/// Deep copy (relations are copyable; this spells intent at call sites).
inline Relation Clone(const Relation& rel) { return rel; }

}  // namespace catmark

#endif  // CATMARK_RELATION_OPS_H_
