#include "relation/value.h"

#include <bit>
#include <charconv>
#include <cstdio>

#include "common/check.h"

namespace catmark {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

std::int64_t Value::AsInt64() const {
  CATMARK_CHECK(is_int64()) << "Value is not INT64";
  return std::get<std::int64_t>(data_);
}

double Value::AsDouble() const {
  CATMARK_CHECK(is_double()) << "Value is not DOUBLE";
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  CATMARK_CHECK(is_string()) << "Value is not STRING";
  return std::get<std::string>(data_);
}

bool Value::MatchesType(ColumnType type) const {
  switch (type) {
    case ColumnType::kInt64:
      return is_int64();
    case ColumnType::kDouble:
      return is_double();
    case ColumnType::kString:
      return is_string();
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", AsDouble());
    return buf;
  }
  return AsString();
}

Result<Value> Value::Parse(std::string_view text, ColumnType type) {
  if (text.empty()) return Value();
  switch (type) {
    case ColumnType::kInt64: {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::InvalidArgument("cannot parse INT64 from '" +
                                       std::string(text) + "'");
      }
      return Value(v);
    }
    case ColumnType::kDouble: {
      // std::from_chars for double is not universally available; strtod via
      // a NUL-terminated copy is fine off the hot path.
      const std::string copy(text);
      char* end = nullptr;
      const double v = std::strtod(copy.c_str(), &end);
      if (end != copy.c_str() + copy.size()) {
        return Status::InvalidArgument("cannot parse DOUBLE from '" + copy +
                                       "'");
      }
      return Value(v);
    }
    case ColumnType::kString:
      return Value(std::string(text));
  }
  return Status::InvalidArgument("unknown column type");
}

namespace {
void AppendBigEndian64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  // One grow + one 8-byte store instead of eight push_backs: this sits on
  // the per-row serialize path of every embed/detect, where the byte-at-a-
  // time loop was a measurable fraction of the non-hash time.
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
  }
  out.insert(out.end(), buf, buf + 8);
}
}  // namespace

void Value::SerializeForHash(std::vector<std::uint8_t>& out) const {
  if (is_null()) {
    out.push_back(0);
    return;
  }
  if (is_int64()) {
    out.push_back(1);
    AppendBigEndian64(static_cast<std::uint64_t>(AsInt64()), out);
    return;
  }
  if (is_double()) {
    out.push_back(2);
    AppendBigEndian64(std::bit_cast<std::uint64_t>(AsDouble()), out);
    return;
  }
  const std::string& s = AsString();
  out.push_back(3);
  AppendBigEndian64(s.size(), out);
  out.insert(out.end(), s.begin(), s.end());
}

std::string_view Value::SerializeKeyInto(
    std::vector<std::uint8_t>& scratch) const {
  scratch.clear();
  SerializeForHash(scratch);
  return std::string_view(reinterpret_cast<const char*>(scratch.data()),
                          scratch.size());
}

int Value::Compare(const Value& a, const Value& b) {
  const auto type_rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_int64()) return 1;
    if (v.is_double()) return 2;
    return 3;
  };
  const int ra = type_rank(a);
  const int rb = type_rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      const auto x = a.AsInt64(), y = b.AsInt64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case 2: {
      const auto x = a.AsDouble(), y = b.AsDouble();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default: {
      const int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

}  // namespace catmark
