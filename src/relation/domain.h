#ifndef CATMARK_RELATION_DOMAIN_H_
#define CATMARK_RELATION_DOMAIN_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"
#include "relation/value.h"

namespace catmark {

/// The value domain {a_1, ..., a_nA} of a categorical attribute, sorted
/// ("these are distinct and can be sorted, e.g. by ASCII value" —
/// Section 2.1). The watermark encodes bits in the least significant bit of
/// a value's *index* t within this sorted domain, so embedder and detector
/// must agree on it. The domain is public knowledge (e.g. the set of product
/// codes); it can be declared up front or recovered from the data itself.
class CategoricalDomain {
 public:
  CategoricalDomain() = default;

  /// Builds a domain from explicit values; duplicates and NULLs rejected.
  static Result<CategoricalDomain> FromValues(std::vector<Value> values);

  /// Recovers the domain as the sorted distinct non-null values of
  /// `col` in `rel`.
  static Result<CategoricalDomain> FromRelationColumn(const Relation& rel,
                                                      std::size_t col);

  /// nA — number of possible values.
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// a_t — the value at sorted index t.
  const Value& value(std::size_t t) const;

  /// t such that value(t) == v, or nullopt when v is outside the domain
  /// (e.g. after an A6 remapping attack). O(log nA).
  std::optional<std::size_t> IndexOf(const Value& v) const;

  bool Contains(const Value& v) const { return IndexOf(v).has_value(); }

  const std::vector<Value>& values() const { return values_; }

  friend bool operator==(const CategoricalDomain& a,
                         const CategoricalDomain& b) {
    return a.values_ == b.values_;
  }

 private:
  std::vector<Value> values_;  // sorted ascending, distinct
};

}  // namespace catmark

#endif  // CATMARK_RELATION_DOMAIN_H_
