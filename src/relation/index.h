#ifndef CATMARK_RELATION_INDEX_H_
#define CATMARK_RELATION_INDEX_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "relation/relation.h"

namespace catmark {

/// Hash index over the primary key: O(1) row lookup by key value. Backs
/// keyed UPDATE workflows (incremental watermark maintenance) and the
/// uniqueness validation a primary key implies.
///
/// The index is a snapshot: structural changes to the relation (appends,
/// removals, key updates) invalidate it; rebuild after batch changes.
class PrimaryKeyIndex {
 public:
  /// Builds over the schema's primary key column. Fails when the schema has
  /// no primary key or key values are duplicated/NULL (a primary key
  /// violation worth surfacing loudly).
  static Result<PrimaryKeyIndex> Build(const Relation& rel);

  /// Row index holding `key`, or nullopt.
  std::optional<std::size_t> Find(const Value& key) const;

  std::size_t size() const { return rows_.size(); }
  std::size_t key_column() const { return key_column_; }

 private:
  static std::string KeyOf(const Value& v);

  std::size_t key_column_ = 0;
  std::unordered_map<std::string, std::size_t> rows_;
};

}  // namespace catmark

#endif  // CATMARK_RELATION_INDEX_H_
