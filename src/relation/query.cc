#include "relation/query.h"

namespace catmark {

Result<std::size_t> CountWhere(const Relation& rel, const EqPredicate& pred) {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col,
                           rel.schema().ColumnIndexOrError(pred.column));
  // On a dictionary column an equality predicate is one intern probe plus
  // the live count. Doubles are excluded: interning is bit-exact while
  // Value::Compare is numeric, so -0.0/0.0 (and NaN) would count
  // differently here than in the scan path below.
  if (rel.store().IsDictColumn(col) && !pred.value.is_null() &&
      !pred.value.is_double()) {
    const std::int32_t code = rel.store().CodeOf(col, pred.value);
    if (code < 0) return std::size_t{0};
    return static_cast<std::size_t>(
        rel.store().DictLiveCounts(col)[static_cast<std::size_t>(code)]);
  }
  const ColumnReader reader(rel.store(), col);
  std::size_t count = 0;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    if (reader[i] == pred.value) ++count;
  }
  return count;
}

Result<std::size_t> CountWhereBoth(const Relation& rel, const EqPredicate& a,
                                   const EqPredicate& b) {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col_a,
                           rel.schema().ColumnIndexOrError(a.column));
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col_b,
                           rel.schema().ColumnIndexOrError(b.column));
  const ColumnReader reader_a(rel.store(), col_a);
  const ColumnReader reader_b(rel.store(), col_b);
  std::size_t count = 0;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    if (reader_a[i] == a.value && reader_b[i] == b.value) {
      ++count;
    }
  }
  return count;
}

Result<double> RuleConfidence(const Relation& rel, const EqPredicate& target,
                              const EqPredicate& given) {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t n_given, CountWhere(rel, given));
  if (n_given == 0) return 0.0;
  CATMARK_ASSIGN_OR_RETURN(const std::size_t n_both,
                           CountWhereBoth(rel, target, given));
  return static_cast<double>(n_both) / static_cast<double>(n_given);
}

Result<double> RuleSupport(const Relation& rel, const EqPredicate& target,
                           const EqPredicate& given) {
  if (rel.empty()) return 0.0;
  CATMARK_ASSIGN_OR_RETURN(const std::size_t n_both,
                           CountWhereBoth(rel, target, given));
  return static_cast<double>(n_both) / static_cast<double>(rel.NumRows());
}

}  // namespace catmark
