#include "relation/query.h"

namespace catmark {

Result<std::size_t> CountWhere(const Relation& rel, const EqPredicate& pred) {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col,
                           rel.schema().ColumnIndexOrError(pred.column));
  std::size_t count = 0;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    if (rel.Get(i, col) == pred.value) ++count;
  }
  return count;
}

Result<std::size_t> CountWhereBoth(const Relation& rel, const EqPredicate& a,
                                   const EqPredicate& b) {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col_a,
                           rel.schema().ColumnIndexOrError(a.column));
  CATMARK_ASSIGN_OR_RETURN(const std::size_t col_b,
                           rel.schema().ColumnIndexOrError(b.column));
  std::size_t count = 0;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    if (rel.Get(i, col_a) == a.value && rel.Get(i, col_b) == b.value) {
      ++count;
    }
  }
  return count;
}

Result<double> RuleConfidence(const Relation& rel, const EqPredicate& target,
                              const EqPredicate& given) {
  CATMARK_ASSIGN_OR_RETURN(const std::size_t n_given, CountWhere(rel, given));
  if (n_given == 0) return 0.0;
  CATMARK_ASSIGN_OR_RETURN(const std::size_t n_both,
                           CountWhereBoth(rel, target, given));
  return static_cast<double>(n_both) / static_cast<double>(n_given);
}

Result<double> RuleSupport(const Relation& rel, const EqPredicate& target,
                           const EqPredicate& given) {
  if (rel.empty()) return 0.0;
  CATMARK_ASSIGN_OR_RETURN(const std::size_t n_both,
                           CountWhereBoth(rel, target, given));
  return static_cast<double>(n_both) / static_cast<double>(rel.NumRows());
}

}  // namespace catmark
