#include "relation/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "random/distributions.h"

namespace catmark {

Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("projection needs at least one column");
  }
  const Schema& schema = rel.schema();
  std::vector<std::size_t> indices;
  std::vector<Column> cols;
  std::string pk;
  for (const std::string& name : columns) {
    CATMARK_ASSIGN_OR_RETURN(const std::size_t idx,
                             schema.ColumnIndexOrError(name));
    indices.push_back(idx);
    cols.push_back(schema.column(idx));
    if (schema.primary_key_index() == static_cast<int>(idx)) pk = name;
  }
  CATMARK_ASSIGN_OR_RETURN(Schema out_schema,
                           Schema::Create(std::move(cols), pk));
  Relation out(std::move(out_schema));
  out.Reserve(rel.NumRows());
  for (std::size_t r = 0; r < rel.NumRows(); ++r) {
    Row row;
    row.reserve(indices.size());
    for (std::size_t idx : indices) row.push_back(rel.Get(r, idx));
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<Relation> SampleRows(const Relation& rel, double fraction,
                            Xoshiro256ss& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0,1]");
  }
  const std::size_t keep = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(rel.NumRows())));
  Relation out(rel.schema());
  out.Reserve(keep);
  CATMARK_RETURN_IF_ERROR(out.AppendRowsFrom(
      rel, SampleWithoutReplacement(rel.NumRows(), keep, rng)));
  return out;
}

Relation ShuffleRows(const Relation& rel, Xoshiro256ss& rng) {
  std::vector<std::size_t> order(rel.NumRows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Shuffle(order, rng);
  Relation out(rel.schema());
  out.Reserve(rel.NumRows());
  const Status s = out.AppendRowsFrom(rel, order);
  CATMARK_CHECK(s.ok()) << s.ToString();  // schemas equal by construction
  return out;
}

Result<Relation> SortByColumn(const Relation& rel, std::size_t col) {
  if (col >= rel.schema().num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  std::vector<std::size_t> order(rel.NumRows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return Value::Compare(rel.Get(a, col), rel.Get(b, col)) <
                            0;
                   });
  Relation out(rel.schema());
  out.Reserve(rel.NumRows());
  CATMARK_RETURN_IF_ERROR(out.AppendRowsFrom(rel, order));
  return out;
}

Status AppendAll(Relation& base, const Relation& extra) {
  if (!(base.schema() == extra.schema())) {
    return Status::InvalidArgument("schema mismatch in AppendAll");
  }
  std::vector<std::size_t> all(extra.NumRows());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  base.Reserve(base.NumRows() + extra.NumRows());
  return base.AppendRowsFrom(extra, all);
}

}  // namespace catmark
