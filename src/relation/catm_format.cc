#include "relation/catm_format.h"

#include <bit>
#include <cstring>
#include <string>

namespace catmark {

namespace {

// Multiply-fold checksum core: xor-fold of the 128-bit product. Flipping
// any input bit flips roughly half the output bits.
inline std::uint64_t ChecksumMix(std::uint64_t a, std::uint64_t b) {
#if defined(__SIZEOF_INT128__)
  const auto p = static_cast<unsigned __int128>(a) * b;
  return static_cast<std::uint64_t>(p) ^ static_cast<std::uint64_t>(p >> 64);
#else
  // Portable 64x64->128 via 32-bit halves; must match the fast path bit for
  // bit — the checksum is part of the on-disk format.
  const std::uint64_t a_lo = a & 0xFFFFFFFFu, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xFFFFFFFFu, b_hi = b >> 32;
  const std::uint64_t ll = a_lo * b_lo;
  const std::uint64_t lh = a_lo * b_hi;
  const std::uint64_t hl = a_hi * b_lo;
  const std::uint64_t hh = a_hi * b_hi;
  const std::uint64_t mid = (ll >> 32) + (lh & 0xFFFFFFFFu) + hl;
  const std::uint64_t lo = (ll & 0xFFFFFFFFu) | (mid << 32);
  const std::uint64_t hi = hh + (lh >> 32) + (mid >> 32);
  return lo ^ hi;
#endif
}

inline std::uint64_t ChecksumLoad64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = ((v & 0x00000000FFFFFFFFull) << 32) | (v >> 32);
    v = ((v & 0x0000FFFF0000FFFFull) << 16) |
        ((v >> 16) & 0x0000FFFF0000FFFFull);
    v = ((v & 0x00FF00FF00FF00FFull) << 8) | ((v >> 8) & 0x00FF00FF00FF00FFull);
  }
  return v;
}

// Odd 64-bit mixing constants (wyhash's published primes).
constexpr std::uint64_t kCk0 = 0xa0761d6478bd642full;
constexpr std::uint64_t kCk1 = 0xe7037ed1a0b428dbull;
constexpr std::uint64_t kCk2 = 0x8ebc6af09c88c6e3ull;
constexpr std::uint64_t kCk3 = 0x589965cc75374cc3ull;

}  // namespace

std::uint64_t CatmChecksum(const std::uint8_t* data, std::size_t len) {
  // wyhash-style multiply-fold over two independent 16-byte lanes.
  // Integrity against accidental corruption only — the checksum is unkeyed
  // and anyone can recompute it; authenticity comes from the watermark
  // itself, not the container. ~5x the throughput of the SipHash-2-4 it
  // replaced, which was the single largest cost of a .catm load.
  const std::uint8_t* p = data;
  std::size_t n = len;
  std::uint64_t h0 = kCk0 ^ static_cast<std::uint64_t>(len);
  std::uint64_t h1 = kCk1;
  while (n >= 32) {
    h0 = ChecksumMix(ChecksumLoad64(p) ^ kCk2, ChecksumLoad64(p + 8) ^ h0);
    h1 = ChecksumMix(ChecksumLoad64(p + 16) ^ kCk3,
                     ChecksumLoad64(p + 24) ^ h1);
    p += 32;
    n -= 32;
  }
  h0 ^= ChecksumMix(h1 ^ kCk1, kCk3);
  while (n >= 8) {
    h0 = ChecksumMix(ChecksumLoad64(p) ^ kCk2, h0 ^ kCk3);
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tail |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  h0 = ChecksumMix(tail ^ kCk2, h0 ^ kCk3);
  return ChecksumMix(h0 ^ kCk0, static_cast<std::uint64_t>(len) ^ kCk1);
}

std::uint64_t CatmChecksum(std::string_view bytes) {
  return CatmChecksum(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                      bytes.size());
}

void AppendLeU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void AppendLeU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void AppendLeU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void AppendLeI32(std::vector<std::uint8_t>& out, std::int32_t v) {
  AppendLeU32(out, static_cast<std::uint32_t>(v));
}

void AppendLeI64(std::vector<std::uint8_t>& out, std::int64_t v) {
  AppendLeU64(out, static_cast<std::uint64_t>(v));
}

void AppendLeI32Array(std::vector<std::uint8_t>& out,
                      std::span<const std::int32_t> v) {
  if constexpr (std::endian::native == std::endian::little) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    out.insert(out.end(), p, p + v.size() * sizeof(std::int32_t));
  } else {
    for (const std::int32_t x : v) AppendLeI32(out, x);
  }
}

void AppendLeI64Array(std::vector<std::uint8_t>& out,
                      std::span<const std::int64_t> v) {
  if constexpr (std::endian::native == std::endian::little) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    out.insert(out.end(), p, p + v.size() * sizeof(std::int64_t));
  } else {
    for (const std::int64_t x : v) AppendLeI64(out, x);
  }
}

void AppendLeU64Array(std::vector<std::uint8_t>& out,
                      std::span<const std::uint64_t> v) {
  if constexpr (std::endian::native == std::endian::little) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    out.insert(out.end(), p, p + v.size() * sizeof(std::uint64_t));
  } else {
    for (const std::uint64_t x : v) AppendLeU64(out, x);
  }
}

void EncodeValue(const Value& v, std::vector<std::uint8_t>& out) {
  v.SerializeForHash(out);
}

bool ByteReader::ReadU8(std::uint8_t& v) {
  if (remaining() < 1) return false;
  v = data_[pos_++];
  return true;
}

bool ByteReader::ReadLeU16(std::uint16_t& v) {
  if (remaining() < 2) return false;
  v = static_cast<std::uint16_t>(data_[pos_] |
                                 (static_cast<std::uint16_t>(data_[pos_ + 1])
                                  << 8));
  pos_ += 2;
  return true;
}

bool ByteReader::ReadLeU32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return true;
}

bool ByteReader::ReadLeU64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return true;
}

bool ByteReader::ReadLeI32(std::int32_t& v) {
  std::uint32_t u = 0;
  if (!ReadLeU32(u)) return false;
  v = static_cast<std::int32_t>(u);
  return true;
}

bool ByteReader::ReadLeI64(std::int64_t& v) {
  std::uint64_t u = 0;
  if (!ReadLeU64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

bool ByteReader::ReadBeU64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return true;
}

bool ByteReader::ReadBytes(std::size_t n, const std::uint8_t*& p) {
  if (remaining() < n) return false;
  p = data_ + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::Skip(std::size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

bool ByteReader::ReadLeI32Array(std::size_t n,
                                std::vector<std::int32_t>& out) {
  if (n > remaining() / sizeof(std::int32_t)) return false;
  out.resize(n);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), data_ + pos_, n * sizeof(std::int32_t));
    pos_ += n * sizeof(std::int32_t);
  } else {
    for (std::size_t i = 0; i < n; ++i) ReadLeI32(out[i]);
  }
  return true;
}

bool ByteReader::ReadLeI64Array(std::size_t n,
                                std::vector<std::int64_t>& out) {
  if (n > remaining() / sizeof(std::int64_t)) return false;
  out.resize(n);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), data_ + pos_, n * sizeof(std::int64_t));
    pos_ += n * sizeof(std::int64_t);
  } else {
    for (std::size_t i = 0; i < n; ++i) ReadLeI64(out[i]);
  }
  return true;
}

bool ByteReader::ReadLeU64Array(std::size_t n,
                                std::vector<std::uint64_t>& out) {
  if (n > remaining() / sizeof(std::uint64_t)) return false;
  out.resize(n);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), data_ + pos_, n * sizeof(std::uint64_t));
    pos_ += n * sizeof(std::uint64_t);
  } else {
    for (std::size_t i = 0; i < n; ++i) ReadLeU64(out[i]);
  }
  return true;
}

Status DecodeValue(ByteReader& r, Value& out) {
  std::uint8_t tag = 0;
  if (!r.ReadU8(tag)) {
    return Status::InvalidArgument("value encoding runs past section end");
  }
  switch (tag) {
    case 0:
      out = Value();
      return Status::OK();
    case 1: {
      std::uint64_t u = 0;
      if (!r.ReadBeU64(u)) {
        return Status::InvalidArgument("INT64 payload runs past section end");
      }
      out = Value(static_cast<std::int64_t>(u));
      return Status::OK();
    }
    case 2: {
      std::uint64_t u = 0;
      if (!r.ReadBeU64(u)) {
        return Status::InvalidArgument("DOUBLE payload runs past section end");
      }
      out = Value(std::bit_cast<double>(u));
      return Status::OK();
    }
    case 3: {
      std::uint64_t len = 0;
      if (!r.ReadBeU64(len)) {
        return Status::InvalidArgument("string length runs past section end");
      }
      if (len > r.remaining()) {
        return Status::InvalidArgument(
            "string length " + std::to_string(len) + " exceeds the " +
            std::to_string(r.remaining()) + " bytes left in its section");
      }
      const std::uint8_t* p = nullptr;
      r.ReadBytes(static_cast<std::size_t>(len), p);
      out = Value(std::string(reinterpret_cast<const char*>(p),
                              static_cast<std::size_t>(len)));
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("unknown value tag " +
                                     std::to_string(tag));
  }
}

}  // namespace catmark
