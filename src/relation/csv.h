#ifndef CATMARK_RELATION_CSV_H_
#define CATMARK_RELATION_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "relation/relation.h"

namespace catmark {

/// Serializes `rel` as RFC-4180-style CSV (header row, quoting only when a
/// field contains comma/quote/newline).
std::string WriteCsvString(const Relation& rel);
Status WriteCsvFile(const Relation& rel, const std::string& path);

/// Parses CSV text into a relation with the given schema. The header row
/// must match the schema's column names exactly (and in order); field
/// values are parsed per the column type, empty fields as NULL.
Result<Relation> ReadCsvString(std::string_view text, const Schema& schema);
Result<Relation> ReadCsvFile(const std::string& path, const Schema& schema);

/// Chunked parallel CSV parse. Splits the data region at record boundaries
/// into `num_threads` chunks (0 = auto: DefaultThreadCount, clamped so each
/// chunk spans at least ~64 KiB; an explicit count is honored exactly),
/// parses each chunk into a shard-local column store over common/parallel,
/// then merges the shard dictionaries serially in shard order.
///
/// Determinism: the merge interns each shard's dictionary entries in
/// dictionary (= shard-local first-occurrence) order, walking shards in
/// input order, which equals global first-occurrence order — exactly the
/// code assignment the serial parser produces. The result is therefore
/// byte-identical (under WriteCatmString) to ReadCsvString at every thread
/// count. On any parse error the input is re-parsed serially so the error
/// message and line number are the canonical ones.
Result<Relation> ReadCsvStringParallel(std::string_view text,
                                       const Schema& schema,
                                       std::size_t num_threads = 0);
Result<Relation> ReadCsvFileParallel(const std::string& path,
                                     const Schema& schema,
                                     std::size_t num_threads = 0);

}  // namespace catmark

#endif  // CATMARK_RELATION_CSV_H_
