#ifndef CATMARK_RELATION_CSV_H_
#define CATMARK_RELATION_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "relation/relation.h"

namespace catmark {

/// Serializes `rel` as RFC-4180-style CSV (header row, quoting only when a
/// field contains comma/quote/newline).
std::string WriteCsvString(const Relation& rel);
Status WriteCsvFile(const Relation& rel, const std::string& path);

/// Parses CSV text into a relation with the given schema. The header row
/// must match the schema's column names exactly (and in order); field
/// values are parsed per the column type, empty fields as NULL.
Result<Relation> ReadCsvString(std::string_view text, const Schema& schema);
Result<Relation> ReadCsvFile(const std::string& path, const Schema& schema);

}  // namespace catmark

#endif  // CATMARK_RELATION_CSV_H_
