#ifndef CATMARK_RELATION_CATM_FORMAT_H_
#define CATMARK_RELATION_CATM_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relation/value.h"

namespace catmark {

/// Low-level building blocks of the .catm binary relation format (v1).
///
/// A .catm file is the on-disk image of a ColumnStore: dictionary columns
/// keep their dictionary, live counts and int32 code vector; plain columns
/// keep their per-row values. Loading bulk-copies those arrays back instead
/// of re-parsing and re-interning every cell, and adopts code assignment
/// verbatim, so a loaded relation is code-for-code identical to the one
/// that was written.
///
/// Layout (all fixed-width fields little-endian; the byte offsets on the
/// left are absolute):
///
///   0   magic[8]            89 'C' 'A' 'T' 'M' 0D 0A 1A
///   8   u32 version         1
///   12  u32 meta_length     length of the meta block
///   16  u64 meta_checksum   CatmChecksum over bytes [24, 40 + meta_length)
///   24  u64 num_rows
///   32  u32 num_columns
///   36  i32 primary_key_index   (-1 = schema has no primary key)
///   40  meta block:
///         per column: u16 name_len, name bytes,
///                     u8 type (0=INT64 1=DOUBLE 2=STRING), u8 categorical
///         then the section table, per column:
///                     u8 kind (1=dict 2=plain),
///                     u64 offset (absolute), u64 length, u64 checksum
///   40 + meta_length  column sections, contiguous and in column order
///
/// Dict section payload:
///   u32 dict_count
///   u64 value_offsets[dict_count + 1]   (into the blob; [0] = 0)
///   blob                                (dict values, EncodeValue form)
///   i64 live[dict_count]
///   i32 codes[num_rows]                 (kNullCode = -1 marks NULL)
///
/// Plain section payload: num_rows values in EncodeValue form, back to back.
///
/// Values are encoded exactly as Value::SerializeForHash — a tag byte then a
/// big-endian payload — so a dictionary blob slice doubles as the canonical
/// intern key without re-serialization.
///
/// Integrity and error taxonomy: every byte after the four structural header
/// fields is covered by a checksum (the meta checksum spans the counts, the
/// schema and the section table; each section carries its own). Checksums
/// are an unkeyed 64-bit multiply-fold hash (wyhash-style) — corruption
/// detection, not authenticity. Truncation and checksum mismatches report
/// DataLoss;
/// everything else a well-formed-looking file can get wrong (bad magic,
/// unsupported version, malformed values, inconsistent counts) reports
/// InvalidArgument. Loading never crashes on hostile bytes.

inline constexpr std::uint8_t kCatmMagic[8] = {0x89, 'C',  'A',  'T',
                                               'M',  0x0D, 0x0A, 0x1A};
inline constexpr std::uint32_t kCatmVersion = 1;

/// Fixed-size prefix before the meta block (magic through primary_key_index).
inline constexpr std::size_t kCatmHeaderSize = 40;
/// First byte covered by the meta checksum (num_rows onward).
inline constexpr std::size_t kCatmChecksumStart = 24;

/// Section kinds in the section table.
inline constexpr std::uint8_t kCatmSectionDict = 1;
inline constexpr std::uint8_t kCatmSectionPlain = 2;

/// Per-column byte cost inside the meta block, excluding the name bytes:
/// the schema entry (u16 + u8 + u8) plus the section table entry.
inline constexpr std::size_t kCatmMetaPerColumn = 4 + (1 + 8 + 8 + 8);

/// The format's 64-bit integrity checksum: an unkeyed wyhash-style
/// multiply-fold over two 16-byte lanes. Fast enough (~10 GB/s) that
/// verifying every byte on load is not the bottleneck of a .catm read.
std::uint64_t CatmChecksum(const std::uint8_t* data, std::size_t len);
std::uint64_t CatmChecksum(std::string_view bytes);

// --- Little-endian append helpers -----------------------------------------

void AppendLeU16(std::vector<std::uint8_t>& out, std::uint16_t v);
void AppendLeU32(std::vector<std::uint8_t>& out, std::uint32_t v);
void AppendLeU64(std::vector<std::uint8_t>& out, std::uint64_t v);
void AppendLeI32(std::vector<std::uint8_t>& out, std::int32_t v);
void AppendLeI64(std::vector<std::uint8_t>& out, std::int64_t v);

/// Bulk array forms: one memcpy on little-endian hosts, a per-element loop
/// otherwise.
void AppendLeI32Array(std::vector<std::uint8_t>& out,
                      std::span<const std::int32_t> v);
void AppendLeI64Array(std::vector<std::uint8_t>& out,
                      std::span<const std::int64_t> v);
void AppendLeU64Array(std::vector<std::uint8_t>& out,
                      std::span<const std::uint64_t> v);

/// Appends `v` in the format's value encoding (== Value::SerializeForHash).
void EncodeValue(const Value& v, std::vector<std::uint8_t>& out);

/// Bounds-checked forward reader over a byte range. Every Read* returns
/// false instead of reading past the end — the loader turns that into a
/// Status rather than trusting lengths baked into the file.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                   bytes.size()) {}

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  bool ReadU8(std::uint8_t& v);
  bool ReadLeU16(std::uint16_t& v);
  bool ReadLeU32(std::uint32_t& v);
  bool ReadLeU64(std::uint64_t& v);
  bool ReadLeI32(std::int32_t& v);
  bool ReadLeI64(std::int64_t& v);
  /// Big-endian u64 — the payload order of the value encoding.
  bool ReadBeU64(std::uint64_t& v);

  /// Exposes the next `n` bytes in place and advances past them.
  bool ReadBytes(std::size_t n, const std::uint8_t*& p);
  bool Skip(std::size_t n);

  /// Bulk array forms (memcpy on little-endian hosts). The element count is
  /// validated against the remaining bytes *before* any allocation, so a
  /// corrupt length cannot trigger a huge resize.
  bool ReadLeI32Array(std::size_t n, std::vector<std::int32_t>& out);
  bool ReadLeI64Array(std::size_t n, std::vector<std::int64_t>& out);
  bool ReadLeU64Array(std::size_t n, std::vector<std::uint64_t>& out);

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Decodes one value off `r` (tag byte + payload). String lengths are
/// validated against the reader's remaining bytes before allocation.
/// InvalidArgument on unknown tags or payloads running past the end.
Status DecodeValue(ByteReader& r, Value& out);

}  // namespace catmark

#endif  // CATMARK_RELATION_CATM_FORMAT_H_
