#ifndef CATMARK_RELATION_HISTOGRAM_H_
#define CATMARK_RELATION_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// The value occurrence frequency transform [f_A(a_i)] of a categorical
/// attribute (Section 3.1/4.2): per-domain-value occurrence counts and
/// normalized (to 1.0) frequencies. This is both an encoding channel
/// (frequency-domain watermark) and the signature used to invert bijective
/// remapping attacks (Section 4.5).
class FrequencyHistogram {
 public:
  FrequencyHistogram() = default;

  /// Counts occurrences of each domain value of `col` in `rel`. Values
  /// outside `domain` (or NULL) are tallied separately as `out_of_domain`.
  static Result<FrequencyHistogram> Compute(const Relation& rel,
                                            std::size_t col,
                                            const CategoricalDomain& domain);

  const CategoricalDomain& domain() const { return domain_; }
  std::size_t num_values() const { return counts_.size(); }

  /// Occurrence count of domain value index t.
  std::size_t count(std::size_t t) const;

  /// f_A(a_t): normalized occurrence frequency (0 when the relation is
  /// empty).
  double frequency(std::size_t t) const;

  /// Total in-domain occurrences (normalization denominator).
  std::size_t total() const { return total_; }

  /// Occurrences that did not match any domain value.
  std::size_t out_of_domain() const { return out_of_domain_; }

  /// Frequencies as a dense vector, index-aligned with the domain.
  std::vector<double> Frequencies() const;

  /// L1 distance between the two frequency vectors (domains must be equal
  /// in size). A data-quality plugin caps this during embedding.
  double L1Distance(const FrequencyHistogram& other) const;

  /// Largest absolute per-value frequency difference.
  double LInfDistance(const FrequencyHistogram& other) const;

 private:
  CategoricalDomain domain_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t out_of_domain_ = 0;
};

}  // namespace catmark

#endif  // CATMARK_RELATION_HISTOGRAM_H_
