#ifndef CATMARK_RELATION_CATM_IO_H_
#define CATMARK_RELATION_CATM_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "relation/relation.h"

namespace catmark {

/// Read-only view of a whole file. Memory-maps on POSIX hosts (the .catm
/// loader then bulk-copies column arrays straight out of the page cache);
/// falls back to an ordinary buffered read elsewhere. Move-only; the view
/// stays valid for the lifetime of the object.
class FileBytes {
 public:
  FileBytes() = default;
  ~FileBytes();
  FileBytes(FileBytes&& other) noexcept;
  FileBytes& operator=(FileBytes&& other) noexcept;
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;

  /// Opens and maps (or reads) `path`. IoError when it cannot be opened.
  static Result<FileBytes> Open(const std::string& path);

  std::string_view view() const { return {data_, size_}; }
  bool mapped() const { return map_ != nullptr; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::string owned_;  // fallback storage; data_ points into it when set
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
};

/// True when `bytes` starts with the .catm magic — the sniff the
/// format-agnostic load path dispatches on.
bool LooksLikeCatm(std::string_view bytes);

/// Serializes `rel` as a .catm v1 image (see catm_format.h for the layout).
/// Deterministic: equal stores (schema, dictionaries, codes, values)
/// serialize to byte-identical output.
std::string WriteCatmString(const Relation& rel);
Status WriteCatmFile(const Relation& rel, const std::string& path);

/// Parses a .catm image back into a Relation. Validation order: magic and
/// version, then the meta checksum, then the schema and section table, then
/// each section's checksum and contents — so corruption anywhere yields
/// DataLoss (truncation / checksum mismatch) or InvalidArgument (structural
/// inconsistency), never a crash. The two-argument form additionally
/// requires the embedded schema to equal `expected`.
Result<Relation> ReadCatmString(std::string_view bytes);
Result<Relation> ReadCatmString(std::string_view bytes,
                                const Schema& expected);
Result<Relation> ReadCatmFile(const std::string& path);
Result<Relation> ReadCatmFile(const std::string& path,
                              const Schema& expected);

/// Format-agnostic load: sniffs the file content (not the extension) and
/// dispatches to the .catm reader or the CSV parser. Both paths validate
/// against `schema`. This is what the CLI / harness / bench load through.
Result<Relation> LoadRelation(const std::string& path, const Schema& schema);

/// Format-by-extension save: paths ending in ".catm" write the binary
/// format, everything else CSV.
Status SaveRelation(const Relation& rel, const std::string& path);

}  // namespace catmark

#endif  // CATMARK_RELATION_CATM_IO_H_
