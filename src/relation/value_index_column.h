#ifndef CATMARK_RELATION_VALUE_INDEX_COLUMN_H_
#define CATMARK_RELATION_VALUE_INDEX_COLUMN_H_

#include <cstdint>
#include <vector>

#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// Domain-index-encoded view of one categorical column: entry j holds the
/// sorted-domain index t of rel.Get(j, col), or kNoIndex when the cell is
/// NULL or outside the domain (e.g. after an A6 remapping attack).
///
/// Embedding and detection both need t per cell — the embedded bit is t & 1.
/// On a dictionary-encoded column this is a zero-copy view: it aliases the
/// store's code vector and only materializes a dictionary-code -> domain-
/// index remap table (|dict| binary searches instead of one per row), so
/// building it is O(dict log domain) and index(j) is two array loads. On a
/// plain column it falls back to the materialized per-row cache.
///
/// Aliasing contract (dict path): the view reads the relation's live code
/// vector, so the relation must outlive the view, and codes interned *after*
/// Build resolve to kNoIndex (the remap table does not cover them). Rows
/// appended or removed after Build change size() accordingly. The embed
/// apply pass relies on exactly this: it interns the domain's codes first,
/// builds the view, then reads each row's old index before overwriting it.
class ValueIndexColumn {
 public:
  static constexpr std::int32_t kNoIndex = -1;

  ValueIndexColumn() = default;

  /// Builds the view with `num_threads` workers (0 = auto; only the plain-
  /// column fallback parallelizes — the dict path has no per-row work).
  static ValueIndexColumn Build(const Relation& rel, std::size_t col,
                                const CategoricalDomain& domain,
                                std::size_t num_threads = 0);

  /// Domain index of row `j`, or kNoIndex.
  std::int32_t index(std::size_t j) const {
    if (codes_ != nullptr) {
      const std::int32_t c = (*codes_)[j];
      return (c < 0 || static_cast<std::size_t>(c) >= remap_.size())
                 ? kNoIndex
                 : remap_[static_cast<std::size_t>(c)];
    }
    return index_[j];
  }

  std::size_t size() const {
    return codes_ != nullptr ? codes_->size() : index_.size();
  }

  /// Occurrence count per domain index (kNoIndex cells excluded) — the
  /// input of the embedder's category-draining guard. O(dict) on the
  /// zero-copy path via the store's live counts, O(N) otherwise.
  std::vector<long> CountPerCategory(std::size_t domain_size) const;

 private:
  // Zero-copy path (dictionary columns): aliased store state + remap.
  const std::vector<std::int32_t>* codes_ = nullptr;
  const std::vector<std::int64_t>* live_ = nullptr;
  std::vector<std::int32_t> remap_;  // dict code -> domain index / kNoIndex

  // Materialized fallback (plain columns).
  std::vector<std::int32_t> index_;
};

}  // namespace catmark

#endif  // CATMARK_RELATION_VALUE_INDEX_COLUMN_H_
