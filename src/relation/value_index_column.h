#ifndef CATMARK_RELATION_VALUE_INDEX_COLUMN_H_
#define CATMARK_RELATION_VALUE_INDEX_COLUMN_H_

#include <cstdint>
#include <vector>

#include "relation/domain.h"
#include "relation/relation.h"

namespace catmark {

/// Domain-index-encoded view of one categorical column: entry j holds the
/// sorted-domain index t of rel.Get(j, col), or kNoIndex when the cell is
/// NULL or outside the domain (e.g. after an A6 remapping attack).
///
/// Embedding and detection both need t per cell — the embedded bit is t & 1
/// — and a multi-key detection sweep needs it once per pass. Building this
/// cache up front runs CategoricalDomain::IndexOf (a Value binary search)
/// exactly once per row instead of once per row *per pass*, and the int32
/// array is small enough to stay cache-resident during the vote tally.
class ValueIndexColumn {
 public:
  static constexpr std::int32_t kNoIndex = -1;

  ValueIndexColumn() = default;

  /// Builds the view with `num_threads` workers (0 = auto).
  static ValueIndexColumn Build(const Relation& rel, std::size_t col,
                                const CategoricalDomain& domain,
                                std::size_t num_threads = 0);

  /// Domain index of row `j`, or kNoIndex.
  std::int32_t index(std::size_t j) const { return index_[j]; }

  std::size_t size() const { return index_.size(); }

  /// Occurrence count per domain index (kNoIndex cells excluded) — the
  /// input of the embedder's category-draining guard.
  std::vector<long> CountPerCategory(std::size_t domain_size) const;

 private:
  std::vector<std::int32_t> index_;
};

}  // namespace catmark

#endif  // CATMARK_RELATION_VALUE_INDEX_COLUMN_H_
