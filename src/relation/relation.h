#ifndef CATMARK_RELATION_RELATION_H_
#define CATMARK_RELATION_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "relation/column_store.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace catmark {

/// An in-memory relation: a schema plus N tuples. This is the object
/// watermarks are embedded into and detected from.
///
/// Storage is column-major (ColumnStore): categorical attributes — the
/// embedding channels — are dictionary-encoded int32 code vectors, other
/// attributes are plain per-column Value vectors. The tuple-oriented API
/// below is preserved; hot paths read codes directly via store().
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema)
      : schema_(std::move(schema)), store_(schema_) {}

  /// Adopts a fully-built store — the .catm load and parallel-ingest merge
  /// paths, which assemble the columnar storage directly and skip the
  /// row-at-a-time append path entirely. The store's layout must match the
  /// schema (column count and dict-vs-plain kinds, CHECKed); cell-level
  /// validation is the builder's responsibility.
  Relation(Schema schema, ColumnStore store);

  const Schema& schema() const { return schema_; }

  /// N — number of tuples.
  std::size_t NumRows() const { return store_.num_rows(); }
  bool empty() const { return store_.num_rows() == 0; }

  /// Appends a tuple after validating arity and (non-null) types.
  Status AppendRow(Row row);

  /// Appends without type validation — generator/attack hot path; the caller
  /// guarantees schema conformance (arity is still checked).
  void AppendRowUnchecked(Row row) { store_.AppendRow(std::move(row)); }

  /// Bulk-appends `rows` (consumed) after validating the whole batch —
  /// atomic: on any arity/type error nothing is appended.
  Status AppendRows(std::span<Row> rows);

  /// Bulk form of AppendRowUnchecked: one arity sweep, then column-major
  /// appends. The streaming service batches through this after its own
  /// batch validation.
  void AppendRowsUnchecked(std::span<Row> rows) { store_.AppendRows(rows); }

  void Reserve(std::size_t n) { store_.Reserve(n); }

  /// Bulk-appends rows `indices` of `other` (equal schemas required). The
  /// backbone of sampling/shuffle/sort/append ops: dictionary codes are
  /// translated instead of every cell being re-serialized and re-interned.
  Status AppendRowsFrom(const Relation& other,
                        const std::vector<std::size_t>& indices);

  /// Materializes tuple `i` as a Row of Value copies (the storage is
  /// columnar, so there is no stored Row to reference).
  Row row(std::size_t i) const { return store_.MaterializeRow(i); }

  /// Cell accessors (bounds-checked). Get's reference stays valid until the
  /// cell (or the column's dictionary) is next mutated.
  const Value& Get(std::size_t row, std::size_t col) const {
    return store_.Get(row, col);
  }
  Status Set(std::size_t row, std::size_t col, Value v);

  /// Removes the row at `i` by swapping with the last row (order is not
  /// semantically meaningful for a relation).
  void SwapRemoveRow(std::size_t i) { store_.SwapRemoveRow(i); }

  /// True when both relations have equal schemas and equal row *multisets*
  /// (order-insensitive — Section 2.3 A4 makes order semantically void).
  /// Compares values, not dictionary codes: two stores whose dictionaries
  /// assigned codes in different insertion orders still compare equal.
  bool SameContent(const Relation& other) const;

  /// Columnar storage — the hot-path surface (codes, dictionaries, live
  /// counts). Mutating through mutable_store() bypasses schema validation.
  const ColumnStore& store() const { return store_; }
  ColumnStore& mutable_store() { return store_; }

 private:
  Schema schema_;
  ColumnStore store_;
};

}  // namespace catmark

#endif  // CATMARK_RELATION_RELATION_H_
