#ifndef CATMARK_RELATION_RELATION_H_
#define CATMARK_RELATION_RELATION_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace catmark {

/// An in-memory relation: a schema plus N tuples (row storage). This is the
/// object watermarks are embedded into and detected from.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// N — number of tuples.
  std::size_t NumRows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a tuple after validating arity and (non-null) types.
  Status AppendRow(Row row);

  /// Appends without validation — generator/attack hot path; the caller
  /// guarantees schema conformance.
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Reserve(std::size_t n) { rows_.reserve(n); }

  const Row& row(std::size_t i) const;
  Row& mutable_row(std::size_t i);

  /// Cell accessors (bounds-checked).
  const Value& Get(std::size_t row, std::size_t col) const;
  Status Set(std::size_t row, std::size_t col, Value v);

  /// Removes the row at `i` by swapping with the last row (O(1); order is
  /// not semantically meaningful for a relation).
  void SwapRemoveRow(std::size_t i);

  const std::vector<Row>& rows() const { return rows_; }

  /// True when both relations have equal schemas and equal row *multisets*
  /// (order-insensitive — Section 2.3 A4 makes order semantically void).
  bool SameContent(const Relation& other) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace catmark

#endif  // CATMARK_RELATION_RELATION_H_
