#include "relation/domain.h"

#include <algorithm>

#include "common/check.h"

namespace catmark {

Result<CategoricalDomain> CategoricalDomain::FromValues(
    std::vector<Value> values) {
  if (values.empty()) {
    return Status::InvalidArgument("categorical domain must be non-empty");
  }
  for (const Value& v : values) {
    if (v.is_null()) {
      return Status::InvalidArgument("categorical domain cannot contain NULL");
    }
  }
  std::sort(values.begin(), values.end());
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] == values[i - 1]) {
      return Status::InvalidArgument("categorical domain values must be "
                                     "distinct (duplicate: " +
                                     values[i].ToString() + ")");
    }
  }
  CategoricalDomain d;
  d.values_ = std::move(values);
  return d;
}

Result<CategoricalDomain> CategoricalDomain::FromRelationColumn(
    const Relation& rel, std::size_t col) {
  if (col >= rel.schema().num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  std::vector<Value> vals;
  if (rel.store().IsDictColumn(col)) {
    // The dictionary already holds the distinct non-null values; keep only
    // the live ones (entries whose last occurrence was overwritten or
    // removed must not resurface in the recovered domain). O(dict log dict)
    // instead of an O(N log N) full-column sort.
    const std::vector<Value>& dict = rel.store().Dict(col);
    const std::vector<std::int64_t>& live = rel.store().DictLiveCounts(col);
    vals.reserve(dict.size());
    for (std::size_t code = 0; code < dict.size(); ++code) {
      if (live[code] > 0) vals.push_back(dict[code]);
    }
  } else {
    vals.reserve(rel.NumRows());
    for (std::size_t i = 0; i < rel.NumRows(); ++i) {
      const Value& v = rel.Get(i, col);
      if (!v.is_null()) vals.push_back(v);
    }
  }
  if (vals.empty()) {
    return Status::InvalidArgument("column has no non-null values");
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  CategoricalDomain d;
  d.values_ = std::move(vals);
  return d;
}

const Value& CategoricalDomain::value(std::size_t t) const {
  CATMARK_CHECK_LT(t, values_.size());
  return values_[t];
}

std::optional<std::size_t> CategoricalDomain::IndexOf(const Value& v) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it == values_.end() || !(*it == v)) return std::nullopt;
  return static_cast<std::size_t>(it - values_.begin());
}

}  // namespace catmark
