#include "relation/schema.h"

#include <unordered_set>

#include "common/check.h"

namespace catmark {

Result<Schema> Schema::Create(std::vector<Column> columns,
                              std::string_view primary_key) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  std::unordered_set<std::string> names;
  for (const Column& c : columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("column names must be non-empty");
    }
    if (!names.insert(c.name).second) {
      return Status::AlreadyExists("duplicate column name '" + c.name + "'");
    }
  }
  Schema s;
  s.columns_ = std::move(columns);
  if (!primary_key.empty()) {
    s.primary_key_index_ = s.ColumnIndex(primary_key);
    if (s.primary_key_index_ < 0) {
      return Status::NotFound("primary key column '" +
                              std::string(primary_key) + "' not in schema");
    }
  }
  return s;
}

const Column& Schema::column(std::size_t i) const {
  CATMARK_CHECK_LT(i, columns_.size());
  return columns_[i];
}

int Schema::ColumnIndex(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<std::size_t> Schema::ColumnIndexOrError(std::string_view name) const {
  const int idx = ColumnIndex(name);
  if (idx < 0) {
    return Status::NotFound("column '" + std::string(name) + "' not found");
  }
  return static_cast<std::size_t>(idx);
}

std::vector<std::size_t> Schema::CategoricalColumns() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].categorical) out.push_back(i);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += ColumnTypeName(columns_[i].type);
    if (columns_[i].categorical) out += " CATEGORICAL";
    if (static_cast<int>(i) == primary_key_index_) out += " PRIMARY KEY";
  }
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.primary_key_index_ != b.primary_key_index_ ||
      a.columns_.size() != b.columns_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type ||
        a.columns_[i].categorical != b.columns_[i].categorical) {
      return false;
    }
  }
  return true;
}

}  // namespace catmark
