#include "relation/relation.h"

#include <algorithm>

#include "common/check.h"

namespace catmark {

Status Relation::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && !row[i].MatchesType(schema_.column(i).type)) {
      return Status::InvalidArgument(
          "value for column '" + schema_.column(i).name + "' has wrong type");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Row& Relation::row(std::size_t i) const {
  CATMARK_CHECK_LT(i, rows_.size());
  return rows_[i];
}

Row& Relation::mutable_row(std::size_t i) {
  CATMARK_CHECK_LT(i, rows_.size());
  return rows_[i];
}

const Value& Relation::Get(std::size_t row, std::size_t col) const {
  CATMARK_CHECK_LT(row, rows_.size());
  CATMARK_CHECK_LT(col, schema_.num_columns());
  return rows_[row][col];
}

Status Relation::Set(std::size_t row, std::size_t col, Value v) {
  if (row >= rows_.size()) return Status::OutOfRange("row index");
  if (col >= schema_.num_columns()) return Status::OutOfRange("column index");
  if (!v.is_null() && !v.MatchesType(schema_.column(col).type)) {
    return Status::InvalidArgument("value for column '" +
                                   schema_.column(col).name +
                                   "' has wrong type");
  }
  rows_[row][col] = std::move(v);
  return Status::OK();
}

void Relation::SwapRemoveRow(std::size_t i) {
  CATMARK_CHECK_LT(i, rows_.size());
  std::swap(rows_[i], rows_.back());
  rows_.pop_back();
}

bool Relation::SameContent(const Relation& other) const {
  if (!(schema_ == other.schema_) || rows_.size() != other.rows_.size()) {
    return false;
  }
  auto key = [](const Row& r) {
    std::string k;
    std::vector<std::uint8_t> bytes;
    for (const Value& v : r) v.SerializeForHash(bytes);
    k.assign(bytes.begin(), bytes.end());
    return k;
  };
  std::vector<std::string> a, b;
  a.reserve(rows_.size());
  b.reserve(rows_.size());
  for (const Row& r : rows_) a.push_back(key(r));
  for (const Row& r : other.rows_) b.push_back(key(r));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace catmark
