#include "relation/relation.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace catmark {

Relation::Relation(Schema schema, ColumnStore store)
    : schema_(std::move(schema)), store_(std::move(store)) {
  CATMARK_CHECK_EQ(store_.num_columns(), schema_.num_columns());
  for (std::size_t c = 0; c < schema_.num_columns(); ++c) {
    CATMARK_CHECK_EQ(store_.IsDictColumn(c), schema_.column(c).categorical);
  }
}

Status Relation::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && !row[i].MatchesType(schema_.column(i).type)) {
      return Status::InvalidArgument(
          "value for column '" + schema_.column(i).name + "' has wrong type");
    }
  }
  store_.AppendRow(std::move(row));
  return Status::OK();
}

Status Relation::AppendRows(std::span<Row> rows) {
  for (const Row& row : rows) {
    if (row.size() != schema_.num_columns()) {
      return Status::InvalidArgument(
          "row arity " + std::to_string(row.size()) + " != schema arity " +
          std::to_string(schema_.num_columns()));
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (!row[i].is_null() && !row[i].MatchesType(schema_.column(i).type)) {
        return Status::InvalidArgument("value for column '" +
                                       schema_.column(i).name +
                                       "' has wrong type");
      }
    }
  }
  store_.AppendRows(rows);
  return Status::OK();
}

Status Relation::AppendRowsFrom(const Relation& other,
                                const std::vector<std::size_t>& indices) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("schema mismatch in AppendRowsFrom");
  }
  for (const std::size_t i : indices) {
    if (i >= other.NumRows()) return Status::OutOfRange("row index");
  }
  if (this == &other) {
    // Self-append: the bulk path would read the vectors it is growing.
    for (const std::size_t i : indices) store_.AppendRow(other.row(i));
    return Status::OK();
  }
  store_.AppendRowsFrom(other.store_, indices);
  return Status::OK();
}

Status Relation::Set(std::size_t row, std::size_t col, Value v) {
  if (row >= store_.num_rows()) return Status::OutOfRange("row index");
  if (col >= schema_.num_columns()) return Status::OutOfRange("column index");
  if (!v.is_null() && !v.MatchesType(schema_.column(col).type)) {
    return Status::InvalidArgument("value for column '" +
                                   schema_.column(col).name +
                                   "' has wrong type");
  }
  store_.Set(row, col, std::move(v));
  return Status::OK();
}

bool Relation::SameContent(const Relation& other) const {
  if (!(schema_ == other.schema_) || NumRows() != other.NumRows()) {
    return false;
  }
  const std::size_t n = NumRows();
  const std::size_t num_cols = schema_.num_columns();

  // Canonical per-row serialization, sorted and compared as multisets.
  // Dictionary columns serialize each dictionary entry once and append the
  // memoized bytes per row, so code assignment order (which depends on
  // insertion order) cannot leak into the comparison.
  const auto keys_of = [num_cols](const Relation& rel, std::size_t rows) {
    std::vector<std::string> dict_bytes;  // flattened per-column memo
    std::vector<std::string> keys(rows);
    for (std::size_t c = 0; c < num_cols; ++c) {
      std::vector<std::uint8_t> scratch;
      if (rel.store().IsDictColumn(c)) {
        const std::vector<Value>& dict = rel.store().Dict(c);
        dict_bytes.assign(dict.size(), {});
        for (std::size_t code = 0; code < dict.size(); ++code) {
          scratch.clear();
          dict[code].SerializeForHash(scratch);
          dict_bytes[code].assign(scratch.begin(), scratch.end());
        }
        scratch.clear();
        NullValue().SerializeForHash(scratch);
        const std::string null_bytes(scratch.begin(), scratch.end());
        const std::vector<std::int32_t>& codes = rel.store().Codes(c);
        for (std::size_t r = 0; r < rows; ++r) {
          keys[r] += codes[r] < 0
                         ? null_bytes
                         : dict_bytes[static_cast<std::size_t>(codes[r])];
        }
      } else {
        const std::vector<Value>& values = rel.store().PlainValues(c);
        for (std::size_t r = 0; r < rows; ++r) {
          scratch.clear();
          values[r].SerializeForHash(scratch);
          keys[r].append(scratch.begin(), scratch.end());
        }
      }
    }
    return keys;
  };

  std::vector<std::string> a = keys_of(*this, n);
  std::vector<std::string> b = keys_of(other, n);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace catmark
