#include "relation/histogram.h"

#include <cmath>

#include "common/check.h"

namespace catmark {

Result<FrequencyHistogram> FrequencyHistogram::Compute(
    const Relation& rel, std::size_t col, const CategoricalDomain& domain) {
  if (col >= rel.schema().num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  if (domain.empty()) {
    return Status::InvalidArgument("empty categorical domain");
  }
  FrequencyHistogram h;
  h.domain_ = domain;
  h.counts_.assign(domain.size(), 0);
  if (rel.store().IsDictColumn(col)) {
    // Aggregate the dictionary's live counts straight into domain bins:
    // O(dict) IndexOf calls, no row scan.
    const std::vector<Value>& dict = rel.store().Dict(col);
    const std::vector<std::int64_t>& live = rel.store().DictLiveCounts(col);
    for (std::size_t code = 0; code < dict.size(); ++code) {
      if (live[code] == 0) continue;
      const auto t = domain.IndexOf(dict[code]);
      if (t.has_value()) {
        h.counts_[*t] += static_cast<std::size_t>(live[code]);
        h.total_ += static_cast<std::size_t>(live[code]);
      }
    }
    h.out_of_domain_ = rel.NumRows() - h.total_;
    return h;
  }
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    const Value& v = rel.Get(i, col);
    if (v.is_null()) {
      ++h.out_of_domain_;
      continue;
    }
    const auto t = domain.IndexOf(v);
    if (!t.has_value()) {
      ++h.out_of_domain_;
      continue;
    }
    ++h.counts_[*t];
    ++h.total_;
  }
  return h;
}

std::size_t FrequencyHistogram::count(std::size_t t) const {
  CATMARK_CHECK_LT(t, counts_.size());
  return counts_[t];
}

double FrequencyHistogram::frequency(std::size_t t) const {
  CATMARK_CHECK_LT(t, counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[t]) / static_cast<double>(total_);
}

std::vector<double> FrequencyHistogram::Frequencies() const {
  std::vector<double> out(counts_.size());
  for (std::size_t t = 0; t < counts_.size(); ++t) out[t] = frequency(t);
  return out;
}

double FrequencyHistogram::L1Distance(const FrequencyHistogram& other) const {
  CATMARK_CHECK_EQ(counts_.size(), other.counts_.size());
  double d = 0.0;
  for (std::size_t t = 0; t < counts_.size(); ++t) {
    d += std::abs(frequency(t) - other.frequency(t));
  }
  return d;
}

double FrequencyHistogram::LInfDistance(
    const FrequencyHistogram& other) const {
  CATMARK_CHECK_EQ(counts_.size(), other.counts_.size());
  double d = 0.0;
  for (std::size_t t = 0; t < counts_.size(); ++t) {
    d = std::max(d, std::abs(frequency(t) - other.frequency(t)));
  }
  return d;
}

}  // namespace catmark
