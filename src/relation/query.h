#ifndef CATMARK_RELATION_QUERY_H_
#define CATMARK_RELATION_QUERY_H_

#include <string>

#include "common/result.h"
#include "relation/relation.h"
#include "relation/value.h"

namespace catmark {

/// Minimal query evaluation over relations: equality predicates, COUNT and
/// conditional-ratio aggregates. These back the query-preservation quality
/// plugins — the Gross-Amblard [5] view of watermarking, where the utility
/// to preserve is the answer to a workload of queries.
struct EqPredicate {
  std::string column;
  Value value;
};

/// COUNT(*) WHERE column = value.
Result<std::size_t> CountWhere(const Relation& rel, const EqPredicate& pred);

/// COUNT(*) WHERE a = x AND b = y.
Result<std::size_t> CountWhereBoth(const Relation& rel, const EqPredicate& a,
                                   const EqPredicate& b);

/// Confidence of the association rule  given -> target :
/// P(target | given) = count(target AND given) / count(given).
/// Returns 0 when the antecedent never holds.
Result<double> RuleConfidence(const Relation& rel, const EqPredicate& target,
                              const EqPredicate& given);

/// Support of the rule: count(target AND given) / N.
Result<double> RuleSupport(const Relation& rel, const EqPredicate& target,
                           const EqPredicate& given);

}  // namespace catmark

#endif  // CATMARK_RELATION_QUERY_H_
