#include "relation/column_store.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace catmark {

const Value& NullValue() {
  static const Value kNull;
  return kNull;
}

ColumnStore::ColumnStore(const Schema& schema) {
  columns_.reserve(schema.num_columns());
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).categorical) {
      columns_.emplace_back(DictColumn{});
    } else {
      columns_.emplace_back(PlainColumn{});
    }
  }
}

void ColumnStore::Reserve(std::size_t n) {
  for (auto& col : columns_) {
    if (auto* d = std::get_if<DictColumn>(&col)) {
      d->codes.reserve(n);
    } else {
      std::get<PlainColumn>(col).values.reserve(n);
    }
  }
}

std::int32_t ColumnStore::Intern(DictColumn& c, const Value& v) {
  return InternSerialized(c, v.SerializeKeyInto(scratch_), v);
}

std::int32_t ColumnStore::InternSerialized(DictColumn& c,
                                           std::string_view key,
                                           const Value& v) {
  const auto it = c.code_of.find(key);
  if (it != c.code_of.end()) return it->second;
  CATMARK_CHECK_LT(c.dict.size(),
                   static_cast<std::size_t>(
                       std::numeric_limits<std::int32_t>::max()));
  const std::int32_t code = static_cast<std::int32_t>(c.dict.size());
  c.dict.push_back(v);
  c.live.push_back(0);
  c.code_of.emplace(std::string(key), code);
  return code;
}

void ColumnStore::AppendRow(Row row) {
  CATMARK_CHECK_EQ(row.size(), columns_.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (auto* d = std::get_if<DictColumn>(&columns_[i])) {
      if (row[i].is_null()) {
        d->codes.push_back(kNullCode);
      } else {
        const std::int32_t code = Intern(*d, row[i]);
        d->codes.push_back(code);
        ++d->live[static_cast<std::size_t>(code)];
      }
    } else {
      std::get<PlainColumn>(columns_[i]).values.push_back(std::move(row[i]));
    }
  }
  ++num_rows_;
}

void ColumnStore::AppendRows(std::span<Row> rows) {
  for (const Row& row : rows) CATMARK_CHECK_EQ(row.size(), columns_.size());
  // Grow geometrically when a batch overflows capacity: reserve(size + n)
  // would set capacity *exactly*, so a steady stream of batches would
  // reallocate (and copy) every column on every batch — O(N^2) growth.
  const auto grow = [n = rows.size()](auto& vec) {
    if (vec.size() + n > vec.capacity()) {
      vec.reserve(std::max(vec.size() + n, vec.capacity() * 2));
    }
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (auto* d = std::get_if<DictColumn>(&columns_[c])) {
      grow(d->codes);
      // Streamed batches tend to carry runs of the same value, so memoize
      // the last interned key's canonical bytes and skip the dictionary
      // probe while the run lasts. Comparing serialized bytes (not Value
      // equality) keeps code assignment byte-identical to the row-at-a-time
      // path: e.g. -0.0 == 0.0 as doubles but they serialize differently.
      std::vector<std::uint8_t> last_key;
      std::int32_t last_code = kNullCode;
      for (Row& row : rows) {
        if (row[c].is_null()) {
          d->codes.push_back(kNullCode);
          continue;
        }
        const std::string_view key = row[c].SerializeKeyInto(scratch_);
        const std::string_view last(
            reinterpret_cast<const char*>(last_key.data()), last_key.size());
        std::int32_t code;
        if (!last.empty() && key == last) {
          code = last_code;
        } else {
          code = InternSerialized(*d, key, row[c]);
          last_key.assign(key.begin(), key.end());
          last_code = code;
        }
        d->codes.push_back(code);
        ++d->live[static_cast<std::size_t>(code)];
      }
    } else {
      auto& values = std::get<PlainColumn>(columns_[c]).values;
      grow(values);
      for (Row& row : rows) values.push_back(std::move(row[c]));
    }
  }
  num_rows_ += rows.size();
}

void ColumnStore::AppendRowsFrom(const ColumnStore& src,
                                 const std::vector<std::size_t>& indices) {
  CATMARK_CHECK(this != &src) << "self-append requires the row path";
  CATMARK_CHECK_EQ(columns_.size(), src.columns_.size());
  // One validation pass; the per-column copy loops below can then index
  // unchecked.
  for (const std::size_t i : indices) CATMARK_CHECK_LT(i, src.num_rows_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    CATMARK_CHECK_EQ(std::holds_alternative<DictColumn>(columns_[c]),
                     std::holds_alternative<DictColumn>(src.columns_[c]));
    if (auto* d = std::get_if<DictColumn>(&columns_[c])) {
      const DictColumn& s = std::get<DictColumn>(src.columns_[c]);
      // Lazily translate source codes: each referenced dictionary entry is
      // interned once, however many rows carry it.
      constexpr std::int32_t kUntranslated = -2;
      std::vector<std::int32_t> xlate(s.dict.size(), kUntranslated);
      d->codes.reserve(d->codes.size() + indices.size());
      for (const std::size_t i : indices) {
        const std::int32_t code = s.codes[i];
        if (code < 0) {
          d->codes.push_back(kNullCode);
          continue;
        }
        std::int32_t& mapped = xlate[static_cast<std::size_t>(code)];
        if (mapped == kUntranslated) {
          mapped = Intern(*d, s.dict[static_cast<std::size_t>(code)]);
        }
        d->codes.push_back(mapped);
        ++d->live[static_cast<std::size_t>(mapped)];
      }
    } else {
      auto& values = std::get<PlainColumn>(columns_[c]).values;
      const auto& s = std::get<PlainColumn>(src.columns_[c]).values;
      values.reserve(values.size() + indices.size());
      for (const std::size_t i : indices) values.push_back(s[i]);
    }
  }
  num_rows_ += indices.size();
}

const Value& ColumnStore::Get(std::size_t row, std::size_t col) const {
  CATMARK_CHECK_LT(row, num_rows_);
  CATMARK_CHECK_LT(col, columns_.size());
  if (const auto* d = std::get_if<DictColumn>(&columns_[col])) {
    const std::int32_t c = d->codes[row];
    return c < 0 ? NullValue() : d->dict[static_cast<std::size_t>(c)];
  }
  return std::get<PlainColumn>(columns_[col]).values[row];
}

void ColumnStore::Set(std::size_t row, std::size_t col, Value v) {
  CATMARK_CHECK_LT(row, num_rows_);
  CATMARK_CHECK_LT(col, columns_.size());
  if (auto* d = std::get_if<DictColumn>(&columns_[col])) {
    const std::int32_t code = v.is_null() ? kNullCode : Intern(*d, v);
    const std::int32_t old = d->codes[row];
    if (old >= 0) --d->live[static_cast<std::size_t>(old)];
    if (code >= 0) ++d->live[static_cast<std::size_t>(code)];
    d->codes[row] = code;
    return;
  }
  std::get<PlainColumn>(columns_[col]).values[row] = std::move(v);
}

void ColumnStore::SwapRemoveRow(std::size_t i) {
  CATMARK_CHECK_LT(i, num_rows_);
  const std::size_t last = num_rows_ - 1;
  for (auto& col : columns_) {
    if (auto* d = std::get_if<DictColumn>(&col)) {
      const std::int32_t removed = d->codes[i];
      if (removed >= 0) --d->live[static_cast<std::size_t>(removed)];
      d->codes[i] = d->codes[last];
      d->codes.pop_back();
    } else {
      auto& values = std::get<PlainColumn>(col).values;
      values[i] = std::move(values[last]);
      values.pop_back();
    }
  }
  --num_rows_;
}

Row ColumnStore::MaterializeRow(std::size_t i) const {
  CATMARK_CHECK_LT(i, num_rows_);
  Row row;
  row.reserve(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) row.push_back(Get(i, c));
  return row;
}

bool ColumnStore::IsDictColumn(std::size_t col) const {
  CATMARK_CHECK_LT(col, columns_.size());
  return std::holds_alternative<DictColumn>(columns_[col]);
}

ColumnStore::DictColumn& ColumnStore::dict_column(std::size_t col) {
  CATMARK_CHECK_LT(col, columns_.size());
  auto* d = std::get_if<DictColumn>(&columns_[col]);
  CATMARK_CHECK(d != nullptr) << "column " << col << " is not dict-encoded";
  return *d;
}

const ColumnStore::DictColumn& ColumnStore::dict_column(
    std::size_t col) const {
  CATMARK_CHECK_LT(col, columns_.size());
  const auto* d = std::get_if<DictColumn>(&columns_[col]);
  CATMARK_CHECK(d != nullptr) << "column " << col << " is not dict-encoded";
  return *d;
}

const std::vector<std::int32_t>& ColumnStore::Codes(std::size_t col) const {
  return dict_column(col).codes;
}

const std::vector<Value>& ColumnStore::Dict(std::size_t col) const {
  return dict_column(col).dict;
}

const std::vector<std::int64_t>& ColumnStore::DictLiveCounts(
    std::size_t col) const {
  return dict_column(col).live;
}

const std::vector<Value>& ColumnStore::PlainValues(std::size_t col) const {
  CATMARK_CHECK_LT(col, columns_.size());
  const auto* p = std::get_if<PlainColumn>(&columns_[col]);
  CATMARK_CHECK(p != nullptr) << "column " << col << " is dict-encoded";
  return p->values;
}

std::int32_t ColumnStore::InternValue(std::size_t col, const Value& v) {
  if (v.is_null()) return kNullCode;
  return Intern(dict_column(col), v);
}

std::int32_t ColumnStore::CodeOf(std::size_t col, const Value& v) const {
  if (v.is_null()) return kNullCode;
  const DictColumn& d = dict_column(col);
  std::vector<std::uint8_t> scratch;
  const auto it = d.code_of.find(v.SerializeKeyInto(scratch));
  return it == d.code_of.end() ? kNullCode : it->second;
}

std::int32_t ColumnStore::GetCode(std::size_t row, std::size_t col) const {
  CATMARK_CHECK_LT(row, num_rows_);
  return dict_column(col).codes[row];
}

void ColumnStore::SetCode(std::size_t row, std::size_t col,
                          std::int32_t code) {
  CATMARK_CHECK_LT(row, num_rows_);
  DictColumn& d = dict_column(col);
  CATMARK_CHECK(code >= kNullCode &&
                code < static_cast<std::int32_t>(d.dict.size()));
  const std::int32_t old = d.codes[row];
  if (old >= 0) --d.live[static_cast<std::size_t>(old)];
  if (code >= 0) ++d.live[static_cast<std::size_t>(code)];
  d.codes[row] = code;
}

Status ColumnStore::InstallDictColumn(std::size_t col,
                                      std::vector<Value> dict,
                                      std::vector<std::int64_t> live,
                                      std::vector<std::int32_t> codes) {
  CATMARK_CHECK_EQ(num_rows_, 0u) << "install on a non-fresh store";
  CATMARK_CHECK_LT(col, columns_.size());
  auto* d = std::get_if<DictColumn>(&columns_[col]);
  CATMARK_CHECK(d != nullptr) << "column " << col << " is not dict-encoded";
  CATMARK_CHECK(d->codes.empty() && d->dict.empty())
      << "column " << col << " installed twice";
  if (live.size() != dict.size()) {
    return Status::InvalidArgument(
        "dict column: live-count array does not match dictionary size");
  }
  // Rebuild the intern map; a duplicate canonical key means two codes would
  // alias one value and future interns could not reproduce the assignment.
  d->code_of.reserve(dict.size());
  for (std::size_t i = 0; i < dict.size(); ++i) {
    if (dict[i].is_null()) {
      return Status::InvalidArgument("dict column: NULL dictionary entry");
    }
    const std::string_view key = dict[i].SerializeKeyInto(scratch_);
    if (!d->code_of.emplace(std::string(key), static_cast<std::int32_t>(i))
             .second) {
      return Status::InvalidArgument(
          "dict column: duplicate dictionary entry");
    }
  }
  // Codes must land inside the dictionary and explain the live counts
  // exactly — live counts are stored (not derived) so a corrupted-but-
  // checksum-valid mismatch is treated as a malformed file, not repaired.
  std::vector<std::int64_t> recounted(dict.size(), 0);
  for (const std::int32_t code : codes) {
    if (code == kNullCode) continue;
    if (code < 0 || static_cast<std::size_t>(code) >= dict.size()) {
      return Status::InvalidArgument("dict column: code out of range");
    }
    ++recounted[static_cast<std::size_t>(code)];
  }
  if (recounted != live) {
    return Status::InvalidArgument(
        "dict column: live counts disagree with the code vector");
  }
  d->dict = std::move(dict);
  d->live = std::move(live);
  d->codes = std::move(codes);
  return Status::OK();
}

Status ColumnStore::InstallPlainColumn(std::size_t col,
                                       std::vector<Value> values) {
  CATMARK_CHECK_EQ(num_rows_, 0u) << "install on a non-fresh store";
  CATMARK_CHECK_LT(col, columns_.size());
  auto* p = std::get_if<PlainColumn>(&columns_[col]);
  CATMARK_CHECK(p != nullptr) << "column " << col << " is dict-encoded";
  CATMARK_CHECK(p->values.empty()) << "column " << col << " installed twice";
  p->values = std::move(values);
  return Status::OK();
}

Status ColumnStore::FinalizeInstall(std::size_t num_rows) {
  CATMARK_CHECK_EQ(num_rows_, 0u) << "finalize on a non-fresh store";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    const std::size_t rows =
        std::holds_alternative<DictColumn>(columns_[c])
            ? std::get<DictColumn>(columns_[c]).codes.size()
            : std::get<PlainColumn>(columns_[c]).values.size();
    if (rows != num_rows) {
      return Status::InvalidArgument(
          "column " + std::to_string(c) + " holds " + std::to_string(rows) +
          " rows, expected " + std::to_string(num_rows));
    }
  }
  num_rows_ = num_rows;
  return Status::OK();
}

std::vector<Value> ColumnStore::TakePlainColumn(std::size_t col) {
  CATMARK_CHECK_LT(col, columns_.size());
  auto* p = std::get_if<PlainColumn>(&columns_[col]);
  CATMARK_CHECK(p != nullptr) << "column " << col << " is dict-encoded";
  return std::move(p->values);
}

BulkCodeWriter::BulkCodeWriter(ColumnStore& store, std::size_t col,
                               std::size_t num_shards)
    : store_(store), col_(col) {
  CATMARK_CHECK_GE(num_shards, 1u);
  ColumnStore::DictColumn& d = store_.dict_column(col_);
  codes_ = &d.codes;
  live_delta_.assign(num_shards,
                     std::vector<std::int64_t>(d.dict.size(), 0));
}

BulkCodeWriter::~BulkCodeWriter() {
  CATMARK_CHECK(finished_)
      << "BulkCodeWriter destroyed with unreconciled live-count deltas";
}

void BulkCodeWriter::Finish() {
  if (finished_) return;
  finished_ = true;
  ColumnStore::DictColumn& d = store_.dict_column(col_);
  for (const std::vector<std::int64_t>& delta : live_delta_) {
    for (std::size_t code = 0; code < delta.size(); ++code) {
      d.live[code] += delta[code];
    }
  }
}

ColumnReader::ColumnReader(const ColumnStore& store, std::size_t col) {
  if (store.IsDictColumn(col)) {
    codes_ = &store.Codes(col);
    dict_ = &store.Dict(col);
  } else {
    values_ = &store.PlainValues(col);
  }
}

}  // namespace catmark
