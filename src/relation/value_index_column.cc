#include "relation/value_index_column.h"

#include <limits>

#include "common/check.h"
#include "common/parallel.h"

namespace catmark {

ValueIndexColumn ValueIndexColumn::Build(const Relation& rel, std::size_t col,
                                         const CategoricalDomain& domain,
                                         std::size_t num_threads) {
  CATMARK_CHECK_LT(col, rel.schema().num_columns());
  CATMARK_CHECK_LE(domain.size(),
                   static_cast<std::size_t>(
                       std::numeric_limits<std::int32_t>::max()));
  ValueIndexColumn out;

  if (rel.store().IsDictColumn(col)) {
    // Zero-copy: remap each dictionary entry once, alias the code vector.
    const std::vector<Value>& dict = rel.store().Dict(col);
    out.remap_.assign(dict.size(), kNoIndex);
    for (std::size_t code = 0; code < dict.size(); ++code) {
      const auto t = domain.IndexOf(dict[code]);
      if (t.has_value()) out.remap_[code] = static_cast<std::int32_t>(*t);
    }
    out.codes_ = &rel.store().Codes(col);
    out.live_ = &rel.store().DictLiveCounts(col);
    return out;
  }

  out.index_.assign(rel.NumRows(), kNoIndex);
  ParallelFor(rel.NumRows(), EffectiveThreadCount(num_threads, rel.NumRows()),
              [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
                for (std::size_t j = begin; j < end; ++j) {
                  const Value& v = rel.Get(j, col);
                  if (v.is_null()) continue;
                  const auto t = domain.IndexOf(v);
                  if (t.has_value()) {
                    out.index_[j] = static_cast<std::int32_t>(*t);
                  }
                }
              });
  return out;
}

std::vector<long> ValueIndexColumn::CountPerCategory(
    std::size_t domain_size) const {
  std::vector<long> counts(domain_size, 0);
  if (codes_ != nullptr) {
    for (std::size_t code = 0; code < remap_.size(); ++code) {
      const std::int32_t t = remap_[code];
      if (t >= 0 && static_cast<std::size_t>(t) < domain_size) {
        counts[static_cast<std::size_t>(t)] +=
            static_cast<long>((*live_)[code]);
      }
    }
    return counts;
  }
  for (const std::int32_t t : index_) {
    if (t >= 0 && static_cast<std::size_t>(t) < domain_size) ++counts[t];
  }
  return counts;
}

}  // namespace catmark
