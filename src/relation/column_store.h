#ifndef CATMARK_RELATION_COLUMN_STORE_H_
#define CATMARK_RELATION_COLUMN_STORE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "relation/schema.h"
#include "relation/value.h"

namespace catmark {

/// Transparent string hash: lets std::string-keyed maps probe with a
/// std::string_view (or char*) without materializing a key copy.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// The shared NULL value — Get on a NULL cell returns a reference to this.
const Value& NullValue();

/// Column-major tuple storage behind Relation.
///
/// Each categorical column is dictionary-encoded: cells are int32 codes into
/// a per-column dictionary of distinct values (code kNullCode marks NULL),
/// interned through a transparent-hash map over the values' canonical hash
/// serialization. The dictionary also tracks a live-occurrence count per
/// code, so "which distinct values are present, and how often" — domain
/// recovery, frequency histograms, the embedder's category-draining guard —
/// costs O(dictionary) instead of a full O(N) column scan.
///
/// Non-categorical columns (keys, measures) fall back to a plain
/// column-major std::vector<Value>: their values are mostly distinct, so a
/// dictionary would just add an indirection on every access.
///
/// Sion's channel is per-tuple-per-attribute, which makes the embed/detect
/// hot loops stream exactly one column at a time; the int32 code arrays keep
/// those passes cache-resident where row-of-Value storage thrashed.
class ColumnStore {
 public:
  static constexpr std::int32_t kNullCode = -1;

  ColumnStore() = default;

  /// Lays out one column per schema attribute: dictionary-encoded when
  /// `categorical`, plain otherwise.
  explicit ColumnStore(const Schema& schema);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }

  void Reserve(std::size_t n);

  /// Appends a tuple; `row.size()` must equal num_columns() (checked).
  void AppendRow(Row row);

  /// Bulk-appends `rows` (each of arity num_columns(), checked in one
  /// up-front sweep), consuming them. Column-major: each column's cells
  /// append in row order, so dictionary code assignment is identical to
  /// issuing the same AppendRow calls one at a time — only the per-row
  /// variant dispatch and map-growth churn are amortized away. The
  /// streaming insert path batches through this.
  void AppendRows(std::span<Row> rows);

  /// Bulk-appends rows `indices` of `src`, which must have the same column
  /// layout (checked) and not be this store. Dictionary columns intern each
  /// *referenced* source dictionary entry once and translate codes;
  /// fallback columns copy values — no per-cell re-serialization, unlike
  /// the row-at-a-time path.
  void AppendRowsFrom(const ColumnStore& src,
                      const std::vector<std::size_t>& indices);

  /// Cell value; NULL cells return NullValue(). The reference is valid until
  /// the cell (or, for dictionary columns, the dictionary) is next mutated.
  const Value& Get(std::size_t row, std::size_t col) const;

  /// Overwrites one cell (no type validation — Relation layers that on top).
  void Set(std::size_t row, std::size_t col, Value v);

  /// Removes row `i` by swapping the last row into its slot: O(columns).
  void SwapRemoveRow(std::size_t i);

  /// Materializes row `i` as a Row of Value copies.
  Row MaterializeRow(std::size_t i) const;

  // --- Columnar access (the hot-path surface) ------------------------------

  bool IsDictColumn(std::size_t col) const;

  /// Per-row dictionary codes of a dictionary column. The returned vector's
  /// identity is stable across Set/Intern (only elements change); it grows /
  /// shrinks with AppendRow / SwapRemoveRow.
  const std::vector<std::int32_t>& Codes(std::size_t col) const;

  /// code -> value dictionary of a dictionary column. Append-only: codes are
  /// never recycled, so an entry may outlive its last occurrence (its live
  /// count drops to 0 instead).
  const std::vector<Value>& Dict(std::size_t col) const;

  /// Rows currently holding each code (parallel to Dict). Entries with a
  /// zero count are "dead": interned but not present in any row.
  const std::vector<std::int64_t>& DictLiveCounts(std::size_t col) const;

  /// Plain (non-dictionary) column values, one per row.
  const std::vector<Value>& PlainValues(std::size_t col) const;

  /// Interns `v` into `col`'s dictionary without touching any row; returns
  /// its code. NULL interns as kNullCode.
  std::int32_t InternValue(std::size_t col, const Value& v);

  /// Code of `v` in `col`'s dictionary, or kNullCode when absent/NULL.
  std::int32_t CodeOf(std::size_t col, const Value& v) const;

  /// Cell code of a dictionary column (kNullCode for NULL cells).
  std::int32_t GetCode(std::size_t row, std::size_t col) const;

  /// Overwrites a dictionary cell by code; `code` must be kNullCode or a
  /// valid code for `col` (checked).
  void SetCode(std::size_t row, std::size_t col, std::int32_t code);

  // --- Wholesale column installation (the zero-re-intern load surface) -----
  //
  // The .catm loader and the parallel-ingest dictionary merge build columns
  // elsewhere (from disk sections / per-shard stores) and adopt them here
  // without touching the per-row intern path. Contract: the store must be
  // freshly constructed for the right schema (num_rows() == 0, CHECKed),
  // each column installed at most once, and FinalizeInstall called last —
  // a partially-installed store is not usable through the row API.
  //
  // Everything data-dependent is validated with a Status (the inputs come
  // from disk and must never crash the process): duplicate or NULL
  // dictionary entries, codes outside [kNullCode, dict size), and live
  // counts that disagree with the code vector all return InvalidArgument.
  // Code assignment is adopted verbatim — including dead (zero-live)
  // entries — so a loaded store is code-for-code identical to the one that
  // was serialized.

  /// Installs a dictionary column from pre-encoded parts; rebuilds the
  /// intern map from `dict` (O(dictionary), the only non-bulk work).
  Status InstallDictColumn(std::size_t col, std::vector<Value> dict,
                           std::vector<std::int64_t> live,
                           std::vector<std::int32_t> codes);

  /// Installs a plain column's per-row values.
  Status InstallPlainColumn(std::size_t col, std::vector<Value> values);

  /// Verifies every column holds exactly `num_rows` cells and commits the
  /// row count; InvalidArgument (and the store stays inert) otherwise.
  Status FinalizeInstall(std::size_t num_rows);

  /// Moves a plain column's values out (the column is left empty). The
  /// parallel-ingest merge concatenates shard columns through this instead
  /// of copying every string.
  std::vector<Value> TakePlainColumn(std::size_t col);

 private:
  friend class BulkCodeWriter;
  struct DictColumn {
    std::vector<std::int32_t> codes;   // per-row; kNullCode == NULL
    std::vector<Value> dict;           // code -> value, append-only
    std::vector<std::int64_t> live;    // code -> rows currently holding it
    // Canonical hash serialization of each dict value -> its code.
    std::unordered_map<std::string, std::int32_t, TransparentStringHash,
                       std::equal_to<>>
        code_of;
  };
  struct PlainColumn {
    std::vector<Value> values;  // per-row
  };

  DictColumn& dict_column(std::size_t col);
  const DictColumn& dict_column(std::size_t col) const;

  std::int32_t Intern(DictColumn& c, const Value& v);
  /// Intern with the canonical key bytes already serialized (`key` must be
  /// `v.SerializeKeyInto(...)` output) — the batch append path serializes
  /// once per row and reuses the bytes for its run-of-equal-values memo.
  std::int32_t InternSerialized(DictColumn& c, std::string_view key,
                                const Value& v);

  std::vector<std::variant<DictColumn, PlainColumn>> columns_;
  std::size_t num_rows_ = 0;
  // Reused serialization buffer for intern probes (single-threaded mutation
  // path; readers never touch it).
  std::vector<std::uint8_t> scratch_;
};

/// Bulk code-write path for sharded writers (the parallel embed apply
/// pass). SetCode is not safe to call concurrently — every write touches
/// the column's shared live-count array — so BulkCodeWriter splits the work:
/// Write(shard, row, code) performs the raw per-row code-slot store plus a
/// *shard-local* live-count delta, and Finish() reconciles the deltas into
/// the dictionary's live counts in one serial pass. Concurrent Write calls
/// are safe as long as (a) each row is written by at most one shard and
/// (b) no other mutation of the store overlaps the writer's lifetime. The
/// final store state is identical to issuing the same SetCode calls
/// serially, in any order.
class BulkCodeWriter {
 public:
  /// All codes written must already be interned in `col`'s dictionary —
  /// Write never grows it (interning mutates shared maps).
  BulkCodeWriter(ColumnStore& store, std::size_t col, std::size_t num_shards);

  /// Destructor CHECKs that Finish() ran: dropping pending deltas would
  /// silently corrupt the live counts.
  ~BulkCodeWriter();

  BulkCodeWriter(const BulkCodeWriter&) = delete;
  BulkCodeWriter& operator=(const BulkCodeWriter&) = delete;

  /// Overwrites `row`'s code with `code` (must be a valid non-NULL code for
  /// the column, checked) and records the live-count delta against `shard`.
  void Write(std::size_t shard, std::size_t row, std::int32_t code) {
    CATMARK_CHECK_LT(shard, live_delta_.size());
    CATMARK_CHECK_LT(row, codes_->size());
    CATMARK_CHECK(code >= 0 &&
                  static_cast<std::size_t>(code) < live_delta_[shard].size());
    std::vector<std::int64_t>& delta = live_delta_[shard];
    const std::int32_t old = (*codes_)[row];
    if (old >= 0) --delta[static_cast<std::size_t>(old)];
    ++delta[static_cast<std::size_t>(code)];
    (*codes_)[row] = code;
  }

  /// Serially folds every shard's live-count deltas into the dictionary.
  /// Idempotent; Write must not be called afterwards.
  void Finish();

 private:
  ColumnStore& store_;
  std::size_t col_;
  std::vector<std::int32_t>* codes_;  // the column's per-row code slots
  // live_delta_[shard][code]: net change in rows holding `code`.
  std::vector<std::vector<std::int64_t>> live_delta_;
  bool finished_ = false;
};

/// Cheap positional cursor over one column for hot loops: resolves the
/// dict-vs-plain branch once at construction, then reads row values with two
/// indexed loads. `store` must outlive the reader.
class ColumnReader {
 public:
  ColumnReader(const ColumnStore& store, std::size_t col);

  const Value& operator[](std::size_t row) const {
    if (codes_ != nullptr) {
      const std::int32_t c = (*codes_)[row];
      return c < 0 ? NullValue() : (*dict_)[static_cast<std::size_t>(c)];
    }
    return (*values_)[row];
  }

  bool is_dict() const { return codes_ != nullptr; }
  const std::vector<std::int32_t>& codes() const { return *codes_; }
  const std::vector<Value>& dict() const { return *dict_; }
  /// Direct row storage of a plain (non-dict) column — per-row hot loops
  /// iterate this instead of paying the dict branch in operator[] on every
  /// access. Only valid when !is_dict().
  const std::vector<Value>& values() const { return *values_; }

 private:
  const std::vector<std::int32_t>* codes_ = nullptr;
  const std::vector<Value>* dict_ = nullptr;
  const std::vector<Value>* values_ = nullptr;
};

}  // namespace catmark

#endif  // CATMARK_RELATION_COLUMN_STORE_H_
