#include "relation/catm_io.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "relation/catm_format.h"
#include "relation/csv.h"

#if defined(__unix__) || defined(__APPLE__)
#define CATMARK_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CATMARK_HAVE_MMAP 0
#endif

namespace catmark {

FileBytes::~FileBytes() {
#if CATMARK_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
}

FileBytes::FileBytes(FileBytes&& other) noexcept
    : size_(other.size_),
      owned_(std::move(other.owned_)),
      map_(other.map_),
      map_len_(other.map_len_) {
  // owned_'s buffer may relocate on move (SSO), so data_ must be re-derived
  // rather than copied.
  data_ = map_ != nullptr ? static_cast<const char*>(map_) : owned_.data();
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.data_ = nullptr;
  other.size_ = 0;
}

FileBytes& FileBytes::operator=(FileBytes&& other) noexcept {
  if (this == &other) return *this;
#if CATMARK_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
  size_ = other.size_;
  owned_ = std::move(other.owned_);
  map_ = other.map_;
  map_len_ = other.map_len_;
  data_ = map_ != nullptr ? static_cast<const char*>(map_) : owned_.data();
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

Result<FileBytes> FileBytes::Open(const std::string& path) {
  FileBytes fb;
#if CATMARK_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  struct stat st {};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      fb.map_ = map;
      fb.map_len_ = static_cast<std::size_t>(st.st_size);
      fb.data_ = static_cast<const char*>(map);
      fb.size_ = fb.map_len_;
      return fb;
    }
  }
  ::close(fd);  // not a regular file / empty / mmap refused: buffered read
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("error while reading '" + path + "'");
  }
  fb.owned_ = std::move(buf).str();
  fb.data_ = fb.owned_.data();
  fb.size_ = fb.owned_.size();
  return fb;
}

bool LooksLikeCatm(std::string_view bytes) {
  return bytes.size() >= sizeof(kCatmMagic) &&
         std::memcmp(bytes.data(), kCatmMagic, sizeof(kCatmMagic)) == 0;
}

namespace {

std::uint8_t TypeByte(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return 0;
    case ColumnType::kDouble:
      return 1;
    case ColumnType::kString:
      return 2;
  }
  CATMARK_CHECK(false) << "unknown ColumnType";
  return 0;
}

struct SectionEntry {
  std::uint8_t kind = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t checksum = 0;
};

}  // namespace

std::string WriteCatmString(const Relation& rel) {
  const Schema& schema = rel.schema();
  const ColumnStore& store = rel.store();
  const std::size_t num_cols = schema.num_columns();
  const std::uint64_t num_rows = store.num_rows();

  std::size_t meta_length = 0;
  for (const Column& col : schema.columns()) {
    CATMARK_CHECK_LE(col.name.size(), std::size_t{0xFFFF})
        << "column name too long for .catm";
    meta_length += kCatmMetaPerColumn + col.name.size();
  }
  CATMARK_CHECK_LE(meta_length, std::size_t{0xFFFFFFFF})
      << "schema too large for .catm";
  const std::uint64_t sections_start = kCatmHeaderSize + meta_length;

  // Column sections, contiguous in column order.
  std::vector<std::uint8_t> body;
  std::vector<SectionEntry> table(num_cols);
  for (std::size_t c = 0; c < num_cols; ++c) {
    const std::size_t begin = body.size();
    if (store.IsDictColumn(c)) {
      const std::vector<Value>& dict = store.Dict(c);
      AppendLeU32(body, static_cast<std::uint32_t>(dict.size()));
      std::vector<std::uint8_t> blob;
      std::vector<std::uint64_t> offsets;
      offsets.reserve(dict.size() + 1);
      offsets.push_back(0);
      for (const Value& v : dict) {
        EncodeValue(v, blob);
        offsets.push_back(blob.size());
      }
      AppendLeU64Array(body, offsets);
      body.insert(body.end(), blob.begin(), blob.end());
      AppendLeI64Array(body, store.DictLiveCounts(c));
      AppendLeI32Array(body, store.Codes(c));
      table[c].kind = kCatmSectionDict;
    } else {
      for (const Value& v : store.PlainValues(c)) EncodeValue(v, body);
      table[c].kind = kCatmSectionPlain;
    }
    table[c].offset = sections_start + begin;
    table[c].length = body.size() - begin;
    table[c].checksum = CatmChecksum(body.data() + begin, body.size() - begin);
  }

  // Checksummed region: counts, schema entries, section table.
  std::vector<std::uint8_t> checked;
  checked.reserve((kCatmHeaderSize - kCatmChecksumStart) + meta_length);
  AppendLeU64(checked, num_rows);
  AppendLeU32(checked, static_cast<std::uint32_t>(num_cols));
  AppendLeI32(checked, schema.primary_key_index());
  for (const Column& col : schema.columns()) {
    AppendLeU16(checked, static_cast<std::uint16_t>(col.name.size()));
    checked.insert(checked.end(), col.name.begin(), col.name.end());
    checked.push_back(TypeByte(col.type));
    checked.push_back(col.categorical ? 1 : 0);
  }
  for (const SectionEntry& s : table) {
    checked.push_back(s.kind);
    AppendLeU64(checked, s.offset);
    AppendLeU64(checked, s.length);
    AppendLeU64(checked, s.checksum);
  }
  CATMARK_CHECK_EQ(checked.size(),
                   (kCatmHeaderSize - kCatmChecksumStart) + meta_length);

  std::string out;
  out.reserve(kCatmHeaderSize + meta_length + body.size());
  out.append(reinterpret_cast<const char*>(kCatmMagic), sizeof(kCatmMagic));
  std::vector<std::uint8_t> head;
  head.reserve(16);
  AppendLeU32(head, kCatmVersion);
  AppendLeU32(head, static_cast<std::uint32_t>(meta_length));
  AppendLeU64(head, CatmChecksum(checked.data(), checked.size()));
  out.append(head.begin(), head.end());
  out.append(checked.begin(), checked.end());
  out.append(body.begin(), body.end());
  return out;
}

Status WriteCatmFile(const Relation& rel, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const std::string bytes = WriteCatmString(rel);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IoError("error while writing '" + path + "'");
  }
  return Status::OK();
}

namespace {

/// Big-endian u64 load; the shift-or fold compiles to one byte-swapped load.
inline std::uint64_t LoadBeU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

/// Decodes a plain (non-categorical) section with a tight raw-pointer loop.
/// DecodeValue produces identical values, but pays an out-of-line call per
/// value, which made plain columns the dominant cost of a .catm load. On
/// malformed input the failing value is re-decoded through DecodeValue so a
/// corrupt image surfaces the exact same Status on either path; a value
/// that decodes fine but carries the wrong tag is a schema/type mismatch.
Status DecodePlainSection(ByteReader& r, ColumnType type,
                          std::uint64_t num_rows, const std::string& name,
                          std::vector<Value>& values) {
  const std::size_t section_len = r.remaining();
  const std::uint8_t* p = nullptr;
  r.ReadBytes(section_len, p);
  const std::uint8_t* const end = p + section_len;
  // Every value takes at least one byte, so a row count beyond the section
  // length can never finish; the cap keeps a corrupt count from
  // over-reserving.
  values.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(num_rows, section_len)));
  const std::uint8_t want_tag = type == ColumnType::kInt64    ? 1
                                : type == ColumnType::kDouble ? 2
                                                              : 3;
  const auto fail = [&](const std::uint8_t* at) -> Status {
    ByteReader vr(at, static_cast<std::size_t>(end - at));
    Value v;
    CATMARK_RETURN_IF_ERROR(DecodeValue(vr, v));
    return Status::InvalidArgument(
        ".catm value type disagrees with the schema in column '" + name +
        "'");
  };
  for (std::uint64_t i = 0; i < num_rows; ++i) {
    const std::uint8_t* const at = p;
    if (p == end) return fail(at);
    const std::uint8_t tag = *p++;
    if (tag == want_tag) {
      if (end - p < 8) return fail(at);
      const std::uint64_t u = LoadBeU64(p);
      p += 8;
      if (tag == 1) {
        values.emplace_back(static_cast<std::int64_t>(u));
      } else if (tag == 2) {
        values.emplace_back(std::bit_cast<double>(u));
      } else {
        if (u > static_cast<std::uint64_t>(end - p)) return fail(at);
        values.emplace_back(std::string(reinterpret_cast<const char*>(p),
                                        static_cast<std::size_t>(u)));
        p += u;
      }
    } else if (tag == 0) {
      values.emplace_back();
    } else {
      return fail(at);
    }
  }
  if (p != end) {
    return Status::InvalidArgument(
        ".catm plain section has trailing bytes in column '" + name + "'");
  }
  return Status::OK();
}

Result<Relation> ReadCatmImpl(std::string_view bytes, const Schema* expected) {
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  if (!LooksLikeCatm(bytes)) {
    return Status::InvalidArgument("not a .catm file (bad magic)");
  }
  if (bytes.size() < kCatmHeaderSize) {
    return Status::DataLoss("truncated .catm file: " +
                            std::to_string(bytes.size()) +
                            " bytes is shorter than the header");
  }
  ByteReader hdr(data + sizeof(kCatmMagic),
                 kCatmHeaderSize - sizeof(kCatmMagic));
  std::uint32_t version = 0;
  std::uint32_t meta_length = 0;
  std::uint64_t meta_checksum = 0;
  std::uint64_t num_rows = 0;
  std::uint32_t num_columns = 0;
  std::int32_t pk_index = 0;
  hdr.ReadLeU32(version);
  hdr.ReadLeU32(meta_length);
  hdr.ReadLeU64(meta_checksum);
  hdr.ReadLeU64(num_rows);
  hdr.ReadLeU32(num_columns);
  hdr.ReadLeI32(pk_index);
  if (version != kCatmVersion) {
    return Status::InvalidArgument("unsupported .catm version " +
                                   std::to_string(version) +
                                   " (this build reads version " +
                                   std::to_string(kCatmVersion) + ")");
  }

  const std::uint64_t sections_start =
      static_cast<std::uint64_t>(kCatmHeaderSize) + meta_length;
  if (sections_start > bytes.size()) {
    return Status::DataLoss("truncated .catm file: meta block runs past EOF");
  }
  const std::uint64_t actual = CatmChecksum(
      data + kCatmChecksumStart,
      static_cast<std::size_t>(sections_start) - kCatmChecksumStart);
  if (actual != meta_checksum) {
    return Status::DataLoss(".catm meta checksum mismatch");
  }

  // The meta checksum verified; everything below is protected against
  // corruption-in-transit, so remaining failures are malformed files.
  if (num_columns == 0) {
    return Status::InvalidArgument(".catm file declares zero columns");
  }
  if (num_columns > meta_length / kCatmMetaPerColumn) {
    return Status::InvalidArgument(
        ".catm column count " + std::to_string(num_columns) +
        " exceeds what the meta block can describe");
  }
  // Every row costs >= 1 byte in every column section, so a row count
  // beyond the file size is bogus — reject before sizing any vector by it.
  if (num_rows > bytes.size()) {
    return Status::InvalidArgument(".catm row count " +
                                   std::to_string(num_rows) +
                                   " exceeds the file size");
  }

  ByteReader meta(data + kCatmHeaderSize, meta_length);
  std::vector<Column> columns(num_columns);
  for (std::size_t c = 0; c < num_columns; ++c) {
    std::uint16_t name_len = 0;
    const std::uint8_t* name = nullptr;
    std::uint8_t type = 0;
    std::uint8_t categorical = 0;
    if (!meta.ReadLeU16(name_len) || !meta.ReadBytes(name_len, name) ||
        !meta.ReadU8(type) || !meta.ReadU8(categorical)) {
      return Status::InvalidArgument(".catm meta block ends inside schema");
    }
    if (type > 2) {
      return Status::InvalidArgument(".catm column " + std::to_string(c) +
                                     " has unknown type byte " +
                                     std::to_string(type));
    }
    if (categorical > 1) {
      return Status::InvalidArgument(".catm column " + std::to_string(c) +
                                     " has a categorical flag that is not 0/1");
    }
    columns[c].name.assign(reinterpret_cast<const char*>(name), name_len);
    columns[c].type = static_cast<ColumnType>(type);
    columns[c].categorical = categorical == 1;
  }
  std::string pk_name;
  if (pk_index != -1) {
    if (pk_index < 0 || static_cast<std::uint32_t>(pk_index) >= num_columns) {
      return Status::InvalidArgument(".catm primary key index " +
                                     std::to_string(pk_index) +
                                     " is out of range");
    }
    pk_name = columns[static_cast<std::size_t>(pk_index)].name;
  }
  Result<Schema> schema_r = Schema::Create(std::move(columns), pk_name);
  if (!schema_r.ok()) {
    return Status::InvalidArgument(".catm schema is invalid: " +
                                   schema_r.status().message());
  }
  Schema schema = std::move(schema_r).value();

  std::vector<SectionEntry> table(num_columns);
  std::uint64_t expect_offset = sections_start;
  for (std::size_t c = 0; c < num_columns; ++c) {
    SectionEntry& s = table[c];
    if (!meta.ReadU8(s.kind) || !meta.ReadLeU64(s.offset) ||
        !meta.ReadLeU64(s.length) || !meta.ReadLeU64(s.checksum)) {
      return Status::InvalidArgument(
          ".catm meta block ends inside the section table");
    }
    if (s.kind != kCatmSectionDict && s.kind != kCatmSectionPlain) {
      return Status::InvalidArgument(".catm column " + std::to_string(c) +
                                     " has unknown section kind " +
                                     std::to_string(s.kind));
    }
    const bool want_dict = schema.column(c).categorical;
    if ((s.kind == kCatmSectionDict) != want_dict) {
      return Status::InvalidArgument(
          ".catm section kind disagrees with the schema for column '" +
          schema.column(c).name + "'");
    }
    if (s.offset != expect_offset) {
      return Status::InvalidArgument(
          ".catm sections are not contiguous at column " + std::to_string(c));
    }
    if (s.offset > bytes.size() || s.length > bytes.size() - s.offset) {
      return Status::DataLoss("truncated .catm file: section for column " +
                              std::to_string(c) + " runs past EOF");
    }
    expect_offset = s.offset + s.length;
  }
  if (!meta.AtEnd()) {
    return Status::InvalidArgument(".catm meta block has trailing bytes");
  }
  if (expect_offset != bytes.size()) {
    return Status::InvalidArgument(
        ".catm file has trailing bytes after the last section");
  }

  ColumnStore store(schema);
  for (std::size_t c = 0; c < num_columns; ++c) {
    const SectionEntry& s = table[c];
    const std::uint8_t* sp = data + s.offset;
    const auto slen = static_cast<std::size_t>(s.length);
    if (CatmChecksum(sp, slen) != s.checksum) {
      return Status::DataLoss(".catm section checksum mismatch in column '" +
                              schema.column(c).name + "'");
    }
    ByteReader r(sp, slen);
    const ColumnType type = schema.column(c).type;
    if (s.kind == kCatmSectionDict) {
      std::uint32_t dict_count = 0;
      if (!r.ReadLeU32(dict_count)) {
        return Status::InvalidArgument(".catm dict section for column '" +
                                       schema.column(c).name +
                                       "' is too short");
      }
      std::vector<std::uint64_t> offsets;
      if (!r.ReadLeU64Array(static_cast<std::size_t>(dict_count) + 1,
                            offsets)) {
        return Status::InvalidArgument(
            ".catm dict offsets run past the section end in column '" +
            schema.column(c).name + "'");
      }
      const std::uint64_t live_bytes = std::uint64_t{dict_count} * 8;
      const std::uint64_t code_bytes = num_rows * 4;
      if (live_bytes + code_bytes > r.remaining()) {
        return Status::InvalidArgument(
            ".catm dict section too short for live counts and codes in "
            "column '" +
            schema.column(c).name + "'");
      }
      const std::size_t blob_len =
          r.remaining() - static_cast<std::size_t>(live_bytes + code_bytes);
      if (offsets.front() != 0 || offsets.back() != blob_len) {
        return Status::InvalidArgument(
            ".catm dict blob length disagrees with its offsets in column '" +
            schema.column(c).name + "'");
      }
      // Full monotonicity must hold before any entry is decoded: together
      // with front()==0 and back()==blob_len it bounds every offset by
      // blob_len, so no ByteReader below can reach past the blob.
      for (std::size_t i = 0; i < dict_count; ++i) {
        if (offsets[i] > offsets[i + 1]) {
          return Status::InvalidArgument(
              ".catm dict offsets are not monotone in column '" +
              schema.column(c).name + "'");
        }
      }
      const std::uint8_t* blob = nullptr;
      r.ReadBytes(blob_len, blob);
      std::vector<Value> dict(dict_count);
      for (std::size_t i = 0; i < dict_count; ++i) {
        ByteReader vr(blob + offsets[i],
                      static_cast<std::size_t>(offsets[i + 1] - offsets[i]));
        CATMARK_RETURN_IF_ERROR(DecodeValue(vr, dict[i]));
        if (!vr.AtEnd()) {
          return Status::InvalidArgument(
              ".catm dict entry has trailing bytes in column '" +
              schema.column(c).name + "'");
        }
        if (dict[i].is_null()) {
          return Status::InvalidArgument(
              ".catm dictionary contains a NULL entry in column '" +
              schema.column(c).name + "'");
        }
        if (!dict[i].MatchesType(type)) {
          return Status::InvalidArgument(
              ".catm dict entry type disagrees with the schema in column '" +
              schema.column(c).name + "'");
        }
      }
      std::vector<std::int64_t> live;
      std::vector<std::int32_t> codes;
      r.ReadLeI64Array(dict_count, live);
      r.ReadLeI32Array(static_cast<std::size_t>(num_rows), codes);
      CATMARK_RETURN_IF_ERROR(
          store.InstallDictColumn(c, std::move(dict), std::move(live),
                                  std::move(codes)));
    } else {
      std::vector<Value> values;
      CATMARK_RETURN_IF_ERROR(DecodePlainSection(
          r, type, num_rows, schema.column(c).name, values));
      CATMARK_RETURN_IF_ERROR(store.InstallPlainColumn(c, std::move(values)));
    }
  }
  CATMARK_RETURN_IF_ERROR(
      store.FinalizeInstall(static_cast<std::size_t>(num_rows)));

  if (expected != nullptr && !(schema == *expected)) {
    return Status::InvalidArgument(
        ".catm schema does not match the expected schema; file has: " +
        schema.ToString());
  }
  return Relation(std::move(schema), std::move(store));
}

}  // namespace

Result<Relation> ReadCatmString(std::string_view bytes) {
  return ReadCatmImpl(bytes, nullptr);
}

Result<Relation> ReadCatmString(std::string_view bytes,
                                const Schema& expected) {
  return ReadCatmImpl(bytes, &expected);
}

Result<Relation> ReadCatmFile(const std::string& path) {
  CATMARK_ASSIGN_OR_RETURN(FileBytes bytes, FileBytes::Open(path));
  return ReadCatmString(bytes.view());
}

Result<Relation> ReadCatmFile(const std::string& path,
                              const Schema& expected) {
  CATMARK_ASSIGN_OR_RETURN(FileBytes bytes, FileBytes::Open(path));
  return ReadCatmString(bytes.view(), expected);
}

Result<Relation> LoadRelation(const std::string& path, const Schema& schema) {
  CATMARK_ASSIGN_OR_RETURN(FileBytes bytes, FileBytes::Open(path));
  if (LooksLikeCatm(bytes.view())) {
    return ReadCatmString(bytes.view(), schema);
  }
  // CSV ingest goes through the chunked parallel parser; its output is
  // byte-identical to the serial parser at every thread count.
  return ReadCsvStringParallel(bytes.view(), schema);
}

Status SaveRelation(const Relation& rel, const std::string& path) {
  constexpr std::string_view kExt = ".catm";
  if (path.size() >= kExt.size() &&
      std::string_view(path).substr(path.size() - kExt.size()) == kExt) {
    return WriteCatmFile(rel, path);
  }
  return WriteCsvFile(rel, path);
}

}  // namespace catmark
