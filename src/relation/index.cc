#include "relation/index.h"

#include <vector>

namespace catmark {

std::string PrimaryKeyIndex::KeyOf(const Value& v) {
  std::vector<std::uint8_t> bytes;
  v.SerializeForHash(bytes);
  return std::string(bytes.begin(), bytes.end());
}

Result<PrimaryKeyIndex> PrimaryKeyIndex::Build(const Relation& rel) {
  if (!rel.schema().has_primary_key()) {
    return Status::FailedPrecondition("schema declares no primary key");
  }
  PrimaryKeyIndex index;
  index.key_column_ =
      static_cast<std::size_t>(rel.schema().primary_key_index());
  index.rows_.reserve(rel.NumRows());
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    const Value& key = rel.Get(i, index.key_column_);
    if (key.is_null()) {
      return Status::FailedPrecondition("NULL primary key at row " +
                                        std::to_string(i));
    }
    if (!index.rows_.emplace(KeyOf(key), i).second) {
      return Status::FailedPrecondition("duplicate primary key '" +
                                        key.ToString() + "'");
    }
  }
  return index;
}

std::optional<std::size_t> PrimaryKeyIndex::Find(const Value& key) const {
  const auto it = rows_.find(KeyOf(key));
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

}  // namespace catmark
