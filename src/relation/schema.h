#ifndef CATMARK_RELATION_SCHEMA_H_
#define CATMARK_RELATION_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relation/value.h"

namespace catmark {

/// One attribute of the relation. `categorical` marks discrete attributes —
/// the watermark embedding channels of this library. The paper's schema is
/// (K, A, B) with K the primary key and A, B categorical.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kString;
  bool categorical = false;
};

/// Immutable description of a relation's attributes, with an optional
/// primary key designation.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema. `primary_key` may be empty (no PK — e.g. after a
  /// vertical partitioning attack dropped it); otherwise it must name one of
  /// the columns. Column names must be unique and non-empty.
  static Result<Schema> Create(std::vector<Column> columns,
                               std::string_view primary_key = "");

  std::size_t num_columns() const { return columns_.size(); }
  const Column& column(std::size_t i) const;
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of `name`, or -1 when absent.
  int ColumnIndex(std::string_view name) const;

  /// Index of `name`, or NotFound.
  Result<std::size_t> ColumnIndexOrError(std::string_view name) const;

  /// Index of the primary key column, or -1 when the schema has none.
  int primary_key_index() const { return primary_key_index_; }
  bool has_primary_key() const { return primary_key_index_ >= 0; }

  /// Indices of all categorical columns.
  std::vector<std::size_t> CategoricalColumns() const;

  /// "name TYPE [CATEGORICAL] [PRIMARY KEY], ..." — for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Column> columns_;
  int primary_key_index_ = -1;
};

}  // namespace catmark

#endif  // CATMARK_RELATION_SCHEMA_H_
