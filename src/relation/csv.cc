#include "relation/csv.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace catmark {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void AppendField(std::string_view field, std::string& out) {
  if (!NeedsQuoting(field)) {
    out.append(field);
    return;
  }
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

/// Splits one CSV record honoring quotes. `pos` advances past the record's
/// terminating newline. Returns false at end of input.
bool NextRecord(std::string_view text, std::size_t& pos,
                std::vector<std::string>& fields, Status& status) {
  fields.clear();
  if (pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool any = false;
  while (pos < text.size()) {
    const char c = text[pos];
    any = true;
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field.push_back('"');
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field.push_back(c);
        ++pos;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++pos;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++pos;
    } else if (c == '\n' || c == '\r') {
      // Consume \r\n or \n.
      ++pos;
      if (c == '\r' && pos < text.size() && text[pos] == '\n') ++pos;
      break;
    } else {
      field.push_back(c);
      ++pos;
    }
  }
  if (in_quotes) {
    // Input ended inside an open quote: the record is structurally invalid,
    // not an I/O failure — treating it as a complete record would silently
    // swallow a truncated file.
    status = Status::InvalidArgument("CSV: unterminated quoted field");
    return false;
  }
  if (!any) return false;
  fields.push_back(std::move(field));
  return true;
}

}  // namespace

std::string WriteCsvString(const Relation& rel) {
  std::string out;
  const Schema& schema = rel.schema();
  const std::size_t num_cols = schema.num_columns();
  for (std::size_t c = 0; c < num_cols; ++c) {
    if (c > 0) out.push_back(',');
    AppendField(schema.column(c).name, out);
  }
  out.push_back('\n');

  // Dictionary columns render (and quote-escape) each distinct value once;
  // rows then copy the memoized text by code. Column encodings are resolved
  // once here, not per cell in the row loop.
  std::vector<std::vector<std::string>> rendered(num_cols);
  std::vector<const std::vector<std::int32_t>*> codes(num_cols, nullptr);
  std::vector<const std::vector<Value>*> plain(num_cols, nullptr);
  for (std::size_t c = 0; c < num_cols; ++c) {
    if (!rel.store().IsDictColumn(c)) {
      plain[c] = &rel.store().PlainValues(c);
      continue;
    }
    codes[c] = &rel.store().Codes(c);
    const std::vector<Value>& dict = rel.store().Dict(c);
    rendered[c].reserve(dict.size());
    for (const Value& v : dict) {
      std::string field;
      AppendField(v.ToString(), field);
      rendered[c].push_back(std::move(field));
    }
  }

  for (std::size_t r = 0; r < rel.NumRows(); ++r) {
    for (std::size_t c = 0; c < num_cols; ++c) {
      if (c > 0) out.push_back(',');
      if (codes[c] != nullptr) {
        const std::int32_t code = (*codes[c])[r];
        if (code >= 0) out.append(rendered[c][static_cast<std::size_t>(code)]);
        // NULL renders as the empty field.
      } else {
        AppendField((*plain[c])[r].ToString(), out);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Relation& rel, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open '" + path + "' for writing");
  const std::string data = WriteCsvString(rel);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<Relation> ReadCsvString(std::string_view text, const Schema& schema) {
  std::size_t pos = 0;
  std::vector<std::string> fields;
  Status status = Status::OK();

  if (!NextRecord(text, pos, fields, status)) {
    if (!status.ok()) return status;
    return Status::IoError("CSV: missing header row");
  }
  if (fields.size() != schema.num_columns()) {
    return Status::IoError("CSV: header arity mismatch");
  }
  for (std::size_t c = 0; c < fields.size(); ++c) {
    if (fields[c] != schema.column(c).name) {
      return Status::IoError("CSV: header column '" + fields[c] +
                             "' != schema column '" + schema.column(c).name +
                             "'");
    }
  }

  Relation rel(schema);
  std::size_t line = 1;
  while (NextRecord(text, pos, fields, status)) {
    ++line;
    if (fields.size() != schema.num_columns()) {
      return Status::IoError("CSV line " + std::to_string(line) +
                             ": arity mismatch");
    }
    Row row;
    row.reserve(fields.size());
    for (std::size_t c = 0; c < fields.size(); ++c) {
      Result<Value> v = Value::Parse(fields[c], schema.column(c).type);
      if (!v.ok()) {
        return Status::IoError("CSV line " + std::to_string(line) + ": " +
                               v.status().message());
      }
      row.push_back(std::move(v).value());
    }
    CATMARK_RETURN_IF_ERROR(rel.AppendRow(std::move(row)));
  }
  if (!status.ok()) return status;
  return rel;
}

Result<Relation> ReadCsvFile(const std::string& path, const Schema& schema) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream ss;
  ss << f.rdbuf();
  return ReadCsvString(ss.str(), schema);
}

}  // namespace catmark
