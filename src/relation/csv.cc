#include "relation/csv.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/str_util.h"
#include "relation/catm_io.h"
#include "relation/column_store.h"

namespace catmark {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void AppendField(std::string_view field, std::string& out) {
  if (!NeedsQuoting(field)) {
    out.append(field);
    return;
  }
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

/// Reusable record buffer: the field strings persist across records so the
/// row loop appends into already-sized heap buffers instead of allocating
/// `arity` fresh strings per record. `count` is the arity of the current
/// record; fields[i] for i < count are its values.
struct RecordScratch {
  std::vector<std::string> fields;
  std::size_t count = 0;

  std::string& StartField() {
    if (count == fields.size()) fields.emplace_back();
    std::string& f = fields[count++];
    f.clear();
    return f;
  }
};

/// Splits one CSV record honoring quotes into `rec` (in place). `pos`
/// advances past the record's terminating newline. Returns false at end of
/// input.
bool NextRecord(std::string_view text, std::size_t& pos, RecordScratch& rec,
                Status& status) {
  rec.count = 0;
  if (pos >= text.size()) return false;
  bool in_quotes = false;
  std::string* field = &rec.StartField();
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field->push_back('"');
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field->push_back(c);
        ++pos;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++pos;
    } else if (c == ',') {
      field = &rec.StartField();
      ++pos;
    } else if (c == '\n' || c == '\r') {
      // Consume \r\n or \n.
      ++pos;
      if (c == '\r' && pos < text.size() && text[pos] == '\n') ++pos;
      break;
    } else {
      field->push_back(c);
      ++pos;
    }
  }
  if (in_quotes) {
    // Input ended inside an open quote: the record is structurally invalid,
    // not an I/O failure — treating it as a complete record would silently
    // swallow a truncated file.
    status = Status::InvalidArgument("CSV: unterminated quoted field");
    return false;
  }
  return true;
}

/// Parses and verifies the header row; `pos` advances past it.
Status ReadHeader(std::string_view text, const Schema& schema,
                  std::size_t& pos, RecordScratch& rec) {
  Status status = Status::OK();
  if (!NextRecord(text, pos, rec, status)) {
    if (!status.ok()) return status;
    return Status::IoError("CSV: missing header row");
  }
  if (rec.count != schema.num_columns()) {
    return Status::IoError("CSV: header arity mismatch");
  }
  for (std::size_t c = 0; c < rec.count; ++c) {
    if (rec.fields[c] != schema.column(c).name) {
      return Status::IoError("CSV: header column '" + rec.fields[c] +
                             "' != schema column '" + schema.column(c).name +
                             "'");
    }
  }
  return Status::OK();
}

/// Parses the data records of `chunk` into `rel`. `first_line` is the
/// 1-based line number of the record *before* the chunk (the header, for a
/// whole-input parse), used in error messages.
Status ParseRecords(std::string_view chunk, const Schema& schema,
                    std::size_t first_line, Relation& rel) {
  const std::size_t num_cols = schema.num_columns();
  RecordScratch rec;
  rec.fields.reserve(num_cols);
  // Slight overcount when quoted fields contain newlines — fine for a
  // capacity hint.
  rel.Reserve(rel.NumRows() + static_cast<std::size_t>(std::count(
                                  chunk.begin(), chunk.end(), '\n')));
  std::size_t pos = 0;
  std::size_t line = first_line;
  Status status = Status::OK();
  while (NextRecord(chunk, pos, rec, status)) {
    ++line;
    if (rec.count != num_cols) {
      return Status::IoError("CSV line " + std::to_string(line) +
                             ": arity mismatch");
    }
    Row row;
    row.reserve(num_cols);
    for (std::size_t c = 0; c < num_cols; ++c) {
      Result<Value> v = Value::Parse(rec.fields[c], schema.column(c).type);
      if (!v.ok()) {
        return Status::IoError("CSV line " + std::to_string(line) + ": " +
                               v.status().message());
      }
      row.push_back(std::move(v).value());
    }
    CATMARK_RETURN_IF_ERROR(rel.AppendRow(std::move(row)));
  }
  return status;
}

}  // namespace

std::string WriteCsvString(const Relation& rel) {
  std::string out;
  const Schema& schema = rel.schema();
  const std::size_t num_cols = schema.num_columns();
  for (std::size_t c = 0; c < num_cols; ++c) {
    if (c > 0) out.push_back(',');
    AppendField(schema.column(c).name, out);
  }
  out.push_back('\n');

  // Dictionary columns render (and quote-escape) each distinct value once;
  // rows then copy the memoized text by code. Column encodings are resolved
  // once here, not per cell in the row loop.
  std::vector<std::vector<std::string>> rendered(num_cols);
  std::vector<const std::vector<std::int32_t>*> codes(num_cols, nullptr);
  std::vector<const std::vector<Value>*> plain(num_cols, nullptr);
  for (std::size_t c = 0; c < num_cols; ++c) {
    if (!rel.store().IsDictColumn(c)) {
      plain[c] = &rel.store().PlainValues(c);
      continue;
    }
    codes[c] = &rel.store().Codes(c);
    const std::vector<Value>& dict = rel.store().Dict(c);
    rendered[c].reserve(dict.size());
    for (const Value& v : dict) {
      std::string field;
      AppendField(v.ToString(), field);
      rendered[c].push_back(std::move(field));
    }
  }

  for (std::size_t r = 0; r < rel.NumRows(); ++r) {
    for (std::size_t c = 0; c < num_cols; ++c) {
      if (c > 0) out.push_back(',');
      if (codes[c] != nullptr) {
        const std::int32_t code = (*codes[c])[r];
        if (code >= 0) out.append(rendered[c][static_cast<std::size_t>(code)]);
        // NULL renders as the empty field.
      } else {
        AppendField((*plain[c])[r].ToString(), out);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Relation& rel, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open '" + path + "' for writing");
  const std::string data = WriteCsvString(rel);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<Relation> ReadCsvString(std::string_view text, const Schema& schema) {
  std::size_t pos = 0;
  RecordScratch rec;
  rec.fields.reserve(schema.num_columns());
  CATMARK_RETURN_IF_ERROR(ReadHeader(text, schema, pos, rec));
  Relation rel(schema);
  CATMARK_RETURN_IF_ERROR(ParseRecords(text.substr(pos), schema, 1, rel));
  return rel;
}

Result<Relation> ReadCsvFile(const std::string& path, const Schema& schema) {
  CATMARK_ASSIGN_OR_RETURN(FileBytes bytes, FileBytes::Open(path));
  return ReadCsvString(bytes.view(), schema);
}

namespace {

/// Minimum bytes of input per chunk before auto mode adds another worker —
/// below this the spawn/merge overhead outweighs the parse.
constexpr std::size_t kMinParallelChunk = 64 * 1024;

/// Chunk start offsets into `text`: `shards + 1` offsets where chunk s
/// covers [starts[s], starts[s + 1]), every boundary on a record start. The
/// scan toggles quote state on every '"' — an escaped "" is two toggles, a
/// net no-op with no newline between them — so its notion of "unquoted
/// newline" agrees exactly with NextRecord's.
std::vector<std::size_t> ChunkStarts(std::string_view text,
                                     std::size_t data_begin,
                                     std::size_t shards) {
  std::vector<std::size_t> starts(shards + 1, text.size());
  starts[0] = data_begin;
  const std::size_t data_size = text.size() - data_begin;
  std::size_t next = 1;
  bool in_quotes = false;
  std::size_t pos = data_begin;
  while (pos < text.size() && next < shards) {
    const char c = text[pos];
    if (c == '"') {
      in_quotes = !in_quotes;
      ++pos;
      continue;
    }
    if (!in_quotes && (c == '\n' || c == '\r')) {
      ++pos;
      if (c == '\r' && pos < text.size() && text[pos] == '\n') ++pos;
      while (next < shards &&
             pos >= data_begin + (next * data_size) / shards) {
        starts[next++] = pos;
      }
      continue;
    }
    ++pos;
  }
  // Unassigned boundaries (tiny input, or a run-away quoted field) collapse
  // to text.size(): those chunks parse as empty.
  return starts;
}

}  // namespace

Result<Relation> ReadCsvStringParallel(std::string_view text,
                                       const Schema& schema,
                                       std::size_t num_threads) {
  std::size_t pos = 0;
  RecordScratch rec;
  rec.fields.reserve(schema.num_columns());
  CATMARK_RETURN_IF_ERROR(ReadHeader(text, schema, pos, rec));
  const std::size_t data_size = text.size() - pos;
  // An explicit thread count is honored exactly (tests force many chunks on
  // tiny inputs); auto mode adds workers only when each gets a real chunk.
  const std::size_t shards =
      num_threads != 0
          ? num_threads
          : EffectiveThreadCount(0, data_size / kMinParallelChunk);
  if (shards <= 1) {
    Relation rel(schema);
    CATMARK_RETURN_IF_ERROR(ParseRecords(text.substr(pos), schema, 1, rel));
    return rel;
  }

  const std::vector<std::size_t> starts = ChunkStarts(text, pos, shards);
  std::vector<Relation> parts(shards);
  std::vector<Status> errors(shards);
  ParallelFor(shards, shards,
              [&](std::size_t shard, std::size_t, std::size_t) {
                Relation rel(schema);
                errors[shard] = ParseRecords(
                    text.substr(starts[shard],
                                starts[shard + 1] - starts[shard]),
                    schema, 0, rel);
                parts[shard] = std::move(rel);
              });
  for (const Status& s : errors) {
    if (!s.ok()) {
      // Canonical error path: shard-local line numbers are meaningless, so
      // re-parse serially and report exactly what the serial parser says.
      return ReadCsvString(text, schema);
    }
  }

  // Serial deterministic merge: walking shards in input order and interning
  // each shard dictionary in its own order assigns global codes in global
  // first-occurrence order — the serial parser's assignment.
  const std::size_t num_cols = schema.num_columns();
  std::size_t total = 0;
  for (const Relation& part : parts) total += part.NumRows();
  ColumnStore store(schema);
  std::vector<std::uint8_t> scratch;
  for (std::size_t c = 0; c < num_cols; ++c) {
    if (schema.column(c).categorical) {
      std::vector<Value> dict;
      std::vector<std::int64_t> live;
      std::vector<std::int32_t> codes;
      codes.reserve(total);
      std::unordered_map<std::string, std::int32_t, TransparentStringHash,
                         std::equal_to<>>
          code_of;
      for (const Relation& part : parts) {
        const std::vector<Value>& pdict = part.store().Dict(c);
        const std::vector<std::int64_t>& plive = part.store().DictLiveCounts(c);
        std::vector<std::int32_t> remap(pdict.size());
        for (std::size_t j = 0; j < pdict.size(); ++j) {
          const std::string_view key = pdict[j].SerializeKeyInto(scratch);
          const auto it = code_of.find(key);
          std::int32_t g;
          if (it == code_of.end()) {
            g = static_cast<std::int32_t>(dict.size());
            code_of.emplace(std::string(key), g);
            dict.push_back(pdict[j]);
            live.push_back(0);
          } else {
            g = it->second;
          }
          remap[j] = g;
          live[static_cast<std::size_t>(g)] += plive[j];
        }
        for (const std::int32_t code : part.store().Codes(c)) {
          codes.push_back(code < 0 ? ColumnStore::kNullCode
                                   : remap[static_cast<std::size_t>(code)]);
        }
      }
      CATMARK_RETURN_IF_ERROR(store.InstallDictColumn(
          c, std::move(dict), std::move(live), std::move(codes)));
    } else {
      std::vector<Value> values;
      values.reserve(total);
      for (Relation& part : parts) {
        std::vector<Value> pv = part.mutable_store().TakePlainColumn(c);
        values.insert(values.end(), std::make_move_iterator(pv.begin()),
                      std::make_move_iterator(pv.end()));
      }
      CATMARK_RETURN_IF_ERROR(store.InstallPlainColumn(c, std::move(values)));
    }
  }
  CATMARK_RETURN_IF_ERROR(store.FinalizeInstall(total));
  return Relation(schema, std::move(store));
}

Result<Relation> ReadCsvFileParallel(const std::string& path,
                                     const Schema& schema,
                                     std::size_t num_threads) {
  CATMARK_ASSIGN_OR_RETURN(FileBytes bytes, FileBytes::Open(path));
  return ReadCsvStringParallel(bytes.view(), schema, num_threads);
}

}  // namespace catmark
