// Multiple attribute embeddings (Section 3.3): mark every attribute pair of
// a sales relation so the watermark survives vertical partitioning — even
// when the primary key is projected away.

#include <cstdio>

#include "core/catmark.h"
#include "exp/harness.h"

using namespace catmark;

int main() {
  SalesGenConfig gen;
  gen.num_tuples = 20000;
  gen.num_items = 300;
  gen.seed = 7;
  Relation sales = GenerateItemScan(gen);

  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("multi-pass");
  WatermarkParams params;
  params.e = 25;
  const BitVector wm = MakeWatermark(10, 7);

  // Plan the pair closure: PK-anchored passes first, then categorical
  // pairs directed at the less-modified attribute.
  const MultiAttributeEmbedder multi(keys, params);
  Result<std::vector<AttributePair>> pairs = PlanPairClosure(sales);
  if (!pairs.ok()) {
    std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("pair closure (%zu passes):\n", pairs->size());
  for (const AttributePair& p : *pairs) {
    std::printf("  mark(%s, %s)\n", p.key_attr.c_str(),
                p.target_attr.c_str());
  }

  Result<MultiEmbedReport> report = multi.EmbedAll(sales, *pairs, wm);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nembedded through %zu passes: %zu total alterations, %zu "
      "interference skips avoided by the ledger\n",
      report->passes.size(), report->total_altered,
      report->total_skipped_by_ledger);
  const std::size_t payload = report->passes[0].report.payload_length;

  // Mallory vertically partitions away the primary key (A5).
  const struct {
    const char* label;
    std::vector<std::string> keep;
  } partitions[] = {
      {"full schema", {"Visit_Nbr", "Item_Nbr", "Store_Nbr", "Dept_Desc",
                       "Unit_Qty", "Sale_Amount"}},
      {"no primary key", {"Item_Nbr", "Store_Nbr", "Dept_Desc"}},
      {"two columns only", {"Item_Nbr", "Dept_Desc"}},
  };

  bool all_detected = true;
  for (const auto& partition : partitions) {
    const Relation part =
        VerticalPartitionAttack(sales, partition.keep).value();
    const auto detections =
        multi.DetectAll(part, *pairs, wm.size(), payload).value();
    if (detections.empty()) {
      std::printf("\n[%s] no witness survived!\n", partition.label);
      all_detected = false;
      continue;
    }
    const BitVector combined =
        MultiAttributeEmbedder::CombineDetections(detections, wm.size());
    const MatchStats stats = MatchWatermark(wm, combined);
    std::printf("\n[%s] %zu witnesses testify, combined match %zu/%zu\n",
                partition.label, detections.size(), stats.matched_bits,
                stats.total_bits);
    for (const PairDetection& d : detections) {
      const MatchStats per = MatchWatermark(wm, d.detection.wm);
      std::printf("    (%s,%s): %zu/%zu bits\n", d.pair.key_attr.c_str(),
                  d.pair.target_attr.c_str(), per.matched_bits,
                  per.total_bits);
    }
    if (stats.match_fraction < 0.8) all_detected = false;
  }
  return all_detected ? 0 : 1;
}
