// Quickstart: watermark a categorical attribute and detect the mark blindly.
//
//   $ ./quickstart
//
// Walks the minimal owner workflow: build a relation, embed a 10-bit mark
// keyed by two secret keys, then recover it from the (re-sorted) data alone.

#include <cstdio>

#include "core/catmark.h"

using namespace catmark;

int main() {
  // 1. Some data: (K INTEGER PRIMARY KEY, A STRING CATEGORICAL) — think
  //    flight legs keyed by booking id, A = departure city.
  KeyedCategoricalConfig gen;
  gen.num_tuples = 10000;
  gen.domain_size = 300;
  gen.seed = 1;
  Relation rel = GenerateKeyedCategorical(gen);
  std::printf("data: %zu tuples, schema: %s\n", rel.NumRows(),
              rel.schema().ToString().c_str());

  // 2. The owner's secrets and the mark to embed.
  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("my-secret");
  const BitVector wm = BitVector::FromString("1011001110").value();
  WatermarkParams params;
  params.e = 50;  // mark roughly one tuple in 50

  // 3. Embed.
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const Embedder embedder(keys, params);
  Result<EmbedReport> embed = embedder.Embed(rel, options, wm);
  if (!embed.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 embed.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "embedded %zu-bit mark: %zu fit tuples, %zu altered (%.2f%% of data), "
      "payload %zu bits\n",
      wm.size(), embed->fit_tuples, embed->altered_tuples,
      100.0 * embed->alteration_fraction, embed->payload_length);

  // 4. Someone re-sorts and redistributes the data...
  const Relation redistributed = ResortAttack(rel, 99);

  // 5. ...and the owner detects blindly: only keys + e + payload length,
  //    no original data.
  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = embed->payload_length;
  Result<DetectionResult> detection =
      detector.Detect(redistributed, detect_options, wm.size());
  if (!detection.ok()) {
    std::fprintf(stderr, "detect failed: %s\n",
                 detection.status().ToString().c_str());
    return 1;
  }

  const MatchStats stats = MatchWatermark(wm, detection->wm);
  std::printf("embedded : %s\n", wm.ToString().c_str());
  std::printf("detected : %s\n", detection->wm.ToString().c_str());
  std::printf("match    : %zu/%zu bits, false-claim probability %.2e\n",
              stats.matched_bits, stats.total_bits,
              stats.false_match_probability);
  return stats.matched_bits == stats.total_bits ? 0 : 1;
}
