// Streaming watermark service: one embedded relation fanned out into
// per-region shards, each grown concurrently through its own StreamSession
// while every insert keeps carrying the owner's mark. Shows the
// SessionSpec lifecycle (embed report -> spec -> sessions), batch inserts
// through WatermarkService::ExecuteBatches, and dispute-time detection on
// a shard that has more than doubled since embedding.

#include <cstdio>
#include <random>
#include <span>
#include <vector>

#include "core/catmark.h"
#include "exp/harness.h"

using namespace catmark;

int main() {
  // Day zero: Alice marks her catalogue before licensing it out.
  KeyedCategoricalConfig gen;
  gen.num_tuples = 40000;
  gen.domain_size = 120;
  gen.seed = 7;
  Relation catalogue = GenerateKeyedCategorical(gen);

  const WatermarkKeySet keys =
      WatermarkKeySet::FromPassphrase("alice's licensing key");
  WatermarkParams params;
  params.e = 50;
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const BitVector wm = MakeWatermark(24, /*seed=*/3);

  Result<EmbedReport> report =
      Embedder(keys, params).Embed(catalogue, options, wm);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("embedded %zu-bit mark: %zu fit, %zu altered\n", wm.size(),
              report->fit_tuples, report->altered_tuples);

  // The spec pins everything inserts must agree on with the embedding —
  // keys, e, PRF backend, payload length, domain — so a session opened
  // months later in another process cannot drift from the detector.
  const SessionSpec spec =
      SessionSpec::FromEmbedReport(keys, params, options, *report, wm);

  // Three regional shards, each its own session + relation inside one
  // multiplexing service. ServiceOptions{0} = auto thread count.
  WatermarkService service(ServiceOptions{});
  std::vector<std::size_t> shards;
  for (int region = 0; region < 3; ++region) {
    Result<std::size_t> id = service.Open(spec, catalogue);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
    shards.push_back(*id);
  }

  // A day of feed traffic: batches for every region, submitted together.
  // Batches for distinct sessions run in parallel; batches for the same
  // session keep their submission order.
  // New rows carry categories from the catalogue's own domain (the spec
  // pins it). An out-of-domain category would still be appended — but it
  // would also enlarge a blindly re-derived domain at dispute time, which
  // is why detection below reuses the embed report's domain instead.
  std::mt19937_64 rng(11);
  std::vector<WatermarkService::SessionBatch> day;
  for (std::size_t b = 0; b < 60; ++b) {
    WatermarkService::SessionBatch batch;
    batch.session_id = shards[b % shards.size()];
    for (std::size_t i = 0; i < 1024; ++i) {
      batch.rows.push_back(
          {Value(static_cast<std::int64_t>(7000000 + rng() % 200000)),
           spec.domain.value(rng() % spec.domain.size())});
    }
    day.push_back(std::move(batch));
  }
  const std::vector<Result<BatchReport>> results = service.ExecuteBatches(
      std::span<WatermarkService::SessionBatch>(day));
  std::size_t inserted = 0, fit = 0;
  for (const Result<BatchReport>& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    inserted += r->rows;
    fit += r->fit_rows;
  }
  std::printf("streamed %zu inserts across %zu shards (%zu carried a bit)\n",
              inserted, shards.size(), fit);

  // Dispute time: one shard leaks. Close it out and run detection — the
  // inserts were marked on the fly, so the grown shard still answers.
  Result<Relation> leaked = service.Close(shards[1]);
  if (!leaked.ok()) {
    std::fprintf(stderr, "%s\n", leaked.status().ToString().c_str());
    return 1;
  }

  DetectOptions detect;
  detect.key_attr = "K";
  detect.target_attr = "A";
  detect.payload_length = report->payload_length;
  detect.domain = report->domain;  // pinned, like a certificate records it
  Result<DetectionResult> detection =
      Detector(keys, params).Detect(*leaked, detect, wm.size());
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  const OwnershipDecision decision =
      DecideOwnership(wm, detection->wm, /*significance=*/1e-3);
  std::printf("leaked shard: %zu tuples (was %zu at embed time)\n",
              leaked->NumRows(), gen.num_tuples);
  std::printf("matched %zu/%zu bits, p-value %.3e -> ownership %s\n",
              decision.matched_bits, wm.size(), decision.p_value,
              decision.owned ? "SUPPORTED" : "NOT SUPPORTED");
  return decision.owned ? 0 : 1;
}
