// Bijective attribute re-mapping (Section 4.5): Mallory renames every
// category through a secret bijection (and plans to sell a "reverse mapper"
// on the side). The owner inverts the mapping by frequency-rank matching
// and recovers the watermark.

#include <cstdio>

#include "core/catmark.h"
#include "exp/harness.h"
#include "relation/histogram.h"

using namespace catmark;

int main() {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 40000;
  gen.domain_size = 50;
  gen.zipf_s = 1.1;  // skewed occurrence frequencies (airport/product codes)
  gen.seed = 11;
  Relation rel = GenerateKeyedCategorical(gen);

  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("remapper");
  WatermarkParams params;
  params.e = 40;
  const BitVector wm = MakeWatermark(10, 11);

  const CategoricalDomain domain =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.domain = domain;
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, options, wm).value();
  std::printf("embedded 10-bit mark into %zu tuples (e=%llu)\n",
              report.altered_tuples,
              static_cast<unsigned long long>(params.e));

  // Owner-side metadata: the published frequency table (nA doubles).
  const std::vector<double> published =
      FrequencyHistogram::Compute(rel, 1, domain).value().Frequencies();

  // --- Mallory remaps ------------------------------------------------------
  const RemapAttackResult attack = BijectiveRemapAttack(rel, "A", 13).value();
  std::printf("\nMallory remapped all %zu category labels, e.g. %s -> %s\n",
              domain.size(), domain.value(0).ToString().c_str(),
              attack.ground_truth.forward.at(domain.value(0).ToString())
                  .c_str());

  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;

  // Without recovery the decoder cannot even place the values.
  const DetectionResult blind =
      detector.Detect(attack.relation, detect_options, wm.size()).value();
  std::printf("\nwithout recovery: %zu usable votes -> match %zu/%zu\n",
              blind.usable_votes,
              MatchWatermark(wm, blind.wm).matched_bits, wm.size());

  // --- Section 4.5 recovery ------------------------------------------------
  const RemapRecovery recovery =
      RecoverBijectiveMapping(attack.relation, "A", domain, published)
          .value();
  std::printf(
      "recovered mapping by frequency-rank matching "
      "(mean frequency error %.4f)\n",
      recovery.mean_frequency_error);

  const Relation restored =
      ApplyRecoveredMapping(attack.relation, "A", recovery, domain).value();
  const DetectionResult after =
      detector.Detect(restored, detect_options, wm.size()).value();
  const MatchStats stats = MatchWatermark(wm, after.wm);
  std::printf("with recovery   : %zu usable votes -> match %zu/%zu "
              "(false-claim probability %.2e)\n",
              after.usable_votes, stats.matched_bits, stats.total_bits,
              stats.false_match_probability);
  return stats.match_fraction >= 0.9 ? 0 : 1;
}
