// Ownership dispute resolution: Mallory additively re-marks the owner's
// published data (the Section 6 "additive watermark attack") and both
// parties walk into court detecting their own marks. The watermark
// certificate — published/timestamped at embedding time with a SHA-256 key
// commitment — plus the "mark in the adversary's original" test settles it.

#include <cstdio>

#include "core/catmark.h"
#include "exp/harness.h"
#include "relation/histogram.h"

using namespace catmark;

int main() {
  // --- Day 0: the owner marks and publishes --------------------------------
  KeyedCategoricalConfig gen;
  gen.num_tuples = 15000;
  gen.domain_size = 120;
  gen.seed = 77;
  Relation original = GenerateKeyedCategorical(gen);  // owner-private

  const WatermarkKeySet owner_keys =
      WatermarkKeySet::FromPassphrase("owner-vault");
  WatermarkParams params;
  params.e = 30;
  const BitVector owner_wm = MakeWatermark(12, 77);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";

  Relation published = original;
  const EmbedReport report =
      Embedder(owner_keys, params).Embed(published, options, owner_wm).value();

  // The certificate is deposited with a notary/timestamping service NOW.
  const CategoricalDomain domain = report.domain;
  const auto freqs =
      FrequencyHistogram::Compute(published, 1, domain).value().Frequencies();
  const WatermarkCertificate certificate = WatermarkCertificate::Create(
      owner_keys, params, options, report, owner_wm, freqs,
      "sales feed 2004-03");
  std::printf("owner deposits certificate (key commitment %s...)\n",
              certificate.key_commitment_hex.substr(0, 16).c_str());

  // --- Mallory additively re-marks and claims ownership --------------------
  const AdditiveAttackResult attack =
      AdditiveWatermarkAttack(published, "K", "A", params, 12, 666).value();
  std::printf(
      "\nMallory re-marked the data with his own keys (%zu tuples altered) "
      "and registered his own mark\n",
      attack.mallory_report.altered_tuples);

  // --- Court day ------------------------------------------------------------
  const auto detect = [&](const Relation& data, const WatermarkKeySet& keys,
                          const BitVector& wm, std::size_t payload) {
    Detector detector(keys, params);
    DetectOptions d;
    d.key_attr = "K";
    d.target_attr = "A";
    d.payload_length = payload;
    return DecideOwnership(wm, detector.Detect(data, d, wm.size())->wm);
  };

  // 1. Both parties detect their marks in the disputed copy.
  const OwnershipDecision owner_claim = detect(
      attack.relation, owner_keys, owner_wm, certificate.payload_length);
  const OwnershipDecision mallory_claim =
      detect(attack.relation, attack.mallory_keys, attack.mallory_wm,
             attack.mallory_report.payload_length);
  std::printf("\nin the disputed copy: owner mark %s (p=%.1e), "
              "Mallory mark %s (p=%.1e)\n",
              owner_claim.owned ? "detected" : "absent", owner_claim.p_value,
              mallory_claim.owned ? "detected" : "absent",
              mallory_claim.p_value);

  // 2. The certificate's key commitment proves which keys existed at the
  //    deposit timestamp.
  std::printf("\nkey commitment check: owner keys %s, Mallory keys %s\n",
              certificate.VerifyKeys(owner_keys) ? "MATCH" : "no match",
              certificate.VerifyKeys(attack.mallory_keys) ? "MATCH"
                                                          : "no match");

  // 3. The decisive asymmetry: the owner's mark lives in the data Mallory
  //    calls his original; Mallory's mark is absent from the owner's true
  //    original (which only the owner can produce).
  const OwnershipDecision owner_in_mallorys_original = detect(
      published, owner_keys, owner_wm, certificate.payload_length);
  const OwnershipDecision mallory_in_owners_original =
      detect(original, attack.mallory_keys, attack.mallory_wm,
             attack.mallory_report.payload_length);
  std::printf(
      "asymmetry test: owner's mark in Mallory's 'original': %s; "
      "Mallory's mark in owner's original: %s\n",
      owner_in_mallorys_original.owned ? "DETECTED" : "absent",
      mallory_in_owners_original.owned ? "detected" : "ABSENT");

  const bool verdict_for_owner =
      owner_claim.owned && certificate.VerifyKeys(owner_keys) &&
      owner_in_mallorys_original.owned && !mallory_in_owners_original.owned;
  std::printf("\nverdict: data belongs to the %s\n",
              verdict_for_owner ? "OWNER" : "(unresolved)");
  return verdict_for_owner ? 0 : 1;
}
