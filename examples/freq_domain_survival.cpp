// Frequency-domain encoding (Section 4.2): surviving the extreme vertical
// partitioning attack in which Mallory keeps a single categorical attribute
// — no key, no other columns. The mark lives in the occurrence-frequency
// transform and is invariant to subset selection.

#include <cstdio>

#include "core/catmark.h"
#include "exp/harness.h"

using namespace catmark;

int main() {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 60000;
  gen.domain_size = 80;
  gen.zipf_s = 1.0;
  gen.seed = 21;
  Relation rel = GenerateKeyedCategorical(gen);

  FreqMarkParams params;
  params.quantization_step = 0.02;
  const FrequencyMarker marker(SecretKey::FromPassphrase("freq-key"), params);
  const BitVector wm = MakeWatermark(8, 21);

  Result<FreqEmbedReport> embed = marker.Embed(rel, "A", wm);
  if (!embed.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 embed.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "embedded %zu-bit mark in the frequency histogram: %zu tuples moved "
      "(%.2f%% of data), min cell margin %.4f\n",
      wm.size(), embed->tuples_moved,
      100.0 * static_cast<double>(embed->tuples_moved) /
          static_cast<double>(rel.NumRows()),
      embed->min_cell_margin);

  // Mallory keeps ONLY column A and half the tuples.
  Relation stolen = VerticalPartitionAttack(rel, {"A"}).value();
  stolen = HorizontalPartitionAttack(stolen, 0.5, 22).value();
  std::printf(
      "\nMallory kept a single column and 50%% of the tuples (%zu rows)\n",
      stolen.NumRows());

  const FreqDetectReport detect =
      marker.Detect(stolen, "A", wm.size()).value();
  const MatchStats stats = MatchWatermark(wm, detect.wm);
  std::printf("detected : %s\nembedded : %s\nmatch    : %zu/%zu bits\n",
              detect.wm.ToString().c_str(), wm.ToString().c_str(),
              stats.matched_bits, stats.total_bits);

  // A party with the wrong key reads noise.
  const FrequencyMarker impostor(SecretKey::FromPassphrase("wrong"), params);
  const FreqDetectReport wrong =
      impostor.Detect(stolen, "A", wm.size()).value();
  std::printf("\nimpostor key decodes: %s (match %zu/%zu)\n",
              wrong.wm.ToString().c_str(),
              MatchWatermark(wm, wrong.wm).matched_bits, wm.size());

  return stats.match_fraction >= 7.0 / 8.0 ? 0 : 1;
}
