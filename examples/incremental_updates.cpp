// Incremental updates (Section 4.3): a live sales feed keeps inserting
// tuples after the initial embedding; each insert is evaluated on the fly
// for fitness and watermarked accordingly, so detection keeps working on
// the growing relation without ever re-running a full pass.

#include <cstdio>

#include "core/catmark.h"
#include "exp/harness.h"
#include "random/rng.h"

using namespace catmark;

int main() {
  // Day 0: embed into the initial data.
  KeyedCategoricalConfig gen;
  gen.num_tuples = 20000;
  gen.domain_size = 200;
  gen.seed = 44;
  Relation feed = GenerateKeyedCategorical(gen);

  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("live-feed");
  WatermarkParams params;
  params.e = 50;
  const BitVector wm = MakeWatermark(10, 44);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(keys, params).Embed(feed, options, wm).value();
  std::printf("day 0: embedded into %zu tuples (%zu fit)\n", feed.NumRows(),
              report.fit_tuples);

  // Days 1..7: 5000 new transactions arrive each day.
  const IncrementalWatermarker incremental(keys, params, options, report,
                                           wm);
  Xoshiro256ss rng(4444);
  const CategoricalDomain& domain = incremental.domain();
  std::size_t fit_inserts = 0;
  for (int day = 1; day <= 7; ++day) {
    for (int i = 0; i < 5000; ++i) {
      const std::int64_t key =
          static_cast<std::int64_t>(rng.NextBounded(1ULL << 40)) + (1LL << 41);
      Row row = {Value(key), Value(domain.value(rng.NextBounded(domain.size())))};
      if (incremental.Insert(feed, std::move(row)).value()) ++fit_inserts;
    }
  }
  std::printf("days 1-7: +35000 tuples, %zu watermarked on the fly\n",
              fit_inserts);

  // Detection on the grown feed — and on a future leak of ONLY the new data.
  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;

  const DetectionResult full =
      detector.Detect(feed, detect_options, wm.size()).value();
  std::printf("full feed  : %zu/%zu bits match\n",
              MatchWatermark(wm, full.wm).matched_bits, wm.size());

  // Suppose only the week's increment leaks (rows 20000..55000).
  Relation leak(feed.schema());
  for (std::size_t i = 20000; i < feed.NumRows(); ++i) {
    leak.AppendRowUnchecked(feed.row(i));
  }
  const DetectionResult on_leak =
      detector.Detect(leak, detect_options, wm.size()).value();
  const OwnershipDecision decision = DecideOwnership(wm, on_leak.wm);
  std::printf("leaked week: %zu/%zu bits match — ownership %s\n",
              decision.matched_bits, wm.size(),
              decision.owned ? "SUPPORTED" : "NOT SUPPORTED");
  return decision.owned ? 0 : 1;
}
