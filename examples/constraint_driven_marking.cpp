// Constraint-driven marking: express the data's "intended purpose" in the
// declarative constraint language (the SQL-subset the paper's conclusions
// propose), compile it to usability-metric plugins, and watermark under it.
// Shows vetoes happening live and the preserved query answers afterwards.

#include <cstdio>

#include "core/catmark.h"
#include "exp/harness.h"

using namespace catmark;

int main() {
  SalesGenConfig gen;
  gen.num_tuples = 30000;
  gen.num_items = 400;
  gen.seed = 33;
  Relation sales = GenerateItemScan(gen);

  // The buyer's declared uses of the data, as constraints.
  const char* constraints = R"(
    -- alteration budget: at most 1.5% of tuples may change
    MAX ALTERATIONS 1.5%;
    -- the product-mix histogram powers a demand model
    MAX DRIFT ON Item_Nbr 0.03;
    -- no product may vanish from the catalogue
    MIN COUNT ON Item_Nbr 1;
    -- grocery volume is audited monthly
    PRESERVE COUNT WHERE Dept_Desc = 'GROCERY' TOLERANCE 2%;
    -- the dairy share of store 7 feeds a shelf-space rule
    PRESERVE CONFIDENCE OF Dept_Desc = 'DAIRY' GIVEN Store_Nbr = 7
        TOLERANCE 5%;
  )";

  QualityAssessor assessor;
  Result<std::size_t> compiled =
      CompileConstraints(constraints, sales.schema(), assessor);
  if (!compiled.ok()) {
    std::fprintf(stderr, "constraint error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled %zu constraints\n", *compiled);
  if (Status s = assessor.Begin(sales); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Baseline query answers (what the constraints protect).
  const EqPredicate grocery{"Dept_Desc", Value("GROCERY")};
  const std::size_t grocery_before = CountWhere(sales, grocery).value();

  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("constrained");
  WatermarkParams params;
  params.e = 40;
  const BitVector wm = MakeWatermark(10, 33);
  EmbedOptions options;
  options.key_attr = "Visit_Nbr";
  options.target_attr = "Item_Nbr";

  const Embedder embedder(keys, params);
  Result<EmbedReport> report =
      embedder.Embed(sales, options, wm, &assessor);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "embedded: %zu fit, %zu altered, %zu vetoed by constraints "
      "(%.3f%% of data altered)\n",
      report->fit_tuples, report->altered_tuples, report->skipped_by_quality,
      100.0 * report->alteration_fraction);

  const std::size_t grocery_after = CountWhere(sales, grocery).value();
  std::printf("COUNT WHERE Dept_Desc='GROCERY': %zu -> %zu (drift %.2f%%)\n",
              grocery_before, grocery_after,
              100.0 *
                  std::abs(static_cast<double>(grocery_after) -
                           static_cast<double>(grocery_before)) /
                  static_cast<double>(grocery_before));

  // And the mark still detects.
  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "Visit_Nbr";
  detect_options.target_attr = "Item_Nbr";
  detect_options.payload_length = report->payload_length;
  detect_options.domain = report->domain;
  const DetectionResult detection =
      detector.Detect(sales, detect_options, wm.size()).value();
  const OwnershipDecision decision = DecideOwnership(wm, detection.wm);
  std::printf("detection: %zu/%zu bits, ownership %s (p=%.2e)\n",
              decision.matched_bits, wm.size(),
              decision.owned ? "SUPPORTED" : "NOT SUPPORTED",
              decision.p_value);
  return decision.owned ? 0 : 1;
}
