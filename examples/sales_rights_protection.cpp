// Sales-data rights protection: the paper's motivating scenario (Section 1)
// end to end. A data collector watermarks an ItemScan-style sales relation
// under explicit quality constraints, sells it (CSV), and later proves
// ownership over a copy that was re-sorted, partially altered and cut down.

#include <cstdio>
#include <memory>

#include "core/catmark.h"
#include "exp/harness.h"

using namespace catmark;

int main() {
  // --- The collector's data ------------------------------------------------
  SalesGenConfig gen;
  gen.num_tuples = 50000;
  gen.num_items = 800;
  gen.item_zipf_s = 1.0;
  gen.seed = 2004;
  Relation sales = GenerateItemScan(gen);
  std::printf("ItemScan sample: %zu tuples\n  %s\n", sales.NumRows(),
              sales.schema().ToString().c_str());

  // --- Embedding under data-quality constraints (Section 4.1) -------------
  const WatermarkKeySet keys =
      WatermarkKeySet::FromPassphrase("collector-vault-2004");
  WatermarkParams params;
  params.e = 60;
  const BitVector wm = MakeWatermark(10, 42);

  QualityAssessor assessor;
  // At most 2% of tuples may change...
  assessor.AddPlugin(std::make_unique<MaxAlterationsPlugin>(0.02));
  // ...the Item_Nbr frequency histogram may drift at most 5% in L1...
  assessor.AddPlugin(std::make_unique<HistogramDriftPlugin>("Item_Nbr", 0.05));
  // ...and no product may disappear from the catalogue entirely.
  assessor.AddPlugin(std::make_unique<MinCategoryCountPlugin>("Item_Nbr", 1));
  if (Status s = assessor.Begin(sales); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  EmbedOptions options;
  options.key_attr = "Visit_Nbr";
  options.target_attr = "Item_Nbr";
  const Embedder embedder(keys, params);
  Result<EmbedReport> embed = embedder.Embed(sales, options, wm, &assessor);
  if (!embed.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 embed.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nembedded: %zu fit tuples, %zu altered, %zu vetoed by quality "
      "plugins, alteration %.3f%% of data\n",
      embed->fit_tuples, embed->altered_tuples, embed->skipped_by_quality,
      100.0 * embed->alteration_fraction);

  // --- Ship it -------------------------------------------------------------
  const std::string csv = WriteCsvString(sales);
  std::printf("shipped %.1f MB of CSV to the buyer\n",
              static_cast<double>(csv.size()) / 1e6);

  // --- The buyer leaks a massaged copy --------------------------------------
  Result<Relation> leaked = ReadCsvString(csv, sales.schema());
  Relation suspect = ResortAttack(leaked.value(), 1);
  suspect = SubsetAlterationAttack(suspect, "Item_Nbr", 0.10, 2).value();
  suspect = HorizontalPartitionAttack(suspect, 0.5, 3).value();
  std::printf(
      "\nleaked copy: re-sorted, 10%% of Item_Nbr values altered, only 50%% "
      "of tuples kept (%zu remain)\n",
      suspect.NumRows());

  // --- Court day: blind detection ------------------------------------------
  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "Visit_Nbr";
  detect_options.target_attr = "Item_Nbr";
  detect_options.payload_length = embed->payload_length;
  detect_options.domain = embed->domain;
  Result<DetectionResult> detection =
      detector.Detect(suspect, detect_options, wm.size());
  if (!detection.ok()) {
    std::fprintf(stderr, "detect failed: %s\n",
                 detection.status().ToString().c_str());
    return 1;
  }
  const MatchStats stats = MatchWatermark(wm, detection->wm);
  std::printf(
      "\ndetection: %zu/%zu bits match (mark alteration %.1f%%)\n"
      "probability of such a match arising by chance: %.2e\n",
      stats.matched_bits, stats.total_bits, 100.0 * stats.mark_alteration,
      stats.false_match_probability);

  // Section 4.4's analysis, applied to this exact attack, for the judge.
  RandomAttackModel model;
  model.attacked_tuples = suspect.NumRows() / 10;
  model.e = params.e;
  model.flip_probability = 0.5;
  std::printf(
      "analysis: an attacker altering 10%% of the data flips >= 5 payload "
      "bits with probability %.3f\n",
      AttackSuccessProbability(model, 5));

  return stats.match_fraction >= 0.8 ? 0 : 1;
}
