// catmark — command-line rights protection for categorical CSV data.
//
//   catmark gen     --out data.csv --n 10000 [--items 500] [--sales]
//   catmark embed   --in data.csv --out marked.csv --schema <spec>
//                   --key <passphrase> --wm <bits> [--e 60]
//                   [--prf keyed-hash|hmac-sha256|siphash24]
//                   [--key-attr K] [--target-attr A] [--constraints file.cql]
//                   [--certificate-out cert.txt]
//   catmark detect  --in suspect.csv --schema <spec> --key <passphrase>
//                   ( --certificate cert.txt
//                   | --wm <bits> --payload-length <L> [--e 60] [--prf <p>]
//                     [--key-attr K] [--target-attr A] ) [--alpha 0.001]
//
// --prf selects the keyed-PRF backend (default: the CATMARK_PRF environment
// variable, else the paper's keyed hash). Embed and detect must agree;
// certificates record the backend, so --certificate detection needs no flag.
//   catmark sweep   --in suspect.csv --schema <spec>
//                   ( --certs <dir>              # NAME.cert + NAME.key pairs
//                   | --certificate cert.txt --keys keyfile.txt )
//                   [--alpha 0.001] [--top 10] [--threads N]
//
// `sweep` answers "whose mark is this relation carrying?": every candidate
// certificate/key pair runs through one shared key-agnostic detect plan
// (DetectEngine::DetectMany) and the report ranks candidates by detection
// confidence. With --certs, each NAME.cert in the directory is a candidate
// whose passphrase sits in the sibling NAME.key; with --keys, one
// certificate is tested against `id:passphrase` lines. Exit 0 when the top
// candidate's claim is supported, 2 otherwise.
//   catmark attack  --in marked.csv --out attacked.csv --schema <spec>
//                   --type alter|subset|add|shuffle|remap
//                   [--column A] [--fraction 0.3] [--seed 1]
//   catmark bandwidth --in data.csv --schema <spec> [--e 60] [--q 0.01]
//   catmark stream  --in rows.csv|- --schema <spec> --key <passphrase>
//                   --certificate cert.txt --out grown.csv
//                   [--base marked.csv] [--batch 1024]
//   catmark convert --in data.csv --out data.catm --schema <spec>
//                   [--threads N]
//
// Every --in / --base input is sniffed by content: files in the .catm
// binary columnar format load with zero re-parsing/re-interning, anything
// else parses as CSV (in parallel chunks). Every --out path ending in
// `.catm` writes the binary format, anything else CSV. `convert`
// translates between the two; both directions are lossless and
// deterministic (CSV -> .catm is byte-identical at any --threads count).
//
// `stream` grows a marked relation with new rows, marking fit inserts on
// the fly: rows come from --in (CSV, `-` for stdin), are pushed through a
// StreamSession in --batch-sized InsertBatch calls against --base (or an
// empty relation), and the grown relation lands in --out. The certificate
// pins every parameter the session needs — keys are verified against its
// commitment, so the wrong passphrase fails before any row is inserted.
//
// <spec> declares the CSV columns: comma-separated `name:type[:flag]`,
// type in {int,double,str}, flag in {pk,cat}. Example:
//   --schema "Visit_Nbr:int:pk,Item_Nbr:int:cat,Dept_Desc:str:cat"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/catmark.h"
#include "common/str_util.h"

namespace catmark {
namespace {

// ------------------------------------------------------------------- flags

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
        values_[arg.substr(2)] = argv[++i];
      } else if (arg.rfind("--", 0) == 0) {
        values_[arg.substr(2)] = "true";
      }
    }
  }

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  std::uint64_t GetUint(const std::string& name,
                        std::uint64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "catmark: %s\n", message.c_str());
  return 1;
}

/// Applies --prf to `params`. Absent flag leaves params.prf on auto
/// (CATMARK_PRF or the legacy keyed hash, validated at embed/detect time);
/// an unknown name fails up front with the registered backend list.
Status ApplyPrfFlag(const Flags& flags, WatermarkParams& params) {
  if (!flags.Has("prf")) return Status::OK();
  CATMARK_ASSIGN_OR_RETURN(const PrfKind prf,
                           PrfKindFromName(flags.Get("prf")));
  params.prf = prf;
  return Status::OK();
}

// ------------------------------------------------------------ schema specs

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Column> columns;
  std::string pk;
  for (const std::string& field : StrSplit(spec, ',')) {
    const std::vector<std::string> parts = StrSplit(field, ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument("bad schema field '" + field +
                                     "' (want name:type[:flag])");
    }
    Column col;
    col.name = std::string(StrTrim(parts[0]));
    const std::string type(StrTrim(parts[1]));
    if (type == "int") {
      col.type = ColumnType::kInt64;
    } else if (type == "double") {
      col.type = ColumnType::kDouble;
    } else if (type == "str") {
      col.type = ColumnType::kString;
    } else {
      return Status::InvalidArgument("unknown type '" + type + "'");
    }
    if (parts.size() == 3) {
      const std::string flag(StrTrim(parts[2]));
      if (flag == "pk") {
        pk = col.name;
      } else if (flag == "cat") {
        col.categorical = true;
      } else {
        return Status::InvalidArgument("unknown flag '" + flag + "'");
      }
    }
    columns.push_back(std::move(col));
  }
  return Schema::Create(std::move(columns), pk);
}

/// Loads --in by content sniff: .catm images through the binary reader,
/// anything else through the (parallel) CSV parser. Both validate against
/// --schema.
Result<Relation> LoadInput(const Flags& flags) {
  const std::string path = flags.Get("in");
  if (path.empty()) return Status::InvalidArgument("--in is required");
  CATMARK_ASSIGN_OR_RETURN(const Schema schema,
                           ParseSchemaSpec(flags.Get("schema")));
  return LoadRelation(path, schema);
}

/// Saves to --out by extension: `.catm` writes the binary format, anything
/// else CSV.
Status SaveOutput(const Relation& rel, const Flags& flags) {
  const std::string path = flags.Get("out");
  if (path.empty()) return Status::InvalidArgument("--out is required");
  return SaveRelation(rel, path);
}

// ------------------------------------------------------------- subcommands

int RunGen(const Flags& flags) {
  const std::string out = flags.Get("out");
  if (out.empty()) return Fail("--out is required");
  // The output format follows the extension: `.catm` binary, else CSV.
  Result<std::size_t> written = Status::Internal("unreachable");
  if (flags.Has("sales")) {
    SalesGenConfig config;
    config.num_tuples = flags.GetUint("n", 10000);
    config.num_items = flags.GetUint("items", 500);
    config.seed = flags.GetUint("seed", 42);
    written = GenerateItemScanFile(config, out);
    std::printf("schema spec: Visit_Nbr:int:pk,Item_Nbr:int:cat,"
                "Store_Nbr:int:cat,Dept_Desc:str:cat,Unit_Qty:int,"
                "Sale_Amount:double\n");
  } else {
    KeyedCategoricalConfig config;
    config.num_tuples = flags.GetUint("n", 10000);
    config.domain_size = flags.GetUint("items", 500);
    config.seed = flags.GetUint("seed", 42);
    written = GenerateKeyedCategoricalFile(config, out);
    std::printf("schema spec: K:int:pk,A:str:cat\n");
  }
  if (!written.ok()) return Fail(written.status().ToString());
  std::printf("wrote %zu tuples to %s\n", written.value(), out.c_str());
  return 0;
}

int RunEmbed(const Flags& flags) {
  Result<Relation> rel = LoadInput(flags);
  if (!rel.ok()) return Fail(rel.status().ToString());
  const std::string key = flags.Get("key");
  if (key.empty()) return Fail("--key is required");
  Result<BitVector> wm = BitVector::FromString(flags.Get("wm"));
  if (!wm.ok() || wm.value().empty()) {
    return Fail("--wm must be a non-empty bit string, e.g. 1011001110");
  }

  WatermarkParams params;
  params.e = flags.GetUint("e", 60);
  if (const Status s = ApplyPrfFlag(flags, params); !s.ok()) {
    return Fail(s.ToString());
  }
  EmbedOptions options;
  options.key_attr = flags.Get("key-attr", "K");
  options.target_attr = flags.Get("target-attr", "A");

  QualityAssessor assessor;
  if (flags.Has("constraints")) {
    std::ifstream f(flags.Get("constraints"));
    if (!f) return Fail("cannot read " + flags.Get("constraints"));
    std::ostringstream ss;
    ss << f.rdbuf();
    const Result<std::size_t> n =
        CompileConstraints(ss.str(), rel.value().schema(), assessor);
    if (!n.ok()) return Fail(n.status().ToString());
    std::printf("compiled %zu quality constraints\n", n.value());
    if (const Status s = assessor.Begin(rel.value()); !s.ok()) {
      return Fail(s.ToString());
    }
  }

  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase(key);
  const Embedder embedder(keys, params);
  Result<EmbedReport> report =
      embedder.Embed(rel.value(), options, wm.value(),
                     flags.Has("constraints") ? &assessor : nullptr);
  if (!report.ok()) return Fail(report.status().ToString());
  if (const Status s = SaveOutput(rel.value(), flags); !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf(
      "embedded %zu-bit mark: %zu fit tuples, %zu altered (%.3f%% of data), "
      "%zu vetoed by constraints\n"
      "detector inputs: --payload-length %zu --e %llu --wm-bits %zu "
      "--prf %s\n",
      wm.value().size(), report->fit_tuples, report->altered_tuples,
      100.0 * report->alteration_fraction, report->skipped_by_quality,
      report->payload_length, static_cast<unsigned long long>(params.e),
      wm.value().size(), std::string(PrfKindName(report->prf)).c_str());
  // Same accounting line detect prints: rows scanned vs PRF messages
  // actually hashed, and the embed wall time (excludes load and save).
  const double embed_ms = report->wall_seconds * 1e3;
  const double embed_tps =
      report->wall_seconds > 0.0
          ? static_cast<double>(report->rows_scanned) / report->wall_seconds
          : 0.0;
  std::printf(
      "scanned %zu rows (%zu messages hashed) in %.2f ms (%.2fM rows/s)\n",
      report->rows_scanned, report->messages_hashed, embed_ms,
      embed_tps / 1e6);

  // --certificate-out writes everything detection needs (plus the key
  // commitment) to one file; `detect --certificate` consumes it.
  if (flags.Has("certificate-out")) {
    const WatermarkCertificate cert = WatermarkCertificate::Create(
        keys, params, options, report.value(), wm.value(), {},
        flags.Get("in"));
    std::ofstream f(flags.Get("certificate-out"));
    if (!f) return Fail("cannot write " + flags.Get("certificate-out"));
    f << cert.Serialize();
    std::printf("wrote certificate to %s\n",
                flags.Get("certificate-out").c_str());
  }
  return 0;
}

// Shared wall-time / throughput line. rows_scanned is the relation's row
// count on every path and is what throughput divides by; messages_hashed is
// the (possibly much smaller) number of prepared messages the keyed PRF
// actually ran — printing both keeps the two from being conflated.
void PrintDetectionCost(const DetectionResult& detection) {
  const double ms = detection.wall_seconds * 1e3;
  const double tps = detection.wall_seconds > 0.0
                         ? static_cast<double>(detection.rows_scanned) /
                               detection.wall_seconds
                         : 0.0;
  std::printf(
      "scanned %zu rows (%zu messages hashed) in %.2f ms (%.2fM rows/s)\n",
      detection.rows_scanned, detection.messages_hashed, ms, tps / 1e6);
}

int RunDetectWithCertificate(const Flags& flags) {
  Result<Relation> rel = LoadInput(flags);
  if (!rel.ok()) return Fail(rel.status().ToString());
  std::ifstream f(flags.Get("certificate"));
  if (!f) return Fail("cannot read " + flags.Get("certificate"));
  std::ostringstream ss;
  ss << f.rdbuf();
  Result<WatermarkCertificate> cert =
      WatermarkCertificate::Deserialize(ss.str());
  if (!cert.ok()) return Fail(cert.status().ToString());
  const std::string key = flags.Get("key");
  if (key.empty()) return Fail("--key is required");
  Result<CertifiedDetection> result = DetectWithCertificate(
      rel.value(), cert.value(), WatermarkKeySet::FromPassphrase(key),
      flags.GetDouble("alpha", 1e-3));
  if (!result.ok()) return Fail(result.status().ToString());
  PrintDetectionCost(result->detection);
  std::printf(
      "key commitment verified; matched %zu/%zu bits (threshold %zu), "
      "p-value %.3e\nownership claim: %s\n",
      result->decision.matched_bits, cert->wm.size(),
      result->decision.threshold, result->decision.p_value,
      result->decision.owned ? "SUPPORTED" : "NOT SUPPORTED");
  return result->decision.owned ? 0 : 2;
}

int RunDetect(const Flags& flags) {
  if (flags.Has("certificate")) return RunDetectWithCertificate(flags);
  Result<Relation> rel = LoadInput(flags);
  if (!rel.ok()) return Fail(rel.status().ToString());
  const std::string key = flags.Get("key");
  if (key.empty()) return Fail("--key is required");
  Result<BitVector> wm = BitVector::FromString(flags.Get("wm"));
  if (!wm.ok() || wm.value().empty()) {
    return Fail("--wm must be the owner's mark bits");
  }

  WatermarkParams params;
  params.e = flags.GetUint("e", 60);
  if (const Status s = ApplyPrfFlag(flags, params); !s.ok()) {
    return Fail(s.ToString());
  }
  DetectOptions options;
  options.key_attr = flags.Get("key-attr", "K");
  options.target_attr = flags.Get("target-attr", "A");
  options.payload_length =
      static_cast<std::size_t>(flags.GetUint("payload-length", 0));

  const Detector detector(WatermarkKeySet::FromPassphrase(key), params);
  Result<DetectionResult> detection =
      detector.Detect(rel.value(), options, wm.value().size());
  if (!detection.ok()) return Fail(detection.status().ToString());

  const OwnershipDecision decision = DecideOwnership(
      wm.value(), detection->wm, flags.GetDouble("alpha", 1e-3));
  if (options.payload_length == 0) {
    std::fprintf(stderr,
                 "catmark: warning: --payload-length not given; derived %zu "
                 "from the suspect relation — wrong if tuples were "
                 "added/removed since embedding (see the embed report)\n",
                 detection->payload_length);
  }
  PrintDetectionCost(detection.value());
  std::printf("decoded mark : %s\n", detection->wm.ToString().c_str());
  std::printf("owner's mark : %s\n", wm.value().ToString().c_str());
  std::printf(
      "matched %zu/%zu bits (threshold %zu at alpha %.1e), p-value %.3e\n",
      decision.matched_bits, wm.value().size(), decision.threshold,
      decision.significance, decision.p_value);
  std::printf("ownership claim: %s\n",
              decision.owned ? "SUPPORTED" : "NOT SUPPORTED");
  return decision.owned ? 0 : 2;
}

// ------------------------------------------------------------------- sweep

Result<WatermarkCertificate> LoadCertificateFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot read " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return WatermarkCertificate::Deserialize(ss.str());
}

// First non-empty, non-comment line of a keyfile — the passphrase.
Result<std::string> LoadPassphraseFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot read " + path);
  std::string line;
  while (std::getline(f, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    return line;
  }
  return Status::InvalidArgument("no passphrase in " + path);
}

// --certs <dir>: every NAME.cert file in the directory is one candidate,
// with its passphrase in the sibling NAME.key — the registry-directory
// layout an ownership-dispute service keeps per customer.
Result<std::vector<OwnershipCandidate>> CollectCertDirCandidates(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("cannot list " + dir + ": " + ec.message());
  }
  std::vector<std::filesystem::path> certs;
  for (const std::filesystem::directory_entry& entry : it) {
    if (entry.path().extension() == ".cert") certs.push_back(entry.path());
  }
  std::sort(certs.begin(), certs.end());
  std::vector<OwnershipCandidate> candidates;
  for (const std::filesystem::path& path : certs) {
    OwnershipCandidate candidate;
    candidate.id = path.stem().string();
    Result<WatermarkCertificate> cert = LoadCertificateFile(path.string());
    if (!cert.ok()) return cert.status();
    candidate.certificate = std::move(cert.value());
    std::filesystem::path keyfile = path;
    keyfile.replace_extension(".key");
    Result<std::string> passphrase = LoadPassphraseFile(keyfile.string());
    if (!passphrase.ok()) return passphrase.status();
    candidate.keys = WatermarkKeySet::FromPassphrase(passphrase.value());
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

// --certificate <file> --keys <file>: one certificate, many claimed keys —
// `id:passphrase` per line (bare lines get a line-number id). The "which of
// these leaked keys marked this dump?" workload.
Result<std::vector<OwnershipCandidate>> CollectKeyfileCandidates(
    const std::string& cert_path, const std::string& keys_path) {
  Result<WatermarkCertificate> cert = LoadCertificateFile(cert_path);
  if (!cert.ok()) return cert.status();
  std::ifstream f(keys_path);
  if (!f) return Status::NotFound("cannot read " + keys_path);
  std::vector<OwnershipCandidate> candidates;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    OwnershipCandidate candidate;
    const std::size_t colon = line.find(':');
    std::string passphrase;
    if (colon == std::string::npos) {
      candidate.id = "key#" + std::to_string(lineno);
      passphrase = line;
    } else {
      candidate.id = line.substr(0, colon);
      passphrase = line.substr(colon + 1);
    }
    if (passphrase.empty()) {
      return Status::InvalidArgument("empty passphrase at " + keys_path +
                                     ":" + std::to_string(lineno));
    }
    candidate.certificate = cert.value();
    candidate.keys = WatermarkKeySet::FromPassphrase(passphrase);
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

int RunSweep(const Flags& flags) {
  Result<Relation> rel = LoadInput(flags);
  if (!rel.ok()) return Fail(rel.status().ToString());
  Result<std::vector<OwnershipCandidate>> candidates =
      Status::InvalidArgument(
          "sweep needs --certs <dir>, or --certificate <file> with "
          "--keys <file>");
  if (flags.Has("certs")) {
    candidates = CollectCertDirCandidates(flags.Get("certs"));
  } else if (flags.Has("certificate") && flags.Has("keys")) {
    candidates = CollectKeyfileCandidates(flags.Get("certificate"),
                                          flags.Get("keys"));
  }
  if (!candidates.ok()) return Fail(candidates.status().ToString());
  if (candidates->empty()) return Fail("no sweep candidates found");

  ServiceOptions service_options;
  service_options.num_threads =
      static_cast<std::size_t>(flags.GetUint("threads", 0));
  const WatermarkService service(service_options);
  Result<SweepReport> report = service.SweepOwnership(
      rel.value(), std::span<const OwnershipCandidate>(candidates.value()),
      flags.GetDouble("alpha", 1e-3));
  if (!report.ok()) return Fail(report.status().ToString());

  for (const auto& [id, status] : report->failed) {
    std::fprintf(stderr, "catmark: warning: candidate %s failed: %s\n",
                 id.c_str(), status.ToString().c_str());
  }
  const double per_key_ms = report->ranked.empty()
                                ? 0.0
                                : report->wall_seconds * 1e3 /
                                      static_cast<double>(
                                          report->ranked.size());
  std::printf(
      "swept %zu candidates over %zu tuples (%zu plans, %zu messages "
      "hashed) in %.2f ms — %.4f ms/key\n",
      candidates->size(), rel.value().NumRows(), report->plans_built,
      report->messages_hashed, report->wall_seconds * 1e3, per_key_ms);

  const std::size_t top =
      std::min<std::size_t>(flags.GetUint("top", 10), report->ranked.size());
  std::printf("%-5s %-24s %-14s %9s %11s %10s\n", "rank", "candidate",
              "verdict", "bits", "p-value", "commitment");
  for (std::size_t i = 0; i < top; ++i) {
    const SweepMatch& match = report->ranked[i];
    std::printf("%-5zu %-24s %-14s %4zu/%-4zu %11.3e %10s\n", i + 1,
                match.id.c_str(),
                match.decision.owned ? "SUPPORTED" : "not supported",
                match.decision.matched_bits, match.detection.wm.size(),
                match.decision.p_value,
                match.commitment_verified ? "verified" : "MISMATCH");
  }
  if (top < report->ranked.size()) {
    std::printf("... %zu more (raise --top to see them)\n",
                report->ranked.size() - top);
  }
  const bool any_owned =
      !report->ranked.empty() && report->ranked.front().decision.owned;
  return any_owned ? 0 : 2;
}

int RunAttack(const Flags& flags) {
  Result<Relation> rel = LoadInput(flags);
  if (!rel.ok()) return Fail(rel.status().ToString());
  const std::string type = flags.Get("type");
  const double fraction = flags.GetDouble("fraction", 0.3);
  const std::uint64_t seed = flags.GetUint("seed", 1);
  const std::string column = flags.Get("column", "A");

  Result<Relation> out = Status::InvalidArgument(
      "--type must be alter|subset|add|shuffle|remap");
  if (type == "alter") {
    out = SubsetAlterationAttack(rel.value(), column, fraction, seed);
  } else if (type == "subset") {
    out = HorizontalPartitionAttack(rel.value(), 1.0 - fraction, seed);
  } else if (type == "add") {
    out = SubsetAdditionAttack(rel.value(), fraction, seed);
  } else if (type == "shuffle") {
    out = ResortAttack(rel.value(), seed);
  } else if (type == "remap") {
    Result<RemapAttackResult> remap =
        BijectiveRemapAttack(rel.value(), column, seed);
    if (!remap.ok()) return Fail(remap.status().ToString());
    out = std::move(remap.value().relation);
  }
  if (!out.ok()) return Fail(out.status().ToString());
  if (const Status s = SaveOutput(out.value(), flags); !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("%s attack: %zu -> %zu tuples, wrote %s\n", type.c_str(),
              rel.value().NumRows(), out.value().NumRows(),
              flags.Get("out").c_str());
  return 0;
}

int RunBandwidth(const Flags& flags) {
  Result<Relation> rel = LoadInput(flags);
  if (!rel.ok()) return Fail(rel.status().ToString());
  Result<std::vector<AttributeBandwidth>> all = AnalyzeRelationBandwidth(
      rel.value(), flags.GetUint("e", 60), flags.GetDouble("q", 0.01));
  if (!all.ok()) return Fail(all.status().ToString());
  std::printf("%-14s %8s %10s %12s %14s %12s\n", "attribute", "nA",
              "entropy", "direct bits", "assoc bits", "freq bits");
  for (const AttributeBandwidth& bw : all.value()) {
    std::printf("%-14s %8zu %10.2f %12.2f %14zu %12zu\n",
                bw.attribute.c_str(), bw.domain_size, bw.entropy_bits,
                bw.direct_domain_bits, bw.association_bits,
                bw.frequency_bits);
  }
  return 0;
}

int RunStream(const Flags& flags) {
  if (!flags.Has("certificate")) return Fail("--certificate is required");
  std::ifstream cf(flags.Get("certificate"));
  if (!cf) return Fail("cannot read " + flags.Get("certificate"));
  std::ostringstream cs;
  cs << cf.rdbuf();
  Result<WatermarkCertificate> cert =
      WatermarkCertificate::Deserialize(cs.str());
  if (!cert.ok()) return Fail(cert.status().ToString());

  const std::string key = flags.Get("key");
  if (key.empty()) return Fail("--key is required");
  Result<SessionSpec> spec = SessionSpec::FromCertificate(
      cert.value(), WatermarkKeySet::FromPassphrase(key));
  if (!spec.ok()) return Fail(spec.status().ToString());

  Result<Schema> schema = ParseSchemaSpec(flags.Get("schema"));
  if (!schema.ok()) return Fail(schema.status().ToString());

  // New rows: a CSV file, or stdin when --in is `-`.
  const std::string in = flags.Get("in");
  if (in.empty()) return Fail("--in is required (path or - for stdin)");
  Result<Relation> input = [&]() -> Result<Relation> {
    if (in == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      return ReadCsvString(ss.str(), schema.value());
    }
    return LoadRelation(in, schema.value());
  }();
  if (!input.ok()) return Fail(input.status().ToString());

  // The relation to grow: --base when given (CSV or .catm, sniffed), else
  // empty under the schema.
  Relation rel(schema.value());
  if (flags.Has("base")) {
    Result<Relation> base = LoadRelation(flags.Get("base"), schema.value());
    if (!base.ok()) return Fail(base.status().ToString());
    rel = std::move(base).value();
  }

  Result<StreamSession> session =
      StreamSession::Create(std::move(spec).value());
  if (!session.ok()) return Fail(session.status().ToString());

  const std::size_t batch =
      std::max<std::size_t>(1, flags.GetUint("batch", 1024));
  std::vector<Row> rows;
  rows.reserve(input.value().NumRows());
  for (std::size_t i = 0; i < input.value().NumRows(); ++i) {
    rows.push_back(input.value().row(i));
  }
  std::size_t fit = 0, altered = 0, hashed = 0, batches = 0;
  for (std::size_t at = 0; at < rows.size(); ++batches) {
    const std::size_t len = std::min(rows.size() - at, batch);
    Result<BatchReport> report =
        session->InsertBatch(rel, std::span<Row>(&rows[at], len));
    if (!report.ok()) return Fail(report.status().ToString());
    fit += report->fit_rows;
    altered += report->altered_rows;
    hashed += report->hashed_keys;
    at += len;
  }
  if (const Status s = SaveOutput(rel, flags); !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf(
      "streamed %zu rows in %zu batches (<= %zu rows each): %zu fit, "
      "%zu altered, %zu distinct keys hashed\nrelation now %zu tuples, "
      "wrote %s\n",
      rows.size(), batches, batch, fit, altered, hashed, rel.NumRows(),
      flags.Get("out").c_str());
  return 0;
}

int RunConvert(const Flags& flags) {
  const std::string in = flags.Get("in");
  const std::string out = flags.Get("out");
  if (in.empty()) return Fail("--in is required");
  if (out.empty()) return Fail("--out is required");
  Result<Schema> schema = ParseSchemaSpec(flags.Get("schema"));
  if (!schema.ok()) return Fail(schema.status().ToString());
  Result<FileBytes> bytes = FileBytes::Open(in);
  if (!bytes.ok()) return Fail(bytes.status().ToString());
  const std::size_t in_size = bytes->view().size();
  // Sniff the input format; --threads picks the CSV chunk count (0 = auto).
  Result<Relation> rel =
      LooksLikeCatm(bytes->view())
          ? ReadCatmString(bytes->view(), schema.value())
          : ReadCsvStringParallel(
                bytes->view(), schema.value(),
                static_cast<std::size_t>(flags.GetUint("threads", 0)));
  if (!rel.ok()) return Fail(rel.status().ToString());
  if (const Status s = SaveRelation(rel.value(), out); !s.ok()) {
    return Fail(s.ToString());
  }
  std::size_t out_size = 0;
  if (Result<FileBytes> written = FileBytes::Open(out); written.ok()) {
    out_size = written->view().size();
  }
  std::printf("converted %s (%zu bytes) -> %s (%zu bytes), %zu tuples\n",
              in.c_str(), in_size, out.c_str(), out_size,
              rel.value().NumRows());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: catmark "
      "<gen|embed|detect|sweep|attack|bandwidth|stream|convert> "
      "[--flags]\n"
      "see the header of tools/catmark_cli.cc for full flag reference\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "gen") return RunGen(flags);
  if (command == "embed") return RunEmbed(flags);
  if (command == "detect") return RunDetect(flags);
  if (command == "sweep") return RunSweep(flags);
  if (command == "attack") return RunAttack(flags);
  if (command == "bandwidth") return RunBandwidth(flags);
  if (command == "stream") return RunStream(flags);
  if (command == "convert") return RunConvert(flags);
  return Usage();
}

}  // namespace
}  // namespace catmark

int main(int argc, char** argv) { return catmark::Main(argc, argv); }
