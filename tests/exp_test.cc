#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/harness.h"
#include "relation/ops.h"

namespace catmark {
namespace {

TEST(HarnessTest, MakeWatermarkDeterministic) {
  EXPECT_EQ(MakeWatermark(16, 1), MakeWatermark(16, 1));
  EXPECT_NE(MakeWatermark(16, 1), MakeWatermark(16, 2));
  EXPECT_EQ(MakeWatermark(16, 1).size(), 16u);
}

TEST(HarnessTest, IdentityAttackYieldsZeroAlteration) {
  ExperimentConfig config;
  config.num_tuples = 2000;
  config.passes = 3;
  WatermarkParams params;
  params.e = 20;
  const TrialOutcome outcome = RunAveragedTrial(
      config, params,
      [](const Relation& rel, std::uint64_t) -> Result<Relation> {
        return Clone(rel);
      });
  EXPECT_DOUBLE_EQ(outcome.mean_alteration_pct, 0.0);
  EXPECT_EQ(outcome.passes, 3u);
  EXPECT_GT(outcome.mean_payload_fill, 0.3);
  EXPECT_GT(outcome.mean_embed_alteration_pct, 0.0);
}

TEST(HarnessTest, OutcomeIsReproducible) {
  ExperimentConfig config;
  config.num_tuples = 2000;
  config.passes = 3;
  WatermarkParams params;
  const auto attack = [](const Relation& rel,
                         std::uint64_t) -> Result<Relation> {
    return Clone(rel);
  };
  const TrialOutcome a = RunAveragedTrial(config, params, attack);
  const TrialOutcome b = RunAveragedTrial(config, params, attack);
  EXPECT_DOUBLE_EQ(a.mean_alteration_pct, b.mean_alteration_pct);
  EXPECT_DOUBLE_EQ(a.mean_payload_fill, b.mean_payload_fill);
}

TEST(HarnessTest, FromEnvDefaults) {
  ::unsetenv("CATMARK_FULL");
  ::unsetenv("CATMARK_N");
  ::unsetenv("CATMARK_PASSES");
  ::unsetenv("CATMARK_DOMAIN");
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  EXPECT_EQ(config.num_tuples, 6000u);
  EXPECT_EQ(config.passes, 15u);
  EXPECT_EQ(config.wm_bits, 10u);
}

TEST(HarnessTest, FromEnvOverrides) {
  ::setenv("CATMARK_N", "1234", 1);
  ::setenv("CATMARK_PASSES", "5", 1);
  ::setenv("CATMARK_DOMAIN", "77", 1);
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  EXPECT_EQ(config.num_tuples, 1234u);
  EXPECT_EQ(config.passes, 5u);
  EXPECT_EQ(config.domain_size, 77u);
  ::unsetenv("CATMARK_N");
  ::unsetenv("CATMARK_PASSES");
  ::unsetenv("CATMARK_DOMAIN");
}

TEST(HarnessTest, FullFlagSetsPaperScale) {
  ::setenv("CATMARK_FULL", "1", 1);
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  EXPECT_EQ(config.num_tuples, 141000u);
  ::unsetenv("CATMARK_FULL");
}

TEST(HarnessTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace catmark
