#include <gtest/gtest.h>

#include "random/rng.h"
#include "relation/domain.h"
#include "relation/histogram.h"
#include "relation/ops.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace catmark {
namespace {

Schema TestSchema() {
  return Schema::Create({{"K", ColumnType::kInt64, false},
                         {"A", ColumnType::kString, true},
                         {"X", ColumnType::kDouble, false}},
                        "K")
      .value();
}

Relation TestRelation() {
  Relation rel(TestSchema());
  EXPECT_TRUE(rel.AppendRow({Value(std::int64_t{1}), Value("red"),
                             Value(1.5)}).ok());
  EXPECT_TRUE(rel.AppendRow({Value(std::int64_t{2}), Value("blue"),
                             Value(2.5)}).ok());
  EXPECT_TRUE(rel.AppendRow({Value(std::int64_t{3}), Value("red"),
                             Value(3.5)}).ok());
  return rel;
}

// ------------------------------------------------------------------- Value

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(std::int64_t{42}).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(2.25).AsDouble(), 2.25);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, MatchesType) {
  EXPECT_TRUE(Value(std::int64_t{1}).MatchesType(ColumnType::kInt64));
  EXPECT_FALSE(Value(std::int64_t{1}).MatchesType(ColumnType::kString));
  EXPECT_TRUE(Value("s").MatchesType(ColumnType::kString));
  EXPECT_TRUE(Value(0.5).MatchesType(ColumnType::kDouble));
}

TEST(ValueTest, ParseInt64) {
  EXPECT_EQ(Value::Parse("123", ColumnType::kInt64).value().AsInt64(), 123);
  EXPECT_EQ(Value::Parse("-9", ColumnType::kInt64).value().AsInt64(), -9);
  EXPECT_FALSE(Value::Parse("12x", ColumnType::kInt64).ok());
  EXPECT_TRUE(Value::Parse("", ColumnType::kInt64).value().is_null());
}

TEST(ValueTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(Value::Parse("2.5", ColumnType::kDouble).value().AsDouble(),
                   2.5);
  EXPECT_FALSE(Value::Parse("abc", ColumnType::kDouble).ok());
}

TEST(ValueTest, ParseString) {
  EXPECT_EQ(Value::Parse("hello", ColumnType::kString).value().AsString(),
            "hello");
}

TEST(ValueTest, ToStringRoundTripsThroughParse) {
  const Value v(std::int64_t{-77});
  EXPECT_EQ(Value::Parse(v.ToString(), ColumnType::kInt64).value(), v);
  const Value d(123.456);
  EXPECT_EQ(Value::Parse(d.ToString(), ColumnType::kDouble).value(), d);
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value(std::int64_t{1}), Value(std::int64_t{2}));
  EXPECT_LT(Value("abc"), Value("abd"));  // byte-wise / ASCII, per Section 2.1
  EXPECT_LT(Value("Z"), Value("a"));      // 'Z' (0x5A) < 'a' (0x61)
  EXPECT_LT(Value(1.0), Value(1.5));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, CompareAcrossTypesIsStable) {
  EXPECT_LT(Value(), Value(std::int64_t{0}));
  EXPECT_LT(Value(std::int64_t{99}), Value(0.0));
  EXPECT_LT(Value(99.0), Value(""));
}

TEST(ValueTest, SerializeForHashDistinguishesTypes) {
  std::vector<std::uint8_t> a, b;
  Value(std::int64_t{7}).SerializeForHash(a);
  Value("7").SerializeForHash(b);
  EXPECT_NE(a, b);
}

TEST(ValueTest, SerializeForHashIsStable) {
  std::vector<std::uint8_t> a, b;
  Value("watermark").SerializeForHash(a);
  Value("watermark").SerializeForHash(b);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------------ Schema

TEST(SchemaTest, CreateWithPrimaryKey) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.primary_key_index(), 0);
  EXPECT_TRUE(s.has_primary_key());
  EXPECT_EQ(s.ColumnIndex("A"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
}

TEST(SchemaTest, CreateWithoutPrimaryKey) {
  const Schema s =
      Schema::Create({{"A", ColumnType::kString, true}}, "").value();
  EXPECT_FALSE(s.has_primary_key());
}

TEST(SchemaTest, RejectsEmpty) { EXPECT_FALSE(Schema::Create({}, "").ok()); }

TEST(SchemaTest, RejectsDuplicateNames) {
  EXPECT_FALSE(Schema::Create({{"A", ColumnType::kString, false},
                               {"A", ColumnType::kInt64, false}},
                              "")
                   .ok());
}

TEST(SchemaTest, RejectsUnknownPrimaryKey) {
  EXPECT_FALSE(
      Schema::Create({{"A", ColumnType::kString, false}}, "K").ok());
}

TEST(SchemaTest, RejectsEmptyColumnName) {
  EXPECT_FALSE(Schema::Create({{"", ColumnType::kString, false}}, "").ok());
}

TEST(SchemaTest, CategoricalColumns) {
  const auto cats = TestSchema().CategoricalColumns();
  ASSERT_EQ(cats.size(), 1u);
  EXPECT_EQ(cats[0], 1u);
}

TEST(SchemaTest, ColumnIndexOrError) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.ColumnIndexOrError("X").value(), 2u);
  EXPECT_FALSE(s.ColumnIndexOrError("nope").ok());
}

TEST(SchemaTest, ToStringMentionsEverything) {
  const std::string str = TestSchema().ToString();
  EXPECT_NE(str.find("PRIMARY KEY"), std::string::npos);
  EXPECT_NE(str.find("CATEGORICAL"), std::string::npos);
  EXPECT_NE(str.find("INT64"), std::string::npos);
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(TestSchema() == TestSchema());
  const Schema other =
      Schema::Create({{"K", ColumnType::kInt64, false}}, "K").value();
  EXPECT_FALSE(TestSchema() == other);
}

// ---------------------------------------------------------------- Relation

TEST(RelationTest, AppendValidatesArity) {
  Relation rel(TestSchema());
  EXPECT_FALSE(rel.AppendRow({Value(std::int64_t{1})}).ok());
}

TEST(RelationTest, AppendValidatesTypes) {
  Relation rel(TestSchema());
  EXPECT_FALSE(
      rel.AppendRow({Value("not-int"), Value("a"), Value(0.0)}).ok());
}

TEST(RelationTest, AppendAllowsNulls) {
  Relation rel(TestSchema());
  EXPECT_TRUE(rel.AppendRow({Value(), Value(), Value()}).ok());
}

TEST(RelationTest, GetSet) {
  Relation rel = TestRelation();
  EXPECT_EQ(rel.Get(1, 1).AsString(), "blue");
  EXPECT_TRUE(rel.Set(1, 1, Value("green")).ok());
  EXPECT_EQ(rel.Get(1, 1).AsString(), "green");
}

TEST(RelationTest, SetValidates) {
  Relation rel = TestRelation();
  EXPECT_FALSE(rel.Set(99, 0, Value(std::int64_t{1})).ok());
  EXPECT_FALSE(rel.Set(0, 99, Value(std::int64_t{1})).ok());
  EXPECT_FALSE(rel.Set(0, 0, Value("wrong-type")).ok());
}

TEST(RelationTest, SwapRemoveRow) {
  Relation rel = TestRelation();
  rel.SwapRemoveRow(0);
  EXPECT_EQ(rel.NumRows(), 2u);
  // The last row moved into slot 0.
  EXPECT_EQ(rel.Get(0, 0).AsInt64(), 3);
}

TEST(RelationTest, SameContentIgnoresOrder) {
  const Relation rel = TestRelation();
  Xoshiro256ss rng(1);
  const Relation shuffled = ShuffleRows(rel, rng);
  EXPECT_TRUE(rel.SameContent(shuffled));
}

TEST(RelationTest, SameContentDetectsDifferences) {
  const Relation rel = TestRelation();
  Relation other = rel;
  ASSERT_TRUE(other.Set(0, 1, Value("violet")).ok());
  EXPECT_FALSE(rel.SameContent(other));
}

TEST(RelationTest, SameContentIsMultisetAware) {
  // Two copies of row X vs one copy of X and one of Y must differ.
  Relation a(TestSchema()), b(TestSchema());
  const Row x = {Value(std::int64_t{1}), Value("r"), Value(0.0)};
  const Row y = {Value(std::int64_t{2}), Value("r"), Value(0.0)};
  a.AppendRowUnchecked(x);
  a.AppendRowUnchecked(x);
  b.AppendRowUnchecked(x);
  b.AppendRowUnchecked(y);
  EXPECT_FALSE(a.SameContent(b));
}

TEST(RelationTest, SameContentIgnoresDictionaryCodeAssignment) {
  // Equal content inserted in different orders assigns different dictionary
  // codes to the categorical column; the comparison must not see them.
  Relation a(TestSchema()), b(TestSchema());
  a.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(0.0)});
  a.AppendRowUnchecked({Value(std::int64_t{2}), Value("blue"), Value(0.0)});
  b.AppendRowUnchecked({Value(std::int64_t{2}), Value("blue"), Value(0.0)});
  b.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(0.0)});
  ASSERT_NE(a.store().CodeOf(1, Value("red")),
            b.store().CodeOf(1, Value("red")));
  EXPECT_TRUE(a.SameContent(b));
  EXPECT_TRUE(b.SameContent(a));
}

TEST(RelationTest, SameContentIgnoresDeadDictionaryEntries) {
  // One relation carries a dead dictionary entry ("green" was overwritten):
  // content is equal, dictionaries are not.
  Relation a(TestSchema()), b(TestSchema());
  a.AppendRowUnchecked({Value(std::int64_t{1}), Value("green"), Value(0.0)});
  ASSERT_TRUE(a.Set(0, 1, Value("red")).ok());
  b.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(0.0)});
  EXPECT_TRUE(a.SameContent(b));
}

TEST(RelationTest, SameContentMultisetWithSharedDictionary) {
  // Same dictionary contents, different multiplicities per code.
  Relation a(TestSchema()), b(TestSchema());
  a.AppendRowUnchecked({Value(std::int64_t{1}), Value("r"), Value(0.0)});
  a.AppendRowUnchecked({Value(std::int64_t{1}), Value("r"), Value(0.0)});
  a.AppendRowUnchecked({Value(std::int64_t{1}), Value("s"), Value(0.0)});
  b.AppendRowUnchecked({Value(std::int64_t{1}), Value("r"), Value(0.0)});
  b.AppendRowUnchecked({Value(std::int64_t{1}), Value("s"), Value(0.0)});
  b.AppendRowUnchecked({Value(std::int64_t{1}), Value("s"), Value(0.0)});
  EXPECT_FALSE(a.SameContent(b));
}

TEST(RelationTest, SameContentDistinguishesNullFromEmptyString) {
  Relation a(TestSchema()), b(TestSchema());
  a.AppendRowUnchecked({Value(std::int64_t{1}), Value(), Value(0.0)});
  b.AppendRowUnchecked({Value(std::int64_t{1}), Value(""), Value(0.0)});
  EXPECT_FALSE(a.SameContent(b));
}

TEST(RelationTest, SwapRemoveRowPreservesRemainingMultiset) {
  Relation rel(TestSchema());
  for (int i = 0; i < 6; ++i) {
    rel.AppendRowUnchecked({Value(static_cast<std::int64_t>(i)),
                            Value(i % 2 == 0 ? "even" : "odd"), Value(0.0)});
  }
  rel.SwapRemoveRow(2);  // removes (2, "even")
  rel.SwapRemoveRow(0);  // removes (0, "even")
  ASSERT_EQ(rel.NumRows(), 4u);

  Relation expected(TestSchema());
  for (const std::int64_t k : {1, 3, 4, 5}) {
    expected.AppendRowUnchecked(
        {Value(k), Value(k % 2 == 0 ? "even" : "odd"), Value(0.0)});
  }
  EXPECT_TRUE(rel.SameContent(expected));
  // And the categorical column's recovered domain followed the removals.
  const CategoricalDomain d =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  EXPECT_EQ(d.size(), 2u);
}

TEST(RelationTest, SwapRemoveLastHolderShrinksRecoveredDomain) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("only"), Value(0.0)});
  rel.AppendRowUnchecked({Value(std::int64_t{2}), Value("kept"), Value(0.0)});
  rel.SwapRemoveRow(0);
  const CategoricalDomain d =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.value(0).AsString(), "kept");
}

// ------------------------------------------------------------------ Domain

TEST(DomainTest, FromValuesSortsAndIndexes) {
  const CategoricalDomain d =
      CategoricalDomain::FromValues({Value("b"), Value("a"), Value("c")})
          .value();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.value(0).AsString(), "a");
  EXPECT_EQ(d.IndexOf(Value("c")).value(), 2u);
  EXPECT_FALSE(d.IndexOf(Value("zzz")).has_value());
  EXPECT_TRUE(d.Contains(Value("b")));
}

TEST(DomainTest, RejectsDuplicates) {
  EXPECT_FALSE(
      CategoricalDomain::FromValues({Value("a"), Value("a")}).ok());
}

TEST(DomainTest, RejectsEmptyAndNull) {
  EXPECT_FALSE(CategoricalDomain::FromValues({}).ok());
  EXPECT_FALSE(CategoricalDomain::FromValues({Value()}).ok());
}

TEST(DomainTest, FromRelationColumnDedups) {
  const Relation rel = TestRelation();
  const CategoricalDomain d =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  EXPECT_EQ(d.size(), 2u);  // red, blue
  EXPECT_EQ(d.value(0).AsString(), "blue");
  EXPECT_EQ(d.value(1).AsString(), "red");
}

TEST(DomainTest, FromRelationColumnSkipsNulls) {
  Relation rel(TestSchema());
  ASSERT_TRUE(
      rel.AppendRow({Value(std::int64_t{1}), Value(), Value(0.0)}).ok());
  ASSERT_TRUE(
      rel.AppendRow({Value(std::int64_t{2}), Value("x"), Value(0.0)}).ok());
  const CategoricalDomain d =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  EXPECT_EQ(d.size(), 1u);
}

TEST(DomainTest, FromRelationColumnChecksBounds) {
  EXPECT_FALSE(CategoricalDomain::FromRelationColumn(TestRelation(), 9).ok());
}

TEST(DomainTest, IntegerDomainSortsNumerically) {
  const CategoricalDomain d =
      CategoricalDomain::FromValues({Value(std::int64_t{10}),
                                     Value(std::int64_t{2}),
                                     Value(std::int64_t{30})})
          .value();
  EXPECT_EQ(d.value(0).AsInt64(), 2);
  EXPECT_EQ(d.value(2).AsInt64(), 30);
}

// --------------------------------------------------------------- Histogram

TEST(HistogramTest, CountsAndFrequencies) {
  const Relation rel = TestRelation();
  const CategoricalDomain d =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  const FrequencyHistogram h =
      FrequencyHistogram::Compute(rel, 1, d).value();
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(d.IndexOf(Value("red")).value()), 2u);
  EXPECT_NEAR(h.frequency(d.IndexOf(Value("red")).value()), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(h.out_of_domain(), 0u);
}

TEST(HistogramTest, OutOfDomainTally) {
  const Relation rel = TestRelation();
  const CategoricalDomain d =
      CategoricalDomain::FromValues({Value("red")}).value();
  const FrequencyHistogram h =
      FrequencyHistogram::Compute(rel, 1, d).value();
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.out_of_domain(), 1u);  // "blue"
}

TEST(HistogramTest, Distances) {
  const Relation rel = TestRelation();
  const CategoricalDomain d =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  const FrequencyHistogram a = FrequencyHistogram::Compute(rel, 1, d).value();
  Relation mod = rel;
  ASSERT_TRUE(mod.Set(0, 1, Value("blue")).ok());
  const FrequencyHistogram b = FrequencyHistogram::Compute(mod, 1, d).value();
  EXPECT_NEAR(a.L1Distance(b), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(a.LInfDistance(b), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(a.L1Distance(a), 0.0, 1e-12);
}

TEST(HistogramTest, FrequenciesVector) {
  const Relation rel = TestRelation();
  const CategoricalDomain d =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  const FrequencyHistogram h = FrequencyHistogram::Compute(rel, 1, d).value();
  const std::vector<double> f = h.Frequencies();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_NEAR(f[0] + f[1], 1.0, 1e-12);
}

// --------------------------------------------------------------------- ops

TEST(OpsTest, ProjectKeepsColumnsAndPk) {
  const Relation rel = TestRelation();
  const Relation p = Project(rel, {"K", "A"}).value();
  EXPECT_EQ(p.schema().num_columns(), 2u);
  EXPECT_TRUE(p.schema().has_primary_key());
  EXPECT_EQ(p.NumRows(), 3u);
  EXPECT_EQ(p.Get(0, 1).AsString(), "red");
}

TEST(OpsTest, ProjectDropsPkWhenExcluded) {
  const Relation p = Project(TestRelation(), {"A"}).value();
  EXPECT_FALSE(p.schema().has_primary_key());
}

TEST(OpsTest, ProjectReorders) {
  const Relation p = Project(TestRelation(), {"A", "K"}).value();
  EXPECT_EQ(p.schema().column(0).name, "A");
  EXPECT_EQ(p.Get(0, 1).AsInt64(), 1);
}

TEST(OpsTest, ProjectUnknownColumnFails) {
  EXPECT_FALSE(Project(TestRelation(), {"nope"}).ok());
  EXPECT_FALSE(Project(TestRelation(), {}).ok());
}

TEST(OpsTest, SampleRowsFraction) {
  Relation rel(TestSchema());
  for (int i = 0; i < 100; ++i) {
    rel.AppendRowUnchecked(
        {Value(static_cast<std::int64_t>(i)), Value("v"), Value(0.0)});
  }
  Xoshiro256ss rng(2);
  const Relation s = SampleRows(rel, 0.25, rng).value();
  EXPECT_EQ(s.NumRows(), 25u);
  EXPECT_FALSE(SampleRows(rel, 1.5, rng).ok());
}

TEST(OpsTest, SampleAllAndNone) {
  const Relation rel = TestRelation();
  Xoshiro256ss rng(3);
  EXPECT_EQ(SampleRows(rel, 1.0, rng).value().NumRows(), 3u);
  EXPECT_EQ(SampleRows(rel, 0.0, rng).value().NumRows(), 0u);
}

TEST(OpsTest, SortByColumn) {
  const Relation rel = TestRelation();
  const Relation sorted = SortByColumn(rel, 1).value();
  EXPECT_EQ(sorted.Get(0, 1).AsString(), "blue");
  EXPECT_EQ(sorted.Get(2, 1).AsString(), "red");
  EXPECT_FALSE(SortByColumn(rel, 9).ok());
}

TEST(OpsTest, AppendAllMatchingSchemas) {
  Relation a = TestRelation();
  const Relation b = TestRelation();
  EXPECT_TRUE(AppendAll(a, b).ok());
  EXPECT_EQ(a.NumRows(), 6u);
}

TEST(OpsTest, AppendAllRejectsSchemaMismatch) {
  Relation a = TestRelation();
  Relation other(Schema::Create({{"Z", ColumnType::kInt64, false}}, "").value());
  EXPECT_FALSE(AppendAll(a, other).ok());
}

TEST(OpsTest, ShuffleRowsKeepsContent) {
  Relation rel(TestSchema());
  for (int i = 0; i < 50; ++i) {
    rel.AppendRowUnchecked(
        {Value(static_cast<std::int64_t>(i)), Value("v"), Value(0.0)});
  }
  Xoshiro256ss rng(4);
  const Relation shuffled = ShuffleRows(rel, rng);
  EXPECT_TRUE(rel.SameContent(shuffled));
  // And it genuinely changed the order somewhere.
  bool moved = false;
  for (std::size_t i = 0; i < 50; ++i) {
    if (!(shuffled.Get(i, 0) == rel.Get(i, 0))) moved = true;
  }
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace catmark
