#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/certificate.h"
#include "core/detect_engine.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "service/service.h"
#include "test_util.h"

namespace catmark {
namespace {

// ---------------------------------------------------------------- fixtures

/// (K STRING CATEGORICAL, A STRING CATEGORICAL) with heavily repeated keys
/// — the dict-code gather path, where one prepared message serves many rows.
Relation DictKeyRelation(std::size_t num_tuples = 2400,
                         std::size_t num_keys = 400,
                         std::size_t domain_size = 24,
                         std::uint64_t seed = 11) {
  Schema schema =
      Schema::Create({{"K", ColumnType::kString, /*categorical=*/true},
                      {"A", ColumnType::kString, /*categorical=*/true}})
          .value();
  Relation rel(schema);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < num_tuples; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t h = state >> 17;
    Row row;
    row.emplace_back("cust-" + std::to_string(h % num_keys));
    row.emplace_back("val-" + std::to_string((h / num_keys) % domain_size));
    rel.AppendRowUnchecked(std::move(row));
  }
  return rel;
}

struct Marked {
  Relation rel;
  BitVector wm;
  EmbedReport report;
  WatermarkKeySet keys;
  WatermarkParams params;
};

Marked EmbedOn(Relation rel, PrfKind prf, std::uint64_t e = 4) {
  Marked m;
  m.rel = std::move(rel);
  m.keys = testutil::TestKeys();
  m.params.e = e;
  m.params.prf = prf;
  // Pin a short payload: on the dict-key fixture the position channel has
  // one slot per *distinct* fit key (~num_keys / e), so a derived N/e-long
  // payload would be mostly erasures by construction.
  m.params.payload_length = 12;
  m.wm = testutil::TestWatermark(12);
  EmbedOptions options;
  options.key_attr = testutil::kKeyAttr;
  options.target_attr = testutil::kTargetAttr;
  const Embedder embedder(m.keys, m.params);
  m.report = embedder.Embed(m.rel, options, m.wm).value();
  return m;
}

std::vector<KeyCandidate> CandidatesFor(const Marked& m) {
  // The true keys plus wrong keys and a wrong-parameter claim: a sweep's
  // population is mostly non-owners, so parity must hold off the happy path.
  std::vector<KeyCandidate> candidates;
  for (const std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{101},
                                   std::uint64_t{202}, std::uint64_t{303}}) {
    KeyCandidate c;
    c.keys = seed == 0 ? m.keys : WatermarkKeySet::FromSeed(seed);
    c.params = m.params;
    c.params.payload_length = m.report.payload_length;
    c.wm_len = m.wm.size();
    candidates.push_back(std::move(c));
  }
  candidates.back().params.e = 7;  // wrong e claimed in its certificate
  return candidates;
}

void ExpectSameDetection(const DetectionResult& got,
                         const DetectionResult& want) {
  EXPECT_EQ(got.wm, want.wm);
  EXPECT_EQ(got.num_tuples, want.num_tuples);
  EXPECT_EQ(got.fit_tuples, want.fit_tuples);
  EXPECT_EQ(got.usable_votes, want.usable_votes);
  EXPECT_EQ(got.payload_length, want.payload_length);
  EXPECT_EQ(got.positions_present, want.positions_present);
  EXPECT_EQ(got.payload_fill, want.payload_fill);
  EXPECT_EQ(got.prf, want.prf);
  EXPECT_EQ(got.bit_confidence, want.bit_confidence);
}

// The acceptance bar of this refactor: DetectMany and the engine's single
// Detect are bit-identical to a standalone Detector::Detect for every
// candidate, across PRF backends x thread counts, on both key layouts.
void RunParitySweep(bool dict_keys) {
  for (const PrfKind prf : {PrfKind::kKeyedHash, PrfKind::kSipHash24}) {
    Marked m = EmbedOn(dict_keys ? DictKeyRelation()
                                 : testutil::SmallKeyedRelation(),
                       prf);
    const std::vector<KeyCandidate> candidates = CandidatesFor(m);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      // Reference: one standalone Detector per candidate.
      std::vector<DetectionResult> expected;
      for (const KeyCandidate& c : candidates) {
        WatermarkParams params = c.params;
        params.num_threads = threads;
        DetectOptions options;
        options.key_attr = testutil::kKeyAttr;
        options.target_attr = testutil::kTargetAttr;
        options.domain = m.report.domain;
        options.payload_length = c.params.payload_length;
        const Detector detector(c.keys, params);
        expected.push_back(detector.Detect(m.rel, options, c.wm_len).value());
      }
      EXPECT_EQ(expected[0].wm, m.wm)
          << "true keys must recover the mark (prf=" << static_cast<int>(prf)
          << ", threads=" << threads << ")";
      EXPECT_NE(expected[1].wm, m.wm) << "wrong keys must not";

      DetectEngineOptions options;
      options.key_attr = testutil::kKeyAttr;
      options.target_attr = testutil::kTargetAttr;
      options.domain = m.report.domain;
      options.num_threads = threads;
      const DetectEngine engine =
          DetectEngine::Create(m.rel, options).value();
      EXPECT_EQ(engine.dict_keys(), dict_keys);
      EXPECT_EQ(engine.num_rows(), m.rel.NumRows());
      if (dict_keys) {
        EXPECT_LT(engine.num_messages(), m.rel.NumRows())
            << "repeated keys must fold into fewer prepared messages";
      }

      const std::vector<Result<DetectionResult>> many =
          engine.DetectMany(std::span<const KeyCandidate>(candidates));
      ASSERT_EQ(many.size(), candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        ASSERT_TRUE(many[i].ok()) << many[i].status().ToString();
        ExpectSameDetection(many[i].value(), expected[i]);
        EXPECT_EQ(many[i].value().rows_scanned, engine.num_rows());
        EXPECT_EQ(many[i].value().messages_hashed, engine.num_messages());

        const DetectionResult single = engine.Detect(candidates[i]).value();
        ExpectSameDetection(single, expected[i]);
      }
    }
  }
}

TEST(DetectEngineTest, ParityPlainKeys) { RunParitySweep(false); }

TEST(DetectEngineTest, ParityDictKeys) { RunParitySweep(true); }

// ------------------------------------------------------------- edge cases

TEST(DetectEngineTest, EmptyRelationFailsCleanly) {
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"A", ColumnType::kString, true}})
                   .value());
  DetectEngineOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const Result<DetectEngine> engine = DetectEngine::Create(rel, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsFailedPrecondition());
}

TEST(DetectEngineTest, UnknownAttributeFailsCleanly) {
  Relation rel = DictKeyRelation(50);
  DetectEngineOptions options;
  options.key_attr = "NOPE";
  options.target_attr = "A";
  const Result<DetectEngine> engine = DetectEngine::Create(rel, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_TRUE(engine.status().IsNotFound());
}

KeyCandidate PlainCandidate(std::size_t payload_length = 16,
                            std::size_t wm_len = 8) {
  KeyCandidate c;
  c.keys = testutil::TestKeys();
  c.params.e = 5;
  c.params.prf = PrfKind::kKeyedHash;
  c.params.payload_length = payload_length;
  c.wm_len = wm_len;
  return c;
}

TEST(DetectEngineTest, AllNullKeysDetectCleanlyOnBothLayouts) {
  for (const bool dict : {false, true}) {
    Relation rel(Schema::Create({{"K",
                                  dict ? ColumnType::kString
                                       : ColumnType::kInt64,
                                  dict},
                                 {"A", ColumnType::kString, true}})
                     .value());
    for (int i = 0; i < 40; ++i) {
      Row row;
      row.emplace_back();  // NULL key: unfit, never a prepared message
      row.emplace_back(i % 2 == 0 ? "left" : "right");
      rel.AppendRowUnchecked(std::move(row));
    }
    DetectEngineOptions options;
    options.key_attr = "K";
    options.target_attr = "A";
    const DetectEngine engine = DetectEngine::Create(rel, options).value();
    EXPECT_EQ(engine.dict_keys(), dict);
    EXPECT_EQ(engine.num_messages(), 0u);

    const DetectionResult result = engine.Detect(PlainCandidate()).value();
    EXPECT_EQ(result.fit_tuples, 0u);
    EXPECT_EQ(result.usable_votes, 0u);
    EXPECT_EQ(result.positions_present, 0u);
  }
}

TEST(DetectEngineTest, AllNullTargetWithProvidedDomainDetectsCleanly) {
  // Zero live dict entries in the target attribute: detection must run on
  // the provided domain and report zero usable votes, never crash.
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"A", ColumnType::kString, true}})
                   .value());
  for (int i = 0; i < 40; ++i) {
    Row row;
    row.emplace_back(static_cast<std::int64_t>(i));
    row.emplace_back();  // NULL target everywhere
    rel.AppendRowUnchecked(std::move(row));
  }
  DetectEngineOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.domain = CategoricalDomain::FromValues(
                       {Value("left"), Value("right")})
                       .value();
  const DetectEngine engine = DetectEngine::Create(rel, options).value();

  const DetectionResult result = engine.Detect(PlainCandidate()).value();
  EXPECT_GT(result.fit_tuples, 0u);  // fitness is key-only; rows still fit
  EXPECT_EQ(result.usable_votes, 0u);
  EXPECT_EQ(result.positions_present, 0u);

  // And the Detector front door agrees.
  WatermarkParams params;
  params.e = 5;
  params.prf = PrfKind::kKeyedHash;
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.domain = *options.domain;
  detect_options.payload_length = 16;
  const Detector detector(testutil::TestKeys(), params);
  const DetectionResult front = detector.Detect(rel, detect_options, 8).value();
  EXPECT_EQ(front.usable_votes, 0u);
  EXPECT_EQ(front.fit_tuples, result.fit_tuples);
}

TEST(DetectEngineTest, DetectManyIsolatesBadCandidates) {
  const Marked m = EmbedOn(DictKeyRelation(), PrfKind::kKeyedHash);
  std::vector<KeyCandidate> candidates = CandidatesFor(m);
  candidates[1].wm_len = 0;                       // invalid mark length
  candidates[2].keys.k2 = candidates[2].keys.k1;  // k1 == k2
  KeyCandidate zero_e = candidates[0];
  zero_e.params.e = 0;
  candidates.push_back(zero_e);

  DetectEngineOptions options;
  options.key_attr = testutil::kKeyAttr;
  options.target_attr = testutil::kTargetAttr;
  options.domain = m.report.domain;
  const DetectEngine engine = DetectEngine::Create(m.rel, options).value();

  const std::vector<Result<DetectionResult>> results =
      engine.DetectMany(std::span<const KeyCandidate>(candidates));
  ASSERT_EQ(results.size(), candidates.size());
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(results[0].value().wm, m.wm);
  EXPECT_TRUE(results[1].status().IsInvalidArgument());
  EXPECT_TRUE(results[2].status().IsInvalidArgument());
  ASSERT_TRUE(results[3].ok());  // wrong e is a valid (losing) claim
  EXPECT_TRUE(results[4].status().IsInvalidArgument());
}

// ---------------------------------------------------------- service sweep

TEST(DetectEngineTest, SweepOwnershipRanksTrueOwnerFirst) {
  const Marked m = EmbedOn(DictKeyRelation(), PrfKind::kSipHash24);
  EmbedOptions embed_options;
  embed_options.key_attr = testutil::kKeyAttr;
  embed_options.target_attr = testutil::kTargetAttr;

  std::vector<OwnershipCandidate> candidates;
  {
    OwnershipCandidate owner;
    owner.id = "owner";
    owner.certificate = WatermarkCertificate::Create(
        m.keys, m.params, embed_options, m.report, m.wm);
    owner.keys = m.keys;
    candidates.push_back(std::move(owner));
  }
  for (const std::uint64_t seed : {std::uint64_t{41}, std::uint64_t{42}}) {
    OwnershipCandidate impostor;
    impostor.id = "impostor-" + std::to_string(seed);
    // Forged claim: the owner's public certificate with the impostor's keys
    // — the commitment mismatch must be reported, not veto the detection.
    impostor.certificate = candidates[0].certificate;
    impostor.keys = WatermarkKeySet::FromSeed(seed);
    candidates.push_back(std::move(impostor));
  }
  {
    OwnershipCandidate bad;
    bad.id = "bad-attrs";
    bad.certificate = candidates[0].certificate;
    bad.certificate.key_attr = "NO_SUCH_COLUMN";
    bad.keys = m.keys;
    candidates.push_back(std::move(bad));
  }

  const WatermarkService service;
  const SweepReport report =
      service
          .SweepOwnership(m.rel,
                          std::span<const OwnershipCandidate>(candidates))
          .value();

  ASSERT_EQ(report.ranked.size(), 3u);
  EXPECT_EQ(report.ranked[0].id, "owner");
  EXPECT_TRUE(report.ranked[0].commitment_verified);
  EXPECT_TRUE(report.ranked[0].decision.owned);
  EXPECT_EQ(report.ranked[0].detection.wm, m.wm);
  for (std::size_t i = 1; i < report.ranked.size(); ++i) {
    EXPECT_FALSE(report.ranked[i].commitment_verified);
    EXPECT_FALSE(report.ranked[i].decision.owned);
  }
  ASSERT_EQ(report.failed.size(), 1u);
  EXPECT_EQ(report.failed[0].first, "bad-attrs");
  EXPECT_TRUE(report.failed[0].second.IsNotFound());
  // One plan serves the three same-attribute candidates; the bad group
  // never builds one.
  EXPECT_EQ(report.plans_built, 1u);
  EXPECT_GT(report.messages_hashed, 0u);

  // Sweep results match a certificate-driven detection for the true owner.
  const CertifiedDetection certified =
      DetectWithCertificate(m.rel, candidates[0].certificate, m.keys).value();
  ExpectSameDetection(report.ranked[0].detection, certified.detection);
  EXPECT_EQ(report.ranked[0].decision.matched_bits,
            certified.decision.matched_bits);
}

TEST(DetectEngineTest, SweepOwnershipRejectsEmptyCandidateList) {
  const Relation rel = DictKeyRelation(50);
  const WatermarkService service;
  const Result<SweepReport> report =
      service.SweepOwnership(rel, std::span<const OwnershipCandidate>());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

}  // namespace
}  // namespace catmark
