#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/embedding_map.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace catmark {
namespace {

TEST(EmbeddingMapTest, InsertLookupRoundTrip) {
  EmbeddingMap map;
  map.Insert(Value(std::int64_t{7}), 3);
  map.Insert(Value("seven"), 5);
  EXPECT_EQ(map.Lookup(Value(std::int64_t{7})).value(), 3u);
  EXPECT_EQ(map.Lookup(Value("seven")).value(), 5u);
  EXPECT_FALSE(map.Lookup(Value(std::int64_t{8})).has_value());
  // INT64 7 and STRING "7" must stay distinct.
  EXPECT_FALSE(map.Lookup(Value("7")).has_value());
}

TEST(EmbeddingMapTest, HeterogeneousLookupMatchesValueLookup) {
  EmbeddingMap map;
  map.Insert(Value("alpha"), 11);
  std::vector<std::uint8_t> scratch;
  EXPECT_EQ(map.Lookup(EmbeddingMap::SerializeKey(Value("alpha"), scratch))
                .value(),
            11u);
  EXPECT_FALSE(
      map.Lookup(EmbeddingMap::SerializeKey(Value("beta"), scratch))
          .has_value());
}

// ----------------------------------------------------- segment splicing

EmbeddingMap::Segment::value_type Entry(const Value& pk, std::size_t idx) {
  std::vector<std::uint8_t> scratch;
  return {std::string(EmbeddingMap::SerializeKey(pk, scratch)), idx};
}

TEST(EmbeddingMapSegmentTest, SplicedSegmentsMatchSerialInserts) {
  // The sharded apply pass splices per-shard segments in shard order; the
  // result — including Serialize(), whose entry order reflects the map's
  // internal layout — must be indistinguishable from the serial Insert
  // sequence over the same entries.
  EmbeddingMap serial;
  for (int i = 0; i < 40; ++i) {
    serial.Insert(Value(std::int64_t{i * 31}), static_cast<std::size_t>(i));
  }

  EmbeddingMap spliced;
  EmbeddingMap::Segment a, b, c;
  for (int i = 0; i < 13; ++i) {
    a.push_back(Entry(Value(std::int64_t{i * 31}), i));
  }
  for (int i = 13; i < 14; ++i) {  // single-entry shard
    b.push_back(Entry(Value(std::int64_t{i * 31}), i));
  }
  for (int i = 14; i < 40; ++i) {
    c.push_back(Entry(Value(std::int64_t{i * 31}), i));
  }
  spliced.AppendSegment(std::move(a));
  spliced.AppendSegment(std::move(b));
  spliced.AppendSegment(std::move(c));

  EXPECT_EQ(spliced.size(), serial.size());
  EXPECT_EQ(spliced.Serialize(), serial.Serialize());
}

TEST(EmbeddingMapSegmentTest, EmptySegmentsAreNoOps) {
  // All-skip shards splice empty segments — before, between and after
  // non-empty ones.
  EmbeddingMap map;
  map.AppendSegment({});
  EXPECT_TRUE(map.empty());
  map.AppendSegment({Entry(Value("k"), 4)});
  map.AppendSegment({});
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Lookup(Value("k")).value(), 4u);
}

TEST(EmbeddingMapSegmentTest, DuplicateKeyAcrossSegmentsOverwritesLikeInsert) {
  // Insert overwrites on re-insertion; a later segment must do the same so
  // duplicate primary keys behave identically on both apply paths.
  EmbeddingMap serial;
  serial.Insert(Value("dup"), 1);
  serial.Insert(Value("dup"), 9);

  EmbeddingMap spliced;
  spliced.AppendSegment({Entry(Value("dup"), 1)});
  spliced.AppendSegment({Entry(Value("dup"), 9)});

  EXPECT_EQ(spliced.size(), 1u);
  EXPECT_EQ(spliced.Lookup(Value("dup")).value(), 9u);
  EXPECT_EQ(spliced.Serialize(), serial.Serialize());
}

TEST(EmbeddingMapSegmentTest, SegmentsInterleaveWithInserts) {
  // The serial fallback uses Insert while sharded runs splice segments; a
  // map touched by both (e.g. two embedding passes with different thread
  // counts) must stay coherent.
  EmbeddingMap map;
  map.Insert(Value(std::int64_t{1}), 0);
  map.AppendSegment({Entry(Value(std::int64_t{2}), 1)});
  map.Insert(Value(std::int64_t{3}), 2);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.Lookup(Value(std::int64_t{2})).value(), 1u);
}

TEST(EmbeddingMapTest, SerializeDeserializeRoundTrip) {
  EmbeddingMap map;
  map.Insert(Value(std::int64_t{1}), 0);
  map.Insert(Value("x"), 9);
  const EmbeddingMap back = EmbeddingMap::Deserialize(map.Serialize()).value();
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.Lookup(Value("x")).value(), 9u);
}

// Regression: a duplicate key used to silently overwrite the earlier entry,
// leaving the detector voting on a position the embedder never assigned to
// that tuple. Two lines for one PK now reject the whole file.
TEST(EmbeddingMapTest, DeserializeRejectsDuplicateKey) {
  EmbeddingMap map;
  map.Insert(Value(std::int64_t{42}), 1);
  std::string text = map.Serialize();
  const std::size_t comma = text.find(',');
  ASSERT_NE(comma, std::string::npos);
  // Same hex key, different index.
  text += text.substr(0, comma) + ",7\n";
  const Result<EmbeddingMap> r = EmbeddingMap::Deserialize(text);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(EmbeddingMapTest, DeserializeRejectsMalformedLines) {
  EXPECT_FALSE(EmbeddingMap::Deserialize("deadbeef").ok());      // no comma
  EXPECT_FALSE(EmbeddingMap::Deserialize("zz,1\n").ok());        // bad hex
  EXPECT_FALSE(EmbeddingMap::Deserialize("ab,x\n").ok());        // bad index
}

TEST(EmbeddingMapTest, LookupColumnResolvesPlainKeyColumn) {
  const Schema schema =
      Schema::Create({{"K", ColumnType::kInt64, false},
                      {"A", ColumnType::kString, true}},
                     "K")
          .value();
  Relation rel(schema);
  for (std::int64_t k = 0; k < 6; ++k) {
    rel.AppendRowUnchecked({Value(k), Value("v")});
  }
  EmbeddingMap map;
  map.Insert(Value(std::int64_t{1}), 10);
  map.Insert(Value(std::int64_t{4}), 40);

  const std::vector<std::uint64_t> found = map.LookupColumn(rel, 0);
  ASSERT_EQ(found.size(), 6u);
  EXPECT_EQ(found[1], 10u);
  EXPECT_EQ(found[4], 40u);
  EXPECT_EQ(found[0], EmbeddingMap::kNotFound);

  // Masked rows are skipped even when their key is present.
  std::vector<std::uint8_t> mask(6, 0);
  mask[4] = 1;
  const std::vector<std::uint64_t> masked = map.LookupColumn(rel, 0, &mask);
  EXPECT_EQ(masked[1], EmbeddingMap::kNotFound);
  EXPECT_EQ(masked[4], 40u);
}

TEST(EmbeddingMapTest, LookupColumnResolvesDictKeyColumn) {
  // A categorical (dictionary-encoded) key column: each distinct key is
  // probed once and fanned out by code.
  const Schema schema =
      Schema::Create({{"A", ColumnType::kString, true},
                      {"B", ColumnType::kString, true}},
                     "")
          .value();
  Relation rel(schema);
  rel.AppendRowUnchecked({Value("x"), Value("p")});
  rel.AppendRowUnchecked({Value("y"), Value("q")});
  rel.AppendRowUnchecked({Value("x"), Value("r")});
  rel.AppendRowUnchecked({Value(), Value("s")});
  EmbeddingMap map;
  map.Insert(Value("x"), 2);

  const std::vector<std::uint64_t> found = map.LookupColumn(rel, 0);
  ASSERT_EQ(found.size(), 4u);
  EXPECT_EQ(found[0], 2u);
  EXPECT_EQ(found[1], EmbeddingMap::kNotFound);
  EXPECT_EQ(found[2], 2u);
  EXPECT_EQ(found[3], EmbeddingMap::kNotFound);  // NULL key
}

}  // namespace
}  // namespace catmark
