#ifndef CATMARK_TESTS_TEST_UTIL_H_
#define CATMARK_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <string>

#include "common/bitvec.h"
#include "core/keys.h"
#include "gen/sales_gen.h"
#include "relation/relation.h"

namespace catmark {
namespace testutil {

/// Column names of the fixture relation returned by SmallKeyedRelation().
inline constexpr char kKeyAttr[] = "K";
inline constexpr char kTargetAttr[] = "A";

/// Deterministic (K INT64 PRIMARY KEY, A STRING CATEGORICAL) fixture.
Relation SmallKeyedRelation(std::size_t num_tuples = 2000,
                            std::size_t domain_size = 40,
                            std::uint64_t seed = 42);

/// Deterministic key set shared by suites that embed + detect.
WatermarkKeySet TestKeys(std::uint64_t seed = 7);

/// Deterministic pseudo-random watermark of `bits` bits.
BitVector TestWatermark(std::size_t bits, std::uint64_t seed = 99);

}  // namespace testutil
}  // namespace catmark

#endif  // CATMARK_TESTS_TEST_UTIL_H_
