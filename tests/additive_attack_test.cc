// The additive watermark attack (paper Section 6 future work): Mallory
// marks the owner's marked data with his own keys. These tests establish
// the two facts the dispute analysis rests on: additive marking does not
// remove the first mark, and both parties detect — so resolution must come
// from key commitment, which the "mark in the original" test provides.

#include <gtest/gtest.h>

#include "core/additive_attack.h"
#include "core/decision.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

struct OwnerData {
  Relation original;       // the owner's pre-watermark data (owner-private)
  Relation marked;         // what was published
  WatermarkKeySet keys = WatermarkKeySet::FromSeed(101);
  WatermarkParams params;
  BitVector wm;
  EmbedReport report;
};

OwnerData MakeOwner() {
  OwnerData o;
  KeyedCategoricalConfig gen;
  gen.num_tuples = 9000;
  gen.domain_size = 150;
  gen.seed = 101;
  o.original = GenerateKeyedCategorical(gen);
  o.marked = o.original;
  o.params.e = 30;
  o.wm = MakeWatermark(12, 101);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  o.report = Embedder(o.keys, o.params)
                 .Embed(o.marked, options, o.wm)
                 .value();
  return o;
}

DetectionResult DetectWith(const Relation& rel, const WatermarkKeySet& keys,
                           const WatermarkParams& params,
                           std::size_t payload_length, std::size_t wm_len) {
  const Detector detector(keys, params);
  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = payload_length;
  return detector.Detect(rel, options, wm_len).value();
}

TEST(AdditiveAttackTest, OwnersMarkSurvivesAdditiveMarking) {
  const OwnerData owner = MakeOwner();
  const AdditiveAttackResult attack =
      AdditiveWatermarkAttack(owner.marked, "K", "A", owner.params, 12, 999)
          .value();
  const DetectionResult detection =
      DetectWith(attack.relation, owner.keys, owner.params,
                 owner.report.payload_length, owner.wm.size());
  const MatchStats stats = MatchWatermark(owner.wm, detection.wm);
  // Mallory altered only ~N/e tuples; collisions damage at most a bit or
  // two of the owner's ECC-protected mark.
  EXPECT_GE(stats.match_fraction, 10.0 / 12.0);
  EXPECT_TRUE(DecideOwnership(owner.wm, detection.wm, 1e-3).owned);
}

TEST(AdditiveAttackTest, MalloryAlsoDetectsHisMark) {
  // Which is exactly why detection alone cannot arbitrate ownership.
  const OwnerData owner = MakeOwner();
  const AdditiveAttackResult attack =
      AdditiveWatermarkAttack(owner.marked, "K", "A", owner.params, 12, 998)
          .value();
  const DetectionResult detection =
      DetectWith(attack.relation, attack.mallory_keys, owner.params,
                 attack.mallory_report.payload_length,
                 attack.mallory_wm.size());
  EXPECT_TRUE(
      DecideOwnership(attack.mallory_wm, detection.wm, 1e-3).owned);
}

TEST(AdditiveAttackTest, KeyCommitmentResolvesTheDispute) {
  // The asymmetry that settles court: the owner's mark is detectable in
  // MALLORY's "original" (his copy pre-dates nothing — it IS the owner's
  // publication), while Mallory's mark is NOT detectable in the owner's
  // true original, which only the owner can produce.
  const OwnerData owner = MakeOwner();
  const AdditiveAttackResult attack =
      AdditiveWatermarkAttack(owner.marked, "K", "A", owner.params, 12, 997)
          .value();

  // Owner's mark in the data Mallory claims as his original:
  const DetectionResult owner_in_mallory =
      DetectWith(owner.marked, owner.keys, owner.params,
                 owner.report.payload_length, owner.wm.size());
  EXPECT_TRUE(DecideOwnership(owner.wm, owner_in_mallory.wm, 1e-3).owned);

  // Mallory's mark in the owner's true original:
  const DetectionResult mallory_in_owner =
      DetectWith(owner.original, attack.mallory_keys, owner.params,
                 attack.mallory_report.payload_length,
                 attack.mallory_wm.size());
  EXPECT_FALSE(
      DecideOwnership(attack.mallory_wm, mallory_in_owner.wm, 1e-3).owned);
}

TEST(AdditiveAttackTest, AttackAltersOnlyAboutNOverETuples) {
  const OwnerData owner = MakeOwner();
  const AdditiveAttackResult attack =
      AdditiveWatermarkAttack(owner.marked, "K", "A", owner.params, 12, 996)
          .value();
  EXPECT_LT(attack.mallory_report.alteration_fraction, 1.5 / 30.0);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < owner.marked.NumRows(); ++i) {
    if (!(attack.relation.Get(i, 1) == owner.marked.Get(i, 1))) ++changed;
  }
  EXPECT_EQ(changed, attack.mallory_report.altered_tuples);
}

TEST(AdditiveAttackTest, RepeatedAdditiveMarkingDegradesGracefully) {
  // Even a stack of three additive marks leaves the owner's mark standing
  // (each pass touches ~1/e of the tuples).
  const OwnerData owner = MakeOwner();
  Relation stacked = owner.marked;
  for (std::uint64_t seed = 300; seed < 303; ++seed) {
    stacked = AdditiveWatermarkAttack(stacked, "K", "A", owner.params, 12,
                                      seed)
                  .value()
                  .relation;
  }
  const DetectionResult detection =
      DetectWith(stacked, owner.keys, owner.params,
                 owner.report.payload_length, owner.wm.size());
  EXPECT_TRUE(DecideOwnership(owner.wm, detection.wm, 1e-2).owned);
}

TEST(AdditiveAttackTest, RejectsEmptyMalloryMark) {
  const OwnerData owner = MakeOwner();
  EXPECT_FALSE(
      AdditiveWatermarkAttack(owner.marked, "K", "A", owner.params, 0, 1)
          .ok());
}

}  // namespace
}  // namespace catmark
