#include <gtest/gtest.h>

#include <memory>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "core/freq_mark.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "quality/plugins.h"
#include "relation/ops.h"

namespace catmark {
namespace {

Relation SkewedRelation(std::size_t n = 20000, std::size_t domain = 60,
                        std::uint64_t seed = 51) {
  KeyedCategoricalConfig config;
  config.num_tuples = n;
  config.domain_size = domain;
  config.zipf_s = 1.0;
  config.seed = seed;
  return GenerateKeyedCategorical(config);
}

FreqMarkParams DefaultParams() {
  FreqMarkParams params;
  params.quantization_step = 0.02;
  return params;
}

TEST(FreqMarkTest, CleanRoundTrip) {
  Relation rel = SkewedRelation();
  const FrequencyMarker marker(SecretKey::FromSeed(1), DefaultParams());
  const BitVector wm = MakeWatermark(8, 1);
  const FreqEmbedReport report = marker.Embed(rel, "A", wm).value();
  EXPECT_GT(report.tuples_moved, 0u);
  const FreqDetectReport detect = marker.Detect(rel, "A", wm.size()).value();
  EXPECT_EQ(detect.wm, wm);
}

TEST(FreqMarkTest, EmbeddingRecentersMasses) {
  Relation rel = SkewedRelation();
  const FrequencyMarker marker(SecretKey::FromSeed(2), DefaultParams());
  const BitVector wm = MakeWatermark(8, 2);
  const FreqEmbedReport report = marker.Embed(rel, "A", wm).value();
  // Re-centred masses leave a healthy margin to the cell edges (>= ~1/3 of
  // the half-step, minus the residual-balancing nudges).
  EXPECT_GT(report.min_cell_margin, DefaultParams().quantization_step / 6);
}

TEST(FreqMarkTest, SurvivesExtremeVerticalPartition) {
  // The Section 4.2 scenario: Mallory keeps ONLY attribute A.
  Relation rel = SkewedRelation();
  const FrequencyMarker marker(SecretKey::FromSeed(3), DefaultParams());
  const BitVector wm = MakeWatermark(8, 3);
  ASSERT_TRUE(marker.Embed(rel, "A", wm).ok());
  const Relation only_a = VerticalPartitionAttack(rel, {"A"}).value();
  EXPECT_EQ(marker.Detect(only_a, "A", wm.size()).value().wm, wm);
}

TEST(FreqMarkTest, SurvivesSubsetSelection) {
  // Normalized masses make the channel A1-invariant up to sampling noise.
  Relation rel = SkewedRelation(40000);
  const FrequencyMarker marker(SecretKey::FromSeed(4), DefaultParams());
  const BitVector wm = MakeWatermark(8, 4);
  ASSERT_TRUE(marker.Embed(rel, "A", wm).ok());
  const Relation kept = HorizontalPartitionAttack(rel, 0.5, 44).value();
  const FreqDetectReport detect = marker.Detect(kept, "A", wm.size()).value();
  const MatchStats stats = MatchWatermark(wm, detect.wm);
  EXPECT_GE(stats.match_fraction, 7.0 / 8.0);
}

TEST(FreqMarkTest, SurvivesResorting) {
  Relation rel = SkewedRelation();
  const FrequencyMarker marker(SecretKey::FromSeed(5), DefaultParams());
  const BitVector wm = MakeWatermark(8, 5);
  ASSERT_TRUE(marker.Embed(rel, "A", wm).ok());
  const Relation shuffled = ResortAttack(rel, 55);
  EXPECT_EQ(marker.Detect(shuffled, "A", wm.size()).value().wm, wm);
}

TEST(FreqMarkTest, WrongKeyReadsNoise) {
  Relation rel = SkewedRelation();
  const FrequencyMarker marker(SecretKey::FromSeed(6), DefaultParams());
  const BitVector wm = MakeWatermark(8, 6);
  ASSERT_TRUE(marker.Embed(rel, "A", wm).ok());
  const FrequencyMarker wrong(SecretKey::FromSeed(999), DefaultParams());
  const FreqDetectReport detect = wrong.Detect(rel, "A", wm.size()).value();
  // Wrong grouping: the parities are essentially random.
  EXPECT_LT(MatchWatermark(wm, detect.wm).matched_bits, 8u);
}

TEST(FreqMarkTest, MinimizesItemsChanged) {
  // Cost should be on the order of |wm| * q/2 of the tuples, not more than
  // ~|wm| * q of them.
  Relation rel = SkewedRelation();
  const FrequencyMarker marker(SecretKey::FromSeed(7), DefaultParams());
  const BitVector wm = MakeWatermark(8, 7);
  const FreqEmbedReport report = marker.Embed(rel, "A", wm).value();
  const double bound = 8 * DefaultParams().quantization_step *
                       static_cast<double>(rel.NumRows());
  EXPECT_LE(static_cast<double>(report.tuples_moved), bound);
}

TEST(FreqMarkTest, GroupAssignmentIsKeyedAndStable) {
  const FrequencyMarker a(SecretKey::FromSeed(8), DefaultParams());
  const FrequencyMarker b(SecretKey::FromSeed(9), DefaultParams());
  const Value v("V0001");
  EXPECT_EQ(a.GroupOf(v, 8), a.GroupOf(v, 8));
  bool any_difference = false;
  for (int i = 0; i < 50; ++i) {
    const Value vi("V" + std::to_string(i));
    if (a.GroupOf(vi, 8) != b.GroupOf(vi, 8)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FreqMarkTest, RejectsTooSmallDomain) {
  Relation rel = SkewedRelation(5000, 10);
  const FrequencyMarker marker(SecretKey::FromSeed(10), DefaultParams());
  // nA = 10 < 2 * |wm| = 16.
  EXPECT_FALSE(marker.Embed(rel, "A", MakeWatermark(8, 10)).ok());
}

TEST(FreqMarkTest, RejectsTooFineQuantization) {
  Relation rel = SkewedRelation(500, 60);
  FreqMarkParams params;
  params.quantization_step = 0.001;  // q*N = 0.5 < 2
  const FrequencyMarker marker(SecretKey::FromSeed(11), params);
  EXPECT_FALSE(marker.Embed(rel, "A", MakeWatermark(8, 11)).ok());
}

TEST(FreqMarkTest, RejectsEmptyWatermarkAndUnknownColumn) {
  Relation rel = SkewedRelation(2000);
  const FrequencyMarker marker(SecretKey::FromSeed(12), DefaultParams());
  EXPECT_FALSE(marker.Embed(rel, "A", BitVector()).ok());
  EXPECT_FALSE(marker.Embed(rel, "NOPE", MakeWatermark(8, 12)).ok());
  EXPECT_FALSE(marker.Detect(rel, "A", 0).ok());
}

TEST(FreqMarkTest, QualityAssessorCanVetoMoves) {
  Relation rel = SkewedRelation();
  const FrequencyMarker marker(SecretKey::FromSeed(13), DefaultParams());
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<MaxAlterationsPlugin>(0.0));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  const Relation before = rel;
  const FreqEmbedReport report =
      marker.Embed(rel, "A", MakeWatermark(8, 13), std::nullopt, &assessor)
          .value();
  EXPECT_EQ(report.tuples_moved, 0u);
  EXPECT_TRUE(rel.SameContent(before));
}

TEST(FreqMarkTest, CombinesWithKeyBasedMark) {
  // Frequency-domain marking is "an additional (or alternate) encoding
  // channel" (Section 3.1): both marks must coexist... the frequency pass
  // moves few tuples, so the key-based mark survives mostly intact.
  Relation rel = SkewedRelation(30000);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(14);
  WatermarkParams params;
  params.e = 30;
  const BitVector wm = MakeWatermark(10, 14);

  Embedder embedder(keys, params);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport key_report = embedder.Embed(rel, options, wm).value();

  const FrequencyMarker marker(keys.k2, DefaultParams());
  const BitVector freq_wm = MakeWatermark(8, 15);
  ASSERT_TRUE(marker.Embed(rel, "A", freq_wm).ok());

  // Frequency mark reads back exactly.
  EXPECT_EQ(marker.Detect(rel, "A", freq_wm.size()).value().wm, freq_wm);

  // Key-based mark survives with at most mild damage.
  Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = key_report.payload_length;
  detect_options.domain = key_report.domain;
  const DetectionResult detection =
      detector.Detect(rel, detect_options, wm.size()).value();
  EXPECT_GE(MatchWatermark(wm, detection.wm).match_fraction, 0.9);
}

}  // namespace
}  // namespace catmark
