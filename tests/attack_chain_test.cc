// Parameterized attack-chain properties: the mark must survive (to a
// quantified degree) every realistic composition of the Section 2.3
// attacks, and the attacks themselves must preserve the invariants they
// claim (sizes, schemas, key sets).

#include <gtest/gtest.h>

#include <tuple>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

enum class Step { kResort, kAlter10, kAlter20, kLoss30, kAdd20 };

std::string StepName(Step s) {
  switch (s) {
    case Step::kResort:
      return "Resort";
    case Step::kAlter10:
      return "Alter10";
    case Step::kAlter20:
      return "Alter20";
    case Step::kLoss30:
      return "Loss30";
    case Step::kAdd20:
      return "Add20";
  }
  return "?";
}

Result<Relation> ApplyStep(const Relation& rel, Step step,
                           std::uint64_t seed) {
  switch (step) {
    case Step::kResort:
      return ResortAttack(rel, seed);
    case Step::kAlter10:
      return SubsetAlterationAttack(rel, "A", 0.10, seed);
    case Step::kAlter20:
      return SubsetAlterationAttack(rel, "A", 0.20, seed);
    case Step::kLoss30:
      return HorizontalPartitionAttack(rel, 0.70, seed);
    case Step::kAdd20:
      return SubsetAdditionAttack(rel, 0.20, seed);
  }
  return Status::Internal("unhandled step");
}

using Chain = std::vector<Step>;

std::string ChainName(const ::testing::TestParamInfo<Chain>& info) {
  std::string out;
  for (const Step s : info.param) out += StepName(s);
  return out;
}

class AttackChainProperty : public ::testing::TestWithParam<Chain> {};

TEST_P(AttackChainProperty, MarkSurvivesChain) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 12000;
  gen.domain_size = 150;
  gen.seed = 777;
  Relation rel = GenerateKeyedCategorical(gen);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(777);
  WatermarkParams params;
  params.e = 30;
  const BitVector wm = MakeWatermark(10, 777);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, options, wm).value();

  std::uint64_t seed = 1000;
  for (const Step step : GetParam()) {
    Result<Relation> next = ApplyStep(rel, step, seed++);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    rel = std::move(next).value();
  }

  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;
  const DetectionResult detection =
      detector.Detect(rel, detect_options, wm.size()).value();
  const MatchStats stats = MatchWatermark(wm, detection.wm);
  // Every chain here stays within the regime the paper claims resilience
  // for (<=20% alterations, <=~50% cumulative loss, additions): the mark
  // must remain court-usable.
  EXPECT_GE(stats.match_fraction, 0.8)
      << "chain destroyed the mark: " << stats.mark_alteration;
}

INSTANTIATE_TEST_SUITE_P(
    Chains, AttackChainProperty,
    ::testing::Values(
        Chain{Step::kResort},
        Chain{Step::kAlter10, Step::kResort},
        Chain{Step::kLoss30, Step::kAlter10},
        Chain{Step::kAdd20, Step::kLoss30},
        Chain{Step::kResort, Step::kAdd20, Step::kAlter10},
        Chain{Step::kAlter10, Step::kLoss30, Step::kAdd20},
        Chain{Step::kLoss30, Step::kLoss30},
        Chain{Step::kAlter20, Step::kAdd20, Step::kResort},
        Chain{Step::kAdd20, Step::kAdd20},
        Chain{Step::kLoss30, Step::kAlter20, Step::kResort, Step::kAdd20}),
    ChainName);

// ----------------------------------------------------- attack invariants

TEST(AttackInvariantsTest, AttacksPreserveSchema) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.seed = 778;
  const Relation rel = GenerateKeyedCategorical(gen);
  for (const Step step : {Step::kResort, Step::kAlter10, Step::kLoss30,
                          Step::kAdd20}) {
    const Relation out = ApplyStep(rel, step, 5).value();
    EXPECT_TRUE(out.schema() == rel.schema()) << StepName(step);
  }
}

TEST(AttackInvariantsTest, AlterationNeverTouchesKeys) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.seed = 779;
  const Relation rel = GenerateKeyedCategorical(gen);
  const Relation out = ApplyStep(rel, Step::kAlter20, 6).value();
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    ASSERT_EQ(out.Get(i, 0).AsInt64(), rel.Get(i, 0).AsInt64());
  }
}

TEST(AttackInvariantsTest, ChainsAreDeterministicPerSeed) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 1000;
  gen.seed = 780;
  const Relation rel = GenerateKeyedCategorical(gen);
  const Relation a = ApplyStep(ApplyStep(rel, Step::kLoss30, 7).value(),
                               Step::kAlter10, 8)
                         .value();
  const Relation b = ApplyStep(ApplyStep(rel, Step::kLoss30, 7).value(),
                               Step::kAlter10, 8)
                         .value();
  EXPECT_TRUE(a.SameContent(b));
}

}  // namespace
}  // namespace catmark
