#include "test_util.h"

#include "random/rng.h"

namespace catmark {
namespace testutil {

Relation SmallKeyedRelation(std::size_t num_tuples, std::size_t domain_size,
                            std::uint64_t seed) {
  KeyedCategoricalConfig config;
  config.num_tuples = num_tuples;
  config.domain_size = domain_size;
  config.zipf_s = 0.8;
  config.seed = seed;
  return GenerateKeyedCategorical(config);
}

WatermarkKeySet TestKeys(std::uint64_t seed) {
  return WatermarkKeySet::FromSeed(seed);
}

BitVector TestWatermark(std::size_t bits, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return BitVector::FromGenerator(bits, [&rng] { return rng.Next(); });
}

}  // namespace testutil
}  // namespace catmark
