#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

Relation StandardRelation(std::size_t n = 3000, std::uint64_t seed = 31) {
  KeyedCategoricalConfig config;
  config.num_tuples = n;
  config.domain_size = 100;
  config.seed = seed;
  return GenerateKeyedCategorical(config);
}

EmbedOptions KA() {
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  return options;
}

DetectOptions DetectKA(const EmbedReport& report) {
  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = report.payload_length;
  options.domain = report.domain;
  return options;
}

struct Marked {
  Relation rel;
  BitVector wm;
  EmbedReport report;
  WatermarkKeySet keys;
  WatermarkParams params;
};

Marked EmbedStandard(std::uint64_t seed, std::uint64_t e = 30,
                     std::size_t n = 3000) {
  Marked m;
  m.rel = StandardRelation(n, seed);
  m.keys = WatermarkKeySet::FromSeed(seed);
  m.params.e = e;
  m.wm = MakeWatermark(10, seed);
  const Embedder embedder(m.keys, m.params);
  m.report = embedder.Embed(m.rel, KA(), m.wm).value();
  return m;
}

// ------------------------------------------------------------- round trips

TEST(DetectorTest, CleanRoundTripRecoversWatermark) {
  const Marked m = EmbedStandard(1);
  const Detector detector(m.keys, m.params);
  const DetectionResult result =
      detector.Detect(m.rel, DetectKA(m.report), m.wm.size()).value();
  EXPECT_EQ(result.wm, m.wm);
  EXPECT_EQ(result.fit_tuples, m.report.fit_tuples);
  EXPECT_GT(result.payload_fill, 0.5);
}

TEST(DetectorTest, BlindDetectionWithoutExplicitDomain) {
  // Fully blind: the detector derives the domain from the suspect data.
  const Marked m = EmbedStandard(2);
  const Detector detector(m.keys, m.params);
  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = m.report.payload_length;
  const DetectionResult result =
      detector.Detect(m.rel, options, m.wm.size()).value();
  EXPECT_EQ(result.wm, m.wm);
}

TEST(DetectorTest, BlindDetectionWithDerivedPayloadLength) {
  // When no tuples were added/removed, deriving N/e at detect time matches.
  const Marked m = EmbedStandard(3);
  const Detector detector(m.keys, m.params);
  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const DetectionResult result =
      detector.Detect(m.rel, options, m.wm.size()).value();
  EXPECT_EQ(result.wm, m.wm);
}

TEST(DetectorTest, WrongKeysDecodeGarbage) {
  const Marked m = EmbedStandard(4);
  const Detector wrong(WatermarkKeySet::FromSeed(999), m.params);
  const DetectionResult result =
      wrong.Detect(m.rel, DetectKA(m.report), m.wm.size()).value();
  const MatchStats stats = MatchWatermark(m.wm, result.wm);
  // A wrong key reads random bits: expect ~half the bits to match.
  EXPECT_LT(stats.matched_bits, m.wm.size());
}

TEST(DetectorTest, SurvivesResortAttack) {
  const Marked m = EmbedStandard(5);
  const Relation shuffled = ResortAttack(m.rel, 55);
  const Detector detector(m.keys, m.params);
  const DetectionResult result =
      detector.Detect(shuffled, DetectKA(m.report), m.wm.size()).value();
  EXPECT_EQ(result.wm, m.wm) << "A4 re-sorting must not affect detection";
}

TEST(DetectorTest, SurvivesModerateDataLoss) {
  const Marked m = EmbedStandard(6, 20, 6000);
  const Relation kept = HorizontalPartitionAttack(m.rel, 0.5, 66).value();
  const Detector detector(m.keys, m.params);
  const DetectionResult result =
      detector.Detect(kept, DetectKA(m.report), m.wm.size()).value();
  const MatchStats stats = MatchWatermark(m.wm, result.wm);
  EXPECT_GE(stats.match_fraction, 0.9);
}

TEST(DetectorTest, SurvivesSubsetAddition) {
  const Marked m = EmbedStandard(7, 20, 6000);
  const Relation enlarged = SubsetAdditionAttack(m.rel, 0.5, 77).value();
  const Detector detector(m.keys, m.params);
  const DetectionResult result =
      detector.Detect(enlarged, DetectKA(m.report), m.wm.size()).value();
  const MatchStats stats = MatchWatermark(m.wm, result.wm);
  // Added tuples vote randomly on random positions; majority voting plus
  // per-position tallies absorb them.
  EXPECT_GE(stats.match_fraction, 0.9);
}

TEST(DetectorTest, EmbeddingMapVariantRoundTrips) {
  Relation rel = StandardRelation(3000, 8);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(8);
  WatermarkParams params;
  params.e = 30;
  const BitVector wm = MakeWatermark(10, 8);
  EmbedOptions options = KA();
  options.build_embedding_map = true;
  const Embedder embedder(keys, params);
  const EmbedReport report = embedder.Embed(rel, options, wm).value();
  ASSERT_GT(report.embedding_map.size(), 0u);

  const Detector detector(keys, params);
  DetectOptions detect_options = DetectKA(report);
  detect_options.embedding_map = &report.embedding_map;
  const DetectionResult result =
      detector.Detect(rel, detect_options, wm.size()).value();
  EXPECT_EQ(result.wm, wm);
}

TEST(DetectorTest, EmbeddingMapSerializationRoundTrips) {
  Relation rel = StandardRelation(1000, 9);
  EmbedOptions options = KA();
  options.build_embedding_map = true;
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(9);
  const Embedder embedder(keys, WatermarkParams{});
  const BitVector wm = MakeWatermark(10, 9);
  const EmbedReport report = embedder.Embed(rel, options, wm).value();

  const EmbeddingMap restored =
      EmbeddingMap::Deserialize(report.embedding_map.Serialize()).value();
  EXPECT_EQ(restored.size(), report.embedding_map.size());

  const Detector detector(keys, WatermarkParams{});
  DetectOptions detect_options = DetectKA(report);
  detect_options.embedding_map = &restored;
  EXPECT_EQ(detector.Detect(rel, detect_options, wm.size()).value().wm, wm);
}

TEST(DetectorTest, MsbModeRoundTrips) {
  Relation rel = StandardRelation(3000, 10);
  WatermarkParams params;
  params.bit_index_mode = BitIndexMode::kMsbModL;
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(10);
  const BitVector wm = MakeWatermark(10, 10);
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, KA(), wm).value();
  DetectOptions options = DetectKA(report);
  EXPECT_EQ(Detector(keys, params).Detect(rel, options, wm.size()).value().wm,
            wm);
}

TEST(DetectorTest, AllHashAlgorithmsRoundTrip) {
  for (const HashAlgorithm algo :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    Relation rel = StandardRelation(2000, 11);
    WatermarkParams params;
    params.e = 20;  // ~10 payload positions per wm bit: reliable coverage
    params.hash_algo = algo;
    const WatermarkKeySet keys = WatermarkKeySet::FromSeed(11);
    const BitVector wm = MakeWatermark(10, 11);
    const EmbedReport report =
        Embedder(keys, params).Embed(rel, KA(), wm).value();
    DetectOptions options = DetectKA(report);
    EXPECT_EQ(
        Detector(keys, params).Detect(rel, options, wm.size()).value().wm, wm)
        << HashAlgorithmName(algo);
  }
}

TEST(DetectorTest, SweepCachedTargetIndexMatchesLazyDetection) {
  // A detection sweep builds the domain-index view once and reuses it for
  // every key; the result must be identical to the lazy per-call path.
  const Marked m = EmbedStandard(15);
  const ValueIndexColumn view =
      ValueIndexColumn::Build(m.rel, 1, m.report.domain);
  for (const std::uint64_t key_seed : {15ull, 99ull, 100ull}) {
    const Detector detector(WatermarkKeySet::FromSeed(key_seed), m.params);
    DetectOptions lazy = DetectKA(m.report);
    const DetectionResult lazy_result =
        detector.Detect(m.rel, lazy, m.wm.size()).value();
    DetectOptions cached = DetectKA(m.report);
    cached.target_index = &view;
    const DetectionResult cached_result =
        detector.Detect(m.rel, cached, m.wm.size()).value();
    EXPECT_EQ(cached_result.wm, lazy_result.wm);
    EXPECT_EQ(cached_result.usable_votes, lazy_result.usable_votes);
    EXPECT_EQ(cached_result.positions_present, lazy_result.positions_present);
  }
}

TEST(DetectorTest, RejectsMismatchedTargetIndex) {
  const Marked m = EmbedStandard(17);
  Relation half(m.rel.schema());
  for (std::size_t j = 0; j < m.rel.NumRows() / 2; ++j) {
    half.AppendRowUnchecked(m.rel.row(j));
  }
  const ValueIndexColumn stale =
      ValueIndexColumn::Build(m.rel, 1, m.report.domain);
  const Detector detector(m.keys, m.params);
  DetectOptions options = DetectKA(m.report);
  options.target_index = &stale;
  const Status status = detector.Detect(half, options, 10).status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

// ------------------------------------------------------------- error paths

TEST(DetectorTest, RejectsZeroLengthWatermark) {
  const Marked m = EmbedStandard(12);
  const Detector detector(m.keys, m.params);
  EXPECT_FALSE(detector.Detect(m.rel, DetectKA(m.report), 0).ok());
}

TEST(DetectorTest, RejectsUnknownColumns) {
  const Marked m = EmbedStandard(13);
  const Detector detector(m.keys, m.params);
  DetectOptions options;
  options.key_attr = "NOPE";
  options.target_attr = "A";
  EXPECT_FALSE(detector.Detect(m.rel, options, 10).ok());
}

TEST(DetectorTest, RejectsEmptyRelation) {
  const Marked m = EmbedStandard(14);
  Relation empty(m.rel.schema());
  const Detector detector(m.keys, m.params);
  EXPECT_FALSE(detector.Detect(empty, DetectKA(m.report), 10).ok());
}

// Regression: deriving the payload length from a suspect relation smaller
// than e used to silently floor N/e to |wm| and "succeed" with no usable
// channel; it is now an explicit precondition failure. Owner-side
// payload_length keeps working on arbitrarily small suspects.
TEST(DetectorTest, DerivedPayloadLengthFailsWhenEExceedsSuspectSize) {
  const Marked m = EmbedStandard(16, 30);
  Relation tiny(m.rel.schema());
  for (std::size_t j = 0; j < 20; ++j) {
    tiny.AppendRowUnchecked(m.rel.row(j));
  }
  const Detector detector(m.keys, m.params);
  DetectOptions derived;
  derived.key_attr = "K";
  derived.target_attr = "A";
  derived.domain = m.report.domain;
  const Status status = detector.Detect(tiny, derived, 10).status();
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();

  // The explicit owner-side payload length is unaffected.
  EXPECT_TRUE(detector.Detect(tiny, DetectKA(m.report), 10).ok());
}

// -------------------------------------------------------------- MatchStats

TEST(MatchStatsTest, PerfectMatch) {
  const BitVector wm = MakeWatermark(10, 15);
  const MatchStats stats = MatchWatermark(wm, wm);
  EXPECT_EQ(stats.matched_bits, 10u);
  EXPECT_DOUBLE_EQ(stats.match_fraction, 1.0);
  EXPECT_DOUBLE_EQ(stats.mark_alteration, 0.0);
  // (1/2)^10 — the Section 4.4 false-claim probability.
  EXPECT_NEAR(stats.false_match_probability, 1.0 / 1024.0, 1e-12);
}

TEST(MatchStatsTest, PartialMatch) {
  const BitVector a = BitVector::FromString("1111100000").value();
  const BitVector b = BitVector::FromString("1111111111").value();
  const MatchStats stats = MatchWatermark(a, b);
  EXPECT_EQ(stats.matched_bits, 5u);
  EXPECT_DOUBLE_EQ(stats.mark_alteration, 0.5);
  EXPECT_GT(stats.false_match_probability, 0.5);
}

TEST(MatchStatsTest, TotalMismatch) {
  const BitVector a = BitVector(8, 0);
  const BitVector b = BitVector(8, 1);
  const MatchStats stats = MatchWatermark(a, b);
  EXPECT_EQ(stats.matched_bits, 0u);
  EXPECT_DOUBLE_EQ(stats.mark_alteration, 1.0);
  EXPECT_FALSE(stats.length_mismatch);
}

// Regression: a length mismatch (usually a payload-length mix-up between
// embed and detect) used to CHECK-crash the whole process. It now scores
// the overhang as mismatched bits and flags the condition.
TEST(MatchStatsTest, LengthMismatchIsToleratedAndFlagged) {
  const BitVector expected = BitVector::FromString("1111111111").value();
  const BitVector decoded = BitVector::FromString("1111").value();
  const MatchStats stats = MatchWatermark(expected, decoded);
  EXPECT_TRUE(stats.length_mismatch);
  EXPECT_EQ(stats.total_bits, 10u);
  EXPECT_EQ(stats.matched_bits, 4u);
  EXPECT_DOUBLE_EQ(stats.match_fraction, 0.4);
  EXPECT_DOUBLE_EQ(stats.mark_alteration, 0.6);
}

TEST(MatchStatsTest, LengthMismatchIsSymmetricInTotal) {
  const BitVector shorter = BitVector(3, 1);
  const BitVector longer = BitVector(12, 1);
  EXPECT_EQ(MatchWatermark(shorter, longer).total_bits, 12u);
  EXPECT_EQ(MatchWatermark(longer, shorter).total_bits, 12u);
  EXPECT_EQ(MatchWatermark(shorter, longer).matched_bits, 3u);
}

TEST(MatchStatsTest, EmptyAgainstNonEmptyDoesNotCrash) {
  const BitVector empty;
  const BitVector mark = BitVector(8, 1);
  const MatchStats stats = MatchWatermark(empty, mark);
  EXPECT_TRUE(stats.length_mismatch);
  EXPECT_EQ(stats.matched_bits, 0u);
  EXPECT_EQ(stats.total_bits, 8u);
}

}  // namespace
}  // namespace catmark
