#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "random/distributions.h"
#include "random/rng.h"
#include "random/stats.h"

namespace catmark {
namespace {

// --------------------------------------------------------------------- RNG

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(42), b(42), c(43);
  const std::uint64_t a1 = a.Next();
  EXPECT_EQ(a1, b.Next());
  EXPECT_NE(a1, c.Next());
}

TEST(Xoshiro256Test, DeterministicPerSeed) {
  Xoshiro256ss a(7), b(7), c(8);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  EXPECT_NE(Xoshiro256ss(7).Next(), c.Next());
}

TEST(Xoshiro256Test, NextBoundedStaysInRange) {
  Xoshiro256ss rng(1);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, NextBoundedOneAlwaysZero) {
  Xoshiro256ss rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256ss rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256Test, NextBoolMatchesProbability) {
  Xoshiro256ss rng(4);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Xoshiro256Test, BoundedIsRoughlyUniform) {
  Xoshiro256ss rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

// ------------------------------------------------------------------- Zipf

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfDistribution zipf(100, 1.0);
  double sum = 0;
  for (std::size_t k = 0; k < 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  const ZipfDistribution zipf(50, 1.2);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1));
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  const ZipfDistribution zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
}

TEST(ZipfTest, SampleMatchesPmf) {
  const ZipfDistribution zipf(20, 1.0);
  Xoshiro256ss rng(6);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.Pmf(k), 0.01)
        << "rank " << k;
  }
}

TEST(ZipfTest, SingleValueDomain) {
  const ZipfDistribution zipf(1, 1.0);
  Xoshiro256ss rng(7);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

// --------------------------------------------------------------- Discrete

TEST(DiscreteTest, MatchesWeights) {
  const DiscreteDistribution dist({1.0, 2.0, 3.0, 4.0});
  Xoshiro256ss rng(8);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(rng)];
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), (k + 1) / 10.0, 0.01);
  }
}

TEST(DiscreteTest, NormalizedProbabilities) {
  const DiscreteDistribution dist({2.0, 6.0});
  EXPECT_NEAR(dist.Probability(0), 0.25, 1e-12);
  EXPECT_NEAR(dist.Probability(1), 0.75, 1e-12);
}

TEST(DiscreteTest, ZeroWeightNeverSampled) {
  const DiscreteDistribution dist({0.0, 1.0, 0.0});
  Xoshiro256ss rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(dist.Sample(rng), 1u);
}

TEST(DiscreteTest, SingleOutcome) {
  const DiscreteDistribution dist({5.0});
  Xoshiro256ss rng(10);
  EXPECT_EQ(dist.Sample(rng), 0u);
}

// ----------------------------------------------------------------- Normal

TEST(NormalSampleTest, MomentsMatchStandardNormal) {
  Xoshiro256ss rng(11);
  std::vector<double> xs(50000);
  for (double& x : xs) x = SampleStandardNormal(rng);
  const MeanStd ms = ComputeMeanStd(xs);
  EXPECT_NEAR(ms.mean, 0.0, 0.02);
  EXPECT_NEAR(ms.stddev, 1.0, 0.02);
}

// ---------------------------------------------------------------- Shuffle

TEST(ShuffleTest, ProducesPermutation) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  Xoshiro256ss rng(12);
  std::vector<int> shuffled = v;
  Shuffle(shuffled, rng);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ShuffleTest, EmptyAndSingleton) {
  std::vector<int> empty;
  std::vector<int> one = {42};
  Xoshiro256ss rng(13);
  Shuffle(empty, rng);
  Shuffle(one, rng);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one[0], 42);
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Xoshiro256ss rng(14);
  const auto sample = SampleWithoutReplacement(100, 30, rng);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(SampleWithoutReplacementTest, FullSampleIsPermutation) {
  Xoshiro256ss rng(15);
  const auto sample = SampleWithoutReplacement(50, 50, rng);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(SampleWithoutReplacementTest, ZeroSample) {
  Xoshiro256ss rng(16);
  EXPECT_TRUE(SampleWithoutReplacement(10, 0, rng).empty());
}

TEST(SampleWithoutReplacementTest, UniformCoverage) {
  // Each index should appear in ~k/n of the samples.
  Xoshiro256ss rng(17);
  std::vector<int> hits(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t i : SampleWithoutReplacement(20, 5, rng)) ++hits[i];
  }
  for (int h : hits) EXPECT_NEAR(h / static_cast<double>(trials), 0.25, 0.02);
}

// ------------------------------------------------------------------ stats

TEST(StatsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.2816), 0.1, 1e-3);
}

TEST(StatsTest, NormalQuantileInvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-7) << "p=" << p;
  }
}

TEST(StatsTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.9), 1.2816, 1e-3);
  EXPECT_NEAR(NormalQuantile(0.975), 1.95996, 1e-4);
}

TEST(StatsTest, LogBinomialCoefficient) {
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(52, 5)), 2598960.0, 1e-3);
}

TEST(StatsTest, BinomialTailEdgeCases) {
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 11, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 5, 1.0), 1.0);
}

TEST(StatsTest, BinomialTailExactValues) {
  // P[X >= 5 | X ~ Bin(10, 0.5)] = 0.623046875
  EXPECT_NEAR(BinomialTailAtLeast(10, 5, 0.5), 0.623046875, 1e-9);
  // P[X >= 10 | X ~ Bin(10, 0.5)] = 2^-10
  EXPECT_NEAR(BinomialTailAtLeast(10, 10, 0.5), std::pow(0.5, 10), 1e-12);
}

TEST(StatsTest, NormalApproxTracksExactTail) {
  // In the CLT regime (n p >= 5 and n (1-p) >= 5, as the paper requires).
  const double exact = BinomialTailAtLeast(100, 60, 0.5);
  const double approx = BinomialTailNormalApprox(100, 60, 0.5);
  EXPECT_NEAR(approx, exact, 0.02);
}

TEST(StatsTest, MeanStd) {
  const MeanStd ms = ComputeMeanStd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(ms.mean, 5.0, 1e-12);
  EXPECT_NEAR(ms.stddev, 2.0, 1e-12);
}

TEST(StatsTest, MeanStdEmpty) {
  const MeanStd ms = ComputeMeanStd({});
  EXPECT_EQ(ms.mean, 0.0);
  EXPECT_EQ(ms.stddev, 0.0);
}

}  // namespace
}  // namespace catmark
