#include <gtest/gtest.h>

#include <set>

#include "gen/sales_gen.h"
#include "relation/domain.h"
#include "relation/histogram.h"

namespace catmark {
namespace {

TEST(SalesGenTest, SchemaMatchesItemScan) {
  SalesGenConfig config;
  config.num_tuples = 100;
  const Relation rel = GenerateItemScan(config);
  const Schema& s = rel.schema();
  EXPECT_EQ(s.num_columns(), 6u);
  EXPECT_EQ(s.column(0).name, "Visit_Nbr");
  EXPECT_EQ(s.column(1).name, "Item_Nbr");
  EXPECT_TRUE(s.column(1).categorical);
  EXPECT_EQ(s.primary_key_index(), 0);
  EXPECT_EQ(rel.NumRows(), 100u);
}

TEST(SalesGenTest, PrimaryKeysAreUnique) {
  SalesGenConfig config;
  config.num_tuples = 5000;
  const Relation rel = GenerateItemScan(config);
  std::set<std::int64_t> keys;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    keys.insert(rel.Get(i, 0).AsInt64());
  }
  EXPECT_EQ(keys.size(), rel.NumRows());
}

TEST(SalesGenTest, SequentialVisitNumbers) {
  SalesGenConfig config;
  config.num_tuples = 10;
  config.sparse_visit_numbers = false;
  const Relation rel = GenerateItemScan(config);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rel.Get(i, 0).AsInt64(), static_cast<std::int64_t>(i + 1));
  }
}

TEST(SalesGenTest, ItemDomainBoundedByConfig) {
  SalesGenConfig config;
  config.num_tuples = 5000;
  config.num_items = 50;
  const Relation rel = GenerateItemScan(config);
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  EXPECT_LE(domain.size(), 50u);
  EXPECT_GE(domain.size(), 40u);  // virtually all items appear at this N
}

TEST(SalesGenTest, DeterministicPerSeed) {
  SalesGenConfig config;
  config.num_tuples = 200;
  const Relation a = GenerateItemScan(config);
  const Relation b = GenerateItemScan(config);
  EXPECT_TRUE(a.SameContent(b));
  config.seed = 43;
  const Relation c = GenerateItemScan(config);
  EXPECT_FALSE(a.SameContent(c));
}

TEST(SalesGenTest, ZipfSkewShowsInFrequencies) {
  SalesGenConfig config;
  config.num_tuples = 20000;
  config.num_items = 100;
  config.item_zipf_s = 1.2;
  const Relation rel = GenerateItemScan(config);
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const auto hist = FrequencyHistogram::Compute(rel, 1, domain).value();
  double max_f = 0.0;
  for (std::size_t t = 0; t < domain.size(); ++t) {
    max_f = std::max(max_f, hist.frequency(t));
  }
  // With s=1.2 over 100 items the top item carries far more than uniform.
  EXPECT_GT(max_f, 3.0 / 100.0);
}

TEST(SalesGenTest, AmountsAndQuantitiesInRange) {
  SalesGenConfig config;
  config.num_tuples = 1000;
  const Relation rel = GenerateItemScan(config);
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    const std::int64_t qty = rel.Get(i, 4).AsInt64();
    EXPECT_GE(qty, 1);
    EXPECT_LE(qty, 9);
    EXPECT_GT(rel.Get(i, 5).AsDouble(), 0.0);
  }
}

TEST(KeyedCategoricalTest, SchemaAndSize) {
  KeyedCategoricalConfig config;
  config.num_tuples = 500;
  config.domain_size = 20;
  const Relation rel = GenerateKeyedCategorical(config);
  EXPECT_EQ(rel.NumRows(), 500u);
  EXPECT_EQ(rel.schema().num_columns(), 2u);
  EXPECT_EQ(rel.schema().primary_key_index(), 0);
  EXPECT_TRUE(rel.schema().column(1).categorical);
}

TEST(KeyedCategoricalTest, LabelsAreZeroPadded) {
  KeyedCategoricalConfig config;
  config.num_tuples = 2000;
  config.domain_size = 100;
  const Relation rel = GenerateKeyedCategorical(config);
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  for (std::size_t t = 0; t < domain.size(); ++t) {
    const std::string& label = domain.value(t).AsString();
    EXPECT_EQ(label.size(), 4u);  // "V" + 3 digits for domain_size=100
    EXPECT_EQ(label[0], 'V');
  }
}

TEST(KeyedCategoricalTest, UniqueKeys) {
  KeyedCategoricalConfig config;
  config.num_tuples = 3000;
  const Relation rel = GenerateKeyedCategorical(config);
  std::set<std::int64_t> keys;
  for (std::size_t i = 0; i < rel.NumRows(); ++i) {
    keys.insert(rel.Get(i, 0).AsInt64());
  }
  EXPECT_EQ(keys.size(), rel.NumRows());
}

TEST(KeyedCategoricalTest, DeterministicPerSeed) {
  KeyedCategoricalConfig config;
  config.num_tuples = 100;
  EXPECT_TRUE(GenerateKeyedCategorical(config).SameContent(
      GenerateKeyedCategorical(config)));
}

TEST(KeyedCategoricalTest, PopularityNotAlignedWithSortOrder) {
  // The Zipf weights are assigned in shuffled order, so the most frequent
  // label should usually not be V0000 (probability 1/domain if aligned).
  KeyedCategoricalConfig config;
  config.num_tuples = 20000;
  config.domain_size = 50;
  config.zipf_s = 1.5;
  const Relation rel = GenerateKeyedCategorical(config);
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const auto hist = FrequencyHistogram::Compute(rel, 1, domain).value();
  std::size_t argmax = 0;
  for (std::size_t t = 1; t < domain.size(); ++t) {
    if (hist.count(t) > hist.count(argmax)) argmax = t;
  }
  EXPECT_NE(domain.value(argmax).AsString(), "V00");
}

}  // namespace
}  // namespace catmark
