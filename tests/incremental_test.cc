#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/embedder.h"
#include "core/codec.h"
#include "core/incremental.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

struct Fixture {
  Relation rel;
  WatermarkKeySet keys = WatermarkKeySet::FromSeed(91);
  WatermarkParams params;
  BitVector wm;
  EmbedOptions options;
  EmbedReport report;
};

Fixture MakeFixture() {
  Fixture f;
  KeyedCategoricalConfig gen;
  gen.num_tuples = 4000;
  gen.domain_size = 100;
  gen.seed = 91;
  f.rel = GenerateKeyedCategorical(gen);
  f.params.e = 30;
  f.wm = MakeWatermark(10, 91);
  f.options.key_attr = "K";
  f.options.target_attr = "A";
  const Embedder embedder(f.keys, f.params);
  f.report = embedder.Embed(f.rel, f.options, f.wm).value();
  return f;
}

DetectionResult Detect(const Fixture& f, const Relation& rel) {
  const Detector detector(f.keys, f.params);
  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = f.report.payload_length;
  options.domain = f.report.domain;
  return detector.Detect(rel, options, f.wm.size()).value();
}

TEST(IncrementalTest, InsertMarksFitTuples) {
  Fixture f = MakeFixture();
  const IncrementalWatermarker inc(f.keys, f.params, f.options, f.report,
                                   f.wm);
  std::size_t fit_count = 0;
  for (std::int64_t k = 1000000; k < 1003000; ++k) {
    const bool fit =
        inc.Insert(f.rel, {Value(k), Value("V0000")}).value();
    if (fit) ++fit_count;
  }
  // ~3000/30 = 100 of the inserted tuples should be fit.
  EXPECT_NEAR(static_cast<double>(fit_count), 100.0, 40.0);
  EXPECT_EQ(f.rel.NumRows(), 7000u);
  // The grown relation still detects perfectly.
  EXPECT_EQ(Detect(f, f.rel).wm, f.wm);
}

TEST(IncrementalTest, InsertedFitTuplesVoteCorrectly) {
  Fixture f = MakeFixture();
  const IncrementalWatermarker inc(f.keys, f.params, f.options, f.report,
                                   f.wm);
  // Build a relation of ONLY incrementally-inserted tuples: they alone must
  // carry a detectable mark.
  Relation fresh(f.rel.schema());
  std::size_t fit = 0;
  for (std::int64_t k = 5000000; fit < 200; ++k) {
    if (inc.Insert(fresh, {Value(k), Value("V0001")}).value()) ++fit;
  }
  EXPECT_EQ(Detect(f, fresh).wm, f.wm);
}

TEST(IncrementalTest, RefreshRepairsDamagedTuple) {
  Fixture f = MakeFixture();
  const IncrementalWatermarker inc(f.keys, f.params, f.options, f.report,
                                   f.wm);
  // Find a fit tuple, damage its target attribute, refresh, and verify the
  // value is restored to a mark-carrying one.
  const FitnessSelector fitness(f.keys.k1, f.params.e);
  std::size_t fit_row = f.rel.NumRows();
  for (std::size_t i = 0; i < f.rel.NumRows(); ++i) {
    if (fitness.IsFit(f.rel.Get(i, 0))) {
      fit_row = i;
      break;
    }
  }
  ASSERT_LT(fit_row, f.rel.NumRows());
  const Value marked_value = f.rel.Get(fit_row, 1);
  ASSERT_TRUE(f.rel.Set(fit_row, 1, Value("V0002")).ok());
  EXPECT_TRUE(inc.Refresh(f.rel, fit_row).value());
  EXPECT_EQ(f.rel.Get(fit_row, 1), marked_value);
}

TEST(IncrementalTest, RefreshLeavesUnfitTuplesAlone) {
  Fixture f = MakeFixture();
  const IncrementalWatermarker inc(f.keys, f.params, f.options, f.report,
                                   f.wm);
  const FitnessSelector fitness(f.keys.k1, f.params.e);
  std::size_t unfit_row = f.rel.NumRows();
  for (std::size_t i = 0; i < f.rel.NumRows(); ++i) {
    if (!fitness.IsFit(f.rel.Get(i, 0))) {
      unfit_row = i;
      break;
    }
  }
  ASSERT_LT(unfit_row, f.rel.NumRows());
  const Value before = f.rel.Get(unfit_row, 1);
  EXPECT_FALSE(inc.Refresh(f.rel, unfit_row).value());
  EXPECT_EQ(f.rel.Get(unfit_row, 1), before);
}

TEST(IncrementalTest, PinsTheEmbedTimePrfBackendNotTheEnvironment) {
  // Embed under the fast backend, then construct the incremental
  // watermarker with params.prf left on auto: it must pin the backend from
  // the report — inserts hashed under whatever CATMARK_PRF says in a later
  // process would be invisible to dispute-time detection.
  Fixture f;
  KeyedCategoricalConfig gen;
  gen.num_tuples = 4000;
  gen.domain_size = 100;
  gen.seed = 91;
  f.rel = GenerateKeyedCategorical(gen);
  f.params.e = 30;
  f.params.prf = PrfKind::kSipHash24;
  f.wm = MakeWatermark(10, 91);
  f.options.key_attr = "K";
  f.options.target_attr = "A";
  f.report = Embedder(f.keys, f.params).Embed(f.rel, f.options, f.wm).value();
  ASSERT_EQ(f.report.prf, PrfKind::kSipHash24);

  WatermarkParams auto_params = f.params;
  auto_params.prf.reset();  // the later-process default
  const IncrementalWatermarker inc(f.keys, auto_params, f.options, f.report,
                                   f.wm);
  // A relation of only incrementally-inserted tuples must detect under the
  // embed-time backend (Detect uses f.params, which pins siphash24).
  Relation fresh(f.rel.schema());
  std::size_t fit = 0;
  for (std::int64_t k = 5000000; fit < 200; ++k) {
    if (inc.Insert(fresh, {Value(k), Value("V0001")}).value()) ++fit;
  }
  EXPECT_EQ(Detect(f, fresh).wm, f.wm);
}

TEST(IncrementalTest, InsertValidatesArity) {
  Fixture f = MakeFixture();
  const IncrementalWatermarker inc(f.keys, f.params, f.options, f.report,
                                   f.wm);
  EXPECT_FALSE(inc.Insert(f.rel, {Value(std::int64_t{1})}).ok());
}

TEST(IncrementalTest, RefreshValidatesRowIndex) {
  Fixture f = MakeFixture();
  const IncrementalWatermarker inc(f.keys, f.params, f.options, f.report,
                                   f.wm);
  EXPECT_FALSE(inc.Refresh(f.rel, f.rel.NumRows()).ok());
}

TEST(IncrementalTest, ExposesEmbeddingMetadata) {
  Fixture f = MakeFixture();
  const IncrementalWatermarker inc(f.keys, f.params, f.options, f.report,
                                   f.wm);
  EXPECT_EQ(inc.payload_length(), f.report.payload_length);
  EXPECT_EQ(inc.domain().size(), f.report.domain.size());
}

}  // namespace
}  // namespace catmark
