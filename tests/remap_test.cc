#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "core/remap_recovery.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "relation/histogram.h"

namespace catmark {
namespace {

Relation SkewedRelation(std::size_t n = 30000, std::size_t domain = 40,
                        std::uint64_t seed = 61) {
  KeyedCategoricalConfig config;
  config.num_tuples = n;
  config.domain_size = domain;
  config.zipf_s = 1.1;  // distinctly non-uniform — the paper's precondition
  config.seed = seed;
  return GenerateKeyedCategorical(config);
}

struct RemapTestData {
  Relation original;
  CategoricalDomain domain;
  std::vector<double> frequencies;
};

RemapTestData MakeSetup(std::size_t n = 30000, std::size_t domain_size = 40) {
  RemapTestData s;
  s.original = SkewedRelation(n, domain_size);
  s.domain =
      CategoricalDomain::FromRelationColumn(s.original, 1).value();
  s.frequencies =
      FrequencyHistogram::Compute(s.original, 1, s.domain).value()
          .Frequencies();
  return s;
}

TEST(RemapRecoveryTest, RecoversExactMappingOnSkewedData) {
  const RemapTestData s = MakeSetup();
  const RemapAttackResult attack =
      BijectiveRemapAttack(s.original, "A", 1).value();
  const RemapRecovery recovery =
      RecoverBijectiveMapping(attack.relation, "A", s.domain, s.frequencies)
          .value();

  // Check against the ground truth: every suspect value maps back to its
  // true pre-image (frequencies are distinct at this skew/sample size).
  std::size_t correct = 0;
  for (std::size_t i = 0; i < recovery.suspect_domain.size(); ++i) {
    const std::size_t orig = recovery.suspect_to_original[i];
    ASSERT_NE(orig, RemapRecovery::npos);
    const std::string mapped_back = s.domain.value(orig).ToString();
    const std::string suspect_label =
        recovery.suspect_domain.value(i).ToString();
    if (attack.ground_truth.forward.at(mapped_back) == suspect_label) {
      ++correct;
    }
  }
  // Zipf tails have near-equal frequencies, so a few rank swaps among the
  // rarest values are expected; the bulk must be exact.
  EXPECT_GE(correct, recovery.suspect_domain.size() * 8 / 10);
  EXPECT_LT(recovery.mean_frequency_error, 0.01);
}

TEST(RemapRecoveryTest, WatermarkSurvivesRemapPlusRecovery) {
  // End-to-end Section 4.5: embed, remap (A6), recover, detect.
  RemapTestData s = MakeSetup();
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(2);
  WatermarkParams params;
  params.e = 30;
  const BitVector wm = MakeWatermark(10, 2);

  Relation marked = s.original;
  EmbedOptions embed_options;
  embed_options.key_attr = "K";
  embed_options.target_attr = "A";
  embed_options.domain = s.domain;
  const EmbedReport report =
      Embedder(keys, params).Embed(marked, embed_options, wm).value();

  // The owner's frequency table describes the *marked* data (what was
  // published).
  const std::vector<double> published_freqs =
      FrequencyHistogram::Compute(marked, 1, s.domain).value().Frequencies();

  const RemapAttackResult attack = BijectiveRemapAttack(marked, "A", 3).value();

  // Without recovery, detection fails outright: no suspect value is in the
  // original domain.
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;
  const Detector detector(keys, params);
  const DetectionResult blind =
      detector.Detect(attack.relation, detect_options, wm.size()).value();
  EXPECT_EQ(blind.usable_votes, 0u);

  // With recovery, the mark comes back.
  const RemapRecovery recovery =
      RecoverBijectiveMapping(attack.relation, "A", s.domain,
                              published_freqs)
          .value();
  const Relation restored =
      ApplyRecoveredMapping(attack.relation, "A", recovery, s.domain).value();
  const DetectionResult detection =
      detector.Detect(restored, detect_options, wm.size()).value();
  const MatchStats stats = MatchWatermark(wm, detection.wm);
  EXPECT_GE(stats.match_fraction, 0.9);
}

TEST(RemapRecoveryTest, RestoredColumnHasOriginalType) {
  SalesGenConfig config;
  config.num_tuples = 5000;
  config.num_items = 30;
  const Relation rel = GenerateItemScan(config);
  const auto domain = CategoricalDomain::FromRelationColumn(rel, 1).value();
  const auto freqs =
      FrequencyHistogram::Compute(rel, 1, domain).value().Frequencies();
  const RemapAttackResult attack =
      BijectiveRemapAttack(rel, "Item_Nbr", 4).value();
  const RemapRecovery recovery =
      RecoverBijectiveMapping(attack.relation, "Item_Nbr", domain, freqs)
          .value();
  const Relation restored =
      ApplyRecoveredMapping(attack.relation, "Item_Nbr", recovery, domain)
          .value();
  const int col = restored.schema().ColumnIndex("Item_Nbr");
  ASSERT_GE(col, 0);
  EXPECT_EQ(restored.schema().column(static_cast<std::size_t>(col)).type,
            ColumnType::kInt64);
  EXPECT_TRUE(domain.Contains(restored.Get(0, static_cast<std::size_t>(col))));
}

TEST(RemapRecoveryTest, RejectsMisalignedFrequencyTable) {
  const RemapTestData s = MakeSetup(2000, 20);
  std::vector<double> wrong_size(s.domain.size() + 1, 0.0);
  EXPECT_FALSE(
      RecoverBijectiveMapping(s.original, "A", s.domain, wrong_size).ok());
}

TEST(RemapRecoveryTest, UnknownColumnFails) {
  const RemapTestData s = MakeSetup(2000, 20);
  EXPECT_FALSE(
      RecoverBijectiveMapping(s.original, "NOPE", s.domain, s.frequencies)
          .ok());
}

TEST(RemapRecoveryTest, UniformFrequenciesDegradeRecovery) {
  // The paper's caveat: "if the data value occurrences are uniformly
  // distributed ... there is nothing one can do". Rank matching then
  // scrambles the mapping.
  KeyedCategoricalConfig config;
  config.num_tuples = 30000;
  config.domain_size = 40;
  config.zipf_s = 0.0;  // uniform
  config.seed = 5;
  const Relation uniform = GenerateKeyedCategorical(config);
  const auto domain = CategoricalDomain::FromRelationColumn(uniform, 1).value();
  const auto freqs =
      FrequencyHistogram::Compute(uniform, 1, domain).value().Frequencies();
  const RemapAttackResult attack =
      BijectiveRemapAttack(uniform, "A", 6).value();
  // Subsample so the frequency estimates carry sampling noise; on uniform
  // data that noise exceeds the (near-zero) gaps between true frequencies
  // and rank matching scrambles. (Without any post-remap noise the counts
  // are bit-identical and even uniform data rank-matches trivially.)
  const Relation noisy =
      HorizontalPartitionAttack(attack.relation, 0.3, 66).value();
  const RemapRecovery recovery =
      RecoverBijectiveMapping(noisy, "A", domain, freqs).value();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < recovery.suspect_domain.size(); ++i) {
    const std::size_t orig = recovery.suspect_to_original[i];
    if (orig == RemapRecovery::npos) continue;
    if (attack.ground_truth.forward.at(domain.value(orig).ToString()) ==
        recovery.suspect_domain.value(i).ToString()) {
      ++correct;
    }
  }
  EXPECT_LT(correct, recovery.suspect_domain.size() / 2);
}

TEST(RemapRecoveryTest, HandlesSuspectWithFewerValues) {
  // After remap + heavy subset selection some categories may vanish; the
  // recovery must still return a (partial) mapping.
  RemapTestData s = MakeSetup(10000, 30);
  const RemapAttackResult attack =
      BijectiveRemapAttack(s.original, "A", 7).value();
  const Relation reduced =
      HorizontalPartitionAttack(attack.relation, 0.1, 77).value();
  const RemapRecovery recovery =
      RecoverBijectiveMapping(reduced, "A", s.domain, s.frequencies).value();
  EXPECT_LE(recovery.suspect_domain.size(), s.domain.size());
  for (const std::size_t orig : recovery.suspect_to_original) {
    if (orig != RemapRecovery::npos) {
      EXPECT_LT(orig, s.domain.size());
    }
  }
}

}  // namespace
}  // namespace catmark
