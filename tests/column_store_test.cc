#include <gtest/gtest.h>

#include "relation/column_store.h"
#include "relation/domain.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "relation/value_index_column.h"

namespace catmark {
namespace {

Schema TestSchema() {
  return Schema::Create({{"K", ColumnType::kInt64, false},
                         {"A", ColumnType::kString, true},
                         {"X", ColumnType::kDouble, false}},
                        "K")
      .value();
}

TEST(ColumnStoreTest, LayoutFollowsSchema) {
  const Relation rel(TestSchema());
  EXPECT_FALSE(rel.store().IsDictColumn(0));  // key: plain
  EXPECT_TRUE(rel.store().IsDictColumn(1));   // categorical: dictionary
  EXPECT_FALSE(rel.store().IsDictColumn(2));  // measure: plain
}

TEST(ColumnStoreTest, DictionaryInternsDistinctValues) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(1.0)});
  rel.AppendRowUnchecked({Value(std::int64_t{2}), Value("blue"), Value(2.0)});
  rel.AppendRowUnchecked({Value(std::int64_t{3}), Value("red"), Value(3.0)});

  const ColumnStore& store = rel.store();
  EXPECT_EQ(store.Dict(1).size(), 2u);  // red, blue — interned once each
  EXPECT_EQ(store.Codes(1).size(), 3u);
  EXPECT_EQ(store.Codes(1)[0], store.Codes(1)[2]);  // both "red"
  EXPECT_NE(store.Codes(1)[0], store.Codes(1)[1]);
  EXPECT_EQ(store.DictLiveCounts(1)[0], 2);  // "red" held by two rows
  EXPECT_EQ(store.DictLiveCounts(1)[1], 1);
}

TEST(ColumnStoreTest, NullCellsUseNullCode) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value(), Value(1.0)});
  EXPECT_EQ(rel.store().Codes(1)[0], ColumnStore::kNullCode);
  EXPECT_TRUE(rel.Get(0, 1).is_null());
  EXPECT_TRUE(rel.store().Dict(1).empty());
}

TEST(ColumnStoreTest, SetMaintainsLiveCounts) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(1.0)});
  rel.AppendRowUnchecked({Value(std::int64_t{2}), Value("red"), Value(2.0)});
  ASSERT_TRUE(rel.Set(0, 1, Value("blue")).ok());
  const ColumnStore& store = rel.store();
  EXPECT_EQ(store.DictLiveCounts(1)[0], 1);  // red: one holder left
  EXPECT_EQ(store.DictLiveCounts(1)[1], 1);  // blue: newly interned
  ASSERT_TRUE(rel.Set(1, 1, Value()).ok());
  EXPECT_EQ(store.DictLiveCounts(1)[0], 0);  // red now dead
  EXPECT_EQ(store.Dict(1).size(), 2u);       // ...but never garbage-collected
}

TEST(ColumnStoreTest, DeadDictEntriesLeaveRecoveredDomain) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(1.0)});
  rel.AppendRowUnchecked({Value(std::int64_t{2}), Value("blue"), Value(2.0)});
  ASSERT_TRUE(rel.Set(0, 1, Value("blue")).ok());  // "red" goes dead
  const CategoricalDomain d =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.value(0).AsString(), "blue");
}

TEST(ColumnStoreTest, InternValueDoesNotTouchRows) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(1.0)});
  const std::int32_t code = rel.mutable_store().InternValue(1, Value("green"));
  EXPECT_GE(code, 0);
  EXPECT_EQ(rel.store().DictLiveCounts(1)[static_cast<std::size_t>(code)], 0);
  EXPECT_EQ(rel.Get(0, 1).AsString(), "red");
  // Interning the same value again returns the same code.
  EXPECT_EQ(rel.mutable_store().InternValue(1, Value("green")), code);
  // A dead interned value must not leak into the recovered domain.
  const CategoricalDomain d =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  EXPECT_EQ(d.size(), 1u);
}

TEST(ColumnStoreTest, SetCodeWritesWithoutSerialization) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(1.0)});
  const std::int32_t green = rel.mutable_store().InternValue(1, Value("green"));
  rel.mutable_store().SetCode(0, 1, green);
  EXPECT_EQ(rel.Get(0, 1).AsString(), "green");
  EXPECT_EQ(rel.store().DictLiveCounts(1)[static_cast<std::size_t>(green)], 1);
  rel.mutable_store().SetCode(0, 1, ColumnStore::kNullCode);
  EXPECT_TRUE(rel.Get(0, 1).is_null());
  EXPECT_EQ(rel.store().DictLiveCounts(1)[static_cast<std::size_t>(green)], 0);
}

TEST(ColumnStoreTest, CodeOfDistinguishesTypes) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("7"), Value(1.0)});
  EXPECT_GE(rel.store().CodeOf(1, Value("7")), 0);
  EXPECT_EQ(rel.store().CodeOf(1, Value(std::int64_t{7})),
            ColumnStore::kNullCode);
  EXPECT_EQ(rel.store().CodeOf(1, Value("8")), ColumnStore::kNullCode);
}

TEST(ColumnStoreTest, SwapRemoveUpdatesCodesAndCounts) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(1.0)});
  rel.AppendRowUnchecked({Value(std::int64_t{2}), Value("blue"), Value(2.0)});
  rel.AppendRowUnchecked({Value(std::int64_t{3}), Value("red"), Value(3.0)});
  rel.SwapRemoveRow(0);
  ASSERT_EQ(rel.NumRows(), 2u);
  EXPECT_EQ(rel.Get(0, 0).AsInt64(), 3);  // last row swapped into slot 0
  EXPECT_EQ(rel.Get(0, 1).AsString(), "red");
  EXPECT_EQ(rel.store().DictLiveCounts(1)[0], 1);  // one "red" remains
  rel.SwapRemoveRow(0);
  rel.SwapRemoveRow(0);
  EXPECT_TRUE(rel.empty());
  EXPECT_EQ(rel.store().DictLiveCounts(1)[0], 0);
  EXPECT_EQ(rel.store().DictLiveCounts(1)[1], 0);
}

TEST(ColumnStoreTest, AppendRowsFromTranslatesDictCodes) {
  // Different insertion orders assign different codes; the bulk path must
  // translate them, intern each referenced entry once, and skip dead ones.
  Relation src(TestSchema()), dst(TestSchema());
  src.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(1.0)});
  src.AppendRowUnchecked({Value(std::int64_t{2}), Value("blue"), Value(2.0)});
  src.AppendRowUnchecked({Value(std::int64_t{3}), Value(), Value(3.0)});
  dst.AppendRowUnchecked({Value(std::int64_t{4}), Value("blue"), Value(4.0)});

  ASSERT_TRUE(dst.AppendRowsFrom(src, {2, 0, 1}).ok());
  ASSERT_EQ(dst.NumRows(), 4u);
  EXPECT_TRUE(dst.Get(1, 1).is_null());
  EXPECT_EQ(dst.Get(2, 1).AsString(), "red");
  EXPECT_EQ(dst.Get(3, 1).AsString(), "blue");
  EXPECT_EQ(dst.store().Dict(1).size(), 2u);  // blue, red — no duplicates
  EXPECT_EQ(dst.store().DictLiveCounts(1)[0], 2);  // blue: rows 0 and 3
  EXPECT_EQ(dst.store().DictLiveCounts(1)[1], 1);  // red

  Relation expected(TestSchema());
  expected.AppendRowUnchecked(
      {Value(std::int64_t{4}), Value("blue"), Value(4.0)});
  ASSERT_TRUE(expected.AppendRowsFrom(src, {0, 1, 2}).ok());
  // Order-insensitive equality: {row3, row1, row2} == {row1, row2, row3}.
  EXPECT_TRUE(dst.SameContent(expected));
}

TEST(ColumnStoreTest, AppendRowsFromValidates) {
  Relation src(TestSchema()), dst(TestSchema());
  src.AppendRowUnchecked({Value(std::int64_t{1}), Value("a"), Value(0.0)});
  EXPECT_FALSE(dst.AppendRowsFrom(src, {5}).ok());  // out of range
  Relation other(
      Schema::Create({{"Z", ColumnType::kInt64, false}}, "").value());
  EXPECT_FALSE(other.AppendRowsFrom(src, {0}).ok());  // schema mismatch
  // Self-append goes through the safe row path.
  ASSERT_TRUE(src.AppendRowsFrom(src, {0, 0}).ok());
  EXPECT_EQ(src.NumRows(), 3u);
  EXPECT_EQ(src.store().DictLiveCounts(1)[0], 3);
}

TEST(ColumnStoreTest, PlainColumnsStoreValuesDirectly) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{9}), Value("a"), Value(2.5)});
  EXPECT_EQ(rel.store().PlainValues(0)[0].AsInt64(), 9);
  EXPECT_DOUBLE_EQ(rel.store().PlainValues(2)[0].AsDouble(), 2.5);
}

TEST(ColumnStoreTest, ColumnReaderReadsBothLayouts) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(1.0)});
  rel.AppendRowUnchecked({Value(std::int64_t{2}), Value(), Value(2.0)});
  const ColumnReader key(rel.store(), 0);
  const ColumnReader cat(rel.store(), 1);
  EXPECT_FALSE(key.is_dict());
  EXPECT_TRUE(cat.is_dict());
  EXPECT_EQ(key[1].AsInt64(), 2);
  EXPECT_EQ(cat[0].AsString(), "red");
  EXPECT_TRUE(cat[1].is_null());
}

TEST(ColumnStoreTest, MaterializedRowCopiesEveryColumn) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("red"), Value(1.0)});
  const Row r = rel.row(0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].AsInt64(), 1);
  EXPECT_EQ(r[1].AsString(), "red");
}

// The zero-copy index view must follow live mutations of the aliased code
// vector (the embed apply pass depends on it) while codes interned after
// Build resolve to kNoIndex.
TEST(ValueIndexViewTest, ViewFollowsSetCode) {
  Relation rel(TestSchema());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("a"), Value(1.0)});
  rel.AppendRowUnchecked({Value(std::int64_t{2}), Value("b"), Value(2.0)});
  const CategoricalDomain domain =
      CategoricalDomain::FromValues({Value("a"), Value("b")}).value();
  const ValueIndexColumn view = ValueIndexColumn::Build(rel, 1, domain);
  EXPECT_EQ(view.index(0), 0);
  EXPECT_EQ(view.index(1), 1);
  rel.mutable_store().SetCode(0, 1, rel.store().CodeOf(1, Value("b")));
  EXPECT_EQ(view.index(0), 1);  // view reads the live codes
  // A value interned after Build is outside the remap table -> kNoIndex.
  const std::int32_t late = rel.mutable_store().InternValue(1, Value("a2"));
  rel.mutable_store().SetCode(1, 1, late);
  EXPECT_EQ(view.index(1), ValueIndexColumn::kNoIndex);
}

}  // namespace
}  // namespace catmark
