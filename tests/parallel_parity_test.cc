// Serial-vs-parallel parity: the pipelined embed/detect hot path must
// produce bit-identical EmbedReport / DetectionResult / relation contents
// for every thread count — embedding applies its plan sequentially and
// detection merges per-thread integer tallies, so 1, 2 and 8 workers are
// required to agree exactly. Run under TSan with CATMARK_THREADS swept in
// CI to also prove data-race freedom.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "attack/attacks.h"
#include "common/parallel.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

// ------------------------------------------------------------- ParallelFor

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    for (const std::size_t n : {0u, 1u, 7u, 100u}) {
      std::vector<std::atomic<int>> hits(n);
      ParallelFor(n, threads,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t j = begin; j < end; ++j) ++hits[j];
                  });
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(hits[j].load(), 1) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelForTest, ShardsAreContiguousAndOrdered) {
  const std::size_t n = 103;
  std::vector<std::pair<std::size_t, std::size_t>> shards(8, {0, 0});
  ParallelFor(n, 8, [&](std::size_t shard, std::size_t begin,
                        std::size_t end) { shards[shard] = {begin, end}; });
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LE(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, n);
}

TEST(ParallelForTest, EffectiveThreadCountClamps) {
  EXPECT_EQ(EffectiveThreadCount(8, 3), 3u);
  EXPECT_EQ(EffectiveThreadCount(2, 100), 2u);
  EXPECT_GE(EffectiveThreadCount(0, 100), 1u);
}

// ------------------------------------------------------------------ parity

Relation StandardRelation(std::size_t n, std::uint64_t seed) {
  KeyedCategoricalConfig config;
  config.num_tuples = n;
  config.domain_size = 100;
  config.seed = seed;
  return GenerateKeyedCategorical(config);
}

EmbedOptions KA(bool map = false) {
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.build_embedding_map = map;
  return options;
}

void ExpectReportsEqual(const EmbedReport& a, const EmbedReport& b) {
  EXPECT_EQ(a.num_tuples, b.num_tuples);
  EXPECT_EQ(a.fit_tuples, b.fit_tuples);
  EXPECT_EQ(a.altered_tuples, b.altered_tuples);
  EXPECT_EQ(a.unchanged_tuples, b.unchanged_tuples);
  EXPECT_EQ(a.skipped_by_quality, b.skipped_by_quality);
  EXPECT_EQ(a.skipped_by_ledger, b.skipped_by_ledger);
  EXPECT_EQ(a.skipped_by_domain_guard, b.skipped_by_domain_guard);
  EXPECT_EQ(a.payload_length, b.payload_length);
  EXPECT_EQ(a.positions_written, b.positions_written);
  EXPECT_DOUBLE_EQ(a.alteration_fraction, b.alteration_fraction);
  EXPECT_TRUE(a.domain == b.domain);
  EXPECT_EQ(a.embedding_map.Serialize(), b.embedding_map.Serialize());
}

void ExpectDetectionsEqual(const DetectionResult& a, const DetectionResult& b) {
  EXPECT_EQ(a.wm, b.wm);
  EXPECT_EQ(a.num_tuples, b.num_tuples);
  EXPECT_EQ(a.fit_tuples, b.fit_tuples);
  EXPECT_EQ(a.usable_votes, b.usable_votes);
  EXPECT_EQ(a.payload_length, b.payload_length);
  EXPECT_EQ(a.positions_present, b.positions_present);
  EXPECT_DOUBLE_EQ(a.payload_fill, b.payload_fill);
  ASSERT_EQ(a.bit_confidence.size(), b.bit_confidence.size());
  for (std::size_t i = 0; i < a.bit_confidence.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.bit_confidence[i], b.bit_confidence[i]);
  }
}

TEST(ParallelParityTest, EmbedIsBitIdenticalAcrossThreadCounts) {
  for (const bool map_mode : {false, true}) {
    Relation serial_rel = StandardRelation(5000, 41);
    WatermarkParams params;
    params.e = 25;
    params.num_threads = 1;
    const BitVector wm = MakeWatermark(10, 41);
    const EmbedReport serial =
        Embedder(WatermarkKeySet::FromSeed(41), params)
            .Embed(serial_rel, KA(map_mode), wm)
            .value();

    for (const std::size_t threads : {2u, 8u}) {
      Relation rel = StandardRelation(5000, 41);
      params.num_threads = threads;
      const EmbedReport report = Embedder(WatermarkKeySet::FromSeed(41), params)
                                     .Embed(rel, KA(map_mode), wm)
                                     .value();
      ExpectReportsEqual(serial, report);
      // Row-for-row identical, not just multiset-equal: the apply pass is
      // sequential regardless of plan threads.
      ASSERT_EQ(rel.NumRows(), serial_rel.NumRows());
      for (std::size_t j = 0; j < rel.NumRows(); ++j) {
        ASSERT_TRUE(rel.Get(j, 1) == serial_rel.Get(j, 1))
            << "row " << j << " threads=" << threads
            << " map_mode=" << map_mode;
      }
    }
  }
}

TEST(ParallelParityTest, DetectIsBitIdenticalAcrossThreadCounts) {
  Relation rel = StandardRelation(6000, 42);
  WatermarkParams params;
  params.e = 20;
  const BitVector wm = MakeWatermark(10, 42);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(42);
  const EmbedReport report = Embedder(keys, params).Embed(rel, KA(), wm).value();

  // An attacked suspect exercises the unfit / out-of-domain / missing-key
  // code paths, not just the clean tally.
  const Relation attacked =
      SubsetAdditionAttack(HorizontalPartitionAttack(rel, 0.7, 7).value(), 0.4,
                           8)
          .value();

  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = report.payload_length;
  options.domain = report.domain;

  const std::vector<const Relation*> suspects = {&rel, &attacked};
  for (const Relation* suspect : suspects) {
    params.num_threads = 1;
    const DetectionResult serial =
        Detector(keys, params).Detect(*suspect, options, wm.size()).value();
    for (const std::size_t threads : {2u, 8u}) {
      params.num_threads = threads;
      const DetectionResult parallel =
          Detector(keys, params).Detect(*suspect, options, wm.size()).value();
      ExpectDetectionsEqual(serial, parallel);
    }
  }
}

TEST(ParallelParityTest, MapDetectionIsBitIdenticalAcrossThreadCounts) {
  Relation rel = StandardRelation(4000, 43);
  WatermarkParams params;
  params.e = 20;
  const BitVector wm = MakeWatermark(10, 43);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(43);
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, KA(/*map=*/true), wm).value();

  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = report.payload_length;
  options.domain = report.domain;
  options.embedding_map = &report.embedding_map;

  params.num_threads = 1;
  const DetectionResult serial =
      Detector(keys, params).Detect(rel, options, wm.size()).value();
  EXPECT_EQ(serial.wm, wm);
  for (const std::size_t threads : {2u, 8u}) {
    params.num_threads = threads;
    const DetectionResult parallel =
        Detector(keys, params).Detect(rel, options, wm.size()).value();
    ExpectDetectionsEqual(serial, parallel);
  }
}

TEST(ParallelParityTest, NullKeysParityAcrossThreadCounts) {
  Relation base = StandardRelation(3000, 44);
  for (std::size_t j = 0; j < 300; ++j) {
    ASSERT_TRUE(base.Set(j * 7 % base.NumRows(), 0, Value()).ok());
  }
  WatermarkParams params;
  params.e = 15;
  const BitVector wm = MakeWatermark(10, 44);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(44);

  params.num_threads = 1;
  Relation serial_rel = base;
  const EmbedReport serial =
      Embedder(keys, params).Embed(serial_rel, KA(), wm).value();
  for (const std::size_t threads : {2u, 8u}) {
    params.num_threads = threads;
    Relation rel = base;
    const EmbedReport report =
        Embedder(keys, params).Embed(rel, KA(), wm).value();
    ExpectReportsEqual(serial, report);
  }
}

}  // namespace
}  // namespace catmark
