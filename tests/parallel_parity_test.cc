// Serial-vs-parallel parity: the pipelined embed/detect hot path must
// produce bit-identical EmbedReport / DetectionResult / relation contents
// for every thread count. Detection merges per-thread integer tallies;
// embedding runs a two-phase sharded apply pass (parallel classify,
// prefix-sum map-index assignment, parallel apply with spliced per-shard
// map segments) whose every output — relation bytes, report counters,
// serialized embedding map, ledger — must match the serial reference pass
// exactly. The randomized suite below proves that over ~50 trials of
// random schemas, domains, parameters and thread counts; run under TSan
// with CATMARK_THREADS swept in CI to also prove data-race freedom.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "attack/attacks.h"
#include "common/parallel.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "crypto/siphash_simd.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "quality/assessor.h"
#include "relation/csv.h"

namespace catmark {
namespace {

// ------------------------------------------------------------- ParallelFor

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    for (const std::size_t n : {0u, 1u, 7u, 100u}) {
      std::vector<std::atomic<int>> hits(n);
      ParallelFor(n, threads,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t j = begin; j < end; ++j) ++hits[j];
                  });
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(hits[j].load(), 1) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelForTest, ShardsAreContiguousAndOrdered) {
  const std::size_t n = 103;
  std::vector<std::pair<std::size_t, std::size_t>> shards(8, {0, 0});
  ParallelFor(n, 8, [&](std::size_t shard, std::size_t begin,
                        std::size_t end) { shards[shard] = {begin, end}; });
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LE(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, n);
}

TEST(ParallelForTest, EffectiveThreadCountClamps) {
  EXPECT_EQ(EffectiveThreadCount(8, 3), 3u);
  EXPECT_EQ(EffectiveThreadCount(2, 100), 2u);
  EXPECT_GE(EffectiveThreadCount(0, 100), 1u);
}

TEST(ParallelForTest, ShardBoundsPartitionExactly) {
  for (const std::size_t threads : {1u, 2u, 3u, 7u, 8u}) {
    for (const std::size_t n : {0u, 1u, 7u, 8u, 103u}) {
      const std::vector<std::size_t> bounds = ShardBounds(n, threads);
      ASSERT_EQ(bounds.size(), threads + 1);
      EXPECT_EQ(bounds.front(), 0u);
      EXPECT_EQ(bounds.back(), n);
      for (std::size_t s = 0; s < threads; ++s) {
        EXPECT_LE(bounds[s], bounds[s + 1]);
        // Near-equal: no shard more than one item larger than another.
        EXPECT_LE(bounds[s + 1] - bounds[s], n / threads + 1);
      }
    }
  }
}

TEST(ParallelForTest, ShardBoundsMatchParallelForPartition) {
  const std::size_t n = 103;
  for (const std::size_t threads : {2u, 3u, 8u}) {
    const std::vector<std::size_t> bounds = ShardBounds(n, threads);
    std::vector<std::pair<std::size_t, std::size_t>> observed(threads);
    ParallelFor(n, threads,
                [&](std::size_t shard, std::size_t begin, std::size_t end) {
                  observed[shard] = {begin, end};
                });
    for (std::size_t s = 0; s < threads; ++s) {
      EXPECT_EQ(observed[s].first, bounds[s]) << "threads=" << threads;
      EXPECT_EQ(observed[s].second, bounds[s + 1]) << "threads=" << threads;
    }
  }
}

TEST(ParallelForTest, ExclusivePrefixSum) {
  std::vector<std::size_t> counts = {3, 0, 5, 1};
  EXPECT_EQ(ExclusivePrefixSum(counts), 9u);
  EXPECT_EQ(counts, (std::vector<std::size_t>{0, 3, 3, 8}));

  std::vector<std::size_t> empty;
  EXPECT_EQ(ExclusivePrefixSum(empty), 0u);

  std::vector<std::size_t> one = {7};
  EXPECT_EQ(ExclusivePrefixSum(one), 7u);
  EXPECT_EQ(one[0], 0u);
}

// ------------------------------------------------ CATMARK_THREADS parsing

TEST(ThreadCountEnvTest, MalformedInputsFallBackToHardware) {
  // One case per malformed shape: empty, words, digit/letter mixes, signs
  // (strtoul used to wrap "-4" into a huge positive count), whitespace,
  // hex/scientific notation, and zero.
  for (const char* bad : {"", "abc", "12abc", "abc12", "-4", "+8", " 8",
                          "8 ", "0x10", "1e3", "0", "00"}) {
    EXPECT_EQ(ResolveThreadCountEnv(bad, 4), 4u) << "input \"" << bad << "\"";
  }
  EXPECT_EQ(ResolveThreadCountEnv(nullptr, 4), 4u);
  // A zero hardware report (the standard allows it) still floors at 1.
  EXPECT_EQ(ResolveThreadCountEnv("junk", 0), 1u);
}

TEST(ThreadCountEnvTest, ValidInputsParseAndClamp) {
  EXPECT_EQ(ResolveThreadCountEnv("1", 4), 1u);
  EXPECT_EQ(ResolveThreadCountEnv("3", 4), 3u);
  // Modest oversubscription stays allowed — the sanitizer sweeps run 8
  // workers on small machines.
  EXPECT_EQ(ResolveThreadCountEnv("8", 1), 8u);
  // Oversized and overflowing values clamp to the hardware-derived ceiling
  // instead of spawning thousands of threads.
  EXPECT_EQ(ResolveThreadCountEnv("100000", 4), MaxEnvThreadCount(4));
  EXPECT_EQ(ResolveThreadCountEnv("99999999999999999999999999", 4),
            MaxEnvThreadCount(4));
}

TEST(ThreadCountEnvTest, MaxEnvThreadCountShape) {
  EXPECT_EQ(MaxEnvThreadCount(1), 8u);
  EXPECT_EQ(MaxEnvThreadCount(2), 8u);
  EXPECT_EQ(MaxEnvThreadCount(4), 16u);
  EXPECT_EQ(MaxEnvThreadCount(16), 64u);
  EXPECT_EQ(MaxEnvThreadCount(100), 256u);  // absolute cap
}

TEST(ThreadCountEnvTest, DefaultThreadCountSurvivesGarbageEnv) {
  const char* saved = std::getenv("CATMARK_THREADS");
  const std::string saved_copy = saved != nullptr ? saved : "";
  setenv("CATMARK_THREADS", "not-a-number", 1);
  EXPECT_GE(DefaultThreadCount(), 1u);
  setenv("CATMARK_THREADS", "-3", 1);
  EXPECT_GE(DefaultThreadCount(), 1u);
  setenv("CATMARK_THREADS", "2", 1);
  EXPECT_EQ(DefaultThreadCount(), 2u);
  if (saved != nullptr) {
    setenv("CATMARK_THREADS", saved_copy.c_str(), 1);
  } else {
    unsetenv("CATMARK_THREADS");
  }
}

// ------------------------------------------------------------------ parity

Relation StandardRelation(std::size_t n, std::uint64_t seed) {
  KeyedCategoricalConfig config;
  config.num_tuples = n;
  config.domain_size = 100;
  config.seed = seed;
  return GenerateKeyedCategorical(config);
}

EmbedOptions KA(bool map = false) {
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.build_embedding_map = map;
  return options;
}

void ExpectReportsEqual(const EmbedReport& a, const EmbedReport& b) {
  EXPECT_EQ(a.num_tuples, b.num_tuples);
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  EXPECT_EQ(a.messages_hashed, b.messages_hashed);
  EXPECT_EQ(a.fit_tuples, b.fit_tuples);
  EXPECT_EQ(a.altered_tuples, b.altered_tuples);
  EXPECT_EQ(a.unchanged_tuples, b.unchanged_tuples);
  EXPECT_EQ(a.skipped_by_quality, b.skipped_by_quality);
  EXPECT_EQ(a.skipped_by_ledger, b.skipped_by_ledger);
  EXPECT_EQ(a.skipped_by_domain_guard, b.skipped_by_domain_guard);
  EXPECT_EQ(a.payload_length, b.payload_length);
  EXPECT_EQ(a.positions_written, b.positions_written);
  EXPECT_DOUBLE_EQ(a.alteration_fraction, b.alteration_fraction);
  EXPECT_TRUE(a.domain == b.domain);
  EXPECT_EQ(a.embedding_map.Serialize(), b.embedding_map.Serialize());
}

void ExpectDetectionsEqual(const DetectionResult& a, const DetectionResult& b) {
  EXPECT_EQ(a.wm, b.wm);
  EXPECT_EQ(a.num_tuples, b.num_tuples);
  EXPECT_EQ(a.fit_tuples, b.fit_tuples);
  EXPECT_EQ(a.usable_votes, b.usable_votes);
  EXPECT_EQ(a.payload_length, b.payload_length);
  EXPECT_EQ(a.positions_present, b.positions_present);
  EXPECT_DOUBLE_EQ(a.payload_fill, b.payload_fill);
  ASSERT_EQ(a.bit_confidence.size(), b.bit_confidence.size());
  for (std::size_t i = 0; i < a.bit_confidence.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.bit_confidence[i], b.bit_confidence[i]);
  }
}

TEST(ParallelParityTest, EmbedIsBitIdenticalAcrossThreadCounts) {
  for (const bool map_mode : {false, true}) {
    Relation serial_rel = StandardRelation(5000, 41);
    WatermarkParams params;
    params.e = 25;
    params.num_threads = 1;
    const BitVector wm = MakeWatermark(10, 41);
    const EmbedReport serial =
        Embedder(WatermarkKeySet::FromSeed(41), params)
            .Embed(serial_rel, KA(map_mode), wm)
            .value();

    for (const std::size_t threads : {2u, 8u}) {
      Relation rel = StandardRelation(5000, 41);
      params.num_threads = threads;
      const EmbedReport report = Embedder(WatermarkKeySet::FromSeed(41), params)
                                     .Embed(rel, KA(map_mode), wm)
                                     .value();
      ExpectReportsEqual(serial, report);
      // Row-for-row identical, not just multiset-equal: the apply pass is
      // sequential regardless of plan threads.
      ASSERT_EQ(rel.NumRows(), serial_rel.NumRows());
      for (std::size_t j = 0; j < rel.NumRows(); ++j) {
        ASSERT_TRUE(rel.Get(j, 1) == serial_rel.Get(j, 1))
            << "row " << j << " threads=" << threads
            << " map_mode=" << map_mode;
      }
    }
  }
}

TEST(ParallelParityTest, DetectIsBitIdenticalAcrossThreadCounts) {
  Relation rel = StandardRelation(6000, 42);
  WatermarkParams params;
  params.e = 20;
  const BitVector wm = MakeWatermark(10, 42);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(42);
  const EmbedReport report = Embedder(keys, params).Embed(rel, KA(), wm).value();

  // An attacked suspect exercises the unfit / out-of-domain / missing-key
  // code paths, not just the clean tally.
  const Relation attacked =
      SubsetAdditionAttack(HorizontalPartitionAttack(rel, 0.7, 7).value(), 0.4,
                           8)
          .value();

  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = report.payload_length;
  options.domain = report.domain;

  const std::vector<const Relation*> suspects = {&rel, &attacked};
  for (const Relation* suspect : suspects) {
    params.num_threads = 1;
    const DetectionResult serial =
        Detector(keys, params).Detect(*suspect, options, wm.size()).value();
    for (const std::size_t threads : {2u, 8u}) {
      params.num_threads = threads;
      const DetectionResult parallel =
          Detector(keys, params).Detect(*suspect, options, wm.size()).value();
      ExpectDetectionsEqual(serial, parallel);
    }
  }
}

TEST(ParallelParityTest, MapDetectionIsBitIdenticalAcrossThreadCounts) {
  Relation rel = StandardRelation(4000, 43);
  WatermarkParams params;
  params.e = 20;
  const BitVector wm = MakeWatermark(10, 43);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(43);
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, KA(/*map=*/true), wm).value();

  DetectOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  options.payload_length = report.payload_length;
  options.domain = report.domain;
  options.embedding_map = &report.embedding_map;

  params.num_threads = 1;
  const DetectionResult serial =
      Detector(keys, params).Detect(rel, options, wm.size()).value();
  EXPECT_EQ(serial.wm, wm);
  for (const std::size_t threads : {2u, 8u}) {
    params.num_threads = threads;
    const DetectionResult parallel =
        Detector(keys, params).Detect(rel, options, wm.size()).value();
    ExpectDetectionsEqual(serial, parallel);
  }
}

TEST(ParallelParityTest, NullKeysParityAcrossThreadCounts) {
  Relation base = StandardRelation(3000, 44);
  for (std::size_t j = 0; j < 300; ++j) {
    ASSERT_TRUE(base.Set(j * 7 % base.NumRows(), 0, Value()).ok());
  }
  WatermarkParams params;
  params.e = 15;
  const BitVector wm = MakeWatermark(10, 44);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(44);

  params.num_threads = 1;
  Relation serial_rel = base;
  const EmbedReport serial =
      Embedder(keys, params).Embed(serial_rel, KA(), wm).value();
  for (const std::size_t threads : {2u, 8u}) {
    params.num_threads = threads;
    Relation rel = base;
    const EmbedReport report =
        Embedder(keys, params).Embed(rel, KA(), wm).value();
    ExpectReportsEqual(serial, report);
  }
}

// ------------------------------------ embed fast-path SIMD x thread grid

// A (K STRING, A STRING) relation: string keys take the serialized-arena
// hash path instead of the typed Hash64Int64Keys kernel.
Relation StringKeyRelation(std::size_t n, std::uint64_t seed) {
  Schema schema = Schema::Create({{"K", ColumnType::kString, false},
                                  {"A", ColumnType::kString, true}},
                                 "K")
                      .value();
  Relation rel(schema);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    // Variable-length keys so arena bounds are irregular across chunks.
    Value k("user-" + std::to_string(rng() % 900000));
    Value a("V" + std::to_string(rng() % 97));
    rel.AppendRowUnchecked({std::move(k), std::move(a)});
  }
  return rel;
}

// The fused embed pipeline (typed int64 key gather, arena fallback,
// DivisibilityMask64 fitness verdicts, bitset classify/apply) swept over
// SIMD dispatch level x thread count x key-column shape, in both k2-position
// and embedding-map modes with a pre-marked ledger. Every cell must be
// byte-identical — CSV snapshot, report counters, serialized embedding map,
// ledger — to the serial scalar reference pass (force_serial_apply +
// ForceSimdLevel(kScalar) + one thread). CI runs this under
// CATMARK_SIMD={avx2,sse2,off} and TSan/ASan as well; the in-process
// ForceSimdLevel sweep here covers levels the env clamp would hide.
TEST(EmbedFastPathGridTest, BitIdenticalAcrossSimdLevelsAndThreads) {
  struct Flavor {
    const char* name;
    Relation rel;
  };
  std::vector<Flavor> flavors;
  // int64 keys: the typed Hash64Int64Keys chunk path.
  flavors.push_back({"int64-key", StandardRelation(2600, 91)});
  // string keys: the serialized-arena Hash64Arena path.
  flavors.push_back({"string-key", StringKeyRelation(2600, 92)});
  // NULL-heavy int64 keys: dense-chunk gather with lazy NULL backfill.
  Relation null_heavy = StandardRelation(2600, 93);
  for (std::size_t j = 0; j < null_heavy.NumRows(); j += 4) {
    ASSERT_TRUE(null_heavy.Set(j, 0, Value()).ok());
  }
  flavors.push_back({"null-heavy", std::move(null_heavy)});

  constexpr SimdLevel kLevels[] = {SimdLevel::kAvx2, SimdLevel::kSse2,
                                   SimdLevel::kScalar};
  constexpr std::size_t kLedgerStride = 5;
  constexpr std::size_t kTargetCol = 1;
  const BitVector wm = MakeWatermark(8, 91);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(91);

  for (const Flavor& flavor : flavors) {
    const auto premark = [&](EmbeddingLedger& ledger) {
      for (std::size_t j = 0; j < flavor.rel.NumRows(); j += kLedgerStride) {
        ledger.Mark(j, kTargetCol);
      }
    };
    for (const bool map_mode : {false, true}) {
      SCOPED_TRACE(std::string(flavor.name) +
                   " map=" + std::to_string(map_mode));
      WatermarkParams params;
      params.e = 7;
      // The backend with SIMD kernels — levels must be indistinguishable.
      params.prf = PrfKind::kSipHash24;
      params.min_category_keep = 0;

      // Reference: the pre-fusion serial apply pass, scalar dispatch.
      ForceSimdLevel(SimdLevel::kScalar);
      params.num_threads = 1;
      EmbedOptions ref_options = KA(map_mode);
      ref_options.force_serial_apply = true;
      Relation ref_rel = flavor.rel;
      EmbeddingLedger ref_ledger;
      premark(ref_ledger);
      const EmbedReport ref = Embedder(keys, params)
                                  .Embed(ref_rel, ref_options, wm, nullptr,
                                         &ref_ledger)
                                  .value();
      EXPECT_EQ(ref.apply_shards, 1u);
      const std::string ref_csv = WriteCsvString(ref_rel);

      for (const SimdLevel level : kLevels) {
        for (const std::size_t threads : {1u, 2u, 8u}) {
          SCOPED_TRACE("simd=" + std::string(SimdLevelName(level)) +
                       " threads=" + std::to_string(threads));
          // Clamped to what the hardware supports; on an SSE2-only box the
          // kAvx2 cells re-run SSE2, which is still a valid parity cell.
          ForceSimdLevel(level);
          params.num_threads = threads;
          Relation rel = flavor.rel;
          EmbeddingLedger ledger;
          premark(ledger);
          const EmbedReport report = Embedder(keys, params)
                                         .Embed(rel, KA(map_mode), wm,
                                                nullptr, &ledger)
                                         .value();
          ExpectReportsEqual(ref, report);
          EXPECT_EQ(WriteCsvString(rel), ref_csv);
          EXPECT_EQ(ledger.size(), ref_ledger.size());
          for (std::size_t j = 0; j < flavor.rel.NumRows(); ++j) {
            ASSERT_EQ(ledger.IsMarked(j, kTargetCol),
                      ref_ledger.IsMarked(j, kTargetCol))
                << "row " << j;
          }
        }
      }
      ForceSimdLevel(std::nullopt);
    }
  }
  ForceSimdLevel(std::nullopt);
}

// -------------------------------------------- randomized property suite

// One randomized trial's configuration, drawn from the trial seed.
struct TrialConfig {
  bool item_scan = false;       // ItemScan schema vs minimal (K, A)
  std::string key_attr;
  std::string target_attr;
  std::size_t num_tuples = 0;
  std::size_t domain_size = 0;  // minimal schema only
  double zipf_s = 0.0;
  std::uint64_t e = 0;
  std::size_t wm_bits = 0;
  std::size_t payload_length = 0;  // 0 = derive (bandwidth N/e)
  long min_category_keep = 0;
  bool map_mode = false;
  std::size_t ledger_stride = 0;   // 0 = no ledger
  std::uint64_t seed = 0;
};

TrialConfig DrawTrialConfig(std::uint64_t trial_seed) {
  std::mt19937_64 rng(trial_seed);
  const auto draw = [&rng](std::size_t lo, std::size_t hi) {
    return lo + static_cast<std::size_t>(rng() % (hi - lo + 1));
  };
  TrialConfig c;
  c.seed = rng();
  c.item_scan = draw(0, 2) == 0;
  if (c.item_scan) {
    c.key_attr = "Visit_Nbr";
    c.target_attr = draw(0, 1) == 0 ? "Item_Nbr" : "Dept_Desc";
    c.num_tuples = draw(400, 2000);
    c.domain_size = draw(8, 120);  // num_items when targeting Item_Nbr
  } else {
    c.key_attr = "K";
    c.target_attr = "A";
    c.num_tuples = draw(300, 2500);
    c.domain_size = draw(2, 250);
  }
  c.zipf_s = static_cast<double>(draw(0, 12)) / 10.0;
  c.e = draw(1, 40);
  if (c.e > c.num_tuples) c.e = c.num_tuples;  // keep N/e >= 1
  c.wm_bits = draw(4, 24);
  // Explicit payloads must clear the ECC's minimum (|wm|); short ones force
  // heavy map-index wraparound at shard boundaries.
  c.payload_length = draw(0, 1) == 0 ? 0 : draw(c.wm_bits, c.wm_bits + 56);
  const long keeps[] = {0, 0, 1, 3};  // bias 0: sharded map path coverage
  c.min_category_keep = keeps[draw(0, 3)];
  c.map_mode = draw(0, 1) == 1;
  c.ledger_stride = draw(0, 2) == 0 ? draw(3, 17) : 0;
  return c;
}

Relation MakeTrialRelation(const TrialConfig& c) {
  if (c.item_scan) {
    SalesGenConfig gen;
    gen.num_tuples = c.num_tuples;
    gen.num_items = c.domain_size;
    gen.item_zipf_s = c.zipf_s;
    gen.seed = c.seed;
    return GenerateItemScan(gen);
  }
  KeyedCategoricalConfig gen;
  gen.num_tuples = c.num_tuples;
  gen.domain_size = c.domain_size;
  gen.zipf_s = c.zipf_s;
  gen.seed = c.seed;
  return GenerateKeyedCategorical(gen);
}

// ~50 seeded trials over random schemas, domain sizes, e/bandwidth
// parameters and thread counts {1, 2, 3, 8}: the sharded apply pass must
// reproduce the serial reference byte-for-byte — relation CSV snapshot,
// every report counter, the serialized embedding map and the ledger.
TEST(RandomizedParityTest, SerialAndShardedEmbedAreBitIdentical) {
  constexpr std::uint64_t kSuiteSeed = 0x5104'2004'0301ull;
  constexpr int kTrials = 50;
  int sharded_trials = 0;

  for (int trial = 0; trial < kTrials; ++trial) {
    const TrialConfig c = DrawTrialConfig(kSuiteSeed + trial);
    SCOPED_TRACE("trial " + std::to_string(trial) + " n=" +
                 std::to_string(c.num_tuples) + " e=" + std::to_string(c.e) +
                 " target=" + c.target_attr +
                 " map=" + std::to_string(c.map_mode) +
                 " keep=" + std::to_string(c.min_category_keep) +
                 " payload=" + std::to_string(c.payload_length) +
                 " ledger=" + std::to_string(c.ledger_stride));

    const Relation base = MakeTrialRelation(c);
    const BitVector wm = MakeWatermark(c.wm_bits, c.seed);
    const WatermarkKeySet keys = WatermarkKeySet::FromSeed(c.seed);

    WatermarkParams params;
    params.e = c.e;
    params.payload_length = c.payload_length;
    params.min_category_keep = c.min_category_keep;

    EmbedOptions options;
    options.key_attr = c.key_attr;
    options.target_attr = c.target_attr;
    options.build_embedding_map = c.map_mode;

    const std::size_t target_col = static_cast<std::size_t>(
        base.schema().ColumnIndex(c.target_attr));
    const auto premark = [&](EmbeddingLedger& ledger) {
      if (c.ledger_stride == 0) return;
      for (std::size_t j = 0; j < base.NumRows(); j += c.ledger_stride) {
        ledger.Mark(j, target_col);
      }
    };

    params.num_threads = 1;
    Relation serial_rel = base;
    EmbeddingLedger serial_ledger;
    premark(serial_ledger);
    const Result<EmbedReport> serial_result =
        Embedder(keys, params)
            .Embed(serial_rel, options, wm, nullptr,
                   c.ledger_stride != 0 ? &serial_ledger : nullptr);
    ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();
    const EmbedReport& serial = serial_result.value();
    EXPECT_EQ(serial.apply_shards, 1u);
    const std::string serial_csv = WriteCsvString(serial_rel);

    for (const std::size_t threads : {2u, 3u, 8u}) {
      params.num_threads = threads;
      Relation rel = base;
      EmbeddingLedger ledger;
      premark(ledger);
      const Result<EmbedReport> result =
          Embedder(keys, params)
              .Embed(rel, options, wm, nullptr,
                     c.ledger_stride != 0 ? &ledger : nullptr);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const EmbedReport& report = result.value();

      ExpectReportsEqual(serial, report);
      EXPECT_EQ(WriteCsvString(rel), serial_csv) << "threads=" << threads;
      EXPECT_EQ(ledger.size(), serial_ledger.size());
      for (std::size_t j = 0; j < base.NumRows(); ++j) {
        ASSERT_EQ(ledger.IsMarked(j, target_col),
                  serial_ledger.IsMarked(j, target_col))
            << "row " << j << " threads=" << threads;
      }

      // Pin the path: map mode with the draining guard falls back to the
      // serial apply pass; everything else shards.
      const bool expect_serial = c.map_mode && c.min_category_keep > 0;
      EXPECT_EQ(report.apply_shards, expect_serial ? 1u : threads)
          << "threads=" << threads;
      if (!expect_serial) ++sharded_trials;
    }
  }
  // The draw is biased so the sharded pipeline gets real coverage.
  EXPECT_GE(sharded_trials, kTrials);
}

// --------------------------------------- sharded apply edge-case pinning

WatermarkParams MapPathParams(std::size_t threads) {
  WatermarkParams params;
  params.e = 1;  // every tuple fit: maximal shard occupancy
  params.min_category_keep = 0;  // guard off: sharded map path engages
  params.num_threads = threads;
  return params;
}

void ExpectEmbedMatchesSerial(const Relation& base,
                              const WatermarkParams& parallel_params,
                              const EmbedOptions& options,
                              const BitVector& wm,
                              EmbeddingLedger* serial_ledger = nullptr,
                              EmbeddingLedger* parallel_ledger = nullptr,
                              std::size_t expect_shards = 0) {
  WatermarkParams serial_params = parallel_params;
  serial_params.num_threads = 1;
  Relation serial_rel = base;
  const EmbedReport serial = Embedder(WatermarkKeySet::FromSeed(7),
                                      serial_params)
                                 .Embed(serial_rel, options, wm, nullptr,
                                        serial_ledger)
                                 .value();
  EXPECT_EQ(serial.apply_shards, 1u);

  Relation rel = base;
  const EmbedReport report = Embedder(WatermarkKeySet::FromSeed(7),
                                      parallel_params)
                                 .Embed(rel, options, wm, nullptr,
                                        parallel_ledger)
                                 .value();
  if (expect_shards != 0) EXPECT_EQ(report.apply_shards, expect_shards);
  ExpectReportsEqual(serial, report);
  EXPECT_EQ(WriteCsvString(rel), WriteCsvString(serial_rel));
}

TEST(ShardedApplyEdgeCaseTest, SingleTupleShards) {
  // n = 5 with 8 requested workers: EffectiveThreadCount caps at one tuple
  // per shard; every shard's map segment holds at most one entry.
  const Relation base = StandardRelation(5, 51);
  ExpectEmbedMatchesSerial(base, MapPathParams(8), KA(/*map=*/true),
                           MakeWatermark(4, 51), nullptr, nullptr,
                           /*expect_shards=*/5);
}

TEST(ShardedApplyEdgeCaseTest, AllSkipShards) {
  // Every cell pre-marked in the ledger: all shards classify all tuples as
  // ledger skips, every segment splices empty, the map stays empty.
  const Relation base = StandardRelation(400, 52);
  EmbeddingLedger serial_ledger;
  EmbeddingLedger parallel_ledger;
  for (std::size_t j = 0; j < base.NumRows(); ++j) {
    serial_ledger.Mark(j, 1);
    parallel_ledger.Mark(j, 1);
  }
  WatermarkParams params = MapPathParams(8);
  WatermarkParams serial_params = params;
  serial_params.num_threads = 1;

  Relation serial_rel = base;
  const EmbedReport serial =
      Embedder(WatermarkKeySet::FromSeed(7), serial_params)
          .Embed(serial_rel, KA(/*map=*/true), MakeWatermark(4, 52), nullptr,
                 &serial_ledger)
          .value();
  Relation rel = base;
  const EmbedReport report =
      Embedder(WatermarkKeySet::FromSeed(7), params)
          .Embed(rel, KA(/*map=*/true), MakeWatermark(4, 52), nullptr,
                 &parallel_ledger)
          .value();
  EXPECT_EQ(report.apply_shards, 8u);
  ExpectReportsEqual(serial, report);
  EXPECT_EQ(report.embedding_map.size(), 0u);
  EXPECT_EQ(report.skipped_by_ledger, report.fit_tuples);
  EXPECT_EQ(report.altered_tuples, 0u);
  EXPECT_EQ(WriteCsvString(rel), WriteCsvString(base));
}

TEST(ShardedApplyEdgeCaseTest, EmptyShards) {
  // e = 50 over 200 tuples: only a handful are fit, so several shards carry
  // zero commits and contribute nothing to the prefix sum.
  const Relation base = StandardRelation(200, 53);
  WatermarkParams params = MapPathParams(8);
  params.e = 50;
  ExpectEmbedMatchesSerial(base, params, KA(/*map=*/true),
                           MakeWatermark(4, 53), nullptr, nullptr,
                           /*expect_shards=*/8);
}

TEST(ShardedApplyEdgeCaseTest, PayloadIndexWraparoundAtShardBoundaries) {
  // payload_length = 3 against ~64 commits: the running map index wraps the
  // payload many times per shard and most shards start mid-cycle — their
  // prefix-sum base must continue the cycle exactly where the previous
  // shard left it.
  const Relation base = StandardRelation(64, 54);
  WatermarkParams params = MapPathParams(8);
  params.payload_length = 3;
  ExpectEmbedMatchesSerial(base, params, KA(/*map=*/true),
                           MakeWatermark(3, 54), nullptr, nullptr,
                           /*expect_shards=*/8);
}

TEST(ShardedApplyEdgeCaseTest, HashPathWithDrainingGuard) {
  // k2 positions + draining guard: parallel classify, serial guard
  // resolution over running counts, parallel apply. A small skewed domain
  // makes the guard actually veto alterations.
  KeyedCategoricalConfig config;
  config.num_tuples = 2000;
  config.domain_size = 6;
  config.zipf_s = 1.3;
  config.seed = 55;
  const Relation base = GenerateKeyedCategorical(config);
  WatermarkParams params;
  params.e = 2;
  params.min_category_keep = 40;
  params.num_threads = 8;
  ExpectEmbedMatchesSerial(base, params, KA(/*map=*/false),
                           MakeWatermark(6, 55), nullptr, nullptr,
                           /*expect_shards=*/8);
}

TEST(ShardedApplyEdgeCaseTest, SerialFallbackPinning) {
  const Relation base = StandardRelation(500, 56);
  const BitVector wm = MakeWatermark(4, 56);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(7);

  // num_threads == 1: serial semantics preserved by definition.
  {
    WatermarkParams params = MapPathParams(1);
    Relation rel = base;
    EXPECT_EQ(Embedder(keys, params).Embed(rel, KA(), wm).value().apply_shards,
              1u);
  }
  // Map mode with the draining guard on: bit positions depend on guard
  // verdicts, so the sharded pipeline must refuse.
  {
    WatermarkParams params = MapPathParams(8);
    params.min_category_keep = 1;
    Relation rel = base;
    EXPECT_EQ(Embedder(keys, params)
                  .Embed(rel, KA(/*map=*/true), wm)
                  .value()
                  .apply_shards,
              1u);
  }
  // A quality assessor (even plugin-less, it logs every alteration for
  // rollback): stateful, serial.
  {
    WatermarkParams params = MapPathParams(8);
    Relation rel = base;
    QualityAssessor assessor;
    ASSERT_TRUE(assessor.Begin(rel).ok());
    EXPECT_EQ(Embedder(keys, params)
                  .Embed(rel, KA(), wm, &assessor)
                  .value()
                  .apply_shards,
              1u);
  }
  // k2 mode with the guard on still shards (guard resolution is the cheap
  // serial scan between the parallel phases).
  {
    WatermarkParams params = MapPathParams(8);
    params.min_category_keep = 1;
    Relation rel = base;
    EXPECT_EQ(Embedder(keys, params).Embed(rel, KA(), wm).value().apply_shards,
              8u);
  }
}

}  // namespace
}  // namespace catmark
