// Per-bit decode confidence: the court-facing evidence-quality signal.

#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "ecc/majority.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

TEST(MajorityConfidenceTest, UnanimousVotesGiveFullConfidence) {
  MajorityVotingCode code;
  const BitVector wm = MakeWatermark(5, 1);
  const BitVector payload = code.Encode(wm, 100).value();
  ExtractedPayload full(payload.size());
  full.bits = payload;
  full.present = BitVector(payload.size(), 1);
  const std::vector<double> conf = code.DecodeConfidence(full, 5);
  ASSERT_EQ(conf.size(), 5u);
  for (double c : conf) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(MajorityConfidenceTest, ErasedBitsGetZero) {
  MajorityVotingCode code;
  const BitVector wm = MakeWatermark(5, 2);
  const BitVector payload = code.Encode(wm, 100).value();
  ExtractedPayload damaged(payload.size());
  damaged.bits = payload;
  damaged.present = BitVector(payload.size(), 1);
  // Erase every position of residue class 0 (0, 5, 10, ...).
  for (std::size_t i = 0; i < payload.size(); i += 5) {
    damaged.present.Set(i, 0);
  }
  const std::vector<double> conf = code.DecodeConfidence(damaged, 5);
  EXPECT_DOUBLE_EQ(conf[0], 0.0);
  for (std::size_t j = 1; j < 5; ++j) EXPECT_DOUBLE_EQ(conf[j], 1.0);
}

TEST(MajorityConfidenceTest, FlipsReduceConfidenceProportionally) {
  MajorityVotingCode code;
  const BitVector wm = BitVector(4, 1);
  BitVector payload = code.Encode(wm, 100).value();  // 25 votes per bit
  // Flip 5 of bit 0's votes: margin 15/25 = 0.6.
  for (std::size_t k = 0; k < 5; ++k) payload.Flip(k * 4);
  ExtractedPayload p(payload.size());
  p.bits = payload;
  p.present = BitVector(payload.size(), 1);
  const std::vector<double> conf = code.DecodeConfidence(p, 4);
  EXPECT_NEAR(conf[0], 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(conf[1], 1.0);
}

TEST(DetectorConfidenceTest, CleanDetectionIsFullyConfident) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 6000;
  gen.domain_size = 100;
  gen.seed = 91;
  Relation rel = GenerateKeyedCategorical(gen);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(91);
  WatermarkParams params;
  params.e = 30;
  const BitVector wm = MakeWatermark(10, 91);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, options, wm).value();

  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  detect_options.domain = report.domain;
  const DetectionResult clean =
      detector.Detect(rel, detect_options, wm.size()).value();
  ASSERT_EQ(clean.bit_confidence.size(), wm.size());
  double clean_mean = 0.0;
  for (double c : clean.bit_confidence) clean_mean += c;
  clean_mean /= static_cast<double>(wm.size());
  EXPECT_DOUBLE_EQ(clean_mean, 1.0);

  // Attack damage shows up as reduced confidence even where bits decode
  // correctly — the evidence weakens before it breaks.
  const Relation attacked =
      SubsetAlterationAttack(rel, "A", 0.4, 99).value();
  const DetectionResult damaged =
      detector.Detect(attacked, detect_options, wm.size()).value();
  double damaged_mean = 0.0;
  for (double c : damaged.bit_confidence) damaged_mean += c;
  damaged_mean /= static_cast<double>(wm.size());
  EXPECT_LT(damaged_mean, clean_mean);
  EXPECT_GT(damaged_mean, 0.0);
}

TEST(DetectorConfidenceTest, NonMajorityEccYieldsEmptyConfidence) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.domain_size = 50;
  gen.seed = 92;
  Relation rel = GenerateKeyedCategorical(gen);
  const WatermarkKeySet keys = WatermarkKeySet::FromSeed(92);
  WatermarkParams params;
  params.e = 20;
  params.ecc = EccKind::kHamming74;
  const BitVector wm = MakeWatermark(8, 92);
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  const EmbedReport report =
      Embedder(keys, params).Embed(rel, options, wm).value();
  const Detector detector(keys, params);
  DetectOptions detect_options;
  detect_options.key_attr = "K";
  detect_options.target_attr = "A";
  detect_options.payload_length = report.payload_length;
  const DetectionResult result =
      detector.Detect(rel, detect_options, wm.size()).value();
  EXPECT_TRUE(result.bit_confidence.empty());
}

}  // namespace
}  // namespace catmark
