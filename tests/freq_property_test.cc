// Parameterized property sweep of the frequency-domain channel: the blind
// embed -> detect round trip must hold across quantization steps, domain
// sizes, mark lengths and skews, and survive subset selection scaled to the
// quantization robustness radius.

#include <gtest/gtest.h>

#include <tuple>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/freq_mark.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

struct FreqConfig {
  std::size_t n;
  std::size_t domain;
  std::size_t wm_bits;
  double q;
  double zipf;
};

std::string FreqConfigName(const ::testing::TestParamInfo<FreqConfig>& info) {
  const FreqConfig& c = info.param;
  std::string q = std::to_string(static_cast<int>(c.q * 1000));
  std::string z = std::to_string(static_cast<int>(c.zipf * 10));
  return "n" + std::to_string(c.n) + "_d" + std::to_string(c.domain) + "_w" +
         std::to_string(c.wm_bits) + "_q" + q + "_z" + z;
}

class FreqMarkProperty : public ::testing::TestWithParam<FreqConfig> {
 protected:
  void SetUp() override {
    const FreqConfig& c = GetParam();
    KeyedCategoricalConfig gen;
    gen.num_tuples = c.n;
    gen.domain_size = c.domain;
    gen.zipf_s = c.zipf;
    gen.seed = 400 + c.domain + c.wm_bits;
    rel_ = GenerateKeyedCategorical(gen);
    FreqMarkParams params;
    params.quantization_step = c.q;
    marker_ = std::make_unique<FrequencyMarker>(
        SecretKey::FromSeed(500 + c.domain), params);
    wm_ = MakeWatermark(c.wm_bits, 600 + c.domain + c.wm_bits);
    domain_ = CategoricalDomain::FromRelationColumn(rel_, 1).value();
    Result<FreqEmbedReport> report = marker_->Embed(rel_, "A", wm_);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    report_ = std::move(report).value();
  }

  Relation rel_;
  CategoricalDomain domain_;
  std::unique_ptr<FrequencyMarker> marker_;
  BitVector wm_;
  FreqEmbedReport report_;
};

TEST_P(FreqMarkProperty, BlindRoundTripIsIdentity) {
  const FreqDetectReport detect =
      marker_->Detect(rel_, "A", wm_.size()).value();
  EXPECT_EQ(detect.wm, wm_);
}

TEST_P(FreqMarkProperty, RoundTripWithOwnerDomain) {
  const FreqDetectReport detect =
      marker_->Detect(rel_, "A", wm_.size(), domain_).value();
  EXPECT_EQ(detect.wm, wm_);
}

TEST_P(FreqMarkProperty, InvariantUnderResorting) {
  const Relation shuffled = ResortAttack(rel_, 777);
  EXPECT_EQ(marker_->Detect(shuffled, "A", wm_.size()).value().wm, wm_);
}

TEST_P(FreqMarkProperty, SurvivesHalfSubsetWithOwnerDomain) {
  const Relation kept = HorizontalPartitionAttack(rel_, 0.5, 778).value();
  const FreqDetectReport detect =
      marker_->Detect(kept, "A", wm_.size(), domain_).value();
  const MatchStats stats = MatchWatermark(wm_, detect.wm);
  EXPECT_GE(stats.match_fraction,
            1.0 - 1.0 / static_cast<double>(wm_.size()));
}

TEST_P(FreqMarkProperty, EmbeddingCostBounded) {
  // Σ|delta|/2 is at most ~|wm| cells of mass plus the floors.
  const double bound =
      (static_cast<double>(wm_.size()) + 2.0) * GetParam().q *
      static_cast<double>(rel_.NumRows());
  EXPECT_LE(static_cast<double>(report_.tuples_moved), bound);
}

TEST_P(FreqMarkProperty, DomainSurvivesEmbedding) {
  const CategoricalDomain after =
      CategoricalDomain::FromRelationColumn(rel_, 1).value();
  EXPECT_EQ(after.size(), domain_.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FreqMarkProperty,
    ::testing::Values(
        // Vary quantization step.
        FreqConfig{30000, 64, 8, 0.01, 1.0},
        FreqConfig{30000, 64, 8, 0.02, 1.0},
        FreqConfig{30000, 64, 8, 0.04, 1.0},
        // Vary domain size.
        FreqConfig{30000, 32, 8, 0.02, 1.0},
        FreqConfig{30000, 256, 8, 0.02, 1.0},
        // Vary mark length.
        FreqConfig{30000, 64, 4, 0.02, 1.0},
        FreqConfig{30000, 64, 16, 0.015, 1.0},
        // Vary skew (uniform through heavy).
        FreqConfig{30000, 64, 8, 0.02, 0.0},
        FreqConfig{30000, 64, 8, 0.02, 1.5},
        // Vary N.
        FreqConfig{8000, 64, 8, 0.02, 1.0},
        FreqConfig{60000, 64, 8, 0.02, 1.0}),
    FreqConfigName);

}  // namespace
}  // namespace catmark
