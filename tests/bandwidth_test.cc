#include <gtest/gtest.h>

#include <cmath>

#include "core/bandwidth.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

TEST(BandwidthTest, DirectDomainBitsMatchPaperExample) {
  // "in the case of departure cities, a value of nA = 16000 is going to
  // yield only 14 bits" (Section 3.1): log2(16000) ~ 13.97.
  KeyedCategoricalConfig gen;
  gen.num_tuples = 40000;
  gen.domain_size = 1000;
  gen.seed = 7;
  const Relation rel = GenerateKeyedCategorical(gen);
  const AttributeBandwidth bw =
      AnalyzeAttributeBandwidth(rel, "A", 60, 0.01).value();
  EXPECT_NEAR(bw.direct_domain_bits,
              std::log2(static_cast<double>(bw.domain_size)), 1e-9);
  EXPECT_LE(bw.direct_domain_bits, 10.0);  // ~1000 values -> ~10 bits only
}

TEST(BandwidthTest, AssociationChannelScalesWithNOverE) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 12000;
  gen.domain_size = 100;
  const Relation rel = GenerateKeyedCategorical(gen);
  const AttributeBandwidth bw60 =
      AnalyzeAttributeBandwidth(rel, "A", 60, 0.01).value();
  const AttributeBandwidth bw30 =
      AnalyzeAttributeBandwidth(rel, "A", 30, 0.01).value();
  EXPECT_EQ(bw60.association_bits, 200u);
  EXPECT_EQ(bw30.association_bits, 400u);
  EXPECT_NEAR(bw60.association_alteration_fraction, 1.0 / 60.0, 1e-12);
  // More bandwidth costs proportionally more alterations (Section 2.4's
  // "increasing function of allowed alterations").
  EXPECT_GT(bw30.association_alteration_fraction,
            bw60.association_alteration_fraction);
}

TEST(BandwidthTest, EntropyBoundedByLogDomain) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 20000;
  gen.domain_size = 64;
  gen.zipf_s = 1.2;
  const Relation rel = GenerateKeyedCategorical(gen);
  const AttributeBandwidth bw =
      AnalyzeAttributeBandwidth(rel, "A", 60, 0.01).value();
  EXPECT_GT(bw.entropy_bits, 0.0);
  EXPECT_LE(bw.entropy_bits, bw.direct_domain_bits + 1e-9);
  // Skewed data has visibly less entropy than the uniform bound.
  EXPECT_LT(bw.entropy_bits, bw.direct_domain_bits - 0.3);
}

TEST(BandwidthTest, FrequencyChannelCapacity) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 20000;
  gen.domain_size = 64;
  const Relation rel = GenerateKeyedCategorical(gen);
  const AttributeBandwidth bw =
      AnalyzeAttributeBandwidth(rel, "A", 60, 0.02).value();
  EXPECT_EQ(bw.frequency_bits, 32u);  // nA / 2
  EXPECT_NEAR(bw.frequency_alteration_per_bit, 0.01, 1e-12);
}

TEST(BandwidthTest, RelationSweepCoversAllCategoricalAttributes) {
  SalesGenConfig gen;
  gen.num_tuples = 5000;
  const Relation rel = GenerateItemScan(gen);
  const auto all = AnalyzeRelationBandwidth(rel, 60, 0.01).value();
  ASSERT_EQ(all.size(), 3u);  // Item_Nbr, Store_Nbr, Dept_Desc
  EXPECT_EQ(all[0].attribute, "Item_Nbr");
  EXPECT_GT(all[0].domain_size, all[2].domain_size);  // items >> departments
}

TEST(BandwidthTest, RejectsBadParameters) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 1000;
  const Relation rel = GenerateKeyedCategorical(gen);
  EXPECT_FALSE(AnalyzeAttributeBandwidth(rel, "A", 0, 0.01).ok());
  EXPECT_FALSE(AnalyzeAttributeBandwidth(rel, "A", 60, 0.9).ok());
  EXPECT_FALSE(AnalyzeAttributeBandwidth(rel, "NOPE", 60, 0.01).ok());
}

}  // namespace
}  // namespace catmark
