// The keyed-PRF subsystem: reference vectors per backend (published
// SipHash-2-4 vectors, RFC 4231 HMAC-SHA256 cases), bit-compatibility of
// the default backend with the legacy KeyedHasher, batch-vs-single-shot
// identity, and the --prf / CATMARK_PRF name validation.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "crypto/keyed_hash.h"
#include "crypto/prf.h"
#include "crypto/siphash.h"
#include "relation/value.h"

namespace catmark {
namespace {

// ----------------------------------------------------------- raw SipHash-2-4

// The published reference vectors (Aumasson & Bernstein's SipHash
// repository, vectors_sip64): key = 00 01 .. 0f, message i = bytes
// 00 01 .. i-1, SipHash-2-4 64-bit output read little-endian. Sixteen
// lengths cover every tail residue (0..7 bytes) on both sides of a full
// 8-byte block.
TEST(SipHashTest, ReferenceVectors) {
  const std::uint64_t kExpected[16] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
      0x9e0082df0ba9e4b0ULL, 0x7a5dbbc594ddb9f3ULL, 0xf4b32f46226bada7ULL,
      0x751e8fbc860ee5fbULL, 0x14ea5627c0843d90ULL, 0xf723ca908e7af2eeULL,
      0xa129ca6149be45e5ULL,
  };
  std::uint8_t key[16];
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::uint8_t message[16];
  for (int i = 0; i < 16; ++i) message[i] = static_cast<std::uint8_t>(i);
  for (std::size_t len = 0; len < 16; ++len) {
    EXPECT_EQ(SipHash24(key, message, len), kExpected[len])
        << "message length " << len;
  }
}

TEST(SipHashTest, KeySplitIsLittleEndian) {
  std::uint8_t key[16];
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  const std::uint8_t msg[3] = {0, 1, 2};
  EXPECT_EQ(SipHash24(key, msg, 3),
            SipHash24(0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL, msg, 3));
}

// -------------------------------------------------------------- name/registry

TEST(PrfRegistryTest, NamesRoundTrip) {
  for (const PrfKind kind : {PrfKind::kKeyedHash, PrfKind::kHmacSha256,
                             PrfKind::kSipHash24}) {
    const Result<PrfKind> back = PrfKindFromName(PrfKindName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
}

TEST(PrfRegistryTest, UnknownNameListsRegisteredBackends) {
  const Result<PrfKind> r = PrfKindFromName("blake3");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().ToString().find("keyed-hash"), std::string::npos);
  EXPECT_NE(r.status().ToString().find("hmac-sha256"), std::string::npos);
  EXPECT_NE(r.status().ToString().find("siphash24"), std::string::npos);
}

TEST(PrfRegistryTest, NameMatchingIsExact) {
  // Mirrors the ResolveThreadCountEnv strictness: no case folding, no
  // trimming — "SIPHASH24" or "siphash24 " must not silently select a
  // backend the user did not spell.
  for (const char* bad : {"SIPHASH24", " siphash24", "siphash24 ",
                          "siphash-24", "keyed_hash", "hmac", "sha256"}) {
    EXPECT_FALSE(PrfKindFromName(bad).ok()) << bad;
  }
}

TEST(PrfRegistryTest, EnvUnsetFallsBackPerCaller) {
  for (const PrfKind fallback : {PrfKind::kKeyedHash, PrfKind::kSipHash24}) {
    const Result<PrfKind> unset = ResolvePrfKindEnv(nullptr, fallback);
    ASSERT_TRUE(unset.ok());
    EXPECT_EQ(unset.value(), fallback);
    const Result<PrfKind> empty = ResolvePrfKindEnv("", fallback);
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(empty.value(), fallback);
  }
}

TEST(PrfRegistryTest, EnvGarbageIsInvalidArgumentNotFallback) {
  // An ignored CATMARK_PRF typo would run detection under the wrong
  // primitive and read as a destroyed watermark — so unlike
  // CATMARK_THREADS, garbage here is an error, not a fallback.
  for (const char* bad : {"bogus", "0", "siphash", "keyedhash", "auto"}) {
    const Result<PrfKind> r = ResolvePrfKindEnv(bad, PrfKind::kKeyedHash);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_TRUE(r.status().IsInvalidArgument()) << bad;
  }
}

TEST(PrfRegistryTest, ExplicitParamsChoiceSkipsTheEnvironment) {
  const Result<PrfKind> r = ResolvePrfKind(PrfKind::kSipHash24);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), PrfKind::kSipHash24);
}

// ----------------------------------------------------------------- backends

std::vector<std::string_view> Views(const std::vector<std::string>& inputs) {
  return std::vector<std::string_view>(inputs.begin(), inputs.end());
}

TEST(KeyedPrfTest, KeyedHashBackendIsBitCompatibleWithKeyedHasher) {
  const SecretKey key = SecretKey::FromPassphrase("golden");
  for (const HashAlgorithm algo :
       {HashAlgorithm::kMd5, HashAlgorithm::kSha1, HashAlgorithm::kSha256}) {
    const KeyedHasher legacy(key, algo);
    const auto prf = CreateKeyedPrf(PrfKind::kKeyedHash, key, algo);
    for (const std::string_view msg :
         {std::string_view(""), std::string_view("watermark"),
          std::string_view("a much longer message that crosses the "
                           "64-byte compression-block boundary of the "
                           "underlying hash function")}) {
      EXPECT_EQ(prf->Hash64(msg), legacy.Hash64(msg));
    }
  }
}

TEST(KeyedPrfTest, KeyedHashBackendMatchesGoldenVectors) {
  // The pinned H(V,k1) values from golden_test.cc: the default PRF backend
  // must keep producing them, or deployed watermarks orphan.
  const SecretKey k1 = SecretKey::FromPassphrase("golden/k1");
  const auto prf = CreateKeyedPrf(PrfKind::kKeyedHash, k1);
  const std::uint8_t one_be[8] = {0, 0, 0, 0, 0, 0, 0, 1};
  EXPECT_EQ(prf->Hash64(one_be, 8), 0x1a6a2a152f01c4e4ULL);
  EXPECT_EQ(prf->Hash64(std::string_view("watermark")),
            0x5c16678f632a5643ULL);
}

TEST(KeyedPrfTest, HmacBackendMatchesRfc4231Vectors) {
  // RFC 4231 test case 1: the PRF truncation is the first 8 digest bytes
  // big-endian, so Hash64 must equal the digest prefix.
  const SecretKey key1 =
      SecretKey::FromBytes(std::vector<std::uint8_t>(20, 0x0b));
  const auto prf1 = CreateKeyedPrf(PrfKind::kHmacSha256, key1);
  EXPECT_EQ(prf1->Hash64(std::string_view("Hi There")),
            0xb0344c61d8db3853ULL);

  // RFC 4231 test case 2 ("Jefe").
  const std::string jefe = "Jefe";
  const SecretKey key2 = SecretKey::FromBytes(
      std::vector<std::uint8_t>(jefe.begin(), jefe.end()));
  const auto prf2 = CreateKeyedPrf(PrfKind::kHmacSha256, key2);
  EXPECT_EQ(prf2->Hash64(std::string_view("what do ya want for nothing?")),
            0x5bdcc146bf60754eULL);
}

TEST(KeyedPrfTest, SipHashBackendIsDeterministicAndKeyed) {
  const auto a =
      CreateKeyedPrf(PrfKind::kSipHash24, SecretKey::FromSeed(1));
  const auto a2 =
      CreateKeyedPrf(PrfKind::kSipHash24, SecretKey::FromSeed(1));
  const auto b =
      CreateKeyedPrf(PrfKind::kSipHash24, SecretKey::FromSeed(2));
  EXPECT_EQ(a->Hash64(std::string_view("msg")),
            a2->Hash64(std::string_view("msg")));
  EXPECT_NE(a->Hash64(std::string_view("msg")),
            b->Hash64(std::string_view("msg")));
}

TEST(KeyedPrfTest, BackendsDisagreeWithEachOther) {
  // Sanity: selecting a different backend really changes the channel.
  const SecretKey key = SecretKey::FromSeed(7);
  const auto kh = CreateKeyedPrf(PrfKind::kKeyedHash, key);
  const auto hmac = CreateKeyedPrf(PrfKind::kHmacSha256, key);
  const auto sip = CreateKeyedPrf(PrfKind::kSipHash24, key);
  const std::string_view msg = "tuple-key";
  EXPECT_NE(kh->Hash64(msg), hmac->Hash64(msg));
  EXPECT_NE(kh->Hash64(msg), sip->Hash64(msg));
  EXPECT_NE(hmac->Hash64(msg), sip->Hash64(msg));
}

TEST(KeyedPrfTest, Hash64ColumnMatchesSingleShotForEveryBackend) {
  std::vector<std::string> inputs;
  for (int i = 0; i < 300; ++i) {
    inputs.push_back("key-" + std::to_string(i * 7919));
  }
  inputs.push_back("");  // empty message
  inputs.push_back(std::string(200, 'x'));
  const std::vector<std::string_view> views = Views(inputs);
  for (const PrfKind kind : {PrfKind::kKeyedHash, PrfKind::kHmacSha256,
                             PrfKind::kSipHash24}) {
    const auto prf = CreateKeyedPrf(kind, SecretKey::FromSeed(42));
    std::vector<std::uint64_t> batch(views.size(), 0);
    prf->Hash64Column(views, batch);
    for (std::size_t i = 0; i < views.size(); ++i) {
      EXPECT_EQ(batch[i], prf->Hash64(views[i]))
          << PrfKindName(kind) << " input " << i;
    }
  }
}

TEST(KeyedPrfTest, Hash64ArenaBoundsEdgesForEveryBackend) {
  // The arena API's degenerate shapes, for every backend: a zero-message
  // span is bounds == {0} with an empty out (nothing may be read from the
  // arena pointer, which is null here), a single empty message is bounds ==
  // {0, 0}, and empty messages may sit between non-empty ones. None of
  // these may underflow the bounds arithmetic or touch out-of-range arena
  // bytes.
  for (const PrfKind kind : {PrfKind::kKeyedHash, PrfKind::kHmacSha256,
                             PrfKind::kSipHash24}) {
    const auto prf = CreateKeyedPrf(kind, SecretKey::FromSeed(11));

    const std::size_t empty_bounds[1] = {0};
    prf->Hash64Arena(nullptr, std::span<const std::size_t>(empty_bounds),
                     std::span<std::uint64_t>());  // must not crash

    const std::size_t one_empty[2] = {0, 0};
    std::uint64_t out1[1] = {~0ULL};
    prf->Hash64Arena(nullptr, std::span<const std::size_t>(one_empty), out1);
    EXPECT_EQ(out1[0], prf->Hash64(std::string_view()))
        << PrfKindName(kind) << " single empty message";

    // Empty messages interleaved with real ones: {"", "ab", "", "c", ""}.
    const std::uint8_t arena[3] = {'a', 'b', 'c'};
    const std::size_t bounds[6] = {0, 0, 2, 2, 3, 3};
    std::uint64_t out5[5];
    prf->Hash64Arena(arena, std::span<const std::size_t>(bounds), out5);
    const std::string_view msgs[5] = {"", "ab", "", "c", ""};
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(out5[i], prf->Hash64(msgs[i]))
          << PrfKindName(kind) << " message " << i;
    }
  }
}

TEST(KeyedPrfTest, Hash64FixedEdgesForEveryBackend) {
  // Fixed-stride counterpart: zero messages, zero-length messages at a
  // positive stride, and stride > len (padding bytes must be ignored).
  for (const PrfKind kind : {PrfKind::kKeyedHash, PrfKind::kHmacSha256,
                             PrfKind::kSipHash24}) {
    const auto prf = CreateKeyedPrf(kind, SecretKey::FromSeed(12));

    prf->Hash64Fixed(nullptr, 0, 0, std::span<std::uint64_t>());

    const std::uint8_t pad[6] = {1, 2, 3, 4, 5, 6};
    std::uint64_t out3[3];
    prf->Hash64Fixed(pad, 0, 2, out3);  // three empty messages, stride 2
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(out3[i], prf->Hash64(std::string_view()))
          << PrfKindName(kind) << " empty message " << i;
    }

    std::uint64_t out2[2];
    prf->Hash64Fixed(pad, 2, 3, out2);  // {1,2} and {4,5}; 3 and 6 are pad
    EXPECT_EQ(out2[0], prf->Hash64(pad, 2)) << PrfKindName(kind);
    EXPECT_EQ(out2[1], prf->Hash64(pad + 3, 2)) << PrfKindName(kind);
  }
}

TEST(KeyedPrfTest, Hash64Int64KeysForEveryBackend) {
  // The typed batch form must agree with hashing each key's canonical
  // serialization (Value::SerializeForHash) for every backend, including
  // the SipHash24 override that feeds the SIMD int64 kernels.
  const std::vector<std::int64_t> vals = {
      0,
      1,
      -1,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max(),
      42,
      -99999,
      0x0102030405060708LL};
  for (const PrfKind kind : {PrfKind::kKeyedHash, PrfKind::kHmacSha256,
                             PrfKind::kSipHash24}) {
    const auto prf = CreateKeyedPrf(kind, SecretKey::FromSeed(31));

    prf->Hash64Int64Keys(nullptr, 0, std::span<std::uint64_t>());

    std::vector<std::uint64_t> out(vals.size());
    prf->Hash64Int64Keys(vals.data(), vals.size(), out);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      std::vector<std::uint8_t> bytes;
      Value(vals[i]).SerializeForHash(bytes);
      EXPECT_EQ(out[i], prf->Hash64(bytes.data(), bytes.size()))
          << PrfKindName(kind) << " value " << vals[i];
    }
  }
}

TEST(KeyedPrfTest, NameMatchesKind) {
  for (const PrfKind kind : {PrfKind::kKeyedHash, PrfKind::kHmacSha256,
                             PrfKind::kSipHash24}) {
    const auto prf = CreateKeyedPrf(kind, SecretKey::FromSeed(5));
    EXPECT_EQ(prf->kind(), kind);
    EXPECT_EQ(prf->Name(), PrfKindName(kind));
  }
}

}  // namespace
}  // namespace catmark
