#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bits.h"
#include "core/codec.h"
#include "core/keys.h"

namespace catmark {
namespace {

// ---------------------------------------------------------------- fitness

TEST(FitnessTest, DeterministicPerKey) {
  const SecretKey k1 = SecretKey::FromSeed(1);
  const FitnessSelector a(k1, 10);
  const FitnessSelector b(k1, 10);
  const Value v(std::int64_t{12345});
  EXPECT_EQ(a.KeyHash(v), b.KeyHash(v));
  EXPECT_EQ(a.IsFit(v), b.IsFit(v));
}

TEST(FitnessTest, DifferentKeysSelectDifferentTuples) {
  const FitnessSelector a(SecretKey::FromSeed(1), 5);
  const FitnessSelector b(SecretKey::FromSeed(2), 5);
  int differing = 0;
  for (std::int64_t i = 0; i < 200; ++i) {
    if (a.IsFit(Value(i)) != b.IsFit(Value(i))) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FitnessTest, SelectsApproximatelyOneInE) {
  // The parameter e "determin[es] the percentage of considered tuples":
  // roughly N/e elements (Section 3.2.1 footnote 1).
  for (const std::uint64_t e : {10ull, 60ull, 100ull}) {
    const FitnessSelector fitness(SecretKey::FromSeed(3), e);
    std::size_t hits = 0;
    const std::size_t n = 30000;
    for (std::size_t i = 0; i < n; ++i) {
      if (fitness.IsFit(Value(static_cast<std::int64_t>(i)))) ++hits;
    }
    const double expected = static_cast<double>(n) / static_cast<double>(e);
    EXPECT_NEAR(static_cast<double>(hits), expected, 4 * std::sqrt(expected))
        << "e=" << e;
  }
}

TEST(FitnessTest, EOneSelectsEverything) {
  const FitnessSelector fitness(SecretKey::FromSeed(4), 1);
  for (std::int64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(fitness.IsFit(Value(i)));
  }
}

TEST(FitnessTest, StringKeysWork) {
  const FitnessSelector fitness(SecretKey::FromSeed(5), 7);
  EXPECT_EQ(fitness.IsFit(Value("alpha")), fitness.IsFit(Value("alpha")));
}

TEST(FitnessTest, TypeTaggedHashing) {
  // INT64 7 and STRING "7" must hash differently (canonical serialization).
  const FitnessSelector fitness(SecretKey::FromSeed(6), 1000000007);
  EXPECT_NE(fitness.KeyHash(Value(std::int64_t{7})),
            fitness.KeyHash(Value("7")));
}

// ------------------------------------------------------------ bit position

TEST(PayloadIndexTest, ModuloModeInRange) {
  for (std::uint64_t h : {0ull, 1ull, 12345ull, ~0ull}) {
    for (std::size_t len : {1u, 7u, 100u, 4096u}) {
      EXPECT_LT(PayloadIndexFromHash(h, len, BitIndexMode::kModulo), len);
    }
  }
}

TEST(PayloadIndexTest, MsbModeInRange) {
  for (std::uint64_t h : {0ull, 1ull, 12345ull, ~0ull}) {
    for (std::size_t len : {1u, 7u, 100u, 128u}) {
      EXPECT_LT(PayloadIndexFromHash(h, len, BitIndexMode::kMsbModL), len);
    }
  }
}

TEST(PayloadIndexTest, MsbModeUsesTopBits) {
  // For a power-of-two length, msb mode uses exactly the top b(L) bits.
  const std::size_t len = 128;  // b(128) = 8
  EXPECT_EQ(PayloadIndexFromHash(0xFF00000000000000ULL, len,
                                 BitIndexMode::kMsbModL),
            0xFFu % len);
  EXPECT_EQ(PayloadIndexFromHash(0x0100000000000000ULL, len,
                                 BitIndexMode::kMsbModL),
            1u);
}

TEST(PayloadIndexTest, ModuloModeRoughlyUniform) {
  const KeyedHasher h(SecretKey::FromSeed(7));
  const std::size_t len = 10;
  std::vector<int> counts(len, 0);
  for (std::uint64_t i = 0; i < 50000; ++i) {
    ++counts[PayloadIndexFromHash(h.Hash64(i), len, BitIndexMode::kModulo)];
  }
  for (int c : counts) EXPECT_NEAR(c, 5000, 400);
}

// ------------------------------------------------------------ value select

TEST(SelectValueIndexTest, ForcesLsb) {
  for (std::uint64_t h = 0; h < 1000; ++h) {
    for (const std::size_t n : {2u, 3u, 10u, 1001u}) {
      EXPECT_EQ(SelectValueIndex(h, n, 0) & 1u, 0u);
      EXPECT_EQ(SelectValueIndex(h, n, 1) & 1u, 1u);
    }
  }
}

TEST(SelectValueIndexTest, StaysInDomain) {
  for (std::uint64_t h = 0; h < 5000; ++h) {
    for (const std::size_t n : {2u, 3u, 5u, 17u, 1000u}) {
      EXPECT_LT(SelectValueIndex(h, n, 0), n);
      EXPECT_LT(SelectValueIndex(h, n, 1), n);
    }
  }
}

TEST(SelectValueIndexTest, OddDomainWrapCase) {
  // h % 5 == 4, bit 1 -> raw 5 (out of range) -> pulled back to 3.
  EXPECT_EQ(SelectValueIndex(4, 5, 1), 3u);
  EXPECT_EQ(SelectValueIndex(4, 5, 0), 4u);
}

TEST(SelectValueIndexTest, TwoValueDomain) {
  for (std::uint64_t h = 0; h < 100; ++h) {
    EXPECT_EQ(SelectValueIndex(h, 2, 0), 0u);
    EXPECT_EQ(SelectValueIndex(h, 2, 1), 1u);
  }
}

TEST(SelectValueIndexTest, ExtractInvertsSelect) {
  // The decoding rule t & 1 must read back exactly the embedded bit.
  for (std::uint64_t h = 0; h < 2000; ++h) {
    for (const std::size_t n : {2u, 3u, 10u, 999u}) {
      for (int bit : {0, 1}) {
        EXPECT_EQ(ExtractBitFromValueIndex(SelectValueIndex(h, n, bit)), bit);
      }
    }
  }
}

TEST(SelectValueIndexTest, BaseIndexVariesWithHash) {
  // The base value (before LSB forcing) must depend on the hash — the new
  // attribute value is "selected by the secret key k1 [and] the associated
  // relational primary key value", not constant.
  std::set<std::size_t> seen;
  for (std::uint64_t h = 0; h < 100; ++h) {
    seen.insert(SelectValueIndex(h, 1000, 0));
  }
  EXPECT_GT(seen.size(), 10u);
}

// --------------------------------------------------------------- key sets

TEST(KeySetTest, FromPassphraseProducesDistinctKeys) {
  const WatermarkKeySet ks = WatermarkKeySet::FromPassphrase("owner");
  EXPECT_TRUE(ks.valid());
  EXPECT_FALSE(ks.k1 == ks.k2);
}

TEST(KeySetTest, FromSeedDeterministic) {
  const WatermarkKeySet a = WatermarkKeySet::FromSeed(9);
  const WatermarkKeySet b = WatermarkKeySet::FromSeed(9);
  EXPECT_EQ(a.k1, b.k1);
  EXPECT_EQ(a.k2, b.k2);
  const WatermarkKeySet c = WatermarkKeySet::FromSeed(10);
  EXPECT_FALSE(a.k1 == c.k1);
}

TEST(KeySetTest, HashValueSeparatesKeyRoles) {
  // k1-derived and k2-derived hashes of the same tuple key must be
  // unrelated (the Section 3.2.1 "no correlation" requirement).
  const WatermarkKeySet ks = WatermarkKeySet::FromSeed(11);
  const KeyedHasher h1(ks.k1);
  const KeyedHasher h2(ks.k2);
  EXPECT_NE(HashValue(h1, Value(std::int64_t{42})),
            HashValue(h2, Value(std::int64_t{42})));
}

}  // namespace
}  // namespace catmark
