#include <gtest/gtest.h>

#include <set>

#include "attack/attacks.h"
#include "core/multi_attribute.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

Relation Sales(std::size_t n = 6000, std::uint64_t seed = 41) {
  SalesGenConfig config;
  config.num_tuples = n;
  config.num_items = 200;
  config.seed = seed;
  return GenerateItemScan(config);
}

// ---------------------------------------------------------------- planner

TEST(PlanPairClosureTest, AnchorsEveryCategoricalToPrimaryKey) {
  const Relation rel = Sales(2000);
  const auto pairs = PlanPairClosure(rel).value();
  std::set<std::string> pk_targets;
  for (const AttributePair& p : pairs) {
    if (p.key_attr == "Visit_Nbr") pk_targets.insert(p.target_attr);
  }
  EXPECT_EQ(pk_targets,
            (std::set<std::string>{"Item_Nbr", "Store_Nbr", "Dept_Desc"}));
}

TEST(PlanPairClosureTest, CoversEveryCategoricalPair) {
  const Relation rel = Sales(2000);
  const auto pairs = PlanPairClosure(rel).value();
  std::set<std::set<std::string>> unordered;
  for (const AttributePair& p : pairs) {
    if (p.key_attr != "Visit_Nbr") {
      unordered.insert({p.key_attr, p.target_attr});
    }
  }
  // 3 categorical attributes -> 3 unordered pairs.
  EXPECT_EQ(unordered.size(), 3u);
}

TEST(PlanPairClosureTest, NoSelfPairs) {
  const auto pairs = PlanPairClosure(Sales(1000)).value();
  for (const AttributePair& p : pairs) {
    EXPECT_NE(p.key_attr, p.target_attr);
  }
}

TEST(PlanPairClosureTest, WorksWithoutPrimaryKey) {
  const Relation rel = Sales(2000);
  const Relation no_pk =
      VerticalPartitionAttack(rel, {"Item_Nbr", "Dept_Desc"}).value();
  const auto pairs = PlanPairClosure(no_pk).value();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_NE(pairs[0].key_attr, pairs[0].target_attr);
}

TEST(PlanPairClosureTest, FailsWithNoCategoricalTargets) {
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"X", ColumnType::kDouble, false}},
                              "K")
                   .value());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value(0.5)});
  EXPECT_FALSE(PlanPairClosure(rel).ok());
}

// --------------------------------------------------------------- embedding

TEST(MultiAttributeTest, EmbedAllRunsEveryPass) {
  Relation rel = Sales();
  WatermarkParams params;
  params.e = 25;
  const MultiAttributeEmbedder multi(WatermarkKeySet::FromSeed(1), params);
  const auto pairs = PlanPairClosure(rel).value();
  const BitVector wm = MakeWatermark(10, 1);
  const MultiEmbedReport report = multi.EmbedAll(rel, pairs, wm).value();
  EXPECT_EQ(report.passes.size(), pairs.size());
  EXPECT_GT(report.total_altered, 0u);
}

TEST(MultiAttributeTest, LedgerPreventsCrossPassInterference) {
  Relation rel = Sales();
  WatermarkParams params;
  params.e = 10;  // dense marking to force collisions
  const MultiAttributeEmbedder multi(WatermarkKeySet::FromSeed(2), params);
  const auto pairs = PlanPairClosure(rel).value();
  const MultiEmbedReport report =
      multi.EmbedAll(rel, pairs, MakeWatermark(10, 2)).value();
  // Later passes must have skipped at least some already-marked cells
  // (Dept_Desc is a target of two passes at e=10 over 6000 tuples).
  EXPECT_GT(report.total_skipped_by_ledger, 0u);
}

TEST(MultiAttributeTest, AllWitnessesDetectOnIntactData) {
  Relation rel = Sales();
  WatermarkParams params;
  params.e = 25;
  const MultiAttributeEmbedder multi(WatermarkKeySet::FromSeed(3), params);
  const auto pairs = PlanPairClosure(rel).value();
  const BitVector wm = MakeWatermark(10, 3);
  const MultiEmbedReport embed = multi.EmbedAll(rel, pairs, wm).value();

  const auto detections =
      multi.DetectAll(rel, pairs, wm.size(),
                      embed.passes[0].report.payload_length)
          .value();
  EXPECT_EQ(detections.size(), pairs.size());
  std::size_t pk_perfect = 0, pk_total = 0;
  for (const PairDetection& d : detections) {
    if (d.pair.key_attr != "Visit_Nbr") continue;
    ++pk_total;
    if (d.detection.wm == wm) ++pk_perfect;
  }
  // PK-anchored passes must be perfect. Categorical-keyed passes cover only
  // a handful of payload positions (one per fit *category* — the Section
  // 3.3 note), so their individual testimony is weak; the coverage-weighted
  // combination must still be exact.
  EXPECT_EQ(pk_perfect, pk_total);
  EXPECT_EQ(MultiAttributeEmbedder::CombineDetections(detections, wm.size()),
            wm);
}

TEST(MultiAttributeTest, SurvivesVerticalPartitioningWithoutPk) {
  // The A5 scenario of Section 3.3: Mallory keeps two categorical columns,
  // no primary key. The (Item_Nbr, Dept_Desc)-style pair still testifies.
  Relation rel = Sales();
  WatermarkParams params;
  params.e = 25;
  const MultiAttributeEmbedder multi(WatermarkKeySet::FromSeed(4), params);
  const auto pairs = PlanPairClosure(rel).value();
  const BitVector wm = MakeWatermark(10, 4);
  const MultiEmbedReport embed = multi.EmbedAll(rel, pairs, wm).value();

  const Relation partitioned =
      VerticalPartitionAttack(rel, {"Item_Nbr", "Store_Nbr", "Dept_Desc"})
          .value();
  const auto detections =
      multi.DetectAll(partitioned, pairs, wm.size(),
                      embed.passes[0].report.payload_length)
          .value();
  ASSERT_FALSE(detections.empty())
      << "some witness must survive the partition";
  const BitVector combined =
      MultiAttributeEmbedder::CombineDetections(detections, wm.size());
  const MatchStats stats = MatchWatermark(wm, combined);
  EXPECT_GE(stats.match_fraction, 0.8);
  // PK-anchored pairs must have been skipped, not failed.
  for (const PairDetection& d : detections) {
    EXPECT_NE(d.pair.key_attr, "Visit_Nbr");
  }
}

TEST(MultiAttributeTest, BaseSchemeDiesUnderSamePartitionSingleWitness) {
  // Control for the test above: with only the (K, A) pass, dropping K
  // leaves nothing to detect with.
  Relation rel = Sales();
  WatermarkParams params;
  params.e = 25;
  const MultiAttributeEmbedder multi(WatermarkKeySet::FromSeed(5), params);
  const std::vector<AttributePair> only_pk = {{"Visit_Nbr", "Item_Nbr"}};
  const BitVector wm = MakeWatermark(10, 5);
  const MultiEmbedReport embed = multi.EmbedAll(rel, only_pk, wm).value();
  const Relation partitioned =
      VerticalPartitionAttack(rel, {"Item_Nbr", "Dept_Desc"}).value();
  const auto detections =
      multi.DetectAll(partitioned, only_pk, wm.size(),
                      embed.passes[0].report.payload_length)
          .value();
  EXPECT_TRUE(detections.empty());
}

TEST(MultiAttributeTest, EmptyPairListRejected) {
  Relation rel = Sales(500);
  const MultiAttributeEmbedder multi(WatermarkKeySet::FromSeed(6),
                                     WatermarkParams{});
  EXPECT_FALSE(multi.EmbedAll(rel, {}, MakeWatermark(10, 6)).ok());
}

TEST(MultiAttributeTest, CombineDetectionsMajority) {
  PairDetection a, b, c;
  a.detection.wm = BitVector::FromString("1100").value();
  b.detection.wm = BitVector::FromString("1010").value();
  c.detection.wm = BitVector::FromString("1001").value();
  // Equal coverage: plain positionwise majority.
  a.detection.positions_present = 10;
  b.detection.positions_present = 10;
  c.detection.positions_present = 10;
  const BitVector combined =
      MultiAttributeEmbedder::CombineDetections({a, b, c}, 4);
  EXPECT_EQ(combined.ToString(), "1000");
}

TEST(MultiAttributeTest, CombineDetectionsWeightsByCoverage) {
  // A fully-covered witness outvotes two barely-covered ones.
  PairDetection strong, weak1, weak2;
  strong.detection.wm = BitVector::FromString("1111").value();
  strong.detection.positions_present = 100;
  weak1.detection.wm = BitVector::FromString("0000").value();
  weak1.detection.positions_present = 2;
  weak2.detection.wm = BitVector::FromString("0000").value();
  weak2.detection.positions_present = 2;
  const BitVector combined =
      MultiAttributeEmbedder::CombineDetections({strong, weak1, weak2}, 4);
  EXPECT_EQ(combined.ToString(), "1111");
}

TEST(MultiAttributeTest, CombineEmptyIsZeros) {
  EXPECT_EQ(MultiAttributeEmbedder::CombineDetections({}, 4), BitVector(4));
}

}  // namespace
}  // namespace catmark
