#include <gtest/gtest.h>

#include <memory>

#include "quality/assessor.h"
#include "quality/plugins.h"
#include "quality/rollback.h"
#include "relation/relation.h"

namespace catmark {
namespace {

Schema TestSchema() {
  return Schema::Create({{"K", ColumnType::kInt64, false},
                         {"A", ColumnType::kString, true}},
                        "K")
      .value();
}

Relation MakeRelation(const std::vector<std::string>& values) {
  Relation rel(TestSchema());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(rel.AppendRow({Value(static_cast<std::int64_t>(i)),
                               Value(values[i])})
                    .ok());
  }
  return rel;
}

// ------------------------------------------------------------- RollbackLog

TEST(RollbackLogTest, UndoLastRestoresCell) {
  Relation rel = MakeRelation({"a", "b"});
  RollbackLog log;
  log.Record({0, 1, Value("a"), Value("z")});
  ASSERT_TRUE(rel.Set(0, 1, Value("z")).ok());
  ASSERT_TRUE(log.UndoLast(rel).ok());
  EXPECT_EQ(rel.Get(0, 1).AsString(), "a");
  EXPECT_TRUE(log.empty());
}

TEST(RollbackLogTest, UndoAllRestoresInReverseOrder) {
  Relation rel = MakeRelation({"a"});
  RollbackLog log;
  log.Record({0, 1, Value("a"), Value("b")});
  ASSERT_TRUE(rel.Set(0, 1, Value("b")).ok());
  log.Record({0, 1, Value("b"), Value("c")});
  ASSERT_TRUE(rel.Set(0, 1, Value("c")).ok());
  ASSERT_TRUE(log.UndoAll(rel).ok());
  EXPECT_EQ(rel.Get(0, 1).AsString(), "a");
}

TEST(RollbackLogTest, UndoOnEmptyFails) {
  Relation rel = MakeRelation({"a"});
  RollbackLog log;
  EXPECT_FALSE(log.UndoLast(rel).ok());
}

// ---------------------------------------------------------------- Assessor

/// Test plugin that vetoes any alteration writing the given value and
/// counts every callback.
class SpyPlugin final : public UsabilityMetricPlugin {
 public:
  explicit SpyPlugin(std::string veto_value)
      : veto_value_(std::move(veto_value)) {}

  std::string_view Name() const override { return "spy"; }
  Status Begin(const Relation&) override {
    ++begins;
    return Status::OK();
  }
  Status OnAlteration(const Relation&, const AlterationEvent& event) override {
    ++alterations;
    if (event.new_value.is_string() &&
        event.new_value.AsString() == veto_value_) {
      return Status::ConstraintViolation("vetoed");
    }
    return Status::OK();
  }
  void OnRollback(const Relation&, const AlterationEvent&) override {
    ++rollbacks;
  }

  int begins = 0;
  int alterations = 0;
  int rollbacks = 0;

 private:
  std::string veto_value_;
};

TEST(AssessorTest, AcceptedAlterationApplies) {
  Relation rel = MakeRelation({"a", "b"});
  QualityAssessor assessor;
  auto spy = std::make_unique<SpyPlugin>("FORBIDDEN");
  SpyPlugin* spy_ptr = spy.get();
  assessor.AddPlugin(std::move(spy));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("x")).ok());
  EXPECT_EQ(rel.Get(0, 1).AsString(), "x");
  EXPECT_EQ(assessor.accepted_count(), 1u);
  EXPECT_EQ(assessor.vetoed_count(), 0u);
  EXPECT_EQ(spy_ptr->alterations, 1);
}

TEST(AssessorTest, VetoRestoresCell) {
  Relation rel = MakeRelation({"a"});
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<SpyPlugin>("FORBIDDEN"));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  const Status s = assessor.ProposeAlteration(rel, 0, 1, Value("FORBIDDEN"));
  EXPECT_TRUE(s.IsConstraintViolation());
  EXPECT_EQ(rel.Get(0, 1).AsString(), "a");
  EXPECT_EQ(assessor.vetoed_count(), 1u);
  EXPECT_EQ(assessor.accepted_count(), 0u);
}

TEST(AssessorTest, VetoNotifiesEarlierPluginsToRollBack) {
  Relation rel = MakeRelation({"a"});
  QualityAssessor assessor;
  auto first = std::make_unique<SpyPlugin>("NEVER");
  SpyPlugin* first_ptr = first.get();
  assessor.AddPlugin(std::move(first));                       // accepts
  assessor.AddPlugin(std::make_unique<SpyPlugin>("BAD"));     // vetoes
  ASSERT_TRUE(assessor.Begin(rel).ok());
  EXPECT_FALSE(assessor.ProposeAlteration(rel, 0, 1, Value("BAD")).ok());
  EXPECT_EQ(first_ptr->rollbacks, 1);
}

TEST(AssessorTest, RollbackAllUndoesEveryChange) {
  Relation rel = MakeRelation({"a", "b", "c"});
  QualityAssessor assessor;
  auto spy = std::make_unique<SpyPlugin>("NEVER");
  SpyPlugin* spy_ptr = spy.get();
  assessor.AddPlugin(std::move(spy));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  ASSERT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("x")).ok());
  ASSERT_TRUE(assessor.ProposeAlteration(rel, 1, 1, Value("y")).ok());
  ASSERT_TRUE(assessor.RollbackAll(rel).ok());
  EXPECT_EQ(rel.Get(0, 1).AsString(), "a");
  EXPECT_EQ(rel.Get(1, 1).AsString(), "b");
  EXPECT_EQ(spy_ptr->rollbacks, 2);
  EXPECT_EQ(assessor.accepted_count(), 0u);
}

TEST(AssessorTest, BeginResetsCounters) {
  Relation rel = MakeRelation({"a"});
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<SpyPlugin>("BAD"));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  (void)assessor.ProposeAlteration(rel, 0, 1, Value("BAD"));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  EXPECT_EQ(assessor.vetoed_count(), 0u);
}

// -------------------------------------------------------- MaxAlterations

TEST(MaxAlterationsTest, EnforcesBudget) {
  Relation rel = MakeRelation({"a", "b", "c", "d"});
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<MaxAlterationsPlugin>(0.5));  // 2 of 4
  ASSERT_TRUE(assessor.Begin(rel).ok());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("x")).ok());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 1, 1, Value("x")).ok());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 2, 1, Value("x"))
                  .IsConstraintViolation());
}

TEST(MaxAlterationsTest, RollbackRefundsBudget) {
  Relation rel = MakeRelation({"a", "b"});
  MaxAlterationsPlugin plugin(0.5);  // budget 1
  ASSERT_TRUE(plugin.Begin(rel).ok());
  AlterationEvent ev{0, 1, Value("a"), Value("x")};
  ASSERT_TRUE(plugin.OnAlteration(rel, ev).ok());
  plugin.OnRollback(rel, ev);
  EXPECT_TRUE(plugin.OnAlteration(rel, ev).ok());  // budget freed again
}

TEST(MaxAlterationsTest, RejectsBadFraction) {
  Relation rel = MakeRelation({"a"});
  MaxAlterationsPlugin plugin(1.5);
  EXPECT_FALSE(plugin.Begin(rel).ok());
}

// -------------------------------------------------------- HistogramDrift

TEST(HistogramDriftTest, AllowsSmallDrift) {
  Relation rel = MakeRelation({"a", "a", "b", "b", "c", "c"});
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<HistogramDriftPlugin>("A", 0.5));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("b")).ok());
}

TEST(HistogramDriftTest, VetoesLargeDrift) {
  Relation rel = MakeRelation({"a", "a", "b", "b"});
  QualityAssessor assessor;
  // L1 drift of one a->b move on 4 tuples is 2/4 = 0.5 > 0.4.
  assessor.AddPlugin(std::make_unique<HistogramDriftPlugin>("A", 0.4));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("b"))
                  .IsConstraintViolation());
  // And the veto left its internal tally unchanged: a small no-op change
  // (a -> a) still passes.
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 1, 1, Value("a")).ok());
}

TEST(HistogramDriftTest, IgnoresOtherColumns) {
  Relation rel = MakeRelation({"a", "b"});
  HistogramDriftPlugin plugin("A", 0.0);
  ASSERT_TRUE(plugin.Begin(rel).ok());
  AlterationEvent ev{0, 0, Value(std::int64_t{0}), Value(std::int64_t{9})};
  EXPECT_TRUE(plugin.OnAlteration(rel, ev).ok());
}

TEST(HistogramDriftTest, UnknownColumnFailsBegin) {
  Relation rel = MakeRelation({"a"});
  HistogramDriftPlugin plugin("NOPE", 0.1);
  EXPECT_FALSE(plugin.Begin(rel).ok());
}

// ------------------------------------------------------ MinCategoryCount

TEST(MinCategoryCountTest, VetoesEmptyingCategory) {
  Relation rel = MakeRelation({"a", "b", "b"});
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<MinCategoryCountPlugin>("A", 1));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  // "a" has exactly 1 occurrence; moving it away would empty the category.
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("b"))
                  .IsConstraintViolation());
  // "b" has 2; taking one is fine.
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 1, 1, Value("a")).ok());
}

TEST(MinCategoryCountTest, RollbackRestoresCounts) {
  Relation rel = MakeRelation({"a", "b", "b"});
  MinCategoryCountPlugin plugin("A", 1);
  ASSERT_TRUE(plugin.Begin(rel).ok());
  AlterationEvent ev{1, 1, Value("b"), Value("a")};
  ASSERT_TRUE(plugin.OnAlteration(rel, ev).ok());
  plugin.OnRollback(rel, ev);
  // After rollback "b" is back to 2, so the same move is allowed again.
  EXPECT_TRUE(plugin.OnAlteration(rel, ev).ok());
}

// -------------------------------------------------------- ForbiddenValue

TEST(ForbiddenValueTest, VetoesListedValues) {
  Relation rel = MakeRelation({"a"});
  QualityAssessor assessor;
  assessor.AddPlugin(std::make_unique<ForbiddenValuePlugin>(
      "A", std::vector<Value>{Value("DISCONTINUED")}));
  ASSERT_TRUE(assessor.Begin(rel).ok());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("DISCONTINUED"))
                  .IsConstraintViolation());
  EXPECT_TRUE(assessor.ProposeAlteration(rel, 0, 1, Value("ok")).ok());
}

TEST(ForbiddenValueTest, OtherColumnsUnaffected) {
  Relation rel = MakeRelation({"a"});
  ForbiddenValuePlugin plugin("A", {Value("X")});
  ASSERT_TRUE(plugin.Begin(rel).ok());
  AlterationEvent ev{0, 0, Value(std::int64_t{0}), Value(std::int64_t{1})};
  EXPECT_TRUE(plugin.OnAlteration(rel, ev).ok());
}

}  // namespace
}  // namespace catmark
