#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/numeric_set_mark.h"
#include "exp/harness.h"
#include "random/distributions.h"
#include "random/rng.h"

namespace catmark {
namespace {

std::vector<double> GaussianSet(std::size_t n, double mean, double sd,
                                std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = mean + sd * SampleStandardNormal(rng);
  return out;
}

NumericSetMarkParams Params(double step = 0.5) {
  NumericSetMarkParams params;
  params.quantization_step = step;
  return params;
}

TEST(NumericSetTest, CleanRoundTrip) {
  std::vector<double> values = GaussianSet(4000, 100.0, 10.0, 1);
  const NumericSetMarker marker(SecretKey::FromSeed(1), Params());
  const BitVector wm = MakeWatermark(8, 1);
  const NumericSetEmbedReport report = marker.Embed(values, wm).value();
  EXPECT_EQ(marker.Detect(values, wm.size()).value(), wm);
  // Per-item change bounded by the quantization step.
  EXPECT_LE(report.max_item_change, 0.5 + 1e-9);
}

TEST(NumericSetTest, MinimizesAbsoluteChange) {
  // [10]'s design goal: "minimize the absolute data alteration in terms of
  // distance from the original data set". Mean per-item change stays below
  // half the step (the distance to the nearest correct-parity centre).
  std::vector<double> values = GaussianSet(4000, 0.0, 20.0, 2);
  const std::vector<double> original = values;
  const NumericSetMarker marker(SecretKey::FromSeed(2), Params(1.0));
  ASSERT_TRUE(marker.Embed(values, MakeWatermark(8, 2)).ok());
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    total += std::abs(values[i] - original[i]);
  }
  EXPECT_LE(total / static_cast<double>(values.size()), 1.0);
}

TEST(NumericSetTest, SurvivesShuffling) {
  std::vector<double> values = GaussianSet(4000, 50.0, 5.0, 3);
  const NumericSetMarker marker(SecretKey::FromSeed(3), Params(0.25));
  const BitVector wm = MakeWatermark(8, 3);
  ASSERT_TRUE(marker.Embed(values, wm).ok());
  Xoshiro256ss rng(33);
  Shuffle(values, rng);
  EXPECT_EQ(marker.Detect(values, wm.size()).value(), wm);
}

TEST(NumericSetTest, SurvivesUniformSubsetSelection) {
  std::vector<double> values = GaussianSet(20000, 100.0, 10.0, 4);
  const NumericSetMarker marker(SecretKey::FromSeed(4), Params());
  const BitVector wm = MakeWatermark(8, 4);
  ASSERT_TRUE(marker.Embed(values, wm).ok());
  // Keep a uniform 50% sample.
  Xoshiro256ss rng(44);
  std::vector<double> kept;
  for (double v : values) {
    if (rng.NextBool(0.5)) kept.push_back(v);
  }
  const BitVector detected = marker.Detect(kept, wm.size()).value();
  EXPECT_GE(wm.size() - wm.HammingDistance(detected), 7u);
}

TEST(NumericSetTest, SurvivesSmallNoise) {
  std::vector<double> values = GaussianSet(8000, 100.0, 10.0, 5);
  const NumericSetMarker marker(SecretKey::FromSeed(5), Params(1.0));
  const BitVector wm = MakeWatermark(8, 5);
  ASSERT_TRUE(marker.Embed(values, wm).ok());
  // Additive noise well below the robustness radius q/2.
  Xoshiro256ss rng(55);
  for (double& v : values) v += 0.1 * SampleStandardNormal(rng);
  EXPECT_EQ(marker.Detect(values, wm.size()).value(), wm);
}

TEST(NumericSetTest, WrongKeyReadsDifferentChunks) {
  std::vector<double> values = GaussianSet(4000, 100.0, 10.0, 6);
  const NumericSetMarker marker(SecretKey::FromSeed(6), Params());
  const BitVector wm = MakeWatermark(16, 6);
  ASSERT_TRUE(marker.Embed(values, wm).ok());
  const NumericSetMarker wrong(SecretKey::FromSeed(999), Params());
  const BitVector detected = wrong.Detect(values, wm.size()).value();
  // Different jittered boundaries shift some chunk means across cells; a
  // perfect read with a wrong key would defeat the secrecy property.
  // (Boundaries only jitter by 1/8 chunk, so many bits still agree — the
  // keyed part is the boundary placement, not the whole channel.)
  EXPECT_NE(detected, wm);
}

TEST(NumericSetTest, RejectsDegenerateInputs) {
  const NumericSetMarker marker(SecretKey::FromSeed(7), Params());
  std::vector<double> tiny(10, 1.0);
  EXPECT_FALSE(marker.Embed(tiny, MakeWatermark(8, 7)).ok());  // < 4 per bit
  std::vector<double> constant(1000, 5.0);
  EXPECT_FALSE(marker.Embed(constant, MakeWatermark(8, 7)).ok());
  std::vector<double> fine = GaussianSet(1000, 0, 1, 7);
  EXPECT_FALSE(marker.Embed(fine, BitVector()).ok());
  EXPECT_FALSE(marker.Detect(fine, 0).ok());
}

TEST(NumericSetTest, ModifiesInPlaceWithoutPermuting) {
  // Embedding works on a sorted *view* but writes each shift back to the
  // item's original storage slot: position i still holds (a slightly moved
  // version of) the same item.
  std::vector<double> values = GaussianSet(1000, 10.0, 2.0, 8);
  const std::vector<double> original = values;
  const NumericSetMarker marker(SecretKey::FromSeed(8), Params(0.1));
  const NumericSetEmbedReport report =
      marker.Embed(values, MakeWatermark(4, 8)).value();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_LE(std::abs(values[i] - original[i]),
              report.max_item_change + 1e-12);
  }
}

}  // namespace
}  // namespace catmark
