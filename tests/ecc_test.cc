#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/bitvec.h"
#include "ecc/code.h"
#include "ecc/hamming.h"
#include "ecc/identity.h"
#include "ecc/interleaver.h"
#include "ecc/majority.h"
#include "ecc/repetition.h"
#include "random/rng.h"

namespace catmark {
namespace {

BitVector RandomBits(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return BitVector::FromGenerator(n, [&] { return rng.Next(); });
}

ExtractedPayload FullyPresent(const BitVector& bits) {
  ExtractedPayload p(bits.size());
  p.bits = bits;
  p.present = BitVector(bits.size(), 1);
  return p;
}

// --------------------------------------------------------- shared contract

/// Parameterized over (EccKind, wm_len, payload_len): every code must
/// satisfy decode(encode(wm)) == wm on an undamaged payload.
class EccRoundTripTest
    : public ::testing::TestWithParam<std::tuple<EccKind, int, int>> {};

TEST_P(EccRoundTripTest, CleanRoundTrip) {
  const auto [kind, wm_len, payload_len] = GetParam();
  const auto code = CreateEcc(kind);
  const BitVector wm = RandomBits(static_cast<std::size_t>(wm_len), 99);
  if (static_cast<std::size_t>(payload_len) <
      code->MinPayloadLength(wm.size())) {
    EXPECT_FALSE(code->Encode(wm, static_cast<std::size_t>(payload_len)).ok());
    return;
  }
  const BitVector payload =
      code->Encode(wm, static_cast<std::size_t>(payload_len)).value();
  EXPECT_EQ(payload.size(), static_cast<std::size_t>(payload_len));
  const BitVector decoded =
      code->Decode(FullyPresent(payload), wm.size()).value();
  EXPECT_EQ(decoded, wm) << EccKindName(kind) << " wm=" << wm_len
                         << " payload=" << payload_len;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, EccRoundTripTest,
    ::testing::Combine(::testing::Values(EccKind::kMajorityVoting,
                                         EccKind::kIdentity,
                                         EccKind::kBlockRepetition,
                                         EccKind::kHamming74),
                       ::testing::Values(1, 4, 10, 32),
                       ::testing::Values(10, 64, 100, 1000)));

// ---------------------------------------------------------- majority code

TEST(MajorityTest, EncodeRepeatsCyclically) {
  MajorityVotingCode code;
  const BitVector wm = BitVector::FromString("101").value();
  const BitVector payload = code.Encode(wm, 8).value();
  EXPECT_EQ(payload.ToString(), "10110110");
}

TEST(MajorityTest, ToleratesMinorityFlips) {
  MajorityVotingCode code;
  const BitVector wm = RandomBits(10, 1);
  BitVector payload = code.Encode(wm, 1000).value();
  // Flip 30% of positions: each wm bit has 100 votes, 30 wrong — majority
  // still correct with overwhelming probability.
  Xoshiro256ss rng(2);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (rng.NextBool(0.3)) payload.Flip(i);
  }
  EXPECT_EQ(code.Decode(FullyPresent(payload), 10).value(), wm);
}

TEST(MajorityTest, ToleratesMassiveErasure) {
  MajorityVotingCode code;
  const BitVector wm = RandomBits(10, 3);
  const BitVector payload = code.Encode(wm, 1000).value();
  ExtractedPayload damaged(payload.size());
  damaged.bits = payload;
  // Only 5% of positions survive — still >= ~5 clean votes per bit.
  Xoshiro256ss rng(4);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    damaged.present.Set(i, rng.NextBool(0.05) ? 1 : 0);
  }
  EXPECT_EQ(code.Decode(damaged, 10).value(), wm);
}

TEST(MajorityTest, FullyErasedDecodesToZeros) {
  MajorityVotingCode code;
  const BitVector wm = RandomBits(8, 5);
  const BitVector payload = code.Encode(wm, 100).value();
  ExtractedPayload erased(payload.size());
  erased.bits = payload;  // present mask stays all-zero
  EXPECT_EQ(code.Decode(erased, 8).value(), BitVector(8));
}

TEST(MajorityTest, RejectsEmptyWatermark) {
  MajorityVotingCode code;
  EXPECT_FALSE(code.Encode(BitVector(), 10).ok());
  EXPECT_FALSE(code.Decode(FullyPresent(BitVector(10)), 0).ok());
}

TEST(MajorityTest, RejectsMismatchedPresentMask) {
  MajorityVotingCode code;
  ExtractedPayload bad;
  bad.bits = BitVector(10);
  bad.present = BitVector(9);
  EXPECT_FALSE(code.Decode(bad, 5).ok());
}

TEST(MajorityTest, InsufficientBandwidthFails) {
  MajorityVotingCode code;
  EXPECT_FALSE(code.Encode(RandomBits(20, 6), 10).ok());
}

// ---------------------------------------------------------- identity code

TEST(IdentityTest, CarriesWatermarkOnce) {
  IdentityCode code;
  const BitVector wm = BitVector::FromString("1101").value();
  const BitVector payload = code.Encode(wm, 10).value();
  EXPECT_EQ(payload.ToString(), "1101000000");
}

TEST(IdentityTest, SingleFlipCorruptsOutput) {
  IdentityCode code;
  const BitVector wm = RandomBits(10, 7);
  BitVector payload = code.Encode(wm, 100).value();
  payload.Flip(3);
  const BitVector decoded = code.Decode(FullyPresent(payload), 10).value();
  EXPECT_EQ(decoded.HammingDistance(wm), 1u);  // no redundancy, no repair
}

TEST(IdentityTest, ErasedPositionsDecodeToZero) {
  IdentityCode code;
  const BitVector wm = BitVector(4, 1);
  const BitVector payload = code.Encode(wm, 8).value();
  ExtractedPayload damaged(payload.size());
  damaged.bits = payload;
  damaged.present = BitVector(8, 1);
  damaged.present.Set(2, 0);
  const BitVector decoded = code.Decode(damaged, 4).value();
  EXPECT_EQ(decoded.ToString(), "1101");
}

// -------------------------------------------------------- block repetition

TEST(RepetitionTest, BlocksAreContiguous) {
  BlockRepetitionCode code;
  const BitVector wm = BitVector::FromString("10").value();
  const BitVector payload = code.Encode(wm, 10).value();
  EXPECT_EQ(payload.ToString(), "1111100000");
}

TEST(RepetitionTest, SurvivesUniformFlips) {
  BlockRepetitionCode code;
  const BitVector wm = RandomBits(10, 8);
  BitVector payload = code.Encode(wm, 1000).value();
  Xoshiro256ss rng(9);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (rng.NextBool(0.25)) payload.Flip(i);
  }
  EXPECT_EQ(code.Decode(FullyPresent(payload), 10).value(), wm);
}

TEST(RepetitionTest, VulnerableToBurstDamage) {
  // Contiguous damage wipes whole blocks — the weakness the keyed
  // interleaver exists to repair.
  BlockRepetitionCode code;
  const BitVector wm = BitVector(10, 1);
  BitVector payload = code.Encode(wm, 1000).value();
  for (std::size_t i = 0; i < 100; ++i) payload.Set(i, 0);  // kill block 0
  const BitVector decoded = code.Decode(FullyPresent(payload), 10).value();
  EXPECT_EQ(decoded.Get(0), 0);
  EXPECT_EQ(decoded.Get(1), 1);
}

// ----------------------------------------------------------- hamming(7,4)

TEST(HammingTest, MinPayloadLength) {
  Hamming74Code code;
  EXPECT_EQ(code.MinPayloadLength(4), 7u);
  EXPECT_EQ(code.MinPayloadLength(5), 14u);
  EXPECT_EQ(code.MinPayloadLength(10), 21u);
}

TEST(HammingTest, CorrectsOneFlipPerCodeword) {
  Hamming74Code code;
  const BitVector wm = RandomBits(8, 10);  // two codewords
  BitVector payload = code.Encode(wm, 14).value();
  payload.Flip(2);   // one error in codeword 0
  payload.Flip(9);   // one error in codeword 1
  EXPECT_EQ(code.Decode(FullyPresent(payload), 8).value(), wm);
}

TEST(HammingTest, RepetitionPlusCorrectionSurvivesNoise) {
  Hamming74Code code;
  const BitVector wm = RandomBits(10, 11);
  BitVector payload = code.Encode(wm, 2100).value();  // 100 repetitions
  Xoshiro256ss rng(12);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (rng.NextBool(0.3)) payload.Flip(i);
  }
  EXPECT_EQ(code.Decode(FullyPresent(payload), 10).value(), wm);
}

TEST(HammingTest, RejectsTooShortPayload) {
  Hamming74Code code;
  EXPECT_FALSE(code.Encode(RandomBits(10, 13), 20).ok());
}

// ------------------------------------------------------------- interleaver

TEST(InterleaverTest, RoundTripsThroughInnerCode) {
  auto code = std::make_unique<InterleavedCode>(
      std::make_unique<BlockRepetitionCode>(), SecretKey::FromSeed(42));
  const BitVector wm = RandomBits(10, 14);
  const BitVector payload = code->Encode(wm, 500).value();
  EXPECT_EQ(code->Decode(FullyPresent(payload), 10).value(), wm);
}

TEST(InterleaverTest, PermutationIsKeyDependent) {
  InterleavedCode a(std::make_unique<IdentityCode>(), SecretKey::FromSeed(1));
  InterleavedCode b(std::make_unique<IdentityCode>(), SecretKey::FromSeed(2));
  const BitVector wm = RandomBits(16, 15);
  EXPECT_NE(a.Encode(wm, 64).value(), b.Encode(wm, 64).value());
}

TEST(InterleaverTest, RepairsBurstWeaknessOfBlockCode) {
  auto interleaved = std::make_unique<InterleavedCode>(
      std::make_unique<BlockRepetitionCode>(), SecretKey::FromSeed(7));
  const BitVector wm = BitVector(10, 1);
  BitVector payload = interleaved->Encode(wm, 1000).value();
  // The same burst that kills a block of the bare code (see RepetitionTest)
  // now spreads across all blocks.
  for (std::size_t i = 0; i < 100; ++i) payload.Set(i, 0);
  EXPECT_EQ(interleaved->Decode(FullyPresent(payload), 10).value(), wm);
}

TEST(InterleaverTest, RejectsMismatchedPresent) {
  InterleavedCode code(std::make_unique<IdentityCode>(),
                       SecretKey::FromSeed(3));
  ExtractedPayload bad;
  bad.bits = BitVector(10);
  bad.present = BitVector(9);
  EXPECT_FALSE(code.Decode(bad, 5).ok());
}

// ---------------------------------------------------------------- factory

TEST(EccFactoryTest, CreatesAllKinds) {
  EXPECT_EQ(CreateEcc(EccKind::kMajorityVoting)->Name(), "majority-voting");
  EXPECT_EQ(CreateEcc(EccKind::kIdentity)->Name(), "identity");
  EXPECT_EQ(CreateEcc(EccKind::kBlockRepetition)->Name(), "block-repetition");
  EXPECT_EQ(CreateEcc(EccKind::kHamming74)->Name(), "hamming74");
}

TEST(EccFactoryTest, KindNames) {
  EXPECT_EQ(EccKindName(EccKind::kMajorityVoting), "majority-voting");
  EXPECT_EQ(EccKindName(EccKind::kHamming74), "hamming74");
}

}  // namespace
}  // namespace catmark
