// Parameterized property tests: the blind embed -> detect round trip must be
// the identity for every configuration point, and must stay the identity
// under value-preserving transformations (re-sorting), degrade gracefully
// under subset selection, and respect the alteration bound ~N/e.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "relation/ops.h"

namespace catmark {
namespace {

struct Config {
  std::size_t n;
  std::uint64_t e;
  std::size_t domain;
  std::size_t wm_bits;
  EccKind ecc;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  return "n" + std::to_string(c.n) + "_e" + std::to_string(c.e) + "_d" +
         std::to_string(c.domain) + "_w" + std::to_string(c.wm_bits) + "_" +
         std::string(EccKindName(c.ecc)).substr(0, 3);
}

class RoundTripProperty : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    const Config& c = GetParam();
    KeyedCategoricalConfig gen;
    gen.num_tuples = c.n;
    gen.domain_size = c.domain;
    gen.seed = 17 + c.n + c.e;
    original_ = GenerateKeyedCategorical(gen);
    keys_ = WatermarkKeySet::FromSeed(c.n * 31 + c.e);
    params_.e = c.e;
    params_.ecc = c.ecc;
    if (c.ecc == EccKind::kIdentity) {
      // The identity code reads exactly |wm| payload positions; with the
      // default payload length N/e most of those positions would receive no
      // fit tuple at all. Concentrating the payload is how a no-redundancy
      // deployment must be configured.
      params_.payload_length = c.wm_bits;
    }
    wm_ = MakeWatermark(c.wm_bits, c.n * 7 + c.e);

    marked_ = original_;
    EmbedOptions options;
    options.key_attr = "K";
    options.target_attr = "A";
    const Embedder embedder(keys_, params_);
    Result<EmbedReport> r = embedder.Embed(marked_, options, wm_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    report_ = std::move(r).value();
  }

  DetectionResult Detect(const Relation& suspect) {
    DetectOptions options;
    options.key_attr = "K";
    options.target_attr = "A";
    options.payload_length = report_.payload_length;
    options.domain = report_.domain;
    const Detector detector(keys_, params_);
    Result<DetectionResult> r = detector.Detect(suspect, options, wm_.size());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  Relation original_;
  Relation marked_;
  WatermarkKeySet keys_;
  WatermarkParams params_;
  BitVector wm_;
  EmbedReport report_;
};

TEST_P(RoundTripProperty, DetectIsIdentityOnMarkedData) {
  EXPECT_EQ(Detect(marked_).wm, wm_);
}

TEST_P(RoundTripProperty, DetectionInvariantUnderResorting) {
  // A4: any re-ordering of tuples decodes identically.
  const Relation shuffled = ResortAttack(marked_, 123);
  EXPECT_EQ(Detect(shuffled).wm, wm_);
  const Relation sorted = SortByColumn(marked_, 1).value();
  EXPECT_EQ(Detect(sorted).wm, wm_);
}

TEST_P(RoundTripProperty, EmbeddingAltersAtMostFitTuples) {
  std::size_t changed = 0;
  for (std::size_t i = 0; i < original_.NumRows(); ++i) {
    if (!(marked_.Get(i, 1) == original_.Get(i, 1))) ++changed;
  }
  EXPECT_EQ(changed, report_.altered_tuples);
  EXPECT_LE(report_.fit_tuples,
            original_.NumRows() / GetParam().e +
                4 * static_cast<std::size_t>(std::sqrt(
                        static_cast<double>(original_.NumRows()) /
                        static_cast<double>(GetParam().e))) +
                2);
}

TEST_P(RoundTripProperty, HalfDataLossKeepsMarkMostlyIntact) {
  const Relation kept = HorizontalPartitionAttack(marked_, 0.5, 321).value();
  const MatchStats stats = MatchWatermark(wm_, Detect(kept).wm);
  // With majority voting each bit keeps ~half its votes; mark alteration
  // stays low. Identity code has no redundancy, so only require better
  // than chance there.
  if (GetParam().ecc == EccKind::kIdentity) {
    EXPECT_GE(stats.match_fraction, 0.5);
  } else {
    EXPECT_GE(stats.match_fraction, 0.8);
  }
}

TEST_P(RoundTripProperty, DetectionIsDeterministic) {
  const BitVector first = Detect(marked_).wm;
  const BitVector second = Detect(marked_).wm;
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTripProperty,
    ::testing::Values(
        // Vary N.
        Config{1000, 20, 100, 10, EccKind::kMajorityVoting},
        Config{3000, 20, 100, 10, EccKind::kMajorityVoting},
        Config{6000, 20, 100, 10, EccKind::kMajorityVoting},
        // Vary e.
        Config{6000, 35, 100, 10, EccKind::kMajorityVoting},
        Config{6000, 65, 100, 10, EccKind::kMajorityVoting},
        Config{6000, 100, 100, 10, EccKind::kMajorityVoting},
        // Vary domain size nA (odd sizes exercise the wrap case; 2 is the
        // minimum channel).
        Config{3000, 20, 2, 10, EccKind::kMajorityVoting},
        Config{3000, 20, 3, 10, EccKind::kMajorityVoting},
        Config{3000, 20, 17, 10, EccKind::kMajorityVoting},
        Config{3000, 20, 1001, 10, EccKind::kMajorityVoting},
        // Vary watermark length. (Longer marks need proportionally more
        // bandwidth N/e for full payload coverage — e drops as |wm| grows.)
        Config{3000, 20, 100, 1, EccKind::kMajorityVoting},
        Config{3000, 20, 100, 32, EccKind::kMajorityVoting},
        Config{6000, 10, 100, 64, EccKind::kMajorityVoting},
        // Vary the ECC.
        Config{3000, 20, 100, 10, EccKind::kIdentity},
        Config{3000, 20, 100, 10, EccKind::kBlockRepetition},
        Config{3000, 20, 100, 10, EccKind::kHamming74},
        Config{6000, 60, 100, 10, EccKind::kHamming74}),
    ConfigName);

// ----------------------------------------------------- graceful degradation

/// Mark alteration must be monotone-ish in attack size: heavier random
/// alteration can only hurt (checked with slack on averaged runs).
TEST(GracefulDegradationTest, AlterationGrowsWithAttackSize) {
  ExperimentConfig config;
  config.num_tuples = 4000;
  config.passes = 5;
  WatermarkParams params;
  params.e = 65;
  double prev = -1.0;
  for (const double attack : {0.2, 0.5, 0.8}) {
    const TrialOutcome outcome = RunAveragedTrial(
        config, params, [attack](const Relation& rel, std::uint64_t seed) {
          return SubsetAlterationAttack(rel, "A", attack, seed);
        });
    EXPECT_GE(outcome.mean_alteration_pct, prev - 6.0)
        << "attack " << attack;
    prev = outcome.mean_alteration_pct;
  }
  // At 80% random alteration with e=65 the mark is visibly damaged but not
  // destroyed (Figure 4 shows ~25-40%).
  EXPECT_GT(prev, 5.0);
  EXPECT_LT(prev, 50.0);
}

TEST(GracefulDegradationTest, MoreBandwidthMeansMoreResilience) {
  // Figure 5's core claim: decreasing e (more fit tuples) lowers the mark
  // alteration under the same attack.
  ExperimentConfig config;
  config.num_tuples = 4000;
  config.passes = 5;
  const auto attack = [](const Relation& rel, std::uint64_t seed) {
    return SubsetAlterationAttack(rel, "A", 0.5, seed);
  };
  WatermarkParams low_e;
  low_e.e = 15;
  WatermarkParams high_e;
  high_e.e = 150;
  const double low =
      RunAveragedTrial(config, low_e, attack).mean_alteration_pct;
  const double high =
      RunAveragedTrial(config, high_e, attack).mean_alteration_pct;
  EXPECT_LT(low, high + 1e-9);
}

}  // namespace
}  // namespace catmark
