// Attack-robustness matrix (in the spirit of Tekgul & Asokan's adversarial
// evaluation of dataset watermarking): embed once, then sweep the Section
// 2.3 attack suite across survival fractions and require the ownership
// decision to clear RequiredMatchThreshold exactly where the paper's
// Figures 4/7 predict it should — and to FAIL where it should: a rightful-
// looking claim with the wrong key must never cross the court's evidence
// bar (false-positive guard), and survival below the channel's capacity
// floor must degrade the decoded mark below the threshold.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "attack/attacks.h"
#include "core/decision.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

constexpr double kAlpha = 1e-3;  // court-facing significance level

struct MatrixFixture {
  Relation marked;       // watermarked relation (embedded once, shared)
  Relation decoy;        // same schema, never watermarked (mix-and-match)
  BitVector wm;
  WatermarkKeySet keys = WatermarkKeySet::FromSeed(2004);
  WatermarkKeySet wrong_keys = WatermarkKeySet::FromSeed(666);
  WatermarkParams params;
  DetectOptions detect_options;

  static MatrixFixture Make() {
    KeyedCategoricalConfig gen;
    gen.num_tuples = 6000;  // the paper's Section 4.4 worked example size
    gen.domain_size = 30;
    gen.zipf_s = 0.0;  // uniform: the draining guard stays out of the way
    gen.seed = 2004;
    MatrixFixture f;
    f.marked = GenerateKeyedCategorical(gen);
    gen.seed = 4002;
    f.decoy = GenerateKeyedCategorical(gen);
    f.wm = MakeWatermark(10, 2004);  // the paper's 10-bit mark
    f.params.e = 6;                  // ~1000 fit tuples: Figure 7's regime
    EmbedOptions options;
    options.key_attr = "K";
    options.target_attr = "A";
    const EmbedReport report =
        Embedder(f.keys, f.params).Embed(f.marked, options, f.wm).value();
    f.detect_options.key_attr = "K";
    f.detect_options.target_attr = "A";
    f.detect_options.payload_length = report.payload_length;
    f.detect_options.domain = report.domain;
    return f;
  }

  OwnershipDecision Decide(const Relation& suspect, bool right_keys) const {
    const DetectionResult result =
        Detector(right_keys ? keys : wrong_keys, params)
            .Detect(suspect, detect_options, wm.size())
            .value();
    return DecideOwnership(wm, result.wm, kAlpha);
  }
};

const MatrixFixture& Fixture() {
  static const MatrixFixture f = MatrixFixture::Make();
  return f;
}

// One attacked relation per (attack, survival) grid cell. `survival` is the
// fraction of marked tuples that remain in the suspect data.
Relation AttackedCell(const std::string& attack, double survival,
                      std::uint64_t seed) {
  const MatrixFixture& f = Fixture();
  if (attack == "subset") {
    return HorizontalPartitionAttack(f.marked, survival, seed).value();
  }
  if (attack == "mix") {
    return MixAndMatchAttack(f.marked, f.decoy, survival, seed).value();
  }
  if (attack == "additive") {
    // Dilute with fresh tuples until marked data is `survival` of the set.
    const double add_fraction = (1.0 - survival) / survival;
    return SubsetAdditionAttack(f.marked, add_fraction, seed).value();
  }
  if (attack == "vertical") {
    // Mallory keeps only the key/target association, plus horizontal loss.
    return VerticalPartitionAttack(
               HorizontalPartitionAttack(f.marked, survival, seed).value(),
               {"K", "A"})
        .value();
  }
  if (attack == "resort") {
    return ResortAttack(
        HorizontalPartitionAttack(f.marked, survival, seed).value(), seed);
  }
  ADD_FAILURE() << "unknown attack " << attack;
  return f.marked;
}

// Figures 4/7 predict: with e = 6 on 6000 tuples the channel carries ~100
// redundant votes per mark bit, so majority voting survives every Section
// 2.3 attack at 25% survival and above — the decision must clear the
// threshold in every grid cell, while the same evidence bar must reject
// the decode produced with a wrong key (Section 4.4's false-claim
// probability).
TEST(AttackMatrixTest, SurvivalGridClearsThresholdWithRightKeyOnly) {
  const MatrixFixture& f = Fixture();
  const std::size_t threshold = RequiredMatchThreshold(f.wm.size(), kAlpha);
  // A 10-bit mark at alpha = 1e-3 needs a perfect match: P[Bin(10,1/2) >=
  // 10] ~ 0.00098 is the first tail below alpha.
  ASSERT_EQ(threshold, 10u);

  std::uint64_t seed = 77;
  for (const char* attack :
       {"subset", "mix", "additive", "vertical", "resort"}) {
    for (const double survival : {0.25, 0.50, 0.75}) {
      SCOPED_TRACE(std::string(attack) + " @ " + std::to_string(survival));
      const Relation suspect = AttackedCell(attack, survival, ++seed);

      const OwnershipDecision right = Fixture().Decide(suspect, true);
      EXPECT_TRUE(right.owned);
      EXPECT_GE(right.matched_bits, threshold);
      EXPECT_LE(right.p_value, kAlpha);

      const OwnershipDecision wrong = Fixture().Decide(suspect, false);
      EXPECT_FALSE(wrong.owned) << "wrong key cleared the evidence bar";
      EXPECT_LT(wrong.matched_bits, threshold);
    }
  }
}

// The re-sorting attack alone (no data loss) must be a perfect no-op for
// detection: every decision is per-tuple, so a permutation changes nothing
// — mark alteration exactly 0, unanimous confidence.
TEST(AttackMatrixTest, ResortAloneIsLossless) {
  const MatrixFixture& f = Fixture();
  const Relation resorted = ResortAttack(f.marked, 99);
  const DetectionResult result =
      Detector(f.keys, f.params).Detect(resorted, f.detect_options,
                                        f.wm.size())
          .value();
  const MatchStats stats = MatchWatermark(f.wm, result.wm);
  EXPECT_EQ(stats.mark_alteration, 0.0);
  EXPECT_EQ(stats.matched_bits, f.wm.size());
}

// Below the channel's capacity floor the threshold must NOT be cleared:
// at 0.2% survival (~2 of the ~1000 fit tuples remain) most mark bits
// receive zero votes and decode to the all-absent default, so the match
// count falls to chance level — Figure 7's degradation endpoint. A scheme
// that still "detects" here would be manufacturing evidence.
TEST(AttackMatrixTest, SurvivalBelowCapacityFloorFailsTheThreshold) {
  const MatrixFixture& f = Fixture();
  const Relation suspect =
      HorizontalPartitionAttack(f.marked, 0.002, 123).value();
  const OwnershipDecision decision = f.Decide(suspect, true);
  EXPECT_FALSE(decision.owned);
  EXPECT_LT(decision.matched_bits, RequiredMatchThreshold(f.wm.size(),
                                                          kAlpha));
}

// The false-positive guard holds on pristine (never-watermarked) data too:
// detecting with either key set over the decoy must not produce a claim.
TEST(AttackMatrixTest, UnmarkedDataNeverClearsTheThreshold) {
  const MatrixFixture& f = Fixture();
  EXPECT_FALSE(f.Decide(f.decoy, true).owned);
  EXPECT_FALSE(f.Decide(f.decoy, false).owned);
}

}  // namespace
}  // namespace catmark
