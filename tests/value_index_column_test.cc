#include <gtest/gtest.h>

#include "gen/sales_gen.h"
#include "relation/value_index_column.h"

namespace catmark {
namespace {

Relation SmallRelation() {
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"A", ColumnType::kString, true}},
                              "K")
                   .value());
  rel.AppendRowUnchecked({Value(std::int64_t{0}), Value("b")});
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("a")});
  rel.AppendRowUnchecked({Value(std::int64_t{2}), Value()});         // NULL
  rel.AppendRowUnchecked({Value(std::int64_t{3}), Value("zz")});     // outside
  rel.AppendRowUnchecked({Value(std::int64_t{4}), Value("c")});
  rel.AppendRowUnchecked({Value(std::int64_t{5}), Value("a")});
  return rel;
}

TEST(ValueIndexColumnTest, MatchesDomainIndexOf) {
  const Relation rel = SmallRelation();
  const CategoricalDomain domain =
      CategoricalDomain::FromValues({Value("a"), Value("b"), Value("c")})
          .value();
  const ValueIndexColumn view = ValueIndexColumn::Build(rel, 1, domain);
  ASSERT_EQ(view.size(), rel.NumRows());
  EXPECT_EQ(view.index(0), 1);
  EXPECT_EQ(view.index(1), 0);
  EXPECT_EQ(view.index(2), ValueIndexColumn::kNoIndex);
  EXPECT_EQ(view.index(3), ValueIndexColumn::kNoIndex);
  EXPECT_EQ(view.index(4), 2);
  EXPECT_EQ(view.index(5), 0);
}

TEST(ValueIndexColumnTest, CountPerCategorySkipsUnmappedCells) {
  const Relation rel = SmallRelation();
  const CategoricalDomain domain =
      CategoricalDomain::FromValues({Value("a"), Value("b"), Value("c")})
          .value();
  const ValueIndexColumn view = ValueIndexColumn::Build(rel, 1, domain);
  const std::vector<long> counts = view.CountPerCategory(domain.size());
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);  // "a"
  EXPECT_EQ(counts[1], 1);  // "b"
  EXPECT_EQ(counts[2], 1);  // "c"
}

TEST(ValueIndexColumnTest, ThreadCountDoesNotChangeTheView) {
  KeyedCategoricalConfig config;
  config.num_tuples = 5000;
  config.domain_size = 50;
  config.seed = 9;
  const Relation rel = GenerateKeyedCategorical(config);
  const CategoricalDomain domain =
      CategoricalDomain::FromRelationColumn(rel, 1).value();
  const ValueIndexColumn serial = ValueIndexColumn::Build(rel, 1, domain, 1);
  for (const std::size_t threads : {2u, 8u}) {
    const ValueIndexColumn parallel =
        ValueIndexColumn::Build(rel, 1, domain, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t j = 0; j < serial.size(); ++j) {
      ASSERT_EQ(parallel.index(j), serial.index(j)) << "row " << j;
    }
  }
}

}  // namespace
}  // namespace catmark
