#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "relation/csv.h"
#include "relation/relation.h"

namespace catmark {
namespace {

Schema TestSchema() {
  return Schema::Create({{"K", ColumnType::kInt64, false},
                         {"A", ColumnType::kString, true},
                         {"X", ColumnType::kDouble, false}},
                        "K")
      .value();
}

Relation TestRelation() {
  Relation rel(TestSchema());
  EXPECT_TRUE(
      rel.AppendRow({Value(std::int64_t{1}), Value("red"), Value(1.5)}).ok());
  EXPECT_TRUE(
      rel.AppendRow({Value(std::int64_t{2}), Value("blue"), Value(2.5)}).ok());
  return rel;
}

TEST(CsvTest, WriteProducesHeaderAndRows) {
  const std::string csv = WriteCsvString(TestRelation());
  EXPECT_EQ(csv.substr(0, 6), "K,A,X\n");
  EXPECT_NE(csv.find("1,red,1.5\n"), std::string::npos);
}

TEST(CsvTest, RoundTrips) {
  const Relation rel = TestRelation();
  const Relation back = ReadCsvString(WriteCsvString(rel), rel.schema()).value();
  EXPECT_TRUE(rel.SameContent(back));
}

TEST(CsvTest, QuotesFieldsWithCommas) {
  Relation rel(TestSchema());
  ASSERT_TRUE(
      rel.AppendRow({Value(std::int64_t{1}), Value("a,b"), Value(0.0)}).ok());
  const std::string csv = WriteCsvString(rel);
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  const Relation back = ReadCsvString(csv, rel.schema()).value();
  EXPECT_EQ(back.Get(0, 1).AsString(), "a,b");
}

TEST(CsvTest, QuotesFieldsWithQuotes) {
  Relation rel(TestSchema());
  ASSERT_TRUE(rel.AppendRow({Value(std::int64_t{1}), Value("say \"hi\""),
                             Value(0.0)})
                  .ok());
  const Relation back =
      ReadCsvString(WriteCsvString(rel), rel.schema()).value();
  EXPECT_EQ(back.Get(0, 1).AsString(), "say \"hi\"");
}

TEST(CsvTest, QuotesFieldsWithNewlines) {
  Relation rel(TestSchema());
  ASSERT_TRUE(rel.AppendRow({Value(std::int64_t{1}), Value("two\nlines"),
                             Value(0.0)})
                  .ok());
  const Relation back =
      ReadCsvString(WriteCsvString(rel), rel.schema()).value();
  EXPECT_EQ(back.Get(0, 1).AsString(), "two\nlines");
}

TEST(CsvTest, NullsRoundTripAsEmpty) {
  Relation rel(TestSchema());
  ASSERT_TRUE(rel.AppendRow({Value(std::int64_t{1}), Value(), Value()}).ok());
  const Relation back =
      ReadCsvString(WriteCsvString(rel), rel.schema()).value();
  EXPECT_TRUE(back.Get(0, 1).is_null());
  EXPECT_TRUE(back.Get(0, 2).is_null());
}

TEST(CsvTest, RejectsMissingHeader) {
  EXPECT_FALSE(ReadCsvString("", TestSchema()).ok());
}

TEST(CsvTest, RejectsHeaderMismatch) {
  EXPECT_FALSE(ReadCsvString("K,B,X\n", TestSchema()).ok());
  EXPECT_FALSE(ReadCsvString("K,A\n", TestSchema()).ok());
}

TEST(CsvTest, RejectsArityMismatch) {
  EXPECT_FALSE(ReadCsvString("K,A,X\n1,red\n", TestSchema()).ok());
}

TEST(CsvTest, RejectsTypeMismatch) {
  EXPECT_FALSE(ReadCsvString("K,A,X\nnot-int,red,1.0\n", TestSchema()).ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ReadCsvString("K,A,X\n1,\"red,1.0\n", TestSchema()).ok());
}

// Regression: input that ends inside an open quote is a truncated record,
// and must surface as InvalidArgument — not parse as a complete row.
TEST(CsvTest, UnterminatedQuoteAtEndOfInputIsInvalidArgument) {
  for (const char* text : {
           "K,A,X\n1,\"red",         // EOF inside the quoted field
           "K,A,X\n1,\"red\"\",1.0"  // doubled quote then EOF, still open
       }) {
    const Result<Relation> r = ReadCsvString(text, TestSchema());
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  }
  // The header is held to the same standard.
  const Result<Relation> header = ReadCsvString("K,\"A", TestSchema());
  ASSERT_FALSE(header.ok());
  EXPECT_TRUE(header.status().IsInvalidArgument());
}

TEST(CsvTest, EmbeddedCrLfRoundTrips) {
  Relation rel(TestSchema());
  ASSERT_TRUE(rel.AppendRow({Value(std::int64_t{1}), Value("line1\nline2"),
                             Value(0.5)})
                  .ok());
  ASSERT_TRUE(rel.AppendRow({Value(std::int64_t{2}), Value("cr\rlf\r\nend"),
                             Value(1.5)})
                  .ok());
  const Relation back = ReadCsvString(WriteCsvString(rel), TestSchema()).value();
  EXPECT_TRUE(rel.SameContent(back));
  EXPECT_EQ(back.Get(0, 1).AsString(), "line1\nline2");
  EXPECT_EQ(back.Get(1, 1).AsString(), "cr\rlf\r\nend");
}

TEST(CsvTest, DoubledQuotesRoundTrip) {
  Relation rel(TestSchema());
  ASSERT_TRUE(rel.AppendRow({Value(std::int64_t{1}), Value("say \"hi\""),
                             Value(0.5)})
                  .ok());
  ASSERT_TRUE(
      rel.AppendRow({Value(std::int64_t{2}), Value("\"\""), Value(1.5)}).ok());
  const std::string csv = WriteCsvString(rel);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  const Relation back = ReadCsvString(csv, TestSchema()).value();
  EXPECT_TRUE(rel.SameContent(back));
}

TEST(CsvTest, FinalRecordWithoutTrailingNewlineRoundTrips) {
  // A quoted final field that closes exactly at EOF is a complete record.
  const Relation back =
      ReadCsvString("K,A,X\n1,red,1.5\n2,\"bl,ue\",2.5", TestSchema())
          .value();
  ASSERT_EQ(back.NumRows(), 2u);
  EXPECT_EQ(back.Get(1, 1).AsString(), "bl,ue");
}

TEST(CsvTest, HandlesCrLf) {
  const Relation back =
      ReadCsvString("K,A,X\r\n1,red,1.5\r\n", TestSchema()).value();
  EXPECT_EQ(back.NumRows(), 1u);
  EXPECT_EQ(back.Get(0, 1).AsString(), "red");
}

TEST(CsvTest, MissingFinalNewlineIsFine) {
  const Relation back =
      ReadCsvString("K,A,X\n1,red,1.5", TestSchema()).value();
  EXPECT_EQ(back.NumRows(), 1u);
}

TEST(CsvTest, FileRoundTrip) {
  const Relation rel = TestRelation();
  const std::string path = ::testing::TempDir() + "/catmark_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(rel, path).ok());
  const Relation back = ReadCsvFile(path, rel.schema()).value();
  EXPECT_TRUE(rel.SameContent(back));
  std::remove(path.c_str());
}

TEST(CsvTest, FileReadMissingFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path.csv", TestSchema()).ok());
}

}  // namespace
}  // namespace catmark
