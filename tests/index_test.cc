#include <gtest/gtest.h>

#include "gen/sales_gen.h"
#include "relation/index.h"

namespace catmark {
namespace {

TEST(PrimaryKeyIndexTest, FindsEveryRow) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.seed = 121;
  const Relation rel = GenerateKeyedCategorical(gen);
  const PrimaryKeyIndex index = PrimaryKeyIndex::Build(rel).value();
  EXPECT_EQ(index.size(), rel.NumRows());
  EXPECT_EQ(index.key_column(), 0u);
  for (std::size_t i = 0; i < rel.NumRows(); i += 97) {
    EXPECT_EQ(index.Find(rel.Get(i, 0)).value(), i);
  }
}

TEST(PrimaryKeyIndexTest, MissingKeyReturnsNullopt) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 100;
  const Relation rel = GenerateKeyedCategorical(gen);
  const PrimaryKeyIndex index = PrimaryKeyIndex::Build(rel).value();
  EXPECT_FALSE(index.Find(Value(std::int64_t{-1})).has_value());
  // Type-tagged: the string spelling of a key is not the key.
  EXPECT_FALSE(index.Find(Value(rel.Get(0, 0).ToString())).has_value());
}

TEST(PrimaryKeyIndexTest, RejectsSchemaWithoutPk) {
  Relation rel(
      Schema::Create({{"A", ColumnType::kString, true}}, "").value());
  rel.AppendRowUnchecked({Value("x")});
  EXPECT_FALSE(PrimaryKeyIndex::Build(rel).ok());
}

TEST(PrimaryKeyIndexTest, RejectsDuplicateKeys) {
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"A", ColumnType::kString, true}},
                              "K")
                   .value());
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("a")});
  rel.AppendRowUnchecked({Value(std::int64_t{1}), Value("b")});
  const auto r = PrimaryKeyIndex::Build(rel);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate"), std::string::npos);
}

TEST(PrimaryKeyIndexTest, RejectsNullKeys) {
  Relation rel(Schema::Create({{"K", ColumnType::kInt64, false},
                               {"A", ColumnType::kString, true}},
                              "K")
                   .value());
  rel.AppendRowUnchecked({Value(), Value("a")});
  EXPECT_FALSE(PrimaryKeyIndex::Build(rel).ok());
}

TEST(PrimaryKeyIndexTest, StringKeysWork) {
  Relation rel(Schema::Create({{"K", ColumnType::kString, false},
                               {"A", ColumnType::kString, true}},
                              "K")
                   .value());
  rel.AppendRowUnchecked({Value("alpha"), Value("x")});
  rel.AppendRowUnchecked({Value("beta"), Value("y")});
  const PrimaryKeyIndex index = PrimaryKeyIndex::Build(rel).value();
  EXPECT_EQ(index.Find(Value("beta")).value(), 1u);
}

}  // namespace
}  // namespace catmark
