// Full configuration-matrix sweep: every (hash algorithm, bit-index mode,
// position-source) combination must round-trip blindly and survive
// re-sorting — no configuration corner may silently break the channel.

#include <gtest/gtest.h>

#include <tuple>

#include "attack/attacks.h"
#include "core/detector.h"
#include "core/embedder.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"

namespace catmark {
namespace {

using MatrixParam = std::tuple<HashAlgorithm, BitIndexMode, bool /*use map*/>;

std::string MatrixName(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto [algo, mode, use_map] = info.param;
  std::string name;
  switch (algo) {
    case HashAlgorithm::kMd5:
      name = "Md5";
      break;
    case HashAlgorithm::kSha1:
      name = "Sha1";
      break;
    case HashAlgorithm::kSha256:
      name = "Sha256";
      break;
  }
  name += mode == BitIndexMode::kModulo ? "Mod" : "Msb";
  name += use_map ? "Map" : "Hash";
  return name;
}

class ParamsMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  void SetUp() override {
    const auto [algo, mode, use_map] = GetParam();
    KeyedCategoricalConfig gen;
    gen.num_tuples = 3000;
    gen.domain_size = 100;
    gen.seed = 2026;
    rel_ = GenerateKeyedCategorical(gen);
    keys_ = WatermarkKeySet::FromSeed(2026);
    params_.e = 20;
    params_.hash_algo = algo;
    params_.bit_index_mode = mode;
    wm_ = MakeWatermark(10, 2026);

    EmbedOptions options;
    options.key_attr = "K";
    options.target_attr = "A";
    options.build_embedding_map = use_map;
    const Embedder embedder(keys_, params_);
    Result<EmbedReport> report = embedder.Embed(rel_, options, wm_);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    report_ = std::move(report).value();
  }

  DetectionResult Detect(const Relation& suspect) {
    DetectOptions options;
    options.key_attr = "K";
    options.target_attr = "A";
    options.payload_length = report_.payload_length;
    options.domain = report_.domain;
    if (std::get<2>(GetParam())) {
      options.embedding_map = &report_.embedding_map;
    }
    const Detector detector(keys_, params_);
    Result<DetectionResult> r = detector.Detect(suspect, options, wm_.size());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  Relation rel_;
  WatermarkKeySet keys_;
  WatermarkParams params_;
  BitVector wm_;
  EmbedReport report_;
};

TEST_P(ParamsMatrixTest, BlindRoundTrip) {
  EXPECT_EQ(Detect(rel_).wm, wm_);
}

TEST_P(ParamsMatrixTest, SurvivesResort) {
  EXPECT_EQ(Detect(ResortAttack(rel_, 9)).wm, wm_);
}

TEST_P(ParamsMatrixTest, ModerateAlterationStaysCourtUsable) {
  const Relation attacked =
      SubsetAlterationAttack(rel_, "A", 0.15, 10).value();
  const MatchStats stats = MatchWatermark(wm_, Detect(attacked).wm);
  EXPECT_GE(stats.match_fraction, 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParamsMatrixTest,
    ::testing::Combine(::testing::Values(HashAlgorithm::kMd5,
                                         HashAlgorithm::kSha1,
                                         HashAlgorithm::kSha256),
                       ::testing::Values(BitIndexMode::kModulo,
                                         BitIndexMode::kMsbModL),
                       ::testing::Bool()),
    MatrixName);

}  // namespace
}  // namespace catmark
