// Golden regression vectors: with everything pinned (data seed, keys, e,
// ECC), the embedding algorithm's output is part of the on-disk/contract
// surface — detectors in the field hold certificates for data marked by
// *this* exact algorithm, so any accidental change to the fitness test,
// the bit-position hash or the value-selection rule must fail loudly here
// rather than silently orphan deployed watermarks.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/embedder.h"
#include "crypto/sha256.h"
#include "exp/harness.h"
#include "gen/sales_gen.h"
#include "relation/csv.h"

namespace catmark {
namespace {

struct GoldenSetup {
  Relation marked;
  EmbedReport report;
  BitVector wm;
};

GoldenSetup RunGoldenEmbedding() {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.domain_size = 64;
  gen.zipf_s = 1.0;
  gen.seed = 424242;
  GoldenSetup s;
  s.marked = GenerateKeyedCategorical(gen);
  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("golden");
  WatermarkParams params;
  params.e = 25;
  s.wm = BitVector::FromString("1011001110").value();
  EmbedOptions options;
  options.key_attr = "K";
  options.target_attr = "A";
  s.report = Embedder(keys, params).Embed(s.marked, options, s.wm).value();
  return s;
}

TEST(GoldenTest, GeneratorIsStable) {
  KeyedCategoricalConfig gen;
  gen.num_tuples = 2000;
  gen.domain_size = 64;
  gen.seed = 424242;
  const Relation rel = GenerateKeyedCategorical(gen);
  Sha256 sha;
  EXPECT_EQ(
      sha.Hash(WriteCsvString(rel)).ToHex(),
      "a74968c3b53d067b5bf36f885cadf48e6c8ec835c801cd26b51b6cba8084a0a8");
}

TEST(GoldenTest, EmbeddingIsStable) {
  const GoldenSetup s = RunGoldenEmbedding();
  Sha256 sha;
  EXPECT_EQ(
      sha.Hash(WriteCsvString(s.marked)).ToHex(),
      "cdc9fcdcdc04480afcdb7338d8c67512911da1251e3ce1e57be25df5903c2e82");
}

TEST(GoldenTest, ReportCountsAreStable) {
  const GoldenSetup s = RunGoldenEmbedding();
  EXPECT_EQ(s.report.fit_tuples, 71u);
  EXPECT_EQ(s.report.altered_tuples, 70u);
  EXPECT_EQ(s.report.payload_length, 80u);
}

TEST(GoldenTest, KeyedHashVectorsAreStable) {
  // The exact H(V,k) values the fitness test depends on.
  const WatermarkKeySet keys = WatermarkKeySet::FromPassphrase("golden");
  const KeyedHasher h1(keys.k1);
  EXPECT_EQ(h1.Hash64(std::uint64_t{1}), 0x1a6a2a152f01c4e4ULL);
  EXPECT_EQ(h1.Hash64(std::string_view("watermark")),
            0x5c16678f632a5643ULL);
}

}  // namespace
}  // namespace catmark
